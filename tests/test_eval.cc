// Tests for the evaluation harness: distance-percent, ground-truth rank,
// metric comparison.

#include <gtest/gtest.h>

#include <algorithm>

#include "src/common/rng.h"
#include "src/datagen/synthetic.h"
#include "src/eval/metric_comparison.h"
#include "src/eval/segmentation_distance.h"

namespace tsexplain {
namespace {

TEST(DistancePercentTest, ExactMatchScoresZero) {
  const std::vector<int> cuts{0, 20, 50, 99};
  EXPECT_DOUBLE_EQ(DistancePercent(cuts, cuts, 100), 0.0);
}

TEST(DistancePercentTest, SmallShiftSmallScore) {
  const std::vector<int> gt{0, 50, 99};
  const std::vector<int> shifted{0, 53, 99};
  // One interior cut, off by 3 of 100 -> 3%.
  EXPECT_NEAR(DistancePercent(shifted, gt, 100), 3.0, 1e-9);
}

TEST(DistancePercentTest, GrossMismatchScoresHigh) {
  const std::vector<int> gt{0, 10, 20, 99};
  const std::vector<int> far{0, 80, 90, 99};
  EXPECT_GT(DistancePercent(far, gt, 100), 30.0);
}

TEST(DistancePercentTest, MissingCutCostsHalf) {
  const std::vector<int> gt{0, 30, 60, 99};   // two interior cuts
  const std::vector<int> pred{0, 30, 99};     // one matching, one missing
  // Match 30<->30 costs 0, delete 60 costs 0.5, normalized by 2 -> 25%.
  EXPECT_NEAR(DistancePercent(pred, gt, 100), 25.0, 1e-9);
}

TEST(DistancePercentTest, ExtraCutCostsHalf) {
  const std::vector<int> gt{0, 30, 99};
  const std::vector<int> pred{0, 30, 60, 99};
  EXPECT_NEAR(DistancePercent(pred, gt, 100), 25.0, 1e-9);
}

TEST(DistancePercentTest, NoInteriorCutsBothSides) {
  EXPECT_DOUBLE_EQ(DistancePercent({0, 99}, {0, 99}, 100), 0.0);
}

TEST(DistancePercentTest, AlignmentPrefersMatchingOverDeleting) {
  // Aligning 48 to 50 (0.02) is cheaper than delete+insert (1.0).
  const std::vector<int> gt{0, 50, 99};
  const std::vector<int> pred{0, 48, 99};
  EXPECT_NEAR(DistancePercent(pred, gt, 100), 2.0, 1e-9);
}

TEST(FractionalRanksTest, SimpleOrdering) {
  EXPECT_EQ(FractionalRanks({30.0, 10.0, 20.0}),
            (std::vector<double>{3.0, 1.0, 2.0}));
}

TEST(FractionalRanksTest, TiesShareAverageRank) {
  EXPECT_EQ(FractionalRanks({3.0, 1.0, 3.0}),
            (std::vector<double>{2.5, 1.0, 2.5}));
  EXPECT_EQ(FractionalRanks({5.0, 5.0, 5.0, 5.0}),
            (std::vector<double>{2.5, 2.5, 2.5, 2.5}));
}

TEST(RandomSegmentationTest, ValidSchemes) {
  Rng rng(3);
  for (int trial = 0; trial < 50; ++trial) {
    const std::vector<int> cuts = RandomSegmentation(100, 5, rng);
    ASSERT_EQ(cuts.size(), 6u);
    EXPECT_EQ(cuts.front(), 0);
    EXPECT_EQ(cuts.back(), 99);
    for (size_t i = 1; i < cuts.size(); ++i) {
      EXPECT_LT(cuts[i - 1], cuts[i]);
    }
  }
}

class GroundTruthRankTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SyntheticConfig config;
    config.length = 100;
    config.snr_db = 50.0;
    config.seed = 21;
    config.num_interior_cuts = 3;
    ds_ = GenerateSynthetic(config);
    registry_ = ExplanationRegistry::Build(*ds_.table, {0}, 1);
    cube_ = std::make_unique<ExplanationCube>(*ds_.table, registry_,
                                              AggregateFunction::kSum, 0);
    SegmentExplainer::Options options;
    options.m = 3;
    explainer_ =
        std::make_unique<SegmentExplainer>(*cube_, registry_, options);
  }

  SyntheticDataset ds_;
  ExplanationRegistry registry_;
  std::unique_ptr<ExplanationCube> cube_;
  std::unique_ptr<SegmentExplainer> explainer_;
};

TEST_F(GroundTruthRankTest, CleanDataRanksGroundTruthFirst) {
  VarianceCalculator calc(*explainer_, VarianceMetric::kTse);
  const GroundTruthRankResult r =
      EvaluateGroundTruthRank(calc, ds_.ground_truth_cuts, 500, 77);
  // Figure 6 at SNR = 50: ground truth achieves the lowest score.
  EXPECT_EQ(r.rank, 1);
  EXPECT_EQ(r.samples, 500);
  EXPECT_GE(r.ground_truth_score, 0.0);
}

TEST_F(GroundTruthRankTest, DeterministicInSeed) {
  VarianceCalculator calc(*explainer_, VarianceMetric::kTse);
  const auto a =
      EvaluateGroundTruthRank(calc, ds_.ground_truth_cuts, 200, 5);
  const auto b =
      EvaluateGroundTruthRank(calc, ds_.ground_truth_cuts, 200, 5);
  EXPECT_EQ(a.rank, b.rank);
  EXPECT_DOUBLE_EQ(a.ground_truth_score, b.ground_truth_score);
}

TEST_F(GroundTruthRankTest, CompareMetricsProducesEightRanks) {
  const MetricComparisonResult result =
      CompareVarianceMetrics(*explainer_, ds_.ground_truth_cuts, 200, 9);
  ASSERT_EQ(result.per_metric.size(), 8u);
  ASSERT_EQ(result.metric_rank.size(), 8u);
  for (double r : result.metric_rank) {
    EXPECT_GE(r, 1.0);
    EXPECT_LE(r, 8.0);
  }
  // The parallel fill (incl. the all-pair distance matrix) must reproduce
  // the serial ranks bit-identically.
  const MetricComparisonResult parallel =
      CompareVarianceMetrics(*explainer_, ds_.ground_truth_cuts, 200, 9,
                             /*threads=*/4);
  EXPECT_EQ(parallel.metric_rank, result.metric_rank);
  for (size_t i = 0; i < 8; ++i) {
    EXPECT_EQ(parallel.per_metric[i].rank, result.per_metric[i].rank);
    EXPECT_EQ(parallel.per_metric[i].ground_truth_score,
              result.per_metric[i].ground_truth_score);
  }
  // On clean data every metric tends to put the ground truth at rank 1
  // (paper Figure 6 at SNR 50: all metrics rank 1st, i.e. they tie); tse
  // must never rank WORSE than any alternative here.
  EXPECT_EQ(result.per_metric[0].rank, 1);
  for (size_t i = 1; i < result.metric_rank.size(); ++i) {
    EXPECT_LE(result.metric_rank[0], result.metric_rank[i] + 1e-9);
  }
}

TEST(CompetitionRanksTest, TiesShareTheBestRank) {
  EXPECT_EQ(CompetitionRanks({3.0, 1.0, 3.0}),
            (std::vector<double>{2.0, 1.0, 2.0}));
  EXPECT_EQ(CompetitionRanks({5.0, 5.0, 5.0}),
            (std::vector<double>{1.0, 1.0, 1.0}));
  EXPECT_EQ(CompetitionRanks({10.0, 20.0, 30.0}),
            (std::vector<double>{1.0, 2.0, 3.0}));
}

}  // namespace
}  // namespace tsexplain
