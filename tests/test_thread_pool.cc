// ThreadPool contract: Submit futures, ParallelFor completeness, nested
// ParallelFor from inside pool tasks (the deadlock-freedom property the
// pipeline + service rely on), and determinism of the fill pattern.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <numeric>
#include <thread>
#include <vector>

#include "src/common/thread_pool.h"

namespace tsexplain {
namespace {

TEST(ThreadPoolTest, ResolveThreadCount) {
  EXPECT_EQ(ResolveThreadCount(1), 1);
  EXPECT_EQ(ResolveThreadCount(7), 7);
  EXPECT_GE(ResolveThreadCount(0), 1);   // auto
  EXPECT_GE(ResolveThreadCount(-3), 1);  // negative folds to auto
}

TEST(ThreadPoolTest, SubmitRunsEverything) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  futures.reserve(100);
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.Submit([&counter] { counter.fetch_add(1); }));
  }
  for (auto& future : futures) future.wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> touched(513);
  for (auto& t : touched) t.store(0);
  pool.ParallelFor(513, 4, [&](size_t i) { touched[i].fetch_add(1); });
  for (size_t i = 0; i < touched.size(); ++i) {
    EXPECT_EQ(touched[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, ParallelForInlineWhenSequential) {
  ThreadPool pool(2);
  std::vector<int> order;
  pool.ParallelFor(8, 1, [&](size_t i) {
    order.push_back(static_cast<int>(i));  // no synchronization needed
  });
  std::vector<int> expected(8);
  std::iota(expected.begin(), expected.end(), 0);
  EXPECT_EQ(order, expected);
}

TEST(ThreadPoolTest, NestedParallelForFromPoolTasksDoesNotDeadlock) {
  // Saturate a small pool with tasks that each run their own ParallelFor:
  // every caller participates in its own loop, so this terminates even
  // though all workers are busy with the outer tasks.
  ThreadPool pool(2);
  std::atomic<int> total{0};
  std::vector<std::future<void>> outer;
  outer.reserve(8);
  for (int task = 0; task < 8; ++task) {
    outer.push_back(pool.Submit([&pool, &total] {
      pool.ParallelFor(64, 4, [&total](size_t) { total.fetch_add(1); });
    }));
  }
  for (auto& future : outer) future.wait();
  EXPECT_EQ(total.load(), 8 * 64);
}

TEST(ThreadPoolTest, ParallelForResultsIndependentOfParallelism) {
  // The fill pattern the pipeline uses: each index writes only its slot.
  auto fill = [](int parallelism) {
    ThreadPool pool(4);
    std::vector<double> out(200, 0.0);
    pool.ParallelFor(out.size(), parallelism, [&out](size_t i) {
      double v = 1.0;
      for (size_t k = 0; k < i % 17; ++k) v *= 1.0 + 1.0 / (1.0 + k);
      out[i] = v;
    });
    return out;
  };
  const std::vector<double> seq = fill(1);
  EXPECT_EQ(seq, fill(2));
  EXPECT_EQ(seq, fill(8));
  EXPECT_EQ(seq, fill(64));  // more workers than the pool: still fine
}

TEST(ThreadPoolTest, DestructionDrainsQueuedParallelForHelpers) {
  // ~ThreadPool's contract (thread_pool.h): destruction while ParallelFor
  // helper tasks are still queued must neither deadlock nor touch freed
  // memory. Deterministic setup: block every worker, run a ParallelFor
  // whose helpers therefore stay parked in the queue while the CALLER
  // drains all indices itself, then destroy the pool with those stale
  // helpers still queued — the workers must wake, run them (they see the
  // drained counter and return; the shared LoopState is kept alive by
  // their shared_ptr), and join.
  for (int round = 0; round < 8; ++round) {
    auto pool = std::make_unique<ThreadPool>(2);
    std::atomic<bool> release{false};
    std::atomic<int> blocked{0};
    for (int i = 0; i < 2; ++i) {
      pool->Submit([&release, &blocked] {
        blocked.fetch_add(1);
        while (!release.load()) std::this_thread::yield();
      });
    }
    while (blocked.load() != 2) std::this_thread::yield();

    std::atomic<size_t> covered{0};
    pool->ParallelFor(64, /*parallelism=*/3,
                      [&covered](size_t) { covered.fetch_add(1); });
    EXPECT_EQ(covered.load(), 64u);  // caller drained every index itself

    release.store(true);
    pool.reset();  // queue still holds the parked helpers: drain + join
  }
}

TEST(ThreadPoolTest, AdaptiveThreadGrantDividesCapacityFairly) {
  // The service divides the pool across admitted queries: fair share
  // with a floor of one, never exceeding the request.
  EXPECT_EQ(AdaptiveThreadGrant(/*requested=*/16, /*active=*/1, 16), 16);
  EXPECT_EQ(AdaptiveThreadGrant(16, 4, 16), 4);
  EXPECT_EQ(AdaptiveThreadGrant(16, 5, 16), 3);
  EXPECT_EQ(AdaptiveThreadGrant(16, 32, 16), 1);
  EXPECT_EQ(AdaptiveThreadGrant(3, 1, 16), 3);   // request is a ceiling
  EXPECT_EQ(AdaptiveThreadGrant(1, 16, 1), 1);   // 1-core box floor
  EXPECT_EQ(AdaptiveThreadGrant(-5, -1, 0), 1);  // degenerate inputs
}

}  // namespace
}  // namespace tsexplain
