// Unit tests for the K-Segmentation dynamic program (Eq. 11), validated
// against exhaustive enumeration of segmentation schemes.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>

#include "src/datagen/synthetic.h"
#include "src/seg/kseg_dp.h"

namespace tsexplain {
namespace {

class KsegDpTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Three clean regimes over 13 points: boundaries at 4 and 8.
    std::vector<std::vector<double>> series(3, std::vector<double>(13));
    for (int t = 0; t < 13; ++t) {
      series[0][static_cast<size_t>(t)] =
          t <= 4 ? 100.0 + 25.0 * t : 200.0;
      series[1][static_cast<size_t>(t)] =
          (t > 4 && t <= 8) ? 50.0 + 20.0 * (t - 4) : (t <= 4 ? 50.0 : 130.0);
      series[2][static_cast<size_t>(t)] =
          t > 8 ? 70.0 + 30.0 * (t - 8) : 70.0;
    }
    std::vector<std::string> labels;
    for (int t = 0; t < 13; ++t) labels.push_back(std::to_string(t));
    table_ = TableFromCategorySeries(series, {"a1", "a2", "a3"}, labels);
    registry_ = ExplanationRegistry::Build(*table_, {0}, 1);
    cube_ = std::make_unique<ExplanationCube>(*table_, registry_,
                                              AggregateFunction::kSum, 0);
    SegmentExplainer::Options options;
    options.m = 3;
    explainer_ =
        std::make_unique<SegmentExplainer>(*cube_, registry_, options);
    calc_ = std::make_unique<VarianceCalculator>(*explainer_,
                                                 VarianceMetric::kTse);
    std::vector<int> positions;
    for (int i = 0; i < 13; ++i) positions.push_back(i);
    table_var_ = std::make_unique<VarianceTable>(
        VarianceTable::Compute(*calc_, positions));
  }

  // Exhaustive minimum over all k-segmentations of [0, n-1].
  double BruteForce(int k) {
    const int n = explainer_->n();
    double best = std::numeric_limits<double>::infinity();
    std::vector<int> cuts;
    auto recurse = [&](auto&& self, int start, int remaining) -> void {
      if (remaining == 1) {
        std::vector<int> scheme{0};
        scheme.insert(scheme.end(), cuts.begin(), cuts.end());
        scheme.push_back(n - 1);
        best = std::min(best, TotalObjective(*calc_, scheme));
        return;
      }
      for (int c = start; c <= n - remaining; ++c) {
        cuts.push_back(c);
        self(self, c + 1, remaining - 1);
        cuts.pop_back();
      }
    };
    recurse(recurse, 1, k);
    return best;
  }

  std::unique_ptr<Table> table_;
  ExplanationRegistry registry_;
  std::unique_ptr<ExplanationCube> cube_;
  std::unique_ptr<SegmentExplainer> explainer_;
  std::unique_ptr<VarianceCalculator> calc_;
  std::unique_ptr<VarianceTable> table_var_;
};

TEST_F(KsegDpTest, MatchesBruteForceForAllK) {
  KSegmentationDp dp(*table_var_, 4);
  for (int k = 1; k <= 4; ++k) {
    EXPECT_NEAR(dp.TotalVariance(k), BruteForce(k), 1e-9) << "k=" << k;
  }
}

TEST_F(KsegDpTest, CurveIsMonotoneNonIncreasing) {
  KSegmentationDp dp(*table_var_, 8);
  const std::vector<double> curve = dp.Curve();
  for (size_t i = 1; i < curve.size(); ++i) {
    EXPECT_LE(curve[i], curve[i - 1] + 1e-9);
  }
}

TEST_F(KsegDpTest, RecoversTheTrueBoundaries) {
  KSegmentationDp dp(*table_var_, 3);
  const Segmentation seg = dp.Reconstruct(3);
  EXPECT_EQ(seg.cuts, (std::vector<int>{0, 4, 8, 12}));
}

TEST_F(KsegDpTest, ReconstructionIsConsistentWithObjective) {
  KSegmentationDp dp(*table_var_, 5);
  for (int k = 1; k <= 5; ++k) {
    const Segmentation seg = dp.Reconstruct(k);
    EXPECT_EQ(seg.num_segments(), k);
    EXPECT_EQ(seg.cuts.front(), 0);
    EXPECT_EQ(seg.cuts.back(), 12);
    EXPECT_TRUE(std::is_sorted(seg.cuts.begin(), seg.cuts.end()));
    EXPECT_NEAR(seg.total_variance, TotalObjective(*calc_, seg.cuts), 1e-9);
    EXPECT_NEAR(seg.total_variance, dp.TotalVariance(k), 1e-12);
  }
}

TEST_F(KsegDpTest, MaxSegmentsVarianceIsZero) {
  KSegmentationDp dp(*table_var_, 12);
  // K = n - 1: every segment is a unit object -> total variance 0 (paper
  // section 6: "when K = n-1, the total variance reaches ... zero").
  EXPECT_NEAR(dp.TotalVariance(12), 0.0, 1e-12);
}

TEST_F(KsegDpTest, KGreaterThanPossibleIsClamped) {
  KSegmentationDp dp(*table_var_, 50);
  EXPECT_EQ(dp.max_k(), 12);  // at most n-1 segments
}

TEST_F(KsegDpTest, SpanCapMakesLongSegmentsInfeasible) {
  std::vector<int> positions;
  for (int i = 0; i < 13; ++i) positions.push_back(i);
  const VarianceTable capped =
      VarianceTable::Compute(*calc_, positions, /*max_span=*/4);
  KSegmentationDp dp(capped, 12);
  // One segment of span 12 violates the cap.
  EXPECT_FALSE(dp.Feasible(1));
  EXPECT_FALSE(dp.Feasible(2));  // 2 x 4 < 12
  EXPECT_TRUE(dp.Feasible(3));   // 3 x 4 = 12 exactly
  const Segmentation seg = dp.Reconstruct(3);
  for (size_t i = 0; i + 1 < seg.cuts.size(); ++i) {
    EXPECT_LE(seg.cuts[i + 1] - seg.cuts[i], 4);
  }
}

TEST_F(KsegDpTest, CoarseCandidatesRestrictCuts) {
  const std::vector<int> coarse{0, 3, 4, 9, 12};
  const VarianceTable table = VarianceTable::Compute(*calc_, coarse);
  KSegmentationDp dp(table, 3);
  const Segmentation seg = dp.Reconstruct(3);
  for (int cut : seg.cuts) {
    EXPECT_TRUE(std::find(coarse.begin(), coarse.end(), cut) !=
                coarse.end());
  }
}

}  // namespace
}  // namespace tsexplain
