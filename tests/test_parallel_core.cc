// Coverage for the parallel, cache-friendly explanation core:
//  * parallel cube build (time-partitioned scan) is bit-identical to the
//    serial scan at any thread count,
//  * ExplanationCube::ScoreAll equals the scalar Score per candidate,
//  * the concurrent TopFor pre-warm (reentrant SegmentExplainer +
//    single-flight sharded cache) yields bit-identical results AND
//    deterministic ca_invocations between threads=1 and threads=8,
//  * Prewarm with duplicate segments computes each segment exactly once.

#include <gtest/gtest.h>

#include <algorithm>
#include <utility>
#include <vector>

#include "src/datagen/synthetic.h"
#include "src/pipeline/tsexplain.h"

namespace tsexplain {
namespace {

SyntheticDataset MakeDataset(uint64_t seed, int length = 120,
                             int categories = 4) {
  SyntheticConfig config;
  config.length = length;
  config.num_categories = categories;
  config.snr_db = 30.0;
  config.num_interior_cuts = 4;
  config.seed = seed;
  return GenerateSynthetic(config);
}

TSExplainConfig BaseConfig(int threads) {
  TSExplainConfig config;
  config.measure = "value";
  config.explain_by_names = {"category"};
  config.max_order = 1;
  config.threads = threads;
  return config;
}

// --- Parallel cube build ---------------------------------------------------

TEST(ParallelCore, CubeBuildBitIdenticalAcrossThreadCounts) {
  // 300 x 16 = 4800 rows: above the parallel-scan threshold.
  const SyntheticDataset ds = MakeDataset(11, /*length=*/300,
                                          /*categories=*/16);
  const ExplanationRegistry registry =
      ExplanationRegistry::Build(*ds.table, {0}, 1);
  for (const AggregateFunction f :
       {AggregateFunction::kSum, AggregateFunction::kAvg,
        AggregateFunction::kCount}) {
    const int measure_idx = f == AggregateFunction::kCount ? -1 : 0;
    const ExplanationCube serial(*ds.table, registry, f, measure_idx,
                                 /*threads=*/1);
    const ExplanationCube parallel(*ds.table, registry, f, measure_idx,
                                   /*threads=*/8);
    ASSERT_EQ(serial.n(), parallel.n());
    ASSERT_EQ(serial.num_explanations(), parallel.num_explanations());
    for (size_t t = 0; t < serial.n(); ++t) {
      EXPECT_EQ(serial.Overall(t), parallel.Overall(t));  // bitwise
      for (size_t e = 0; e < serial.num_explanations(); ++e) {
        EXPECT_EQ(serial.SliceValue(static_cast<ExplId>(e), t),
                  parallel.SliceValue(static_cast<ExplId>(e), t));
      }
    }
  }
}

TEST(ParallelCore, SmoothedParallelCubeBitIdentical) {
  const SyntheticDataset ds = MakeDataset(13, /*length=*/300,
                                          /*categories=*/16);
  const ExplanationRegistry registry =
      ExplanationRegistry::Build(*ds.table, {0}, 1);
  ExplanationCube serial(*ds.table, registry, AggregateFunction::kSum, 0, 1);
  ExplanationCube parallel(*ds.table, registry, AggregateFunction::kSum, 0,
                           8);
  serial.SmoothInPlace(7);
  parallel.SmoothInPlace(7);
  for (size_t t = 0; t < serial.n(); ++t) {
    EXPECT_EQ(serial.Overall(t), parallel.Overall(t));
    for (size_t e = 0; e < serial.num_explanations(); ++e) {
      EXPECT_EQ(serial.SliceValue(static_cast<ExplId>(e), t),
                parallel.SliceValue(static_cast<ExplId>(e), t));
    }
  }
}

// --- Batch scoring ---------------------------------------------------------

TEST(ParallelCore, ScoreAllMatchesScalarScore) {
  const SyntheticDataset ds = MakeDataset(17);
  const ExplanationRegistry registry =
      ExplanationRegistry::Build(*ds.table, {0}, 1);
  const ExplanationCube cube(*ds.table, registry, AggregateFunction::kSum,
                             0);
  const size_t epsilon = cube.num_explanations();
  // Alternating mask exercises the inactive-cell zeroing.
  std::vector<bool> mask(epsilon);
  for (size_t e = 0; e < epsilon; ++e) mask[e] = (e % 2 == 0);

  std::vector<double> gammas(epsilon, -1.0);
  for (const DiffMetricKind kind :
       {DiffMetricKind::kAbsoluteChange, DiffMetricKind::kRelativeChange,
        DiffMetricKind::kRiskRatio}) {
    for (const auto& [a, b] : std::vector<std::pair<size_t, size_t>>{
             {0, cube.n() - 1}, {3, 40}, {57, 58}}) {
      cube.ScoreAll(kind, a, b, nullptr, &gammas);
      for (size_t e = 0; e < epsilon; ++e) {
        EXPECT_EQ(gammas[e],
                  cube.Score(kind, static_cast<ExplId>(e), a, b).gamma)
            << "kind=" << static_cast<int>(kind) << " e=" << e;
      }
      cube.ScoreAll(kind, a, b, &mask, &gammas);
      for (size_t e = 0; e < epsilon; ++e) {
        const double expected =
            mask[e] ? cube.Score(kind, static_cast<ExplId>(e), a, b).gamma
                    : 0.0;
        EXPECT_EQ(gammas[e], expected);
      }
    }
  }
}

// --- Concurrent TopFor pre-warm -------------------------------------------

void ExpectIdenticalResults(const TSExplainResult& a,
                            const TSExplainResult& b) {
  EXPECT_EQ(a.segmentation.cuts, b.segmentation.cuts);
  EXPECT_EQ(a.chosen_k, b.chosen_k);
  EXPECT_EQ(a.k_variance_curve, b.k_variance_curve);
  ASSERT_EQ(a.segments.size(), b.segments.size());
  for (size_t s = 0; s < a.segments.size(); ++s) {
    EXPECT_EQ(a.segments[s].variance, b.segments[s].variance);
    ASSERT_EQ(a.segments[s].top.size(), b.segments[s].top.size());
    for (size_t r = 0; r < a.segments[s].top.size(); ++r) {
      EXPECT_EQ(a.segments[s].top[r].id, b.segments[s].top[r].id);
      EXPECT_EQ(a.segments[s].top[r].gamma, b.segments[s].top[r].gamma);
      EXPECT_EQ(a.segments[s].top[r].tau, b.segments[s].top[r].tau);
    }
  }
}

TEST(ParallelCore, PrewarmedPipelineBitIdenticalAndCaCountDeterministic) {
  const SyntheticDataset ds = MakeDataset(29);
  TSExplain single(*ds.table, BaseConfig(1));
  TSExplain multi(*ds.table, BaseConfig(8));
  ExpectIdenticalResults(single.Run(), multi.Run());
  // Single-flight + pre-warm dedup: the number of CA invocations (cache
  // misses) must not depend on the thread count.
  EXPECT_EQ(single.explainer().ca_invocations(),
            multi.explainer().ca_invocations());
  EXPECT_EQ(single.explainer().cache_size(),
            multi.explainer().cache_size());
}

TEST(ParallelCore, OptimizedPrewarmedPipelineDeterministic) {
  const SyntheticDataset ds = MakeDataset(31, /*length=*/200);
  TSExplainConfig one = BaseConfig(1);
  TSExplainConfig eight = BaseConfig(8);
  for (TSExplainConfig* config : {&one, &eight}) {
    config->use_filter = true;
    config->use_guess_verify = true;
    config->use_sketch = true;
  }
  TSExplain single(*ds.table, one);
  TSExplain multi(*ds.table, eight);
  ExpectIdenticalResults(single.Run(), multi.Run());
  EXPECT_EQ(single.explainer().ca_invocations(),
            multi.explainer().ca_invocations());
}

TEST(ParallelCore, PrewarmDuplicatesComputeOnce) {
  const SyntheticDataset ds = MakeDataset(37);
  TSExplain engine(*ds.table, BaseConfig(8));
  SegmentExplainer& explainer = engine.explainer();
  std::vector<std::pair<int, int>> segments;
  for (int rep = 0; rep < 4; ++rep) {
    for (int x = 0; x + 1 < 60; ++x) segments.emplace_back(x, x + 1);
  }
  explainer.Prewarm(segments, 8);
  EXPECT_EQ(explainer.ca_invocations(), 59u);
  EXPECT_EQ(explainer.cache_size(), 59u);
  // Re-warming is free: everything is a cache hit.
  explainer.Prewarm(segments, 8);
  EXPECT_EQ(explainer.ca_invocations(), 59u);
}

// ISSUE satellite: the timing breakdown is a non-negative partition of
// the run's wall clock BY CONSTRUCTION — even when the shared explainer
// counters were advanced by other threads (concurrent Prewarm) or exceed
// wall clock (per-thread elapsed sums at threads > 1). The old
// clamp-module-(c) scheme hid a negative remainder while reporting
// sum(modules) > total.
TEST(ParallelCore, TimingPartitionIsNonNegativeAndBounded) {
  // Deltas that overshoot the wall clock (double attribution) scale down.
  TimingBreakdown overshoot =
      TimingBreakdown::Partition(/*build_ms=*/10.0, /*precompute=*/80.0,
                                 /*cascading=*/40.0, /*wall_ms=*/60.0);
  EXPECT_GE(overshoot.precompute_ms, 10.0);
  EXPECT_GE(overshoot.cascading_ms, 0.0);
  EXPECT_GE(overshoot.segmentation_ms, 0.0);
  EXPECT_NEAR(overshoot.TotalMs(), 70.0, 1e-9);
  EXPECT_NEAR(overshoot.total_ms, 70.0, 1e-9);
  // Proportional split: 80:40 over 60 ms of wall clock.
  EXPECT_NEAR(overshoot.precompute_ms, 10.0 + 40.0, 1e-9);
  EXPECT_NEAR(overshoot.cascading_ms, 20.0, 1e-9);
  EXPECT_NEAR(overshoot.segmentation_ms, 0.0, 1e-9);

  // Well-behaved deltas pass through; (c) is the exact remainder.
  TimingBreakdown normal =
      TimingBreakdown::Partition(5.0, 10.0, 20.0, 100.0);
  EXPECT_NEAR(normal.precompute_ms, 15.0, 1e-9);
  EXPECT_NEAR(normal.cascading_ms, 20.0, 1e-9);
  EXPECT_NEAR(normal.segmentation_ms, 70.0, 1e-9);
  EXPECT_NEAR(normal.total_ms, 105.0, 1e-9);

  // Hostile inputs (negative deltas / zero wall) stay non-negative.
  TimingBreakdown hostile =
      TimingBreakdown::Partition(-3.0, -1.0, 5.0, 0.0);
  EXPECT_GE(hostile.precompute_ms, 0.0);
  EXPECT_GE(hostile.cascading_ms, 0.0);
  EXPECT_GE(hostile.segmentation_ms, 0.0);
  EXPECT_NEAR(hostile.TotalMs(), 0.0, 1e-9);
}

TEST(ParallelCore, RunTimingAtEightThreadsSumsWithinTotal) {
  SyntheticDataset ds = MakeDataset(77);
  TSExplain engine(*ds.table, BaseConfig(/*threads=*/8));
  for (int k : {0, 4}) {
    SegmentationSpec spec = SegmentationSpec::FromConfig(engine.config());
    spec.fixed_k = k;
    const TSExplainResult result = engine.Run(spec);
    EXPECT_GE(result.timing.precompute_ms, 0.0);
    EXPECT_GE(result.timing.cascading_ms, 0.0);
    EXPECT_GE(result.timing.segmentation_ms, 0.0);
    const double slack = 1e-6 * std::max(1.0, result.timing.total_ms);
    EXPECT_LE(result.timing.TotalMs(), result.timing.total_ms + slack);
  }
}

}  // namespace
}  // namespace tsexplain
