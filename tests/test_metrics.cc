// Unit coverage for the metrics registry (src/common/metrics.h): bucket
// `le` semantics, percentile interpolation, snapshot consistency while
// writers are running, JSON / Prometheus rendering, and ResetForTest.
// Every test uses an isolated MetricRegistry instance so nothing here
// perturbs the process-global registry other tests snapshot.

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "src/common/metrics.h"

namespace tsexplain {
namespace {

TEST(MetricsTest, CounterAndGaugeBasics) {
  MetricRegistry registry;
  Counter& counter = registry.GetCounter("test.events");
  EXPECT_EQ(counter.Value(), 0u);
  counter.Inc();
  counter.Inc(5);
  EXPECT_EQ(counter.Value(), 6u);

  Gauge& gauge = registry.GetGauge("test.level");
  gauge.Set(10);
  gauge.Add(-3);
  EXPECT_EQ(gauge.Value(), 7);
  gauge.SetMax(5);  // below current: no-op
  EXPECT_EQ(gauge.Value(), 7);
  gauge.SetMax(42);
  EXPECT_EQ(gauge.Value(), 42);

  // Create-or-fetch returns the same object for the same name.
  EXPECT_EQ(&counter, &registry.GetCounter("test.events"));
  EXPECT_EQ(&gauge, &registry.GetGauge("test.level"));
}

TEST(MetricsTest, HistogramBucketBoundariesAreLeSemantics) {
  MetricRegistry registry;
  Histogram& hist = registry.GetHistogram("test.ms", {1.0, 10.0, 100.0});
  hist.Observe(0.5);    // bucket 0 (le 1)
  hist.Observe(1.0);    // bucket 0: a value exactly on a bound counts there
  hist.Observe(1.0001); // bucket 1 (le 10)
  hist.Observe(10.0);   // bucket 1
  hist.Observe(100.0);  // bucket 2 (le 100)
  hist.Observe(150.0);  // overflow

  const MetricsSnapshot snapshot = registry.Snapshot();
  const HistogramSnapshot* hs = snapshot.FindHistogram("test.ms");
  ASSERT_NE(hs, nullptr);
  ASSERT_EQ(hs->counts.size(), 4u);  // 3 bounds + overflow
  EXPECT_EQ(hs->counts[0], 2u);
  EXPECT_EQ(hs->counts[1], 2u);
  EXPECT_EQ(hs->counts[2], 1u);
  EXPECT_EQ(hs->counts[3], 1u);
  EXPECT_EQ(hs->count, 6u);
  EXPECT_NEAR(hs->sum, 0.5 + 1.0 + 1.0001 + 10.0 + 100.0 + 150.0, 1e-9);

  // First registration wins: re-fetching with different bounds returns
  // the existing histogram unchanged.
  Histogram& again = registry.GetHistogram("test.ms", {7.0});
  EXPECT_EQ(&hist, &again);
  EXPECT_EQ(registry.Snapshot().FindHistogram("test.ms")->bounds.size(), 3u);
}

TEST(MetricsTest, PercentileInterpolatesWithinBucket) {
  MetricRegistry registry;
  Histogram& hist = registry.GetHistogram("test.ms", {10.0, 20.0});
  for (int i = 0; i < 10; ++i) hist.Observe(3.0);  // all land in (0, 10]

  const MetricsSnapshot snapshot = registry.Snapshot();
  const HistogramSnapshot* hs = snapshot.FindHistogram("test.ms");
  ASSERT_NE(hs, nullptr);
  // rank = p * count interpolated linearly inside the landing bucket
  // [0, 10]: p50 -> rank 5 of 10 -> halfway up the bucket.
  EXPECT_DOUBLE_EQ(hs->Percentile(0.50), 5.0);
  EXPECT_DOUBLE_EQ(hs->Percentile(1.0), 10.0);
  EXPECT_DOUBLE_EQ(hs->Percentile(0.0), 0.0);

  // Observations in the overflow bucket report its lower bound (the last
  // finite bound) rather than inventing an upper edge.
  MetricRegistry overflow_registry;
  Histogram& tail = overflow_registry.GetHistogram("test.tail_ms", {10.0, 20.0});
  tail.Observe(500.0);
  EXPECT_DOUBLE_EQ(
      overflow_registry.Snapshot().FindHistogram("test.tail_ms")->Percentile(
          0.99),
      20.0);

  // Empty histogram: every percentile is 0.
  MetricRegistry empty_registry;
  empty_registry.GetHistogram("test.empty_ms", {1.0});
  EXPECT_DOUBLE_EQ(
      empty_registry.Snapshot().FindHistogram("test.empty_ms")->Percentile(
          0.99),
      0.0);
}

TEST(MetricsTest, DefaultLatencyBoundsAreAscendingAndWide) {
  const std::vector<double> bounds = MetricRegistry::DefaultLatencyBoundsMs();
  ASSERT_GE(bounds.size(), 2u);
  EXPECT_DOUBLE_EQ(bounds.front(), 0.001);   // 1 microsecond
  EXPECT_DOUBLE_EQ(bounds.back(), 30000.0);  // 30 seconds
  for (size_t i = 1; i < bounds.size(); ++i) {
    EXPECT_LT(bounds[i - 1], bounds[i]);
  }
}

TEST(MetricsTest, SnapshotDuringWritesStaysConsistent) {
  MetricRegistry registry;
  Counter& counter = registry.GetCounter("test.writes");
  Histogram& hist = registry.GetHistogram("test.write_ms", {1.0, 10.0});

  constexpr int kWrites = 200000;
  std::thread writer([&] {
    for (int i = 0; i < kWrites; ++i) {
      counter.Inc();
      hist.Observe(i % 2 == 0 ? 0.5 : 5.0);
    }
  });

  // Snapshots taken mid-write must be internally consistent (histogram
  // count equals the sum of its buckets by construction) and observe
  // monotonically non-decreasing values across snapshots.
  uint64_t last_counter = 0;
  uint64_t last_hist_count = 0;
  for (int round = 0; round < 50; ++round) {
    const MetricsSnapshot snapshot = registry.Snapshot();
    const uint64_t* writes = snapshot.FindCounter("test.writes");
    const HistogramSnapshot* hs = snapshot.FindHistogram("test.write_ms");
    ASSERT_NE(writes, nullptr);
    ASSERT_NE(hs, nullptr);
    EXPECT_GE(*writes, last_counter);
    EXPECT_GE(hs->count, last_hist_count);
    uint64_t bucket_total = 0;
    for (uint64_t n : hs->counts) bucket_total += n;
    EXPECT_EQ(bucket_total, hs->count);
    last_counter = *writes;
    last_hist_count = hs->count;
  }
  writer.join();

  const MetricsSnapshot final_snapshot = registry.Snapshot();
  EXPECT_EQ(*final_snapshot.FindCounter("test.writes"),
            static_cast<uint64_t>(kWrites));
  const HistogramSnapshot* hs = final_snapshot.FindHistogram("test.write_ms");
  EXPECT_EQ(hs->count, static_cast<uint64_t>(kWrites));
  EXPECT_NEAR(hs->sum, kWrites / 2 * 0.5 + kWrites / 2 * 5.0, 1e-6);
}

TEST(MetricsTest, ResetForTestZeroesInPlace) {
  MetricRegistry registry;
  Counter& counter = registry.GetCounter("test.count");
  Gauge& gauge = registry.GetGauge("test.gauge");
  Histogram& hist = registry.GetHistogram("test.ms", {1.0});
  counter.Inc(9);
  gauge.Set(-4);
  hist.Observe(0.5);

  registry.ResetForTest();

  // The same references stay valid and read zero.
  EXPECT_EQ(counter.Value(), 0u);
  EXPECT_EQ(gauge.Value(), 0);
  const MetricsSnapshot snapshot = registry.Snapshot();
  const HistogramSnapshot* hs = snapshot.FindHistogram("test.ms");
  EXPECT_EQ(hs->count, 0u);
  EXPECT_DOUBLE_EQ(hs->sum, 0.0);

  counter.Inc();
  EXPECT_EQ(counter.Value(), 1u);
}

TEST(MetricsTest, FindHelpersReturnNullForUnknownNames) {
  MetricRegistry registry;
  registry.GetCounter("test.known");
  const MetricsSnapshot snapshot = registry.Snapshot();
  EXPECT_NE(snapshot.FindCounter("test.known"), nullptr);
  EXPECT_EQ(snapshot.FindCounter("test.unknown"), nullptr);
  EXPECT_EQ(snapshot.FindGauge("test.unknown"), nullptr);
  EXPECT_EQ(snapshot.FindHistogram("test.unknown"), nullptr);
}

TEST(MetricsTest, JsonRenderShape) {
  MetricRegistry registry;
  registry.GetCounter("test.hits").Inc(3);
  registry.GetGauge("test.depth").Set(-2);
  Histogram& hist = registry.GetHistogram("test.ms", {1.0, 10.0});
  hist.Observe(0.5);
  hist.Observe(99.0);  // overflow

  const std::string json = RenderMetricsJson(registry.Snapshot());
  EXPECT_NE(json.find("\"counters\":{\"test.hits\":3}"), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"gauges\":{\"test.depth\":-2}"), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"test.ms\":{\"count\":2"), std::string::npos) << json;
  // Bucket list is non-cumulative with a string "+Inf" terminal bound.
  EXPECT_NE(json.find("{\"le\":1,\"count\":1}"), std::string::npos) << json;
  EXPECT_NE(json.find("{\"le\":10,\"count\":0}"), std::string::npos) << json;
  EXPECT_NE(json.find("{\"le\":\"+Inf\",\"count\":1}"), std::string::npos)
      << json;
  // Compact single-line output (the server embeds it in NDJSON responses).
  EXPECT_EQ(json.find('\n'), std::string::npos);
}

TEST(MetricsTest, PrometheusRenderAndNameSanitization) {
  EXPECT_EQ(PrometheusMetricName("query.hot_ms"), "tsexplain_query_hot_ms");
  EXPECT_EQ(PrometheusMetricName("a-b c"), "tsexplain_a_b_c");
  EXPECT_EQ(PrometheusEscapeLabel("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");

  MetricRegistry registry;
  registry.GetCounter("test.hits").Inc(3);
  registry.GetGauge("test.depth").Set(7);
  Histogram& hist = registry.GetHistogram("test.ms", {1.0, 10.0});
  hist.Observe(0.5);
  hist.Observe(5.0);
  hist.Observe(99.0);

  const std::string text = RenderPrometheusText(registry.Snapshot());
  EXPECT_NE(text.find("# TYPE tsexplain_test_hits counter\n"
                      "tsexplain_test_hits 3\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("# TYPE tsexplain_test_depth gauge\n"
                      "tsexplain_test_depth 7\n"),
            std::string::npos)
      << text;
  // Histogram buckets are CUMULATIVE in the exposition format.
  EXPECT_NE(text.find("tsexplain_test_ms_bucket{le=\"1\"} 1\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("tsexplain_test_ms_bucket{le=\"10\"} 2\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("tsexplain_test_ms_bucket{le=\"+Inf\"} 3\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("tsexplain_test_ms_count 3\n"), std::string::npos)
      << text;
  EXPECT_NE(text.find("tsexplain_test_ms_sum "), std::string::npos) << text;
}

}  // namespace
}  // namespace tsexplain
