// Tests for the FLUSS semantic segmentation baseline.

#include <gtest/gtest.h>

#include <cmath>

#include "src/baselines/fluss.h"
#include "src/common/rng.h"

namespace tsexplain {
namespace {

// Series with an obvious regime change at `boundary`: slow sine before,
// fast sine after.
std::vector<double> TwoRegimeSeries(int n, int boundary, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> v(static_cast<size_t>(n));
  for (int t = 0; t < n; ++t) {
    const double freq = t < boundary ? 0.15 : 0.9;
    v[static_cast<size_t>(t)] =
        std::sin(t * freq) + 0.05 * rng.NextGaussian();
  }
  return v;
}

TEST(ArcCurveTest, ManualArcCounting) {
  // Hand-built matrix profile index: arcs 0<->3 and 1<->4 over 5 windows.
  MatrixProfile mp;
  mp.profile = {0, 0, 0, 0, 0};
  mp.index = {3, 4, -1, 0, 1};
  const std::vector<double> ac = ArcCurve(mp);
  ASSERT_EQ(ac.size(), 5u);
  // Arc (0,3) covers 1,2; arc (1,4) covers 2,3; each counted from both
  // endpoints -> doubled.
  EXPECT_DOUBLE_EQ(ac[0], 0.0);
  EXPECT_DOUBLE_EQ(ac[1], 2.0);
  EXPECT_DOUBLE_EQ(ac[2], 4.0);
  EXPECT_DOUBLE_EQ(ac[3], 2.0);
  EXPECT_DOUBLE_EQ(ac[4], 0.0);
}

TEST(CorrectedArcCurveTest, RangeAndEdgePinning) {
  const std::vector<double> v = TwoRegimeSeries(300, 150, 3);
  const int w = 10;
  const MatrixProfile mp = ComputeMatrixProfile(v, w);
  const std::vector<double> cac = CorrectedArcCurve(mp, w);
  for (double c : cac) {
    EXPECT_GE(c, 0.0);
    EXPECT_LE(c, 1.0);
  }
  for (size_t i = 0; i < static_cast<size_t>(5 * w); ++i) {
    EXPECT_DOUBLE_EQ(cac[i], 1.0);
    EXPECT_DOUBLE_EQ(cac[cac.size() - 1 - i], 1.0);
  }
}

TEST(CorrectedArcCurveTest, DipsAtRegimeBoundary) {
  const std::vector<double> v = TwoRegimeSeries(400, 200, 5);
  const int w = 12;
  const MatrixProfile mp = ComputeMatrixProfile(v, w);
  const std::vector<double> cac = CorrectedArcCurve(mp, w);
  // Minimum of the CAC should be near the true boundary.
  size_t argmin = 0;
  for (size_t i = 1; i < cac.size(); ++i) {
    if (cac[i] < cac[argmin]) argmin = i;
  }
  EXPECT_NEAR(static_cast<double>(argmin), 200.0, 30.0);
}

TEST(ExtractRegimesTest, ExclusionZoneEnforced) {
  std::vector<double> cac(200, 1.0);
  cac[50] = 0.1;
  cac[55] = 0.12;  // within the zone of 50: must be skipped
  cac[120] = 0.2;
  const std::vector<int> regimes = ExtractRegimes(cac, 3, 20);
  ASSERT_EQ(regimes.size(), 2u);  // third minimum unavailable
  EXPECT_EQ(regimes[0], 50);
  EXPECT_EQ(regimes[1], 120);
}

TEST(ExtractRegimesTest, StopsWhenNothingBelowCeiling) {
  const std::vector<double> cac(100, 1.0);
  EXPECT_TRUE(ExtractRegimes(cac, 5, 10).empty());
}

TEST(FlussSegmentTest, FindsTheBoundary) {
  const std::vector<double> v = TwoRegimeSeries(400, 200, 11);
  const std::vector<int> cuts = FlussSegment(v, 2, 12);
  ASSERT_EQ(cuts.size(), 3u);
  EXPECT_EQ(cuts.front(), 0);
  EXPECT_EQ(cuts.back(), 399);
  EXPECT_NEAR(static_cast<double>(cuts[1]), 200.0, 30.0);
}

TEST(FlussSegmentTest, KOneReturnsEndpointsOnly) {
  const std::vector<double> v = TwoRegimeSeries(100, 50, 13);
  EXPECT_EQ(FlussSegment(v, 1, 10), (std::vector<int>{0, 99}));
}

TEST(FlussSegmentTest, OversizedWindowDegradesGracefully) {
  const std::vector<double> v = TwoRegimeSeries(30, 15, 17);
  const std::vector<int> cuts = FlussSegment(v, 3, 40);
  EXPECT_EQ(cuts, (std::vector<int>{0, 29}));
}

}  // namespace
}  // namespace tsexplain
