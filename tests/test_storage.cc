// src/storage/ — the persistence layer's format contracts.
//
// The load-bearing claims under test (docs/STORAGE.md):
//   * TableSnapshot round trips are BIT-identical: schema, time labels,
//     dictionary ids, int32 codes, and raw IEEE double bits all survive,
//     so explanation output from a snapshot-loaded table equals the
//     CSV-loaded output byte for byte.
//   * Corrupted / truncated / hostile files of every format fail with a
//     structured StorageErrorCode — never an abort, never an out-of-bounds
//     read (this suite runs under ASan/UBSan in CI).
//   * AppendLog recovery: records are valid strictly in order; a torn
//     tail is detected, everything before it replays, and TruncateTornTail
//     makes the file clean again.

#include <gtest/gtest.h>

#include <unistd.h>

#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <type_traits>
#include <vector>

#include "src/pipeline/report_json.h"
#include "src/pipeline/tsexplain.h"
#include "src/storage/append_log.h"
#include "src/storage/cache_snapshot.h"
#include "src/storage/format.h"
#include "src/storage/session_log.h"
#include "src/storage/table_snapshot.h"
#include "src/table/csv_reader.h"
#include "src/table/table.h"

namespace tsexplain {
namespace storage {
namespace {

// Unique temp path per test AND per process (the pid matters: the append
// log opens in append mode, so a leftover file from a previous run of
// this binary would otherwise leak records into the next). Files are
// small and /tmp is cleaned by the environment; std::tmpnam would trip
// -Werror deprecation warnings.
std::string TempPath(const std::string& tag) {
  static int counter = 0;
  const std::string path = testing::TempDir() + "/tsx_storage_" +
                           std::to_string(::getpid()) + "_" + tag + "_" +
                           std::to_string(++counter);
  std::remove(path.c_str());
  return path;
}

void WriteRawFile(const std::string& path, const std::string& bytes) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), f), bytes.size());
  std::fclose(f);
}

std::string ReadRawFile(const std::string& path) {
  std::string contents;
  EXPECT_TRUE(ReadFileToString(path, &contents).ok());
  return contents;
}

// A small table exercising the encoding corners: empty-string dictionary
// values, shared values across rows, negative / tiny / NaN measures (NaN
// must survive by BIT pattern, which `==` cannot check — the comparisons
// below go through memcmp).
std::unique_ptr<Table> MakeCornerTable() {
  auto table = std::make_unique<Table>(
      Schema("day", {"region", "product"}, {"sales", "margin"}));
  const char* regions[] = {"east", "", "west", "east"};
  const char* products[] = {"", "socks", "socks", "hats"};
  const double sales[] = {1.5, -0.0, std::nan(""), 1e-300};
  const double margin[] = {-2.25, 3.0, 0.125, 7e30};
  for (int t = 0; t < 3; ++t) {
    table->AddTimeBucket("d" + std::to_string(t));
    for (int r = 0; r < 4; ++r) {
      table->AppendRow(t, {regions[r], products[r]},
                       {sales[r] + t, margin[r] - t});
    }
  }
  return table;
}

// Accepts any contiguous container pair with matching value_type
// (std::vector, ColumnRef in either owned or borrowed state).
template <typename A, typename B>
void ExpectBitIdentical(const A& a, const B& b) {
  using T = typename A::value_type;
  static_assert(std::is_same<T, typename B::value_type>::value,
                "mismatched element types");
  ASSERT_EQ(a.size(), b.size());
  if (a.empty()) return;  // data() may be null; memcmp(null, ...) is UB
  EXPECT_EQ(std::memcmp(a.data(), b.data(), a.size() * sizeof(T)), 0);
}

void ExpectTablesBitIdentical(const Table& a, const Table& b) {
  EXPECT_EQ(a.schema().time_name(), b.schema().time_name());
  EXPECT_EQ(a.schema().dimension_names(), b.schema().dimension_names());
  EXPECT_EQ(a.schema().measure_names(), b.schema().measure_names());
  EXPECT_EQ(a.time_labels(), b.time_labels());
  ExpectBitIdentical(a.time_column(), b.time_column());
  for (size_t d = 0; d < a.schema().num_dimensions(); ++d) {
    const AttrId attr = static_cast<AttrId>(d);
    EXPECT_EQ(a.dictionary(attr).values(), b.dictionary(attr).values());
    ExpectBitIdentical(a.dim_column(attr), b.dim_column(attr));
  }
  for (size_t m = 0; m < a.schema().num_measures(); ++m) {
    ExpectBitIdentical(a.measure_column(static_cast<int>(m)),
                       b.measure_column(static_cast<int>(m)));
  }
  EXPECT_EQ(TableFingerprint(a), TableFingerprint(b));
}

// --- Framing ---------------------------------------------------------------

constexpr char kTestMagic[] = "TSXTEST1";

TEST(Format, FramedFileRoundTrip) {
  const std::string path = TempPath("frame");
  const std::string payload("hello\0world payload", 19);
  ASSERT_TRUE(WriteFramedFile(path, kTestMagic, payload).ok());
  std::string read_back;
  ASSERT_TRUE(ReadFramedFile(path, kTestMagic, &read_back).ok());
  EXPECT_EQ(read_back, payload);
  // The atomic-write temp file must be gone.
  std::string probe;
  EXPECT_EQ(ReadFileToString(path + ".tmp", &probe).code,
            StorageErrorCode::kIoError);
}

TEST(Format, WrongMagicIsRejected) {
  const std::string path = TempPath("magic");
  ASSERT_TRUE(WriteFramedFile(path, kTestMagic, "payload").ok());
  std::string payload;
  EXPECT_EQ(ReadFramedFile(path, "TSXOTHER", &payload).code,
            StorageErrorCode::kBadMagic);
}

TEST(Format, ShortFileIsRejectedNotOverread) {
  const std::string path = TempPath("short");
  WriteRawFile(path, "TSX");  // shorter than the magic itself
  std::string payload;
  EXPECT_EQ(ReadFramedFile(path, kTestMagic, &payload).code,
            StorageErrorCode::kBadMagic);
  WriteRawFile(path, std::string(kTestMagic, 8) + "xy");  // torn header
  EXPECT_EQ(ReadFramedFile(path, kTestMagic, &payload).code,
            StorageErrorCode::kTruncated);
}

TEST(Format, TruncatedPayloadIsRejected) {
  const std::string path = TempPath("trunc");
  ASSERT_TRUE(WriteFramedFile(path, kTestMagic, "0123456789").ok());
  std::string full = ReadRawFile(path);
  WriteRawFile(path, full.substr(0, full.size() - 3));
  std::string payload;
  EXPECT_EQ(ReadFramedFile(path, kTestMagic, &payload).code,
            StorageErrorCode::kTruncated);
}

TEST(Format, FlippedPayloadByteFailsChecksum) {
  const std::string path = TempPath("crc");
  ASSERT_TRUE(WriteFramedFile(path, kTestMagic, "0123456789").ok());
  std::string full = ReadRawFile(path);
  full[full.size() - 4] ^= 0x40;
  WriteRawFile(path, full);
  std::string payload;
  EXPECT_EQ(ReadFramedFile(path, kTestMagic, &payload).code,
            StorageErrorCode::kChecksumMismatch);
}

TEST(Format, ByteReaderBoundsCheckEveryAccess) {
  const std::string bytes("\x02\x00\x00\x00xy", 6);  // u32(2) + 2 bytes
  ByteReader r(bytes.data(), bytes.size());
  std::string s;
  EXPECT_TRUE(r.ReadString(&s));
  EXPECT_EQ(s, "xy");
  uint32_t v = 0;
  EXPECT_FALSE(r.ReadU32(&v));  // past the end
  EXPECT_TRUE(r.failed());      // and the failure latches
  EXPECT_FALSE(r.ReadU8(reinterpret_cast<uint8_t*>(&v)));

  // A declared string length beyond the buffer must fail, not over-read.
  const std::string lying = std::string("\xff\xff\xff\x7f", 4) + "abc";
  ByteReader r2(lying.data(), lying.size());
  EXPECT_FALSE(r2.ReadString(&s));
  EXPECT_TRUE(r2.failed());

  // Array counts are validated against the remaining bytes BEFORE any
  // resize, so a hostile count cannot drive a huge allocation.
  ByteReader r3(lying.data(), lying.size());
  std::vector<int32_t> ints;
  EXPECT_FALSE(r3.ReadI32Array(&ints, (1ull << 62)));
}

// --- TableSnapshot ---------------------------------------------------------

TEST(TableSnapshot, RoundTripIsBitIdentical) {
  const std::unique_ptr<Table> table = MakeCornerTable();
  const std::string path = TempPath("table");
  ASSERT_TRUE(WriteTableSnapshot(*table, path).ok());
  const TableSnapshotResult loaded = ReadTableSnapshot(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status.message;
  ExpectTablesBitIdentical(*table, *loaded.table);
}

TEST(TableSnapshot, EmptyTableRoundTrips) {
  const Table table(Schema("t", {"dim"}, {"m"}));
  const std::string path = TempPath("empty");
  ASSERT_TRUE(WriteTableSnapshot(table, path).ok());
  const TableSnapshotResult loaded = ReadTableSnapshot(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status.message;
  EXPECT_EQ(loaded.table->num_rows(), 0u);
  EXPECT_EQ(loaded.table->num_time_buckets(), 0u);
  ExpectTablesBitIdentical(table, *loaded.table);
}

TEST(TableSnapshot, Beyond16BitDictionaryRoundTrips) {
  // >65k distinct values: ids must not be silently narrowed anywhere.
  Table table(Schema("t", {"key"}, {"v"}));
  constexpr int kDistinct = 70000;
  table.AddTimeBucket("t0");
  table.AddTimeBucket("t1");
  for (int i = 0; i < kDistinct; ++i) {
    const std::string value = "k" + std::to_string(i);
    table.AppendRow(i % 2, {value}, {static_cast<double>(i)});
  }
  const std::string path = TempPath("wide");
  ASSERT_TRUE(WriteTableSnapshot(table, path).ok());
  const TableSnapshotResult loaded = ReadTableSnapshot(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status.message;
  ASSERT_EQ(loaded.table->dictionary(0).size(),
            static_cast<size_t>(kDistinct));
  EXPECT_EQ(loaded.table->dictionary(0).ToString(65537), "k65537");
  ExpectTablesBitIdentical(table, *loaded.table);
}

TEST(TableSnapshot, ExplanationFromSnapshotEqualsCsvByteForByte) {
  // The acceptance bar: load the same data via CSV and via snapshot, run
  // the full pipeline on both, compare the rendered JSON byte for byte
  // (timings zeroed: they measure wall clock, not results).
  std::string csv = "date,region,sales\n";
  for (int t = 0; t < 12; ++t) {
    csv += std::to_string(t) + ",east," + std::to_string(10 + t) + "\n";
    csv += std::to_string(t) + ",west," + std::to_string(30 - 2 * t) + "\n";
    csv += std::to_string(t) + ",north," + std::to_string(5 + (t % 4)) + "\n";
  }
  CsvOptions options;
  options.time_column = "date";
  options.measure_columns = {"sales"};
  const CsvResult from_csv = ReadCsvFromString(csv, options);
  ASSERT_TRUE(from_csv.ok()) << from_csv.error;

  const std::string path = TempPath("pipeline");
  ASSERT_TRUE(WriteTableSnapshot(*from_csv.table, path).ok());
  const TableSnapshotResult from_snapshot = ReadTableSnapshot(path);
  ASSERT_TRUE(from_snapshot.ok()) << from_snapshot.status.message;
  ExpectTablesBitIdentical(*from_csv.table, *from_snapshot.table);

  TSExplainConfig config;
  config.measure = "sales";
  config.explain_by_names = {"region"};
  config.fixed_k = 3;
  TSExplain csv_engine(*from_csv.table, config);
  TSExplain snapshot_engine(*from_snapshot.table, config);
  TSExplainResult csv_result = csv_engine.Run();
  TSExplainResult snapshot_result = snapshot_engine.Run();
  csv_result.timing = TimingBreakdown();
  snapshot_result.timing = TimingBreakdown();
  EXPECT_EQ(RenderJsonReport(csv_engine, csv_result),
            RenderJsonReport(snapshot_engine, snapshot_result));
}

TEST(TableSnapshot, MissingFileIsIoError) {
  const TableSnapshotResult loaded =
      ReadTableSnapshot(TempPath("nonexistent"));
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status.code, StorageErrorCode::kIoError);
}

TEST(TableSnapshot, CorruptedFilesFailStructurally) {
  const std::unique_ptr<Table> table = MakeCornerTable();
  const std::string path = TempPath("corrupt");
  ASSERT_TRUE(WriteTableSnapshot(*table, path).ok());
  const std::string good = ReadRawFile(path);

  // Wrong magic.
  std::string bad = good;
  bad[0] = 'X';
  WriteRawFile(path, bad);
  EXPECT_EQ(ReadTableSnapshot(path).status.code,
            StorageErrorCode::kBadMagic);

  // Every possible truncation point must fail with a structured code —
  // and, critically for ASan, never read out of bounds. Sample the space.
  for (size_t keep = 0; keep < good.size(); keep += 7) {
    WriteRawFile(path, good.substr(0, keep));
    const TableSnapshotResult loaded = ReadTableSnapshot(path);
    EXPECT_FALSE(loaded.ok()) << "truncated to " << keep << " bytes";
  }

  // A flipped byte deep in the payload: the CRC catches it before any
  // content is interpreted.
  bad = good;
  bad[good.size() / 2] ^= 0x01;
  WriteRawFile(path, bad);
  EXPECT_EQ(ReadTableSnapshot(path).status.code,
            StorageErrorCode::kChecksumMismatch);

  // Trailing garbage after the declared payload.
  WriteRawFile(path, good + "extra");
  EXPECT_EQ(ReadTableSnapshot(path).status.code,
            StorageErrorCode::kTruncated);  // declared != actual length
}

// The owned reader (ReadTableSnapshot) and the zero-copy mmap open
// (OpenTableSnapshot) are interchangeable to the service, so they must
// reject identically: same StorageErrorCode for the same corrupt bytes.
// Sweeps every truncation point and every single-byte flip of a real
// snapshot through BOTH paths.
TEST(TableSnapshot, OwnedAndMappedRejectIdentically) {
  const std::unique_ptr<Table> table = MakeCornerTable();
  const std::string path = TempPath("bothpaths");
  ASSERT_TRUE(WriteTableSnapshot(*table, path).ok());
  const std::string good = ReadRawFile(path);

  const auto expect_same = [&](const std::string& label) {
    const TableSnapshotResult owned = ReadTableSnapshot(path);
    const TableSnapshotResult mapped = OpenTableSnapshot(path);
    EXPECT_EQ(owned.ok(), mapped.ok()) << label;
    EXPECT_EQ(owned.status.code, mapped.status.code)
        << label << ": owned='" << owned.status.message << "' mapped='"
        << mapped.status.message << "'";
    if (owned.ok() && mapped.ok()) {
      EXPECT_EQ(owned.fingerprint, mapped.fingerprint) << label;
    }
  };

  expect_same("intact file");
  for (size_t keep = 0; keep < good.size(); ++keep) {
    WriteRawFile(path, good.substr(0, keep));
    expect_same("truncated to " + std::to_string(keep) + " bytes");
  }
  for (size_t at = 0; at < good.size(); ++at) {
    std::string bad = good;
    bad[at] ^= 0x10;
    WriteRawFile(path, bad);
    expect_same("byte " + std::to_string(at) + " flipped");
  }
}

// Builds a framed snapshot file whose PAYLOAD is hand-crafted — the CRC
// is valid, so the reader must reject the content structurally.
void WriteCraftedSnapshot(const std::string& path, const ByteWriter& w) {
  ASSERT_TRUE(WriteFramedFile(path, kTableSnapshotMagic, w.buffer()).ok());
}

TEST(TableSnapshot, FutureVersionIsRejected) {
  ByteWriter w;
  w.WriteU32(kTableSnapshotVersion + 7);
  const std::string path = TempPath("version");
  WriteCraftedSnapshot(path, w);
  EXPECT_EQ(ReadTableSnapshot(path).status.code,
            StorageErrorCode::kBadVersion);
}

// v2 aligns column blocks at their ABSOLUTE file offset, so crafted
// payloads pad with the frame prologue's phase (20 % 8).
constexpr size_t kCraftAlignPhase = kFramePrologueBytes % 8;

// Shared prefix: version + fingerprint + 1-dim/1-measure schema + 1 row +
// 1 bucket. The fingerprint field is not validated against content (the
// CRC vouches for the payload), so a zero placeholder is accepted.
ByteWriter CraftHeader() {
  ByteWriter w;
  w.WriteU32(kTableSnapshotVersion);
  w.WriteU64(0);  // fingerprint placeholder
  w.WriteString("t");
  w.WriteU32(1);
  w.WriteString("dim");
  w.WriteU32(1);
  w.WriteString("m");
  w.WriteU64(1);  // nrows
  w.WriteU64(1);  // nbuckets
  w.WriteString("t0");
  return w;
}

TEST(TableSnapshot, OutOfRangeDimensionCodeIsFormatError) {
  ByteWriter w = CraftHeader();
  w.WriteU64(1);  // dictionary: one value
  w.WriteString("a");
  w.AlignTo(8, kCraftAlignPhase);
  w.WriteI32Array({0});  // time column: ok
  w.AlignTo(8, kCraftAlignPhase);
  w.WriteI32Array({5});  // dim code 5 >= dict size 1
  w.AlignTo(8, kCraftAlignPhase);
  w.WriteF64Array({1.0});
  const std::string path = TempPath("badcode");
  WriteCraftedSnapshot(path, w);
  const TableSnapshotResult loaded = ReadTableSnapshot(path);
  EXPECT_EQ(loaded.status.code, StorageErrorCode::kFormatError);
}

TEST(TableSnapshot, OutOfRangeTimeIdIsFormatError) {
  ByteWriter w = CraftHeader();
  w.WriteU64(1);
  w.WriteString("a");
  w.AlignTo(8, kCraftAlignPhase);
  w.WriteI32Array({3});  // time id 3 >= 1 bucket
  w.AlignTo(8, kCraftAlignPhase);
  w.WriteI32Array({0});
  w.AlignTo(8, kCraftAlignPhase);
  w.WriteF64Array({1.0});
  const std::string path = TempPath("badtime");
  WriteCraftedSnapshot(path, w);
  EXPECT_EQ(ReadTableSnapshot(path).status.code,
            StorageErrorCode::kFormatError);
}

TEST(TableSnapshot, DuplicateDictionaryValueIsFormatError) {
  ByteWriter w = CraftHeader();
  w.WriteU64(2);
  w.WriteString("a");
  w.WriteString("a");  // duplicate: two ids would alias one string
  const std::string path = TempPath("dupdict");
  WriteCraftedSnapshot(path, w);
  EXPECT_EQ(ReadTableSnapshot(path).status.code,
            StorageErrorCode::kFormatError);
}

TEST(TableSnapshot, TrailingPayloadBytesAreFormatError) {
  const std::unique_ptr<Table> table = MakeCornerTable();
  const std::string payload = EncodeTableSnapshotPayload(*table);
  const std::string path = TempPath("trailing");
  ASSERT_TRUE(
      WriteFramedFile(path, kTableSnapshotMagic, payload + "junk").ok());
  EXPECT_EQ(ReadTableSnapshot(path).status.code,
            StorageErrorCode::kFormatError);
}

TEST(TableSnapshot, FingerprintTracksContent) {
  const std::unique_ptr<Table> a = MakeCornerTable();
  const std::unique_ptr<Table> b = MakeCornerTable();
  EXPECT_EQ(TableFingerprint(*a), TableFingerprint(*b));
  b->AddTimeBucket("extra");
  EXPECT_NE(TableFingerprint(*a), TableFingerprint(*b));
}

TEST(TableSnapshot, MagicSniffDetectsSnapshots) {
  const std::unique_ptr<Table> table = MakeCornerTable();
  const std::string path = TempPath("sniff");
  ASSERT_TRUE(WriteTableSnapshot(*table, path).ok());
  EXPECT_TRUE(IsTableSnapshotFile(path));
  WriteRawFile(path, "date,region\n0,east\n");
  EXPECT_FALSE(IsTableSnapshotFile(path));
  EXPECT_FALSE(IsTableSnapshotFile(TempPath("missing")));
}

// --- AppendLog -------------------------------------------------------------

TEST(AppendLog, RoundTripPreservesRecordsInOrder) {
  const std::string path = TempPath("log");
  AppendLogWriter writer;
  ASSERT_TRUE(writer.Open(path).ok());
  const std::vector<std::string> records = {"first", std::string("\0\1", 2),
                                            "", "last"};
  for (const std::string& record : records) {
    ASSERT_TRUE(writer.Append(record).ok());
  }
  writer.Close();

  // Re-open appends rather than truncating.
  ASSERT_TRUE(writer.Open(path).ok());
  ASSERT_TRUE(writer.Append("fifth").ok());
  writer.Close();

  const AppendLogReadResult read = ReadAppendLog(path);
  ASSERT_TRUE(read.ok()) << read.status.message;
  EXPECT_FALSE(read.torn);
  ASSERT_EQ(read.records.size(), 5u);
  for (size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(read.records[i], records[i]);
  }
  EXPECT_EQ(read.records[4], "fifth");
}

TEST(AppendLog, TornTailIsDetectedAndTruncatable) {
  const std::string path = TempPath("torn");
  AppendLogWriter writer;
  ASSERT_TRUE(writer.Open(path).ok());
  ASSERT_TRUE(writer.Append("intact-1").ok());
  ASSERT_TRUE(writer.Append("intact-2").ok());
  writer.Close();
  const std::string good = ReadRawFile(path);

  // Crash scenarios: a partial frame header, a partial payload, and a
  // full-length frame whose payload bytes were damaged.
  const std::string partial_header = good + "\x05";
  const std::string partial_payload =
      good + std::string("\x10\x00\x00\x00", 4) +
      std::string("\xde\xad\xbe\xef", 4) + "only-half";
  std::string damaged = good;
  damaged[damaged.size() - 1] ^= 0x20;

  for (const std::string& contents :
       {partial_header, partial_payload, damaged}) {
    WriteRawFile(path, contents);
    const AppendLogReadResult read = ReadAppendLog(path);
    ASSERT_TRUE(read.ok()) << read.status.message;
    EXPECT_TRUE(read.torn);
    // The damaged variant loses its second record; the others keep both.
    ASSERT_GE(read.records.size(), 1u);
    EXPECT_EQ(read.records[0], "intact-1");

    // Truncating the torn tail yields a clean log holding exactly the
    // surviving prefix.
    ASSERT_TRUE(TruncateTornTail(path, read.valid_bytes).ok());
    const AppendLogReadResult clean = ReadAppendLog(path);
    ASSERT_TRUE(clean.ok());
    EXPECT_FALSE(clean.torn);
    EXPECT_EQ(clean.records.size(), read.records.size());
  }
}

TEST(AppendLog, ImpossibleLengthEndsTheLogSafely) {
  const std::string path = TempPath("hugelen");
  AppendLogWriter writer;
  ASSERT_TRUE(writer.Open(path).ok());
  ASSERT_TRUE(writer.Append("real").ok());
  writer.Close();
  // A frame claiming ~4 GiB: must be treated as torn, not allocated.
  std::string contents = ReadRawFile(path);
  contents += std::string("\xff\xff\xff\xff", 4) + std::string(8, 'x');
  WriteRawFile(path, contents);
  const AppendLogReadResult read = ReadAppendLog(path);
  ASSERT_TRUE(read.ok());
  EXPECT_TRUE(read.torn);
  ASSERT_EQ(read.records.size(), 1u);
}

TEST(AppendLog, NonLogFileIsRejected) {
  const std::string path = TempPath("notalog");
  WriteRawFile(path, "this is not a log file at all");
  EXPECT_EQ(ReadAppendLog(path).status.code, StorageErrorCode::kBadMagic);
  EXPECT_EQ(ReadAppendLog(TempPath("absent")).status.code,
            StorageErrorCode::kIoError);
}

// --- SessionLog ------------------------------------------------------------

TSExplainConfig SessionConfig() {
  TSExplainConfig config;
  config.measure = "sales";
  config.explain_by_names = {"region"};
  config.fixed_k = 2;
  config.exclude = {"region=unknown"};
  config.use_filter = true;
  config.filter_ratio = 0.25;
  return config;
}

std::unique_ptr<Table> MakeSessionBase() {
  auto table = std::make_unique<Table>(Schema("t", {"region"}, {"sales"}));
  for (int t = 0; t < 6; ++t) {
    table->AddTimeBucket("t" + std::to_string(t));
    table->AppendRow(t, {"east"}, {10.0 + t});
    table->AppendRow(t, {"west"}, {20.0 - t});
  }
  return table;
}

std::vector<StreamRow> BucketRows(int t) {
  return {{{"east"}, {30.0 + t}}, {{"west"}, {11.0 - t}}};
}

TEST(SessionLog, HeaderAndAppendsRoundTrip) {
  const std::unique_ptr<Table> base = MakeSessionBase();
  const TSExplainConfig config = SessionConfig();
  const std::string path = TempPath("session");
  SessionLogWriter writer;
  ASSERT_TRUE(
      writer.Open(path, "sales", TableFingerprint(*base), config).ok());
  ASSERT_TRUE(writer.LogAppend("t6", BucketRows(0)).ok());
  ASSERT_TRUE(writer.LogAppend("t7", BucketRows(1)).ok());
  writer.Close();

  SessionLogContents contents;
  ASSERT_TRUE(ReadSessionLog(path, &contents).ok());
  EXPECT_EQ(contents.dataset, "sales");
  EXPECT_EQ(contents.base_fingerprint, TableFingerprint(*base));
  EXPECT_FALSE(contents.torn);
  EXPECT_EQ(contents.config.measure, config.measure);
  EXPECT_EQ(contents.config.explain_by_names, config.explain_by_names);
  EXPECT_EQ(contents.config.fixed_k, config.fixed_k);
  EXPECT_EQ(contents.config.exclude, config.exclude);
  EXPECT_EQ(contents.config.use_filter, config.use_filter);
  EXPECT_EQ(contents.config.filter_ratio, config.filter_ratio);
  ASSERT_EQ(contents.appends.size(), 2u);
  EXPECT_EQ(contents.appends[0].label, "t6");
  ASSERT_EQ(contents.appends[1].rows.size(), 2u);
  EXPECT_EQ(contents.appends[1].rows[0].dims, std::vector<std::string>{"east"});
  EXPECT_EQ(contents.appends[1].rows[0].measures, std::vector<double>{31.0});
}

TEST(SessionLog, RecoveryReplaysToBitIdenticalState) {
  const std::unique_ptr<Table> base = MakeSessionBase();
  const TSExplainConfig config = SessionConfig();
  const std::string path = TempPath("recover");

  // The "crashed" session: logs two appends, never closes cleanly.
  StreamingTSExplain live(*base, config);
  {
    SessionLogWriter writer;
    ASSERT_TRUE(
        writer.Open(path, "sales", TableFingerprint(*base), config).ok());
    SessionLogWriter* w = &writer;
    live.set_append_observer(
        [w](const std::string& label, const std::vector<StreamRow>& rows) {
          ASSERT_TRUE(w->LogAppend(label, rows).ok());
        });
    live.AppendBucket("t6", BucketRows(0));
    live.AppendBucket("t7", BucketRows(1));
    live.set_append_observer(nullptr);
  }

  SessionRecoveryResult recovered = RecoverStreamingSession(*base, path);
  ASSERT_TRUE(recovered.ok()) << recovered.status.message;
  EXPECT_EQ(recovered.contents.appends.size(), 2u);
  EXPECT_FALSE(recovered.contents.torn);
  ASSERT_EQ(recovered.engine->n(), live.n());
  TSExplainResult want = live.Explain();
  TSExplainResult got = recovered.engine->Explain();
  want.timing = TimingBreakdown();
  got.timing = TimingBreakdown();
  EXPECT_EQ(RenderJsonReport(live.cube(), want),
            RenderJsonReport(recovered.engine->cube(), got));
}

TEST(SessionLog, RecoveryFencesAChangedBaseTable) {
  const std::unique_ptr<Table> base = MakeSessionBase();
  const std::string path = TempPath("fence");
  SessionLogWriter writer;
  ASSERT_TRUE(writer.Open(path, "sales", TableFingerprint(*base),
                          SessionConfig())
                  .ok());
  writer.Close();

  std::unique_ptr<Table> changed = MakeSessionBase();
  changed->AppendRow(0, {"east"}, {999.0});
  const SessionRecoveryResult recovered =
      RecoverStreamingSession(*changed, path);
  EXPECT_FALSE(recovered.ok());
  EXPECT_EQ(recovered.status.code, StorageErrorCode::kFormatError);
  EXPECT_NE(recovered.status.message.find("fingerprint"), std::string::npos);
}

TEST(SessionLog, TornTailLosesOnlyTheInFlightAppend) {
  const std::unique_ptr<Table> base = MakeSessionBase();
  const std::string path = TempPath("sessiontorn");
  SessionLogWriter writer;
  ASSERT_TRUE(writer.Open(path, "sales", TableFingerprint(*base),
                          SessionConfig())
                  .ok());
  ASSERT_TRUE(writer.LogAppend("t6", BucketRows(0)).ok());
  ASSERT_TRUE(writer.LogAppend("t7", BucketRows(1)).ok());
  writer.Close();
  // Crash mid-append: only half of the last record's frame made it out.
  const std::string full = ReadRawFile(path);
  WriteRawFile(path, full.substr(0, full.size() - 5));

  const SessionRecoveryResult recovered =
      RecoverStreamingSession(*base, path);
  ASSERT_TRUE(recovered.ok()) << recovered.status.message;
  EXPECT_TRUE(recovered.contents.torn);
  ASSERT_EQ(recovered.contents.appends.size(), 1u);
  EXPECT_EQ(recovered.contents.appends[0].label, "t6");
  EXPECT_EQ(recovered.engine->n(), 7);
}

TEST(SessionLog, ReplayRejectsWrongRowShapeStructurally) {
  // A CRC-valid log whose rows do not match the base schema (crafted, or
  // written against a different table) must be a structured error — the
  // TSE_CHECKs inside Table::AppendRow must never see it.
  const std::unique_ptr<Table> base = MakeSessionBase();
  const std::string path = TempPath("badshape");
  SessionLogWriter writer;
  ASSERT_TRUE(writer.Open(path, "sales", TableFingerprint(*base),
                          SessionConfig())
                  .ok());
  const std::vector<StreamRow> two_dims = {{{"east", "extra"}, {1.0}}};
  ASSERT_TRUE(writer.LogAppend("t6", two_dims).ok());
  writer.Close();

  const SessionRecoveryResult recovered =
      RecoverStreamingSession(*base, path);
  EXPECT_FALSE(recovered.ok());
  EXPECT_EQ(recovered.status.code, StorageErrorCode::kFormatError);
  EXPECT_NE(recovered.status.message.find("shape"), std::string::npos);
}

TEST(SessionLog, MalformedHeaderIsStructural) {
  const std::string path = TempPath("badheader");
  AppendLogWriter raw;
  ASSERT_TRUE(raw.Open(path).ok());
  ASSERT_TRUE(raw.Append("not a session header").ok());
  raw.Close();
  SessionLogContents contents;
  EXPECT_EQ(ReadSessionLog(path, &contents).code,
            StorageErrorCode::kFormatError);

  // An empty log (magic only) is truncated, not malformed.
  const std::string empty_path = TempPath("emptylog");
  AppendLogWriter empty;
  ASSERT_TRUE(empty.Open(empty_path).ok());
  empty.Close();
  EXPECT_EQ(ReadSessionLog(empty_path, &contents).code,
            StorageErrorCode::kTruncated);
}

// --- CacheSnapshot ---------------------------------------------------------

TEST(CacheSnapshot, RoundTripPreservesStampsAndOrder) {
  CacheSnapshot snapshot;
  snapshot.datasets.push_back({"sales", 7, 0xabcdef0123456789ull});
  snapshot.datasets.push_back({"ops", 9, 42});
  snapshot.entries.push_back({"key-lru-oldest", "{\"a\":1}"});
  snapshot.entries.push_back({"key-newer", std::string("\0binary\1", 8)});
  snapshot.entries.push_back({"", ""});  // empty key/json must survive
  const std::string path = TempPath("cache");
  ASSERT_TRUE(WriteCacheSnapshot(snapshot, path).ok());

  CacheSnapshot loaded;
  ASSERT_TRUE(ReadCacheSnapshot(path, &loaded).ok());
  ASSERT_EQ(loaded.datasets.size(), 2u);
  EXPECT_EQ(loaded.datasets[0].name, "sales");
  EXPECT_EQ(loaded.datasets[0].uid, 7u);
  EXPECT_EQ(loaded.datasets[0].fingerprint, 0xabcdef0123456789ull);
  ASSERT_EQ(loaded.entries.size(), 3u);
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(loaded.entries[i].key, snapshot.entries[i].key);
    EXPECT_EQ(loaded.entries[i].json, snapshot.entries[i].json);
  }
}

TEST(CacheSnapshot, CorruptedFilesFailStructurally) {
  CacheSnapshot snapshot;
  snapshot.datasets.push_back({"sales", 1, 2});
  snapshot.entries.push_back({"k", "v"});
  const std::string path = TempPath("cachecorrupt");
  ASSERT_TRUE(WriteCacheSnapshot(snapshot, path).ok());
  const std::string good = ReadRawFile(path);

  CacheSnapshot loaded;
  WriteRawFile(path, good.substr(0, good.size() - 2));
  EXPECT_EQ(ReadCacheSnapshot(path, &loaded).code,
            StorageErrorCode::kTruncated);

  std::string bad = good;
  bad[good.size() - 1] ^= 0x01;
  WriteRawFile(path, bad);
  EXPECT_EQ(ReadCacheSnapshot(path, &loaded).code,
            StorageErrorCode::kChecksumMismatch);

  // Valid frame, hostile entry count: caught before any huge allocation.
  ByteWriter w;
  w.WriteU32(kCacheSnapshotVersion);
  w.WriteU32(0);                      // no datasets
  w.WriteU64(0xffffffffffffull);      // absurd entry count
  ASSERT_TRUE(WriteFramedFile(path, kCacheSnapshotMagic, w.buffer()).ok());
  EXPECT_EQ(ReadCacheSnapshot(path, &loaded).code,
            StorageErrorCode::kTruncated);

  // Wrong version.
  ByteWriter v;
  v.WriteU32(kCacheSnapshotVersion + 1);
  ASSERT_TRUE(WriteFramedFile(path, kCacheSnapshotMagic, v.buffer()).ok());
  EXPECT_EQ(ReadCacheSnapshot(path, &loaded).code,
            StorageErrorCode::kBadVersion);
}

}  // namespace
}  // namespace storage
}  // namespace tsexplain
