// End-to-end tests for the TSExplain pipeline facade.

#include <gtest/gtest.h>

#include <algorithm>

#include "src/datagen/synthetic.h"
#include "src/eval/segmentation_distance.h"
#include "src/pipeline/tsexplain.h"

namespace tsexplain {
namespace {

SyntheticDataset CleanDataset(uint64_t seed, int cuts = 3) {
  SyntheticConfig config;
  config.length = 100;
  config.snr_db = 50.0;
  config.num_interior_cuts = cuts;
  config.seed = seed;
  return GenerateSynthetic(config);
}

TSExplainConfig BaseConfig() {
  TSExplainConfig config;
  config.measure = "value";
  config.explain_by_names = {"category"};
  config.max_order = 1;
  return config;
}

TEST(Pipeline, RecoversGroundTruthOnCleanData) {
  const SyntheticDataset ds = CleanDataset(7);
  TSExplainConfig config = BaseConfig();
  config.fixed_k = ds.ground_truth_k();
  TSExplain engine(*ds.table, config);
  const TSExplainResult result = engine.Run();
  EXPECT_EQ(result.chosen_k, ds.ground_truth_k());
  EXPECT_LT(DistancePercent(result.segmentation.cuts,
                            ds.ground_truth_cuts, 100),
            3.0);
}

TEST(Pipeline, ElbowPicksReasonableK) {
  const SyntheticDataset ds = CleanDataset(11, 4);
  TSExplainConfig config = BaseConfig();  // auto K
  TSExplain engine(*ds.table, config);
  const TSExplainResult result = engine.Run();
  EXPECT_GE(result.chosen_k, 2);
  EXPECT_LE(result.chosen_k, 10);
  EXPECT_EQ(result.k_variance_curve.size(), 20u);
}

TEST(Pipeline, SegmentsCoverTheWholeSeriesInOrder) {
  const SyntheticDataset ds = CleanDataset(13);
  TSExplainConfig config = BaseConfig();
  TSExplain engine(*ds.table, config);
  const TSExplainResult result = engine.Run();
  ASSERT_FALSE(result.segments.empty());
  EXPECT_EQ(result.segments.front().begin, 0);
  EXPECT_EQ(result.segments.back().end, 99);
  for (size_t i = 1; i < result.segments.size(); ++i) {
    EXPECT_EQ(result.segments[i].begin, result.segments[i - 1].end);
  }
  for (const SegmentExplanation& seg : result.segments) {
    EXPECT_LE(seg.top.size(), 3u);
    for (const ExplanationItem& item : seg.top) {
      EXPECT_FALSE(item.description.empty());
      EXPECT_GT(item.gamma, 0.0);
      EXPECT_NE(item.tau, 0);
    }
  }
}

TEST(Pipeline, FixedKOverridesElbow) {
  const SyntheticDataset ds = CleanDataset(17);
  TSExplainConfig config = BaseConfig();
  config.fixed_k = 5;
  TSExplain engine(*ds.table, config);
  EXPECT_EQ(engine.Run().chosen_k, 5);
}

TEST(Pipeline, OptimizationsPreserveQuality) {
  const SyntheticDataset ds = CleanDataset(19, 4);
  TSExplainConfig vanilla = BaseConfig();
  vanilla.fixed_k = ds.ground_truth_k();
  TSExplain vanilla_engine(*ds.table, vanilla);
  const TSExplainResult vanilla_result = vanilla_engine.Run();

  TSExplainConfig optimized = vanilla;
  optimized.use_filter = true;
  optimized.use_guess_verify = true;
  optimized.use_sketch = true;
  TSExplain optimized_engine(*ds.table, optimized);
  const TSExplainResult optimized_result = optimized_engine.Run();

  // Table 7's claim: optimized variance within ~1% of vanilla.
  const double vanilla_var = vanilla_result.segmentation.total_variance;
  const double optimized_var =
      vanilla_engine.EvaluateScheme(optimized_result.segmentation.cuts);
  EXPECT_LE(optimized_var, vanilla_var * 1.10 + 1e-9);
  EXPECT_FALSE(optimized_result.sketch_positions.empty());
}

TEST(Pipeline, GuessVerifyGivesIdenticalSegmentation) {
  const SyntheticDataset ds = CleanDataset(23);
  TSExplainConfig a = BaseConfig();
  a.fixed_k = 4;
  TSExplainConfig b = a;
  b.use_guess_verify = true;
  TSExplain ea(*ds.table, a), eb(*ds.table, b);
  // O1 is exact (Eq. 12): identical cuts, identical variance.
  const TSExplainResult ra = ea.Run();
  const TSExplainResult rb = eb.Run();
  EXPECT_EQ(ra.segmentation.cuts, rb.segmentation.cuts);
  EXPECT_NEAR(ra.segmentation.total_variance,
              rb.segmentation.total_variance, 1e-9);
}

TEST(Pipeline, TimingBreakdownPopulated) {
  const SyntheticDataset ds = CleanDataset(29);
  TSExplainConfig config = BaseConfig();
  TSExplain engine(*ds.table, config);
  const TSExplainResult result = engine.Run();
  EXPECT_GT(result.timing.precompute_ms, 0.0);
  EXPECT_GT(result.timing.cascading_ms, 0.0);
  EXPECT_GT(result.timing.segmentation_ms, 0.0);
  EXPECT_NEAR(result.timing.TotalMs(),
              result.timing.precompute_ms + result.timing.cascading_ms +
                  result.timing.segmentation_ms,
              1e-9);
}

TEST(Pipeline, EpsilonAccounting) {
  const SyntheticDataset ds = CleanDataset(31);
  TSExplainConfig config = BaseConfig();
  config.use_filter = true;
  TSExplain engine(*ds.table, config);
  const TSExplainResult result = engine.Run();
  EXPECT_EQ(result.epsilon, 3u);  // three categories
  EXPECT_LE(result.filtered_epsilon, result.epsilon);
  EXPECT_GE(result.filtered_epsilon, 1u);
}

TEST(Pipeline, CountAggregateWorks) {
  const SyntheticDataset ds = CleanDataset(37);
  TSExplainConfig config = BaseConfig();
  config.aggregate = AggregateFunction::kCount;
  config.measure.clear();  // COUNT(*)
  config.fixed_k = 2;
  TSExplain engine(*ds.table, config);
  const TSExplainResult result = engine.Run();
  EXPECT_EQ(result.chosen_k, 2);  // runs end to end
}

TEST(Pipeline, SmoothingPath) {
  const SyntheticDataset ds = CleanDataset(41);
  TSExplainConfig config = BaseConfig();
  config.smooth_window = 5;
  config.fixed_k = 3;
  TSExplain engine(*ds.table, config);
  const TSExplainResult result = engine.Run();
  EXPECT_EQ(result.segmentation.num_segments(), 3);
}

TEST(Pipeline, RelativeChangeMetricRuns) {
  const SyntheticDataset ds = CleanDataset(43);
  TSExplainConfig config = BaseConfig();
  config.diff_metric = DiffMetricKind::kRelativeChange;
  config.fixed_k = 3;
  TSExplain engine(*ds.table, config);
  EXPECT_EQ(engine.Run().segmentation.num_segments(), 3);
}

TEST(Pipeline, ExplainSegmentMatchesTwoRelationsDiff) {
  const SyntheticDataset ds = CleanDataset(47);
  TSExplainConfig config = BaseConfig();
  TSExplain engine(*ds.table, config);
  const auto items = engine.ExplainSegment(0, 99);
  ASSERT_FALSE(items.empty());
  // gamma must equal the cube's absolute-change on the endpoints.
  for (const ExplanationItem& item : items) {
    const DiffScore s = engine.cube().Score(
        DiffMetricKind::kAbsoluteChange, item.id, 0, 99);
    EXPECT_DOUBLE_EQ(item.gamma, s.gamma);
    EXPECT_EQ(item.tau, s.tau);
  }
}

TEST(Pipeline, ExplanationItemToString) {
  ExplanationItem item;
  item.description = "state=NY";
  item.tau = 1;
  EXPECT_EQ(item.ToString(), "state=NY (+)");
  item.tau = -1;
  EXPECT_EQ(item.ToString(), "state=NY (-)");
  item.tau = 0;
  EXPECT_EQ(item.ToString(), "state=NY (=)");
}

TEST(PipelineDeathTest, UnknownColumnsRejected) {
  const SyntheticDataset ds = CleanDataset(53);
  TSExplainConfig config = BaseConfig();
  config.explain_by_names = {"bogus"};
  EXPECT_DEATH(TSExplain(*ds.table, config), "unknown explain-by");
  config = BaseConfig();
  config.measure = "bogus";
  EXPECT_DEATH(TSExplain(*ds.table, config), "unknown measure");
}

}  // namespace
}  // namespace tsexplain
