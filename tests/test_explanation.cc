// Unit tests for the Explanation value type (Definition 3.1 semantics).

#include <gtest/gtest.h>

#include "src/diff/explanation.h"

namespace tsexplain {
namespace {

TEST(Explanation, CanonicalSortByAttribute) {
  const Explanation e = Explanation::FromPredicates(
      {Predicate{2, 5}, Predicate{0, 1}, Predicate{1, 9}});
  ASSERT_EQ(e.order(), 3);
  EXPECT_EQ(e.predicates()[0].attr, 0);
  EXPECT_EQ(e.predicates()[1].attr, 1);
  EXPECT_EQ(e.predicates()[2].attr, 2);
}

TEST(Explanation, RootProperties) {
  const Explanation root;
  EXPECT_TRUE(root.IsRoot());
  EXPECT_EQ(root.order(), 0);
}

TEST(ExplanationDeathTest, DuplicateAttributeRejected) {
  EXPECT_DEATH(
      Explanation::FromPredicates({Predicate{0, 1}, Predicate{0, 2}}),
      "constrains one attribute twice");
}

TEST(Explanation, TryGetValue) {
  const Explanation e =
      Explanation::FromPredicates({Predicate{1, 7}, Predicate{3, 2}});
  ValueId v = -99;
  EXPECT_TRUE(e.TryGetValue(1, &v));
  EXPECT_EQ(v, 7);
  EXPECT_FALSE(e.TryGetValue(2, &v));
}

TEST(Explanation, ExtendAndWithoutAttr) {
  const Explanation e = Explanation::FromPredicates({Predicate{1, 7}});
  const Explanation extended = e.Extend(Predicate{0, 3});
  EXPECT_EQ(extended.order(), 2);
  EXPECT_EQ(extended.predicates()[0].attr, 0);  // re-canonicalized
  const Explanation back = extended.WithoutAttr(0);
  EXPECT_TRUE(back == e);
}

TEST(ExplanationDeathTest, ExtendExistingAttrRejected) {
  const Explanation e = Explanation::FromPredicates({Predicate{1, 7}});
  EXPECT_DEATH(e.Extend(Predicate{1, 8}), "already constrained");
}

TEST(ExplanationDeathTest, WithoutMissingAttrRejected) {
  const Explanation e = Explanation::FromPredicates({Predicate{1, 7}});
  EXPECT_DEATH(e.WithoutAttr(0), "not present");
}

TEST(Explanation, OverlapSemantics) {
  const auto ab = Explanation::FromPredicates({Predicate{0, 1}, Predicate{1, 1}});
  const auto a2 = Explanation::FromPredicates({Predicate{0, 2}});
  const auto b1 = Explanation::FromPredicates({Predicate{1, 1}});
  const auto c1 = Explanation::FromPredicates({Predicate{2, 1}});

  // Shared attribute with different values -> never co-satisfiable.
  EXPECT_FALSE(ab.OverlapsWith(a2));
  EXPECT_FALSE(a2.OverlapsWith(ab));  // symmetric
  // Shared attribute with the same value -> overlapping.
  EXPECT_TRUE(ab.OverlapsWith(b1));
  // No shared attribute -> some record could satisfy both.
  EXPECT_TRUE(a2.OverlapsWith(c1));
  // Root overlaps everything.
  EXPECT_TRUE(Explanation().OverlapsWith(ab));
  // Identical explanations overlap.
  EXPECT_TRUE(ab.OverlapsWith(ab));
}

TEST(Explanation, HashStableAndDiscriminating) {
  const auto a = Explanation::FromPredicates({Predicate{0, 1}});
  const auto a_again = Explanation::FromPredicates({Predicate{0, 1}});
  const auto b = Explanation::FromPredicates({Predicate{0, 2}});
  const auto swapped = Explanation::FromPredicates({Predicate{1, 0}});
  EXPECT_EQ(a.Hash(), a_again.Hash());
  EXPECT_NE(a.Hash(), b.Hash());
  EXPECT_NE(a.Hash(), swapped.Hash());  // (attr,val) vs (val,attr)
  EXPECT_NE(a.Hash(), Explanation().Hash());
}

TEST(Explanation, ToStringRendering) {
  Table table(Schema("t", {"state", "age"}, {}));
  table.AddTimeBucket("0");
  table.AppendRow(0, {"WA", "50+"}, {});
  const ValueId wa = table.dictionary(0).Lookup("WA");
  const ValueId age = table.dictionary(1).Lookup("50+");
  const auto e = Explanation::FromPredicates(
      {Predicate{1, age}, Predicate{0, wa}});
  EXPECT_EQ(e.ToString(table), "state=WA & age=50+");
  EXPECT_EQ(Explanation().ToString(table), "<all data>");
}

}  // namespace
}  // namespace tsexplain
