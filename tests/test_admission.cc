// AdmissionController contract: bounded concurrency, bounded queue with
// shedding, duplicate batching (coalescing), per-tenant in-flight caps,
// adaptive thread grants, transport backlog bounding — plus the tenant
// identity/quota helpers from quota.h.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "src/common/thread_pool.h"
#include "src/service/admission.h"
#include "src/service/quota.h"

namespace tsexplain {
namespace {

AdmissionOptions SmallOptions() {
  AdmissionOptions options;
  options.max_concurrent = 2;
  options.queue_depth = 1;
  options.pool_size = 8;
  return options;
}

// Polls a predicate over controller stats (the controller has no test
// hooks; its transitions are observable through stats()).
template <typename Pred>
bool WaitFor(const AdmissionController& admission, Pred pred,
             int timeout_ms = 5000) {
  for (int waited = 0; waited < timeout_ms; ++waited) {
    if (pred(admission.stats())) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return false;
}

TEST(AdmissionControllerTest, AdmitsUpToCapacityAndGrantsFairThreads) {
  AdmissionController admission(SmallOptions());
  auto first = admission.Admit("q1", "", /*requested_threads=*/8);
  EXPECT_TRUE(first.admitted());
  EXPECT_EQ(first.granted_threads(), 8);  // pool 8 / 1 active
  auto second = admission.Admit("q2", "", 8);
  EXPECT_TRUE(second.admitted());
  EXPECT_EQ(second.granted_threads(), 4);  // pool 8 / 2 active

  const AdmissionController::Stats stats = admission.stats();
  EXPECT_EQ(stats.admitted, 2u);
  EXPECT_EQ(stats.active, 2u);
  EXPECT_EQ(stats.peak_active, 2u);
}

TEST(AdmissionControllerTest, RequestedThreadsIsACeiling) {
  AdmissionController admission(SmallOptions());
  auto ticket = admission.Admit("q", "", /*requested_threads=*/2);
  EXPECT_TRUE(ticket.admitted());
  EXPECT_EQ(ticket.granted_threads(), 2);  // fair share 8, requested 2
}

TEST(AdmissionControllerTest, ReleasingATicketFreesItsSlot) {
  AdmissionController admission(SmallOptions());
  {
    auto a = admission.Admit("a", "", 1);
    auto b = admission.Admit("b", "", 1);
    EXPECT_EQ(admission.stats().active, 2u);
  }
  EXPECT_EQ(admission.stats().active, 0u);
  EXPECT_TRUE(admission.Admit("c", "", 1).admitted());
}

TEST(AdmissionControllerTest, QueuesThenShedsWithRetryAfter) {
  AdmissionController admission(SmallOptions());  // 2 running + 1 queued
  auto a = admission.Admit("a", "", 1);
  auto b = admission.Admit("b", "", 1);

  // Fill the one queue slot from another thread (it blocks there).
  std::atomic<bool> queued_done{false};
  std::thread waiter([&] {
    auto c = admission.Admit("c", "", 1);
    EXPECT_TRUE(c.admitted());
    queued_done.store(true);
  });
  ASSERT_TRUE(WaitFor(admission, [](const AdmissionController::Stats& s) {
    return s.queued == 1;
  }));

  // Queue full: the next distinct query is shed immediately.
  auto shed = admission.Admit("d", "", 1);
  EXPECT_EQ(shed.outcome(), AdmissionController::Outcome::kShedOverload);
  EXPECT_TRUE(shed.shed());
  EXPECT_GT(shed.retry_after_ms(), 0.0);
  EXPECT_EQ(admission.stats().shed_overload, 1u);
  EXPECT_EQ(admission.stats().peak_queued, 1u);

  // Releasing a runner admits the queued waiter.
  { auto drop = std::move(a); }
  waiter.join();
  EXPECT_TRUE(queued_done.load());
  EXPECT_EQ(admission.stats().admitted, 3u);
}

TEST(AdmissionControllerTest, DuplicateKeysBatchWithoutConsumingSlots) {
  AdmissionOptions options = SmallOptions();
  options.max_concurrent = 1;
  options.queue_depth = 0;  // any queued duplicate would be shed instead
  AdmissionController admission(options);

  auto leader = std::make_unique<AdmissionController::Ticket>(
      admission.Admit("hot-query", "", 1));
  EXPECT_TRUE(leader->admitted());

  constexpr int kFollowers = 3;
  std::vector<std::thread> followers;
  std::atomic<int> coalesced{0};
  followers.reserve(kFollowers);
  for (int f = 0; f < kFollowers; ++f) {
    followers.emplace_back([&] {
      auto ticket = admission.Admit("hot-query", "", 1);
      if (ticket.outcome() == AdmissionController::Outcome::kCoalesced) {
        coalesced.fetch_add(1);
      }
    });
  }
  ASSERT_TRUE(WaitFor(admission, [](const AdmissionController::Stats& s) {
    return s.coalesced == kFollowers;
  }));
  // Despite queue_depth = 0, nothing was shed: duplicates do not occupy
  // queue slots. They are parked on the leader's flight.
  EXPECT_EQ(admission.stats().shed_overload, 0u);

  leader.reset();  // leader finishes -> followers return kCoalesced
  for (std::thread& follower : followers) follower.join();
  EXPECT_EQ(coalesced.load(), kFollowers);
  EXPECT_EQ(admission.stats().admitted, 1u);
}

TEST(AdmissionControllerTest, TenantInflightCapShedsOnlyThatTenant) {
  AdmissionOptions options = SmallOptions();
  options.per_tenant_inflight = 1;
  AdmissionController admission(options);

  auto held = admission.Admit("q1", "acme", 1);
  EXPECT_TRUE(held.admitted());

  auto over = admission.Admit("q2", "acme", 1);
  EXPECT_EQ(over.outcome(), AdmissionController::Outcome::kShedTenant);
  EXPECT_GT(over.retry_after_ms(), 0.0);
  EXPECT_EQ(admission.stats().shed_tenant, 1u);

  // Another tenant and the anonymous namespace are unaffected.
  auto other = admission.Admit("q3", "globex", 1);
  EXPECT_TRUE(other.admitted());
  { auto drop = std::move(other); }
  EXPECT_TRUE(admission.Admit("q4", "", 1).admitted());

  // Releasing acme's in-flight request frees its quota.
  { auto drop = std::move(held); }
  EXPECT_TRUE(admission.Admit("q5", "acme", 1).admitted());
}

TEST(AdmissionControllerTest, BacklogSlotsBoundTheDispatchPipeline) {
  AdmissionController admission(SmallOptions());  // capacity 2 + 1 = 3
  EXPECT_TRUE(admission.TryAcquireBacklogSlot());
  EXPECT_TRUE(admission.TryAcquireBacklogSlot());
  EXPECT_TRUE(admission.TryAcquireBacklogSlot());
  EXPECT_FALSE(admission.TryAcquireBacklogSlot());
  EXPECT_EQ(admission.stats().backlog_shed, 1u);
  admission.ReleaseBacklogSlot();
  EXPECT_TRUE(admission.TryAcquireBacklogSlot());
}

TEST(AdmissionControllerTest, AutoOptionsFollowTheSharedPool) {
  AdmissionController admission(AdmissionOptions{});
  EXPECT_EQ(admission.pool_size(), ThreadPool::Shared().size());
  EXPECT_EQ(admission.max_concurrent(), ThreadPool::Shared().size());
}

TEST(AdaptiveThreadGrantTest, DividesThePoolAndRespectsTheCeiling) {
  EXPECT_EQ(AdaptiveThreadGrant(/*requested=*/8, /*active=*/1, 8), 8);
  EXPECT_EQ(AdaptiveThreadGrant(8, 2, 8), 4);
  EXPECT_EQ(AdaptiveThreadGrant(8, 3, 8), 2);
  EXPECT_EQ(AdaptiveThreadGrant(8, 100, 8), 1);  // floor of one thread
  EXPECT_EQ(AdaptiveThreadGrant(2, 1, 8), 2);    // ceiling: the request
  EXPECT_EQ(AdaptiveThreadGrant(1, 1, 8), 1);
  EXPECT_EQ(AdaptiveThreadGrant(0, 0, 0), 1);    // degenerate inputs
}

TEST(QuotaTest, TenantIdValidation) {
  EXPECT_TRUE(IsValidTenantId("acme"));
  EXPECT_TRUE(IsValidTenantId("team-7_a.b:c"));
  EXPECT_FALSE(IsValidTenantId(""));
  EXPECT_FALSE(IsValidTenantId("has space"));
  EXPECT_FALSE(IsValidTenantId("slash/y"));     // would break key scoping
  EXPECT_FALSE(IsValidTenantId("pipe|y"));      // would break key framing
  EXPECT_FALSE(IsValidTenantId(std::string(65, 'a')));
  EXPECT_TRUE(IsValidTenantId(std::string(64, 'a')));
}

TEST(QuotaTest, TenantKeyPrefixShapes) {
  EXPECT_EQ(TenantKeyPrefix(""), "");
  EXPECT_EQ(TenantKeyPrefix("acme"), "tenant/acme/");
}

TEST(QuotaTest, RegistryInstallsBudgetsIdempotently) {
  ResultCache cache(1 << 20, 1);
  TenantQuotaRegistry registry(cache, TenantQuotaOptions{1 << 10});
  registry.EnsureTenant("acme");
  registry.EnsureTenant("acme");
  registry.EnsureTenant("globex");
  EXPECT_EQ(registry.NumTenants(), 2u);
  const std::vector<std::string> prefixes = registry.KnownTenantPrefixes();
  ASSERT_EQ(prefixes.size(), 2u);
  EXPECT_EQ(prefixes[0], "tenant/acme/");
  EXPECT_EQ(prefixes[1], "tenant/globex/");
}

}  // namespace
}  // namespace tsexplain
