// Coverage for the minimal JSON parser behind the NDJSON protocol.

#include <gtest/gtest.h>

#include <string>

#include "src/common/json.h"

namespace tsexplain {
namespace {

JsonValue Parse(const std::string& text) {
  JsonValue value;
  std::string error;
  EXPECT_TRUE(ParseJson(text, &value, &error)) << text << ": " << error;
  return value;
}

void ExpectRejected(const std::string& text) {
  JsonValue value;
  std::string error;
  EXPECT_FALSE(ParseJson(text, &value, &error)) << text;
  EXPECT_FALSE(error.empty());
}

TEST(JsonTest, Scalars) {
  EXPECT_TRUE(Parse("null").IsNull());
  EXPECT_EQ(Parse("true").AsBool(), true);
  EXPECT_EQ(Parse("false").AsBool(), false);
  EXPECT_EQ(Parse("42").AsInt(), 42);
  EXPECT_EQ(Parse("-3.5e2").AsDouble(), -350.0);
  EXPECT_EQ(Parse("0").AsInt(), 0);
  EXPECT_EQ(Parse("\"hi\"").AsString(), "hi");
}

TEST(JsonTest, StringEscapes) {
  EXPECT_EQ(Parse(R"("a\"b\\c\/d\n\t")").AsString(), "a\"b\\c/d\n\t");
  // Raw UTF-8 passes through untouched.
  EXPECT_EQ(Parse("\"A\xc3\xa9\"").AsString(), "A\xc3\xa9");
  // \u escapes: BMP (U+00E9, U+20AC) and a surrogate pair (U+1F600).
  EXPECT_EQ(Parse("\"\\u00e9\\u20ac\"").AsString(),
            "\xc3\xa9\xe2\x82\xac");
  EXPECT_EQ(Parse("\"\\ud83d\\ude00\"").AsString(), "\xf0\x9f\x98\x80");
  ExpectRejected(R"("\ud83d")");   // lone high surrogate
  ExpectRejected(R"("\ude00")");   // lone low surrogate
  ExpectRejected(R"("\u12g4")");   // bad hex digit
  ExpectRejected(R"("\q")");       // bad escape
  ExpectRejected("\"unterminated");
  ExpectRejected("\"ctrl\x01char\"");
}

TEST(JsonTest, ArraysAndObjects) {
  const JsonValue arr = Parse(R"([1, "two", [3], {"four": 4}, null])");
  ASSERT_TRUE(arr.IsArray());
  ASSERT_EQ(arr.array().size(), 5u);
  EXPECT_EQ(arr.array()[0].AsInt(), 1);
  EXPECT_EQ(arr.array()[1].AsString(), "two");
  EXPECT_EQ(arr.array()[2].array()[0].AsInt(), 3);
  EXPECT_EQ(arr.array()[3].GetInt("four"), 4);
  EXPECT_TRUE(arr.array()[4].IsNull());
  EXPECT_TRUE(Parse("[]").array().empty());
  EXPECT_TRUE(Parse("{}").members().empty());

  const JsonValue obj = Parse(
      R"({"op":"explain","id":7,"flag":true,"list":["a","b"],"x":1.5})");
  EXPECT_EQ(obj.GetString("op"), "explain");
  EXPECT_EQ(obj.GetInt("id"), 7);
  EXPECT_TRUE(obj.GetBool("flag"));
  EXPECT_EQ(obj.GetDouble("x"), 1.5);
  bool ok = false;
  EXPECT_EQ(obj.GetStringArray("list", &ok),
            (std::vector<std::string>{"a", "b"}));
  EXPECT_TRUE(ok);
  obj.GetStringArray("id", &ok);  // wrong type
  EXPECT_FALSE(ok);
  EXPECT_EQ(obj.Find("missing"), nullptr);
  EXPECT_EQ(obj.GetInt("missing", -1), -1);
  EXPECT_EQ(obj.GetString("id", "fb"), "fb");  // type mismatch -> fallback
}

TEST(JsonTest, OutOfRangeNumbersFallBackInsteadOfUb) {
  // double->int casts of out-of-range values are UB; AsInt must reject
  // them (untrusted wire input) rather than cast.
  EXPECT_EQ(Parse("1e300").AsInt(-7), -7);
  EXPECT_EQ(Parse("-1e300").AsInt(-7), -7);
  EXPECT_EQ(Parse("1e999").AsInt(-7), -7);  // strtod yields +inf
  EXPECT_EQ(Parse("2147483647").AsInt(), 2147483647);
  EXPECT_EQ(Parse("-2147483648").AsInt(), -2147483648);
  EXPECT_EQ(Parse("2147483648").AsInt(-7), -7);  // INT_MAX + 1
  const JsonValue obj = Parse(R"({"k":1e300})");
  EXPECT_EQ(obj.GetInt("k", 3), 3);  // falls back to the caller's default
}

TEST(JsonTest, MalformedDocuments) {
  ExpectRejected("");
  ExpectRejected("{");
  ExpectRejected("[1,]");
  ExpectRejected("{\"a\":}");
  ExpectRejected("{\"a\" 1}");
  ExpectRejected("{a:1}");
  ExpectRejected("1 2");          // trailing garbage
  ExpectRejected("01");           // leading zero
  ExpectRejected("1.");           // dangling decimal point
  ExpectRejected("1e");           // dangling exponent
  ExpectRejected("nul");
  ExpectRejected("+1");
}

TEST(JsonTest, DepthGuard) {
  std::string deep;
  for (int i = 0; i < 100; ++i) deep += "[";
  for (int i = 0; i < 100; ++i) deep += "]";
  ExpectRejected(deep);
  std::string fine;
  for (int i = 0; i < 30; ++i) fine += "[";
  fine += "1";
  for (int i = 0; i < 30; ++i) fine += "]";
  JsonValue value;
  std::string error;
  EXPECT_TRUE(ParseJson(fine, &value, &error)) << error;
}

// Hostile-input regression: 100k-deep documents must come back as a
// structured error naming the limit — not a stack overflow. The parser
// recursion is bounded by kMaxJsonDepth (~65 frames), so the input size
// here only stresses the rejection path, not the stack.
TEST(JsonTest, PathologicalDepthRejectedStructurally) {
  constexpr int kDepth = 100000;
  std::string arrays(kDepth, '[');
  JsonValue value;
  std::string error;
  EXPECT_FALSE(ParseJson(arrays, &value, &error));
  EXPECT_NE(error.find("kMaxJsonDepth"), std::string::npos) << error;

  std::string objects;
  objects.reserve(5 * kDepth);
  for (int i = 0; i < kDepth; ++i) objects += "{\"a\":";
  error.clear();
  EXPECT_FALSE(ParseJson(objects, &value, &error));
  EXPECT_NE(error.find("kMaxJsonDepth"), std::string::npos) << error;

  // Exactly at the limit still parses: the guard is a boundary, not a
  // fuzzy threshold.
  std::string at_limit;
  for (int i = 0; i < kMaxJsonDepth; ++i) at_limit += "[";
  at_limit += "0";
  for (int i = 0; i < kMaxJsonDepth; ++i) at_limit += "]";
  error.clear();
  EXPECT_TRUE(ParseJson(at_limit, &value, &error)) << error;
  std::string past_limit = "[" + at_limit + "]";
  error.clear();
  EXPECT_FALSE(ParseJson(past_limit, &value, &error));
  EXPECT_NE(error.find("kMaxJsonDepth"), std::string::npos) << error;
}

TEST(JsonTest, WhitespaceTolerance) {
  const JsonValue value = Parse("  {\r\n\t\"a\" : [ 1 , 2 ] }  ");
  EXPECT_EQ(value.Find("a")->array().size(), 2u);
}

}  // namespace
}  // namespace tsexplain
