// Concurrency stress surface for ThreadSanitizer (and the regular test
// run): hammers the locking-heavy subsystems — ResultCache
// Lookup/Put/GetOrCompute/invalidate, AdmissionController admit/shed
// cycles, and nested ParallelFor on a private ThreadPool — from many
// threads for a bounded wall-clock budget. Under -DTSEXPLAIN_SANITIZE=
// thread this is the test that drags every lock-order and data-race bug
// into TSan's view; under a plain build it still checks the counters'
// conservation invariants.
//
// The loops are time-bounded (not iteration-bounded) so the test stays
// fast on slow TSan builds and busy CI boxes alike.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstddef>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/common/metrics.h"
#include "src/common/metrics_history.h"
#include "src/common/thread_pool.h"
#include "src/service/admission.h"
#include "src/service/result_cache.h"

namespace tsexplain {
namespace {

constexpr int kThreads = 16;
constexpr auto kBudget = std::chrono::milliseconds(300);

bool Expired(const std::chrono::steady_clock::time_point& deadline) {
  return std::chrono::steady_clock::now() >= deadline;
}

ResultCache::ValuePtr MakeValue(const std::string& json) {
  auto value = std::make_shared<CachedResult>();
  value->json = json;
  return value;
}

TEST(TsanStressTest, ResultCacheConcurrentMix) {
  // Small capacity forces constant eviction; few shards force contention;
  // a prefix budget keeps the budget-eviction path hot too.
  ResultCache cache(/*capacity_bytes=*/64 << 10, /*num_shards=*/2);
  cache.SetPrefixBudget("tenant/a/", 8 << 10);

  const auto deadline = std::chrono::steady_clock::now() + kBudget;
  std::atomic<size_t> computed{0};
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&cache, &computed, deadline, t] {
      size_t i = 0;
      while (!Expired(deadline)) {
        const std::string key =
            (t % 4 == 0 ? "tenant/a/" : "ds/") + std::to_string(i % 37);
        switch ((i + static_cast<size_t>(t)) % 5) {
          case 0:
            cache.Lookup(key);
            break;
          case 1:
            cache.Put(key, MakeValue(std::string(256, 'x')));
            break;
          case 2:
            cache.GetOrCompute(key, [&computed]() -> ResultCache::ValuePtr {
              computed.fetch_add(1);
              return MakeValue(std::string(512, 'y'));
            });
            break;
          case 3:
            cache.Invalidate(key);
            break;
          default:
            if (i % 97 == 0) {
              cache.InvalidatePrefixes({"ds/", "tenant/a/"});
            } else {
              cache.stats();
            }
            break;
        }
        ++i;
      }
    });
  }
  for (std::thread& th : workers) th.join();

  const ResultCache::Stats stats = cache.stats();
  EXPECT_LE(stats.bytes_used, stats.capacity_bytes);
  EXPECT_EQ(stats.misses, computed.load());  // single-flight held up
}

TEST(TsanStressTest, AdmissionAdmitShedReleaseChurn) {
  AdmissionOptions options;
  options.max_concurrent = 3;
  options.queue_depth = 4;
  options.per_tenant_inflight = 2;
  options.pool_size = 8;
  AdmissionController admission(options);

  const auto deadline = std::chrono::steady_clock::now() + kBudget;
  std::atomic<size_t> served{0};
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&admission, &served, deadline, t] {
      size_t i = 0;
      while (!Expired(deadline)) {
        const std::string key = "q" + std::to_string((i + 7u) % 5);
        const std::string tenant = "tenant" + std::to_string(t % 3);
        {
          AdmissionController::Ticket ticket =
              admission.Admit(key, tenant, /*requested_threads=*/4);
          if (ticket.admitted()) {
            served.fetch_add(1);
            EXPECT_GE(ticket.granted_threads(), 1);
          } else if (ticket.shed()) {
            EXPECT_GT(ticket.retry_after_ms(), 0.0);
          }
        }  // Ticket release wakes queued waiters
        if (i % 3 == 0) {
          if (admission.TryAcquireBacklogSlot()) {
            admission.ReleaseBacklogSlot();
          }
        }
        if (i % 11 == 0) admission.stats();
        ++i;
      }
    });
  }
  for (std::thread& th : workers) th.join();

  const AdmissionController::Stats stats = admission.stats();
  EXPECT_EQ(stats.active, 0u);
  EXPECT_EQ(stats.queued, 0u);
  EXPECT_EQ(stats.admitted, served.load());
  EXPECT_LE(stats.peak_active, 3u);
  EXPECT_LE(stats.peak_queued, 4u);
}

TEST(TsanStressTest, MetricsRegistryConcurrentHammer) {
  // 16 threads hammer one counter, one gauge, and one histogram from an
  // isolated registry while a snapshot reader spins. Under TSan this
  // drags the lock-free write paths (relaxed fetch_add, the SetMax and
  // sum CAS loops) plus concurrent registration into view; under a plain
  // build it checks conservation: every increment lands exactly once and
  // bucket totals equal the observation count.
  MetricRegistry registry;
  Counter& counter = registry.GetCounter("test.hammer_total");
  Gauge& gauge = registry.GetGauge("test.hammer_level");
  Gauge& peak = registry.GetGauge("test.hammer_peak");
  Histogram& hist =
      registry.GetHistogram("test.hammer_ms", {0.5, 1.0, 5.0, 25.0});

  constexpr int kOpsPerThread = 20000;
  std::atomic<bool> stop_reader{false};
  std::thread reader([&registry, &stop_reader] {
    uint64_t last_count = 0;
    while (!stop_reader.load()) {
      const MetricsSnapshot snapshot = registry.Snapshot();
      const HistogramSnapshot* hs =
          snapshot.FindHistogram("test.hammer_ms");
      if (hs != nullptr) {
        uint64_t bucket_total = 0;
        for (uint64_t n : hs->counts) bucket_total += n;
        EXPECT_EQ(bucket_total, hs->count);
        EXPECT_GE(hs->count, last_count);  // monotonic under writers
        last_count = hs->count;
      }
      std::this_thread::yield();
    }
  });

  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&registry, &counter, &gauge, &peak, &hist, t] {
      // Concurrent create-or-fetch must converge on the same objects.
      EXPECT_EQ(&registry.GetCounter("test.hammer_total"), &counter);
      for (int i = 0; i < kOpsPerThread; ++i) {
        counter.Inc();
        gauge.Add(i % 2 == 0 ? 1 : -1);
        peak.SetMax(t * kOpsPerThread + i);
        hist.Observe(static_cast<double>((i + t) % 32));
      }
    });
  }
  for (std::thread& th : workers) th.join();
  stop_reader.store(true);
  reader.join();

  constexpr uint64_t kTotal =
      static_cast<uint64_t>(kThreads) * kOpsPerThread;
  const MetricsSnapshot snapshot = registry.Snapshot();
  EXPECT_EQ(*snapshot.FindCounter("test.hammer_total"), kTotal);
  // Each thread's +1/-1 pairs cancel (kOpsPerThread is even).
  EXPECT_EQ(*snapshot.FindGauge("test.hammer_level"), 0);
  // The CAS high-water mark lands on the global maximum exactly.
  EXPECT_EQ(*snapshot.FindGauge("test.hammer_peak"),
            static_cast<int64_t>(kTotal) - 1);
  const HistogramSnapshot* hs = snapshot.FindHistogram("test.hammer_ms");
  ASSERT_NE(hs, nullptr);
  EXPECT_EQ(hs->count, kTotal);
  uint64_t bucket_total = 0;
  for (uint64_t n : hs->counts) bucket_total += n;
  EXPECT_EQ(bucket_total, kTotal);
}

TEST(TsanStressTest, MetricsHistorySamplerUnderWriterFire) {
  // The background sampler ticks as fast as it can while 8 writer
  // threads hammer counters/gauges/histograms and registration, and a
  // reader spins on Window() + rendering. Under TSan this puts the
  // sampler's rediscovery pass, the CondVar deadline sleep, and the
  // prologue hook under concurrent fire; under a plain build it checks
  // the counter series never runs backwards within a window.
  MetricRegistry registry;
  Counter& hits = registry.GetCounter("stress.hits");
  Gauge& level = registry.GetGauge("stress.level");
  Histogram& lat = registry.GetHistogram("stress.ms", {1.0, 10.0, 100.0});
  MetricsHistory::Options history_options;
  history_options.interval_ms = 1;  // tick flat-out
  history_options.capacity = 64;
  MetricsHistory history(registry, history_options);
  history.TrackHistogramPercentiles("stress.ms");
  std::atomic<int> prologue_calls{0};
  history.SetSamplePrologue([&prologue_calls] {
    prologue_calls.fetch_add(1);
  });
  history.Start();

  const auto deadline = std::chrono::steady_clock::now() + kBudget;
  std::vector<std::thread> workers;
  for (int t = 0; t < 8; ++t) {
    workers.emplace_back([&registry, &hits, &level, &lat, deadline, t] {
      size_t i = 0;
      while (!Expired(deadline)) {
        hits.Inc();
        level.Set(static_cast<int64_t>(i % 1000));
        lat.Observe(static_cast<double>((i + static_cast<size_t>(t)) %
                                        128));
        if (i % 257 == 0) {
          // Late registration: the sampler's next tick must discover it.
          registry.GetCounter("stress.late" + std::to_string(t));
        }
        ++i;
      }
    });
  }
  std::thread reader([&history, deadline] {
    while (!Expired(deadline)) {
      const HistoryWindow window = history.Window(/*last_n=*/16);
      for (const HistoryWindow::Series& series : window.series) {
        if (series.kind != "counter") continue;
        for (size_t k = 1; k < series.values.size(); ++k) {
          EXPECT_LE(series.values[k - 1], series.values[k]);
        }
      }
      (void)RenderHistoryJson(window);
      std::this_thread::yield();
    }
  });
  for (std::thread& th : workers) th.join();
  reader.join();
  history.Stop();

  const HistoryWindow window = history.Window();
  EXPECT_GT(window.total_ticks, 0u);
  // One prologue run per tick (+1 at most: Stop() can land between a
  // prologue run and its tick, abandoning that final sample).
  EXPECT_GE(static_cast<uint64_t>(prologue_calls.load()),
            window.total_ticks);
  EXPECT_LE(static_cast<uint64_t>(prologue_calls.load()),
            window.total_ticks + 1);
  // The late-registered series were discovered.
  bool found_late = false;
  for (const HistoryWindow::Series& series : window.series) {
    if (series.name.rfind("stress.late", 0) == 0) found_late = true;
  }
  EXPECT_TRUE(found_late);
}

TEST(TsanStressTest, NestedParallelForOnPrivatePool) {
  ThreadPool pool(4);
  const auto deadline = std::chrono::steady_clock::now() + kBudget;
  std::vector<std::thread> drivers;
  std::atomic<size_t> total{0};
  for (int t = 0; t < 4; ++t) {
    drivers.emplace_back([&pool, &total, deadline] {
      while (!Expired(deadline)) {
        // Outer loop fans out; each index runs a nested inner loop on the
        // same pool (caller-participating, so no deadlock by contract).
        pool.ParallelFor(8, /*parallelism=*/4, [&pool, &total](size_t) {
          pool.ParallelFor(16, /*parallelism=*/2,
                           [&total](size_t) { total.fetch_add(1); });
        });
      }
    });
  }
  for (std::thread& th : drivers) th.join();
  EXPECT_EQ(total.load() % (8 * 16), 0u);  // whole rounds only
}

}  // namespace
}  // namespace tsexplain
