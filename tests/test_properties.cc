// Parameterized property suites (TEST_P) sweeping SNR levels, variance
// metrics, diff metrics, and aggregate functions.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>
#include <tuple>

#include "src/baselines/bottom_up.h"
#include "src/datagen/synthetic.h"
#include "src/eval/segmentation_distance.h"
#include "src/pipeline/tsexplain.h"
#include "src/table/group_by.h"

namespace tsexplain {
namespace {

TSExplainConfig SyntheticBaseConfig() {
  TSExplainConfig config;
  config.measure = "value";
  config.explain_by_names = {"category"};
  config.max_order = 1;
  return config;
}

// ---------------------------------------------------------------------
// Sweep 1: SNR levels. TSExplain with the oracle K must stay reasonably
// close to the ground truth even under noise, and on clean data must beat
// the explanation-agnostic Bottom-Up baseline on average (Figure 10).
class SnrSweep : public ::testing::TestWithParam<double> {};

TEST_P(SnrSweep, RecoversGroundTruthWithinTolerance) {
  const double snr = GetParam();
  double total_tse = 0.0;
  double total_bu = 0.0;
  const int datasets = 3;
  for (int d = 0; d < datasets; ++d) {
    SyntheticConfig sconfig;
    sconfig.length = 100;
    sconfig.snr_db = snr;
    sconfig.seed = 1000 + static_cast<uint64_t>(d) * 17 +
                   static_cast<uint64_t>(snr);
    sconfig.num_interior_cuts = 3;
    const SyntheticDataset ds = GenerateSynthetic(sconfig);

    TSExplainConfig config = SyntheticBaseConfig();
    config.fixed_k = ds.ground_truth_k();
    TSExplain engine(*ds.table, config);
    const TSExplainResult result = engine.Run();
    total_tse += DistancePercent(result.segmentation.cuts,
                                 ds.ground_truth_cuts, 100);

    const TimeSeries agg = GroupByTime(*ds.table, AggregateFunction::kSum, 0);
    const std::vector<int> bu =
        BottomUpSegment(agg.values, ds.ground_truth_k());
    total_bu += DistancePercent(bu, ds.ground_truth_cuts, 100);
  }
  const double avg_tse = total_tse / datasets;
  const double avg_bu = total_bu / datasets;
  // Noisier data may degrade accuracy, but the explanation-aware method
  // must stay in a sane band and not lose badly to Bottom-Up.
  EXPECT_LT(avg_tse, snr >= 35 ? 6.0 : 25.0) << "SNR " << snr;
  EXPECT_LE(avg_tse, avg_bu + 8.0) << "SNR " << snr;
}

INSTANTIATE_TEST_SUITE_P(PaperSnrGrid, SnrSweep,
                         ::testing::Values(20.0, 30.0, 40.0, 50.0),
                         [](const auto& param_info) {
                           return "Snr" +
                                  std::to_string(static_cast<int>(
                                      param_info.param));
                         });

// ---------------------------------------------------------------------
// Sweep 2: all eight variance metrics drive a valid end-to-end pipeline.
class VarianceMetricSweep
    : public ::testing::TestWithParam<VarianceMetric> {};

TEST_P(VarianceMetricSweep, PipelineRunsAndIsWellFormed) {
  SyntheticConfig sconfig;
  sconfig.length = 60;
  sconfig.snr_db = 45.0;
  sconfig.seed = 404;
  sconfig.num_interior_cuts = 2;
  const SyntheticDataset ds = GenerateSynthetic(sconfig);

  TSExplainConfig config = SyntheticBaseConfig();
  config.variance_metric = GetParam();
  config.fixed_k = 3;
  TSExplain engine(*ds.table, config);
  const TSExplainResult result = engine.Run();

  EXPECT_EQ(result.segmentation.num_segments(), 3);
  EXPECT_GE(result.segmentation.total_variance, 0.0);
  // Total weight: sum over segments of length = n - 1 = 59 objects; the
  // variance of each segment is in [0,1], so the objective is bounded.
  EXPECT_LE(result.segmentation.total_variance, 59.0);
  // Curve approximately non-increasing where feasible (exact monotonicity
  // is not guaranteed by the formulation -- see DESIGN.md -- but on this
  // low-noise dataset large regressions would signal a DP bug).
  const auto& curve = result.k_variance_curve;
  for (size_t i = 1; i < curve.size(); ++i) {
    if (std::isinf(curve[i]) || std::isinf(curve[i - 1])) continue;
    EXPECT_LE(curve[i], curve[i - 1] * 1.25 + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllEightMetrics, VarianceMetricSweep,
    ::testing::ValuesIn(kAllVarianceMetrics),
    [](const auto& param_info) { return VarianceMetricName(param_info.param); });

// ---------------------------------------------------------------------
// Sweep 3: diff metric x aggregate function combinations all run.
class QuerySweep
    : public ::testing::TestWithParam<
          std::tuple<DiffMetricKind, AggregateFunction>> {};

TEST_P(QuerySweep, PipelineProducesValidSegments) {
  const auto [diff_metric, aggregate] = GetParam();
  SyntheticConfig sconfig;
  sconfig.length = 50;
  sconfig.snr_db = 40.0;
  sconfig.seed = 777;
  sconfig.num_interior_cuts = 2;
  const SyntheticDataset ds = GenerateSynthetic(sconfig);

  TSExplainConfig config = SyntheticBaseConfig();
  config.diff_metric = diff_metric;
  config.aggregate = aggregate;
  if (aggregate == AggregateFunction::kCount) config.measure.clear();
  config.fixed_k = 2;
  TSExplain engine(*ds.table, config);
  const TSExplainResult result = engine.Run();

  EXPECT_EQ(result.segmentation.cuts.front(), 0);
  EXPECT_EQ(result.segmentation.cuts.back(), 49);
  for (const SegmentExplanation& seg : result.segments) {
    for (size_t i = 0; i < seg.top.size(); ++i) {
      for (size_t j = i + 1; j < seg.top.size(); ++j) {
        EXPECT_FALSE(
            engine.registry()
                .explanation(seg.top[i].id)
                .OverlapsWith(engine.registry().explanation(seg.top[j].id)));
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    DiffByAggregate, QuerySweep,
    ::testing::Combine(::testing::Values(DiffMetricKind::kAbsoluteChange,
                                         DiffMetricKind::kRelativeChange,
                                         DiffMetricKind::kRiskRatio),
                       ::testing::Values(AggregateFunction::kSum,
                                         AggregateFunction::kCount,
                                         AggregateFunction::kAvg)),
    [](const auto& param_info) {
      const DiffMetricKind metric = std::get<0>(param_info.param);
      const AggregateFunction agg = std::get<1>(param_info.param);
      std::string name = DiffMetricName(metric);
      std::replace(name.begin(), name.end(), '-', '_');
      name += agg == AggregateFunction::kSum
                  ? "_sum"
                  : (agg == AggregateFunction::kCount ? "_count" : "_avg");
      return name;
    });

// ---------------------------------------------------------------------
// Sweep 4: optimization combinations preserve segment-count contracts.
class OptimizationSweep
    : public ::testing::TestWithParam<std::tuple<bool, bool, bool>> {};

TEST_P(OptimizationSweep, AllCombinationsRun) {
  const auto [filter, o1, o2] = GetParam();
  SyntheticConfig sconfig;
  sconfig.length = 80;
  sconfig.snr_db = 40.0;
  sconfig.seed = 31337;
  sconfig.num_interior_cuts = 3;
  const SyntheticDataset ds = GenerateSynthetic(sconfig);

  TSExplainConfig config = SyntheticBaseConfig();
  config.use_filter = filter;
  config.use_guess_verify = o1;
  config.use_sketch = o2;
  config.fixed_k = 4;
  TSExplain engine(*ds.table, config);
  const TSExplainResult result = engine.Run();
  EXPECT_EQ(result.segmentation.num_segments(), 4);
  EXPECT_EQ(result.sketch_positions.empty(), !o2);
}

INSTANTIATE_TEST_SUITE_P(
    AllEight, OptimizationSweep,
    ::testing::Combine(::testing::Bool(), ::testing::Bool(),
                       ::testing::Bool()),
    [](const auto& param_info) {
      const bool filter = std::get<0>(param_info.param);
      const bool o1 = std::get<1>(param_info.param);
      const bool o2 = std::get<2>(param_info.param);
      return std::string(filter ? "filter" : "nofilter") +
             (o1 ? "_o1" : "_noo1") + (o2 ? "_o2" : "_noo2");
    });

}  // namespace
}  // namespace tsexplain
