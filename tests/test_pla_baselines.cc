// Tests for the piecewise-linear segmentation baselines (Keogh survey):
// Bottom-Up, Top-Down, Sliding-Window.

#include <gtest/gtest.h>

#include <algorithm>

#include "src/baselines/bottom_up.h"
#include "src/baselines/sliding_window.h"
#include "src/baselines/top_down.h"
#include "src/common/rng.h"
#include "src/ts/linear_fit.h"

namespace tsexplain {
namespace {

// Piecewise-linear series with breakpoints at 30 and 70 (n = 100).
std::vector<double> ThreePieceSeries(double noise_sigma, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> v(100);
  double level = 10.0;
  for (int t = 1; t < 100; ++t) {
    const double slope = t <= 30 ? 3.0 : (t <= 70 ? -2.0 : 5.0);
    level += slope;
    v[static_cast<size_t>(t)] = level + rng.Gaussian(0.0, noise_sigma);
  }
  v[0] = 10.0;
  return v;
}

void ExpectValidScheme(const std::vector<int>& cuts, int n, int k) {
  ASSERT_GE(cuts.size(), 2u);
  EXPECT_EQ(cuts.front(), 0);
  EXPECT_EQ(cuts.back(), n - 1);
  EXPECT_TRUE(std::is_sorted(cuts.begin(), cuts.end()));
  EXPECT_EQ(static_cast<int>(cuts.size()) - 1, k);
}

int NearestDistance(const std::vector<int>& cuts, int target) {
  int best = 1 << 30;
  for (int c : cuts) best = std::min(best, std::abs(c - target));
  return best;
}

TEST(BottomUp, RecoversCleanBreakpoints) {
  const std::vector<double> v = ThreePieceSeries(0.0, 1);
  const std::vector<int> cuts = BottomUpSegment(v, 3);
  ExpectValidScheme(cuts, 100, 3);
  EXPECT_LE(NearestDistance(cuts, 30), 1);
  EXPECT_LE(NearestDistance(cuts, 70), 1);
}

TEST(BottomUp, ToleratesModerateNoise) {
  const std::vector<double> v = ThreePieceSeries(2.0, 3);
  const std::vector<int> cuts = BottomUpSegment(v, 3);
  EXPECT_LE(NearestDistance(cuts, 30), 5);
  EXPECT_LE(NearestDistance(cuts, 70), 5);
}

TEST(BottomUp, KOneAndKHuge) {
  const std::vector<double> v = ThreePieceSeries(1.0, 5);
  EXPECT_EQ(BottomUpSegment(v, 1), (std::vector<int>{0, 99}));
  // k >= n-1 degenerates to the finest segmentation.
  EXPECT_EQ(BottomUpSegment(v, 1000).size(), 100u);
}

TEST(TopDown, RecoversCleanBreakpointsApproximately) {
  // Top-down is greedy: the first split of a 3-piece series need not land
  // on a true breakpoint, and later splits cannot undo it (this is exactly
  // why Keogh's survey crowns Bottom-Up). Allow a coarse tolerance.
  const std::vector<double> v = ThreePieceSeries(0.0, 7);
  const std::vector<int> cuts = TopDownSegment(v, 3);
  ExpectValidScheme(cuts, 100, 3);
  EXPECT_LE(NearestDistance(cuts, 30), 12);
  EXPECT_LE(NearestDistance(cuts, 70), 12);
}

TEST(TopDown, WithExtraBudgetFindsAllBreakpoints) {
  // Given a couple of extra segments, some cut lands on each breakpoint.
  const std::vector<double> v = ThreePieceSeries(0.0, 7);
  const std::vector<int> cuts = TopDownSegment(v, 6);
  EXPECT_LE(NearestDistance(cuts, 30), 2);
  EXPECT_LE(NearestDistance(cuts, 70), 2);
}

TEST(TopDown, MoreSegmentsNeverIncreaseError) {
  const std::vector<double> v = ThreePieceSeries(3.0, 9);
  const SseOracle oracle(v);
  auto total_error = [&](const std::vector<int>& cuts) {
    double err = 0.0;
    for (size_t i = 0; i + 1 < cuts.size(); ++i) {
      err += oracle.Sse(static_cast<size_t>(cuts[i]),
                        static_cast<size_t>(cuts[i + 1]));
    }
    return err;
  };
  double previous = total_error(TopDownSegment(v, 1));
  for (int k = 2; k <= 8; ++k) {
    const double current = total_error(TopDownSegment(v, k));
    EXPECT_LE(current, previous + 1e-9) << "k=" << k;
    previous = current;
  }
}

TEST(SlidingWindow, PassRespectsThreshold) {
  const std::vector<double> v = ThreePieceSeries(1.0, 11);
  const std::vector<int> cuts = SlidingWindowPass(v, 50.0);
  const SseOracle oracle(v);
  for (size_t i = 0; i + 1 < cuts.size(); ++i) {
    // Every grown segment obeys the threshold except possibly the last
    // (closed by the series end).
    if (i + 2 < cuts.size()) {
      EXPECT_LE(oracle.Sse(static_cast<size_t>(cuts[i]),
                           static_cast<size_t>(cuts[i + 1])),
                50.0 + 1e-9);
    }
  }
}

TEST(SlidingWindow, ExactKViaBisection) {
  const std::vector<double> v = ThreePieceSeries(1.5, 13);
  for (int k : {2, 3, 5, 8}) {
    ExpectValidScheme(SlidingWindowSegment(v, k), 100, k);
  }
}

TEST(SlidingWindow, CleanBreakpointsApproximatelyFound) {
  const std::vector<double> v = ThreePieceSeries(0.0, 15);
  const std::vector<int> cuts = SlidingWindowSegment(v, 3);
  // Sliding window is greedy/online and systematically overshoots
  // breakpoints (it keeps growing until the error budget is spent): the
  // survey reports it as the weakest of the three. Coarse tolerance only.
  EXPECT_LE(NearestDistance(cuts, 30), 20);
  EXPECT_LE(NearestDistance(cuts, 70), 20);
}

TEST(AllBaselines, HandleShortSeries) {
  const std::vector<double> v{1.0, 5.0, 2.0};
  EXPECT_EQ(BottomUpSegment(v, 2).size(), 3u);
  EXPECT_EQ(TopDownSegment(v, 2).size(), 3u);
  EXPECT_EQ(SlidingWindowSegment(v, 2).size(), 3u);
}

}  // namespace
}  // namespace tsexplain
