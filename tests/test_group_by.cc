// Unit tests for the hand-rolled group-by aggregation engine.

#include <gtest/gtest.h>

#include "src/table/group_by.h"

namespace tsexplain {
namespace {

// Three days, two states, measure = cases.
Table MakeTable() {
  Table table(Schema("date", {"state", "county"}, {"cases"}));
  table.AddTimeBucket("d0");
  table.AddTimeBucket("d1");
  table.AddTimeBucket("d2");
  table.AppendRow(0, {"NY", "a"}, {10.0});
  table.AppendRow(0, {"NY", "b"}, {30.0});
  table.AppendRow(0, {"CA", "c"}, {5.0});
  table.AppendRow(1, {"NY", "a"}, {20.0});
  table.AppendRow(1, {"CA", "c"}, {8.0});
  table.AppendRow(2, {"CA", "c"}, {13.0});
  return table;
}

TEST(GroupBy, SumOverTime) {
  const Table t = MakeTable();
  const TimeSeries ts = GroupByTime(t, AggregateFunction::kSum, 0);
  EXPECT_EQ(ts.values, (std::vector<double>{45.0, 28.0, 13.0}));
  EXPECT_EQ(ts.labels, (std::vector<std::string>{"d0", "d1", "d2"}));
}

TEST(GroupBy, CountOverTime) {
  const Table t = MakeTable();
  const TimeSeries ts = GroupByTime(t, AggregateFunction::kCount, -1);
  EXPECT_EQ(ts.values, (std::vector<double>{3.0, 2.0, 1.0}));
}

TEST(GroupBy, AvgOverTime) {
  const Table t = MakeTable();
  const TimeSeries ts = GroupByTime(t, AggregateFunction::kAvg, 0);
  EXPECT_DOUBLE_EQ(ts.values[0], 15.0);
  EXPECT_DOUBLE_EQ(ts.values[1], 14.0);
  EXPECT_DOUBLE_EQ(ts.values[2], 13.0);
}

TEST(GroupBy, ConjunctionFilter) {
  const Table t = MakeTable();
  const ValueId ny = t.dictionary(0).Lookup("NY");
  const TimeSeries ts = GroupByTime(t, AggregateFunction::kSum, 0,
                                    {DimPredicate{0, ny}});
  EXPECT_EQ(ts.values, (std::vector<double>{40.0, 20.0, 0.0}));
}

TEST(GroupBy, TwoPredicateConjunction) {
  const Table t = MakeTable();
  const ValueId ny = t.dictionary(0).Lookup("NY");
  const ValueId a = t.dictionary(1).Lookup("a");
  const TimeSeries ts = GroupByTime(
      t, AggregateFunction::kSum, 0,
      {DimPredicate{0, ny}, DimPredicate{1, a}});
  EXPECT_EQ(ts.values, (std::vector<double>{10.0, 20.0, 0.0}));
}

TEST(GroupBy, EmptyAvgGroupFinalizesToZero) {
  const Table t = MakeTable();
  const ValueId ny = t.dictionary(0).Lookup("NY");
  const TimeSeries ts = GroupByTime(t, AggregateFunction::kAvg, 0,
                                    {DimPredicate{0, ny}});
  EXPECT_DOUBLE_EQ(ts.values[2], 0.0);  // NY has no rows on d2
}

TEST(GroupBy, PartialsDecompose) {
  // f(R - sigma_E R) must be recoverable from partials: the heart of the
  // paper's O(1) diff scores.
  const Table t = MakeTable();
  const ValueId ny = t.dictionary(0).Lookup("NY");
  const ValueId ca = t.dictionary(0).Lookup("CA");
  const auto all = GroupByTimePartials(t, 0);
  const auto ny_part = GroupByTimePartials(t, 0, {DimPredicate{0, ny}});
  const auto ca_part = GroupByTimePartials(t, 0, {DimPredicate{0, ca}});
  for (size_t i = 0; i < all.size(); ++i) {
    const AggState complement = all[i].Minus(ny_part[i]);
    EXPECT_DOUBLE_EQ(complement.sum, ca_part[i].sum);
    EXPECT_DOUBLE_EQ(complement.count, ca_part[i].count);
    // Merge is the inverse of Minus.
    AggState merged = ny_part[i];
    merged.Merge(ca_part[i]);
    EXPECT_DOUBLE_EQ(merged.sum, all[i].sum);
  }
}

TEST(GroupBy, ByTimeAndDimension) {
  const Table t = MakeTable();
  const auto per_state =
      GroupByTimeAndDimension(t, AggregateFunction::kSum, 0, 0);
  ASSERT_EQ(per_state.size(), 2u);  // NY, CA
  const ValueId ny = t.dictionary(0).Lookup("NY");
  const ValueId ca = t.dictionary(0).Lookup("CA");
  EXPECT_EQ(per_state[static_cast<size_t>(ny)].values,
            (std::vector<double>{40.0, 20.0, 0.0}));
  EXPECT_EQ(per_state[static_cast<size_t>(ca)].values,
            (std::vector<double>{5.0, 8.0, 13.0}));
}

TEST(GroupBy, DimensionSlicesSumToOverall) {
  const Table t = MakeTable();
  const TimeSeries overall = GroupByTime(t, AggregateFunction::kSum, 0);
  const auto per_state =
      GroupByTimeAndDimension(t, AggregateFunction::kSum, 0, 0);
  for (size_t i = 0; i < overall.size(); ++i) {
    double sum = 0.0;
    for (const TimeSeries& slice : per_state) sum += slice.values[i];
    EXPECT_DOUBLE_EQ(sum, overall.values[i]);
  }
}

TEST(AggStateTest, FinalizeSemantics) {
  AggState s;
  s.Add(2.0);
  s.Add(4.0);
  EXPECT_DOUBLE_EQ(s.Finalize(AggregateFunction::kSum), 6.0);
  EXPECT_DOUBLE_EQ(s.Finalize(AggregateFunction::kCount), 2.0);
  EXPECT_DOUBLE_EQ(s.Finalize(AggregateFunction::kAvg), 3.0);
  EXPECT_DOUBLE_EQ(AggState{}.Finalize(AggregateFunction::kAvg), 0.0);
}

}  // namespace
}  // namespace tsexplain
