// Unit tests for the elbow-method K selection (Kneedle, section 6).

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "src/seg/elbow.h"

namespace tsexplain {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

TEST(Elbow, SharpKneeIsFound) {
  // Steep drop until K=4, then flat: the knee is at 4.
  const std::vector<double> curve{100.0, 60.0, 30.0, 5.0, 4.5,
                                  4.0,   3.8,  3.6,  3.5, 3.4};
  EXPECT_EQ(SelectElbowK(curve), 4);
}

TEST(Elbow, ExponentialDecayKnee) {
  std::vector<double> curve;
  for (int k = 1; k <= 20; ++k) curve.push_back(std::exp(-0.8 * k));
  const int k = SelectElbowK(curve);
  EXPECT_GE(k, 2);
  EXPECT_LE(k, 5);
}

TEST(Elbow, SingleEntryReturnsOne) {
  EXPECT_EQ(SelectElbowK({42.0}), 1);
}

TEST(Elbow, FlatCurveReturnsOne) {
  EXPECT_EQ(SelectElbowK({5.0, 5.0, 5.0, 5.0}), 1);
}

TEST(Elbow, LinearCurveHasNoPreferredKnee) {
  // Perfectly linear decrease: difference curve is ~0 everywhere; argmax
  // ties resolve to the first index.
  const std::vector<double> curve{10.0, 8.0, 6.0, 4.0, 2.0};
  EXPECT_EQ(SelectElbowK(curve), 1);
}

TEST(Elbow, InfeasibleSuffixIgnored) {
  const std::vector<double> curve{100.0, 40.0, 8.0, 7.5, kInf, kInf};
  EXPECT_EQ(SelectElbowK(curve), 3);
}

TEST(Elbow, DifferenceCurveShape) {
  const std::vector<double> curve{100.0, 10.0, 5.0, 2.0};
  const std::vector<double> diff = KneedleDifferenceCurve(curve);
  ASSERT_EQ(diff.size(), 4u);
  // Endpoints of the normalized flipped curve are on the diagonal.
  EXPECT_NEAR(diff.front(), 0.0, 1e-12);
  EXPECT_NEAR(diff.back(), 0.0, 1e-12);
  // Convex-decreasing input -> positive interior difference.
  EXPECT_GT(diff[1], 0.0);
}

TEST(Elbow, PaperStyleCurvePicksSmallK) {
  // Shapes reported by the paper pick K ~ 4..7; verify the selector lands
  // in that band on a curve with a knee near 6.
  std::vector<double> curve;
  for (int k = 1; k <= 20; ++k) {
    curve.push_back(k < 6 ? 50.0 - 7.5 * k : 12.0 - 0.25 * k);
  }
  const int k = SelectElbowK(curve);
  EXPECT_GE(k, 4);
  EXPECT_LE(k, 8);
}

TEST(Elbow, MaxSegmentsConstant) { EXPECT_EQ(kMaxSegments, 20); }

}  // namespace
}  // namespace tsexplain
