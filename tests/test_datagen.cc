// Tests for the synthetic data generator (section 4.2.1 semantics).

#include <gtest/gtest.h>

#include <algorithm>

#include "src/datagen/synthetic.h"
#include "src/table/group_by.h"
#include "src/ts/time_series.h"

namespace tsexplain {
namespace {

TEST(Synthetic, GroundTruthCutsValid) {
  SyntheticConfig config;
  config.seed = 1;
  const SyntheticDataset ds = GenerateSynthetic(config);
  ASSERT_GE(ds.ground_truth_cuts.size(), 3u);  // >= 1 interior cut
  EXPECT_EQ(ds.ground_truth_cuts.front(), 0);
  EXPECT_EQ(ds.ground_truth_cuts.back(), 99);
  EXPECT_TRUE(std::is_sorted(ds.ground_truth_cuts.begin(),
                             ds.ground_truth_cuts.end()));
  // Paper: K varies 2..10.
  EXPECT_GE(ds.ground_truth_k(), 2);
  EXPECT_LE(ds.ground_truth_k(), 10);
}

TEST(Synthetic, MinimumGapRespected) {
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    SyntheticConfig config;
    config.seed = seed;
    const SyntheticDataset ds = GenerateSynthetic(config);
    for (size_t i = 1; i < ds.ground_truth_cuts.size(); ++i) {
      EXPECT_GE(ds.ground_truth_cuts[i] - ds.ground_truth_cuts[i - 1],
                config.min_gap)
          << "seed " << seed;
    }
  }
}

TEST(Synthetic, AdjacentPiecesFlipTrendDirection) {
  SyntheticConfig config;
  config.seed = 3;
  config.snr_db = 60.0;
  const SyntheticDataset ds = GenerateSynthetic(config);
  for (size_t c = 0; c < ds.clean.size(); ++c) {
    std::vector<int> bounds{0};
    for (int cut : ds.category_cuts[c]) bounds.push_back(cut);
    bounds.push_back(99);
    int prev_sign = 0;
    for (size_t s = 0; s + 1 < bounds.size(); ++s) {
      const double delta = ds.clean[c][static_cast<size_t>(bounds[s + 1])] -
                           ds.clean[c][static_cast<size_t>(bounds[s])];
      const int sign = delta > 0 ? 1 : -1;
      if (prev_sign != 0) {
        EXPECT_NE(sign, prev_sign)
            << "category " << c << " piece " << s
            << " does not flip direction";
      }
      prev_sign = sign;
    }
  }
}

TEST(Synthetic, NoiseCalibratedToSnr) {
  for (double snr : {20.0, 35.0, 50.0}) {
    SyntheticConfig config;
    config.seed = 5;
    config.snr_db = snr;
    const SyntheticDataset ds = GenerateSynthetic(config);
    for (size_t c = 0; c < ds.clean.size(); ++c) {
      const double measured = MeasureSnrDb(ds.clean[c], ds.noisy[c]);
      EXPECT_NEAR(measured, snr, 3.0) << "category " << c;
    }
  }
}

TEST(Synthetic, TableAggregatesToSumOfNoisySeries) {
  SyntheticConfig config;
  config.seed = 7;
  const SyntheticDataset ds = GenerateSynthetic(config);
  const TimeSeries overall =
      GroupByTime(*ds.table, AggregateFunction::kSum, 0);
  const std::vector<double> expected = SumSeries(ds.noisy);
  ASSERT_EQ(overall.size(), expected.size());
  for (size_t t = 0; t < expected.size(); ++t) {
    EXPECT_NEAR(overall.values[t], expected[t], 1e-9);
  }
}

TEST(Synthetic, DeterministicInSeed) {
  SyntheticConfig config;
  config.seed = 11;
  const SyntheticDataset a = GenerateSynthetic(config);
  const SyntheticDataset b = GenerateSynthetic(config);
  EXPECT_EQ(a.ground_truth_cuts, b.ground_truth_cuts);
  EXPECT_EQ(a.noisy, b.noisy);
  config.seed = 12;
  const SyntheticDataset c = GenerateSynthetic(config);
  EXPECT_NE(a.noisy, c.noisy);
}

TEST(Synthetic, ExplicitInteriorCutCount) {
  SyntheticConfig config;
  config.seed = 13;
  config.num_interior_cuts = 5;
  const SyntheticDataset ds = GenerateSynthetic(config);
  EXPECT_EQ(ds.ground_truth_k(), 6);
}

TEST(Synthetic, PaperSnrGrid) {
  const std::vector<double> levels = PaperSnrLevels();
  ASSERT_EQ(levels.size(), 7u);
  EXPECT_DOUBLE_EQ(levels.front(), 20.0);
  EXPECT_DOUBLE_EQ(levels.back(), 50.0);
}

TEST(TableFromCategorySeriesTest, SchemaAndContent) {
  const std::vector<std::vector<double>> series{{1.0, 2.0}, {3.0, 4.0}};
  auto table =
      TableFromCategorySeries(series, {"x", "y"}, {"t0", "t1"});
  EXPECT_EQ(table->num_rows(), 4u);
  EXPECT_EQ(table->num_time_buckets(), 2u);
  EXPECT_EQ(table->schema().DimensionIndex("category"), 0);
  const TimeSeries overall =
      GroupByTime(*table, AggregateFunction::kSum, 0);
  EXPECT_EQ(overall.values, (std::vector<double>{4.0, 6.0}));
}

}  // namespace
}  // namespace tsexplain
