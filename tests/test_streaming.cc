// Tests for the streaming / real-time extension (section 8).

#include <gtest/gtest.h>

#include <algorithm>

#include "src/datagen/synthetic.h"
#include "src/pipeline/streaming.h"

namespace tsexplain {
namespace {

TSExplainConfig BaseConfig() {
  TSExplainConfig config;
  config.measure = "value";
  config.explain_by_names = {"category"};
  config.max_order = 1;
  return config;
}

SyntheticDataset MakeDataset(uint64_t seed) {
  SyntheticConfig config;
  config.length = 80;
  config.snr_db = 45.0;
  config.num_interior_cuts = 3;
  config.seed = seed;
  return GenerateSynthetic(config);
}

std::vector<StreamRow> BucketRows(const Table& source, TimeId t) {
  std::vector<StreamRow> rows;
  for (size_t r = 0; r < source.num_rows(); ++r) {
    if (source.time(r) != t) continue;
    StreamRow row;
    for (size_t d = 0; d < source.schema().num_dimensions(); ++d) {
      row.dims.push_back(source.dictionary(static_cast<AttrId>(d))
                             .ToString(source.dim(r, static_cast<AttrId>(d))));
    }
    for (size_t m = 0; m < source.schema().num_measures(); ++m) {
      row.measures.push_back(source.measure(r, static_cast<int>(m)));
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

TEST(Streaming, FirstRunMatchesBatchEngine) {
  const SyntheticDataset ds = MakeDataset(5);
  TSExplainConfig config = BaseConfig();
  config.fixed_k = 4;

  TSExplain batch(*ds.table, config);
  StreamingTSExplain streaming(*ds.table, config);
  const TSExplainResult batch_result = batch.Run();
  const TSExplainResult stream_result = streaming.Explain();
  EXPECT_EQ(stream_result.segmentation.cuts, batch_result.segmentation.cuts);
  EXPECT_NEAR(stream_result.segmentation.total_variance,
              batch_result.segmentation.total_variance, 1e-9);
}

TEST(Streaming, AppendWithKnownCellsIsIncremental) {
  // Split the dataset: first 70 buckets seed the engine, the rest stream
  // in. All categories appear early, so no rebuild is needed.
  const SyntheticDataset full = MakeDataset(9);
  Table prefix(full.table->schema());
  for (int t = 0; t < 70; ++t) {
    prefix.AddTimeBucket(full.table->time_labels()[static_cast<size_t>(t)]);
  }
  for (size_t r = 0; r < full.table->num_rows(); ++r) {
    if (full.table->time(r) < 70) {
      prefix.AppendRow(
          full.table->time(r),
          {full.table->dictionary(0).ToString(full.table->dim(r, 0))},
          {full.table->measure(r, 0)});
    }
  }

  TSExplainConfig config = BaseConfig();
  StreamingTSExplain streaming(prefix, config);
  const TSExplainResult first = streaming.Explain();
  EXPECT_EQ(first.segmentation.cuts.back(), 69);

  for (int t = 70; t < 80; ++t) {
    streaming.AppendBucket(
        full.table->time_labels()[static_cast<size_t>(t)],
        BucketRows(*full.table, static_cast<TimeId>(t)));
    EXPECT_FALSE(streaming.last_append_rebuilt()) << "bucket " << t;
  }
  EXPECT_EQ(streaming.n(), 80);

  const TSExplainResult second = streaming.Explain();
  EXPECT_EQ(second.segmentation.cuts.back(), 79);
  EXPECT_GE(second.segmentation.num_segments(), 1);
}

TEST(Streaming, NewCategoryForcesRebuild) {
  const SyntheticDataset ds = MakeDataset(13);
  TSExplainConfig config = BaseConfig();
  StreamingTSExplain streaming(*ds.table, config);
  streaming.Explain();

  StreamRow row;
  row.dims = {"brand-new-category"};
  row.measures = {123.0};
  streaming.AppendBucket("t80", {row});
  EXPECT_TRUE(streaming.last_append_rebuilt());
  const TSExplainResult result = streaming.Explain();
  EXPECT_EQ(result.segmentation.cuts.back(), 80);
}

TEST(Streaming, IncrementalCutsComeFromOldCutsPlusTail) {
  const SyntheticDataset ds = MakeDataset(17);
  TSExplainConfig config = BaseConfig();
  StreamingTSExplain streaming(*ds.table, config);
  const TSExplainResult first = streaming.Explain();

  // Append three flat buckets (copy of the last one).
  const auto rows = BucketRows(*ds.table, 79);
  streaming.AppendBucket("t80", rows);
  streaming.AppendBucket("t81", rows);
  streaming.AppendBucket("t82", rows);
  const TSExplainResult second = streaming.Explain();

  // Every interior cut of the refreshed result must be an old cut or a
  // tail point (>= 78).
  for (size_t i = 1; i + 1 < second.segmentation.cuts.size(); ++i) {
    const int cut = second.segmentation.cuts[i];
    const bool is_old =
        std::find(first.segmentation.cuts.begin(),
                  first.segmentation.cuts.end(),
                  cut) != first.segmentation.cuts.end();
    EXPECT_TRUE(is_old || cut >= 78) << "unexpected cut " << cut;
  }
}

TEST(Streaming, SmoothingConfigRebuildsOnAppend) {
  const SyntheticDataset ds = MakeDataset(19);
  TSExplainConfig config = BaseConfig();
  config.smooth_window = 3;
  StreamingTSExplain streaming(*ds.table, config);
  streaming.Explain();
  streaming.AppendBucket("t80", BucketRows(*ds.table, 79));
  EXPECT_TRUE(streaming.last_append_rebuilt());
}

}  // namespace
}  // namespace tsexplain
