// Unit tests for the support filter ("w filter" optimization).

#include <gtest/gtest.h>

#include "src/cube/support_filter.h"

namespace tsexplain {
namespace {

Table MakeTable() {
  Table table(Schema("t", {"cat"}, {"v"}));
  table.AddTimeBucket("0");
  table.AddTimeBucket("1");
  // big: dominates; tiny: < 0.1% of overall everywhere; zero: no support.
  table.AppendRow(0, {"big"}, {1000.0});
  table.AppendRow(0, {"tiny"}, {0.5});
  table.AppendRow(0, {"zero"}, {0.0});
  table.AppendRow(1, {"big"}, {2000.0});
  table.AppendRow(1, {"tiny"}, {0.5});
  table.AppendRow(1, {"zero"}, {0.0});
  return table;
}

TEST(SupportFilter, DropsLowSupportSlices) {
  const Table t = MakeTable();
  const auto reg = ExplanationRegistry::Build(t, {0}, 1);
  const ExplanationCube cube(t, reg, AggregateFunction::kSum, 0);
  const auto active = ComputeSupportFilter(cube, 0.001);

  const auto id_of = [&](const char* name) {
    return reg.Lookup(Explanation::FromPredicates(
        {Predicate{0, t.dictionary(0).Lookup(name)}}));
  };
  EXPECT_TRUE(active[static_cast<size_t>(id_of("big"))]);
  EXPECT_FALSE(active[static_cast<size_t>(id_of("tiny"))]);
  EXPECT_FALSE(active[static_cast<size_t>(id_of("zero"))]);
  EXPECT_EQ(CountActive(active), 1u);
}

TEST(SupportFilter, RatioZeroKeepsAnythingNonZero) {
  const Table t = MakeTable();
  const auto reg = ExplanationRegistry::Build(t, {0}, 1);
  const ExplanationCube cube(t, reg, AggregateFunction::kSum, 0);
  const auto active = ComputeSupportFilter(cube, 0.0);
  EXPECT_EQ(CountActive(active), 2u);  // zero-slice still dropped
}

TEST(SupportFilter, OnePointAboveThresholdSuffices) {
  Table table(Schema("t", {"cat"}, {"v"}));
  table.AddTimeBucket("0");
  table.AddTimeBucket("1");
  table.AppendRow(0, {"base"}, {1000.0});
  table.AppendRow(1, {"base"}, {1000.0});
  table.AppendRow(0, {"spiky"}, {0.01});
  table.AppendRow(1, {"spiky"}, {500.0});  // spike grants support
  const auto reg = ExplanationRegistry::Build(table, {0}, 1);
  const ExplanationCube cube(table, reg, AggregateFunction::kSum, 0);
  const auto active = ComputeSupportFilter(cube, 0.001);
  EXPECT_EQ(CountActive(active), 2u);
}

TEST(SupportFilter, DefaultRatioConstant) {
  EXPECT_DOUBLE_EQ(kDefaultFilterRatio, 0.001);
}

}  // namespace
}  // namespace tsexplain
