// Service-level persistence (the warm-start + crash-recovery story):
// ExplainService::SaveCache / LoadCache with dataset-uid fencing, the
// per-tenant stats surface, snapshot-backed dataset registration, and
// streaming-session recovery through the append log — i.e. everything a
// `tsexplain_serve` restart leans on (docs/SERVICE.md, "Warm starts").

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "src/common/json.h"
#include "src/common/metrics.h"
#include "src/service/explain_service.h"
#include "src/service/protocol.h"
#include "src/service/quota.h"
#include "src/storage/table_snapshot.h"

namespace tsexplain {
namespace {

std::string TempPath(const std::string& tag) {
  static int counter = 0;
  const std::string path = testing::TempDir() + "/tsx_persist_" +
                           std::to_string(::getpid()) + "_" + tag + "_" +
                           std::to_string(++counter);
  std::remove(path.c_str());
  return path;
}

// Two distinct inline datasets; `MakeCsv(0)` != `MakeCsv(1)` so fencing
// tests can swap content under a fixed name.
std::string MakeCsv(int variant) {
  std::string csv = "date,region,sales\n";
  for (int t = 0; t < 10; ++t) {
    csv += std::to_string(t) + ",east," + std::to_string(10 + t + variant) +
           "\n";
    csv += std::to_string(t) + ",west," + std::to_string(20 - t) + "\n";
  }
  return csv;
}

void RegisterSales(ExplainService& service, int variant = 0) {
  CsvOptions options;
  options.time_column = "date";
  options.measure_columns = {"sales"};
  std::string error;
  ASSERT_TRUE(service.registry().RegisterCsvText("sales", MakeCsv(variant),
                                                 options, &error))
      << error;
}

// The wire JSON embeds a timing block (wall clock, not results); masking
// it lets separately computed responses be compared byte for byte.
std::string MaskTiming(std::string json) {
  const size_t begin = json.find("\"timing_ms\":{");
  EXPECT_NE(begin, std::string::npos);
  const size_t end = json.find('}', begin);
  EXPECT_NE(end, std::string::npos);
  json.erase(begin, end - begin + 1);
  return json;
}

ExplainRequest SalesRequest(const std::string& tenant = std::string()) {
  ExplainRequest request;
  request.dataset = "sales";
  request.config.measure = "sales";
  request.config.explain_by_names = {"region"};
  request.config.fixed_k = 2;
  request.tenant = tenant;
  return request;
}

TEST(CachePersistence, WarmStartServesByteIdenticalHits) {
  const std::string path = TempPath("warm");
  std::string cold_json;
  {
    ExplainService service;
    RegisterSales(service);
    const ExplainResponse cold = service.Explain(SalesRequest());
    ASSERT_TRUE(cold.ok) << cold.error;
    EXPECT_FALSE(cold.cache_hit);
    cold_json = cold.json;
    std::string error;
    size_t saved = 0;
    ASSERT_TRUE(service.SaveCache(path, &error, &saved)) << error;
    EXPECT_EQ(saved, 1u);
  }

  // "Restart": a brand-new service re-registers the same data (getting a
  // NEW registration uid) and loads the snapshot. The first query must be
  // a hit, byte-identical to the pre-restart response.
  ExplainService restarted;
  RegisterSales(restarted);
  std::string error;
  size_t restored = 0;
  size_t fenced = 0;
  ASSERT_TRUE(restarted.LoadCache(path, &error, &restored, &fenced)) << error;
  EXPECT_EQ(restored, 1u);
  EXPECT_EQ(fenced, 0u);

  const ExplainResponse warm = restarted.Explain(SalesRequest());
  ASSERT_TRUE(warm.ok) << warm.error;
  EXPECT_TRUE(warm.cache_hit);
  EXPECT_EQ(warm.json, cold_json);
}

TEST(CachePersistence, ChangedDatasetIsFencedOut) {
  const std::string path = TempPath("fence");
  {
    ExplainService service;
    RegisterSales(service, /*variant=*/0);
    ASSERT_TRUE(service.Explain(SalesRequest()).ok);
    std::string error;
    ASSERT_TRUE(service.SaveCache(path, &error)) << error;
  }

  // Same name, different content: the fingerprint mismatch fences every
  // entry — a stale explanation must never be served for new data.
  ExplainService restarted;
  RegisterSales(restarted, /*variant=*/1);
  std::string error;
  size_t restored = 0;
  size_t fenced = 0;
  ASSERT_TRUE(restarted.LoadCache(path, &error, &restored, &fenced)) << error;
  EXPECT_EQ(restored, 0u);
  EXPECT_EQ(fenced, 1u);
  const ExplainResponse response = restarted.Explain(SalesRequest());
  ASSERT_TRUE(response.ok);
  EXPECT_FALSE(response.cache_hit);
}

TEST(CachePersistence, UnregisteredDatasetIsFencedOut) {
  const std::string path = TempPath("unreg");
  {
    ExplainService service;
    RegisterSales(service);
    ASSERT_TRUE(service.Explain(SalesRequest()).ok);
    std::string error;
    ASSERT_TRUE(service.SaveCache(path, &error)) << error;
  }
  ExplainService restarted;  // nothing registered
  std::string error;
  size_t restored = 0;
  size_t fenced = 0;
  ASSERT_TRUE(restarted.LoadCache(path, &error, &restored, &fenced)) << error;
  EXPECT_EQ(restored, 0u);
  EXPECT_EQ(fenced, 1u);
}

TEST(CachePersistence, SessionEntriesAreNeverPersisted) {
  const std::string path = TempPath("session");
  {
    ExplainService service;
    RegisterSales(service);
    std::string error;
    const uint64_t session =
        service.OpenSession("sales", SalesRequest().config, &error);
    ASSERT_NE(session, 0u) << error;
    ASSERT_TRUE(service.ExplainSession(session).ok);  // caches session/1/...
    ASSERT_TRUE(service.Explain(SalesRequest()).ok);  // caches dataset entry
    size_t saved = 0;
    ASSERT_TRUE(service.SaveCache(path, &error, &saved)) << error;
    // Only the dataset-level entry: session ids restart after a crash, so
    // a persisted session entry could alias a NEW session's key.
    EXPECT_EQ(saved, 1u);
  }
}

TEST(CachePersistence, TenantEntriesRestoreIntoTheirNamespace) {
  const std::string path = TempPath("tenant");
  std::string acme_json;
  {
    ExplainService service;
    RegisterSales(service);
    const ExplainResponse acme = service.Explain(SalesRequest("acme"));
    ASSERT_TRUE(acme.ok) << acme.error;
    acme_json = acme.json;
    ASSERT_TRUE(service.Explain(SalesRequest()).ok);  // shared namespace
    std::string error;
    size_t saved = 0;
    ASSERT_TRUE(service.SaveCache(path, &error, &saved)) << error;
    EXPECT_EQ(saved, 2u);
  }

  ServiceOptions options;
  options.tenant_cache_budget_bytes = 1 << 20;
  ExplainService restarted(options);
  RegisterSales(restarted);
  std::string error;
  size_t restored = 0;
  ASSERT_TRUE(restarted.LoadCache(path, &error, &restored)) << error;
  EXPECT_EQ(restored, 2u);

  // The tenant was re-installed by the load (with its cache budget), and
  // the stats surface shows whose bytes the warm cache holds.
  const ServiceStats stats = restarted.Stats();
  EXPECT_EQ(stats.tenants, 1u);
  ASSERT_EQ(stats.tenant_bytes.size(), 1u);
  EXPECT_EQ(stats.tenant_bytes[0].first, "acme");
  EXPECT_GT(stats.tenant_bytes[0].second, 0u);

  const ExplainResponse warm = restarted.Explain(SalesRequest("acme"));
  ASSERT_TRUE(warm.ok);
  EXPECT_TRUE(warm.cache_hit);
  EXPECT_EQ(warm.json, acme_json);
}

TEST(CachePersistence, CorruptSnapshotIsAStructuredError) {
  const std::string path = TempPath("corrupt");
  {
    ExplainService service;
    RegisterSales(service);
    ASSERT_TRUE(service.Explain(SalesRequest()).ok);
    std::string error;
    ASSERT_TRUE(service.SaveCache(path, &error)) << error;
  }
  // Flip one payload byte.
  std::string contents;
  ASSERT_TRUE(storage::ReadFileToString(path, &contents).ok());
  contents[contents.size() - 1] ^= 0x01;
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fwrite(contents.data(), 1, contents.size(), f);
  std::fclose(f);

  ExplainService restarted;
  RegisterSales(restarted);
  std::string error;
  EXPECT_FALSE(restarted.LoadCache(path, &error));
  EXPECT_EQ(error.rfind("checksum_mismatch:", 0), 0u) << error;
  // And the failed load left the cache cold but the service serving.
  EXPECT_TRUE(restarted.Explain(SalesRequest()).ok);
}

TEST(CachePersistence, SaveAndLoadCacheDoZeroAdditionalTableHashes) {
  // The fingerprint is computed exactly once, at registration; the cache
  // save/load fencing reuses the registry's cached value. A regression
  // that re-serializes the table per save/load/explain shows up as extra
  // "storage.fingerprint_computes" ticks.
  Counter& computes =
      MetricRegistry::Global().GetCounter("storage.fingerprint_computes");
  const std::string path = TempPath("nohash");
  {
    ExplainService service;
    RegisterSales(service);
    const uint64_t after_register = computes.Value();
    ASSERT_TRUE(service.Explain(SalesRequest()).ok);
    std::string error;
    ASSERT_TRUE(service.SaveCache(path, &error)) << error;
    EXPECT_EQ(computes.Value(), after_register)
        << "explain + save_cache must not re-hash the table";
  }

  ExplainService restarted;
  RegisterSales(restarted);
  const uint64_t after_register = computes.Value();
  std::string error;
  size_t restored = 0;
  ASSERT_TRUE(restarted.LoadCache(path, &error, &restored)) << error;
  EXPECT_EQ(restored, 1u);
  const ExplainResponse warm = restarted.Explain(SalesRequest());
  ASSERT_TRUE(warm.ok);
  EXPECT_TRUE(warm.cache_hit);
  EXPECT_EQ(computes.Value(), after_register)
      << "load_cache + a warm hit must not re-hash the table";
}

TEST(CachePersistence, StatsReportsPerTenantBytes) {
  ExplainService service;
  RegisterSales(service);
  ASSERT_TRUE(service.Explain(SalesRequest("acme")).ok);
  ASSERT_TRUE(service.Explain(SalesRequest("globex")).ok);
  ASSERT_TRUE(service.Explain(SalesRequest()).ok);
  const ServiceStats stats = service.Stats();
  ASSERT_EQ(stats.tenant_bytes.size(), 2u);
  EXPECT_EQ(stats.tenant_bytes[0].first, "acme");
  EXPECT_EQ(stats.tenant_bytes[1].first, "globex");
  EXPECT_GT(stats.tenant_bytes[0].second, 0u);
  EXPECT_GT(stats.tenant_bytes[1].second, 0u);
  // Namespaced bytes are a strict subset of the cache total (the shared
  // namespace holds the tenant-less entry).
  EXPECT_LT(stats.tenant_bytes[0].second + stats.tenant_bytes[1].second,
            stats.cache.bytes_used);
}

TEST(SnapshotRegistration, SnapshotBackedDatasetServesIdenticalResults) {
  // Register the same data twice — once parsed from CSV, once loaded from
  // a binary snapshot — and require byte-identical responses.
  ExplainService service;
  RegisterSales(service);
  const std::shared_ptr<const Table> table = service.registry().Get("sales");
  ASSERT_NE(table, nullptr);
  const std::string path = TempPath("snapreg");
  ASSERT_TRUE(storage::WriteTableSnapshot(*table, path).ok());

  std::string error;
  DatasetInfo info;
  ASSERT_TRUE(service.registry().RegisterSnapshotFile("sales2", path, &error,
                                                      &info))
      << error;
  EXPECT_EQ(info.rows, 20u);
  EXPECT_EQ(info.time_buckets, 10u);
  EXPECT_EQ(info.source, path);

  ExplainRequest on_snapshot = SalesRequest();
  on_snapshot.dataset = "sales2";
  const ExplainResponse a = service.Explain(SalesRequest());
  const ExplainResponse b = service.Explain(on_snapshot);
  ASSERT_TRUE(a.ok);
  ASSERT_TRUE(b.ok);
  EXPECT_EQ(MaskTiming(a.json), MaskTiming(b.json));

  // A corrupt snapshot registers nothing and reports the structured code.
  std::FILE* f = std::fopen(path.c_str(), "r+b");
  ASSERT_NE(f, nullptr);
  std::fseek(f, -1, SEEK_END);
  std::fputc('!', f);
  std::fclose(f);
  EXPECT_FALSE(
      service.registry().RegisterSnapshotFile("sales3", path, &error));
  EXPECT_EQ(error.rfind("checksum_mismatch:", 0), 0u) << error;
  EXPECT_EQ(service.registry().Get("sales3"), nullptr);
}

// --- Streaming-session recovery -------------------------------------------

std::vector<StreamRow> Bucket(int t) {
  return {{{"east"}, {30.0 + t}}, {{"west"}, {11.0 - t}}};
}

TEST(SessionRecovery, RecoveredSessionExplainsIdentically) {
  const std::string dir = testing::TempDir();
  std::string log_path;
  std::string crashed_json;
  {
    ServiceOptions options;
    options.session_log_dir = dir;
    ExplainService service(options);
    RegisterSales(service);
    std::string error;
    const uint64_t session =
        service.OpenSession("sales", SalesRequest().config, &error);
    ASSERT_NE(session, 0u) << error;
    log_path = service.SessionLogPath(session);  // pid-scoped: never guess
    ASSERT_FALSE(log_path.empty());
    ASSERT_TRUE(service.Append(session, "b1", Bucket(1), &error)) << error;
    ASSERT_TRUE(service.Append(session, "b2", Bucket(2), &error)) << error;
    const ExplainResponse response = service.ExplainSession(session);
    ASSERT_TRUE(response.ok) << response.error;
    crashed_json = response.json;
    // No CloseSession: the service dies here — the crash being simulated.
  }

  ServiceOptions options;
  options.session_log_dir = dir;
  ExplainService restarted(options);
  RegisterSales(restarted);
  std::string error;
  bool torn = true;
  int replayed = -1;
  const uint64_t recovered =
      restarted.RecoverSession(log_path, &error, &torn, &replayed);
  ASSERT_NE(recovered, 0u) << error;
  EXPECT_FALSE(torn);
  EXPECT_EQ(replayed, 2);
  EXPECT_EQ(restarted.SessionLength(recovered), 12);

  const ExplainResponse response = restarted.ExplainSession(recovered);
  ASSERT_TRUE(response.ok) << response.error;
  // Everything except the (wall-clock) timing block must match byte for
  // byte: the replayed session IS the crashed session.
  EXPECT_EQ(MaskTiming(response.json), MaskTiming(crashed_json));

  // The recovered session logs onward: a further append + crash would
  // recover to THIS state (header + replayed appends are re-logged).
  const std::string new_log = restarted.SessionLogPath(recovered);
  ASSERT_FALSE(new_log.empty());
  // The recovered session's log must NOT clobber the crashed process's
  // (same pid here, but a new id; across processes the pid differs too).
  EXPECT_NE(new_log, log_path);
  ASSERT_TRUE(restarted.Append(recovered, "b3", Bucket(3), &error)) << error;
  storage::SessionLogContents contents;
  ASSERT_TRUE(storage::ReadSessionLog(new_log, &contents).ok());
  EXPECT_EQ(contents.appends.size(), 3u);
  EXPECT_EQ(contents.appends[2].label, "b3");

  // Clean close removes the log.
  ASSERT_TRUE(restarted.CloseSession(recovered));
  std::string probe;
  EXPECT_FALSE(storage::ReadFileToString(new_log, &probe).ok());
  std::remove(log_path.c_str());
}

TEST(SessionRecovery, FailsStructurallyWhenBaseChangedOrMissing) {
  const std::string dir = testing::TempDir();
  std::string log_path;
  {
    ServiceOptions options;
    options.session_log_dir = dir;
    ExplainService service(options);
    RegisterSales(service, /*variant=*/0);
    std::string error;
    const uint64_t session =
        service.OpenSession("sales", SalesRequest().config, &error);
    ASSERT_NE(session, 0u) << error;
    log_path = service.SessionLogPath(session);
    ASSERT_FALSE(log_path.empty());
    ASSERT_TRUE(service.Append(session, "b1", Bucket(1), &error)) << error;
  }

  {
    // Dataset not registered: structured "unknown dataset".
    ExplainService restarted;
    std::string error;
    EXPECT_EQ(restarted.RecoverSession(log_path, &error), 0u);
    EXPECT_EQ(error.rfind("unknown dataset", 0), 0u) << error;
  }
  {
    // Dataset re-registered with DIFFERENT content: fingerprint fence.
    ExplainService restarted;
    RegisterSales(restarted, /*variant=*/1);
    std::string error;
    EXPECT_EQ(restarted.RecoverSession(log_path, &error), 0u);
    EXPECT_EQ(error.rfind("format_error:", 0), 0u) << error;
    EXPECT_NE(error.find("fingerprint"), std::string::npos);
  }
  {
    // Garbage file: structured, never an abort.
    ExplainService restarted;
    RegisterSales(restarted);
    std::string error;
    EXPECT_EQ(restarted.RecoverSession(TempPath("absent"), &error), 0u);
    EXPECT_EQ(error.rfind("io_error:", 0), 0u) << error;
  }
  std::remove(log_path.c_str());
}

// --- Protocol surface ------------------------------------------------------

TEST(ProtocolPersistence, SaveLoadRecoverOpsRoundTrip) {
  const std::string dir = testing::TempDir();
  const std::string cache_path = TempPath("proto_cache");
  std::string log_path;

  ServiceOptions options;
  options.session_log_dir = dir;
  ExplainService service(options);
  RegisterSales(service);
  ProtocolHandler handler(service);

  auto handle = [&](const std::string& line) {
    JsonValue request;
    std::string parse_error;
    EXPECT_TRUE(ParseJson(line, &request, &parse_error)) << parse_error;
    return handler.Handle(request);
  };

  const std::string explain_line =
      "{\"op\":\"explain\",\"id\":1,\"dataset\":\"sales\","
      "\"measure\":\"sales\",\"explain_by\":[\"region\"],\"k\":2}";
  EXPECT_NE(handle(explain_line).find("\"ok\":true"), std::string::npos);

  std::string response =
      handle("{\"op\":\"save_cache\",\"id\":2,\"path\":\"" + cache_path +
             "\"}");
  EXPECT_NE(response.find("\"saved\":1"), std::string::npos) << response;

  response = handle(
      "{\"op\":\"open_session\",\"id\":3,\"dataset\":\"sales\","
      "\"measure\":\"sales\",\"explain_by\":[\"region\"],\"k\":2}");
  EXPECT_NE(response.find("\"session\":1"), std::string::npos) << response;
  // The response exposes the (pid-scoped) log path; clients never guess.
  EXPECT_NE(response.find("\"log\":\""), std::string::npos) << response;
  log_path = service.SessionLogPath(1);
  ASSERT_FALSE(log_path.empty());

  // Ops without a path are bad requests; a bad path is a structured error.
  EXPECT_NE(handle("{\"op\":\"load_cache\",\"id\":4}")
                .find("\"code\":\"bad_request\""),
            std::string::npos);
  EXPECT_NE(handle("{\"op\":\"recover_session\",\"id\":5,\"path\":\"/no/"
                   "such/file\"}")
                .find("\"code\":\"bad_request\""),
            std::string::npos);

  response = handle("{\"op\":\"load_cache\",\"id\":6,\"path\":\"" +
                    cache_path + "\"}");
  EXPECT_NE(response.find("\"restored\":1"), std::string::npos) << response;
  EXPECT_NE(response.find("\"fenced\":0"), std::string::npos) << response;

  // The warm entry serves the next explain as a hit.
  response = handle(explain_line);
  EXPECT_NE(response.find("\"cache_hit\":true"), std::string::npos)
      << response;

  response = handle("{\"op\":\"recover_session\",\"id\":7,\"path\":\"" +
                    log_path + "\"}");
  EXPECT_NE(response.find("\"ok\":true"), std::string::npos) << response;
  EXPECT_NE(response.find("\"session\":2"), std::string::npos) << response;
  EXPECT_NE(response.find("\"torn\":false"), std::string::npos) << response;

  // Persistence ops are barriers (they mutate / snapshot global state).
  EXPECT_TRUE(ProtocolHandler::IsBarrierOp("save_cache"));
  EXPECT_TRUE(ProtocolHandler::IsBarrierOp("load_cache"));
  EXPECT_TRUE(ProtocolHandler::IsBarrierOp("recover_session"));

  // stats carries the tenant_bytes object.
  response = handle("{\"op\":\"stats\",\"id\":8}");
  EXPECT_NE(response.find("\"tenant_bytes\":{"), std::string::npos)
      << response;

  std::remove(log_path.c_str());
  std::remove(service.SessionLogPath(2).c_str());
  std::remove(cache_path.c_str());
}

}  // namespace
}  // namespace tsexplain
