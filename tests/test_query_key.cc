// Canonicalization contract of src/service/query_key.h: semantically
// identical queries collapse to one key; semantically different queries
// never do.

#include <gtest/gtest.h>

#include "src/service/query_key.h"

namespace tsexplain {
namespace {

TSExplainConfig BaseConfig() {
  TSExplainConfig config;
  config.measure = "value";
  config.explain_by_names = {"state", "county"};
  return config;
}

TEST(QueryKey, ExplainByOrderInsensitive) {
  TSExplainConfig a = BaseConfig();
  TSExplainConfig b = BaseConfig();
  b.explain_by_names = {"county", "state"};
  EXPECT_EQ(CanonicalizeQuery("ds", a).query_key,
            CanonicalizeQuery("ds", b).query_key);
  EXPECT_EQ(CanonicalizeQuery("ds", a).engine_key,
            CanonicalizeQuery("ds", b).engine_key);
}

TEST(QueryKey, ExplainByDuplicatesCollapse) {
  TSExplainConfig a = BaseConfig();
  TSExplainConfig b = BaseConfig();
  b.explain_by_names = {"state", "county", "state"};
  EXPECT_EQ(CanonicalizeQuery("ds", a).query_key,
            CanonicalizeQuery("ds", b).query_key);
}

TEST(QueryKey, ExcludeOrderInsensitive) {
  TSExplainConfig a = BaseConfig();
  a.exclude = {"state=NY", "county=Kings"};
  TSExplainConfig b = BaseConfig();
  b.exclude = {"county=Kings", "state=NY"};
  EXPECT_EQ(CanonicalizeQuery("ds", a).query_key,
            CanonicalizeQuery("ds", b).query_key);
  TSExplainConfig c = BaseConfig();
  c.exclude = {"state=NY"};
  EXPECT_NE(CanonicalizeQuery("ds", a).query_key,
            CanonicalizeQuery("ds", c).query_key);
}

TEST(QueryKey, DefaultVsExplicitFlagsMatch) {
  // An explicitly-spelled default equals the default-constructed config.
  TSExplainConfig a = BaseConfig();
  TSExplainConfig b = BaseConfig();
  b.max_order = 3;
  b.m = 3;
  b.smooth_window = 1;
  b.fixed_k = 0;
  b.max_k = kMaxSegments;
  b.diff_metric = DiffMetricKind::kAbsoluteChange;
  b.variance_metric = VarianceMetric::kTse;
  EXPECT_EQ(CanonicalizeQuery("ds", a).query_key,
            CanonicalizeQuery("ds", b).query_key);
}

TEST(QueryKey, DanglingOptionPayloadsNormalizedAway) {
  // filter_ratio / initial_guess / sketch_params only matter when their
  // switch is on.
  TSExplainConfig a = BaseConfig();
  TSExplainConfig b = BaseConfig();
  b.filter_ratio = 0.5;
  b.initial_guess = 99;
  b.sketch_params.max_segment_len = 7;
  EXPECT_EQ(CanonicalizeQuery("ds", a).query_key,
            CanonicalizeQuery("ds", b).query_key);

  TSExplainConfig c = b;
  c.use_filter = true;
  EXPECT_NE(CanonicalizeQuery("ds", b).query_key,
            CanonicalizeQuery("ds", c).query_key);
  TSExplainConfig d = b;
  d.use_sketch = true;
  EXPECT_NE(CanonicalizeQuery("ds", b).query_key,
            CanonicalizeQuery("ds", d).query_key);
}

TEST(QueryKey, ThreadsNeverAffectTheKey) {
  TSExplainConfig a = BaseConfig();
  TSExplainConfig b = BaseConfig();
  b.threads = 8;
  EXPECT_EQ(CanonicalizeQuery("ds", a).query_key,
            CanonicalizeQuery("ds", b).query_key);
}

TEST(QueryKey, MaxKIgnoredUnderFixedK) {
  TSExplainConfig a = BaseConfig();
  a.fixed_k = 5;
  a.max_k = 20;
  TSExplainConfig b = BaseConfig();
  b.fixed_k = 5;
  b.max_k = 10;
  EXPECT_EQ(CanonicalizeQuery("ds", a).query_key,
            CanonicalizeQuery("ds", b).query_key);
  // ... but respected in auto-K mode.
  a.fixed_k = b.fixed_k = 0;
  EXPECT_NE(CanonicalizeQuery("ds", a).query_key,
            CanonicalizeQuery("ds", b).query_key);
}

TEST(QueryKey, SegmentationKnobsStayOutOfTheEngineKey) {
  TSExplainConfig a = BaseConfig();
  TSExplainConfig b = BaseConfig();
  b.fixed_k = 7;
  b.variance_metric = VarianceMetric::kDist1;
  b.use_sketch = true;
  const CanonicalQuery qa = CanonicalizeQuery("ds", a);
  const CanonicalQuery qb = CanonicalizeQuery("ds", b);
  EXPECT_EQ(qa.engine_key, qb.engine_key);  // same hot engine
  EXPECT_NE(qa.query_key, qb.query_key);    // distinct cache entries
}

TEST(QueryKey, DistinctSemanticsDistinctKeys) {
  const TSExplainConfig base = BaseConfig();
  const std::string base_key = CanonicalizeQuery("ds", base).query_key;

  TSExplainConfig other = base;
  other.aggregate = AggregateFunction::kAvg;
  EXPECT_NE(base_key, CanonicalizeQuery("ds", other).query_key);
  other = base;
  other.measure = "deaths";
  EXPECT_NE(base_key, CanonicalizeQuery("ds", other).query_key);
  other = base;
  other.m = 5;
  EXPECT_NE(base_key, CanonicalizeQuery("ds", other).query_key);
  other = base;
  other.smooth_window = 7;
  EXPECT_NE(base_key, CanonicalizeQuery("ds", other).query_key);
  other = base;
  other.dedupe_redundant = false;
  EXPECT_NE(base_key, CanonicalizeQuery("ds", other).query_key);
  EXPECT_NE(base_key, CanonicalizeQuery("other_ds", base).query_key);
}

TEST(QueryKey, SeparatorCharactersInNamesCannotCollide) {
  // One attribute named "a,b" vs two attributes "a" and "b".
  TSExplainConfig a = BaseConfig();
  a.explain_by_names = {"a,b"};
  TSExplainConfig b = BaseConfig();
  b.explain_by_names = {"a", "b"};
  EXPECT_NE(CanonicalizeQuery("ds", a).query_key,
            CanonicalizeQuery("ds", b).query_key);
  // Dataset names embedding the field framing cannot forge other fields.
  EXPECT_NE(CanonicalizeQuery("x|measure=hack", BaseConfig()).query_key,
            CanonicalizeQuery("x", BaseConfig()).query_key);
}

}  // namespace
}  // namespace tsexplain
