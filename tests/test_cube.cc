// Unit tests for the explanation cube (module (a)) + canonical mask.

#include <gtest/gtest.h>

#include "src/cube/canonical_mask.h"
#include "src/cube/explanation_cube.h"
#include "src/cube/support_filter.h"
#include "src/table/group_by.h"

namespace tsexplain {
namespace {

Table MakeTable() {
  Table table(Schema("date", {"state", "age"}, {"cases"}));
  for (const char* d : {"d0", "d1", "d2", "d3"}) table.AddTimeBucket(d);
  // state x age slices with distinct trajectories.
  const double ny_young[] = {10, 20, 40, 80};
  const double ny_old[] = {5, 5, 6, 7};
  const double ca_young[] = {8, 7, 6, 5};
  const double ca_old[] = {1, 2, 3, 4};
  for (int t = 0; t < 4; ++t) {
    table.AppendRow(t, {"NY", "young"}, {ny_young[t]});
    table.AppendRow(t, {"NY", "old"}, {ny_old[t]});
    table.AppendRow(t, {"CA", "young"}, {ca_young[t]});
    table.AppendRow(t, {"CA", "old"}, {ca_old[t]});
  }
  return table;
}

TEST(Cube, SliceSeriesMatchesGroupByEngine) {
  const Table t = MakeTable();
  const auto reg = ExplanationRegistry::Build(t, {0, 1}, 2);
  const ExplanationCube cube(t, reg, AggregateFunction::kSum, 0);
  ASSERT_EQ(cube.num_explanations(), reg.num_explanations());

  // Property: for EVERY candidate cell, the cube slice equals a fresh
  // group-by with the same conjunction.
  for (ExplId e = 0; e < static_cast<ExplId>(reg.num_explanations()); ++e) {
    std::vector<DimPredicate> conj;
    for (const Predicate& p : reg.explanation(e).predicates()) {
      conj.push_back(DimPredicate{p.attr, p.value});
    }
    const TimeSeries expected =
        GroupByTime(t, AggregateFunction::kSum, 0, conj);
    const TimeSeries actual = cube.SliceSeries(e);
    ASSERT_EQ(actual.values.size(), expected.values.size());
    for (size_t i = 0; i < expected.values.size(); ++i) {
      EXPECT_DOUBLE_EQ(actual.values[i], expected.values[i])
          << reg.explanation(e).ToString(t) << " @ " << i;
    }
  }
}

TEST(Cube, OverallEqualsGroupBy) {
  const Table t = MakeTable();
  const auto reg = ExplanationRegistry::Build(t, {0}, 1);
  const ExplanationCube cube(t, reg, AggregateFunction::kSum, 0);
  const TimeSeries expected = GroupByTime(t, AggregateFunction::kSum, 0);
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_DOUBLE_EQ(cube.Overall(i), expected.values[i]);
  }
}

TEST(Cube, OrderOneSlicesPartitionOverall) {
  const Table t = MakeTable();
  const auto reg = ExplanationRegistry::Build(t, {0, 1}, 2);
  const ExplanationCube cube(t, reg, AggregateFunction::kSum, 0);
  for (size_t time = 0; time < cube.n(); ++time) {
    double state_sum = 0.0;
    for (ExplId e = 0; e < static_cast<ExplId>(reg.num_explanations());
         ++e) {
      const Explanation& cell = reg.explanation(e);
      if (cell.order() == 1 && cell.predicates()[0].attr == 0) {
        state_sum += cube.SliceValue(e, time);
      }
    }
    EXPECT_DOUBLE_EQ(state_sum, cube.Overall(time));
  }
}

TEST(Cube, ScoreMatchesManualDefinition) {
  const Table t = MakeTable();
  const auto reg = ExplanationRegistry::Build(t, {0}, 1);
  const ExplanationCube cube(t, reg, AggregateFunction::kSum, 0);
  const ValueId ny = t.dictionary(0).Lookup("NY");
  const ExplId e =
      reg.Lookup(Explanation::FromPredicates({Predicate{0, ny}}));
  ASSERT_NE(e, kInvalidExplId);

  // Segment d0 -> d3. Overall: 24 -> 96; without NY: 9 -> 9.
  const DiffScore s =
      cube.Score(DiffMetricKind::kAbsoluteChange, e, 0, 3);
  // Delta = 72; Delta without NY = 0 -> gamma = 72, tau = +1.
  EXPECT_DOUBLE_EQ(s.gamma, 72.0);
  EXPECT_EQ(s.tau, 1);
}

TEST(Cube, CountAggregateWorksWithoutMeasure) {
  const Table t = MakeTable();
  const auto reg = ExplanationRegistry::Build(t, {0}, 1);
  const ExplanationCube cube(t, reg, AggregateFunction::kCount, -1);
  EXPECT_DOUBLE_EQ(cube.Overall(0), 4.0);  // 4 rows per bucket
}

TEST(Cube, AvgAggregate) {
  const Table t = MakeTable();
  const auto reg = ExplanationRegistry::Build(t, {0}, 1);
  const ExplanationCube cube(t, reg, AggregateFunction::kAvg, 0);
  EXPECT_DOUBLE_EQ(cube.Overall(0), 6.0);  // (10+5+8+1)/4
}

TEST(Cube, SmoothInPlacePreservesDecomposability) {
  const Table t = MakeTable();
  const auto reg = ExplanationRegistry::Build(t, {0}, 1);
  ExplanationCube cube(t, reg, AggregateFunction::kSum, 0);
  cube.SmoothInPlace(2);
  // After smoothing, order-1 slices must still partition the overall.
  for (size_t time = 0; time < cube.n(); ++time) {
    double sum = 0.0;
    for (ExplId e = 0; e < static_cast<ExplId>(reg.num_explanations());
         ++e) {
      sum += cube.SliceValue(e, time);
    }
    EXPECT_NEAR(sum, cube.Overall(time), 1e-9);
  }
  // Smoothed value at t1 is the average of raw t0 and t1: (24+34)/2.
  EXPECT_NEAR(cube.Overall(1), 29.0, 1e-9);
}

TEST(Cube, AppendBucketExtendsSeries) {
  const Table t = MakeTable();
  const auto reg = ExplanationRegistry::Build(t, {0}, 1);
  ExplanationCube cube(t, reg, AggregateFunction::kSum, 0);
  const size_t n_before = cube.n();
  std::vector<AggState> slices(reg.num_explanations());
  slices[0] = AggState{100.0, 2.0};
  slices[1] = AggState{50.0, 2.0};
  cube.AppendBucket(AggState{150.0, 4.0}, slices, "d4");
  EXPECT_EQ(cube.n(), n_before + 1);
  EXPECT_DOUBLE_EQ(cube.Overall(n_before), 150.0);
  EXPECT_DOUBLE_EQ(cube.SliceValue(0, n_before), 100.0);
  EXPECT_EQ(cube.OverallSeries().LabelAt(n_before), "d4");
}

TEST(CanonicalMask, DetectsHierarchicalRedundancy) {
  // B refines A: every A value has exactly one... here b-values determine
  // a-values, so (A,B) pairs are redundant with (B) alone.
  Table table(Schema("t", {"A", "B"}, {"m"}));
  table.AddTimeBucket("0");
  table.AddTimeBucket("1");
  for (int time = 0; time < 2; ++time) {
    table.AppendRow(time, {"a1", "b1"}, {1.0 + time});
    table.AppendRow(time, {"a1", "b2"}, {2.0});
    table.AppendRow(time, {"a2", "b3"}, {3.0 - time});
  }
  const auto reg = ExplanationRegistry::Build(table, {0, 1}, 2);
  const ExplanationCube cube(table, reg, AggregateFunction::kSum, 0);
  const auto mask = ComputeCanonicalMask(cube, reg);

  // Raw cells: a1, a2, b1, b2, b3 + (a1,b1), (a1,b2), (a2,b3) = 8.
  EXPECT_EQ(reg.num_explanations(), 8u);
  // (a1,b1) == b1, (a1,b2) == b2, (a2,b3) == b3 == a2.
  // Canonical: a1, a2, b1, b2 (b3 dupes a2? both sum to the same rows...)
  size_t active = CountActive(mask);
  // a2 and b3 select identical rows, so one of them is masked too.
  EXPECT_EQ(active, 4u);

  // Representatives must be the lowest order: all order-2 cells masked.
  for (ExplId e = 0; e < static_cast<ExplId>(reg.num_explanations()); ++e) {
    if (reg.explanation(e).order() == 2) {
      EXPECT_FALSE(mask[static_cast<size_t>(e)])
          << reg.explanation(e).ToString(table);
    }
  }
}

TEST(CanonicalMask, NoFalsePositives) {
  const Table t = MakeTable();  // all slices genuinely distinct
  const auto reg = ExplanationRegistry::Build(t, {0, 1}, 2);
  const ExplanationCube cube(t, reg, AggregateFunction::kSum, 0);
  const auto mask = ComputeCanonicalMask(cube, reg);
  EXPECT_EQ(CountActive(mask), reg.num_explanations());
}

TEST(AndMasksTest, ElementwiseAnd) {
  const std::vector<bool> a{true, true, false, false};
  const std::vector<bool> b{true, false, true, false};
  EXPECT_EQ(AndMasks(a, b),
            (std::vector<bool>{true, false, false, false}));
}

}  // namespace
}  // namespace tsexplain
