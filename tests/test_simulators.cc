// Tests for the real-world dataset simulators (DESIGN.md substitutions):
// shapes, cardinalities, and the narrative structure each case study needs.

#include <gtest/gtest.h>

#include "src/cube/canonical_mask.h"
#include "src/cube/support_filter.h"
#include "src/datagen/covid_sim.h"
#include "src/datagen/deaths_sim.h"
#include "src/datagen/liquor_sim.h"
#include "src/datagen/sp500_sim.h"
#include "src/table/group_by.h"

namespace tsexplain {
namespace {

TEST(CovidSim, ShapeMatchesPaper) {
  const auto table = MakeCovidTable();
  EXPECT_EQ(table->num_time_buckets(), 345u);  // Table 6: n = 345
  EXPECT_EQ(table->dictionary(0).size(), 58u);  // 58 states
  EXPECT_EQ(table->num_rows(), 58u * 345u);
  EXPECT_EQ(table->time_labels().front(), "1-22");
  EXPECT_EQ(table->time_labels().back(), "12-31");
}

TEST(CovidSim, TotalIsCumulativeSumOfDaily) {
  const auto table = MakeCovidTable();
  // For one state, total[t] - total[t-1] == daily[t].
  const ValueId ny = table->dictionary(0).Lookup("NY");
  ASSERT_NE(ny, kInvalidValueId);
  const TimeSeries daily = GroupByTime(*table, AggregateFunction::kSum, 0,
                                       {DimPredicate{0, ny}});
  const TimeSeries total = GroupByTime(*table, AggregateFunction::kSum, 1,
                                       {DimPredicate{0, ny}});
  for (size_t t = 1; t < total.size(); ++t) {
    EXPECT_NEAR(total.values[t] - total.values[t - 1], daily.values[t],
                1e-6);
  }
}

TEST(CovidSim, NarrativeWaves) {
  const auto table = MakeCovidTable();
  auto daily_of = [&](const char* state, size_t day) {
    const ValueId v = table->dictionary(0).Lookup(state);
    const TimeSeries ts = GroupByTime(*table, AggregateFunction::kSum, 0,
                                      {DimPredicate{0, v}});
    return ts.values[day];
  };
  // NY spring wave dwarfs its summer; CA winter dwarfs its spring.
  EXPECT_GT(daily_of("NY", 73), 5.0 * daily_of("NY", 200));
  EXPECT_GT(daily_of("CA", 330), 5.0 * daily_of("CA", 100));
  // FL peaks in summer vs spring.
  EXPECT_GT(daily_of("FL", 180), 3.0 * daily_of("FL", 80));
  // WA is an early-outbreak state: visible cases by day 42.
  EXPECT_GT(daily_of("WA", 42), 100.0);
}

TEST(CovidSim, DeterministicInSeed) {
  const auto a = MakeCovidTable(7);
  const auto b = MakeCovidTable(7);
  EXPECT_EQ(a->measure_column(0), b->measure_column(0));
}

TEST(Sp500Sim, ShapeMatchesPaper) {
  const auto table = MakeSp500Table();
  EXPECT_EQ(table->num_time_buckets(), 151u);  // Table 6: n = 151
  EXPECT_EQ(table->dictionary(0).size(), 11u);   // categories
  EXPECT_EQ(table->dictionary(1).size(), 96u);   // subcategories
  EXPECT_EQ(table->dictionary(2).size(), 503u);  // stocks
}

TEST(Sp500Sim, EpsilonMatchesTable6AfterDedup) {
  const auto table = MakeSp500Table();
  const auto reg = ExplanationRegistry::Build(*table, {0, 1, 2}, 3);
  const ExplanationCube cube(*table, reg, AggregateFunction::kSum, 0);
  const auto canonical = ComputeCanonicalMask(cube, reg);
  // Paper Table 6: epsilon = 610 = 11 + 96 + 503 (hierarchy deduped).
  EXPECT_EQ(CountActive(canonical), 610u);
}

TEST(Sp500Sim, CrashAndRecoveryShape) {
  const auto table = MakeSp500Table();
  const TimeSeries index = GroupByTime(*table, AggregateFunction::kSum, 0);
  // Pre-crash (day 34) > bottom (day 57); recovery (day 117) > bottom.
  EXPECT_GT(index.values[34], index.values[57] * 1.2);
  EXPECT_GT(index.values[117], index.values[57] * 1.2);
  // September pullback: the end sits below the late-August high.
  EXPECT_LT(index.values[150], index.values[117]);
}

TEST(Sp500Sim, FinancialsDoNotRecover) {
  const auto table = MakeSp500Table();
  const ValueId tech = table->dictionary(0).Lookup("technology");
  const ValueId fin = table->dictionary(0).Lookup("financial");
  const TimeSeries tech_ts = GroupByTime(
      *table, AggregateFunction::kSum, 0, {DimPredicate{0, tech}});
  const TimeSeries fin_ts = GroupByTime(
      *table, AggregateFunction::kSum, 0, {DimPredicate{0, fin}});
  const double tech_recovery = tech_ts.values[117] / tech_ts.values[57];
  const double fin_recovery = fin_ts.values[117] / fin_ts.values[57];
  EXPECT_GT(tech_recovery, 1.3);       // tech bounces back strongly
  EXPECT_LT(fin_recovery, 1.15);       // financials stay flat (Table 4)
}

TEST(LiquorSim, ShapeInPaperBallpark) {
  const auto table = MakeLiquorTable();
  EXPECT_EQ(table->num_time_buckets(), 128u);  // Table 6: n = 128
  EXPECT_EQ(table->schema().num_dimensions(), 4u);
  const auto reg = ExplanationRegistry::Build(*table, {0, 1, 2, 3}, 3);
  // Paper: epsilon = 8197. Same order of magnitude required.
  EXPECT_GT(reg.num_explanations(), 3000u);
  EXPECT_LT(reg.num_explanations(), 20000u);

  const ExplanationCube cube(*table, reg, AggregateFunction::kSum, 0);
  const auto active = ComputeSupportFilter(cube);
  // Paper: 1812 after filtering; require a substantial reduction.
  EXPECT_LT(CountActive(active), reg.num_explanations() / 2);
  EXPECT_GT(CountActive(active), 100u);
}

TEST(LiquorSim, ClosureCrashAndRecoveryOfBv1000) {
  const auto table = MakeLiquorTable();
  const ValueId bv1000 = table->dictionary(0).Lookup("1000");
  ASSERT_NE(bv1000, kInvalidValueId);
  const TimeSeries ts = GroupByTime(*table, AggregateFunction::kSum, 0,
                                    {DimPredicate{0, bv1000}});
  // Crash: 3/6 (day ~45) -> 3/31 (day ~62) drops hard.
  EXPECT_LT(ts.values[62], ts.values[45] * 0.5);
  // Recovery: by 6/10 (day ~112) well above the trough.
  EXPECT_GT(ts.values[112], ts.values[62] * 1.5);
}

TEST(LiquorSim, LargePacksGrowEarlyInPandemic) {
  const auto table = MakeLiquorTable();
  const ValueId p12 = table->dictionary(1).Lookup("12");
  ASSERT_NE(p12, kInvalidValueId);
  const TimeSeries ts = GroupByTime(*table, AggregateFunction::kSum, 0,
                                    {DimPredicate{1, p12}});
  // 1/20 (day ~12) -> 3/6 (day ~45): growth.
  EXPECT_GT(ts.values[45], ts.values[12] * 1.2);
}

TEST(DeathsSim, ShapeAndLabels) {
  const auto table = MakeDeathsTable();
  EXPECT_EQ(table->num_time_buckets(), 39u);  // weeks 14..52
  EXPECT_EQ(table->time_labels().front(), "14");
  EXPECT_EQ(table->time_labels().back(), "52");
  EXPECT_EQ(table->dictionary(0).size(), 2u);  // vaccinated YES/NO
  EXPECT_EQ(table->dictionary(1).size(), 3u);  // age groups
}

TEST(DeathsSim, NarrativeHandoff) {
  const auto table = MakeDeathsTable();
  const ValueId no = table->dictionary(0).Lookup("NO");
  const ValueId old_age = table->dictionary(1).Lookup("50+");
  const TimeSeries unvax = GroupByTime(*table, AggregateFunction::kSum, 0,
                                       {DimPredicate{0, no}});
  const TimeSeries elders = GroupByTime(
      *table, AggregateFunction::kSum, 0, {DimPredicate{1, old_age}});
  const TimeSeries total = GroupByTime(*table, AggregateFunction::kSum, 0);
  // Early (week 18 = index 4): unvaccinated dominate the total.
  EXPECT_GT(unvax.values[4], 0.6 * total.values[4]);
  // Late (week 50 = index 36): elders dominate.
  EXPECT_GT(elders.values[36], 0.6 * total.values[36]);
}

}  // namespace
}  // namespace tsexplain
