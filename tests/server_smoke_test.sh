#!/usr/bin/env bash
# ctest-driven end-to-end smoke test for tsexplain_serve in pipe mode
# (registered as `server_smoke`).
#
# Contract under test (see docs/SERVICE.md):
#   - register (inline CSV + csv_path) -> ok with row/bucket counts
#   - list_datasets                    -> contains the registered names
#   - explain                          -> ok, result object, cache_hit
#                                         false cold / true hot
#   - concurrent identical explains    -> all ok, exactly one computation
#                                         (stats misses stay at 1)
#   - open_session/append/explain_session -> session grows, re-explains
#   - error paths: parse_error, unknown_op, not_found, bad_request —
#     all as responses, never as a crash
#   - shutdown op ends the server with exit 0
#   - metrics op scraped before/after the query burst: counters are
#     monotonic, the burst is visible, histogram buckets sum to their
#     count, and the Prometheus rendering carries the same series
#   - a trace-enabled explain returns spans partitioning the root's time
#   - TCP mode (with the overload flags set): a request dribbled
#     byte-by-byte across many tiny writes still parses (recv-boundary
#     handling), a multi-MB garbage line draws ONE structured error and
#     leaves the connection usable, and stats exposes admission counters
#   - warm restart: a server run with --cache-save/--session-log-dir is
#     stopped and a NEW process started with --cache-load — the first
#     post-restart query must be a cache hit (byte-identical result), and
#     recover_session must replay the dead process's streaming session
#
# Usage: server_smoke_test.sh /path/to/tsexplain_serve
set -u

SERVE=${1:?usage: server_smoke_test.sh /path/to/tsexplain_serve}
TMPDIR_SMOKE=$(mktemp -d)
trap 'rm -rf "$TMPDIR_SMOKE"' EXIT

failures=0
fail() {
  echo "FAIL [$1]: $2" >&2
  failures=$((failures + 1))
}

# A line-per-response lookup: response_for ID FILE -> the line echoing id.
response_for() {
  grep -F "\"id\":$1," "$2"
}

# --- Input fixtures --------------------------------------------------------
CSV="$TMPDIR_SMOKE/sales.csv"
{
  echo "date,region,sales"
  for t in 0 1 2 3 4 5 6 7 8 9; do
    echo "$t,east,$((10 + t))"
    echo "$t,west,$((20 - t))"
  done
} >"$CSV"

REQ="$TMPDIR_SMOKE/requests.ndjson"
EXPLAIN_FIELDS='"dataset":"sales","measure":"sales","explain_by":["region"],"k":2'
{
  echo "{\"op\":\"register\",\"id\":1,\"name\":\"sales\",\"csv_path\":\"$CSV\",\"time_column\":\"date\",\"measures\":[\"sales\"]}"
  echo '{"op":"list_datasets","id":2}'
  # Metrics scrape BEFORE the query burst (compared against id 42 below:
  # counters must be monotonic and must have moved by the burst).
  echo '{"op":"metrics","id":40}'
  echo "{\"op\":\"explain\",\"id\":3,$EXPLAIN_FIELDS}"
  # Identical concurrent explains: single-flight must collapse them.
  for id in 4 5 6 7; do
    echo "{\"op\":\"explain\",\"id\":$id,$EXPLAIN_FIELDS}"
  done
  # Trace-enabled hot query: must carry non-empty spans that partition
  # the root's wall clock.
  echo "{\"op\":\"explain\",\"id\":41,$EXPLAIN_FIELDS,\"trace\":true}"
  # Metrics scrape AFTER the burst, in both export formats.
  echo '{"op":"metrics","id":42}'
  echo '{"op":"metrics","id":43,"format":"prometheus"}'
  echo '{"op":"open_session","id":8,"dataset":"sales","measure":"sales","explain_by":["region"],"k":2}'
  echo '{"op":"append","id":9,"session":1,"label":"zz","rows":[{"dims":["east"],"measures":[30]},{"dims":["west"],"measures":[11]}]}'
  echo '{"op":"explain_session","id":10,"session":1}'
  echo '{"op":"recommend","id":11,"dataset":"sales","measure":"sales"}'
  echo '{"op":"explain","id":12,"dataset":"ghost"}'
  echo '{"op":"bogus","id":13}'
  echo 'this is not json'
  echo '{"op":"append","id":14,"session":1,"label":"bad","rows":[{"dims":["east","oops"],"measures":[1]}]}'
  echo '{"op":"stats","id":15}'
  echo '{"op":"shutdown","id":16}'
} >"$REQ"

OUT="$TMPDIR_SMOKE/responses.ndjson"
if ! "$SERVE" <"$REQ" >"$OUT" 2>"$TMPDIR_SMOKE/serve.err"; then
  fail server_exit "server exited non-zero"
  cat "$TMPDIR_SMOKE/serve.err" >&2
fi

# Every request (20 ids + 1 parse error) got exactly one response line.
lines=$(wc -l <"$OUT")
[ "$lines" -eq 21 ] || fail response_count "expected 21 responses, got $lines"

response_for 1 "$OUT" | grep -q '"ok":true' || fail register "$(response_for 1 "$OUT")"
response_for 1 "$OUT" | grep -q '"time_buckets":10' || fail register_shape "$(response_for 1 "$OUT")"
response_for 2 "$OUT" | grep -q '"name":"sales"' || fail list "$(response_for 2 "$OUT")"
response_for 3 "$OUT" | grep -q '"ok":true' || fail explain "$(response_for 3 "$OUT")"
response_for 3 "$OUT" | grep -q '"result":{' || fail explain_result "$(response_for 3 "$OUT")"
response_for 3 "$OUT" | grep -q '"k":2' || fail explain_k "$(response_for 3 "$OUT")"

# ids 3..7 are identical: all must succeed; the LAST finisher must have
# been served without computing (either a plain hit or coalesced).
for id in 4 5 6 7; do
  response_for $id "$OUT" | grep -q '"ok":true' || fail "explain_$id" "$(response_for $id "$OUT")"
done

response_for 8 "$OUT" | grep -q '"session":1' || fail open_session "$(response_for 8 "$OUT")"
response_for 9 "$OUT" | grep -q '"n":11' || fail append "$(response_for 9 "$OUT")"
response_for 10 "$OUT" | grep -q '"ok":true' || fail explain_session "$(response_for 10 "$OUT")"
response_for 10 "$OUT" | grep -q '"n":11' || fail session_grew "$(response_for 10 "$OUT")"
response_for 11 "$OUT" | grep -q '"dimension":"region"' || fail recommend "$(response_for 11 "$OUT")"
response_for 12 "$OUT" | grep -q '"code":"not_found"' || fail not_found "$(response_for 12 "$OUT")"
response_for 13 "$OUT" | grep -q '"code":"unknown_op"' || fail unknown_op "$(response_for 13 "$OUT")"
grep -q '"code":"parse_error"' "$OUT" || fail parse_error "no parse_error response"
response_for 14 "$OUT" | grep -q '"code":"bad_request"' || fail bad_append "$(response_for 14 "$OUT")"

# Single-flight proof: 5 identical explains, exactly 1 dataset-query miss
# (+1 for the session explain), the rest hits/coalesced.
STATS=$(response_for 15 "$OUT")
echo "$STATS" | grep -q '"misses":2' || fail single_flight "$STATS"
echo "$STATS" | grep -q '"datasets":1' || fail stats_datasets "$STATS"
echo "$STATS" | grep -q '"open_sessions":1' || fail stats_sessions "$STATS"
response_for 16 "$OUT" | grep -q '"op":"shutdown"' || fail shutdown "$(response_for 16 "$OUT")"

# --- Observability: metrics op + per-query trace spans ---------------------
# The before/after scrapes bracket the explain burst: every counter must
# be monotonic, the burst must be visible (cache hits moved, admissions
# recorded, the hot-latency histogram filled), histogram bucket totals
# must equal their count, the Prometheus rendering must carry the same
# counters, and the traced query's child spans must partition the root
# span's wall clock.
python3 - "$OUT" <<'PYEOF' || fail observability "metrics/trace assertions failed (see above)"
import json, sys

by_id = {}
for line in open(sys.argv[1]):
    obj = json.loads(line)
    if isinstance(obj.get("id"), int):
        by_id[obj["id"]] = obj

before = by_id[40]["metrics"]
after = by_id[42]["metrics"]
for name, value in before["counters"].items():
    assert after["counters"][name] >= value, f"counter {name} went backwards"
# Metrics register lazily at first use, so the before scrape may predate
# the cache counters entirely — treat absent as zero.
assert after["counters"]["cache.hits"] > before["counters"].get("cache.hits", 0), \
    "query burst did not move cache.hits"
assert after["counters"]["cache.misses"] >= 1
assert after["counters"]["admission.admitted"] >= 1
hot = after["histograms"]["query.hot_ms"]
assert hot["count"] >= 1, "hot-hit latency histogram is empty"
for name, hist in after["histograms"].items():
    assert sum(b["count"] for b in hist["buckets"]) == hist["count"], \
        f"histogram {name} buckets do not sum to its count"

prom = by_id[43]
assert prom["format"] == "prometheus"
assert "# TYPE tsexplain_cache_hits counter" in prom["text"]
assert "tsexplain_query_hot_ms_bucket{le=" in prom["text"]

traced = by_id[41]
spans = traced["trace"]
assert len(spans) >= 2, f"expected non-empty trace, got {spans}"
root = spans[0]
assert root["name"] == "query" and root["parent"] == -1
assert abs(root["duration_ms"] - traced["latency_ms"]) < 1e-6
child_sum = sum(s["duration_ms"] for s in spans if s["parent"] == 0)
assert abs(child_sum - root["duration_ms"]) < 1e-6, \
    f"child spans sum {child_sum} != root {root['duration_ms']}"
PYEOF

# --- TCP mode: dribbled bytes, oversized lines, overload flags ------------
# The TCP read loop must reassemble lines split across arbitrary recv()
# boundaries, survive a multi-MB garbage line with a structured error
# (connection stays alive), and accept the new overload-control flags.
TCP_PORT=$(( (RANDOM % 20000) + 20000 ))
"$SERVE" --port "$TCP_PORT" --max-inflight 2 --queue-depth 2 \
         --tenant-cache-budget 8 --tenant-inflight 4 \
         2>"$TMPDIR_SMOKE/tcp.err" &
SERVE_PID=$!

tcp_up=0
for _ in $(seq 1 100); do
  if (exec 3<>"/dev/tcp/127.0.0.1/$TCP_PORT") 2>/dev/null; then
    tcp_up=1
    break
  fi
  sleep 0.1
done
if [ "$tcp_up" -ne 1 ]; then
  fail tcp_listen "server did not start listening on 127.0.0.1:$TCP_PORT"
  cat "$TMPDIR_SMOKE/tcp.err" >&2
else
  exec 3<>"/dev/tcp/127.0.0.1/$TCP_PORT"

  # Register normally, then dribble an explain request ONE BYTE PER
  # write: the server sees ~90 recv() calls for one NDJSON line.
  printf '%s\n' "{\"op\":\"register\",\"id\":100,\"name\":\"tcp\",\"csv_path\":\"$CSV\",\"time_column\":\"date\",\"measures\":[\"sales\"]}" >&3
  read -r -t 30 RESP <&3
  echo "$RESP" | grep -q '"ok":true' || fail tcp_register "$RESP"

  DRIBBLE='{"op":"explain","id":101,"dataset":"tcp","measure":"sales","explain_by":["region"],"k":2,"tenant":"acme"}'
  for ((i = 0; i < ${#DRIBBLE}; i++)); do
    printf '%s' "${DRIBBLE:i:1}" >&3
  done
  printf '\n' >&3
  read -r -t 30 RESP <&3
  echo "$RESP" | grep -q '"id":101,"ok":true' || fail tcp_dribble "$RESP"
  echo "$RESP" | grep -q '"result":{' || fail tcp_dribble_result "$RESP"

  # A 6 MiB garbage line (no newline until the end): one structured
  # error, stream stays in sync, connection stays alive. The flood then
  # CONTINUES past the error for another 2 MiB before the newline — the
  # server must drop those bytes without buffering them (and without a
  # second error).
  head -c $((6 * 1024 * 1024)) /dev/zero | tr '\0' 'x' >&3
  read -r -t 30 RESP <&3
  echo "$RESP" | grep -q '"code":"parse_error"' || fail tcp_giant_line "$RESP"
  echo "$RESP" | grep -q 'exceeds' || fail tcp_giant_message "$RESP"
  head -c $((2 * 1024 * 1024)) /dev/zero | tr '\0' 'y' >&3
  printf '\n' >&3

  printf '%s\n' '{"op":"explain","id":102,"dataset":"tcp","measure":"sales","explain_by":["region"],"k":2,"tenant":"acme"}' >&3
  read -r -t 30 RESP <&3
  echo "$RESP" | grep -q '"id":102,"ok":true' || fail tcp_alive_after_garbage "$RESP"
  echo "$RESP" | grep -q '"cache_hit":true' || fail tcp_cache_after_garbage "$RESP"

  # Stats exposes the admission/tenant counters; shutdown stops the
  # server cleanly.
  printf '%s\n' '{"op":"stats","id":103}' >&3
  read -r -t 30 RESP <&3
  echo "$RESP" | grep -q '"admission":{' || fail tcp_stats_admission "$RESP"
  echo "$RESP" | grep -q '"tenants":1' || fail tcp_stats_tenants "$RESP"
  printf '%s\n' '{"op":"shutdown","id":104}' >&3
  read -r -t 30 RESP <&3
  echo "$RESP" | grep -q '"op":"shutdown"' || fail tcp_shutdown "$RESP"
  exec 3>&- 3<&-
fi

if wait "$SERVE_PID"; then
  :
else
  fail tcp_exit "TCP server exited non-zero"
  cat "$TMPDIR_SMOKE/tcp.err" >&2
fi

# --- Warm restart: --cache-save / --cache-load + session recovery ---------
# Run 1 computes a query (cold), opens a streaming session, appends, and
# shuts down with --cache-save; run 2 is a fresh process (the old one is
# gone — that is the restart) with --cache-load: its FIRST query must be a
# warm hit, and recover_session must rebuild the dead process's session
# from its append log.
CACHE_SNAP="$TMPDIR_SMOKE/cache.tsxcch"
SESSION_DIR="$TMPDIR_SMOKE/sessions"
mkdir -p "$SESSION_DIR"

WARM1="$TMPDIR_SMOKE/warm1.ndjson"
{
  echo "{\"op\":\"explain\",\"id\":20,$EXPLAIN_FIELDS}"
  echo '{"op":"open_session","id":21,"dataset":"sales","measure":"sales","explain_by":["region"],"k":2}'
  echo '{"op":"append","id":22,"session":1,"label":"zz","rows":[{"dims":["east"],"measures":[30]},{"dims":["west"],"measures":[11]}]}'
  echo '{"op":"shutdown","id":23}'
} >"$WARM1"
OUT1="$TMPDIR_SMOKE/warm1.out"
if ! "$SERVE" --preload sales="$CSV" --time date --measure sales \
     --cache-save "$CACHE_SNAP" --session-log-dir "$SESSION_DIR" \
     <"$WARM1" >"$OUT1" 2>"$TMPDIR_SMOKE/warm1.err"; then
  fail warm1_exit "first warm-start server run exited non-zero"
  cat "$TMPDIR_SMOKE/warm1.err" >&2
fi
response_for 20 "$OUT1" | grep -q '"cache_hit":false' || fail warm1_cold "$(response_for 20 "$OUT1")"
response_for 22 "$OUT1" | grep -q '"n":11' || fail warm1_append "$(response_for 22 "$OUT1")"
[ -s "$CACHE_SNAP" ] || fail cache_snapshot_written "no cache snapshot at $CACHE_SNAP"
# The open_session response names the (pid-scoped) crash-recovery log.
SESSION_LOG=$(response_for 21 "$OUT1" | sed 's/.*"log":"\([^"]*\)".*/\1/')
[ -s "$SESSION_LOG" ] || fail session_log_written "no session log at '$SESSION_LOG'"

WARM2="$TMPDIR_SMOKE/warm2.ndjson"
{
  echo "{\"op\":\"explain\",\"id\":30,$EXPLAIN_FIELDS}"
  echo "{\"op\":\"recover_session\",\"id\":31,\"path\":\"$SESSION_LOG\"}"
  echo '{"op":"explain_session","id":32,"session":1}'
  echo '{"op":"stats","id":33}'
  echo '{"op":"shutdown","id":34}'
} >"$WARM2"
OUT2="$TMPDIR_SMOKE/warm2.out"
if ! "$SERVE" --preload sales="$CSV" --time date --measure sales \
     --cache-load "$CACHE_SNAP" --session-log-dir "$SESSION_DIR" \
     <"$WARM2" >"$OUT2" 2>"$TMPDIR_SMOKE/warm2.err"; then
  fail warm2_exit "restarted server exited non-zero"
  cat "$TMPDIR_SMOKE/warm2.err" >&2
fi
grep -q "warm start: 1 entries restored" "$TMPDIR_SMOKE/warm2.err" \
  || fail warm2_banner "$(cat "$TMPDIR_SMOKE/warm2.err")"
# The first post-restart query is a HIT, and its result payload is the
# byte-identical JSON the pre-restart process rendered.
response_for 30 "$OUT2" | grep -q '"cache_hit":true' || fail warm2_hit "$(response_for 30 "$OUT2")"
payload() { sed 's/.*"result"://; s/}$//' ; }
[ "$(response_for 30 "$OUT2" | payload)" = "$(response_for 20 "$OUT1" | payload)" ] \
  || fail warm2_identical "restart changed the cached payload"
response_for 31 "$OUT2" | grep -q '"ok":true' || fail recover "$(response_for 31 "$OUT2")"
response_for 31 "$OUT2" | grep -q '"n":11' || fail recover_n "$(response_for 31 "$OUT2")"
response_for 31 "$OUT2" | grep -q '"torn":false' || fail recover_torn "$(response_for 31 "$OUT2")"
response_for 32 "$OUT2" | grep -q '"ok":true' || fail recovered_explain "$(response_for 32 "$OUT2")"
response_for 33 "$OUT2" | grep -q '"tenant_bytes":{' || fail stats_tenant_bytes "$(response_for 33 "$OUT2")"

if [ "$failures" -ne 0 ]; then
  echo "--- responses ---" >&2
  cat "$OUT" >&2
  echo "server_smoke: $failures check(s) failed" >&2
  exit 1
fi
echo "server_smoke: all checks passed"
