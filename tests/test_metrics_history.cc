// Coverage for the metrics time-series history
// (src/common/metrics_history.h): ring-buffer wraparound, sampler
// start/stop/restart, late metric discovery, concurrent writers during
// sampling, rendering, and the dogfood path — the recorded history
// exported as a dataset and explained by the engine itself, with the
// deliberately perturbed counter showing up as a contributor.
//
// Every test uses an isolated MetricRegistry so nothing here perturbs
// the process-global registry other tests snapshot.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "src/common/json.h"
#include "src/common/metrics.h"
#include "src/common/metrics_history.h"
#include "src/service/explain_service.h"
#include "src/table/table.h"

namespace tsexplain {
namespace {

MetricsHistory::Options SmallOptions(size_t capacity,
                                     int64_t interval_ms = 1000) {
  MetricsHistory::Options options;
  options.capacity = capacity;
  options.interval_ms = interval_ms;
  return options;
}

const HistoryWindow::Series* FindSeries(const HistoryWindow& window,
                                        const std::string& name) {
  for (const HistoryWindow::Series& series : window.series) {
    if (series.name == name) return &series;
  }
  return nullptr;
}

TEST(MetricsHistoryTest, ManualTicksRecordCounterProgress) {
  MetricRegistry registry;
  Counter& events = registry.GetCounter("t.events");
  MetricsHistory history(registry, SmallOptions(8));
  for (int i = 0; i < 4; ++i) {
    events.Inc(3);
    history.SampleNow();
  }
  const HistoryWindow window = history.Window();
  EXPECT_EQ(window.total_ticks, 4u);
  ASSERT_EQ(window.ticks.size(), 4u);
  EXPECT_EQ(window.ticks.front(), 0u);
  const HistoryWindow::Series* series = FindSeries(window, "t.events");
  ASSERT_NE(series, nullptr);
  EXPECT_EQ(series->kind, "counter");
  EXPECT_EQ(series->values,
            (std::vector<double>{3.0, 6.0, 9.0, 12.0}));
}

TEST(MetricsHistoryTest, RingWrapsKeepingNewestTicks) {
  MetricRegistry registry;
  Gauge& level = registry.GetGauge("t.level");
  MetricsHistory history(registry, SmallOptions(4));
  for (int i = 0; i < 7; ++i) {
    level.Set(i * 10);
    history.SampleNow();
  }
  const HistoryWindow window = history.Window();
  EXPECT_EQ(window.total_ticks, 7u);
  // Only the newest `capacity` ticks survive, absolute ids intact.
  ASSERT_EQ(window.ticks.size(), 4u);
  EXPECT_EQ(window.ticks, (std::vector<uint64_t>{3, 4, 5, 6}));
  const HistoryWindow::Series* series = FindSeries(window, "t.level");
  ASSERT_NE(series, nullptr);
  EXPECT_EQ(series->values,
            (std::vector<double>{30.0, 40.0, 50.0, 60.0}));
}

TEST(MetricsHistoryTest, WindowLastNAndPrefixFilter) {
  MetricRegistry registry;
  registry.GetCounter("alpha.hits");
  registry.GetCounter("beta.hits");
  MetricsHistory history(registry, SmallOptions(8));
  for (int i = 0; i < 5; ++i) history.SampleNow();

  const HistoryWindow tail = history.Window(/*last_n=*/2);
  EXPECT_EQ(tail.total_ticks, 5u);
  EXPECT_EQ(tail.ticks, (std::vector<uint64_t>{3, 4}));

  const HistoryWindow filtered = history.Window(0, "alpha.");
  ASSERT_EQ(filtered.series.size(), 1u);
  EXPECT_EQ(filtered.series[0].name, "alpha.hits");
}

TEST(MetricsHistoryTest, LateRegisteredMetricIsDiscoveredAndBackfilled) {
  MetricRegistry registry;
  registry.GetCounter("t.early");
  MetricsHistory history(registry, SmallOptions(8));
  history.SampleNow();
  history.SampleNow();
  // Registered after two ticks: must appear on the next tick with its
  // earlier slots backfilled as 0.0 (the metric did not exist yet).
  Counter& late = registry.GetCounter("t.late");
  late.Inc(7);
  history.SampleNow();
  const HistoryWindow window = history.Window();
  const HistoryWindow::Series* series = FindSeries(window, "t.late");
  ASSERT_NE(series, nullptr);
  EXPECT_EQ(series->values, (std::vector<double>{0.0, 0.0, 7.0}));
}

TEST(MetricsHistoryTest, HistogramSeriesAndTrackedPercentiles) {
  MetricRegistry registry;
  Histogram& ms = registry.GetHistogram("t.ms", {1.0, 10.0, 100.0});
  MetricsHistory history(registry, SmallOptions(8));
  history.TrackHistogramPercentiles("t.ms");
  ms.Observe(0.5);
  ms.Observe(5.0);
  ms.Observe(50.0);
  history.SampleNow();
  const HistoryWindow window = history.Window();
  const HistoryWindow::Series* count = FindSeries(window, "t.ms.count");
  const HistoryWindow::Series* sum = FindSeries(window, "t.ms.sum");
  const HistoryWindow::Series* p50 = FindSeries(window, "t.ms.p50");
  const HistoryWindow::Series* p99 = FindSeries(window, "t.ms.p99");
  ASSERT_NE(count, nullptr);
  ASSERT_NE(sum, nullptr);
  ASSERT_NE(p50, nullptr);
  ASSERT_NE(p99, nullptr);
  EXPECT_EQ(count->kind, "hist_count");
  EXPECT_EQ(count->values, std::vector<double>{3.0});
  EXPECT_NEAR(sum->values[0], 55.5, 1e-9);
  // The p50 estimate must land in the middle bucket (1, 10].
  EXPECT_GT(p50->values[0], 1.0);
  EXPECT_LE(p50->values[0], 10.0);
  EXPECT_LE(p99->values[0], 100.0);
}

TEST(MetricsHistoryTest, UntrackedHistogramGetsNoPercentileSeries) {
  MetricRegistry registry;
  registry.GetHistogram("t.quiet_ms", {1.0, 10.0});
  MetricsHistory history(registry, SmallOptions(4));
  history.SampleNow();
  const HistoryWindow window = history.Window();
  EXPECT_NE(FindSeries(window, "t.quiet_ms.count"), nullptr);
  EXPECT_EQ(FindSeries(window, "t.quiet_ms.p50"), nullptr);
  EXPECT_EQ(FindSeries(window, "t.quiet_ms.p99"), nullptr);
}

TEST(MetricsHistoryTest, SamplerStartStopRestart) {
  MetricRegistry registry;
  registry.GetCounter("t.bg");
  MetricsHistory history(registry, SmallOptions(64, /*interval_ms=*/5));
  EXPECT_FALSE(history.running());
  history.Start();
  EXPECT_TRUE(history.running());
  // Wait (bounded) for the sampler to take at least two ticks.
  for (int i = 0; i < 400 && history.Window().total_ticks < 2; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  history.Stop();
  EXPECT_FALSE(history.running());
  const uint64_t at_stop = history.Window().total_ticks;
  EXPECT_GE(at_stop, 2u);
  // Stopped means stopped: no tick may land after Stop() returns.
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_EQ(history.Window().total_ticks, at_stop);
  // Restart picks up where it left off (same rings, advancing ticks).
  history.Start();
  for (int i = 0;
       i < 400 && history.Window().total_ticks < at_stop + 2; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  history.Stop();
  EXPECT_GE(history.Window().total_ticks, at_stop + 2);
}

TEST(MetricsHistoryTest, PrologueRunsBeforeEveryTick) {
  MetricRegistry registry;
  Gauge& computed = registry.GetGauge("t.computed");
  MetricsHistory history(registry, SmallOptions(8));
  std::atomic<int> calls{0};
  history.SetSamplePrologue([&] {
    computed.Set(++calls * 100);
  });
  history.SampleNow();
  history.SampleNow();
  const HistoryWindow window = history.Window();
  const HistoryWindow::Series* series = FindSeries(window, "t.computed");
  ASSERT_NE(series, nullptr);
  // Each tick saw the gauge value its own prologue run had just set.
  EXPECT_EQ(series->values, (std::vector<double>{100.0, 200.0}));
}

TEST(MetricsHistoryTest, ConcurrentWritersDuringSampling) {
  MetricRegistry registry;
  Counter& hits = registry.GetCounter("t.hits");
  Gauge& depth = registry.GetGauge("t.depth");
  Histogram& lat = registry.GetHistogram("t.lat_ms", {1.0, 10.0, 100.0});
  MetricsHistory history(registry, SmallOptions(32));
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int w = 0; w < 4; ++w) {
    writers.emplace_back([&, w] {
      int i = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        hits.Inc();
        depth.Set(w * 1000 + i);
        lat.Observe(static_cast<double>(i % 128));
        ++i;
      }
    });
  }
  for (int tick = 0; tick < 200; ++tick) {
    history.SampleNow();
    (void)history.Window(/*last_n=*/8);
  }
  stop.store(true);
  for (std::thread& t : writers) t.join();
  const HistoryWindow window = history.Window();
  EXPECT_EQ(window.total_ticks, 200u);
  // Counter samples must be non-decreasing tick to tick: a snapshot can
  // be mid-update but never go backwards.
  const HistoryWindow::Series* series = FindSeries(window, "t.hits");
  ASSERT_NE(series, nullptr);
  for (size_t k = 1; k < series->values.size(); ++k) {
    EXPECT_LE(series->values[k - 1], series->values[k]);
  }
}

TEST(MetricsHistoryTest, RenderJsonParsesAndCarriesSeries) {
  MetricRegistry registry;
  registry.GetCounter("t.a").Inc(5);
  registry.GetGauge("t.b").Set(-2);
  MetricsHistory history(registry, SmallOptions(8));
  history.SampleNow();
  history.SampleNow();
  const std::string text = RenderHistoryJson(history.Window());
  JsonValue parsed;
  std::string error;
  ASSERT_TRUE(ParseJson(text, &parsed, &error)) << error;
  EXPECT_EQ(parsed.GetInt("total_ticks"), 2);
  const JsonValue* series = parsed.Find("series");
  ASSERT_NE(series, nullptr);
  const JsonValue* a = series->Find("t.a");
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a->GetString("kind"), "counter");
  ASSERT_EQ(a->Find("values")->array().size(), 2u);
  EXPECT_EQ(a->Find("values")->array()[1].AsDouble(), 5.0);
}

TEST(MetricsHistoryTest, RenderCsvIsLongFormat) {
  MetricRegistry registry;
  registry.GetCounter("t.one").Inc();
  MetricsHistory history(registry, SmallOptions(4));
  history.SampleNow();
  const std::string csv = RenderHistoryCsv(history.Window());
  EXPECT_EQ(csv.rfind("tick,ts_ms,metric,kind,value\n", 0), 0u);
  EXPECT_NE(csv.find(",t.one,counter,1\n"), std::string::npos);
}

TEST(MetricsHistoryTest, ExportNeedsTwoTicks) {
  MetricRegistry registry;
  registry.GetCounter("t.x");
  MetricsHistory history(registry, SmallOptions(4));
  EXPECT_EQ(history.ExportAsTable(), nullptr);
  history.SampleNow();
  EXPECT_EQ(history.ExportAsTable(), nullptr);
  history.SampleNow();
  EXPECT_NE(history.ExportAsTable(), nullptr);
}

TEST(MetricsHistoryTest, ExportedTableShape) {
  MetricRegistry registry;
  registry.GetCounter("t.a").Inc();
  registry.GetGauge("t.b").Set(4);
  MetricsHistory history(registry, SmallOptions(8));
  for (int i = 0; i < 3; ++i) history.SampleNow();
  const std::shared_ptr<const Table> table = history.ExportAsTable();
  ASSERT_NE(table, nullptr);
  // One row per (tick, series); time = tick id, one dimension
  // (metric_name), one measure (value).
  EXPECT_EQ(table->schema().time_name(), "tick");
  EXPECT_EQ(table->num_rows(), 6u);
  EXPECT_EQ(table->num_time_buckets(), 3u);
}

// The dogfood: perturb one counter hard, export the history, register
// it as a dataset, and let the engine explain the "value" series by
// metric_name — the perturbed counter must be named as a contributor.
TEST(MetricsHistoryTest, ExportedHistoryExplainedByEngine) {
  MetricRegistry registry;
  Counter& quiet = registry.GetCounter("calm.background");
  Counter& spike = registry.GetCounter("hot.spiking");
  MetricsHistory history(registry, SmallOptions(32));
  for (int tick = 0; tick < 12; ++tick) {
    quiet.Inc(1);
    // Regime shift halfway: the spiking counter's increments jump by
    // two orders of magnitude, so it dominates the change in total
    // "value" and must surface as the top contributor.
    spike.Inc(tick < 6 ? 2 : 500);
    history.SampleNow();
  }
  const std::shared_ptr<const Table> table = history.ExportAsTable();
  ASSERT_NE(table, nullptr);

  ExplainService service;
  std::string error;
  ASSERT_TRUE(service.registry().RegisterTable("telemetry", table,
                                               "<metrics_history>",
                                               &error))
      << error;
  ExplainRequest request;
  request.dataset = "telemetry";
  request.config.measure = "value";
  request.config.explain_by_names = {"metric_name"};
  request.config.max_order = 1;
  const ExplainResponse response = service.Explain(request);
  ASSERT_TRUE(response.ok) << response.error;
  EXPECT_NE(response.json.find("hot.spiking"), std::string::npos)
      << "perturbed counter missing from contributors: " << response.json;
}

}  // namespace
}  // namespace tsexplain
