// Unit coverage for per-query trace spans (src/service/trace.h): the
// Finalize partition invariant — children tile their parent exactly,
// gaps surface as synthetic "other" spans, overshoot scales down — plus
// the Begin/End/AddSpan bookkeeping the service relies on.

#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

#include "src/service/trace.h"

namespace tsexplain {
namespace {

// Sum of the direct children of `parent`, or -1 when it has none.
double ChildSum(const std::vector<TraceSpan>& spans, int parent) {
  double sum = 0.0;
  bool any = false;
  for (const TraceSpan& span : spans) {
    if (span.parent == parent) {
      sum += span.duration_ms;
      any = true;
    }
  }
  return any ? sum : -1.0;
}

TEST(QueryTraceTest, RootSpanAndBasicBookkeeping) {
  QueryTrace trace;
  ASSERT_EQ(trace.spans().size(), 1u);
  EXPECT_EQ(trace.spans()[0].name, "query");
  EXPECT_EQ(trace.spans()[0].parent, -1);

  const int child = trace.BeginSpan("cache_lookup");
  EXPECT_EQ(child, 1);
  trace.EndSpan(child);
  EXPECT_EQ(trace.spans()[1].parent, 0);
  EXPECT_GE(trace.spans()[1].duration_ms, 0.0);

  const int grafted = trace.AddSpan("engine_run", 1.0, 2.5, child);
  EXPECT_EQ(trace.spans()[static_cast<size_t>(grafted)].parent, child);
  EXPECT_DOUBLE_EQ(trace.spans()[static_cast<size_t>(grafted)].duration_ms,
                   2.5);
  // Negative durations are clamped at insertion.
  const int clamped = trace.AddSpan("negative", 0.0, -3.0, 0);
  EXPECT_DOUBLE_EQ(trace.spans()[static_cast<size_t>(clamped)].duration_ms,
                   0.0);
}

TEST(QueryTraceTest, FinalizeFillsGapsWithOtherSpans) {
  QueryTrace trace;
  trace.AddSpan("a", 0.0, 3.0, 0);
  trace.AddSpan("b", 3.0, 2.0, 0);
  trace.Finalize(10.0);

  const std::vector<TraceSpan>& spans = trace.spans();
  EXPECT_DOUBLE_EQ(spans[0].duration_ms, 10.0);
  // A 5 ms gap after "b" becomes a trailing synthetic "other" child.
  const TraceSpan& other = spans.back();
  EXPECT_EQ(other.name, "other");
  EXPECT_EQ(other.parent, 0);
  EXPECT_DOUBLE_EQ(other.start_ms, 5.0);
  EXPECT_DOUBLE_EQ(other.duration_ms, 5.0);
  EXPECT_DOUBLE_EQ(ChildSum(spans, 0), 10.0);
}

TEST(QueryTraceTest, FinalizeScalesOvershootingChildren) {
  QueryTrace trace;
  // Children claim 12 ms inside an 6 ms parent (cross-clock skew):
  // durations and relative offsets must scale by 0.5, no "other" span.
  trace.AddSpan("a", 0.0, 8.0, 0);
  trace.AddSpan("b", 8.0, 4.0, 0);
  trace.Finalize(6.0);

  const std::vector<TraceSpan>& spans = trace.spans();
  ASSERT_EQ(spans.size(), 3u);  // no synthetic span appended
  EXPECT_DOUBLE_EQ(spans[1].duration_ms, 4.0);
  EXPECT_DOUBLE_EQ(spans[2].duration_ms, 2.0);
  EXPECT_DOUBLE_EQ(spans[2].start_ms, 4.0);  // offset scaled too
  EXPECT_DOUBLE_EQ(ChildSum(spans, 0), 6.0);
}

TEST(QueryTraceTest, FinalizePartitionsEveryLevelOfTheTree) {
  QueryTrace trace;
  const int compute = trace.AddSpan("compute", 1.0, 8.0, 0);
  trace.AddSpan("engine_run", 1.0, 5.0, compute);
  trace.AddSpan("json_render", 6.0, 1.0, compute);
  trace.Finalize(10.0);

  const std::vector<TraceSpan>& spans = trace.spans();
  // Level 0: compute (8) + a single trailing "other" (10 - 8 = 2).
  EXPECT_DOUBLE_EQ(ChildSum(spans, 0), 10.0);
  // Level 1: engine_run (5) + json_render (1) + other (2) == compute (8).
  EXPECT_DOUBLE_EQ(ChildSum(spans, compute), 8.0);
  // Sub-epsilon gaps are folded, larger ones get explicit spans; either
  // way every parent with children is tiled exactly.
  int other_count = 0;
  for (const TraceSpan& span : spans) {
    if (span.name == "other") ++other_count;
  }
  EXPECT_EQ(other_count, 2);
}

TEST(QueryTraceTest, FinalizeFoldsSubEpsilonGapIntoLastChild) {
  QueryTrace trace;
  trace.AddSpan("a", 0.0, 5.0, 0);
  // Gap of 1e-9 ms: below the epsilon, folded into "a" instead of
  // emitting a degenerate "other" span.
  trace.Finalize(5.0 + 1e-9);

  const std::vector<TraceSpan>& spans = trace.spans();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_DOUBLE_EQ(spans[1].duration_ms, spans[0].duration_ms);
}

TEST(QueryTraceTest, FinalizeClampsNegativeTotal) {
  QueryTrace trace;
  trace.AddSpan("a", 0.0, 1.0, 0);
  trace.Finalize(-2.0);
  const std::vector<TraceSpan>& spans = trace.spans();
  EXPECT_DOUBLE_EQ(spans[0].duration_ms, 0.0);
  // Children scale to fit the zero-width parent.
  EXPECT_DOUBLE_EQ(ChildSum(spans, 0), 0.0);
}

}  // namespace
}  // namespace tsexplain
