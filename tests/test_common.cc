// Unit tests for src/common: RNG, strings, timer, check macros.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <thread>

#include "src/common/check.h"
#include "src/common/rng.h"
#include "src/common/strings.h"
#include "src/common/timer.h"

namespace tsexplain {
namespace {

TEST(Rng, DeterministicGivenSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextUint64(), b.NextUint64());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextUint64() == b.NextUint64()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.NextDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, UniformIntCoversRangeInclusive) {
  Rng rng(3);
  std::set<int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const int64_t v = rng.UniformInt(-2, 3);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 6u);  // all 6 values hit
}

TEST(Rng, UniformIntSingleton) {
  Rng rng(5);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.UniformInt(9, 9), 9);
}

TEST(Rng, GaussianMomentsApproximatelyCorrect) {
  Rng rng(11);
  const int n = 50000;
  double sum = 0.0, sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.Gaussian(5.0, 2.0);
    sum += x;
    sum_sq += x * x;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 5.0, 0.06);
  EXPECT_NEAR(std::sqrt(var), 2.0, 0.06);
}

TEST(Rng, PoissonMeanMatchesLambda) {
  Rng rng(13);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.Poisson(4.5));
  EXPECT_NEAR(sum / n, 4.5, 0.1);
  EXPECT_EQ(rng.Poisson(0.0), 0);
}

TEST(Rng, PoissonLargeLambdaUsesNormalApproximation) {
  Rng rng(17);
  double sum = 0.0;
  const int n = 5000;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.Poisson(200.0));
  EXPECT_NEAR(sum / n, 200.0, 2.0);
}

TEST(Rng, SampleDistinctSortedProperties) {
  Rng rng(19);
  for (int trial = 0; trial < 50; ++trial) {
    const std::vector<int> sample = rng.SampleDistinctSorted(10, 30, 8);
    ASSERT_EQ(sample.size(), 8u);
    EXPECT_TRUE(std::is_sorted(sample.begin(), sample.end()));
    std::set<int> unique(sample.begin(), sample.end());
    EXPECT_EQ(unique.size(), 8u);
    for (int v : sample) {
      EXPECT_GE(v, 10);
      EXPECT_LE(v, 30);
    }
  }
}

TEST(Rng, SampleDistinctSortedFullRange) {
  Rng rng(23);
  const std::vector<int> sample = rng.SampleDistinctSorted(0, 4, 5);
  EXPECT_EQ(sample, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(29);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7};
  std::vector<int> shuffled = v;
  rng.Shuffle(&shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(Strings, JoinAndSplitRoundTrip) {
  const std::vector<std::string> parts{"a", "bb", "", "ccc"};
  const std::string joined = Join(parts, ",");
  EXPECT_EQ(joined, "a,bb,,ccc");
  EXPECT_EQ(Split(joined, ','), parts);
}

TEST(Strings, JoinEmpty) { EXPECT_EQ(Join({}, ","), ""); }

TEST(Strings, SplitNoSeparator) {
  EXPECT_EQ(Split("abc", ','), std::vector<std::string>{"abc"});
}

TEST(Strings, StrFormatBasics) {
  EXPECT_EQ(StrFormat("%d-%d", 3, 14), "3-14");
  EXPECT_EQ(StrFormat("%.2f%%", 12.345), "12.35%");
  EXPECT_EQ(StrFormat("%s", ""), "");
}

TEST(Strings, Padding) {
  EXPECT_EQ(PadLeft("ab", 5), "   ab");
  EXPECT_EQ(PadRight("ab", 5), "ab   ");
  EXPECT_EQ(PadLeft("abcdef", 3), "abc");  // truncation
}

TEST(Strings, DayOffsetToDateLeapYear) {
  // 2020 anchors used by the covid simulator.
  EXPECT_EQ(DayOffsetToDate(0, 1, 22, true), "1-22");
  EXPECT_EQ(DayOffsetToDate(9, 1, 22, true), "1-31");
  EXPECT_EQ(DayOffsetToDate(10, 1, 22, true), "2-1");
  EXPECT_EQ(DayOffsetToDate(38, 1, 22, true), "2-29");  // leap day exists
  EXPECT_EQ(DayOffsetToDate(39, 1, 22, true), "3-1");
  EXPECT_EQ(DayOffsetToDate(52, 1, 22, true), "3-14");
  EXPECT_EQ(DayOffsetToDate(344, 1, 22, true), "12-31");
}

TEST(Strings, DayOffsetToDateNonLeap) {
  EXPECT_EQ(DayOffsetToDate(37, 1, 22, false), "2-28");
  EXPECT_EQ(DayOffsetToDate(38, 1, 22, false), "3-1");
}

TEST(Timer, MeasuresElapsedTime) {
  Timer timer;
  std::this_thread::sleep_for(std::chrono::milliseconds(12));
  const double ms = timer.ElapsedMs();
  EXPECT_GE(ms, 10.0);
  EXPECT_LT(ms, 600.0);
  EXPECT_NEAR(timer.ElapsedSeconds(), timer.ElapsedMs() / 1000.0, 0.01);
}

TEST(Timer, ScopedTimerAccumulates) {
  double sink = 0.0;
  {
    ScopedTimer t(&sink);
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  const double first = sink;
  EXPECT_GT(first, 0.0);
  {
    ScopedTimer t(&sink);
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_GT(sink, first);
}

TEST(CheckDeathTest, FailingCheckAborts) {
  EXPECT_DEATH({ TSE_CHECK(1 == 2) << "boom"; }, "boom");
  EXPECT_DEATH({ TSE_CHECK_GE(1, 2); }, "check failed");
}

TEST(Check, PassingCheckIsSilent) {
  TSE_CHECK(true) << "never evaluated";
  TSE_CHECK_EQ(2 + 2, 4);
  TSE_CHECK_LT(1, 2);
  SUCCEED();
}

}  // namespace
}  // namespace tsexplain
