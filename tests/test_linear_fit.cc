// Unit tests for src/ts/linear_fit: exact fits, oracle-vs-direct equality.

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/ts/linear_fit.h"

namespace tsexplain {
namespace {

TEST(FitLine, ExactOnStraightLine) {
  std::vector<double> v(20);
  for (size_t i = 0; i < v.size(); ++i) {
    v[i] = 3.0 * static_cast<double>(i) + 7.0;
  }
  const LineFit fit = FitLine(v, 2, 15);
  EXPECT_NEAR(fit.slope, 3.0, 1e-9);
  EXPECT_NEAR(fit.intercept, 7.0, 1e-9);
  EXPECT_NEAR(fit.sse, 0.0, 1e-9);
}

TEST(FitLine, SinglePoint) {
  const std::vector<double> v{5.0, 6.0, 7.0};
  const LineFit fit = FitLine(v, 1, 1);
  EXPECT_DOUBLE_EQ(fit.slope, 0.0);
  EXPECT_DOUBLE_EQ(fit.intercept, 6.0);
  EXPECT_DOUBLE_EQ(fit.sse, 0.0);
}

TEST(FitLine, ConstantSegment) {
  const std::vector<double> v{4.0, 4.0, 4.0, 4.0};
  const LineFit fit = FitLine(v, 0, 3);
  EXPECT_NEAR(fit.slope, 0.0, 1e-12);
  EXPECT_NEAR(fit.intercept, 4.0, 1e-9);
  EXPECT_NEAR(fit.sse, 0.0, 1e-12);
}

TEST(FitLine, KnownResidual) {
  // Points (0,0), (1,1), (2,0): best line is y = 1/3, SSE = 2/3... actually
  // least squares: slope 0, intercept 1/3, SSE = (1/9 + 4/9 + 1/9) = 6/9.
  const std::vector<double> v{0.0, 1.0, 0.0};
  const LineFit fit = FitLine(v, 0, 2);
  EXPECT_NEAR(fit.slope, 0.0, 1e-9);
  EXPECT_NEAR(fit.intercept, 1.0 / 3.0, 1e-9);
  EXPECT_NEAR(fit.sse, 2.0 / 3.0, 1e-9);
}

TEST(InterpolationSse, ZeroOnLineAndShortSegments) {
  std::vector<double> line(10);
  for (size_t i = 0; i < line.size(); ++i) {
    line[i] = 2.0 * static_cast<double>(i);
  }
  EXPECT_DOUBLE_EQ(InterpolationSse(line, 0, 9), 0.0);
  EXPECT_DOUBLE_EQ(InterpolationSse(line, 3, 4), 0.0);  // two points
}

TEST(InterpolationSse, AtLeastLeastSquaresSse) {
  Rng rng(5);
  std::vector<double> v(30);
  for (auto& x : v) x = rng.Uniform(0.0, 10.0);
  for (size_t a = 0; a < v.size(); a += 3) {
    for (size_t b = a + 2; b < v.size(); b += 4) {
      EXPECT_GE(InterpolationSse(v, a, b) + 1e-9, SegmentSse(v, a, b));
    }
  }
}

TEST(SseOracle, MatchesDirectFitEverywhere) {
  Rng rng(9);
  std::vector<double> v(40);
  for (auto& x : v) x = rng.Uniform(-5.0, 5.0);
  const SseOracle oracle(v);
  for (size_t a = 0; a < v.size(); ++a) {
    for (size_t b = a; b < v.size(); ++b) {
      EXPECT_NEAR(oracle.Sse(a, b), SegmentSse(v, a, b), 1e-6)
          << "segment [" << a << ", " << b << "]";
    }
  }
}

TEST(SseOracle, NonNegative) {
  Rng rng(10);
  std::vector<double> v(60);
  for (auto& x : v) x = rng.Uniform(1e6, 1e6 + 1.0);  // catastrophic range
  const SseOracle oracle(v);
  for (size_t a = 0; a + 4 < v.size(); a += 2) {
    EXPECT_GE(oracle.Sse(a, a + 4), 0.0);
  }
}

TEST(SseOracle, SizeReported) {
  const SseOracle oracle(std::vector<double>{1.0, 2.0, 3.0});
  EXPECT_EQ(oracle.size(), 3u);
}

}  // namespace
}  // namespace tsexplain
