#!/usr/bin/env bash
# Self-test for tools/lint_invariants.py: runs the linter against fixture
# trees assembled from tests/lint_fixtures/ and asserts that every rule
# fires (non-zero exit + the right message) and that a clean tree passes.
#
# Usage: tests/lint_selftest.sh  (PYTHON3 env var overrides the
# interpreter; defaults to python3 on PATH)
set -u

SCRIPT_DIR="$(cd "$(dirname "${BASH_SOURCE[0]}")" && pwd)"
REPO_ROOT="$(cd "${SCRIPT_DIR}/.." && pwd)"
LINTER="${REPO_ROOT}/tools/lint_invariants.py"
FIXTURES="${SCRIPT_DIR}/lint_fixtures"
PYTHON3="${PYTHON3:-python3}"

TMPDIR_ROOT="$(mktemp -d)"
trap 'rm -rf "${TMPDIR_ROOT}"' EXIT

failures=0

fail() {
  echo "FAIL: $1" >&2
  failures=$((failures + 1))
}

# run_linter <root>; captures stdout+stderr in ${OUT}, exit in ${CODE}
run_linter() {
  OUT="$("${PYTHON3}" "${LINTER}" --root "$1" 2>&1)"
  CODE=$?
}

# expect_violation <name> <fixture-file> <dest-rel-path> <expected-substr>
# Assembles a one-violation tree, runs the linter, and asserts it exits
# non-zero mentioning the expected rule.
expect_violation() {
  local name="$1" fixture="$2" dest="$3" expected="$4"
  local root="${TMPDIR_ROOT}/${name}"
  mkdir -p "${root}/src" "${root}/tools" "${root}/bench" \
           "$(dirname "${root}/${dest}")"
  cp "${FIXTURES}/${fixture}" "${root}/${dest}"
  run_linter "${root}"
  if [ "${CODE}" -eq 0 ]; then
    fail "${name}: linter exited 0 on a seeded ${expected} violation"
    return
  fi
  if ! printf '%s' "${OUT}" | grep -q "${expected}"; then
    fail "${name}: output did not mention '${expected}': ${OUT}"
    return
  fi
  echo "ok: ${name}"
}

# R1a: raw std::mutex member outside src/common/mutex.h.
expect_violation raw_primitive raw_primitive.h \
  "src/service/raw_primitive.h" "raw-sync-primitive"

# R1b: Mutex member with no annotation user and no allow comment.
expect_violation unguarded_mutex unguarded_mutex.h \
  "src/service/unguarded_mutex.h" "unguarded-mutex"

# R2: TSE_CHECK token in a storage decode file (comments/strings exempt).
expect_violation storage_abort storage_abort.cc \
  "src/storage/storage_abort.cc" "storage-abort"

# R2 must point at the real call, not the comment or string mention.
if printf '%s' "${OUT}" | grep -q "storage-abort.*:8:\|storage-abort.*:9:"; then
  fail "storage_abort: rule fired on a comment/string mention"
else
  echo "ok: storage_abort ignores comments and strings"
fi

# R3: duplicate EmitResult slug across two bench files.
dup_root="${TMPDIR_ROOT}/dup_slug"
mkdir -p "${dup_root}/src" "${dup_root}/tools" "${dup_root}/bench"
cp "${FIXTURES}/dup_slug_a.cc" "${dup_root}/bench/dup_slug_a.cc"
cp "${FIXTURES}/dup_slug_b.cc" "${dup_root}/bench/dup_slug_b.cc"
run_linter "${dup_root}"
if [ "${CODE}" -eq 0 ]; then
  fail "dup_slug: linter exited 0 on a duplicated bench slug"
elif ! printf '%s' "${OUT}" | grep -q "duplicate-bench-slug"; then
  fail "dup_slug: output did not mention 'duplicate-bench-slug': ${OUT}"
elif printf '%s' "${OUT}" | grep -q "fixture.len\|fixture.prefix"; then
  fail "dup_slug: dynamic slugs must be skipped: ${OUT}"
else
  echo "ok: dup_slug"
fi

# R4: duplicate metric registration literal across two source files.
dup_metric_root="${TMPDIR_ROOT}/dup_metric"
mkdir -p "${dup_metric_root}/src" "${dup_metric_root}/tools" \
         "${dup_metric_root}/bench"
cp "${FIXTURES}/dup_metric_a.cc" "${dup_metric_root}/src/dup_metric_a.cc"
cp "${FIXTURES}/dup_metric_b.cc" "${dup_metric_root}/src/dup_metric_b.cc"
run_linter "${dup_metric_root}"
if [ "${CODE}" -eq 0 ]; then
  fail "dup_metric: linter exited 0 on a duplicated metric name"
elif ! printf '%s' "${OUT}" | grep -q "duplicate-metric-name"; then
  fail "dup_metric: output did not mention 'duplicate-metric-name': ${OUT}"
elif printf '%s' "${OUT}" | grep -q "fixture.shard"; then
  fail "dup_metric: dynamic metric names must be skipped: ${OUT}"
elif printf '%s' "${OUT}" | grep -q "fixture.unique"; then
  fail "dup_metric: single-site names must not fire: ${OUT}"
else
  echo "ok: dup_metric"
fi

# R5: decoded count sizing a resize with no preceding bound check.
expect_violation unbounded_alloc unbounded_alloc.cc \
  "src/storage/unbounded_alloc.cc" "unbounded-decode-alloc"

# R5 must fire on exactly one site: the bounded/constant/input-derived
# allocations in the same fixture must stay quiet.
if [ "$(printf '%s\n' "${OUT}" | grep -c "unbounded-decode-alloc")" -ne 1 ]; then
  fail "unbounded_alloc: expected exactly one R5 violation: ${OUT}"
else
  echo "ok: unbounded_alloc flags only the unchecked site"
fi

# R6: discarded ByteReader status in a storage decode.
expect_violation unchecked_reader unchecked_reader.cc \
  "src/storage/unchecked_reader.cc" "unchecked-bytereader"

# R6 must not flag assigned or tested reader calls.
if [ "$(printf '%s\n' "${OUT}" | grep -c "unchecked-bytereader")" -ne 1 ]; then
  fail "unchecked_reader: expected exactly one R6 violation: ${OUT}"
else
  echo "ok: unchecked_reader flags only the discarded call"
fi

# R7: a TrackHistogramPercentiles name with no GetHistogram site.
expect_violation untracked_history untracked_history.cc \
  "src/untracked_history.cc" "unregistered-history-metric"

# R7 must fire on exactly the never-registered name: the registered and
# dynamically built trackings in the same fixture must stay quiet.
if [ "$(printf '%s\n' "${OUT}" | grep -c "unregistered-history-metric")" -ne 1 ]; then
  fail "untracked_history: expected exactly one R7 violation: ${OUT}"
elif ! printf '%s' "${OUT}" | grep -q "fixture.never.registered"; then
  fail "untracked_history: wrong name flagged: ${OUT}"
elif printf '%s' "${OUT}" | grep -q "fixture.tracked.ms\|fixture.shard"; then
  fail "untracked_history: registered/dynamic names must not fire: ${OUT}"
else
  echo "ok: untracked_history flags only the unregistered name"
fi

# Clean tree: annotated + allow-listed mutexes, unique slugs — exit 0.
clean_root="${TMPDIR_ROOT}/clean"
mkdir -p "${clean_root}/src/service" "${clean_root}/tools" \
         "${clean_root}/bench" "${clean_root}/src/storage"
cp "${FIXTURES}/clean_guarded.h" "${clean_root}/src/service/clean_guarded.h"
cp "${FIXTURES}/dup_slug_a.cc" "${clean_root}/bench/dup_slug_a.cc"
cp "${FIXTURES}/dup_metric_a.cc" "${clean_root}/src/dup_metric_a.cc"
cp "${FIXTURES}/clean_decode.cc" "${clean_root}/src/storage/clean_decode.cc"
run_linter "${clean_root}"
if [ "${CODE}" -ne 0 ]; then
  fail "clean: linter flagged a clean tree: ${OUT}"
else
  echo "ok: clean tree passes"
fi

# The real repository must be clean too (this is what the lint_invariants
# ctest entry checks; asserting it here keeps the selftest self-contained).
run_linter "${REPO_ROOT}"
if [ "${CODE}" -ne 0 ]; then
  fail "repo: lint_invariants flags the committed tree: ${OUT}"
else
  echo "ok: committed tree passes"
fi

if [ "${failures}" -ne 0 ]; then
  echo "lint_selftest: ${failures} failure(s)" >&2
  exit 1
fi
echo "lint_selftest: all checks passed"
