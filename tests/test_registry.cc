// Unit tests for candidate enumeration + the drill-down lattice.

#include <gtest/gtest.h>

#include <set>

#include "src/diff/explanation_registry.h"

namespace tsexplain {
namespace {

// Two attributes A (2 values) x B (2 values), all combos present.
Table MakeDenseTable() {
  Table table(Schema("t", {"A", "B"}, {"m"}));
  table.AddTimeBucket("0");
  for (const char* a : {"a1", "a2"}) {
    for (const char* b : {"b1", "b2"}) {
      table.AppendRow(0, {a, b}, {1.0});
    }
  }
  return table;
}

TEST(Registry, DenseEnumerationCount) {
  const Table t = MakeDenseTable();
  const auto reg = ExplanationRegistry::Build(t, {0, 1}, 2);
  // Order 1: 2 + 2 = 4; order 2: 2 x 2 = 4 -> epsilon = 8.
  EXPECT_EQ(reg.num_explanations(), 8u);
}

TEST(Registry, MaxOrderOneOnlySingles) {
  const Table t = MakeDenseTable();
  const auto reg = ExplanationRegistry::Build(t, {0, 1}, 1);
  EXPECT_EQ(reg.num_explanations(), 4u);
  for (ExplId e = 0; e < 4; ++e) {
    EXPECT_EQ(reg.explanation(e).order(), 1);
  }
}

TEST(Registry, SparseCombosOnlyWhenCoOccurring) {
  Table table(Schema("t", {"A", "B"}, {"m"}));
  table.AddTimeBucket("0");
  table.AppendRow(0, {"a1", "b1"}, {1.0});
  table.AppendRow(0, {"a2", "b2"}, {1.0});
  const auto reg = ExplanationRegistry::Build(table, {0, 1}, 2);
  // Singles: a1, a2, b1, b2; pairs: only (a1,b1) and (a2,b2).
  EXPECT_EQ(reg.num_explanations(), 6u);
  const ValueId a1 = table.dictionary(0).Lookup("a1");
  const ValueId b2 = table.dictionary(1).Lookup("b2");
  const auto cross = Explanation::FromPredicates(
      {Predicate{0, a1}, Predicate{1, b2}});
  EXPECT_EQ(reg.Lookup(cross), kInvalidExplId);
}

TEST(Registry, ExplainBySubsetOfDimensions) {
  const Table t = MakeDenseTable();
  const auto reg = ExplanationRegistry::Build(t, {1}, 3);
  EXPECT_EQ(reg.num_explanations(), 2u);  // only B's two values
}

TEST(Registry, RootChildrenGroupedByAttribute) {
  const Table t = MakeDenseTable();
  const auto reg = ExplanationRegistry::Build(t, {0, 1}, 2);
  const auto& groups = reg.root_children();
  ASSERT_EQ(groups.size(), 2u);
  EXPECT_EQ(groups[0].attr, 0);
  EXPECT_EQ(groups[1].attr, 1);
  EXPECT_EQ(groups[0].children.size(), 2u);
  EXPECT_EQ(groups[1].children.size(), 2u);
  for (const ChildGroup& g : groups) {
    for (ExplId child : g.children) {
      EXPECT_EQ(reg.explanation(child).order(), 1);
    }
  }
}

TEST(Registry, ChildExtendsParentByOnePredicate) {
  const Table t = MakeDenseTable();
  const auto reg = ExplanationRegistry::Build(t, {0, 1}, 2);
  for (ExplId id = 0; id < static_cast<ExplId>(reg.num_explanations());
       ++id) {
    const Explanation& parent = reg.explanation(id);
    for (const ChildGroup& group : reg.children(id)) {
      ValueId unused;
      EXPECT_FALSE(parent.TryGetValue(group.attr, &unused))
          << "drill-down attr must be unconstrained in the parent";
      for (ExplId child_id : group.children) {
        const Explanation& child = reg.explanation(child_id);
        EXPECT_EQ(child.order(), parent.order() + 1);
        EXPECT_TRUE(child.WithoutAttr(group.attr) == parent);
      }
    }
  }
}

TEST(Registry, EveryNonRootCellReachableFromRoot) {
  const Table t = MakeDenseTable();
  const auto reg = ExplanationRegistry::Build(t, {0, 1}, 2);
  std::set<ExplId> reachable;
  std::vector<ExplId> stack;
  for (const ChildGroup& g : reg.root_children()) {
    for (ExplId c : g.children) stack.push_back(c);
  }
  while (!stack.empty()) {
    const ExplId id = stack.back();
    stack.pop_back();
    if (!reachable.insert(id).second) continue;
    for (const ChildGroup& g : reg.children(id)) {
      for (ExplId c : g.children) stack.push_back(c);
    }
  }
  EXPECT_EQ(reachable.size(), reg.num_explanations());
}

TEST(Registry, MaxOrderCellsAreLeaves) {
  const Table t = MakeDenseTable();
  const auto reg = ExplanationRegistry::Build(t, {0, 1}, 2);
  for (ExplId id = 0; id < static_cast<ExplId>(reg.num_explanations());
       ++id) {
    if (reg.explanation(id).order() == 2) {
      EXPECT_TRUE(reg.children(id).empty());
    }
  }
}

TEST(Registry, LookupRoundTrip) {
  const Table t = MakeDenseTable();
  const auto reg = ExplanationRegistry::Build(t, {0, 1}, 2);
  for (ExplId id = 0; id < static_cast<ExplId>(reg.num_explanations());
       ++id) {
    EXPECT_EQ(reg.Lookup(reg.explanation(id)), id);
  }
}

TEST(Registry, ThreeAttributeTripleEnumeration) {
  Table table(Schema("t", {"A", "B", "C"}, {"m"}));
  table.AddTimeBucket("0");
  table.AppendRow(0, {"a", "b", "c"}, {1.0});
  const auto reg3 = ExplanationRegistry::Build(table, {0, 1, 2}, 3);
  // One row: 3 singles + 3 pairs + 1 triple = 7.
  EXPECT_EQ(reg3.num_explanations(), 7u);
  const auto reg2 = ExplanationRegistry::Build(table, {0, 1, 2}, 2);
  EXPECT_EQ(reg2.num_explanations(), 6u);
}

}  // namespace
}  // namespace tsexplain
