// Unit tests for src/ts/decompose (classical additive decomposition).

#include <gtest/gtest.h>

#include <cmath>

#include "src/ts/decompose.h"

namespace tsexplain {
namespace {

constexpr double kPi = 3.14159265358979323846;

TEST(Decompose, ComponentsSumToInput) {
  std::vector<double> v(60);
  for (size_t i = 0; i < v.size(); ++i) {
    v[i] = 0.5 * static_cast<double>(i) +
           10.0 * std::sin(2.0 * kPi * static_cast<double>(i % 12) / 12.0);
  }
  const Decomposition d = DecomposeAdditive(v, 12);
  ASSERT_EQ(d.trend.size(), v.size());
  ASSERT_EQ(d.seasonal.size(), v.size());
  ASSERT_EQ(d.remainder.size(), v.size());
  for (size_t i = 0; i < v.size(); ++i) {
    EXPECT_NEAR(d.trend[i] + d.seasonal[i] + d.remainder[i], v[i], 1e-9);
  }
}

TEST(Decompose, SeasonalSumsToZeroOverOnePeriod) {
  std::vector<double> v(48);
  for (size_t i = 0; i < v.size(); ++i) {
    v[i] = 100.0 + 5.0 * static_cast<double>(i % 6);
  }
  const Decomposition d = DecomposeAdditive(v, 6);
  double sum = 0.0;
  for (int p = 0; p < 6; ++p) sum += d.seasonal[static_cast<size_t>(p)];
  EXPECT_NEAR(sum, 0.0, 1e-9);
}

TEST(Decompose, RecoversLinearTrendInInterior) {
  std::vector<double> v(72);
  for (size_t i = 0; i < v.size(); ++i) {
    v[i] = 2.0 * static_cast<double>(i) +
           8.0 * std::sin(2.0 * kPi * static_cast<double>(i % 12) / 12.0);
  }
  const Decomposition d = DecomposeAdditive(v, 12);
  // Away from the edges the centered MA of a linear trend is exact; the
  // pure sinusoid averages out over a full period.
  for (size_t i = 12; i + 12 < v.size(); ++i) {
    EXPECT_NEAR(d.trend[i], 2.0 * static_cast<double>(i), 0.8) << i;
  }
}

TEST(Decompose, RecoversSeasonalPattern) {
  const std::vector<double> pattern{5.0, -3.0, 0.0, -2.0};
  std::vector<double> v(40);
  for (size_t i = 0; i < v.size(); ++i) {
    v[i] = 50.0 + pattern[i % 4];
  }
  const Decomposition d = DecomposeAdditive(v, 4);
  // pattern has mean 0 already, so seasonal should reproduce it closely.
  for (int p = 0; p < 4; ++p) {
    EXPECT_NEAR(d.seasonal[static_cast<size_t>(p)],
                pattern[static_cast<size_t>(p)], 0.5);
  }
}

TEST(Decompose, OddPeriod) {
  std::vector<double> v(30);
  for (size_t i = 0; i < v.size(); ++i) {
    v[i] = static_cast<double>(i % 5);
  }
  const Decomposition d = DecomposeAdditive(v, 5);
  for (size_t i = 0; i < v.size(); ++i) {
    EXPECT_NEAR(d.trend[i] + d.seasonal[i] + d.remainder[i], v[i], 1e-9);
  }
}

TEST(DecomposeDeathTest, RejectsTooShortInput) {
  EXPECT_DEATH(DecomposeAdditive(std::vector<double>(7, 1.0), 4),
               "check failed");
}

}  // namespace
}  // namespace tsexplain
