// Unit tests for src/table: dictionary, schema, table storage.

#include <gtest/gtest.h>

#include "src/table/dictionary.h"
#include "src/table/schema.h"
#include "src/table/table.h"

namespace tsexplain {
namespace {

TEST(Dictionary, InsertionOrderIds) {
  Dictionary dict;
  EXPECT_EQ(dict.GetOrInsert("NY"), 0);
  EXPECT_EQ(dict.GetOrInsert("CA"), 1);
  EXPECT_EQ(dict.GetOrInsert("NY"), 0);  // idempotent
  EXPECT_EQ(dict.size(), 2u);
}

TEST(Dictionary, LookupMissing) {
  Dictionary dict;
  dict.GetOrInsert("x");
  EXPECT_EQ(dict.Lookup("x"), 0);
  EXPECT_EQ(dict.Lookup("y"), kInvalidValueId);
}

TEST(Dictionary, RoundTrip) {
  Dictionary dict;
  const ValueId id = dict.GetOrInsert("hello world");
  EXPECT_EQ(dict.ToString(id), "hello world");
}

TEST(Schema, Accessors) {
  const Schema schema("date", {"state", "county"}, {"cases", "deaths"});
  EXPECT_EQ(schema.time_name(), "date");
  EXPECT_EQ(schema.num_dimensions(), 2u);
  EXPECT_EQ(schema.num_measures(), 2u);
  EXPECT_EQ(schema.DimensionIndex("county"), 1);
  EXPECT_EQ(schema.DimensionIndex("bogus"), kInvalidAttrId);
  EXPECT_EQ(schema.MeasureIndex("deaths"), 1);
  EXPECT_EQ(schema.MeasureIndex("bogus"), -1);
}

TEST(SchemaDeathTest, RejectsDuplicateColumns) {
  EXPECT_DEATH(Schema("t", {"a", "a"}, {}), "duplicate column");
  EXPECT_DEATH(Schema("t", {"a"}, {"a"}), "duplicate column");
}

Table MakeSmallTable() {
  Table table(Schema("date", {"state"}, {"cases"}));
  table.AddTimeBucket("d0");
  table.AddTimeBucket("d1");
  table.AppendRow(0, {"NY"}, {10.0});
  table.AppendRow(0, {"CA"}, {5.0});
  table.AppendRow(1, {"NY"}, {20.0});
  return table;
}

TEST(Table, RowStorageRoundTrip) {
  const Table table = MakeSmallTable();
  EXPECT_EQ(table.num_rows(), 3u);
  EXPECT_EQ(table.num_time_buckets(), 2u);
  EXPECT_EQ(table.time(2), 1);
  EXPECT_EQ(table.dictionary(0).ToString(table.dim(2, 0)), "NY");
  EXPECT_DOUBLE_EQ(table.measure(1, 0), 5.0);
}

TEST(Table, RepeatedTailTimeBucketReturnsSameId) {
  Table table(Schema("t", {"d"}, {}));
  EXPECT_EQ(table.AddTimeBucket("a"), 0);
  EXPECT_EQ(table.AddTimeBucket("a"), 0);
  EXPECT_EQ(table.AddTimeBucket("b"), 1);
}

TEST(Table, EncodedAppendFastPath) {
  Table table(Schema("t", {"d"}, {"m"}));
  table.AddTimeBucket("0");
  const ValueId v = table.EncodeDimension(0, "x");
  table.AppendRowEncoded(0, {v}, {1.5});
  EXPECT_EQ(table.dim(0, 0), v);
  EXPECT_DOUBLE_EQ(table.measure(0, 0), 1.5);
}

TEST(Table, PredicateString) {
  const Table table = MakeSmallTable();
  EXPECT_EQ(table.PredicateString(0, table.dim(0, 0)), "state=NY");
}

TEST(Table, ColumnAccessors) {
  const Table table = MakeSmallTable();
  EXPECT_EQ(table.time_column().size(), 3u);
  EXPECT_EQ(table.dim_column(0).size(), 3u);
  EXPECT_EQ(table.measure_column(0).size(), 3u);
  EXPECT_EQ(table.time_labels(),
            (std::vector<std::string>{"d0", "d1"}));
}

TEST(TableDeathTest, AppendBeforeTimeBucketAborts) {
  Table table(Schema("t", {"d"}, {}));
  EXPECT_DEATH(table.AppendRow(0, {"x"}, {}), "register time buckets");
}

TEST(TableDeathTest, WrongArityAborts) {
  Table table(Schema("t", {"d"}, {"m"}));
  table.AddTimeBucket("0");
  EXPECT_DEATH(table.AppendRow(0, {"x", "y"}, {1.0}), "check failed");
  EXPECT_DEATH(table.AppendRow(0, {"x"}, {}), "check failed");
}

}  // namespace
}  // namespace tsexplain
