// Tests for the stand-alone two-relations diff API, plus an exhaustive
// differential test of the Cascading Analysts algorithm against a
// brute-force enumeration of ALL cascades on small instances.

#include <gtest/gtest.h>

#include <functional>

#include "src/common/rng.h"
#include "src/datagen/covid_sim.h"
#include "src/diff/snapshot_diff.h"
#include "src/diff/cascading_analysts.h"

namespace tsexplain {
namespace {

Table MakeSalesTable() {
  Table table(Schema("day", {"region", "product"}, {"units"}));
  table.AddTimeBucket("mon");
  table.AddTimeBucket("tue");
  // mon -> tue: NA/widget +40, NA/gadget -10, EU/widget +5, EU/gadget 0.
  table.AppendRow(0, {"NA", "widget"}, {100.0});
  table.AppendRow(1, {"NA", "widget"}, {140.0});
  table.AppendRow(0, {"NA", "gadget"}, {50.0});
  table.AppendRow(1, {"NA", "gadget"}, {40.0});
  table.AppendRow(0, {"EU", "widget"}, {30.0});
  table.AppendRow(1, {"EU", "widget"}, {35.0});
  table.AppendRow(0, {"EU", "gadget"}, {20.0});
  table.AppendRow(1, {"EU", "gadget"}, {20.0});
  return table;
}

TEST(SnapshotDiff, ExplainsTheDifference) {
  const Table table = MakeSalesTable();
  SnapshotDiffOptions options;
  options.measure = "units";
  options.max_order = 2;
  const SnapshotDiffResult result = SnapshotDiff(table, "mon", "tue",
                                                 options);
  EXPECT_DOUBLE_EQ(result.control_total, 200.0);
  EXPECT_DOUBLE_EQ(result.test_total, 235.0);
  ASSERT_FALSE(result.top.empty());
  // The dominant contributor is NA widgets (+40).
  EXPECT_EQ(result.top[0].description, "region=NA & product=widget");
  EXPECT_DOUBLE_EQ(result.top[0].gamma, 40.0);
  EXPECT_EQ(result.top[0].tau, 1);
  EXPECT_DOUBLE_EQ(result.top[0].control_value, 100.0);
  EXPECT_DOUBLE_EQ(result.top[0].test_value, 140.0);
}

TEST(SnapshotDiff, NegativeContributorSurfaces) {
  const Table table = MakeSalesTable();
  SnapshotDiffOptions options;
  options.measure = "units";
  options.max_order = 2;
  const SnapshotDiffResult result = SnapshotDiff(table, "mon", "tue",
                                                 options);
  bool gadget_decline = false;
  for (const SnapshotDiffItem& item : result.top) {
    if (item.description == "region=NA & product=gadget" && item.tau < 0) {
      gadget_decline = true;
    }
  }
  EXPECT_TRUE(gadget_decline);
}

TEST(SnapshotDiff, IndexVariantAndReversedDirection) {
  const Table table = MakeSalesTable();
  SnapshotDiffOptions options;
  options.measure = "units";
  const SnapshotDiffResult forward = SnapshotDiffAt(table, 0, 1, options);
  const SnapshotDiffResult backward = SnapshotDiffAt(table, 1, 0, options);
  ASSERT_FALSE(forward.top.empty());
  ASSERT_FALSE(backward.top.empty());
  // Reversing control/test flips every change effect.
  EXPECT_EQ(forward.top[0].tau, -backward.top[0].tau);
  EXPECT_DOUBLE_EQ(forward.top[0].gamma, backward.top[0].gamma);
}

TEST(SnapshotDiff, DefaultsToAllDimensionsAndCount) {
  const Table table = MakeSalesTable();
  SnapshotDiffOptions options;  // COUNT(*), all dimensions
  const SnapshotDiffResult result = SnapshotDiff(table, "mon", "tue",
                                                 options);
  // Row counts are equal on both days: nothing to explain.
  EXPECT_DOUBLE_EQ(result.control_total, 4.0);
  EXPECT_DOUBLE_EQ(result.test_total, 4.0);
  EXPECT_TRUE(result.top.empty());
}

TEST(SnapshotDiff, CovidEndpointsMatchPaperExample) {
  // Example 3.1: diffing the year's endpoints yields the big cumulative
  // states (CA/TX/FL in the paper's narrative).
  const auto table = MakeCovidTable();
  SnapshotDiffOptions options;
  options.measure = "total_confirmed_cases";
  options.explain_by = {"state"};
  const SnapshotDiffResult result =
      SnapshotDiff(*table, "1-22", "12-31", options);
  ASSERT_EQ(result.top.size(), 3u);
  EXPECT_EQ(result.top[0].description, "state=CA");
  for (const auto& item : result.top) EXPECT_EQ(item.tau, 1);
}

TEST(SnapshotDiffDeathTest, UnknownLabelRejected) {
  const Table table = MakeSalesTable();
  EXPECT_DEATH(SnapshotDiff(table, "mon", "nope", {}),
               "unknown time bucket");
}

// ---------------------------------------------------------------------
// Exhaustive cascade enumeration: validates CA's optimality claim on the
// exact search space it optimizes over (all drill-down cascades), not just
// bounds. The enumerator recursively mirrors the cascade semantics:
// at a cell, either select it (if not root), or pick one dimension and
// recurse into each child with a quota split.
double BruteForceCascade(const ExplanationRegistry& reg,
                         const std::vector<double>& gamma, ExplId cell,
                         int quota) {
  if (quota == 0) return 0.0;
  double best = 0.0;
  if (cell != kInvalidExplId) {
    best = std::max(best, gamma[static_cast<size_t>(cell)]);
  }
  const std::vector<ChildGroup>& groups =
      cell == kInvalidExplId ? reg.root_children() : reg.children(cell);
  for (const ChildGroup& group : groups) {
    // Exhaustive quota distribution over this dimension's children.
    std::function<double(size_t, int)> distribute =
        [&](size_t idx, int remaining) -> double {
      if (idx == group.children.size() || remaining == 0) return 0.0;
      double value = distribute(idx + 1, remaining);  // give child 0
      for (int q = 1; q <= remaining; ++q) {
        value = std::max(
            value, BruteForceCascade(reg, gamma, group.children[idx], q) +
                       distribute(idx + 1, remaining - q));
      }
      return value;
    };
    best = std::max(best, distribute(0, quota));
  }
  return best;
}

TEST(CascadingAnalystsDifferential, MatchesExhaustiveCascadeSearch) {
  Table table(Schema("t", {"A", "B"}, {"m"}));
  table.AddTimeBucket("0");
  for (int a = 0; a < 3; ++a) {
    for (int b = 0; b < 3; ++b) {
      table.AppendRow(0, {"a" + std::to_string(a), "b" + std::to_string(b)},
                      {1.0});
    }
  }
  const auto reg = ExplanationRegistry::Build(table, {0, 1}, 2);
  CascadingAnalysts solver(reg);
  Rng rng(29);
  for (int trial = 0; trial < 60; ++trial) {
    std::vector<double> gamma(reg.num_explanations());
    for (auto& g : gamma) g = rng.Uniform(0.0, 10.0);
    for (int m = 1; m <= 3; ++m) {
      const double exhaustive =
          BruteForceCascade(reg, gamma, kInvalidExplId, m);
      const TopExplanations got = solver.TopM(gamma, m);
      EXPECT_NEAR(got.TotalScore(), exhaustive, 1e-9)
          << "trial " << trial << " m " << m;
    }
  }
}

TEST(CascadingAnalystsDifferential, ThreeAttributeInstance) {
  Table table(Schema("t", {"A", "B", "C"}, {"m"}));
  table.AddTimeBucket("0");
  for (int a = 0; a < 2; ++a) {
    for (int b = 0; b < 2; ++b) {
      for (int c = 0; c < 2; ++c) {
        table.AppendRow(0,
                        {"a" + std::to_string(a), "b" + std::to_string(b),
                         "c" + std::to_string(c)},
                        {1.0});
      }
    }
  }
  const auto reg = ExplanationRegistry::Build(table, {0, 1, 2}, 3);
  CascadingAnalysts solver(reg);
  Rng rng(31);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<double> gamma(reg.num_explanations());
    for (auto& g : gamma) g = rng.Uniform(0.0, 10.0);
    const double exhaustive =
        BruteForceCascade(reg, gamma, kInvalidExplId, 3);
    EXPECT_NEAR(solver.TopM(gamma, 3).TotalScore(), exhaustive, 1e-9)
        << "trial " << trial;
  }
}

}  // namespace
}  // namespace tsexplain
