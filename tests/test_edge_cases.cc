// Edge-case and robustness tests across the stack: degenerate data shapes
// (flat, empty slices, minimal sizes), extreme parameters, and cache
// consistency invariants.

#include <gtest/gtest.h>

#include <cmath>

#include "src/common/rng.h"
#include "src/datagen/synthetic.h"
#include "src/pipeline/tsexplain.h"
#include "src/seg/ndcg.h"

namespace tsexplain {
namespace {

TEST(EdgeCases, CompletelyFlatRelation) {
  // Every slice constant: no explanation scores anywhere, every segment is
  // "trivially explained", all variances zero, and the pipeline must still
  // return a valid segmentation with empty top lists.
  Table table(Schema("t", {"cat"}, {"v"}));
  for (int t = 0; t < 12; ++t) table.AddTimeBucket(std::to_string(t));
  for (int t = 0; t < 12; ++t) {
    table.AppendRow(t, {"a"}, {5.0});
    table.AppendRow(t, {"b"}, {7.0});
  }
  TSExplainConfig config;
  config.measure = "v";
  config.explain_by_names = {"cat"};
  TSExplain engine(table, config);
  const TSExplainResult result = engine.Run();
  EXPECT_GE(result.chosen_k, 1);
  EXPECT_DOUBLE_EQ(result.segmentation.total_variance, 0.0);
  for (const SegmentExplanation& seg : result.segments) {
    EXPECT_TRUE(seg.top.empty());
  }
}

TEST(EdgeCases, MinimalThreeBucketSeries) {
  Table table(Schema("t", {"cat"}, {"v"}));
  for (int t = 0; t < 3; ++t) table.AddTimeBucket(std::to_string(t));
  for (int t = 0; t < 3; ++t) {
    table.AppendRow(t, {"a"}, {10.0 * t});
    table.AppendRow(t, {"b"}, {5.0});
  }
  TSExplainConfig config;
  config.measure = "v";
  config.explain_by_names = {"cat"};
  TSExplain engine(table, config);
  const TSExplainResult result = engine.Run();
  EXPECT_GE(result.chosen_k, 1);
  EXPECT_LE(result.chosen_k, 2);
  EXPECT_EQ(result.segmentation.cuts.front(), 0);
  EXPECT_EQ(result.segmentation.cuts.back(), 2);
}

TEST(EdgeCases, TopOneExplanationPerSegment) {
  SyntheticConfig sconfig;
  sconfig.length = 50;
  sconfig.seed = 5;
  sconfig.num_interior_cuts = 2;
  const SyntheticDataset ds = GenerateSynthetic(sconfig);
  TSExplainConfig config;
  config.measure = "value";
  config.explain_by_names = {"category"};
  config.max_order = 1;
  config.m = 1;  // minimal m
  config.fixed_k = 3;
  TSExplain engine(*ds.table, config);
  const TSExplainResult result = engine.Run();
  for (const SegmentExplanation& seg : result.segments) {
    EXPECT_LE(seg.top.size(), 1u);
  }
}

TEST(EdgeCases, LargeMClampsToAvailableExplanations) {
  SyntheticConfig sconfig;
  sconfig.length = 40;
  sconfig.seed = 6;
  sconfig.num_interior_cuts = 1;
  const SyntheticDataset ds = GenerateSynthetic(sconfig);
  TSExplainConfig config;
  config.measure = "value";
  config.explain_by_names = {"category"};
  config.max_order = 1;
  config.m = 50;  // far more than the 3 categories
  config.fixed_k = 2;
  TSExplain engine(*ds.table, config);
  const TSExplainResult result = engine.Run();
  for (const SegmentExplanation& seg : result.segments) {
    EXPECT_LE(seg.top.size(), 3u);  // only 3 non-overlapping cells exist
  }
}

TEST(EdgeCases, SingleRowPerBucket) {
  Table table(Schema("t", {"cat"}, {"v"}));
  Rng rng(8);
  for (int t = 0; t < 20; ++t) {
    table.AddTimeBucket(std::to_string(t));
    table.AppendRow(t, {"only"}, {rng.Uniform(0.0, 10.0)});
  }
  TSExplainConfig config;
  config.measure = "v";
  config.explain_by_names = {"cat"};
  TSExplain engine(table, config);
  const TSExplainResult result = engine.Run();  // must not crash
  EXPECT_GE(result.chosen_k, 1);
}

TEST(EdgeCases, BucketsWithNoRows) {
  // A middle bucket with zero rows: aggregates finalize to zero.
  Table table(Schema("t", {"cat"}, {"v"}));
  for (int t = 0; t < 10; ++t) table.AddTimeBucket(std::to_string(t));
  for (int t = 0; t < 10; ++t) {
    if (t == 4 || t == 5) continue;  // gap
    table.AppendRow(t, {"a"}, {10.0 + t});
  }
  TSExplainConfig config;
  config.measure = "v";
  config.explain_by_names = {"cat"};
  TSExplain engine(table, config);
  const TSExplainResult result = engine.Run();
  EXPECT_EQ(result.segmentation.cuts.back(), 9);
}

TEST(EdgeCases, NegativeMeasureValues) {
  // Profit-and-loss style data: slices may be negative; gammas remain
  // absolute and the pipeline stays well-formed.
  Table table(Schema("t", {"book"}, {"pnl"}));
  for (int t = 0; t < 16; ++t) table.AddTimeBucket(std::to_string(t));
  for (int t = 0; t < 16; ++t) {
    table.AppendRow(t, {"rates"}, {-100.0 - 10.0 * t});
    table.AppendRow(t, {"equities"}, {50.0 + (t < 8 ? 20.0 * t : 160.0)});
  }
  TSExplainConfig config;
  config.measure = "pnl";
  config.explain_by_names = {"book"};
  TSExplain engine(table, config);
  const TSExplainResult result = engine.Run();
  for (const SegmentExplanation& seg : result.segments) {
    for (const auto& item : seg.top) {
      EXPECT_GE(item.gamma, 0.0);
    }
  }
}

TEST(EdgeCases, IdcgCacheMatchesManualDcg) {
  SyntheticConfig sconfig;
  sconfig.length = 30;
  sconfig.seed = 11;
  sconfig.num_interior_cuts = 1;
  const SyntheticDataset ds = GenerateSynthetic(sconfig);
  const auto registry = ExplanationRegistry::Build(*ds.table, {0}, 1);
  const ExplanationCube cube(*ds.table, registry, AggregateFunction::kSum,
                             0);
  SegmentExplainer::Options options;
  options.m = 3;
  SegmentExplainer explainer(cube, registry, options);
  for (int a = 0; a < 29; a += 4) {
    for (int b = a + 1; b < 30; b += 5) {
      const TopExplanations& top = explainer.TopFor(a, b);
      double manual = 0.0;
      for (size_t r = 0; r < top.gammas.size(); ++r) {
        manual += top.gammas[r] / std::log2(static_cast<double>(r) + 2.0);
      }
      EXPECT_NEAR(top.idcg, manual, 1e-12);
    }
  }
}

TEST(EdgeCases, RestrictedCaMatchesMaskedCa) {
  // TopMRestricted must agree with the mask-based TopM on the same
  // candidate set (the sub-lattice reaches the same cascades).
  Table table(Schema("t", {"A", "B", "C"}, {"m"}));
  table.AddTimeBucket("0");
  Rng data_rng(3);
  for (int a = 0; a < 4; ++a) {
    for (int b = 0; b < 4; ++b) {
      for (int c = 0; c < 3; ++c) {
        table.AppendRow(0,
                        {"a" + std::to_string(a), "b" + std::to_string(b),
                         "c" + std::to_string(c)},
                        {1.0});
      }
    }
  }
  const auto registry = ExplanationRegistry::Build(table, {0, 1, 2}, 3);
  CascadingAnalysts solver(registry);
  Rng rng(17);
  for (int trial = 0; trial < 40; ++trial) {
    std::vector<double> gamma(registry.num_explanations());
    for (auto& g : gamma) g = rng.Uniform(0.0, 10.0);
    // A random candidate subset.
    std::vector<ExplId> candidates;
    std::vector<bool> mask(registry.num_explanations(), false);
    for (size_t e = 0; e < gamma.size(); ++e) {
      if (rng.NextBool(0.3)) {
        candidates.push_back(static_cast<ExplId>(e));
        mask[e] = true;
      }
    }
    if (candidates.empty()) continue;
    const TopExplanations restricted =
        solver.TopMRestricted(gamma, 3, candidates);
    const TopExplanations masked = solver.TopM(gamma, 3, &mask);
    EXPECT_NEAR(restricted.TotalScore(), masked.TotalScore(), 1e-9)
        << "trial " << trial;
    EXPECT_EQ(restricted.ids, masked.ids) << "trial " << trial;
    for (size_t q = 0; q < restricted.best.size(); ++q) {
      EXPECT_NEAR(restricted.best[q], masked.best[q], 1e-9);
    }
  }
}

TEST(EdgeCases, StepChangeIsolatedExactly) {
  // A single step at t = 14 -> 15: the optimal 3-segmentation isolates the
  // step object [14, 15] (flat / step / flat has total variance 0).
  Table table(Schema("t", {"cat"}, {"v"}));
  for (int t = 0; t < 30; ++t) table.AddTimeBucket(std::to_string(t));
  for (int t = 0; t < 30; ++t) {
    table.AppendRow(t, {"a"}, {t < 15 ? 10.0 : 1000.0});
    table.AppendRow(t, {"b"}, {20.0});
  }
  TSExplainConfig config;
  config.measure = "v";
  config.explain_by_names = {"cat"};
  config.fixed_k = 3;
  TSExplain engine(table, config);
  const TSExplainResult result = engine.Run();
  EXPECT_EQ(result.segmentation.cuts, (std::vector<int>{0, 14, 15, 29}));
  EXPECT_NEAR(result.segmentation.total_variance, 0.0, 1e-9);
  // The step segment is explained by cat=a rising.
  const SegmentExplanation& step = result.segments[1];
  ASSERT_FALSE(step.top.empty());
  EXPECT_EQ(step.top[0].description, "cat=a");
  EXPECT_EQ(step.top[0].tau, 1);
}

}  // namespace
}  // namespace tsexplain
