// Hostile-input limits for the NDJSON protocol (src/service/protocol.*):
// oversized fields, duplicate keys, non-UTF8 bytes smuggled through valid
// JSON, and register/load_cache/recover_session pointed at crafted or
// corrupt files. The contract under attack is always the same —
// connection-stays-alive: every request gets exactly one well-formed
// single-line JSON object back (ok:false + code on rejection), and the
// service keeps answering normal traffic afterwards. The fuzz harness
// fuzz/fuzz_protocol.cc explores this surface with coverage guidance;
// these tests pin the specific shapes it must never regress on.

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "src/common/json.h"
#include "src/service/explain_service.h"
#include "src/service/protocol.h"
#include "src/table/csv_reader.h"

namespace tsexplain {
namespace {

std::string TempPath(const std::string& tag) {
  const char* tmpdir = std::getenv("TMPDIR");
  static int counter = 0;
  return std::string(tmpdir && *tmpdir ? tmpdir : "/tmp") +
         "/tsx_hostile_" + tag + "_" + std::to_string(::getpid()) + "_" +
         std::to_string(++counter);
}

void WriteRawFile(const std::string& path, const std::string& bytes) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr) << path;
  ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), f), bytes.size());
  std::fclose(f);
}

class HostileProtocolTest : public ::testing::Test {
 protected:
  void SetUp() override {
    std::string error;
    CsvOptions options;
    options.time_column = "time";
    options.measure_columns = {"value"};
    ASSERT_TRUE(service_.registry().RegisterCsvText(
        "ds",
        "time,region,value\nd0,east,1\nd0,west,2\nd1,east,3\nd1,west,1\n"
        "d2,east,2\nd2,west,5\nd3,east,4\nd3,west,2\n",
        options, &error))
        << error;
  }

  // Transport loop in miniature: parse-or-parse-error, then Handle. Also
  // asserts the connection-alive contract on every response.
  std::string Roundtrip(const std::string& line) {
    JsonValue request;
    std::string parse_error;
    std::string response;
    if (ParseJson(line, &request, &parse_error)) {
      response = handler_.Handle(request);
    } else {
      response = handler_.MakeParseError(parse_error);
    }
    EXPECT_FALSE(response.empty());
    EXPECT_EQ(response.find('\n'), std::string::npos) << response;
    JsonValue parsed;
    std::string error;
    EXPECT_TRUE(ParseJson(response, &parsed, &error))
        << error << " in " << response.substr(0, 200);
    EXPECT_TRUE(parsed.IsObject()) << response.substr(0, 200);
    return response;
  }

  // The liveness probe run after each attack: normal traffic must still
  // be served.
  void ExpectStillServing() {
    const std::string ok = Roundtrip(
        R"({"op":"explain","id":99,"dataset":"ds","measure":"value",)"
        R"("explain_by":["region"]})");
    EXPECT_NE(ok.find("\"ok\":true"), std::string::npos) << ok;
  }

  ExplainService service_;
  ProtocolHandler handler_{service_};
};

TEST_F(HostileProtocolTest, OversizedFieldsGetStructuredErrors) {
  // A multi-megabyte dataset name: rejected (or at worst not found) —
  // never a crash, never a connection drop.
  const std::string huge_name(4u << 20, 'x');
  const std::string by_name = Roundtrip(
      R"({"op":"explain","id":1,"dataset":")" + huge_name +
      R"(","measure":"value","explain_by":["region"]})");
  EXPECT_NE(by_name.find("\"ok\":false"), std::string::npos);
  EXPECT_NE(by_name.find("\"code\":"), std::string::npos);

  // 100k explain_by entries: the dimension validator must reject this
  // without building a 100k-attribute cube.
  std::string many_dims = R"({"op":"explain","id":2,"dataset":"ds",)"
                          R"("measure":"value","explain_by":[)";
  for (int i = 0; i < 100000; ++i) {
    many_dims += i ? ",\"d\"" : "\"d\"";
  }
  many_dims += "]}";
  const std::string by_dims = Roundtrip(many_dims);
  EXPECT_NE(by_dims.find("\"ok\":false"), std::string::npos);

  // k far past any real segment count: the DP clamps it to the bucket
  // count — the response must succeed with a SMALL k, proving the
  // hostile value never sized an allocation.
  const std::string by_k = Roundtrip(
      R"({"op":"explain","id":3,"dataset":"ds","measure":"value",)"
      R"("explain_by":["region"],"k":1000000000})");
  JsonValue k_response;
  std::string k_error;
  ASSERT_TRUE(ParseJson(by_k, &k_response, &k_error));
  EXPECT_TRUE(k_response.GetBool("ok")) << by_k;
  const JsonValue* result = k_response.Find("result");
  ASSERT_NE(result, nullptr) << by_k;
  EXPECT_LE(result->GetInt("k", 0), 20) << by_k;

  // Negative counts are rejected up front with a structured error.
  const std::string by_neg = Roundtrip(
      R"({"op":"explain","id":4,"dataset":"ds","measure":"value",)"
      R"("explain_by":["region"],"max_k":-5})");
  EXPECT_NE(by_neg.find("\"ok\":false"), std::string::npos) << by_neg;
  EXPECT_NE(by_neg.find("\"code\":\"invalid_query\""), std::string::npos)
      << by_neg;

  ExpectStillServing();
}

TEST_F(HostileProtocolTest, DuplicateKeysAreDeterministicNotCrashy) {
  // Duplicate "op" and duplicate "dataset": RFC 8259 leaves the behavior
  // open; the handler must pick one deterministically and answer once.
  const std::string line =
      R"({"op":"explain","op":"stats","id":1,"dataset":"ds",)"
      R"("dataset":"ghost","measure":"value","explain_by":["region"]})";
  const std::string dup = Roundtrip(line);
  // First key wins in this handler: the request runs as explain on "ds"
  // (not stats, not the nonexistent "ghost") — and does so on every
  // repetition, so duplicate keys cannot flip the dispatched op between
  // retries.
  EXPECT_NE(dup.find("\"op\":\"explain\""), std::string::npos) << dup;
  EXPECT_NE(dup.find("\"dataset\":\"ds\""), std::string::npos) << dup;
  EXPECT_NE(dup.find("\"ok\":true"), std::string::npos) << dup;
  const std::string again = Roundtrip(line);
  EXPECT_NE(again.find("\"op\":\"explain\""), std::string::npos) << again;
  EXPECT_NE(again.find("\"dataset\":\"ds\""), std::string::npos) << again;
  ExpectStillServing();
}

TEST_F(HostileProtocolTest, NonUtf8BytesInValidJsonStayContained) {
  // Raw 0xFF/0xC0 bytes inside JSON strings: the parser is byte-oriented
  // so the document may parse; whatever happens the response is one
  // well-formed line and the service survives.
  std::string line = R"({"op":"explain","id":1,"dataset":")";
  line += '\xff';
  line += '\xc0';
  line += '\x80';
  line += R"(","measure":"value","explain_by":["region"]})";
  const std::string response = Roundtrip(line);
  EXPECT_NE(response.find("\"ok\":false"), std::string::npos);

  // Non-UTF8 in a registered CSV body: either rejected at registration
  // or registered verbatim — not a crash either way.
  std::string csv_line = R"({"op":"register","id":2,"name":"bin","csv":)";
  csv_line += R"("time,region,value\nd0,e)";
  csv_line += '\xfe';
  csv_line += R"(,1\n","time_column":"time","measures":["value"]})";
  Roundtrip(csv_line);
  ExpectStillServing();
}

TEST_F(HostileProtocolTest, LoadCacheOnCraftedFilesIsStructured) {
  // Arbitrary bytes, a truncated frame, and a wrong-magic file — the
  // exact classes the snapshot fuzzers mutate. Each must come back as a
  // structured error with the connection alive.
  const std::string garbage = TempPath("garbage");
  WriteRawFile(garbage, "this is not a cache snapshot");
  const std::string r1 = Roundtrip(
      R"({"op":"load_cache","id":1,"path":")" + garbage + R"("})");
  EXPECT_NE(r1.find("\"ok\":false"), std::string::npos) << r1;
  EXPECT_NE(r1.find("\"code\":"), std::string::npos) << r1;
  std::remove(garbage.c_str());

  // A real snapshot truncated mid-payload.
  const std::string warm = TempPath("warm");
  const std::string save = Roundtrip(
      R"({"op":"save_cache","id":2,"path":")" + warm + R"("})");
  EXPECT_NE(save.find("\"ok\":true"), std::string::npos) << save;
  std::string bytes;
  {
    std::FILE* f = std::fopen(warm.c_str(), "rb");
    ASSERT_NE(f, nullptr);
    char buf[4096];
    size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
      bytes.append(buf, n);
    }
    std::fclose(f);
  }
  ASSERT_GT(bytes.size(), 4u);
  WriteRawFile(warm, bytes.substr(0, bytes.size() - 3));
  const std::string r2 = Roundtrip(
      R"({"op":"load_cache","id":3,"path":")" + warm + R"("})");
  EXPECT_NE(r2.find("\"ok\":false"), std::string::npos) << r2;
  std::remove(warm.c_str());

  // recover_session on a non-log file: structured rejection.
  const std::string fake_log = TempPath("fakelog");
  WriteRawFile(fake_log, std::string(64, '\xab'));
  const std::string r3 = Roundtrip(
      R"({"op":"recover_session","id":4,"path":")" + fake_log + R"("})");
  EXPECT_NE(r3.find("\"ok\":false"), std::string::npos) << r3;
  std::remove(fake_log.c_str());

  ExpectStillServing();
}

TEST_F(HostileProtocolTest, RegisterFromCraftedCsvPathIsStructured) {
  // csv_path pointed at binary garbage (a "snapshot-looking" file): the
  // CSV reader must reject it structurally, not crash or hang.
  const std::string binary = TempPath("binary");
  std::string bytes = "TSXSNAP1";
  for (int i = 0; i < 1024; ++i) bytes.push_back(static_cast<char>(i));
  WriteRawFile(binary, bytes);
  const std::string response = Roundtrip(
      R"({"op":"register","id":1,"name":"b","csv_path":")" + binary +
      R"(","time_column":"time","measures":["value"]})");
  EXPECT_NE(response.find("\"ok\":false"), std::string::npos) << response;
  std::remove(binary.c_str());
  ExpectStillServing();
}

TEST_F(HostileProtocolTest, StructurallyWrongRequestsAnswerOnce) {
  // Non-object roots, wrong-typed fields, null op, array op.
  for (const std::string& line : {
           std::string("[1,2,3]"),
           std::string("\"just a string\""),
           std::string("{\"op\":null,\"id\":1}"),
           std::string("{\"op\":[\"explain\"],\"id\":2}"),
           std::string("{\"op\":\"append\",\"id\":3,\"session\":\"x\","
                       "\"rows\":7}"),
           std::string("{\"op\":\"explain\",\"id\":4,\"dataset\":\"ds\","
                       "\"measure\":42,\"explain_by\":\"region\"}"),
       }) {
    const std::string response = Roundtrip(line);
    EXPECT_NE(response.find("\"ok\":false"), std::string::npos)
        << line << " -> " << response;
  }
  ExpectStillServing();
}

}  // namespace
}  // namespace tsexplain
