// Failure-injection / fuzz suites: random relations through the full
// pipeline, mutated CSV inputs through the loader. Nothing here asserts
// specific answers -- only that invariants hold and errors are reported
// instead of crashing.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>

#include "src/common/rng.h"
#include "src/eval/segmentation_distance.h"
#include "src/pipeline/tsexplain.h"
#include "src/table/csv_reader.h"

namespace tsexplain {
namespace {

// ---------------------------------------------------------------------
// Pipeline fuzz: random small relations with random shapes and configs.
class PipelineFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PipelineFuzz, InvariantsHoldOnRandomRelations) {
  Rng rng(GetParam());
  const int n = static_cast<int>(rng.UniformInt(3, 40));
  const int num_dims = static_cast<int>(rng.UniformInt(1, 3));
  std::vector<std::string> dim_names;
  for (int d = 0; d < num_dims; ++d) {
    dim_names.push_back("d" + std::to_string(d));
  }
  Table table(Schema("t", dim_names, {"v"}));
  for (int t = 0; t < n; ++t) table.AddTimeBucket(std::to_string(t));
  const int rows_per_bucket = static_cast<int>(rng.UniformInt(1, 8));
  for (int t = 0; t < n; ++t) {
    for (int r = 0; r < rows_per_bucket; ++r) {
      std::vector<std::string> dims;
      for (int d = 0; d < num_dims; ++d) {
        dims.push_back("v" + std::to_string(rng.UniformInt(0, 3)));
      }
      // Mix of magnitudes, zeros, and negatives.
      double value = rng.Uniform(-5.0, 50.0);
      if (rng.NextBool(0.1)) value = 0.0;
      table.AppendRow(t, dims, {value});
    }
  }

  TSExplainConfig config;
  config.measure = "v";
  config.explain_by_names = dim_names;
  config.max_order = static_cast<int>(rng.UniformInt(1, num_dims));
  config.m = static_cast<int>(rng.UniformInt(1, 4));
  config.use_filter = rng.NextBool();
  config.use_guess_verify = rng.NextBool();
  config.use_sketch = rng.NextBool();
  config.smooth_window = rng.NextBool(0.3) ? 3 : 1;
  const int aggregate_pick = static_cast<int>(rng.UniformInt(0, 2));
  config.aggregate = aggregate_pick == 0 ? AggregateFunction::kSum
                     : aggregate_pick == 1 ? AggregateFunction::kCount
                                           : AggregateFunction::kAvg;
  if (config.aggregate == AggregateFunction::kCount) config.measure.clear();

  TSExplain engine(table, config);
  const TSExplainResult result = engine.Run();

  // Invariants: valid scheme, coverage, ordering, non-overlap, ranges.
  ASSERT_GE(result.segmentation.cuts.size(), 2u);
  EXPECT_EQ(result.segmentation.cuts.front(), 0);
  EXPECT_EQ(result.segmentation.cuts.back(), n - 1);
  EXPECT_TRUE(std::is_sorted(result.segmentation.cuts.begin(),
                             result.segmentation.cuts.end()));
  EXPECT_GE(result.segmentation.total_variance, -1e-9);
  EXPECT_EQ(result.chosen_k, result.segmentation.num_segments());
  ASSERT_EQ(result.segments.size(),
            static_cast<size_t>(result.chosen_k));
  for (const SegmentExplanation& seg : result.segments) {
    EXPECT_LT(seg.begin, seg.end);
    EXPECT_GE(seg.variance, 0.0);
    EXPECT_LE(seg.variance, 1.0 + 1e-9);
    EXPECT_LE(seg.top.size(), static_cast<size_t>(config.m));
    for (size_t i = 0; i < seg.top.size(); ++i) {
      EXPECT_GT(seg.top[i].gamma, 0.0);
      for (size_t j = i + 1; j < seg.top.size(); ++j) {
        EXPECT_FALSE(
            engine.registry()
                .explanation(seg.top[i].id)
                .OverlapsWith(engine.registry().explanation(seg.top[j].id)));
      }
    }
  }
  // The K-variance curve is finite-then-infeasible and non-negative.
  // NOTE: it is NOT guaranteed monotone -- splitting a segment replaces
  // its centroid with two new ones whose top explanations can describe
  // the objects WORSE under heavy noise (the paper's "decreases
  // monotonically" is stated as intuition; see DESIGN.md).
  const auto& curve = result.k_variance_curve;
  bool seen_infeasible = false;
  for (double v : curve) {
    if (std::isinf(v)) {
      seen_infeasible = true;
    } else {
      EXPECT_FALSE(seen_infeasible) << "finite after infeasible";
      EXPECT_GE(v, -1e-9);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PipelineFuzz,
                         ::testing::Range<uint64_t>(1, 25));

// ---------------------------------------------------------------------
// CSV fuzz: structured corruptions must produce errors, never crashes.
class CsvFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CsvFuzz, MutatedInputNeverCrashes) {
  Rng rng(GetParam());
  const std::string base =
      "t,region,units\n"
      "0,NA,10\n"
      "1,NA,12\n"
      "0,EU,7\n"
      "1,EU,9\n";
  std::string mutated = base;
  const int mutations = static_cast<int>(rng.UniformInt(1, 6));
  for (int i = 0; i < mutations; ++i) {
    const size_t pos =
        static_cast<size_t>(rng.UniformInt(0, static_cast<int64_t>(
                                                  mutated.size() - 1)));
    switch (rng.UniformInt(0, 3)) {
      case 0:
        mutated[pos] = static_cast<char>(rng.UniformInt(32, 126));
        break;
      case 1:
        mutated.insert(pos, 1, ',');
        break;
      case 2:
        mutated.insert(pos, 1, '"');
        break;
      default:
        mutated.erase(pos, 1);
        break;
    }
  }
  CsvOptions options;
  options.time_column = "t";
  options.measure_columns = {"units"};
  const CsvResult result = ReadCsvFromString(mutated, options);
  // Either a parse error with a message, or a structurally valid table.
  if (!result.ok()) {
    EXPECT_FALSE(result.error.empty());
  } else {
    EXPECT_GT(result.rows, 0u);
    EXPECT_GE(result.table->num_time_buckets(), 1u);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CsvFuzz,
                         ::testing::Range<uint64_t>(100, 140));

// ---------------------------------------------------------------------
// Metric fuzz: precision/recall helper on random cut sets.
TEST(CutPrecisionRecallTest, KnownCases) {
  const std::vector<int> gt{0, 20, 50, 99};
  EXPECT_DOUBLE_EQ(EvaluateCutPrecisionRecall(gt, gt, 0).F1(), 1.0);
  const CutPrecisionRecall near =
      EvaluateCutPrecisionRecall({0, 22, 48, 99}, gt, 3);
  EXPECT_DOUBLE_EQ(near.precision, 1.0);
  EXPECT_DOUBLE_EQ(near.recall, 1.0);
  const CutPrecisionRecall miss =
      EvaluateCutPrecisionRecall({0, 70, 99}, gt, 3);
  EXPECT_DOUBLE_EQ(miss.precision, 0.0);
  EXPECT_DOUBLE_EQ(miss.recall, 0.0);
  // Extra predicted cut: precision drops, recall stays.
  const CutPrecisionRecall extra =
      EvaluateCutPrecisionRecall({0, 20, 50, 70, 99}, gt, 2);
  EXPECT_NEAR(extra.precision, 2.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(extra.recall, 1.0);
}

TEST(CutPrecisionRecallTest, OneToOneMatching) {
  // Two predicted cuts near ONE ground-truth cut: only one may match.
  const CutPrecisionRecall pr =
      EvaluateCutPrecisionRecall({0, 49, 51, 99}, {0, 50, 99}, 2);
  EXPECT_EQ(pr.matched, 1);
  EXPECT_DOUBLE_EQ(pr.precision, 0.5);
  EXPECT_DOUBLE_EQ(pr.recall, 1.0);
}

std::vector<int> RandomSegmentationForTest(Rng& rng) {
  std::vector<int> cuts{0};
  const int k = static_cast<int>(rng.UniformInt(0, 5));
  std::vector<int> interior;
  for (int i = 0; i < k; ++i) {
    interior.push_back(static_cast<int>(rng.UniformInt(1, 98)));
  }
  std::sort(interior.begin(), interior.end());
  interior.erase(std::unique(interior.begin(), interior.end()),
                 interior.end());
  cuts.insert(cuts.end(), interior.begin(), interior.end());
  cuts.push_back(99);
  return cuts;
}

TEST(CutPrecisionRecallTest, RandomizedBounds) {
  Rng rng(55);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<int> a = RandomSegmentationForTest(rng);
    std::vector<int> b = RandomSegmentationForTest(rng);
    const CutPrecisionRecall pr = EvaluateCutPrecisionRecall(a, b, 5);
    EXPECT_GE(pr.precision, 0.0);
    EXPECT_LE(pr.precision, 1.0);
    EXPECT_GE(pr.recall, 0.0);
    EXPECT_LE(pr.recall, 1.0);
    EXPECT_GE(pr.F1(), 0.0);
    EXPECT_LE(pr.F1(), 1.0);
  }
}

}  // namespace
}  // namespace tsexplain
