// Unit tests for the sketching optimization (O2, section 5.3.2).

#include <gtest/gtest.h>

#include <algorithm>

#include "src/datagen/synthetic.h"
#include "src/seg/sketch.h"

namespace tsexplain {
namespace {

TEST(SketchParamsTest, PaperDefaults) {
  // n = 400: L = min(0.05*400, 20) = 20, |S| = 3*400/20 = 60.
  const SketchParams p = DeriveSketchParams(400);
  EXPECT_EQ(p.max_segment_len, 20);
  EXPECT_EQ(p.target_size, 60);
}

TEST(SketchParamsTest, SmallNUsesFivePercent) {
  // n = 100: L = min(5, 20) = 5, |S| = 60.
  const SketchParams p = DeriveSketchParams(100);
  EXPECT_EQ(p.max_segment_len, 5);
  EXPECT_EQ(p.target_size, 60);
}

TEST(SketchParamsTest, FeasibilityEnforced) {
  const SketchParams p = DeriveSketchParams(50);
  // Requested or derived (L, K) must satisfy K*L >= n-1 and K <= n-1.
  EXPECT_LE(p.target_size, 49);
  EXPECT_GE(static_cast<long long>(p.target_size) * p.max_segment_len, 49);
}

TEST(SketchParamsTest, ExplicitOverridesRespected) {
  SketchParams requested;
  requested.max_segment_len = 10;
  requested.target_size = 40;
  const SketchParams p = DeriveSketchParams(300, requested);
  EXPECT_EQ(p.max_segment_len, 10);
  EXPECT_EQ(p.target_size, 40);
}

class SketchTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SyntheticConfig config;
    config.length = 120;
    config.snr_db = 45.0;
    config.seed = 99;
    ds_ = GenerateSynthetic(config);
    registry_ = ExplanationRegistry::Build(*ds_.table, {0}, 1);
    cube_ = std::make_unique<ExplanationCube>(*ds_.table, registry_,
                                              AggregateFunction::kSum, 0);
    SegmentExplainer::Options options;
    options.m = 3;
    explainer_ =
        std::make_unique<SegmentExplainer>(*cube_, registry_, options);
    calc_ = std::make_unique<VarianceCalculator>(*explainer_,
                                                 VarianceMetric::kTse);
  }

  SyntheticDataset ds_;
  ExplanationRegistry registry_;
  std::unique_ptr<ExplanationCube> cube_;
  std::unique_ptr<SegmentExplainer> explainer_;
  std::unique_ptr<VarianceCalculator> calc_;
};

TEST_F(SketchTest, PositionsAreValidAndSized) {
  const SketchResult sketch = SelectSketch(*calc_);
  ASSERT_GE(sketch.positions.size(), 2u);
  EXPECT_EQ(sketch.positions.front(), 0);
  EXPECT_EQ(sketch.positions.back(), 119);
  EXPECT_TRUE(std::is_sorted(sketch.positions.begin(),
                             sketch.positions.end()));
  // K segments -> K+1 positions; much smaller than n.
  EXPECT_EQ(static_cast<int>(sketch.positions.size()),
            sketch.target_size + 1);
  EXPECT_LT(sketch.positions.size(), 120u);
  // Adjacent positions at most L apart (phase I constraint).
  for (size_t i = 1; i < sketch.positions.size(); ++i) {
    EXPECT_LE(sketch.positions[i] - sketch.positions[i - 1],
              sketch.max_segment_len);
  }
}

TEST_F(SketchTest, SketchKeepsGroundTruthCutsNearby) {
  // Every ground-truth cut should have a sketch position within a small
  // tolerance (the sketch must not erase true boundaries).
  const SketchResult sketch = SelectSketch(*calc_);
  for (size_t i = 1; i + 1 < ds_.ground_truth_cuts.size(); ++i) {
    const int cut = ds_.ground_truth_cuts[i];
    int best = 1 << 30;
    for (int p : sketch.positions) best = std::min(best, std::abs(p - cut));
    EXPECT_LE(best, 3) << "ground-truth cut " << cut;
  }
}

TEST_F(SketchTest, DegenerateTargetTakesAllPoints) {
  SketchParams params;
  params.max_segment_len = 1;  // forces |S| = 3n >= n-1
  const SketchResult sketch = SelectSketch(*calc_, params);
  EXPECT_EQ(sketch.positions.size(), 120u);
}

}  // namespace
}  // namespace tsexplain
