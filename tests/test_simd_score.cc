// Bit-identity contract of the vectorized ScoreAll kernels
// (src/cube/score_kernels.h): for every AggregateFunction x DiffMetricKind
// pair, every stream length (including odd tails), and every guard-firing
// input, the AVX2 path must produce byte-identical doubles to the scalar
// reference — and the cube-level batch scorer must equal per-candidate
// Score() under any active mask. On machines without AVX2 (or builds with
// TSEXPLAIN_SIMD=OFF) the vector cases skip; the scalar/cube properties
// still run.

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <vector>

#include "src/cube/explanation_cube.h"
#include "src/cube/score_kernels.h"
#include "src/cube/support_filter.h"
#include "src/diff/explanation_registry.h"
#include "src/table/group_by.h"

namespace tsexplain {
namespace {

constexpr AggregateFunction kAggs[] = {AggregateFunction::kSum,
                                       AggregateFunction::kCount,
                                       AggregateFunction::kAvg};
constexpr DiffMetricKind kKinds[] = {DiffMetricKind::kAbsoluteChange,
                                     DiffMetricKind::kRelativeChange,
                                     DiffMetricKind::kRiskRatio};

// Deterministic value stream (no std::random: reproducible everywhere).
double Lcg(uint64_t& state) {
  state = state * 6364136223846793005ull + 1442695040888963407ull;
  // Map to a signed range with a broad magnitude spread.
  return (static_cast<double>((state >> 11) % 2000001) - 1000000.0) / 997.0;
}

// Candidate streams exercising every kernel branch: generic values,
// complements whose count hits exactly zero (kAvg finalize guard),
// slices reproducing the whole delta (contribution 0), slice_base == 0
// (risk-ratio per-lane guard), and huge ratios (the cap).
struct Streams {
  std::vector<double> test_sums, test_counts, control_sums, control_counts;
};

Streams MakeStreams(size_t epsilon, const AggState& ot, const AggState& oc,
                    uint64_t seed) {
  Streams s;
  s.test_sums.resize(epsilon);
  s.test_counts.resize(epsilon);
  s.control_sums.resize(epsilon);
  s.control_counts.resize(epsilon);
  uint64_t state = seed;
  for (size_t e = 0; e < epsilon; ++e) {
    switch (e % 7) {
      case 0:  // slice == whole: the complement is the empty aggregate
        s.test_sums[e] = ot.sum;
        s.test_counts[e] = ot.count;
        s.control_sums[e] = oc.sum;
        s.control_counts[e] = oc.count;
        break;
      case 1:  // empty slice: contribution exactly 0
        s.test_sums[e] = 0.0;
        s.test_counts[e] = 0.0;
        s.control_sums[e] = 0.0;
        s.control_counts[e] = 0.0;
        break;
      case 2:  // identical control slice and complement: slice_base == 0
        s.test_sums[e] = Lcg(state);
        s.test_counts[e] = 3.0;
        s.control_sums[e] = oc.sum / 2.0;
        s.control_counts[e] = oc.count / 2.0;
        break;
      case 3:  // tiny denominators: ratios blow past the cap
        s.test_sums[e] = Lcg(state) * 1e6;
        s.test_counts[e] = 1.0;
        s.control_sums[e] = 1e-9;
        s.control_counts[e] = 1.0;
        break;
      default:
        s.test_sums[e] = Lcg(state);
        s.test_counts[e] = static_cast<double>((state >> 7) % 9);
        s.control_sums[e] = Lcg(state);
        s.control_counts[e] = static_cast<double>((state >> 9) % 9);
        break;
    }
  }
  return s;
}

ScoreAllInputs MakeInputs(AggregateFunction f, DiffMetricKind kind,
                          const AggState& ot, const AggState& oc,
                          const Streams& s) {
  ScoreAllInputs in;
  in.f = f;
  in.kind = kind;
  in.overall_test = ot;
  in.overall_control = oc;
  in.f_test = ot.Finalize(f);
  in.f_control = oc.Finalize(f);
  in.test_sums = s.test_sums.data();
  in.test_counts = s.test_counts.data();
  in.control_sums = s.control_sums.data();
  in.control_counts = s.control_counts.data();
  in.epsilon = s.test_sums.size();
  return in;
}

void ExpectBitIdentical(const std::vector<double>& a,
                        const std::vector<double>& b) {
  ASSERT_EQ(a.size(), b.size());
  if (a.empty()) return;
  // memcmp, not ==: NaN payloads and signed zeros must match too.
  EXPECT_EQ(std::memcmp(a.data(), b.data(), a.size() * sizeof(double)), 0);
}

TEST(SimdScore, Avx2MatchesScalarBitForBitEverywhere) {
  if (!ScoreAllAvx2(ScoreAllInputs{}, nullptr)) {
    GTEST_SKIP() << "AVX2 unavailable (CPU or build); scalar-only dispatch";
  }
  const AggState ot{812.5, 96.0};
  const AggState oc{-443.25, 80.0};
  // Lengths straddling the 4-lane width: pure tails, exact multiples, and
  // a large sweep.
  for (size_t epsilon : {1u, 2u, 3u, 4u, 5u, 7u, 8u, 64u, 67u, 1001u}) {
    const Streams s = MakeStreams(epsilon, ot, oc, /*seed=*/epsilon * 31 + 7);
    for (AggregateFunction f : kAggs) {
      for (DiffMetricKind kind : kKinds) {
        const ScoreAllInputs in = MakeInputs(f, kind, ot, oc, s);
        std::vector<double> scalar(epsilon, -1.0);
        std::vector<double> vectorized(epsilon, -2.0);
        ScoreAllScalar(in, scalar.data());
        ASSERT_TRUE(ScoreAllAvx2(in, vectorized.data()));
        SCOPED_TRACE(testing::Message()
                     << "f=" << static_cast<int>(f)
                     << " kind=" << static_cast<int>(kind)
                     << " epsilon=" << epsilon);
        ExpectBitIdentical(scalar, vectorized);
      }
    }
  }
}

TEST(SimdScore, UniformGuardsZeroFillIdentically) {
  if (!ScoreAllAvx2(ScoreAllInputs{}, nullptr)) {
    GTEST_SKIP() << "AVX2 unavailable (CPU or build); scalar-only dispatch";
  }
  // delta == 0 (relative-change guard) and f_control == 0 (risk-ratio
  // overall_rate guard): the scalar path zeroes the whole sweep.
  const AggState equal{55.0, 11.0};
  const AggState zero_control{0.0, 0.0};
  const Streams s = MakeStreams(37, equal, equal, /*seed=*/99);
  for (AggregateFunction f : kAggs) {
    for (const AggState& oc : {equal, zero_control}) {
      for (DiffMetricKind kind :
           {DiffMetricKind::kRelativeChange, DiffMetricKind::kRiskRatio}) {
        const ScoreAllInputs in = MakeInputs(f, kind, equal, oc, s);
        std::vector<double> scalar(37), vectorized(37);
        ScoreAllScalar(in, scalar.data());
        ASSERT_TRUE(ScoreAllAvx2(in, vectorized.data()));
        ExpectBitIdentical(scalar, vectorized);
      }
    }
  }
}

TEST(SimdScore, AutoDispatchMatchesScalar) {
  // Whatever path ScoreAllAuto takes (AVX2, forced scalar, non-x86), the
  // output contract is the scalar reference, bit for bit.
  const AggState ot{321.0, 40.0};
  const AggState oc{123.0, 32.0};
  const Streams s = MakeStreams(129, ot, oc, /*seed=*/5);
  for (AggregateFunction f : kAggs) {
    for (DiffMetricKind kind : kKinds) {
      const ScoreAllInputs in = MakeInputs(f, kind, ot, oc, s);
      std::vector<double> scalar(129), automatic(129);
      ScoreAllScalar(in, scalar.data());
      ScoreAllAuto(in, automatic.data());
      ExpectBitIdentical(scalar, automatic);
    }
  }
}

// --- Cube level ------------------------------------------------------------

Table MakeTable() {
  Table table(Schema("date", {"state", "age"}, {"cases"}));
  for (const char* d : {"d0", "d1", "d2", "d3", "d4"}) table.AddTimeBucket(d);
  const double ny_young[] = {10, 20, 40, 80, 160};
  const double ny_old[] = {5, 5, 6, 7, 8};
  const double ca_young[] = {8, 7, 6, 5, 4};
  const double ca_old[] = {1, 2, 3, 4, 5};
  for (int t = 0; t < 5; ++t) {
    table.AppendRow(t, {"NY", "young"}, {ny_young[t]});
    table.AppendRow(t, {"NY", "old"}, {ny_old[t]});
    table.AppendRow(t, {"CA", "young"}, {ca_young[t]});
    table.AppendRow(t, {"CA", "old"}, {ca_old[t]});
  }
  return table;
}

TEST(SimdScore, CubeScoreAllEqualsPerCandidateScoreUnderMasks) {
  const Table t = MakeTable();
  const auto reg = ExplanationRegistry::Build(t, {0, 1}, 2);
  for (AggregateFunction f : kAggs) {
    const ExplanationCube cube(t, reg, f, f == AggregateFunction::kCount
                                               ? -1
                                               : 0);
    const size_t epsilon = cube.num_explanations();
    // No mask, an alternating mask, and the support filter's mask.
    std::vector<bool> alternating(epsilon);
    for (size_t e = 0; e < epsilon; ++e) alternating[e] = (e % 3 != 1);
    const std::vector<bool> supported = ComputeSupportFilter(cube, 0.05);
    const std::vector<const std::vector<bool>*> masks = {
        nullptr, &alternating, &supported};
    for (DiffMetricKind kind : kKinds) {
      for (const std::vector<bool>* active : masks) {
        std::vector<double> batch(epsilon, -1.0);
        cube.ScoreAll(kind, /*t_control=*/0, /*t_test=*/4, active, &batch);
        for (size_t e = 0; e < epsilon; ++e) {
          if (active != nullptr && !(*active)[e]) {
            EXPECT_EQ(batch[e], 0.0);
            continue;
          }
          const DiffScore want =
              cube.Score(kind, static_cast<ExplId>(e), 0, 4);
          // Bit identity, not tolerance: ScoreAll documents itself as
          // exactly Score per candidate.
          EXPECT_EQ(std::memcmp(&batch[e], &want.gamma, sizeof(double)), 0)
              << "e=" << e << " kind=" << static_cast<int>(kind);
        }
      }
    }
  }
}

}  // namespace
}  // namespace tsexplain
