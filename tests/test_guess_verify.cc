// Unit tests for guess-and-verify (O1): must return EXACTLY the plain CA
// result (Eq. 12 is a sufficient optimality condition).

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/diff/guess_verify.h"

namespace tsexplain {
namespace {

Table MakeTable(int a_card, int b_card) {
  Table table(Schema("t", {"A", "B"}, {"m"}));
  table.AddTimeBucket("0");
  for (int a = 0; a < a_card; ++a) {
    for (int b = 0; b < b_card; ++b) {
      table.AppendRow(0, {"a" + std::to_string(a), "b" + std::to_string(b)},
                      {1.0});
    }
  }
  return table;
}

TEST(GuessVerify, MatchesPlainCaOnRandomInstances) {
  const Table t = MakeTable(8, 6);
  const auto reg = ExplanationRegistry::Build(t, {0, 1}, 2);
  CascadingAnalysts plain(reg);
  CascadingAnalysts optimized(reg);
  Rng rng(101);
  for (int trial = 0; trial < 60; ++trial) {
    std::vector<double> gamma(reg.num_explanations());
    for (auto& g : gamma) g = rng.Uniform(0.0, 100.0);
    const TopExplanations expected = plain.TopM(gamma, 3);
    // Tiny initial guess to force several verification rounds.
    const TopExplanations actual =
        GuessVerifyTopM(optimized, gamma, 3, nullptr, /*initial_guess=*/2);
    EXPECT_NEAR(actual.TotalScore(), expected.TotalScore(), 1e-9)
        << "trial " << trial;
    EXPECT_EQ(actual.ids, expected.ids) << "trial " << trial;
  }
}

TEST(GuessVerify, HeavyTailTerminatesEarly) {
  // One dominant explanation and a sea of negligible ones: the first guess
  // must already verify.
  const Table t = MakeTable(20, 5);
  const auto reg = ExplanationRegistry::Build(t, {0, 1}, 2);
  CascadingAnalysts ca(reg);
  std::vector<double> gamma(reg.num_explanations(), 0.001);
  gamma[0] = 1000.0;
  gamma[1] = 900.0;
  gamma[2] = 800.0;
  GuessVerifyStats stats;
  const TopExplanations top =
      GuessVerifyTopM(ca, gamma, 3, nullptr, 30, &stats);
  EXPECT_EQ(stats.iterations, 1);
  EXPECT_GT(top.TotalScore(), 0.0);
}

TEST(GuessVerify, UniformScoresForceGrowth) {
  // Near-uniform positive scores make Eq. 12 hard to satisfy with a tiny
  // prefix, forcing doubling rounds.
  const Table t = MakeTable(10, 6);
  const auto reg = ExplanationRegistry::Build(t, {0, 1}, 2);
  CascadingAnalysts ca(reg);
  Rng rng(7);
  std::vector<double> gamma(reg.num_explanations());
  for (auto& g : gamma) g = 10.0 + rng.Uniform(0.0, 0.01);
  GuessVerifyStats stats;
  const TopExplanations viaGv =
      GuessVerifyTopM(ca, gamma, 3, nullptr, /*initial_guess=*/2, &stats);
  EXPECT_GT(stats.iterations, 1);
  CascadingAnalysts plain(reg);
  EXPECT_NEAR(viaGv.TotalScore(), plain.TopM(gamma, 3).TotalScore(), 1e-9);
}

TEST(GuessVerify, RespectsSelectableMask) {
  const Table t = MakeTable(6, 4);
  const auto reg = ExplanationRegistry::Build(t, {0, 1}, 2);
  CascadingAnalysts ca(reg);
  Rng rng(3);
  std::vector<double> gamma(reg.num_explanations());
  for (auto& g : gamma) g = rng.Uniform(0.0, 10.0);
  std::vector<bool> mask(reg.num_explanations(), false);
  for (size_t e = 0; e < mask.size(); e += 2) mask[e] = true;

  CascadingAnalysts plain(reg);
  const TopExplanations expected = plain.TopM(gamma, 3, &mask);
  const TopExplanations actual = GuessVerifyTopM(ca, gamma, 3, &mask, 4);
  EXPECT_NEAR(actual.TotalScore(), expected.TotalScore(), 1e-9);
  for (ExplId id : actual.ids) {
    EXPECT_TRUE(mask[static_cast<size_t>(id)]);
  }
}

TEST(GuessVerify, AllZeroScoresReturnEmpty) {
  const Table t = MakeTable(4, 3);
  const auto reg = ExplanationRegistry::Build(t, {0, 1}, 2);
  CascadingAnalysts ca(reg);
  GuessVerifyStats stats;
  const TopExplanations top = GuessVerifyTopM(
      ca, std::vector<double>(reg.num_explanations(), 0.0), 3, nullptr, 30,
      &stats);
  EXPECT_TRUE(top.ids.empty());
  EXPECT_DOUBLE_EQ(top.TotalScore(), 0.0);
}

TEST(GuessVerify, GuessLargerThanCandidatesIsExact) {
  const Table t = MakeTable(3, 2);
  const auto reg = ExplanationRegistry::Build(t, {0, 1}, 2);
  CascadingAnalysts ca(reg);
  std::vector<double> gamma(reg.num_explanations(), 1.0);
  GuessVerifyStats stats;
  GuessVerifyTopM(ca, gamma, 2, nullptr, 10000, &stats);
  EXPECT_TRUE(stats.exact_fallback);
  EXPECT_EQ(stats.iterations, 1);
}

}  // namespace
}  // namespace tsexplain
