// Unit tests for within-segment variance (Eq. 7, Eq. 10) and the variance
// table used by the DP.

#include <gtest/gtest.h>

#include <cmath>

#include "src/datagen/synthetic.h"
#include "src/seg/variance.h"
#include "src/seg/variance_table.h"

namespace tsexplain {
namespace {

class VarianceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Two clean regimes: a1 drives [0,5], a2 drives [5,10].
    std::vector<std::vector<double>> series(3, std::vector<double>(11));
    for (int t = 0; t <= 10; ++t) {
      series[0][static_cast<size_t>(t)] = t <= 5 ? 100.0 + 20.0 * t : 200.0;
      series[1][static_cast<size_t>(t)] =
          t <= 5 ? 50.0 : 50.0 + 15.0 * (t - 5);
      series[2][static_cast<size_t>(t)] = 80.0;
    }
    std::vector<std::string> labels;
    for (int t = 0; t <= 10; ++t) labels.push_back(std::to_string(t));
    table_ = TableFromCategorySeries(series, {"a1", "a2", "a3"}, labels);
    registry_ = ExplanationRegistry::Build(*table_, {0}, 1);
    cube_ = std::make_unique<ExplanationCube>(*table_, registry_,
                                              AggregateFunction::kSum, 0);
    SegmentExplainer::Options options;
    options.m = 3;
    explainer_ =
        std::make_unique<SegmentExplainer>(*cube_, registry_, options);
  }

  std::unique_ptr<Table> table_;
  ExplanationRegistry registry_;
  std::unique_ptr<ExplanationCube> cube_;
  std::unique_ptr<SegmentExplainer> explainer_;
};

TEST_F(VarianceTest, UnitSegmentHasZeroVariance) {
  for (VarianceMetric metric : kAllVarianceMetrics) {
    VarianceCalculator calc(*explainer_, metric);
    EXPECT_DOUBLE_EQ(calc.SegmentVariance(3, 4), 0.0)
        << VarianceMetricName(metric);
  }
}

TEST_F(VarianceTest, HomogeneousSegmentHasLowVariance) {
  VarianceCalculator calc(*explainer_, VarianceMetric::kTse);
  EXPECT_LT(calc.SegmentVariance(0, 5), 0.05);
  EXPECT_LT(calc.SegmentVariance(5, 10), 0.05);
}

TEST_F(VarianceTest, BoundaryCrossingSegmentHasHigherVariance) {
  VarianceCalculator calc(*explainer_, VarianceMetric::kTse);
  const double within = calc.SegmentVariance(0, 5);
  const double crossing = calc.SegmentVariance(2, 8);
  EXPECT_GT(crossing, within + 0.1);
}

TEST_F(VarianceTest, WeightedVarianceIsLengthTimesVariance) {
  VarianceCalculator calc(*explainer_, VarianceMetric::kTse);
  EXPECT_NEAR(calc.WeightedVariance(2, 8),
              6.0 * calc.SegmentVariance(2, 8), 1e-12);
}

TEST_F(VarianceTest, AllpairMatchesManualAverage) {
  VarianceCalculator calc(*explainer_, VarianceMetric::kAllpair);
  // Manual: average pairwise tse distance between the unit objects.
  const int a = 2, b = 6;
  double sum = 0.0;
  int pairs = 0;
  for (int x = a; x < b; ++x) {
    for (int y = x + 1; y < b; ++y) {
      sum += SegmentDist(*explainer_, VarianceMetric::kAllpair, x, x + 1, y,
                         y + 1);
      ++pairs;
    }
  }
  EXPECT_NEAR(calc.SegmentVariance(a, b), sum / pairs, 1e-12);
}

TEST_F(VarianceTest, TotalObjectiveSumsWeightedVariances) {
  VarianceCalculator calc(*explainer_, VarianceMetric::kTse);
  const std::vector<int> cuts{0, 5, 10};
  EXPECT_NEAR(TotalObjective(calc, cuts),
              calc.WeightedVariance(0, 5) + calc.WeightedVariance(5, 10),
              1e-12);
}

TEST_F(VarianceTest, GroundTruthCutsBeatShiftedCuts) {
  VarianceCalculator calc(*explainer_, VarianceMetric::kTse);
  const double gt = TotalObjective(calc, {0, 5, 10});
  EXPECT_LT(gt, TotalObjective(calc, {0, 2, 10}));
  EXPECT_LT(gt, TotalObjective(calc, {0, 8, 10}));
}

TEST_F(VarianceTest, VarianceTableMatchesCalculator) {
  VarianceCalculator calc(*explainer_, VarianceMetric::kTse);
  std::vector<int> positions;
  for (int i = 0; i <= 10; ++i) positions.push_back(i);
  const VarianceTable table = VarianceTable::Compute(calc, positions);
  for (size_t i = 0; i < positions.size(); ++i) {
    for (size_t j = i + 1; j < positions.size(); ++j) {
      EXPECT_NEAR(table.WeightedVar(i, j),
                  calc.WeightedVariance(static_cast<int>(i),
                                        static_cast<int>(j)),
                  1e-12);
    }
  }
}

TEST_F(VarianceTest, VarianceTableSpanCap) {
  VarianceCalculator calc(*explainer_, VarianceMetric::kTse);
  std::vector<int> positions;
  for (int i = 0; i <= 10; ++i) positions.push_back(i);
  const VarianceTable table = VarianceTable::Compute(calc, positions, 3);
  EXPECT_TRUE(std::isinf(table.WeightedVar(0, 5)));
  EXPECT_FALSE(std::isinf(table.WeightedVar(0, 3)));
  EXPECT_EQ(table.MaxReachable(0), 3u);
  EXPECT_EQ(table.MaxReachable(9), 10u);
}

TEST_F(VarianceTest, CoarsePositionsKeepFineObjectSemantics) {
  // Sketch-restricted candidate positions only restrict the CUTS; the
  // objects stay the fine unit segments, so every entry must agree with
  // the plain calculator (this is what keeps Table 7's quality deltas
  // small).
  VarianceCalculator calc(*explainer_, VarianceMetric::kTse);
  const std::vector<int> coarse{0, 5, 10};
  const VarianceTable table = VarianceTable::Compute(calc, coarse);
  EXPECT_NEAR(table.WeightedVar(0, 2), calc.WeightedVariance(0, 10), 1e-12);
  EXPECT_NEAR(table.WeightedVar(0, 1), calc.WeightedVariance(0, 5), 1e-12);
  EXPECT_NEAR(table.WeightedVar(1, 2), calc.WeightedVariance(5, 10), 1e-12);
}

}  // namespace
}  // namespace tsexplain
