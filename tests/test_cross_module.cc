// Cross-module consistency invariants that no single-module test covers:
// smoothing equivalences, cube-vs-group-by totals under every aggregate,
// pipeline-vs-building-block agreement, and report-vs-result agreement.

#include <gtest/gtest.h>

#include <string>

#include "src/datagen/synthetic.h"
#include "src/diff/snapshot_diff.h"
#include "src/pipeline/report.h"
#include "src/pipeline/streaming.h"
#include "src/pipeline/tsexplain.h"
#include "src/table/group_by.h"
#include "src/ts/time_series.h"

namespace tsexplain {
namespace {

class CrossModuleTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SyntheticConfig config;
    config.length = 60;
    config.seed = 41;
    config.num_interior_cuts = 2;
    ds_ = GenerateSynthetic(config);
  }
  SyntheticDataset ds_;
};

TEST_F(CrossModuleTest, CubeSmoothingEqualsSeriesSmoothing) {
  // Smoothing the cube's partials then finalizing must equal smoothing the
  // finalized overall series directly (linearity of SUM).
  const auto registry = ExplanationRegistry::Build(*ds_.table, {0}, 1);
  ExplanationCube cube(*ds_.table, registry, AggregateFunction::kSum, 0);
  const TimeSeries raw = cube.OverallSeries();
  cube.SmoothInPlace(4);
  const TimeSeries smoothed_cube = cube.OverallSeries();
  const TimeSeries smoothed_series = MovingAverage(raw, 4);
  for (size_t t = 0; t < raw.size(); ++t) {
    EXPECT_NEAR(smoothed_cube.values[t], smoothed_series.values[t], 1e-9);
  }
}

TEST_F(CrossModuleTest, PipelineSegmentExplanationsMatchSnapshotDiff) {
  // The per-segment explanations of the pipeline must agree with the
  // stand-alone two-snapshot diff on the same endpoints (same building
  // block; this pins the facade wiring).
  TSExplainConfig config;
  config.measure = "value";
  config.explain_by_names = {"category"};
  config.max_order = 1;
  config.fixed_k = 3;
  TSExplain engine(*ds_.table, config);
  const TSExplainResult result = engine.Run();

  SnapshotDiffOptions diff_options;
  diff_options.measure = "value";
  diff_options.explain_by = {"category"};
  diff_options.max_order = 1;
  for (const SegmentExplanation& seg : result.segments) {
    const SnapshotDiffResult diff =
        SnapshotDiffAt(*ds_.table, seg.begin, seg.end, diff_options);
    ASSERT_EQ(diff.top.size(), seg.top.size());
    for (size_t r = 0; r < seg.top.size(); ++r) {
      EXPECT_EQ(diff.top[r].description, seg.top[r].description);
      EXPECT_NEAR(diff.top[r].gamma, seg.top[r].gamma, 1e-9);
      EXPECT_EQ(diff.top[r].tau, seg.top[r].tau);
    }
  }
}

TEST_F(CrossModuleTest, CubeTotalsMatchGroupByForEveryAggregate) {
  const auto registry = ExplanationRegistry::Build(*ds_.table, {0}, 1);
  for (AggregateFunction f : {AggregateFunction::kSum,
                              AggregateFunction::kCount,
                              AggregateFunction::kAvg}) {
    const int measure = f == AggregateFunction::kCount ? -1 : 0;
    const ExplanationCube cube(*ds_.table, registry, f, measure);
    const TimeSeries expected = GroupByTime(*ds_.table, f, measure);
    for (size_t t = 0; t < expected.size(); ++t) {
      EXPECT_NEAR(cube.Overall(t), expected.values[t], 1e-9);
    }
  }
}

TEST_F(CrossModuleTest, JsonReportNumbersMatchResult) {
  TSExplainConfig config;
  config.measure = "value";
  config.explain_by_names = {"category"};
  config.max_order = 1;
  config.fixed_k = 2;
  TSExplain engine(*ds_.table, config);
  const TSExplainResult result = engine.Run();
  const std::string json = RenderJsonReport(engine, result);
  // Spot-check: the rendered k and cut values appear verbatim.
  EXPECT_NE(json.find("\"k\": 2"), std::string::npos);
  for (int cut : result.segmentation.cuts) {
    EXPECT_NE(json.find(std::to_string(cut)), std::string::npos);
  }
  for (const SegmentExplanation& seg : result.segments) {
    for (const ExplanationItem& item : seg.top) {
      EXPECT_NE(json.find(JsonEscape(item.description)),
                std::string::npos);
    }
  }
}

TEST_F(CrossModuleTest, EvaluateSchemeMatchesDpObjective) {
  TSExplainConfig config;
  config.measure = "value";
  config.explain_by_names = {"category"};
  config.max_order = 1;
  config.fixed_k = 4;
  TSExplain engine(*ds_.table, config);
  const TSExplainResult result = engine.Run();
  EXPECT_NEAR(engine.EvaluateScheme(result.segmentation.cuts),
              result.segmentation.total_variance, 1e-9);
}

TEST_F(CrossModuleTest, StreamingAndBatchShareExplanationSemantics) {
  TSExplainConfig config;
  config.measure = "value";
  config.explain_by_names = {"category"};
  config.max_order = 1;
  config.fixed_k = 3;
  TSExplain batch(*ds_.table, config);
  StreamingTSExplain streaming(*ds_.table, config);
  const TSExplainResult a = batch.Run();
  const TSExplainResult b = streaming.Explain();
  ASSERT_EQ(a.segments.size(), b.segments.size());
  for (size_t i = 0; i < a.segments.size(); ++i) {
    ASSERT_EQ(a.segments[i].top.size(), b.segments[i].top.size());
    for (size_t r = 0; r < a.segments[i].top.size(); ++r) {
      EXPECT_EQ(a.segments[i].top[r].description,
                b.segments[i].top[r].description);
    }
  }
}

}  // namespace
}  // namespace tsexplain
