// Unit tests for the Cascading Analysts algorithm: top-m non-overlapping
// explanations. Validated against exhaustive search on small instances.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "src/common/rng.h"
#include "src/diff/cascading_analysts.h"

namespace tsexplain {
namespace {

Table MakeSingleAttrTable(int cardinality) {
  Table table(Schema("t", {"A"}, {"m"}));
  table.AddTimeBucket("0");
  for (int i = 0; i < cardinality; ++i) {
    table.AppendRow(0, {"v" + std::to_string(i)}, {1.0});
  }
  return table;
}

Table MakeTwoAttrTable() {
  Table table(Schema("t", {"A", "B"}, {"m"}));
  table.AddTimeBucket("0");
  for (const char* a : {"a1", "a2", "a3"}) {
    for (const char* b : {"b1", "b2"}) {
      table.AppendRow(0, {a, b}, {1.0});
    }
  }
  return table;
}

// Exhaustive optimum over all <=m pairwise-non-overlapping subsets.
double BruteForceNonOverlapping(const ExplanationRegistry& reg,
                                const std::vector<double>& gamma, int m) {
  const int n = static_cast<int>(reg.num_explanations());
  double best = 0.0;
  std::vector<int> chosen;
  auto recurse = [&](auto&& self, int start) -> void {
    if (static_cast<int>(chosen.size()) == m) return;
    for (int e = start; e < n; ++e) {
      bool ok = true;
      for (int c : chosen) {
        if (reg.explanation(static_cast<ExplId>(c))
                .OverlapsWith(reg.explanation(static_cast<ExplId>(e)))) {
          ok = false;
          break;
        }
      }
      if (!ok) continue;
      chosen.push_back(e);
      double total = 0.0;
      for (int c : chosen) total += gamma[static_cast<size_t>(c)];
      best = std::max(best, total);
      self(self, e + 1);
      chosen.pop_back();
    }
  };
  recurse(recurse, 0);
  return best;
}

TEST(CascadingAnalysts, SingleAttributeEqualsTopMByGamma) {
  const Table t = MakeSingleAttrTable(6);
  const auto reg = ExplanationRegistry::Build(t, {0}, 1);
  CascadingAnalysts ca(reg);
  // Values of attr A never overlap, so top-m = m largest gammas.
  const std::vector<double> gamma{3.0, 9.0, 1.0, 7.0, 5.0, 0.0};
  const TopExplanations top = ca.TopM(gamma, 3);
  ASSERT_EQ(top.ids.size(), 3u);
  EXPECT_EQ(top.gammas, (std::vector<double>{9.0, 7.0, 5.0}));
  EXPECT_DOUBLE_EQ(top.TotalScore(), 21.0);
}

TEST(CascadingAnalysts, BestArrayMonotoneAndExact) {
  const Table t = MakeSingleAttrTable(5);
  const auto reg = ExplanationRegistry::Build(t, {0}, 1);
  CascadingAnalysts ca(reg);
  const std::vector<double> gamma{4.0, 2.0, 8.0, 1.0, 6.0};
  const TopExplanations top = ca.TopM(gamma, 4);
  ASSERT_EQ(top.best.size(), 5u);
  EXPECT_DOUBLE_EQ(top.best[0], 0.0);
  EXPECT_DOUBLE_EQ(top.best[1], 8.0);
  EXPECT_DOUBLE_EQ(top.best[2], 14.0);
  EXPECT_DOUBLE_EQ(top.best[3], 18.0);
  EXPECT_DOUBLE_EQ(top.best[4], 20.0);
  for (size_t q = 1; q < top.best.size(); ++q) {
    EXPECT_GE(top.best[q], top.best[q - 1]);
  }
}

TEST(CascadingAnalysts, ZeroGammasSelectNothing) {
  const Table t = MakeSingleAttrTable(4);
  const auto reg = ExplanationRegistry::Build(t, {0}, 1);
  CascadingAnalysts ca(reg);
  const TopExplanations top =
      ca.TopM(std::vector<double>(4, 0.0), 3);
  EXPECT_TRUE(top.ids.empty());
  EXPECT_DOUBLE_EQ(top.TotalScore(), 0.0);
}

TEST(CascadingAnalysts, SelectionIsAlwaysNonOverlapping) {
  const Table t = MakeTwoAttrTable();
  const auto reg = ExplanationRegistry::Build(t, {0, 1}, 2);
  CascadingAnalysts ca(reg);
  Rng rng(77);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<double> gamma(reg.num_explanations());
    for (auto& g : gamma) g = rng.Uniform(0.0, 10.0);
    const TopExplanations top = ca.TopM(gamma, 3);
    ASSERT_LE(top.ids.size(), 3u);
    for (size_t i = 0; i < top.ids.size(); ++i) {
      for (size_t j = i + 1; j < top.ids.size(); ++j) {
        EXPECT_FALSE(reg.explanation(top.ids[i])
                         .OverlapsWith(reg.explanation(top.ids[j])))
            << "overlapping pair selected";
      }
    }
    // Returned gammas are the scores of the returned ids, descending.
    for (size_t i = 0; i < top.ids.size(); ++i) {
      EXPECT_DOUBLE_EQ(top.gammas[i],
                       gamma[static_cast<size_t>(top.ids[i])]);
      if (i > 0) {
        EXPECT_GE(top.gammas[i - 1], top.gammas[i]);
      }
    }
    // Total equals Best[m].
    double sum = 0.0;
    for (double g : top.gammas) sum += g;
    EXPECT_NEAR(sum, top.TotalScore(), 1e-9);
  }
}

TEST(CascadingAnalysts, MatchesBruteForceOnSingleAttribute) {
  const Table t = MakeSingleAttrTable(7);
  const auto reg = ExplanationRegistry::Build(t, {0}, 1);
  CascadingAnalysts ca(reg);
  Rng rng(31);
  for (int trial = 0; trial < 100; ++trial) {
    std::vector<double> gamma(reg.num_explanations());
    for (auto& g : gamma) g = rng.Uniform(0.0, 5.0);
    const TopExplanations top = ca.TopM(gamma, 3);
    EXPECT_NEAR(top.TotalScore(), BruteForceNonOverlapping(reg, gamma, 3),
                1e-9);
  }
}

TEST(CascadingAnalysts, NeverExceedsBruteForceUpperBound) {
  // With multiple attributes CA restricts to cascades, so its score is at
  // most the unrestricted optimum and at least the best single cell.
  const Table t = MakeTwoAttrTable();
  const auto reg = ExplanationRegistry::Build(t, {0, 1}, 2);
  CascadingAnalysts ca(reg);
  Rng rng(13);
  for (int trial = 0; trial < 100; ++trial) {
    std::vector<double> gamma(reg.num_explanations());
    for (auto& g : gamma) g = rng.Uniform(0.0, 10.0);
    const TopExplanations top = ca.TopM(gamma, 3);
    const double brute = BruteForceNonOverlapping(reg, gamma, 3);
    EXPECT_LE(top.TotalScore(), brute + 1e-9);
    const double best_single =
        *std::max_element(gamma.begin(), gamma.end());
    EXPECT_GE(top.TotalScore() + 1e-9, best_single);
  }
}

TEST(CascadingAnalysts, DrillDownPicksDeepCellsWhenWorthIt) {
  const Table t = MakeTwoAttrTable();
  const auto reg = ExplanationRegistry::Build(t, {0, 1}, 2);
  CascadingAnalysts ca(reg);
  std::vector<double> gamma(reg.num_explanations(), 0.0);
  // Give all mass to two sibling order-2 cells under different a-values,
  // which only a drill-down cascade can select together.
  const ValueId a1 = t.dictionary(0).Lookup("a1");
  const ValueId a2 = t.dictionary(0).Lookup("a2");
  const ValueId b1 = t.dictionary(1).Lookup("b1");
  const ValueId b2 = t.dictionary(1).Lookup("b2");
  const ExplId cell1 = reg.Lookup(
      Explanation::FromPredicates({Predicate{0, a1}, Predicate{1, b1}}));
  const ExplId cell2 = reg.Lookup(
      Explanation::FromPredicates({Predicate{0, a2}, Predicate{1, b2}}));
  gamma[static_cast<size_t>(cell1)] = 5.0;
  gamma[static_cast<size_t>(cell2)] = 4.0;
  const TopExplanations top = ca.TopM(gamma, 2);
  ASSERT_EQ(top.ids.size(), 2u);
  EXPECT_DOUBLE_EQ(top.TotalScore(), 9.0);
}

TEST(CascadingAnalysts, SelfVersusChildrenTradeoff) {
  const Table t = MakeTwoAttrTable();
  const auto reg = ExplanationRegistry::Build(t, {0, 1}, 2);
  CascadingAnalysts ca(reg);
  const ValueId a1 = t.dictionary(0).Lookup("a1");
  const ValueId b1 = t.dictionary(1).Lookup("b1");
  const ValueId b2 = t.dictionary(1).Lookup("b2");
  const ExplId parent =
      reg.Lookup(Explanation::FromPredicates({Predicate{0, a1}}));
  const ExplId child1 = reg.Lookup(
      Explanation::FromPredicates({Predicate{0, a1}, Predicate{1, b1}}));
  const ExplId child2 = reg.Lookup(
      Explanation::FromPredicates({Predicate{0, a1}, Predicate{1, b2}}));

  std::vector<double> gamma(reg.num_explanations(), 0.0);
  gamma[static_cast<size_t>(parent)] = 10.0;
  gamma[static_cast<size_t>(child1)] = 6.0;
  gamma[static_cast<size_t>(child2)] = 6.0;

  // With quota 1 the parent (10) beats one child (6).
  EXPECT_DOUBLE_EQ(ca.TopM(gamma, 1).TotalScore(), 10.0);
  // With quota 2 both children (12) beat the parent (10): the parent
  // overlaps its children, so it cannot combine with them.
  EXPECT_DOUBLE_EQ(ca.TopM(gamma, 2).TotalScore(), 12.0);
}

TEST(CascadingAnalysts, SelectableMaskRespected) {
  const Table t = MakeSingleAttrTable(4);
  const auto reg = ExplanationRegistry::Build(t, {0}, 1);
  CascadingAnalysts ca(reg);
  const std::vector<double> gamma{9.0, 8.0, 7.0, 6.0};
  std::vector<bool> selectable{false, true, false, true};
  const TopExplanations top = ca.TopM(gamma, 2, &selectable);
  ASSERT_EQ(top.ids.size(), 2u);
  EXPECT_DOUBLE_EQ(top.TotalScore(), 14.0);  // 8 + 6
  for (ExplId id : top.ids) {
    EXPECT_TRUE(selectable[static_cast<size_t>(id)]);
  }
}

TEST(CascadingAnalysts, InstrumentationCountsNodes) {
  const Table t = MakeTwoAttrTable();
  const auto reg = ExplanationRegistry::Build(t, {0, 1}, 2);
  CascadingAnalysts ca(reg);
  std::vector<double> gamma(reg.num_explanations(), 1.0);
  ca.TopM(gamma, 3);
  EXPECT_GT(ca.last_nodes_visited(), 0u);
  // Memoization: each (cell, q) evaluated at most once.
  EXPECT_LE(ca.last_nodes_visited(), reg.num_explanations() * 3);
}

TEST(SortByGammaDescTest, DeterministicTieBreak) {
  const std::vector<double> gamma{5.0, 7.0, 5.0, 1.0};
  std::vector<ExplId> ids{0, 1, 2, 3};
  SortByGammaDesc(gamma, &ids);
  EXPECT_EQ(ids, (std::vector<ExplId>{1, 0, 2, 3}));
}

}  // namespace
}  // namespace tsexplain
