// Tests for the explain-by recommendation extension (paper section 9) and
// the high-variance segment hints.

#include <gtest/gtest.h>

#include "src/datagen/liquor_sim.h"
#include "src/pipeline/recommend.h"
#include "src/pipeline/tsexplain.h"

namespace tsexplain {
namespace {

TEST(Recommend, ConcentratedDimensionBeatsDiffuseOne) {
  // Dimension "driver" has one value carrying all change; dimension
  // "noise" spreads the same change over 10 values uniformly.
  Table table(Schema("t", {"driver", "noise"}, {"v"}));
  for (int t = 0; t < 20; ++t) table.AddTimeBucket(std::to_string(t));
  for (int t = 0; t < 20; ++t) {
    for (int k = 0; k < 10; ++k) {
      // Every (driver=hot, noise=k) row grows; "hot" concentrates it.
      table.AppendRow(t, {"hot", "n" + std::to_string(k)},
                      {10.0 + 2.0 * t});
      table.AppendRow(t, {"cold" + std::to_string(k), "steady"}, {5.0});
    }
  }
  const auto recs =
      RecommendExplainBy(table, AggregateFunction::kSum, "v");
  ASSERT_EQ(recs.size(), 2u);
  EXPECT_EQ(recs[0].dimension, "driver");
  EXPECT_GT(recs[0].concentration, recs[1].concentration);
  EXPECT_GT(recs[0].concentration, 0.9);  // one value explains everything
}

TEST(Recommend, LiquorPrefersBvAndPackOverVendors) {
  // The paper's observation: results are about BV and P, not CN/VN --
  // the recommender should surface the same preference a priori.
  const auto table = MakeLiquorTable();
  const auto recs =
      RecommendExplainBy(*table, AggregateFunction::kSum, "bottles_sold");
  ASSERT_EQ(recs.size(), 4u);
  double bv = 0, p = 0, cn = 0, vn = 0;
  for (const auto& rec : recs) {
    if (rec.dimension == "BV") bv = rec.concentration;
    if (rec.dimension == "P") p = rec.concentration;
    if (rec.dimension == "CN") cn = rec.concentration;
    if (rec.dimension == "VN") vn = rec.concentration;
  }
  EXPECT_GT(bv, cn);
  EXPECT_GT(bv, vn);
  EXPECT_GT(p, cn);
  EXPECT_GT(p, vn);
}

TEST(Recommend, ScoresInUnitIntervalAndSorted) {
  const auto table = MakeLiquorTable();
  const auto recs =
      RecommendExplainBy(*table, AggregateFunction::kSum, "bottles_sold");
  for (size_t i = 0; i < recs.size(); ++i) {
    EXPECT_GT(recs[i].concentration, 0.0);
    EXPECT_LE(recs[i].concentration, 1.0);
    EXPECT_GT(recs[i].cardinality, 0u);
    if (i > 0) {
      EXPECT_GE(recs[i - 1].concentration, recs[i].concentration);
    }
  }
}

TEST(Recommend, CandidateSubsetRespected) {
  const auto table = MakeLiquorTable();
  const auto recs = RecommendExplainBy(
      *table, AggregateFunction::kSum, "bottles_sold", 3, {"BV", "VN"});
  ASSERT_EQ(recs.size(), 2u);
  EXPECT_TRUE(recs[0].dimension == "BV" || recs[0].dimension == "VN");
}

TEST(RecommendDeathTest, UnknownNamesRejected) {
  const auto table = MakeLiquorTable();
  EXPECT_DEATH(RecommendExplainBy(*table, AggregateFunction::kSum, "bogus"),
               "unknown measure");
  EXPECT_DEATH(RecommendExplainBy(*table, AggregateFunction::kSum,
                                  "bottles_sold", 3, {"bogus"}),
               "unknown dimension");
}

TEST(VarianceHints, IncohesiveSegmentFlagged) {
  // Force K = 1 over a series with two clearly different regimes: the
  // single segment must carry a high-variance hint.
  Table table(Schema("t", {"cat"}, {"v"}));
  for (int t = 0; t < 30; ++t) table.AddTimeBucket(std::to_string(t));
  for (int t = 0; t < 30; ++t) {
    table.AppendRow(t, {"a"}, {t < 15 ? 100.0 + 10.0 * t : 250.0});
    table.AppendRow(t, {"b"}, {t < 15 ? 50.0 : 50.0 + 12.0 * (t - 15)});
  }
  TSExplainConfig config;
  config.measure = "v";
  config.explain_by_names = {"cat"};
  config.fixed_k = 1;
  TSExplain engine(table, config);
  const TSExplainResult one = engine.Run();
  ASSERT_EQ(one.segments.size(), 1u);
  EXPECT_GT(one.segments[0].variance, 0.1);
  EXPECT_TRUE(one.segments[0].high_variance_hint);

  // With K = 2 at the regime boundary both segments are cohesive.
  config.fixed_k = 2;
  TSExplain engine2(table, config);
  const TSExplainResult two = engine2.Run();
  ASSERT_EQ(two.segments.size(), 2u);
  for (const SegmentExplanation& seg : two.segments) {
    EXPECT_FALSE(seg.high_variance_hint);
    EXPECT_LT(seg.variance, 0.1);
  }
}

}  // namespace
}  // namespace tsexplain
