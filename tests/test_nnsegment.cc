// Tests for the NNSegment baseline.

#include <gtest/gtest.h>

#include <cmath>

#include "src/baselines/nnsegment.h"
#include "src/common/rng.h"

namespace tsexplain {
namespace {

std::vector<double> TwoRegimeSeries(int n, int boundary, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> v(static_cast<size_t>(n));
  for (int t = 0; t < n; ++t) {
    const double freq = t < boundary ? 0.15 : 0.9;
    v[static_cast<size_t>(t)] =
        std::sin(t * freq) + 0.05 * rng.NextGaussian();
  }
  return v;
}

TEST(NnCrossScoreTest, ScoresInUnitRange) {
  const std::vector<double> v = TwoRegimeSeries(200, 100, 1);
  const std::vector<double> score = NnCrossScore(v, 10);
  for (double s : score) {
    EXPECT_GE(s, 0.0);
    EXPECT_LE(s, 1.0);
  }
}

TEST(NnCrossScoreTest, EdgesPinnedToOne) {
  const std::vector<double> v = TwoRegimeSeries(150, 75, 2);
  const int w = 12;
  const std::vector<double> score = NnCrossScore(v, w);
  for (int i = 0; i < w; ++i) {
    EXPECT_DOUBLE_EQ(score[static_cast<size_t>(i)], 1.0);
    EXPECT_DOUBLE_EQ(score[score.size() - 1 - static_cast<size_t>(i)], 1.0);
  }
}

TEST(NnCrossScoreTest, MinimumNearBoundary) {
  const std::vector<double> v = TwoRegimeSeries(400, 200, 3);
  const std::vector<double> score = NnCrossScore(v, 12);
  size_t argmin = 0;
  for (size_t i = 1; i < score.size(); ++i) {
    if (score[i] < score[argmin]) argmin = i;
  }
  EXPECT_NEAR(static_cast<double>(argmin), 200.0, 40.0);
}

TEST(NnSegmentTest, FindsTheBoundary) {
  const std::vector<double> v = TwoRegimeSeries(400, 200, 5);
  const std::vector<int> cuts = NnSegment(v, 2, 12);
  ASSERT_EQ(cuts.size(), 3u);
  EXPECT_NEAR(static_cast<double>(cuts[1]), 200.0, 40.0);
}

TEST(NnSegmentTest, TrivialCases) {
  const std::vector<double> v = TwoRegimeSeries(80, 40, 7);
  EXPECT_EQ(NnSegment(v, 1, 10), (std::vector<int>{0, 79}));
  EXPECT_EQ(NnSegment(v, 3, 100), (std::vector<int>{0, 79}));
}

TEST(NnSegmentTest, RespectsRequestedCountUpperBound) {
  const std::vector<double> v = TwoRegimeSeries(300, 150, 9);
  const std::vector<int> cuts = NnSegment(v, 4, 10);
  EXPECT_LE(cuts.size(), 5u);
  EXPECT_TRUE(std::is_sorted(cuts.begin(), cuts.end()));
}

}  // namespace
}  // namespace tsexplain
