// Unit tests for the NDCG-based explanation similarity (Eq. 3-5, Table 2).

#include <gtest/gtest.h>

#include <cmath>

#include "src/datagen/synthetic.h"
#include "src/seg/ndcg.h"

namespace tsexplain {
namespace {

// Two-phase relation: a1 rises then flattens; a2 flat then rises; a3 flat.
// Phase boundary at t = 5, n = 11.
class NdcgTest : public ::testing::Test {
 protected:
  void SetUp() override {
    std::vector<std::vector<double>> series(3, std::vector<double>(11));
    for (int t = 0; t <= 10; ++t) {
      series[0][static_cast<size_t>(t)] = t <= 5 ? 100.0 + 20.0 * t : 200.0;
      series[1][static_cast<size_t>(t)] =
          t <= 5 ? 50.0 : 50.0 + 15.0 * (t - 5);
      series[2][static_cast<size_t>(t)] = 80.0;
    }
    std::vector<std::string> labels;
    for (int t = 0; t <= 10; ++t) labels.push_back(std::to_string(t));
    table_ = TableFromCategorySeries(series, {"a1", "a2", "a3"}, labels);
    registry_ = ExplanationRegistry::Build(*table_, {0}, 1);
    cube_ = std::make_unique<ExplanationCube>(*table_, registry_,
                                              AggregateFunction::kSum, 0);
    SegmentExplainer::Options options;
    options.m = 3;
    explainer_ =
        std::make_unique<SegmentExplainer>(*cube_, registry_, options);
  }

  std::unique_ptr<Table> table_;
  ExplanationRegistry registry_;
  std::unique_ptr<ExplanationCube> cube_;
  std::unique_ptr<SegmentExplainer> explainer_;
};

TEST_F(NdcgTest, DcgDiscountsByLogRank) {
  const double dcg = Dcg({4.0, 2.0, 1.0});
  EXPECT_NEAR(dcg, 4.0 / std::log2(2.0) + 2.0 / std::log2(3.0) +
                       1.0 / std::log2(4.0),
              1e-12);
  EXPECT_DOUBLE_EQ(Dcg({}), 0.0);
}

TEST_F(NdcgTest, SelfExplanationIsPerfect) {
  EXPECT_DOUBLE_EQ(NdcgExplains(*explainer_, 0, 5, 0, 5), 1.0);
  EXPECT_DOUBLE_EQ(NdcgExplains(*explainer_, 2, 9, 2, 9), 1.0);
}

TEST_F(NdcgTest, SameRegimeSegmentsExplainEachOtherWell) {
  // [0,2] and [3,5] are both "a1 rising" segments.
  EXPECT_GT(NdcgExplains(*explainer_, 0, 2, 3, 5), 0.9);
  EXPECT_GT(NdcgExplains(*explainer_, 3, 5, 0, 2), 0.9);
}

TEST_F(NdcgTest, CrossRegimeSegmentsExplainEachOtherPoorly) {
  // [0,4] is a1-driven; [6,10] is a2-driven.
  EXPECT_LT(NdcgExplains(*explainer_, 0, 4, 6, 10), 0.2);
  EXPECT_LT(NdcgExplains(*explainer_, 6, 10, 0, 4), 0.2);
}

TEST_F(NdcgTest, ResultAlwaysInUnitInterval) {
  for (int a = 0; a < 10; a += 2) {
    for (int b = a + 1; b <= 10; b += 3) {
      for (int c = 0; c < 10; c += 3) {
        for (int d = c + 1; d <= 10; d += 2) {
          const double v = NdcgExplains(*explainer_, a, b, c, d);
          EXPECT_GE(v, 0.0);
          EXPECT_LE(v, 1.0);
        }
      }
    }
  }
}

TEST_F(NdcgTest, FlatTargetIsTriviallyExplained) {
  // Build a completely flat relation: no explanation carries any score.
  std::vector<std::vector<double>> flat(2, std::vector<double>(6, 42.0));
  auto table = TableFromCategorySeries(
      flat, {"x", "y"}, {"0", "1", "2", "3", "4", "5"});
  auto reg = ExplanationRegistry::Build(*table, {0}, 1);
  ExplanationCube cube(*table, reg, AggregateFunction::kSum, 0);
  SegmentExplainer::Options options;
  options.m = 3;
  SegmentExplainer flat_explainer(cube, reg, options);
  EXPECT_DOUBLE_EQ(NdcgExplains(flat_explainer, 0, 3, 3, 5), 1.0);
}

TEST_F(NdcgTest, RectificationZeroesOppositeEffects) {
  // Build a segment pair where a1 rises in one and falls in the other.
  std::vector<std::vector<double>> series(2, std::vector<double>(9));
  for (int t = 0; t <= 8; ++t) {
    series[0][static_cast<size_t>(t)] =
        t <= 4 ? 100.0 + 30.0 * t : 220.0 - 30.0 * (t - 4);
    series[1][static_cast<size_t>(t)] = 500.0;  // large flat anchor
  }
  std::vector<std::string> labels;
  for (int t = 0; t <= 8; ++t) labels.push_back(std::to_string(t));
  auto table = TableFromCategorySeries(series, {"a1", "anchor"}, labels);
  auto reg = ExplanationRegistry::Build(*table, {0}, 1);
  ExplanationCube cube(*table, reg, AggregateFunction::kSum, 0);
  SegmentExplainer::Options options;
  options.m = 3;
  SegmentExplainer ex(cube, reg, options);
  // Both halves are "explained by a1", but with opposite tau: rectified
  // relevance zeroes the contribution, driving NDCG to ~0.
  EXPECT_LT(NdcgExplains(ex, 0, 4, 4, 8), 0.05);
}

}  // namespace
}  // namespace tsexplain
