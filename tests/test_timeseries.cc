// Unit tests for src/ts/time_series.

#include <gtest/gtest.h>

#include <cmath>

#include "src/common/rng.h"
#include "src/ts/time_series.h"

namespace tsexplain {
namespace {

TEST(TimeSeries, LabelFallsBackToIndex) {
  TimeSeries ts({1.0, 2.0, 3.0});
  EXPECT_EQ(ts.LabelAt(1), "1");
  ts.labels = {"a", "b", "c"};
  EXPECT_EQ(ts.LabelAt(1), "b");
}

TEST(TimeSeries, SizeAndIndexing) {
  TimeSeries ts({5.0, 7.0});
  EXPECT_EQ(ts.size(), 2u);
  EXPECT_FALSE(ts.empty());
  EXPECT_DOUBLE_EQ(ts[1], 7.0);
  ts[1] = 9.0;
  EXPECT_DOUBLE_EQ(ts[1], 9.0);
}

TEST(MovingAverage, WindowOneIsIdentity) {
  TimeSeries ts({3.0, 1.0, 4.0, 1.0, 5.0});
  const TimeSeries out = MovingAverage(ts, 1);
  EXPECT_EQ(out.values, ts.values);
}

TEST(MovingAverage, ConstantSeriesUnchanged) {
  TimeSeries ts(std::vector<double>(10, 2.5));
  const TimeSeries out = MovingAverage(ts, 4);
  for (double v : out.values) EXPECT_DOUBLE_EQ(v, 2.5);
}

TEST(MovingAverage, TrailingWindowValues) {
  TimeSeries ts({1.0, 2.0, 3.0, 4.0});
  const TimeSeries out = MovingAverage(ts, 2);
  // Prefix is averaged over the available window.
  EXPECT_DOUBLE_EQ(out.values[0], 1.0);
  EXPECT_DOUBLE_EQ(out.values[1], 1.5);
  EXPECT_DOUBLE_EQ(out.values[2], 2.5);
  EXPECT_DOUBLE_EQ(out.values[3], 3.5);
}

TEST(MovingAverage, PreservesLabels) {
  TimeSeries ts({1.0, 2.0});
  ts.labels = {"x", "y"};
  EXPECT_EQ(MovingAverage(ts, 2).labels, ts.labels);
}

TEST(Stats, MeanVarianceStdDev) {
  const std::vector<double> v{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_DOUBLE_EQ(Mean(v), 5.0);
  EXPECT_DOUBLE_EQ(Variance(v), 4.0);  // classic population-variance example
  EXPECT_DOUBLE_EQ(StdDev(v), 2.0);
}

TEST(Stats, SingleElement) {
  const std::vector<double> v{42.0};
  EXPECT_DOUBLE_EQ(Mean(v), 42.0);
  EXPECT_DOUBLE_EQ(Variance(v), 0.0);
}

TEST(ZNormalize, MeanZeroUnitStd) {
  const std::vector<double> v{1.0, 2.0, 3.0, 4.0, 5.0};
  const std::vector<double> z = ZNormalize(v);
  EXPECT_NEAR(Mean(z), 0.0, 1e-12);
  EXPECT_NEAR(StdDev(z), 1.0, 1e-12);
}

TEST(ZNormalize, ConstantMapsToZeros) {
  const std::vector<double> z = ZNormalize({3.0, 3.0, 3.0});
  for (double v : z) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(Snr, SigmaRoundTrip) {
  // Build a clean signal, add noise at a target SNR, measure it back.
  Rng rng(123);
  std::vector<double> clean(4000);
  for (size_t i = 0; i < clean.size(); ++i) {
    clean[i] = 100.0 + 20.0 * std::sin(static_cast<double>(i) / 25.0);
  }
  for (double target : {20.0, 35.0, 50.0}) {
    const double sigma = NoiseSigmaForSnr(SignalPower(clean), target);
    std::vector<double> noisy(clean.size());
    for (size_t i = 0; i < clean.size(); ++i) {
      noisy[i] = clean[i] + rng.Gaussian(0.0, sigma);
    }
    EXPECT_NEAR(MeasureSnrDb(clean, noisy), target, 1.0)
        << "target SNR " << target;
  }
}

TEST(Snr, NoNoiseIsInfinite) {
  const std::vector<double> v{1.0, 2.0, 3.0};
  EXPECT_TRUE(std::isinf(MeasureSnrDb(v, v)));
}

TEST(Snr, LowerSnrMeansMoreNoise) {
  const double power = 10000.0;
  EXPECT_GT(NoiseSigmaForSnr(power, 20.0), NoiseSigmaForSnr(power, 40.0));
}

TEST(SumSeries, AddsElementwise) {
  const std::vector<std::vector<double>> parts{{1.0, 2.0}, {10.0, 20.0},
                                               {100.0, 200.0}};
  EXPECT_EQ(SumSeries(parts), (std::vector<double>{111.0, 222.0}));
}

TEST(SignalPowerTest, MeanSquare) {
  EXPECT_DOUBLE_EQ(SignalPower({3.0, 4.0}), 12.5);
}

}  // namespace
}  // namespace tsexplain
