// Cross-module integration tests: full pipeline on the real-world
// simulators, mirroring the paper's case studies at test scale.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "src/datagen/covid_sim.h"
#include "src/datagen/deaths_sim.h"
#include "src/datagen/liquor_sim.h"
#include "src/datagen/sp500_sim.h"
#include "src/pipeline/tsexplain.h"

namespace tsexplain {
namespace {

bool AnySegmentHasTopExplanation(const TSExplainResult& result,
                                 const std::string& needle, int max_rank) {
  for (const SegmentExplanation& seg : result.segments) {
    for (size_t r = 0;
         r < std::min(seg.top.size(), static_cast<size_t>(max_rank));
         ++r) {
      if (seg.top[r].description.find(needle) != std::string::npos) {
        return true;
      }
    }
  }
  return false;
}

TEST(Integration, CovidTotalCaseStudy) {
  const auto table = MakeCovidTable();
  TSExplainConfig config;
  config.measure = "total_confirmed_cases";
  config.explain_by_names = {"state"};
  config.max_order = 1;
  config.use_filter = true;
  config.use_guess_verify = true;
  config.use_sketch = true;
  TSExplain engine(*table, config);
  const TSExplainResult result = engine.Run();

  // Paper picks K = 6; the simulator should land in a similar band.
  EXPECT_GE(result.chosen_k, 3);
  EXPECT_LE(result.chosen_k, 10);
  EXPECT_EQ(result.epsilon, 58u);

  // Narrative: NY leads some early segment, CA some late segment.
  EXPECT_TRUE(AnySegmentHasTopExplanation(result, "state=NY", 3));
  EXPECT_TRUE(AnySegmentHasTopExplanation(result, "state=CA", 3));

  // The early segments must NOT be led by CA, the late ones not by WA.
  const SegmentExplanation& last = result.segments.back();
  for (const ExplanationItem& item : last.top) {
    EXPECT_NE(item.description, "state=WA");
  }
}

TEST(Integration, CovidDailyWithSmoothing) {
  const auto table = MakeCovidTable();
  TSExplainConfig config;
  config.measure = "daily_confirmed_cases";
  config.explain_by_names = {"state"};
  config.max_order = 1;
  config.smooth_window = 7;
  config.use_filter = true;
  config.use_sketch = true;
  config.use_guess_verify = true;
  TSExplain engine(*table, config);
  const TSExplainResult result = engine.Run();
  EXPECT_GE(result.chosen_k, 3);
  EXPECT_LE(result.chosen_k, 12);
  // Daily series has +/- effects: at least one explanation with tau = -1
  // must appear somewhere (declines matter, Table 3).
  bool any_negative = false;
  for (const auto& seg : result.segments) {
    for (const auto& item : seg.top) {
      if (item.tau < 0) any_negative = true;
    }
  }
  EXPECT_TRUE(any_negative);
}

TEST(Integration, Sp500CaseStudy) {
  const auto table = MakeSp500Table();
  TSExplainConfig config;
  config.measure = "weighted_price";
  config.explain_by_names = {"category", "subcategory", "stock"};
  config.max_order = 3;
  config.use_filter = true;
  config.use_guess_verify = true;
  config.use_sketch = true;
  TSExplain engine(*table, config);
  const TSExplainResult result = engine.Run();

  EXPECT_EQ(result.epsilon, 610u);  // Table 6 after dedup
  EXPECT_GE(result.chosen_k, 3);
  EXPECT_LE(result.chosen_k, 8);
  // Technology must surface as a top explanation somewhere (Table 4 has
  // it in every segment).
  EXPECT_TRUE(AnySegmentHasTopExplanation(result, "technology", 3));
}

TEST(Integration, LiquorCaseStudyAllOptimizations) {
  const auto table = MakeLiquorTable();
  TSExplainConfig config;
  config.measure = "bottles_sold";
  config.explain_by_names = {"BV", "P", "CN", "VN"};
  config.max_order = 3;
  config.smooth_window = 5;  // the paper smooths fuzzy datasets first
  config.use_filter = true;
  config.use_guess_verify = true;
  config.use_sketch = true;
  TSExplain engine(*table, config);
  const TSExplainResult result = engine.Run();

  EXPECT_GE(result.chosen_k, 3);
  EXPECT_LE(result.chosen_k, 12);
  // The paper's headline: results are all about BV and P, not CN/VN.
  int bv_or_p = 0, cn_or_vn = 0;
  for (const auto& seg : result.segments) {
    for (const auto& item : seg.top) {
      if (item.description.find("BV=") != std::string::npos ||
          item.description.find("P=") != std::string::npos) {
        ++bv_or_p;
      }
      if (item.description.find("CN=") != std::string::npos ||
          item.description.find("VN=") != std::string::npos) {
        ++cn_or_vn;
      }
    }
  }
  EXPECT_GT(bv_or_p, cn_or_vn);
  // BV=1000's closure crash must surface somewhere.
  EXPECT_TRUE(AnySegmentHasTopExplanation(result, "BV=1000", 3));
}

TEST(Integration, DeathsTimeVaryingAttribute) {
  const auto table = MakeDeathsTable();
  TSExplainConfig config;
  config.measure = "deaths";
  config.explain_by_names = {"vaccinated", "age-group"};
  config.max_order = 2;
  TSExplain engine(*table, config);
  const TSExplainResult result = engine.Run();
  ASSERT_GE(result.segments.size(), 2u);

  // Figure 18: early segments dominated by vaccinated=NO, late segments
  // by age-group=50+.
  const SegmentExplanation& first = result.segments.front();
  ASSERT_FALSE(first.top.empty());
  EXPECT_NE(first.top[0].description.find("vaccinated=NO"),
            std::string::npos);
  const SegmentExplanation& last = result.segments.back();
  ASSERT_FALSE(last.top.empty());
  bool elder_top = false;
  for (size_t r = 0; r < std::min<size_t>(2, last.top.size()); ++r) {
    if (last.top[r].description.find("age-group=50+") !=
        std::string::npos) {
      elder_top = true;
    }
  }
  EXPECT_TRUE(elder_top);
}

TEST(Integration, RepeatedRunsAreIdenticalAndCached) {
  const auto table = MakeCovidTable();
  TSExplainConfig config;
  config.measure = "total_confirmed_cases";
  config.explain_by_names = {"state"};
  config.use_sketch = true;
  TSExplain engine(*table, config);
  const TSExplainResult first = engine.Run();
  const size_t ca_after_first = engine.explainer().ca_invocations();
  const TSExplainResult second = engine.Run();
  EXPECT_EQ(first.segmentation.cuts, second.segmentation.cuts);
  // Second run reuses the explanation cache; hardly any new CA calls.
  EXPECT_LE(engine.explainer().ca_invocations(), ca_after_first + 8);
}

}  // namespace
}  // namespace tsexplain
