// ResultCache contract: LRU eviction + byte accounting, invalidation
// scoping, and single-flight deduplication under concurrency.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "src/service/result_cache.h"

namespace tsexplain {
namespace {

// A value whose CostBytes is dominated by a JSON payload of known size.
ResultCache::ValuePtr MakeValue(const std::string& payload) {
  auto value = std::make_shared<CachedResult>();
  value->json = payload;
  return value;
}

size_t CostOf(const std::string& payload) {
  return MakeValue(payload)->CostBytes();
}

TEST(ResultCache, HitAfterMiss) {
  ResultCache cache(1 << 20, /*num_shards=*/1);
  bool hit = true;
  int computes = 0;
  auto compute = [&] {
    ++computes;
    return MakeValue("payload");
  };
  ResultCache::ValuePtr first = cache.GetOrCompute("k", compute, &hit);
  EXPECT_FALSE(hit);
  ResultCache::ValuePtr second = cache.GetOrCompute("k", compute, &hit);
  EXPECT_TRUE(hit);
  EXPECT_EQ(computes, 1);
  EXPECT_EQ(first.get(), second.get());  // literally the same object
  const ResultCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_EQ(stats.bytes_used, CostOf("payload"));
}

TEST(ResultCache, LruEvictionAndAccounting) {
  const std::string payload(1000, 'x');
  const size_t cost = CostOf(payload);
  // Room for exactly three entries.
  ResultCache cache(3 * cost, /*num_shards=*/1);
  auto compute = [&] { return MakeValue(payload); };
  bool hit = false;
  cache.GetOrCompute("a", compute, &hit);
  cache.GetOrCompute("b", compute, &hit);
  cache.GetOrCompute("c", compute, &hit);
  EXPECT_EQ(cache.stats().entries, 3u);
  EXPECT_EQ(cache.stats().bytes_used, 3 * cost);

  // Touch "a" so "b" is the LRU victim when "d" lands.
  cache.GetOrCompute("a", compute, &hit);
  EXPECT_TRUE(hit);
  cache.GetOrCompute("d", compute, &hit);
  EXPECT_FALSE(hit);
  const ResultCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.entries, 3u);
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.bytes_used, 3 * cost);  // accounting stays exact

  cache.GetOrCompute("a", compute, &hit);
  EXPECT_TRUE(hit);  // survived (was MRU)
  cache.GetOrCompute("b", compute, &hit);
  EXPECT_FALSE(hit);  // evicted
}

TEST(ResultCache, OversizedValueIsServedButNotCached) {
  ResultCache cache(64, /*num_shards=*/1);
  bool hit = true;
  const ResultCache::ValuePtr value =
      cache.GetOrCompute("big", [] { return MakeValue(std::string(1000, 'x')); }, &hit);
  ASSERT_NE(value, nullptr);
  EXPECT_FALSE(hit);
  EXPECT_EQ(cache.stats().entries, 0u);
  EXPECT_EQ(cache.stats().bytes_used, 0u);
}

TEST(ResultCache, InvalidateRemovesOnlyTheKey) {
  ResultCache cache(1 << 20, 1);
  auto compute = [] { return MakeValue("p"); };
  bool hit = false;
  cache.GetOrCompute("keep", compute, &hit);
  cache.GetOrCompute("drop", compute, &hit);
  cache.Invalidate("drop");
  cache.Invalidate("never-existed");  // no-op
  cache.GetOrCompute("keep", compute, &hit);
  EXPECT_TRUE(hit);
  cache.GetOrCompute("drop", compute, &hit);
  EXPECT_FALSE(hit);
  EXPECT_EQ(cache.stats().invalidations, 1u);
}

TEST(ResultCache, InvalidatePrefixScopes) {
  // Many shards: the scan must cover all of them.
  ResultCache cache(1 << 20, 8);
  auto compute = [] { return MakeValue("p"); };
  bool hit = false;
  for (int i = 0; i < 16; ++i) {
    cache.GetOrCompute("session/7/q" + std::to_string(i), compute, &hit);
    cache.GetOrCompute("session/8/q" + std::to_string(i), compute, &hit);
  }
  EXPECT_EQ(cache.InvalidatePrefix("session/7/"), 16u);
  for (int i = 0; i < 16; ++i) {
    cache.GetOrCompute("session/8/q" + std::to_string(i), compute, &hit);
    EXPECT_TRUE(hit);
    cache.GetOrCompute("session/7/q" + std::to_string(i), compute, &hit);
    EXPECT_FALSE(hit);
  }
}

// Regression: overwriting a resident key (a completed flight landing
// after prefix-invalidation races, warm-start Puts) must charge
// bytes_used for exactly the resident entries — never the sum of old and
// new costs — and eviction must never run against the replaced entry's
// stale cost.
TEST(ResultCache, ReinsertAccountingStaysExact) {
  ResultCache cache(1 << 20, /*num_shards=*/1);
  const std::string small(100, 's');
  const std::string large(5000, 'L');
  const std::string medium(1000, 'm');

  cache.Put("k", MakeValue(small));
  EXPECT_EQ(cache.stats().entries, 1u);
  EXPECT_EQ(cache.stats().bytes_used, CostOf(small));

  // Overwrite with a LARGER payload: charged once, at the new cost.
  cache.Put("k", MakeValue(large));
  EXPECT_EQ(cache.stats().entries, 1u);
  EXPECT_EQ(cache.stats().bytes_used, CostOf(large));
  EXPECT_EQ(cache.Lookup("k")->json, large);

  // Overwrite with a SMALLER payload: accounting shrinks exactly.
  cache.Put("k", MakeValue(medium));
  EXPECT_EQ(cache.stats().entries, 1u);
  EXPECT_EQ(cache.stats().bytes_used, CostOf(medium));
  EXPECT_EQ(cache.Lookup("k")->json, medium);

  // A second resident key keeps its own accounting across overwrites.
  cache.Put("other", MakeValue(small));
  cache.Put("k", MakeValue(large));
  EXPECT_EQ(cache.stats().entries, 2u);
  EXPECT_EQ(cache.stats().bytes_used, CostOf(large) + CostOf(small));
  EXPECT_EQ(cache.stats().evictions, 0u);  // capacity was never exceeded
}

// Regression: an oversized fresh value for a resident key must DROP the
// stale entry, not leave it to be served as if it were current.
TEST(ResultCache, OversizedOverwriteDropsTheStaleEntry) {
  const std::string small(100, 's');
  ResultCache cache(4 * CostOf(small), /*num_shards=*/1);
  cache.Put("k", MakeValue(small));
  ASSERT_NE(cache.Lookup("k"), nullptr);

  cache.Put("k", MakeValue(std::string(1 << 16, 'X')));  // over capacity
  EXPECT_EQ(cache.Lookup("k"), nullptr);  // stale value must not survive
  EXPECT_EQ(cache.stats().entries, 0u);
  EXPECT_EQ(cache.stats().bytes_used, 0u);
}

TEST(ResultCache, PrefixBudgetEvictsWithinTheNamespaceOnly) {
  const std::string payload(1000, 'x');
  const size_t cost = CostOf(payload);
  // Global capacity fits everything; the tenant budget fits 3 entries.
  ResultCache cache(100 * cost, /*num_shards=*/1);
  cache.SetPrefixBudget("tenant/a/", 3 * cost);

  bool hit = false;
  auto compute = [&] { return MakeValue(payload); };
  cache.GetOrCompute("global-1", compute, &hit);
  cache.GetOrCompute("tenant/a/q1", compute, &hit);
  cache.GetOrCompute("tenant/a/q2", compute, &hit);
  cache.GetOrCompute("tenant/a/q3", compute, &hit);
  EXPECT_EQ(cache.stats().entries, 4u);
  EXPECT_EQ(cache.PrefixBytes("tenant/a/"), 3 * cost);

  // A fourth tenant entry evicts the tenant's own LRU tail (q1) — the
  // global entry is untouchable by this namespace's pressure.
  cache.GetOrCompute("tenant/a/q4", compute, &hit);
  EXPECT_EQ(cache.stats().entries, 4u);
  EXPECT_EQ(cache.PrefixBytes("tenant/a/"), 3 * cost);
  EXPECT_EQ(cache.stats().budget_evictions, 1u);
  EXPECT_NE(cache.Lookup("global-1"), nullptr);
  EXPECT_EQ(cache.Lookup("tenant/a/q1"), nullptr);
  EXPECT_NE(cache.Lookup("tenant/a/q2"), nullptr);
  EXPECT_NE(cache.Lookup("tenant/a/q4"), nullptr);
  EXPECT_EQ(cache.stats().bytes_used, 4 * cost);  // 3 tenant + 1 global
}

TEST(ResultCache, PrefixBudgetTouchKeepsHotEntriesResident) {
  const std::string payload(1000, 'x');
  const size_t cost = CostOf(payload);
  ResultCache cache(100 * cost, 1);
  cache.SetPrefixBudget("tenant/a/", 2 * cost);
  bool hit = false;
  auto compute = [&] { return MakeValue(payload); };
  cache.GetOrCompute("tenant/a/hot", compute, &hit);
  cache.GetOrCompute("tenant/a/cold", compute, &hit);
  cache.GetOrCompute("tenant/a/hot", compute, &hit);  // touch
  EXPECT_TRUE(hit);
  cache.GetOrCompute("tenant/a/new", compute, &hit);  // evicts "cold"
  EXPECT_NE(cache.Lookup("tenant/a/hot"), nullptr);
  EXPECT_EQ(cache.Lookup("tenant/a/cold"), nullptr);
}

TEST(ResultCache, ValueOverItsPrefixBudgetIsServedNotCached) {
  const std::string payload(1000, 'x');
  ResultCache cache(1 << 20, 1);
  cache.SetPrefixBudget("tenant/tiny/", 8);  // smaller than any entry
  bool hit = true;
  const ResultCache::ValuePtr value =
      cache.GetOrCompute("tenant/tiny/q", [&] { return MakeValue(payload); },
                         &hit);
  ASSERT_NE(value, nullptr);
  EXPECT_FALSE(hit);
  EXPECT_EQ(cache.stats().entries, 0u);
  EXPECT_EQ(cache.PrefixBytes("tenant/tiny/"), 0u);
}

TEST(ResultCache, ShrinkingABudgetEvictsResidentEntriesImmediately) {
  const std::string payload(1000, 'x');
  const size_t cost = CostOf(payload);
  ResultCache cache(100 * cost, 1);
  bool hit = false;
  auto compute = [&] { return MakeValue(payload); };
  // Entries land before any budget exists (unbudgeted attribution).
  cache.GetOrCompute("tenant/a/q1", compute, &hit);
  cache.GetOrCompute("tenant/a/q2", compute, &hit);
  cache.GetOrCompute("tenant/a/q3", compute, &hit);
  // No budget registered yet: PrefixBytes falls back to a full scan and
  // reports the actual resident bytes (the operator-facing stats path).
  EXPECT_EQ(cache.PrefixBytes("tenant/a/"), 3 * cost);

  // Installing the budget re-attributes resident entries and enforces
  // the bound at once (LRU within the prefix: q1 goes first).
  cache.SetPrefixBudget("tenant/a/", 2 * cost);
  EXPECT_EQ(cache.PrefixBytes("tenant/a/"), 2 * cost);
  EXPECT_EQ(cache.Lookup("tenant/a/q1"), nullptr);
  EXPECT_NE(cache.Lookup("tenant/a/q2"), nullptr);
  EXPECT_NE(cache.Lookup("tenant/a/q3"), nullptr);
  EXPECT_EQ(cache.stats().bytes_used, 2 * cost);
}

TEST(ResultCache, FailedComputeIsNotCached) {
  ResultCache cache(1 << 20, 1);
  bool hit = true;
  const ResultCache::ValuePtr failed =
      cache.GetOrCompute("k", [] { return ResultCache::ValuePtr(); }, &hit);
  EXPECT_EQ(failed, nullptr);
  EXPECT_FALSE(hit);
  // The next request retries instead of serving the failure.
  const ResultCache::ValuePtr ok =
      cache.GetOrCompute("k", [] { return MakeValue("p"); }, &hit);
  ASSERT_NE(ok, nullptr);
  EXPECT_FALSE(hit);
}

TEST(ResultCache, SingleFlightUnderConcurrentIdenticalQueries) {
  ResultCache cache(1 << 20, 8);
  std::atomic<int> computes{0};

  constexpr int kThreads = 8;
  constexpr int kRounds = 25;
  std::vector<std::thread> threads;
  std::vector<int> non_hits(kThreads, 0);
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int round = 0; round < kRounds; ++round) {
        const std::string key = "query-" + std::to_string(round);
        bool hit = false;
        const ResultCache::ValuePtr value = cache.GetOrCompute(
            key,
            [&] {
              computes.fetch_add(1);
              // Give other threads time to pile onto this flight.
              std::this_thread::sleep_for(std::chrono::milliseconds(2));
              return MakeValue("value-" + key);
            },
            &hit);
        ASSERT_NE(value, nullptr);
        EXPECT_EQ(value->json, "value-" + key);
        if (!hit) ++non_hits[static_cast<size_t>(t)];
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  // Exactly one computation per distinct key, no matter how many threads
  // raced; and never two flights for the same key at once.
  EXPECT_EQ(computes.load(), kRounds);
  const ResultCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.misses, static_cast<size_t>(kRounds));
  EXPECT_EQ(stats.hits + stats.coalesced,
            static_cast<size_t>(kThreads * kRounds - kRounds));
  int total_non_hits = 0;
  for (int count : non_hits) total_non_hits += count;
  EXPECT_EQ(total_non_hits, kRounds);
}

}  // namespace
}  // namespace tsexplain
