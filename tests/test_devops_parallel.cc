// Tests for the DevOps simulator, the multi-threaded variance fill, and
// the Vega-Lite export.

#include <gtest/gtest.h>

#include <string>

#include "src/datagen/devops_sim.h"
#include "src/datagen/synthetic.h"
#include "src/pipeline/report.h"
#include "src/pipeline/tsexplain.h"
#include "src/table/group_by.h"

namespace tsexplain {
namespace {

TEST(DevopsSim, ShapeAndDeterminism) {
  const auto a = MakeDevopsTable(1);
  const auto b = MakeDevopsTable(1);
  EXPECT_EQ(a->num_time_buckets(), 360u);
  EXPECT_EQ(a->dictionary(0).size(), 8u);  // services
  EXPECT_EQ(a->dictionary(1).size(), 4u);  // regions
  EXPECT_EQ(a->measure_column(0), b->measure_column(0));
  EXPECT_EQ(a->time_labels().front(), "00:00");
  EXPECT_EQ(a->time_labels().back(), "05:59");
}

TEST(DevopsSim, IncidentTimelineVisibleInSlices) {
  const auto table = MakeDevopsTable();
  const ValueId checkout = table->dictionary(0).Lookup("checkout");
  const ValueId payments = table->dictionary(0).Lookup("payments");
  const TimeSeries checkout_ts = GroupByTime(
      *table, AggregateFunction::kSum, 0, {DimPredicate{0, checkout}});
  const TimeSeries payments_ts = GroupByTime(
      *table, AggregateFunction::kSum, 0, {DimPredicate{0, payments}});
  // Canary window: checkout errors explode vs steady state.
  EXPECT_GT(checkout_ts.values[150], 10.0 * checkout_ts.values[50]);
  // After rollback checkout recovers but payments cascades.
  EXPECT_LT(checkout_ts.values[250], checkout_ts.values[150] / 5.0);
  EXPECT_GT(payments_ts.values[250], 10.0 * payments_ts.values[50]);
}

TEST(DevopsSim, PipelineFindsTheCulprits) {
  const auto table = MakeDevopsTable();
  TSExplainConfig config;
  config.measure = "errors";
  config.explain_by_names = {"service", "region", "version"};
  config.max_order = 3;
  config.smooth_window = 5;
  config.use_filter = true;
  config.use_guess_verify = true;
  config.use_sketch = true;
  TSExplain engine(*table, config);
  const TSExplainResult result = engine.Run();

  // The canary culprit may surface as the full conjunction or -- because
  // v2 only runs where it melts down, making the slices identical after
  // dedup -- as the concise "version=v2"; both name the bad deployment.
  bool canary_culprit = false;
  bool payments_top = false;
  for (const SegmentExplanation& seg : result.segments) {
    for (const ExplanationItem& item : seg.top) {
      const bool mentions_v2 =
          item.description.find("version=v2") != std::string::npos;
      if (mentions_v2 && item.tau > 0) canary_culprit = true;
      if (item.description == "service=payments" && item.tau > 0) {
        payments_top = true;
      }
    }
  }
  EXPECT_TRUE(canary_culprit) << "the bad canary must surface";
  EXPECT_TRUE(payments_top) << "the cascading incident must surface";

  // Segment boundaries: the rollback edge (meltdown -> cascade) is sharp
  // and must be hit closely. The canary-start edge borders a pure-noise
  // steady zone where boundary placement is objective-neutral (noise
  // objects are ~equidistant from any centroid), so only require the cut
  // to fall inside the steady zone, before the meltdown.
  bool canary_cut_ok = false, near_rollback = false;
  for (int cut : result.segmentation.cuts) {
    if (cut >= 30 && cut <= 102) canary_cut_ok = true;
    if (cut >= 168 && cut <= 192) near_rollback = true;
  }
  EXPECT_TRUE(canary_cut_ok);
  EXPECT_TRUE(near_rollback);
}

TEST(ParallelVariance, IdenticalToSequential) {
  SyntheticConfig sconfig;
  sconfig.length = 120;
  sconfig.seed = 21;
  sconfig.num_interior_cuts = 4;
  const SyntheticDataset ds = GenerateSynthetic(sconfig);

  TSExplainConfig base;
  base.measure = "value";
  base.explain_by_names = {"category"};
  base.max_order = 1;
  base.fixed_k = 5;

  TSExplain sequential(*ds.table, base);
  const TSExplainResult seq_result = sequential.Run();

  TSExplainConfig parallel_config = base;
  parallel_config.threads = 8;
  TSExplain parallel(*ds.table, parallel_config);
  const TSExplainResult par_result = parallel.Run();

  EXPECT_EQ(seq_result.segmentation.cuts, par_result.segmentation.cuts);
  EXPECT_DOUBLE_EQ(seq_result.segmentation.total_variance,
                   par_result.segmentation.total_variance);
  ASSERT_EQ(seq_result.k_variance_curve.size(),
            par_result.k_variance_curve.size());
  for (size_t k = 0; k < seq_result.k_variance_curve.size(); ++k) {
    EXPECT_DOUBLE_EQ(seq_result.k_variance_curve[k],
                     par_result.k_variance_curve[k]);
  }
}

TEST(ParallelVariance, WorksWithSketchAndFilter) {
  SyntheticConfig sconfig;
  sconfig.length = 150;
  sconfig.seed = 23;
  sconfig.num_interior_cuts = 4;
  const SyntheticDataset ds = GenerateSynthetic(sconfig);
  TSExplainConfig config;
  config.measure = "value";
  config.explain_by_names = {"category"};
  config.max_order = 1;
  config.use_filter = true;
  config.use_guess_verify = true;
  config.use_sketch = true;
  config.threads = 8;
  TSExplain engine(*ds.table, config);
  const TSExplainResult result = engine.Run();
  EXPECT_GE(result.chosen_k, 1);
  EXPECT_EQ(result.segmentation.cuts.back(), 149);
}

TEST(VegaLite, SpecIsBalancedAndReferencesData) {
  SyntheticConfig sconfig;
  sconfig.length = 30;
  sconfig.seed = 2;
  sconfig.num_interior_cuts = 1;
  const SyntheticDataset ds = GenerateSynthetic(sconfig);
  TSExplainConfig config;
  config.measure = "value";
  config.explain_by_names = {"category"};
  config.max_order = 1;
  config.fixed_k = 2;
  TSExplain engine(*ds.table, config);
  const TSExplainResult result = engine.Run();
  const std::string spec = RenderVegaLiteSpec(engine, result);

  EXPECT_NE(spec.find("vega-lite/v5"), std::string::npos);
  EXPECT_NE(spec.find("\"series\": \"overall\""), std::string::npos);
  EXPECT_NE(spec.find("\"layer\":"), std::string::npos);
  EXPECT_NE(spec.find("\"rule\""), std::string::npos);
  int braces = 0, brackets = 0;
  bool in_string = false;
  for (size_t i = 0; i < spec.size(); ++i) {
    const char c = spec[i];
    if (c == '"' && (i == 0 || spec[i - 1] != '\\')) in_string = !in_string;
    if (in_string) continue;
    if (c == '{') ++braces;
    if (c == '}') --braces;
    if (c == '[') ++brackets;
    if (c == ']') --brackets;
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
}

}  // namespace
}  // namespace tsexplain
