// Unit tests for the segment-distance library (Eq. 6, 8, 9 + S-variants).

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "src/datagen/synthetic.h"
#include "src/seg/segment_distance.h"

namespace tsexplain {
namespace {

class DistanceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Same two-regime construction as the NDCG tests.
    std::vector<std::vector<double>> series(3, std::vector<double>(11));
    for (int t = 0; t <= 10; ++t) {
      series[0][static_cast<size_t>(t)] = t <= 5 ? 100.0 + 20.0 * t : 200.0;
      series[1][static_cast<size_t>(t)] =
          t <= 5 ? 50.0 : 50.0 + 15.0 * (t - 5);
      series[2][static_cast<size_t>(t)] = 80.0;
    }
    std::vector<std::string> labels;
    for (int t = 0; t <= 10; ++t) labels.push_back(std::to_string(t));
    table_ = TableFromCategorySeries(series, {"a1", "a2", "a3"}, labels);
    registry_ = ExplanationRegistry::Build(*table_, {0}, 1);
    cube_ = std::make_unique<ExplanationCube>(*table_, registry_,
                                              AggregateFunction::kSum, 0);
    SegmentExplainer::Options options;
    options.m = 3;
    explainer_ =
        std::make_unique<SegmentExplainer>(*cube_, registry_, options);
  }

  double Dist(VarianceMetric m, int ca, int cb, int oa, int ob) {
    return SegmentDist(*explainer_, m, ca, cb, oa, ob);
  }

  std::unique_ptr<Table> table_;
  ExplanationRegistry registry_;
  std::unique_ptr<ExplanationCube> cube_;
  std::unique_ptr<SegmentExplainer> explainer_;
};

TEST_F(DistanceTest, TseIsSymmetric) {
  for (int a = 0; a <= 6; a += 3) {
    const double d1 = Dist(VarianceMetric::kTse, a, a + 4, 2, 7);
    const double d2 = Dist(VarianceMetric::kTse, 2, 7, a, a + 4);
    EXPECT_NEAR(d1, d2, 1e-12);
  }
}

TEST_F(DistanceTest, AllMetricsInUnitRange) {
  for (VarianceMetric metric : kAllVarianceMetrics) {
    for (int a = 0; a < 9; a += 2) {
      const double d = Dist(metric, a, a + 2, 4, 9);
      EXPECT_GE(d, 0.0) << VarianceMetricName(metric);
      EXPECT_LE(d, 1.0) << VarianceMetricName(metric);
    }
  }
}

TEST_F(DistanceTest, IdenticalSegmentsHaveZeroDistance) {
  for (VarianceMetric metric : kAllVarianceMetrics) {
    EXPECT_NEAR(Dist(metric, 1, 5, 1, 5), 0.0, 1e-12)
        << VarianceMetricName(metric);
  }
}

TEST_F(DistanceTest, CrossRegimeFartherThanWithinRegime) {
  for (VarianceMetric metric : kAllVarianceMetrics) {
    const double within = Dist(metric, 0, 3, 2, 5);   // both a1-rising
    const double across = Dist(metric, 0, 4, 6, 10);  // a1 vs a2 regimes
    EXPECT_LT(within, across) << VarianceMetricName(metric);
  }
}

TEST_F(DistanceTest, SquaredVariantNoFartherThanPlain) {
  // RMS >= arithmetic mean, so 1 - RMS <= 1 - AM: Stse <= tse. Same for
  // the single-NDCG variants (x^2 <= x on [0, 1] flips it: Sdist >= dist).
  for (int a = 0; a <= 5; ++a) {
    const double tse = Dist(VarianceMetric::kTse, a, a + 3, 6, 10);
    const double stse = Dist(VarianceMetric::kStse, a, a + 3, 6, 10);
    EXPECT_LE(stse, tse + 1e-12);
    const double d1 = Dist(VarianceMetric::kDist1, a, a + 3, 6, 10);
    const double sd1 = Dist(VarianceMetric::kSdist1, a, a + 3, 6, 10);
    EXPECT_GE(sd1, d1 - 1e-12);
  }
}

TEST_F(DistanceTest, Dist1AndDist2AreTheTwoHalvesOfTse) {
  const double d1 = Dist(VarianceMetric::kDist1, 0, 4, 6, 10);
  const double d2 = Dist(VarianceMetric::kDist2, 0, 4, 6, 10);
  const double tse = Dist(VarianceMetric::kTse, 0, 4, 6, 10);
  EXPECT_NEAR(tse, (d1 + d2) / 2.0, 1e-12);
}

TEST_F(DistanceTest, MetricTaxonomy) {
  EXPECT_TRUE(IsAllPairMetric(VarianceMetric::kAllpair));
  EXPECT_TRUE(IsAllPairMetric(VarianceMetric::kSallpair));
  EXPECT_FALSE(IsAllPairMetric(VarianceMetric::kTse));
  EXPECT_TRUE(IsSquaredMetric(VarianceMetric::kStse));
  EXPECT_TRUE(IsSquaredMetric(VarianceMetric::kSdist2));
  EXPECT_FALSE(IsSquaredMetric(VarianceMetric::kDist1));
  EXPECT_EQ(sizeof(kAllVarianceMetrics) / sizeof(kAllVarianceMetrics[0]),
            8u);
}

TEST_F(DistanceTest, NamesAreUniqueAndStable) {
  std::set<std::string> names;
  for (VarianceMetric metric : kAllVarianceMetrics) {
    names.insert(VarianceMetricName(metric));
  }
  EXPECT_EQ(names.size(), 8u);
  EXPECT_EQ(std::string(VarianceMetricName(VarianceMetric::kTse)), "tse");
}

}  // namespace
}  // namespace tsexplain
