// Unit tests for the difference-metric library (Definitions 3.2 / 3.3).

#include <gtest/gtest.h>

#include "src/diff/diff_metrics.h"

namespace tsexplain {
namespace {

TEST(AbsoluteChange, MatchesDefinition32) {
  // Overall difference 100 -> 60 without E: E contributes +40.
  const DiffScore s = ComputeDiff(DiffMetricKind::kAbsoluteChange,
                                  /*f_test=*/300.0, /*f_control=*/200.0,
                                  /*f_test_wo=*/210.0,
                                  /*f_control_wo=*/150.0);
  EXPECT_DOUBLE_EQ(s.gamma, 40.0);
  EXPECT_EQ(s.tau, 1);
}

TEST(AbsoluteChange, NegativeContributionHasPositiveGamma) {
  // Including E DECREASES the overall change: tau = -1, gamma = |.|.
  const DiffScore s = ComputeDiff(DiffMetricKind::kAbsoluteChange, 100.0,
                                  100.0, 150.0, 90.0);
  EXPECT_DOUBLE_EQ(s.gamma, 60.0);
  EXPECT_EQ(s.tau, -1);
}

TEST(AbsoluteChange, NoContribution) {
  const DiffScore s = ComputeDiff(DiffMetricKind::kAbsoluteChange, 100.0,
                                  50.0, 80.0, 30.0);
  EXPECT_DOUBLE_EQ(s.gamma, 0.0);
  EXPECT_EQ(s.tau, 0);
}

TEST(ChangeEffect, SignMatchesDefinition33) {
  // tau = sign((f_t - f_c) - (f_t_wo - f_c_wo)).
  EXPECT_EQ(ComputeDiff(DiffMetricKind::kAbsoluteChange, 10, 0, 0, 0).tau, 1);
  EXPECT_EQ(ComputeDiff(DiffMetricKind::kAbsoluteChange, 0, 10, 0, 0).tau, -1);
  EXPECT_EQ(ComputeDiff(DiffMetricKind::kAbsoluteChange, 5, 0, 5, 0).tau, 0);
}

TEST(RelativeChange, FractionOfOverallChange) {
  // Delta = 100, contribution = 40 -> relative 0.4.
  const DiffScore s = ComputeDiff(DiffMetricKind::kRelativeChange, 300.0,
                                  200.0, 210.0, 150.0);
  EXPECT_DOUBLE_EQ(s.gamma, 0.4);
  EXPECT_EQ(s.tau, 1);
}

TEST(RelativeChange, ZeroOverallChangeScoresZero) {
  const DiffScore s =
      ComputeDiff(DiffMetricKind::kRelativeChange, 100.0, 100.0, 80.0, 70.0);
  EXPECT_DOUBLE_EQ(s.gamma, 0.0);
}

TEST(RelativeChange, CanExceedOne) {
  // A slice can contribute more than the net change (others cancel).
  const DiffScore s = ComputeDiff(DiffMetricKind::kRelativeChange, 110.0,
                                  100.0, 60.0, 90.0);
  EXPECT_DOUBLE_EQ(s.gamma, 4.0);  // contribution 40 vs delta 10
}

TEST(RiskRatio, SliceGrowingFasterThanOverall) {
  // Overall: 100 -> 110 (10%). Slice base 20 grows by 10 (50%).
  const DiffScore s = ComputeDiff(DiffMetricKind::kRiskRatio, 110.0, 100.0,
                                  80.0, 80.0);
  EXPECT_NEAR(s.gamma, 5.0, 1e-9);
  EXPECT_EQ(s.tau, 1);
}

TEST(RiskRatio, CappedAtLimit) {
  // Tiny overall rate, huge slice rate: capped.
  const DiffScore s = ComputeDiff(DiffMetricKind::kRiskRatio, 100.0001,
                                  100.0, 0.0, 99.9999);
  EXPECT_LE(s.gamma, kRiskRatioCap + 1e-9);
}

TEST(RiskRatio, DegenerateDenominatorsScoreZero) {
  EXPECT_DOUBLE_EQ(
      ComputeDiff(DiffMetricKind::kRiskRatio, 100, 100, 50, 50).gamma, 0.0);
  EXPECT_DOUBLE_EQ(
      ComputeDiff(DiffMetricKind::kRiskRatio, 10, 0, 5, 0).gamma, 0.0);
}

TEST(MetricNames, AllDistinct) {
  EXPECT_STREQ(DiffMetricName(DiffMetricKind::kAbsoluteChange),
               "absolute-change");
  EXPECT_STREQ(DiffMetricName(DiffMetricKind::kRelativeChange),
               "relative-change");
  EXPECT_STREQ(DiffMetricName(DiffMetricKind::kRiskRatio), "risk-ratio");
}

}  // namespace
}  // namespace tsexplain
