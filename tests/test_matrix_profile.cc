// Tests for the STOMP matrix profile, validated against brute force.

#include <gtest/gtest.h>

#include <cmath>

#include "src/baselines/matrix_profile.h"
#include "src/common/rng.h"

namespace tsexplain {
namespace {

std::vector<double> RandomWalk(int n, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> v(static_cast<size_t>(n));
  double level = 0.0;
  for (auto& x : v) {
    level += rng.Gaussian(0.0, 1.0);
    x = level;
  }
  return v;
}

TEST(MatrixProfileTest, MatchesBruteForce) {
  for (uint64_t seed : {1u, 2u, 3u}) {
    const std::vector<double> v = RandomWalk(80, seed);
    for (int w : {4, 8, 16}) {
      const MatrixProfile fast = ComputeMatrixProfile(v, w);
      const MatrixProfile brute = ComputeMatrixProfileBruteForce(v, w);
      ASSERT_EQ(fast.size(), brute.size());
      for (size_t i = 0; i < fast.size(); ++i) {
        EXPECT_NEAR(fast.profile[i], brute.profile[i], 1e-6)
            << "seed " << seed << " w " << w << " i " << i;
      }
    }
  }
}

TEST(MatrixProfileTest, PlantedMotifFound) {
  Rng rng(42);
  std::vector<double> v(200);
  for (auto& x : v) x = rng.Uniform(-1.0, 1.0);
  // Plant the same pattern at 20 and 150.
  for (int t = 0; t < 12; ++t) {
    const double pattern = std::sin(t * 0.7) * 5.0;
    v[20 + static_cast<size_t>(t)] = pattern;
    v[150 + static_cast<size_t>(t)] = pattern;
  }
  const MatrixProfile mp = ComputeMatrixProfile(v, 12);
  EXPECT_LT(mp.profile[20], 0.5);
  EXPECT_EQ(mp.index[20], 150);
  EXPECT_EQ(mp.index[150], 20);
}

TEST(MatrixProfileTest, ExclusionZoneBlocksTrivialMatches) {
  const std::vector<double> v = RandomWalk(60, 7);
  const MatrixProfile mp = ComputeMatrixProfile(v, 8);
  const int zone = (8 + 3) / 4;  // ceil(w/4)
  for (size_t i = 0; i < mp.size(); ++i) {
    if (mp.index[i] >= 0) {
      EXPECT_GT(std::abs(static_cast<int>(i) - mp.index[i]), zone);
    }
  }
}

TEST(MatrixProfileTest, ConstantSubsequences) {
  // Two constant windows are distance 0; constant vs varying is sqrt(w).
  std::vector<double> v(40, 1.0);
  for (size_t i = 20; i < 40; ++i) {
    v[i] = std::sin(static_cast<double>(i));
  }
  const int w = 6;
  const MatrixProfile mp = ComputeMatrixProfile(v, w);
  // Window 0 and window 5 are both constant -> profile ~0.
  EXPECT_NEAR(mp.profile[0], 0.0, 1e-9);
  EXPECT_NEAR(ZNormalizedDistance(v, 0, 25, w),
              std::sqrt(static_cast<double>(w)), 1e-9);
}

TEST(MatrixProfileTest, ZnormDistanceIsShiftScaleInvariant) {
  std::vector<double> v(40);
  for (int t = 0; t < 12; ++t) {
    v[static_cast<size_t>(t)] = std::sin(t * 0.5);
    // Same shape at offset 20, scaled by 7 and shifted by 100.
    v[20 + static_cast<size_t>(t)] = 7.0 * std::sin(t * 0.5) + 100.0;
  }
  EXPECT_NEAR(ZNormalizedDistance(v, 0, 20, 12), 0.0, 1e-6);
}

TEST(MatrixProfileTest, SizeIsNMinusWPlusOne) {
  const std::vector<double> v = RandomWalk(50, 9);
  EXPECT_EQ(ComputeMatrixProfile(v, 10).size(), 41u);
}

}  // namespace
}  // namespace tsexplain
