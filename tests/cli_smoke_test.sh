#!/usr/bin/env bash
# ctest-driven smoke test for the tsexplain CLI (registered as `cli_smoke`).
#
# Contract under test:
#   - unknown flags        -> usage on stderr, non-zero exit
#   - missing required args-> usage on stderr, non-zero exit
#   - missing input file   -> error + usage on stderr, non-zero exit
#   - malformed int flags  -> diagnostic on stderr, non-zero exit
#   - --help               -> usage on stdout, exit 0
#   - a well-formed run    -> exit 0 and a report on stdout
#
# Usage: cli_smoke_test.sh /path/to/tsexplain
set -u

CLI=${1:?usage: cli_smoke_test.sh /path/to/tsexplain}
TMPDIR_SMOKE=$(mktemp -d)
trap 'rm -rf "$TMPDIR_SMOKE"' EXIT

failures=0

# expect_fail NAME -- ARGS...: run, require non-zero exit + usage on stderr.
expect_fail() {
  local name=$1; shift; shift  # drop NAME and "--"
  local stderr_file="$TMPDIR_SMOKE/$name.err"
  if "$CLI" "$@" >/dev/null 2>"$stderr_file"; then
    echo "FAIL [$name]: expected non-zero exit for: $*" >&2
    failures=$((failures + 1))
    return
  fi
  if ! grep -q "usage:" "$stderr_file"; then
    echo "FAIL [$name]: expected usage text on stderr for: $*" >&2
    cat "$stderr_file" >&2
    failures=$((failures + 1))
  fi
}

expect_fail unknown_flag      -- --definitely-not-a-flag
expect_fail no_args           --
expect_fail missing_time      -- --csv whatever.csv
expect_fail missing_csv       -- --time date
expect_fail missing_input     -- --csv "$TMPDIR_SMOKE/does_not_exist.csv" --time date
expect_fail bad_int_flag      -- --csv x.csv --time t --k twelve
expect_fail trailing_value    -- --csv x.csv --time t --m
expect_fail negative_threads  -- --csv x.csv --time t --threads -2
expect_fail zero_m            -- --csv x.csv --time t --m 0
expect_fail negative_order    -- --csv x.csv --time t --order -1

# --help: usage on stdout, exit 0.
if ! "$CLI" --help >"$TMPDIR_SMOKE/help.out" 2>/dev/null; then
  echo "FAIL [help]: --help must exit 0" >&2
  failures=$((failures + 1))
elif ! grep -q "usage:" "$TMPDIR_SMOKE/help.out"; then
  echo "FAIL [help]: --help must print usage on stdout" >&2
  failures=$((failures + 1))
fi

# Happy path: tiny CSV through the full pipeline.
CSV="$TMPDIR_SMOKE/ok.csv"
{
  echo "date,region,sales"
  for t in 0 1 2 3 4 5 6 7 8 9; do
    echo "$t,east,$((10 + t))"
    echo "$t,west,$((20 - t))"
  done
} >"$CSV"
if ! "$CLI" --csv "$CSV" --time date --measure sales --explain-by region \
    --k 2 >"$TMPDIR_SMOKE/ok.out" 2>"$TMPDIR_SMOKE/ok.err"; then
  echo "FAIL [happy_path]: well-formed invocation must exit 0" >&2
  cat "$TMPDIR_SMOKE/ok.err" >&2
  failures=$((failures + 1))
elif ! [ -s "$TMPDIR_SMOKE/ok.out" ]; then
  echo "FAIL [happy_path]: expected a report on stdout" >&2
  failures=$((failures + 1))
fi

# --threads 0 means "auto" and must succeed (0 used to be rejected).
if ! "$CLI" --csv "$CSV" --time date --measure sales --explain-by region \
    --k 2 --threads 0 >/dev/null 2>&1; then
  echo "FAIL [threads_auto]: --threads 0 must be accepted as auto" >&2
  failures=$((failures + 1))
fi

# JSON mode on the same input.
if ! "$CLI" --csv "$CSV" --time date --measure sales --explain-by region \
    --k 2 --json 2>/dev/null | grep -q "{"; then
  echo "FAIL [json]: --json must emit JSON on stdout" >&2
  failures=$((failures + 1))
fi

# Convert mode: csv -> snapshot, then explain FROM the snapshot (no
# --time: the schema travels in the file). Results must match the CSV
# run byte for byte apart from the wall-clock timing block.
SNAP="$TMPDIR_SMOKE/ok.tsx"
if ! "$CLI" --csv "$CSV" --time date --measure sales \
    --save-snapshot "$SNAP" >/dev/null 2>&1 || ! [ -s "$SNAP" ]; then
  echo "FAIL [save_snapshot]: --save-snapshot must write a snapshot" >&2
  failures=$((failures + 1))
else
  "$CLI" --csv "$CSV" --time date --measure sales --explain-by region \
      --k 2 --json 2>/dev/null | sed '/"timing_ms"/,/}/d' >"$TMPDIR_SMOKE/a.json"
  "$CLI" --csv "$SNAP" --measure sales --explain-by region \
      --k 2 --json 2>/dev/null | sed '/"timing_ms"/,/}/d' >"$TMPDIR_SMOKE/b.json"
  if ! cmp -s "$TMPDIR_SMOKE/a.json" "$TMPDIR_SMOKE/b.json"; then
    echo "FAIL [snapshot_identical]: snapshot run differs from CSV run" >&2
    failures=$((failures + 1))
  fi
  # A corrupted snapshot is a structured error, not a crash.
  printf 'garbage' >>"$SNAP"
  if "$CLI" --csv "$SNAP" --measure sales >/dev/null 2>"$TMPDIR_SMOKE/corrupt.err"; then
    echo "FAIL [snapshot_corrupt]: corrupted snapshot must fail" >&2
    failures=$((failures + 1))
  elif ! grep -q "truncated\|checksum" "$TMPDIR_SMOKE/corrupt.err"; then
    echo "FAIL [snapshot_corrupt_code]: expected a structured storage error" >&2
    cat "$TMPDIR_SMOKE/corrupt.err" >&2
    failures=$((failures + 1))
  fi
fi

if [ "$failures" -ne 0 ]; then
  echo "cli_smoke: $failures check(s) failed" >&2
  exit 1
fi
echo "cli_smoke: all checks passed"
