// Tests for the CSV loader.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "src/table/csv_reader.h"
#include "src/table/group_by.h"

namespace tsexplain {
namespace {

constexpr char kBasicCsv[] =
    "date,state,cases\n"
    "2020-01-02,NY,10\n"
    "2020-01-01,NY,5\n"
    "2020-01-01,CA,3\n"
    "2020-01-02,CA,4\n";

CsvOptions BasicOptions() {
  CsvOptions options;
  options.time_column = "date";
  options.measure_columns = {"cases"};
  return options;
}

TEST(CsvReader, BasicParse) {
  const CsvResult result = ReadCsvFromString(kBasicCsv, BasicOptions());
  ASSERT_TRUE(result.ok()) << result.error;
  EXPECT_EQ(result.rows, 4u);
  EXPECT_EQ(result.table->num_time_buckets(), 2u);
  EXPECT_EQ(result.table->schema().num_dimensions(), 1u);
  EXPECT_EQ(result.table->schema().num_measures(), 1u);
  // sort_time: 2020-01-01 must be bucket 0 despite appearing second.
  EXPECT_EQ(result.table->time_labels()[0], "2020-01-01");
  const TimeSeries totals =
      GroupByTime(*result.table, AggregateFunction::kSum, 0);
  EXPECT_EQ(totals.values, (std::vector<double>{8.0, 14.0}));
}

TEST(CsvReader, FirstAppearanceOrderWhenUnsorted) {
  CsvOptions options = BasicOptions();
  options.sort_time = false;
  const CsvResult result = ReadCsvFromString(kBasicCsv, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.table->time_labels()[0], "2020-01-02");
}

TEST(CsvReader, QuotedFieldsAndEscapes) {
  const std::string csv =
      "t,name,v\n"
      "0,\"Smith, John\",1\n"
      "0,\"say \"\"hi\"\"\",2\n";
  CsvOptions options;
  options.time_column = "t";
  options.measure_columns = {"v"};
  const CsvResult result = ReadCsvFromString(csv, options);
  ASSERT_TRUE(result.ok()) << result.error;
  EXPECT_EQ(result.table->dictionary(0).ToString(result.table->dim(0, 0)),
            "Smith, John");
  EXPECT_EQ(result.table->dictionary(0).ToString(result.table->dim(1, 0)),
            "say \"hi\"");
}

TEST(CsvReader, CrlfAndBlankLines) {
  const std::string csv = "t,d,v\r\n0,a,1\r\n\r\n1,a,2\r\n";
  CsvOptions options;
  options.time_column = "t";
  options.measure_columns = {"v"};
  const CsvResult result = ReadCsvFromString(csv, options);
  ASSERT_TRUE(result.ok()) << result.error;
  EXPECT_EQ(result.rows, 2u);
}

TEST(CsvReader, CustomDelimiter) {
  const std::string csv = "t;d;v\n0;x;1.5\n";
  CsvOptions options;
  options.time_column = "t";
  options.measure_columns = {"v"};
  options.delimiter = ';';
  const CsvResult result = ReadCsvFromString(csv, options);
  ASSERT_TRUE(result.ok()) << result.error;
  EXPECT_DOUBLE_EQ(result.table->measure(0, 0), 1.5);
}

TEST(CsvReader, ErrorsAreReported) {
  CsvOptions options;
  options.time_column = "missing";
  options.measure_columns = {"v"};
  EXPECT_EQ(ReadCsvFromString(kBasicCsv, options).error,
            "time column not found: missing");

  options = BasicOptions();
  options.measure_columns = {"nope"};
  EXPECT_NE(ReadCsvFromString(kBasicCsv, options).error.find("nope"),
            std::string::npos);

  const std::string bad_number = "t,d,v\n0,a,abc\n";
  options = BasicOptions();
  options.time_column = "t";
  options.measure_columns = {"v"};
  EXPECT_NE(ReadCsvFromString(bad_number, options).error.find("abc"),
            std::string::npos);

  const std::string ragged = "t,d,v\n0,a\n";
  EXPECT_NE(ReadCsvFromString(ragged, options).error.find("expected"),
            std::string::npos);

  EXPECT_FALSE(ReadCsvFromString("", options).ok());
  EXPECT_FALSE(ReadCsvFromString("t,d,v\n", options).ok());  // no rows
}

TEST(CsvReader, CountStarWithNoMeasures) {
  const std::string csv = "t,d\n0,a\n0,b\n1,a\n";
  CsvOptions options;
  options.time_column = "t";
  const CsvResult result = ReadCsvFromString(csv, options);
  ASSERT_TRUE(result.ok()) << result.error;
  const TimeSeries counts =
      GroupByTime(*result.table, AggregateFunction::kCount, -1);
  EXPECT_EQ(counts.values, (std::vector<double>{2.0, 1.0}));
}

TEST(CsvReader, CrlfWithQuotedCommaFields) {
  const std::string csv =
      "t,d,v\r\n"
      "0,\"x, y\",3\r\n"
      "1,\"x, y\",4\r\n";
  CsvOptions options;
  options.time_column = "t";
  options.measure_columns = {"v"};
  const CsvResult result = ReadCsvFromString(csv, options);
  ASSERT_TRUE(result.ok()) << result.error;
  EXPECT_EQ(result.rows, 2u);
  EXPECT_EQ(result.table->dictionary(0).ToString(result.table->dim(0, 0)),
            "x, y");
}

TEST(CsvReader, EmptyTrailingDimensionField) {
  // Trailing comma = empty final field; must count as a field (not a
  // ragged-row error) and produce an empty-string dimension value.
  const std::string csv =
      "t,v,d\n"
      "0,1,\n"
      "1,2,x\n";
  CsvOptions options;
  options.time_column = "t";
  options.measure_columns = {"v"};
  const CsvResult result = ReadCsvFromString(csv, options);
  ASSERT_TRUE(result.ok()) << result.error;
  EXPECT_EQ(result.rows, 2u);
  EXPECT_EQ(result.table->dictionary(0).ToString(result.table->dim(0, 0)),
            "");
  EXPECT_EQ(result.table->dictionary(0).ToString(result.table->dim(1, 0)),
            "x");
}

TEST(CsvReader, QuotedEmptyTrailingField) {
  const std::string csv = "t,v,d\n0,1,\"\"\n";
  CsvOptions options;
  options.time_column = "t";
  options.measure_columns = {"v"};
  const CsvResult result = ReadCsvFromString(csv, options);
  ASSERT_TRUE(result.ok()) << result.error;
  EXPECT_EQ(result.table->dictionary(0).ToString(result.table->dim(0, 0)),
            "");
}

TEST(CsvReader, EmptyTrailingMeasureFieldIsAReportedError) {
  // An empty measure cell must surface as a parse error with the line
  // number, not crash or silently read 0.
  const std::string csv = "t,d,v\n0,a,\n";
  CsvOptions options;
  options.time_column = "t";
  options.measure_columns = {"v"};
  const CsvResult result = ReadCsvFromString(csv, options);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.error.find("line 2"), std::string::npos) << result.error;
  EXPECT_NE(result.error.find("not a number"), std::string::npos)
      << result.error;
}

TEST(CsvReader, CrlfEmptyTrailingFieldCombination) {
  // CRLF + trailing comma: the '\r' strip must happen before field
  // splitting so the final empty field is "" and not "\r".
  const std::string csv = "t,v,d\r\n0,1,\r\n";
  CsvOptions options;
  options.time_column = "t";
  options.measure_columns = {"v"};
  const CsvResult result = ReadCsvFromString(csv, options);
  ASSERT_TRUE(result.ok()) << result.error;
  EXPECT_EQ(result.table->dictionary(0).ToString(result.table->dim(0, 0)),
            "");
}

TEST(CsvReader, SplitCsvLineUnit) {
  EXPECT_EQ(SplitCsvLine("a,b,c", ','),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(SplitCsvLine(",,", ','),
            (std::vector<std::string>{"", "", ""}));
  EXPECT_EQ(SplitCsvLine("\"a,b\",c", ','),
            (std::vector<std::string>{"a,b", "c"}));
}

TEST(CsvReader, RoundTripThroughFile) {
  const std::string path = ::testing::TempDir() + "/tse_csv_test.csv";
  {
    std::ofstream out(path);
    out << kBasicCsv;
  }
  const CsvResult result = ReadCsvFile(path, BasicOptions());
  ASSERT_TRUE(result.ok()) << result.error;
  EXPECT_EQ(result.rows, 4u);
  std::remove(path.c_str());
  EXPECT_FALSE(ReadCsvFile(path, BasicOptions()).ok());  // gone now
}

}  // namespace
}  // namespace tsexplain
