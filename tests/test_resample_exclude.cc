// Tests for time-grain resampling and explanation exclusion lists.

#include <gtest/gtest.h>

#include "src/datagen/synthetic.h"
#include "src/pipeline/tsexplain.h"
#include "src/table/group_by.h"
#include "src/table/resample.h"

namespace tsexplain {
namespace {

Table MakeDailyTable() {
  Table table(Schema("day", {"cat"}, {"v"}));
  for (int t = 0; t < 10; ++t) {
    table.AddTimeBucket("d" + std::to_string(t));
  }
  for (int t = 0; t < 10; ++t) {
    table.AppendRow(t, {"a"}, {static_cast<double>(t)});
    table.AppendRow(t, {"b"}, {10.0});
  }
  return table;
}

TEST(Resample, SumsArePreservedPerGroup) {
  const Table daily = MakeDailyTable();
  const auto weekly = ResampleTable(daily, 3);
  // 10 buckets / 3 -> groups {0,1,2}, {3,4,5}, {6,7,8}, {9}.
  EXPECT_EQ(weekly->num_time_buckets(), 4u);
  const TimeSeries total = GroupByTime(*weekly, AggregateFunction::kSum, 0);
  EXPECT_DOUBLE_EQ(total.values[0], 0 + 1 + 2 + 30.0);
  EXPECT_DOUBLE_EQ(total.values[1], 3 + 4 + 5 + 30.0);
  EXPECT_DOUBLE_EQ(total.values[3], 9 + 10.0);
}

TEST(Resample, CountAndAvgSemanticsSurvive) {
  const Table daily = MakeDailyTable();
  const auto weekly = ResampleTable(daily, 5);
  const TimeSeries counts =
      GroupByTime(*weekly, AggregateFunction::kCount, -1);
  EXPECT_DOUBLE_EQ(counts.values[0], 10.0);  // 5 days x 2 rows
  const TimeSeries avg = GroupByTime(*weekly, AggregateFunction::kAvg, 0);
  EXPECT_DOUBLE_EQ(avg.values[0], (0 + 1 + 2 + 3 + 4 + 50.0) / 10.0);
}

TEST(Resample, DefaultLabelsAndCustomLabels) {
  const Table daily = MakeDailyTable();
  const auto weekly = ResampleTable(daily, 3);
  EXPECT_EQ(weekly->time_labels()[0], "d0..d2");
  EXPECT_EQ(weekly->time_labels()[3], "d9");  // singleton group
  const auto custom = ResampleTable(
      daily, 3, [](const std::string& first, const std::string&) {
        return "week of " + first;
      });
  EXPECT_EQ(custom->time_labels()[0], "week of d0");
}

TEST(Resample, FactorOneIsIdentity) {
  const Table daily = MakeDailyTable();
  const auto same = ResampleTable(daily, 1);
  EXPECT_EQ(same->num_time_buckets(), daily.num_time_buckets());
  EXPECT_EQ(same->num_rows(), daily.num_rows());
  EXPECT_EQ(same->time_labels(), daily.time_labels());
}

TEST(Resample, PipelineRunsOnCoarseGrain) {
  SyntheticConfig sconfig;
  sconfig.length = 90;
  sconfig.seed = 3;
  sconfig.num_interior_cuts = 2;
  const SyntheticDataset ds = GenerateSynthetic(sconfig);
  const auto coarse = ResampleTable(*ds.table, 3);
  TSExplainConfig config;
  config.measure = "value";
  config.explain_by_names = {"category"};
  config.max_order = 1;
  TSExplain engine(*coarse, config);
  const TSExplainResult result = engine.Run();
  EXPECT_EQ(result.segmentation.cuts.back(), 29);  // 90 / 3 buckets
}

TEST(Exclude, BareValueMutesEveryAttribute) {
  const Table daily = MakeDailyTable();
  TSExplainConfig config;
  config.measure = "v";
  config.explain_by_names = {"cat"};
  config.exclude = {"a"};  // category "a" is the only mover
  TSExplain engine(daily, config);
  const TSExplainResult result = engine.Run();
  for (const SegmentExplanation& seg : result.segments) {
    for (const ExplanationItem& item : seg.top) {
      EXPECT_EQ(item.description.find("cat=a"), std::string::npos);
    }
  }
}

TEST(Exclude, QualifiedFormOnlyMutesThatAttribute) {
  // Extra flat rows keep x=hot / y=cold and x=mild / y=hot slices
  // DISTINCT, so hierarchy dedup cannot collapse them.
  Table table(Schema("t", {"x", "y"}, {"v"}));
  for (int t = 0; t < 8; ++t) table.AddTimeBucket(std::to_string(t));
  for (int t = 0; t < 8; ++t) {
    table.AppendRow(t, {"hot", "cold"}, {10.0 + 5.0 * t});
    table.AppendRow(t, {"hot", "warm"}, {7.0});
    table.AppendRow(t, {"mild", "hot"}, {20.0 + 4.0 * t});
    table.AppendRow(t, {"cool", "hot"}, {5.0});
  }
  TSExplainConfig config;
  config.measure = "v";
  config.explain_by_names = {"x", "y"};
  config.max_order = 1;
  config.exclude = {"x=hot"};
  TSExplain engine(table, config);
  const auto items = engine.ExplainSegment(0, 7);
  bool saw_y_hot = false;
  for (const auto& item : items) {
    EXPECT_NE(item.description, "x=hot");
    if (item.description == "y=hot") saw_y_hot = true;
  }
  EXPECT_TRUE(saw_y_hot);
}

TEST(Exclude, ConjunctionsContainingBannedPredicateAreMuted) {
  Table table(Schema("t", {"x", "y"}, {"v"}));
  for (int t = 0; t < 8; ++t) table.AddTimeBucket(std::to_string(t));
  for (int t = 0; t < 8; ++t) {
    table.AppendRow(t, {"hot", "p"}, {10.0 + 6.0 * t});
    table.AppendRow(t, {"cold", "q"}, {10.0});
  }
  TSExplainConfig config;
  config.measure = "v";
  config.explain_by_names = {"x", "y"};
  config.max_order = 2;
  config.exclude = {"x=hot"};
  TSExplain engine(table, config);
  const auto items = engine.ExplainSegment(0, 7);
  for (const auto& item : items) {
    EXPECT_EQ(item.description.find("x=hot"), std::string::npos)
        << item.description;
  }
}

TEST(Exclude, CountsReflectExclusion) {
  const Table daily = MakeDailyTable();
  TSExplainConfig config;
  config.measure = "v";
  config.explain_by_names = {"cat"};
  config.exclude = {"cat=a"};
  TSExplain engine(daily, config);
  const TSExplainResult result = engine.Run();
  EXPECT_EQ(result.filtered_epsilon, 1u);  // only cat=b stays selectable
}

}  // namespace
}  // namespace tsexplain
