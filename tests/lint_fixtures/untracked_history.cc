// Fixture: unregistered-history-metric rule (R7). One tracked name has
// a matching GetHistogram registration site ("fixture.tracked.ms"), one
// does not ("fixture.never.registered") and must fire; a dynamically
// built name must be skipped, and a comment mention of
// TrackHistogramPercentiles("fixture.comment.ms") must not count as a
// tracking site.
#include <string>

#include "src/common/metrics.h"
#include "src/common/metrics_history.h"

void FixtureHistory(tsexplain::MetricsHistory& history, int shard) {
  tsexplain::MetricRegistry::Global().GetHistogram("fixture.tracked.ms",
                                                   {1.0, 10.0});
  history.TrackHistogramPercentiles("fixture.tracked.ms");
  history.TrackHistogramPercentiles("fixture.never.registered");
  history.TrackHistogramPercentiles("fixture.shard." +
                                    std::to_string(shard));
}
