// Fixture: R6 unchecked-bytereader must fire on the discarded Read call
// and stay quiet on consumed ones. Placed at src/storage/ in the
// assembled tree.
#include <cstdint>

namespace fixture {

class ByteReader {
 public:
  bool ReadU32(uint32_t* out);
  bool Skip(uint64_t n);
  bool failed() const;
};

bool Decode(ByteReader& r) {
  uint32_t n = 0;
  // VIOLATION: status discarded; on a truncated buffer `n` stays 0 and
  // the decode keeps going.
  r.ReadU32(&n);
  bool ok = r.ReadU32(&n);  // OK: assigned into the ok-chain.
  if (!r.Skip(n)) return false;  // OK: tested.
  return ok && !r.failed();
}

}  // namespace fixture
