// Fixture: first half of the duplicate-metric-name rule (R4) violation.
#include "src/common/metrics.h"

void SubsystemA() {
  tsexplain::MetricRegistry::Global().GetCounter("fixture.duplicate.total");
  tsexplain::MetricRegistry::Global().GetGauge("fixture.unique.level");
}
