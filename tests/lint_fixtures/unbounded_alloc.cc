// Fixture: R5 unbounded-decode-alloc must fire on the unchecked resize
// and stay quiet on the bounded ones. Placed at src/storage/ in the
// assembled tree.
#include <cstdint>
#include <string>
#include <vector>

namespace fixture {

bool DecodeCounts(const std::string& payload, std::vector<int>* out) {
  uint64_t count = 0;
  std::memcpy(&count, payload.data(), sizeof(count));
  // VIOLATION: `count` came straight off the wire; nothing bounds it
  // before it sizes the allocation.
  out->resize(count);
  return true;
}

bool DecodeChecked(const std::string& payload, std::vector<int>* out) {
  uint64_t count = 0;
  std::memcpy(&count, payload.data(), sizeof(count));
  if (count > payload.size() / sizeof(int)) return false;
  out->resize(count);  // OK: bounds-compared two lines up.
  return true;
}

void SizedFromInput(const std::string& payload, std::vector<char>* out) {
  out->reserve(payload.size());  // OK: derived from the input itself.
  out->resize(16);               // OK: compile-time constant.
}

}  // namespace fixture
