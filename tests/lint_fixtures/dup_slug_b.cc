// Fixture: second half of the duplicate-bench-slug rule (R3) violation —
// reuses dup_slug_a.cc's slug. The dynamically built slug below must be
// skipped (uniqueness of computed names is the bench's own job).
#include "bench_util.h"

void BenchB(int n) {
  EmitResult("fixture.duplicate.slug", 3.0);  // VIOLATION: reused slug
  EmitResult(StrFormat("fixture.len%d.total", n), 4.0);
  EmitResult("fixture.prefix." + std::to_string(n), 5.0);
}
