// Fixture: seeded violation of the storage-abort rule (R2) — a TSE_CHECK
// reachable from an untrusted-bytes decode path. Comment and string
// mentions of TSE_CHECK must NOT trip the rule; only the real call below
// does.
#include <cstdint>
#include <string>

// A comment saying TSE_CHECK(false) is fine.
static const char* kDoc = "strings mentioning TSE_CHECK are fine too";

bool DecodeHeader(const std::string& bytes, uint32_t* magic) {
  (void)kDoc;
  TSE_CHECK(bytes.size() >= 4);  // VIOLATION: corrupt input would abort
  *magic = static_cast<uint32_t>(static_cast<unsigned char>(bytes[0]));
  return true;
}
