// Fixture: seeded violation of the unguarded-mutex rule (R1b) — a Mutex
// member with no TSE_GUARDED_BY / TSE_REQUIRES user anywhere in the file
// pair, and no lint:allow escape comment.
#ifndef LINT_FIXTURE_UNGUARDED_MUTEX_H_
#define LINT_FIXTURE_UNGUARDED_MUTEX_H_

#include "src/common/mutex.h"

class BadUnguarded {
 public:
  void Touch() {
    tsexplain::MutexLock lock(mu_);
    ++value_;
  }

 private:
  mutable tsexplain::Mutex mu_;  // VIOLATION: nothing declares what it guards
  int value_ = 0;
};

#endif  // LINT_FIXTURE_UNGUARDED_MUTEX_H_
