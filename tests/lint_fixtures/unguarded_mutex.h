// Fixture: seeded violation of the unguarded-mutex rule (R1b) — a Mutex
// member with no TSE_GUARDED_BY / TSE_REQUIRES user naming it in its own
// class, and no lint:allow escape comment. The annotated sibling class
// below shares both the file AND the mutex name `mu_`: the rule is
// scoped per class, so neither may excuse BadUnguarded::mu_.
#ifndef LINT_FIXTURE_UNGUARDED_MUTEX_H_
#define LINT_FIXTURE_UNGUARDED_MUTEX_H_

#include "src/common/mutex.h"

// Fully annotated — must NOT clear the violation in BadUnguarded.
class GoodSibling {
 public:
  void Touch() {
    tsexplain::MutexLock lock(mu_);
    ++value_;
  }

 private:
  mutable tsexplain::Mutex mu_;
  int value_ TSE_GUARDED_BY(mu_) = 0;
};

class BadUnguarded {
 public:
  void Touch() {
    tsexplain::MutexLock lock(mu_);
    ++value_;
  }

 private:
  mutable tsexplain::Mutex mu_;  // VIOLATION: nothing declares what it guards
  int value_ = 0;
};

#endif  // LINT_FIXTURE_UNGUARDED_MUTEX_H_
