// Fixture: second half of the duplicate-metric-name rule (R4) violation —
// re-registers dup_metric_a.cc's counter (and as a different kind, which
// would also abort at runtime). The dynamically built names below must
// be skipped: uniqueness of computed names is the caller's own job.
#include "src/common/metrics.h"

void SubsystemB(int shard) {
  tsexplain::MetricRegistry::Global().GetGauge(
      "fixture.duplicate.total");  // VIOLATION: reused metric name
  tsexplain::MetricRegistry::Global().GetCounter(
      "fixture.shard." + std::to_string(shard));
  tsexplain::MetricRegistry::Global().GetHistogram("fixture.unique.ms");
}
