// Fixture for the clean-tree stanza: decode-path code every R5/R6 case
// must accept — bounded allocations, consumed reader statuses, an
// allow-listed site, and a ByteWriter (not a reader) statement call.
#include <cstdint>
#include <string>
#include <vector>

namespace fixture {

class ByteReader {
 public:
  bool ReadU64(uint64_t* out);
  bool failed() const;
};

class ByteWriter {
 public:
  void AlignTo(uint64_t alignment, uint64_t phase);
};

bool Decode(ByteReader& r, std::vector<double>* out) {
  uint64_t n = 0;
  if (!r.ReadU64(&n)) return false;
  if (n > 1024) return false;
  out->resize(n);
  return !r.failed();
}

void Encode(ByteWriter& w) {
  w.AlignTo(8, 0);  // a writer statement call is not a reader discard
}

void Preallocate(std::vector<int>* out, uint64_t hint) {
  // lint:allow(unbounded-decode-alloc) — hint is caller-trusted here.
  out->reserve(hint);
}

}  // namespace fixture
