// Fixture: first half of the duplicate-bench-slug rule (R3) violation.
#include "bench_util.h"

void BenchA() {
  EmitResult("fixture.duplicate.slug", 1.0);
  EmitResult("fixture.unique.a", 2.0);
}
