// Fixture: a CLEAN file — annotated Mutex member plus an allow-listed
// handshake mutex. The self-test asserts the linter accepts it (exit 0).
#ifndef LINT_FIXTURE_CLEAN_GUARDED_H_
#define LINT_FIXTURE_CLEAN_GUARDED_H_

#include <atomic>

#include "src/common/mutex.h"

class GoodGuarded {
 public:
  void Touch() {
    tsexplain::MutexLock lock(mu_);
    ++value_;
  }

 private:
  // Stripper regression guards: the digit separators and the raw string
  // (with an embedded quote) sit BEFORE the annotation below — a lexer
  // that mis-reads either as a literal start would blank TSE_GUARDED_BY
  // and turn this clean file into a false positive.
  static constexpr int kSpinBudget = 1'000'000;
  static constexpr const char* kBanner = R"(not an "annotation" user)";
  mutable tsexplain::Mutex mu_;
  int value_ TSE_GUARDED_BY(mu_) = 0;

  std::atomic<int> done_{0};
  // Completion handshake only. lint:allow(unguarded-mutex)
  tsexplain::Mutex handshake_mu_;
};

#endif  // LINT_FIXTURE_CLEAN_GUARDED_H_
