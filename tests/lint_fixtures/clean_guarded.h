// Fixture: a CLEAN file — annotated Mutex member plus an allow-listed
// handshake mutex. The self-test asserts the linter accepts it (exit 0).
#ifndef LINT_FIXTURE_CLEAN_GUARDED_H_
#define LINT_FIXTURE_CLEAN_GUARDED_H_

#include <atomic>

#include "src/common/mutex.h"

class GoodGuarded {
 public:
  void Touch() {
    tsexplain::MutexLock lock(mu_);
    ++value_;
  }

 private:
  mutable tsexplain::Mutex mu_;
  int value_ TSE_GUARDED_BY(mu_) = 0;

  std::atomic<int> done_{0};
  // Completion handshake only. lint:allow(unguarded-mutex)
  tsexplain::Mutex handshake_mu_;
};

#endif  // LINT_FIXTURE_CLEAN_GUARDED_H_
