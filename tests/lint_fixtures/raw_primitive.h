// Fixture: seeded violation of the raw-sync-primitive rule (R1a).
// Copied by tests/lint_selftest.sh into <tmp>/src/service/ — NOT part of
// the build (the tests glob only matches tests/test_*.cc).
#ifndef LINT_FIXTURE_RAW_PRIMITIVE_H_
#define LINT_FIXTURE_RAW_PRIMITIVE_H_

#include <mutex>

class BadRawMutex {
 public:
  void Touch() {
    std::lock_guard<std::mutex> lock(mu_);
    ++value_;
  }

 private:
  std::mutex mu_;  // VIOLATION: raw std::mutex member outside mutex.h
  int value_ = 0;
};

#endif  // LINT_FIXTURE_RAW_PRIMITIVE_H_
