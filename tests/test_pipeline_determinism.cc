// Coverage for the determinism claim in src/pipeline/tsexplain.h: the
// module (c) distance fill fans rows out across worker threads, and the
// results must be bit-identical at any thread count.

#include <gtest/gtest.h>

#include <vector>

#include "src/datagen/synthetic.h"
#include "src/pipeline/tsexplain.h"

namespace tsexplain {
namespace {

SyntheticDataset MakeDataset(uint64_t seed) {
  SyntheticConfig config;
  config.length = 120;
  config.num_categories = 4;
  config.snr_db = 30.0;
  config.num_interior_cuts = 4;
  config.seed = seed;
  return GenerateSynthetic(config);
}

TSExplainConfig BaseConfig(int threads) {
  TSExplainConfig config;
  config.measure = "value";
  config.explain_by_names = {"category"};
  config.max_order = 1;
  config.threads = threads;
  return config;
}

// Exact (bitwise, via ==) comparison of two pipeline results.
void ExpectIdenticalResults(const TSExplainResult& a,
                            const TSExplainResult& b) {
  EXPECT_EQ(a.segmentation.cuts, b.segmentation.cuts);
  EXPECT_EQ(a.chosen_k, b.chosen_k);
  EXPECT_EQ(a.k_variance_curve, b.k_variance_curve);
  EXPECT_EQ(a.epsilon, b.epsilon);
  EXPECT_EQ(a.filtered_epsilon, b.filtered_epsilon);
  EXPECT_EQ(a.sketch_positions, b.sketch_positions);
  ASSERT_EQ(a.segments.size(), b.segments.size());
  for (size_t s = 0; s < a.segments.size(); ++s) {
    const SegmentExplanation& sa = a.segments[s];
    const SegmentExplanation& sb = b.segments[s];
    EXPECT_EQ(sa.begin, sb.begin);
    EXPECT_EQ(sa.end, sb.end);
    EXPECT_EQ(sa.variance, sb.variance);  // bit-identical, no tolerance
    EXPECT_EQ(sa.high_variance_hint, sb.high_variance_hint);
    ASSERT_EQ(sa.top.size(), sb.top.size());
    for (size_t r = 0; r < sa.top.size(); ++r) {
      EXPECT_EQ(sa.top[r].id, sb.top[r].id);
      EXPECT_EQ(sa.top[r].description, sb.top[r].description);
      EXPECT_EQ(sa.top[r].gamma, sb.top[r].gamma);
      EXPECT_EQ(sa.top[r].tau, sb.top[r].tau);
    }
  }
}

TEST(PipelineDeterminism, VanillaIdenticalAcrossThreadCounts) {
  const SyntheticDataset ds = MakeDataset(23);
  TSExplain single(*ds.table, BaseConfig(1));
  TSExplain multi(*ds.table, BaseConfig(4));
  TSExplain wide(*ds.table, BaseConfig(8));
  const TSExplainResult single_result = single.Run();
  ExpectIdenticalResults(single_result, multi.Run());
  ExpectIdenticalResults(single_result, wide.Run());
  // The pre-warm fan-out dedups + single-flights cache misses, so the CA
  // invocation count is thread-count independent too.
  EXPECT_EQ(single.explainer().ca_invocations(),
            multi.explainer().ca_invocations());
  EXPECT_EQ(single.explainer().ca_invocations(),
            wide.explainer().ca_invocations());
}

TEST(PipelineDeterminism, FixedKIdenticalAcrossThreadCounts) {
  // BaseConfig already covers the auto-K elbow path (fixed_k = 0); this
  // pins K so the fixed-K reconstruction path gets its own coverage.
  const SyntheticDataset ds = MakeDataset(41);
  TSExplainConfig one = BaseConfig(1);
  TSExplainConfig four = BaseConfig(4);
  one.fixed_k = four.fixed_k = 5;
  TSExplain single(*ds.table, one);
  TSExplain multi(*ds.table, four);
  ExpectIdenticalResults(single.Run(), multi.Run());
}

TEST(PipelineDeterminism, OptimizedPathIdenticalAcrossThreadCounts) {
  const SyntheticDataset ds = MakeDataset(59);
  TSExplainConfig one = BaseConfig(1);
  TSExplainConfig four = BaseConfig(4);
  for (TSExplainConfig* config : {&one, &four}) {
    config->use_filter = true;
    config->use_guess_verify = true;
    config->use_sketch = true;
  }
  TSExplain single(*ds.table, one);
  TSExplain multi(*ds.table, four);
  ExpectIdenticalResults(single.Run(), multi.Run());
}

TEST(PipelineDeterminism, RepeatedRunsOnOneEngineAreStable) {
  const SyntheticDataset ds = MakeDataset(67);
  TSExplain engine(*ds.table, BaseConfig(4));
  ExpectIdenticalResults(engine.Run(), engine.Run());
}

}  // namespace
}  // namespace tsexplain
