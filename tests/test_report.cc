// Tests for the text/JSON report renderers.

#include <gtest/gtest.h>

#include <string>

#include "src/datagen/synthetic.h"
#include "src/pipeline/report.h"

namespace tsexplain {
namespace {

class ReportTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SyntheticConfig sconfig;
    sconfig.length = 40;
    sconfig.seed = 3;
    sconfig.num_interior_cuts = 2;
    sconfig.snr_db = 45.0;
    ds_ = GenerateSynthetic(sconfig);
    TSExplainConfig config;
    config.measure = "value";
    config.explain_by_names = {"category"};
    config.max_order = 1;
    config.fixed_k = 3;
    engine_ = std::make_unique<TSExplain>(*ds_.table, config);
    result_ = engine_->Run();
  }

  SyntheticDataset ds_;
  std::unique_ptr<TSExplain> engine_;
  TSExplainResult result_;
};

TEST_F(ReportTest, TextReportMentionsKeyFacts) {
  const std::string report = RenderTextReport(*engine_, result_);
  EXPECT_NE(report.find("K = 3"), std::string::npos);
  EXPECT_NE(report.find("top-1"), std::string::npos);
  EXPECT_NE(report.find("category="), std::string::npos);
  EXPECT_NE(report.find("timing:"), std::string::npos);
}

TEST_F(ReportTest, JsonHasStableSchema) {
  const std::string json = RenderJsonReport(*engine_, result_);
  for (const char* field :
       {"\"k\":", "\"total_variance\":", "\"cuts\":", "\"segments\":",
        "\"explanations\":", "\"trendline\":", "\"k_variance_curve\":",
        "\"timing_ms\":", "\"time_labels\":", "\"overall\":",
        "\"high_variance_hint\":", "\"effect\":"}) {
    EXPECT_NE(json.find(field), std::string::npos) << field;
  }
}

TEST_F(ReportTest, JsonIsStructurallyBalanced) {
  const std::string json = RenderJsonReport(*engine_, result_);
  int braces = 0, brackets = 0;
  bool in_string = false;
  for (size_t i = 0; i < json.size(); ++i) {
    const char c = json[i];
    if (c == '"' && (i == 0 || json[i - 1] != '\\')) in_string = !in_string;
    if (in_string) continue;
    if (c == '{') ++braces;
    if (c == '}') --braces;
    if (c == '[') ++brackets;
    if (c == ']') --brackets;
    EXPECT_GE(braces, 0);
    EXPECT_GE(brackets, 0);
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
  EXPECT_FALSE(in_string);
}

TEST_F(ReportTest, CompactModeHasNoNewlines) {
  ReportOptions options;
  options.pretty = false;
  const std::string json = RenderJsonReport(*engine_, result_, options);
  EXPECT_EQ(json.find('\n'), std::string::npos);
}

TEST_F(ReportTest, TrendlinesCanBeDisabled) {
  ReportOptions options;
  options.include_trendlines = false;
  options.include_k_curve = false;
  const std::string json = RenderJsonReport(*engine_, result_, options);
  EXPECT_EQ(json.find("\"trendline\":"), std::string::npos);
  EXPECT_EQ(json.find("\"k_variance_curve\":"), std::string::npos);
}

TEST_F(ReportTest, TrendlineLengthMatchesSegment) {
  const std::string json = RenderJsonReport(*engine_, result_);
  // Spot-check: first segment's trendline has end - begin + 1 numbers.
  const auto& seg = result_.segments.front();
  if (!seg.top.empty()) {
    const size_t pos = json.find("\"trendline\":");
    ASSERT_NE(pos, std::string::npos);
    const size_t open = json.find('[', pos);
    const size_t close = json.find(']', open);
    const std::string body = json.substr(open + 1, close - open - 1);
    size_t commas = 0;
    for (char c : body) {
      if (c == ',') ++commas;
    }
    EXPECT_EQ(static_cast<int>(commas) + 1, seg.end - seg.begin + 1);
  }
}

TEST(JsonEscapeTest, AllSpecialsHandled) {
  EXPECT_EQ(JsonEscape("plain"), "plain");
  EXPECT_EQ(JsonEscape("a\"b"), "a\\\"b");
  EXPECT_EQ(JsonEscape("a\\b"), "a\\\\b");
  EXPECT_EQ(JsonEscape("a\nb\tc"), "a\\nb\\tc");
  EXPECT_EQ(JsonEscape(std::string(1, '\x01')), "\\u0001");
}

}  // namespace
}  // namespace tsexplain
