#!/usr/bin/env bash
# ctest-driven test for tools/run_benches.sh (registered as bench_harness).
# Uses stub bench binaries so it runs in milliseconds; validates the JSON
# shape, BENCH_RESULT harvesting, exit-status propagation, and skip logic.
#
# Usage: bench_harness_test.sh /path/to/repo/tools/run_benches.sh
set -u

HARNESS=${1:?usage: bench_harness_test.sh /path/to/run_benches.sh}
case "$HARNESS" in
  /*) ;;
  *) HARNESS=$(pwd)/$HARNESS ;;  # the test cd's away; keep relative paths working
esac
WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT
cd "$WORK" || exit 1

mkdir -p fakebuild
cat >fakebuild/bench_ok <<'EOF'
#!/bin/sh
echo "some human-readable table"
echo "BENCH_RESULT fig99.demo.total 12.345"
echo "BENCH_RESULT fig99.demo.optimized 3.210"
echo 'BENCH_METRICS {"counters": {"demo.stale": 1}}'
echo 'BENCH_METRICS {"counters": {"demo.queries": 7}}'
EOF
cat >fakebuild/bench_fails <<'EOF'
#!/bin/sh
echo "about to fail"
exit 3
EOF
chmod +x fakebuild/bench_ok fakebuild/bench_fails

failures=0
check() {  # check NAME CONDITION...
  local name=$1; shift
  if ! "$@"; then
    echo "FAIL [$name]" >&2
    failures=$((failures + 1))
  fi
}

# Happy path: explicit bench list, JSON written, results harvested.
"$HARNESS" -b fakebuild -o out.json bench_ok >/dev/null 2>&1
check happy_exit test $? -eq 0
check json_written test -s out.json
check json_valid sh -c "python3 -m json.tool out.json >/dev/null"
check wall_clock grep -q '"wall_clock_s"' out.json
check harvested_name grep -q '"fig99.demo.total"' out.json
check harvested_ms grep -q '"ms": 12.345' out.json
# The LAST BENCH_METRICS line is the one archived (end-of-run snapshot).
check metrics_harvested grep -q '"demo.queries": 7' out.json
check metrics_last_wins sh -c "! grep -q 'demo.stale' out.json"
check log_saved test -s out.d/bench_ok.log
# Attribution stamps: SHA ("unknown" here — fakebuild is not a git tree),
# hostname, and nproc make committed captures comparable across machines.
check stamp_sha grep -q '"git_sha": "unknown"' out.json
check stamp_hostname grep -q '"hostname"' out.json
check stamp_nproc grep -qE '"nproc": [0-9]+' out.json

# A failing bench: recorded with its exit status, harness exits non-zero.
# It emits no BENCH_METRICS line, so its `metrics` field is null.
"$HARNESS" -b fakebuild -o fail.json bench_fails >/dev/null 2>&1
check fail_propagates test $? -ne 0
check fail_json_valid sh -c "python3 -m json.tool fail.json >/dev/null"
check fail_status grep -q '"exit_status": 3' fail.json
check no_metrics_null grep -q '"metrics": null' fail.json

# Unknown bench names are skipped; with nothing runnable it errors.
"$HARNESS" -b fakebuild -o none.json bench_does_not_exist >/dev/null 2>&1
check nothing_runnable test $? -ne 0

# An explicitly requested bench that is missing fails loudly even when the
# other requested benches run (perf data must not vanish silently), and
# the skip itself is recorded in the JSON.
"$HARNESS" -b fakebuild -o part.json bench_ok bench_does_not_exist >/dev/null 2>&1
check explicit_missing_fails test $? -ne 0
check explicit_missing_still_records grep -q '"bench": "bench_ok"' part.json
check skip_recorded grep -q '"skipped": true' part.json
check part_json_valid sh -c "python3 -m json.tool part.json >/dev/null"

# --help prints the full header including the results-array description.
"$HARNESS" --help 2>/dev/null | grep -q "results" || {
  echo "FAIL [help_complete]" >&2; failures=$((failures + 1)); }

# Missing build dir is a clean error.
"$HARNESS" -b no_such_dir -o x.json >/dev/null 2>&1
check missing_dir test $? -ne 0

if [ "$failures" -ne 0 ]; then
  echo "bench_harness: $failures check(s) failed" >&2
  exit 1
fi
echo "bench_harness: all checks passed"
