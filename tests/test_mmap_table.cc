// Zero-copy snapshot loads (src/storage/table_snapshot.h OpenTableSnapshot
// + src/table/column_ref.h): the mapped table must be bit-identical to the
// owned load, hostile files must fail structurally or fall back (never
// abort, never read out of bounds — this suite runs under ASan/UBSan), and
// dropping a mapped dataset must release the mapping and leak no file
// descriptors.

#include <gtest/gtest.h>

#ifdef __linux__
#include <dirent.h>
#endif
#include <unistd.h>

#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "src/common/metrics.h"
#include "src/pipeline/report_json.h"
#include "src/pipeline/tsexplain.h"
#include "src/service/dataset_registry.h"
#include "src/storage/format.h"
#include "src/storage/table_snapshot.h"
#include "src/table/csv_reader.h"
#include "src/table/table.h"

namespace tsexplain {
namespace storage {
namespace {

std::string TempPath(const std::string& tag) {
  static int counter = 0;
  const std::string path = testing::TempDir() + "/tsx_mmap_" +
                           std::to_string(::getpid()) + "_" + tag + "_" +
                           std::to_string(++counter);
  std::remove(path.c_str());
  return path;
}

void WriteRawFile(const std::string& path, const std::string& bytes) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), f), bytes.size());
  std::fclose(f);
}

std::string ReadRawFile(const std::string& path) {
  std::string contents;
  EXPECT_TRUE(ReadFileToString(path, &contents).ok());
  return contents;
}

// NaN / signed-zero / denormal measures: the borrowed spans must preserve
// raw bits exactly like the owned copies do.
std::unique_ptr<Table> MakeCornerTable() {
  auto table = std::make_unique<Table>(
      Schema("day", {"region", "product"}, {"sales", "margin"}));
  const char* regions[] = {"east", "", "west", "east"};
  const char* products[] = {"", "socks", "socks", "hats"};
  const double sales[] = {1.5, -0.0, std::nan(""), 1e-300};
  const double margin[] = {-2.25, 3.0, 0.125, 7e30};
  for (int t = 0; t < 3; ++t) {
    table->AddTimeBucket("d" + std::to_string(t));
    for (int r = 0; r < 4; ++r) {
      table->AppendRow(t, {regions[r], products[r]},
                       {sales[r] + t, margin[r] - t});
    }
  }
  return table;
}

template <typename A, typename B>
void ExpectBitIdentical(const A& a, const B& b) {
  using T = typename A::value_type;
  ASSERT_EQ(a.size(), b.size());
  if (a.empty()) return;
  EXPECT_EQ(std::memcmp(a.data(), b.data(), a.size() * sizeof(T)), 0);
}

void ExpectTablesBitIdentical(const Table& a, const Table& b) {
  EXPECT_EQ(a.schema().time_name(), b.schema().time_name());
  EXPECT_EQ(a.schema().dimension_names(), b.schema().dimension_names());
  EXPECT_EQ(a.schema().measure_names(), b.schema().measure_names());
  EXPECT_EQ(a.time_labels(), b.time_labels());
  ExpectBitIdentical(a.time_column(), b.time_column());
  for (size_t d = 0; d < a.schema().num_dimensions(); ++d) {
    const AttrId attr = static_cast<AttrId>(d);
    EXPECT_EQ(a.dictionary(attr).values(), b.dictionary(attr).values());
    ExpectBitIdentical(a.dim_column(attr), b.dim_column(attr));
  }
  for (size_t m = 0; m < a.schema().num_measures(); ++m) {
    ExpectBitIdentical(a.measure_column(static_cast<int>(m)),
                       b.measure_column(static_cast<int>(m)));
  }
}

uint64_t CounterValue(const std::string& name) {
  return MetricRegistry::Global().GetCounter(name).Value();
}

TEST(MmapTable, ZeroCopyOpenIsBitIdenticalToOwnedLoad) {
  const std::unique_ptr<Table> table = MakeCornerTable();
  const std::string path = TempPath("bitident");
  ASSERT_TRUE(WriteTableSnapshot(*table, path).ok());

  const uint64_t opens_before = CounterValue("storage.snapshot_mmap_opens");
  const TableSnapshotResult mapped = OpenTableSnapshot(path);
  ASSERT_TRUE(mapped.ok()) << mapped.status.message;
  ASSERT_TRUE(mapped.mapped);
  EXPECT_EQ(CounterValue("storage.snapshot_mmap_opens"), opens_before + 1);
  // The columns really are borrowed views into the mapping.
  EXPECT_TRUE(mapped.table->time_column().borrowed());
  EXPECT_TRUE(mapped.table->measure_column(0).borrowed());

  const TableSnapshotResult owned = ReadTableSnapshot(path);
  ASSERT_TRUE(owned.ok()) << owned.status.message;
  EXPECT_FALSE(owned.mapped);
  EXPECT_FALSE(owned.table->time_column().borrowed());

  ExpectTablesBitIdentical(*mapped.table, *owned.table);
  ExpectTablesBitIdentical(*table, *mapped.table);
  // Both loads surface the header fingerprint, equal to a fresh hash.
  EXPECT_EQ(mapped.fingerprint, owned.fingerprint);
  EXPECT_EQ(mapped.fingerprint, TableFingerprint(*table));
}

TEST(MmapTable, ExplainFromMappedTableIsByteIdenticalToCsv) {
  std::string csv = "date,region,sales\n";
  for (int t = 0; t < 12; ++t) {
    csv += std::to_string(t) + ",east," + std::to_string(10 + t) + "\n";
    csv += std::to_string(t) + ",west," + std::to_string(30 - 2 * t) + "\n";
    csv += std::to_string(t) + ",north," + std::to_string(5 + (t % 4)) + "\n";
  }
  CsvOptions options;
  options.time_column = "date";
  options.measure_columns = {"sales"};
  const CsvResult from_csv = ReadCsvFromString(csv, options);
  ASSERT_TRUE(from_csv.ok()) << from_csv.error;

  const std::string path = TempPath("pipeline");
  ASSERT_TRUE(WriteTableSnapshot(*from_csv.table, path).ok());
  const TableSnapshotResult mapped = OpenTableSnapshot(path);
  ASSERT_TRUE(mapped.ok()) << mapped.status.message;
  ASSERT_TRUE(mapped.mapped);

  TSExplainConfig config;
  config.measure = "sales";
  config.explain_by_names = {"region"};
  config.fixed_k = 3;
  TSExplain csv_engine(*from_csv.table, config);
  TSExplain mapped_engine(*mapped.table, config);
  TSExplainResult csv_result = csv_engine.Run();
  TSExplainResult mapped_result = mapped_engine.Run();
  csv_result.timing = TimingBreakdown();
  mapped_result.timing = TimingBreakdown();
  EXPECT_EQ(RenderJsonReport(csv_engine, csv_result),
            RenderJsonReport(mapped_engine, mapped_result));
}

TEST(MmapTable, CorruptFilesRejectStructurallyWithoutFallback) {
  const std::unique_ptr<Table> table = MakeCornerTable();
  const std::string path = TempPath("corrupt");
  ASSERT_TRUE(WriteTableSnapshot(*table, path).ok());
  const std::string good = ReadRawFile(path);

  // Wrong magic.
  std::string bad = good;
  bad[0] = 'X';
  WriteRawFile(path, bad);
  EXPECT_EQ(OpenTableSnapshot(path).status.code,
            StorageErrorCode::kBadMagic);

  // A flipped payload byte: the CRC over the mapping catches it.
  bad = good;
  bad[good.size() / 2] ^= 0x01;
  WriteRawFile(path, bad);
  EXPECT_EQ(OpenTableSnapshot(path).status.code,
            StorageErrorCode::kChecksumMismatch);

  // Every truncation point (sampled) fails with a structured code and —
  // critically for ASan — no out-of-bounds read of the short mapping. The
  // corruption verdict is definitive: the owned path is NOT retried, so
  // the fallback counter must not move.
  const uint64_t fallbacks_before =
      CounterValue("storage.snapshot_mmap_fallbacks");
  for (size_t keep = 0; keep < good.size(); keep += 7) {
    WriteRawFile(path, good.substr(0, keep));
    const TableSnapshotResult loaded = OpenTableSnapshot(path);
    EXPECT_FALSE(loaded.ok()) << "truncated to " << keep << " bytes";
  }
  EXPECT_EQ(CounterValue("storage.snapshot_mmap_fallbacks"),
            fallbacks_before);

  // Missing file: IO error, not a fallback loop.
  EXPECT_EQ(OpenTableSnapshot(TempPath("absent")).status.code,
            StorageErrorCode::kIoError);
}

// A v1-layout payload for `table`: no fingerprint field, column blocks
// aligned payload-relative (phase 0). The zero-copy open must fall back to
// the owned path and recompute the fingerprint.
std::string EncodeV1Payload(const Table& table) {
  const Schema& schema = table.schema();
  ByteWriter w;
  w.WriteU32(1);
  w.WriteString(schema.time_name());
  w.WriteU32(static_cast<uint32_t>(schema.num_dimensions()));
  for (const std::string& name : schema.dimension_names()) w.WriteString(name);
  w.WriteU32(static_cast<uint32_t>(schema.num_measures()));
  for (const std::string& name : schema.measure_names()) w.WriteString(name);
  w.WriteU64(table.num_rows());
  w.WriteU64(table.num_time_buckets());
  for (const std::string& label : table.time_labels()) w.WriteString(label);
  for (size_t a = 0; a < schema.num_dimensions(); ++a) {
    const Dictionary& dict = table.dictionary(static_cast<AttrId>(a));
    w.WriteU64(dict.size());
    for (const std::string& value : dict.values()) w.WriteString(value);
  }
  w.AlignTo(8);
  w.WriteI32Array(table.time_column().data(), table.time_column().size());
  for (size_t a = 0; a < schema.num_dimensions(); ++a) {
    const auto& col = table.dim_column(static_cast<AttrId>(a));
    w.AlignTo(8);
    w.WriteI32Array(col.data(), col.size());
  }
  for (size_t m = 0; m < schema.num_measures(); ++m) {
    const auto& col = table.measure_column(static_cast<int>(m));
    w.AlignTo(8);
    w.WriteF64Array(col.data(), col.size());
  }
  return w.TakeBuffer();
}

TEST(MmapTable, V1SnapshotFallsBackToOwnedPath) {
  const std::unique_ptr<Table> table = MakeCornerTable();
  const std::string path = TempPath("v1");
  ASSERT_TRUE(
      WriteFramedFile(path, kTableSnapshotMagic, EncodeV1Payload(*table))
          .ok());

  const uint64_t fallbacks_before =
      CounterValue("storage.snapshot_mmap_fallbacks");
  const TableSnapshotResult loaded = OpenTableSnapshot(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status.message;
  EXPECT_FALSE(loaded.mapped);
  EXPECT_FALSE(loaded.table->time_column().borrowed());
  EXPECT_EQ(CounterValue("storage.snapshot_mmap_fallbacks"),
            fallbacks_before + 1);
  ExpectTablesBitIdentical(*table, *loaded.table);
  // v1 has no stored fingerprint; the owned path recomputes it.
  EXPECT_EQ(loaded.fingerprint, TableFingerprint(*table));
}

TEST(MmapTable, EmptyTableRoundTripsThroughZeroCopyOpen) {
  const Table table(Schema("t", {"dim"}, {"m"}));
  const std::string path = TempPath("empty");
  ASSERT_TRUE(WriteTableSnapshot(table, path).ok());
  const TableSnapshotResult loaded = OpenTableSnapshot(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status.message;
  EXPECT_EQ(loaded.table->num_rows(), 0u);
  ExpectTablesBitIdentical(table, *loaded.table);
  EXPECT_EQ(loaded.fingerprint, TableFingerprint(table));
}

TEST(MmapTable, RegisterDropCyclesLeakNoFdsOrMappings) {
#ifndef __linux__
  GTEST_SKIP() << "fd/mapping accounting uses /proc";
#else
  const std::unique_ptr<Table> table = MakeCornerTable();
  const std::string path = TempPath("cycles");
  ASSERT_TRUE(WriteTableSnapshot(*table, path).ok());

  auto count_fds = [] {
    size_t count = 0;
    DIR* dir = opendir("/proc/self/fd");
    EXPECT_NE(dir, nullptr);
    while (readdir(dir) != nullptr) ++count;
    closedir(dir);
    return count;
  };
  // /proc/self/maps lists the canonicalized path; match the unique
  // basename (TempDir() may introduce a double slash open() normalizes).
  const std::string basename = path.substr(path.rfind('/') + 1);
  auto maps_mention = [&basename] {
    std::ifstream maps("/proc/self/maps");
    std::string line;
    size_t hits = 0;
    while (std::getline(maps, line)) {
      if (line.find(basename) != std::string::npos) ++hits;
    }
    return hits;
  };

  DatasetRegistry registry;
  std::string error;

  // Warm-up: the first registration initializes lazily-created metrics /
  // allocator state that would otherwise look like a "leak" of one fd.
  ASSERT_TRUE(registry.RegisterSnapshotFile("warm", path, &error)) << error;
  EXPECT_GE(maps_mention(), 1u) << "registered snapshot must be mapped";
  ASSERT_TRUE(registry.Drop("warm"));
  EXPECT_EQ(maps_mention(), 0u) << "drop must unmap";

  const size_t fds_before = count_fds();
  for (int i = 0; i < 1000; ++i) {
    ASSERT_TRUE(registry.RegisterSnapshotFile("d", path, &error)) << error;
    ASSERT_TRUE(registry.Drop("d"));
  }
  EXPECT_EQ(count_fds(), fds_before);
  EXPECT_EQ(maps_mention(), 0u);
#endif
}

TEST(MmapTable, RegistryReusesHeaderFingerprintWithoutRehash) {
  const std::unique_ptr<Table> table = MakeCornerTable();
  const uint64_t expected = TableFingerprint(*table);
  const std::string path = TempPath("nohash");
  ASSERT_TRUE(WriteTableSnapshot(*table, path).ok());

  DatasetRegistry registry;
  std::string error;
  DatasetInfo info;
  const uint64_t computes_before =
      CounterValue("storage.fingerprint_computes");
  ASSERT_TRUE(registry.RegisterSnapshotFile("snap", path, &error, &info))
      << error;
  // Snapshot registration reads the fingerprint from the v2 header: ZERO
  // full-table serializations.
  EXPECT_EQ(CounterValue("storage.fingerprint_computes"), computes_before);
  EXPECT_EQ(info.fingerprint, expected);
  EXPECT_EQ(registry.GetRef("snap").fingerprint, expected);
  EXPECT_EQ(registry.List().at(0).fingerprint, expected);
}

}  // namespace
}  // namespace storage
}  // namespace tsexplain
