// End-to-end coverage of the explanation service (src/service/): dataset
// registry, cached + concurrent explains bit-identical to direct
// TSExplain::Run, single-flight behavior at the service level, streaming
// sessions with scoped cache invalidation, and the executor futures.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "src/common/metrics.h"
#include "src/datagen/synthetic.h"
#include "src/service/explain_service.h"
#include "src/service/protocol.h"

namespace tsexplain {
namespace {

std::shared_ptr<const Table> MakeTable(uint64_t seed, int length = 72) {
  SyntheticConfig config;
  config.length = length;
  config.num_categories = 4;
  config.snr_db = 30.0;
  config.num_interior_cuts = 3;
  config.seed = seed;
  SyntheticDataset ds = GenerateSynthetic(config);
  return std::shared_ptr<const Table>(std::move(ds.table));
}

TSExplainConfig BaseConfig() {
  TSExplainConfig config;
  config.measure = "value";
  config.explain_by_names = {"category"};
  config.max_order = 1;
  return config;
}

void ExpectIdenticalResults(const TSExplainResult& a,
                            const TSExplainResult& b) {
  EXPECT_EQ(a.segmentation.cuts, b.segmentation.cuts);
  EXPECT_EQ(a.chosen_k, b.chosen_k);
  EXPECT_EQ(a.k_variance_curve, b.k_variance_curve);
  EXPECT_EQ(a.epsilon, b.epsilon);
  EXPECT_EQ(a.filtered_epsilon, b.filtered_epsilon);
  ASSERT_EQ(a.segments.size(), b.segments.size());
  for (size_t s = 0; s < a.segments.size(); ++s) {
    EXPECT_EQ(a.segments[s].begin, b.segments[s].begin);
    EXPECT_EQ(a.segments[s].end, b.segments[s].end);
    EXPECT_EQ(a.segments[s].variance, b.segments[s].variance);
    ASSERT_EQ(a.segments[s].top.size(), b.segments[s].top.size());
    for (size_t r = 0; r < a.segments[s].top.size(); ++r) {
      EXPECT_EQ(a.segments[s].top[r].id, b.segments[s].top[r].id);
      EXPECT_EQ(a.segments[s].top[r].gamma, b.segments[s].top[r].gamma);
      EXPECT_EQ(a.segments[s].top[r].tau, b.segments[s].top[r].tau);
    }
  }
}

TEST(DatasetRegistryTest, RegisterLookupDropAndDuplicates) {
  DatasetRegistry registry;
  std::string error;
  ASSERT_TRUE(registry.RegisterTable("a", MakeTable(1), "<table>", &error));
  EXPECT_FALSE(registry.RegisterTable("a", MakeTable(2), "<table>", &error));
  EXPECT_NE(error.find("already registered"), std::string::npos);
  EXPECT_NE(registry.Get("a"), nullptr);
  EXPECT_EQ(registry.Get("missing"), nullptr);

  const std::vector<DatasetInfo> list = registry.List();
  ASSERT_EQ(list.size(), 1u);
  EXPECT_EQ(list[0].name, "a");
  EXPECT_EQ(list[0].dimensions, std::vector<std::string>{"category"});

  EXPECT_TRUE(registry.Drop("a"));
  EXPECT_FALSE(registry.Drop("a"));
  EXPECT_EQ(registry.Get("a"), nullptr);
}

TEST(DatasetRegistryTest, CsvTextRegistration) {
  DatasetRegistry registry;
  CsvOptions options;
  options.time_column = "date";
  options.measure_columns = {"sales"};
  std::string error;
  ASSERT_TRUE(registry.RegisterCsvText(
      "sales", "date,region,sales\n0,east,1\n1,east,2\n2,east,3\n", options,
      &error))
      << error;
  EXPECT_EQ(registry.Get("sales")->num_time_buckets(), 3u);
  EXPECT_FALSE(registry.RegisterCsvText("bad", "nope", options, &error));
}

TEST(DatasetRegistryTest, EngineReuseAcrossSegmentationKnobs) {
  DatasetRegistry registry;
  std::string error;
  ASSERT_TRUE(
      registry.RegisterTable("ds", MakeTable(3), "<table>", &error));
  TSExplainConfig config = BaseConfig();
  const DatasetRegistry::TableRef ref = registry.GetRef("ds");
  ASSERT_NE(ref.table, nullptr);
  EXPECT_GT(ref.uid, 0u);
  EngineHandle h1 = registry.GetOrBuildEngine("ds", "engine-key", config,
                                              ref.table.get(), &error);
  ASSERT_TRUE(h1.ok());
  config.fixed_k = 4;  // same engine key: segmentation-only change
  EngineHandle h2 = registry.GetOrBuildEngine("ds", "engine-key", config,
                                              ref.table.get(), &error);
  ASSERT_TRUE(h2.ok());
  EXPECT_EQ(h1.engine.get(), h2.engine.get());
  EXPECT_EQ(registry.NumEngines(), 1u);
  EngineHandle h3 = registry.GetOrBuildEngine("ds", "other-key", config,
                                              ref.table.get(), &error);
  ASSERT_TRUE(h3.ok());
  EXPECT_NE(h1.engine.get(), h3.engine.get());
  EXPECT_EQ(registry.NumEngines(), 2u);

  // Dropping the dataset is safe while handles are out.
  EXPECT_TRUE(registry.Drop("ds"));
  EngineHandle h4 = registry.GetOrBuildEngine("ds", "engine-key", config,
                                              ref.table.get(), &error);
  EXPECT_FALSE(h4.ok());

  // Re-register under the same name: a fresh uid, and an engine build
  // that still carries the OLD table pointer is refused (the config was
  // never validated against the new schema).
  ASSERT_TRUE(
      registry.RegisterTable("ds", MakeTable(43), "<table>", &error));
  EXPECT_NE(registry.GetRef("ds").uid, ref.uid);
  EngineHandle h5 = registry.GetOrBuildEngine("ds", "engine-key", config,
                                              ref.table.get(), &error);
  EXPECT_FALSE(h5.ok());
  EXPECT_NE(error.find("changed during query"), std::string::npos);
  MutexLock lock(*h1.mu);
  const TSExplainResult still_works = h1.engine->Run();
  EXPECT_GT(still_works.chosen_k, 0);
}

TEST(ExplainServiceTest, DropDatasetInvalidatesItsCachedResults) {
  ExplainService service;
  std::string error;
  ASSERT_TRUE(service.registry().RegisterTable("ds", MakeTable(29),
                                               "<table>", &error));
  ASSERT_TRUE(service.registry().RegisterTable("other", MakeTable(31),
                                               "<table>", &error));
  ExplainRequest request;
  request.dataset = "ds";
  request.config = BaseConfig();
  const ExplainResponse v1 = service.Explain(request);
  ASSERT_TRUE(v1.ok);
  ExplainRequest other_request;
  other_request.dataset = "other";
  other_request.config = BaseConfig();
  ASSERT_TRUE(service.Explain(other_request).ok);

  // Drop + re-register the same name with DIFFERENT data: the old cached
  // result must not survive as a hit.
  EXPECT_TRUE(service.DropDataset("ds"));
  EXPECT_FALSE(service.DropDataset("ds"));
  ASSERT_TRUE(service.registry().RegisterTable("ds", MakeTable(37),
                                               "<table>", &error));
  const ExplainResponse v2 = service.Explain(request);
  ASSERT_TRUE(v2.ok);
  EXPECT_FALSE(v2.cache_hit);
  // Unrelated datasets keep their entries.
  EXPECT_TRUE(service.Explain(other_request).cache_hit);
}

TEST(ExplainServiceTest, ErrorResponsesInsteadOfAborts) {
  ExplainService service;
  std::string error;
  ASSERT_TRUE(service.registry().RegisterTable("ds", MakeTable(5),
                                               "<table>", &error));
  ExplainRequest request;
  request.dataset = "nope";
  request.config = BaseConfig();
  EXPECT_EQ(service.Explain(request).error_code, error_code::kNotFound);

  request.dataset = "ds";
  request.config.measure = "no_such_measure";
  EXPECT_EQ(service.Explain(request).error_code,
            error_code::kInvalidQuery);

  request.config = BaseConfig();
  request.config.explain_by_names = {"no_such_dim"};
  EXPECT_EQ(service.Explain(request).error_code,
            error_code::kInvalidQuery);

  request.config = BaseConfig();
  request.config.m = 0;
  EXPECT_EQ(service.Explain(request).error_code,
            error_code::kInvalidQuery);
}

TEST(ExplainServiceTest, CachedExplainMatchesDirectRunBitExactly) {
  const std::shared_ptr<const Table> table = MakeTable(7);
  ExplainService service;
  std::string error;
  ASSERT_TRUE(
      service.registry().RegisterTable("ds", table, "<table>", &error));

  ExplainRequest request;
  request.dataset = "ds";
  request.config = BaseConfig();

  const ExplainResponse cold = service.Explain(request);
  ASSERT_TRUE(cold.ok) << cold.error;
  EXPECT_FALSE(cold.cache_hit);
  const ExplainResponse hot = service.Explain(request);
  ASSERT_TRUE(hot.ok);
  EXPECT_TRUE(hot.cache_hit);
  EXPECT_EQ(hot.json, cold.json);
  EXPECT_EQ(hot.result.get(), cold.result.get());

  TSExplain direct(*table, request.config);
  ExpectIdenticalResults(*cold.result, direct.Run());
}

TEST(ExplainServiceTest, ExplainByOrderInvariantAndMatchesCanonicalRun) {
  // Results can depend on explain-by attribute order (top-m ties break by
  // attribute position), so the service must build its engine from the
  // SAME canonical spelling the cache key uses: both spellings get one
  // entry, and that entry equals a direct run with the sorted order.
  ExplainService service;
  std::string csv = "date,region,channel,sales\n";
  for (int t = 0; t < 12; ++t) {
    for (const char* region : {"east", "west"}) {
      for (const char* channel : {"web", "store"}) {
        csv += std::to_string(t) + "," + region + "," + channel + "," +
               std::to_string((t * 7 + (region[0] + channel[0]) % 13) %
                              23) +
               "\n";
      }
    }
  }
  CsvOptions options;
  options.time_column = "date";
  options.measure_columns = {"sales"};
  std::string error;
  ASSERT_TRUE(
      service.registry().RegisterCsvText("sales", csv, options, &error))
      << error;

  ExplainRequest forward;
  forward.dataset = "sales";
  forward.config.measure = "sales";
  forward.config.explain_by_names = {"region", "channel"};
  forward.config.max_order = 2;
  forward.config.fixed_k = 3;
  ExplainRequest backward = forward;
  backward.config.explain_by_names = {"channel", "region"};

  const ExplainResponse first = service.Explain(forward);
  ASSERT_TRUE(first.ok) << first.error;
  EXPECT_FALSE(first.cache_hit);
  const ExplainResponse second = service.Explain(backward);
  ASSERT_TRUE(second.ok);
  EXPECT_TRUE(second.cache_hit);  // same canonical query
  EXPECT_EQ(second.json, first.json);

  // The shared entry equals a direct run with the canonical (sorted)
  // spelling — NOT first-arrival spelling luck.
  TSExplainConfig canonical = forward.config;
  canonical.explain_by_names = {"channel", "region"};  // sorted
  TSExplain direct(*service.registry().Get("sales"), canonical);
  ExpectIdenticalResults(*first.result, direct.Run());
}

TEST(ExplainServiceTest, ConcurrentMixedQueriesBitIdenticalToSerial) {
  // The ISSUE acceptance check: >= 4 client threads, mixed cached and
  // uncached queries, all responses bit-identical to serial
  // TSExplain::Run on the same table.
  const std::shared_ptr<const Table> table = MakeTable(11);
  ExplainService service;
  std::string error;
  ASSERT_TRUE(
      service.registry().RegisterTable("ds", table, "<table>", &error));

  // Six query variants: same engine for the k-variants, distinct engines
  // for the m/metric variants.
  std::vector<TSExplainConfig> variants;
  for (int k : {0, 3, 5}) {
    TSExplainConfig config = BaseConfig();
    config.fixed_k = k;
    variants.push_back(config);
  }
  {
    TSExplainConfig config = BaseConfig();
    config.m = 2;
    variants.push_back(config);
    config = BaseConfig();
    config.diff_metric = DiffMetricKind::kRelativeChange;
    variants.push_back(config);
    config = BaseConfig();
    config.threads = 4;  // same key as variants[0]: results identical
    variants.push_back(config);
  }

  // Serial ground truth through the raw pipeline.
  std::vector<TSExplainResult> expected;
  expected.reserve(variants.size());
  for (const TSExplainConfig& config : variants) {
    TSExplain engine(*table, config);
    expected.push_back(engine.Run());
  }

  // Warm a subset so the concurrent phase mixes cache hits and misses.
  for (size_t v = 0; v < 2; ++v) {
    ExplainRequest request;
    request.dataset = "ds";
    request.config = variants[v];
    ASSERT_TRUE(service.Explain(request).ok);
  }

  // Gather responses on worker threads; assert on the main thread (gtest
  // assertions are not guaranteed thread-safe).
  constexpr int kThreads = 6;
  constexpr int kRounds = 8;
  std::vector<std::thread> clients;
  std::vector<std::vector<std::pair<size_t, ExplainResponse>>> collected(
      kThreads);
  clients.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    clients.emplace_back([&, t] {
      for (int round = 0; round < kRounds; ++round) {
        const size_t v =
            (static_cast<size_t>(t) + static_cast<size_t>(round)) %
            variants.size();
        ExplainRequest request;
        request.dataset = "ds";
        request.config = variants[v];
        collected[static_cast<size_t>(t)].emplace_back(
            v, service.Explain(request));
      }
    });
  }
  for (std::thread& client : clients) client.join();
  for (const auto& per_thread : collected) {
    ASSERT_EQ(per_thread.size(), static_cast<size_t>(kRounds));
    for (const auto& [v, response] : per_thread) {
      ASSERT_TRUE(response.ok) << response.error;
      ExpectIdenticalResults(*response.result, expected[v]);
    }
  }

  // The cache served most of the traffic: at most one computation per
  // distinct query key (5 distinct keys among 6 variants).
  const ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.cache.misses, 5u);
  EXPECT_GE(stats.cache.hits + stats.cache.coalesced,
            static_cast<size_t>(kThreads * kRounds + 2 - 5));
  // The k-variants shared one hot engine; m/diff-metric got their own.
  EXPECT_EQ(stats.hot_engines, 3u);
}

TEST(ExplainServiceTest, ExecutorFuturesDeliver) {
  ExplainService service;
  std::string error;
  ASSERT_TRUE(service.registry().RegisterTable("ds", MakeTable(13),
                                               "<table>", &error));
  ServiceExecutor executor(service);
  std::vector<std::future<ExplainResponse>> futures;
  for (int i = 0; i < 8; ++i) {
    ExplainRequest request;
    request.dataset = "ds";
    request.config = BaseConfig();
    request.config.fixed_k = 2 + (i % 3);
    futures.push_back(executor.SubmitExplain(std::move(request)));
  }
  for (auto& future : futures) {
    const ExplainResponse response = future.get();
    ASSERT_TRUE(response.ok) << response.error;
    EXPECT_FALSE(response.json.empty());
  }
}

TEST(ExplainServiceTest, SessionAppendInvalidatesOnlyThatSession) {
  const std::shared_ptr<const Table> table = MakeTable(17, 48);
  ExplainService service;
  std::string error;
  ASSERT_TRUE(
      service.registry().RegisterTable("ds", table, "<table>", &error));

  const TSExplainConfig config = BaseConfig();
  const uint64_t s1 = service.OpenSession("ds", config, &error);
  ASSERT_NE(s1, 0u) << error;
  const uint64_t s2 = service.OpenSession("ds", config, &error);
  ASSERT_NE(s2, 0u) << error;

  // Also warm a dataset-level cache entry: it must survive appends.
  ExplainRequest request;
  request.dataset = "ds";
  request.config = config;
  ASSERT_TRUE(service.Explain(request).ok);

  ExplainResponse r1 = service.ExplainSession(s1);
  ASSERT_TRUE(r1.ok) << r1.error;
  EXPECT_FALSE(r1.cache_hit);
  EXPECT_TRUE(service.ExplainSession(s1).cache_hit);
  ExplainResponse r2 = service.ExplainSession(s2);
  ASSERT_TRUE(r2.ok);
  EXPECT_FALSE(r2.cache_hit);
  EXPECT_TRUE(service.ExplainSession(s2).cache_hit);

  // Append one bucket to session 1 (category values already known, so no
  // rebuild) — only session 1's cache entries drop.
  std::vector<StreamRow> rows;
  for (int c = 1; c <= 4; ++c) {
    StreamRow row;
    row.dims = {"a" + std::to_string(c)};
    row.measures = {42.0 + c};
    rows.push_back(row);
  }
  ASSERT_TRUE(service.Append(s1, "t_new", rows, &error)) << error;
  EXPECT_EQ(service.SessionLength(s1), 49);
  EXPECT_EQ(service.SessionLength(s2), 48);

  const ExplainResponse after = service.ExplainSession(s1);
  ASSERT_TRUE(after.ok);
  EXPECT_FALSE(after.cache_hit);  // invalidated by the append
  EXPECT_TRUE(service.ExplainSession(s2).cache_hit);   // other session kept
  EXPECT_TRUE(service.Explain(request).cache_hit);     // dataset kept

  // Row-shape validation surfaces as an error, not an abort.
  StreamRow bad;
  bad.dims = {"a1", "extra"};
  bad.measures = {1.0};
  EXPECT_FALSE(service.Append(s1, "t_bad", {bad}, &error));
  EXPECT_NE(error.find("row shape mismatch"), std::string::npos);

  EXPECT_TRUE(service.CloseSession(s1));
  EXPECT_FALSE(service.CloseSession(s1));
  EXPECT_EQ(service.SessionLength(s1), -1);
}

TEST(ExplainServiceTest, SessionExplainMatchesStreamingEngine) {
  const std::shared_ptr<const Table> table = MakeTable(19, 48);
  ExplainService service;
  std::string error;
  ASSERT_TRUE(
      service.registry().RegisterTable("ds", table, "<table>", &error));
  const TSExplainConfig config = BaseConfig();
  const uint64_t session = service.OpenSession("ds", config, &error);
  ASSERT_NE(session, 0u);

  StreamingTSExplain reference(*table, config);

  std::vector<StreamRow> rows;
  for (int c = 1; c <= 4; ++c) {
    StreamRow row;
    row.dims = {"a" + std::to_string(c)};
    row.measures = {10.0 * c};
    rows.push_back(row);
  }

  const ExplainResponse first = service.ExplainSession(session);
  ASSERT_TRUE(first.ok);
  ExpectIdenticalResults(*first.result, reference.Explain());

  ASSERT_TRUE(service.Append(session, "t_a", rows, &error)) << error;
  reference.AppendBucket("t_a", rows);
  const ExplainResponse second = service.ExplainSession(session);
  ASSERT_TRUE(second.ok);
  ExpectIdenticalResults(*second.result, reference.Explain());
}

TEST(ExplainServiceTest, OverloadShedsColdButNeverHotQueries) {
  ServiceOptions options;
  options.admission.max_concurrent = 1;
  options.admission.queue_depth = 0;
  ExplainService service(options);
  std::string error;
  ASSERT_TRUE(service.registry().RegisterTable("ds", MakeTable(41),
                                               "<table>", &error));

  ExplainRequest hot;
  hot.dataset = "ds";
  hot.config = BaseConfig();
  ASSERT_TRUE(service.Explain(hot).ok);  // warm the cache

  // Occupy the single admission slot directly (deterministic pressure —
  // no racing threads needed).
  auto blocker = std::make_unique<AdmissionController::Ticket>(
      service.admission().Admit("blocker", "", 1));
  ASSERT_TRUE(blocker->admitted());

  // A COLD query is shed with a structured overloaded error + hint.
  ExplainRequest cold = hot;
  cold.config.fixed_k = 4;
  const ExplainResponse shed = service.Explain(cold);
  EXPECT_FALSE(shed.ok);
  EXPECT_EQ(shed.error_code, error_code::kOverloaded);
  EXPECT_GT(shed.retry_after_ms, 0.0);

  // The HOT query still serves from cache under full overload.
  const ExplainResponse served = service.Explain(hot);
  EXPECT_TRUE(served.ok);
  EXPECT_TRUE(served.cache_hit);

  // Releasing the slot lets the cold query through, bit-identical to a
  // serial run (shedding never corrupts later executions).
  blocker.reset();
  const ExplainResponse after = service.Explain(cold);
  ASSERT_TRUE(after.ok) << after.error;
  TSExplain direct(*service.registry().Get("ds"), cold.config);
  ExpectIdenticalResults(*after.result, direct.Run());

  const ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.admission.shed_overload, 1u);
  EXPECT_GE(stats.admission.admitted, 2u);
}

TEST(ExplainServiceTest, TenantQuotasShedAndNamespaceTheCache) {
  ServiceOptions options;
  // Roomy global capacity (independent of this box's pool size), so the
  // per-tenant cap below is the only binding constraint.
  options.admission.max_concurrent = 4;
  options.admission.per_tenant_inflight = 1;
  ExplainService service(options);
  std::string error;
  ASSERT_TRUE(service.registry().RegisterTable("ds", MakeTable(43),
                                               "<table>", &error));

  ExplainRequest request;
  request.dataset = "ds";
  request.config = BaseConfig();

  // Invalid tenant ids are rejected before any work happens.
  request.tenant = "not ok";
  EXPECT_EQ(service.Explain(request).error_code, error_code::kBadRequest);

  // Tenants get their own cache namespace: the same query computes once
  // per namespace but yields bit-identical results.
  request.tenant = "acme";
  const ExplainResponse acme = service.Explain(request);
  ASSERT_TRUE(acme.ok) << acme.error;
  EXPECT_FALSE(acme.cache_hit);
  EXPECT_EQ(acme.query_key.rfind("tenant/acme/", 0), 0u);
  request.tenant.clear();
  const ExplainResponse shared = service.Explain(request);
  ASSERT_TRUE(shared.ok);
  EXPECT_FALSE(shared.cache_hit);  // distinct namespace, fresh compute
  ExpectIdenticalResults(*acme.result, *shared.result);
  request.tenant = "acme";
  EXPECT_TRUE(service.Explain(request).cache_hit);

  // Per-tenant in-flight cap: with acme's one slot held, acme's next
  // cold query is shed with quota_exceeded; other tenants are untouched.
  auto held = std::make_unique<AdmissionController::Ticket>(
      service.admission().Admit("held", "acme", 1));
  ASSERT_TRUE(held->admitted());
  ExplainRequest cold = request;
  cold.config.fixed_k = 5;
  const ExplainResponse quota = service.Explain(cold);
  EXPECT_FALSE(quota.ok);
  EXPECT_EQ(quota.error_code, error_code::kQuotaExceeded);
  EXPECT_GT(quota.retry_after_ms, 0.0);
  // acme's HOT query still serves (cache hits bypass admission).
  EXPECT_TRUE(service.Explain(request).cache_hit);
  cold.tenant = "globex";
  EXPECT_TRUE(service.Explain(cold).ok);
  held.reset();
  cold.tenant = "acme";
  EXPECT_TRUE(service.Explain(cold).ok);

  const ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.admission.shed_tenant, 1u);
  EXPECT_EQ(stats.tenants, 2u);
}

TEST(ExplainServiceTest, TenantCacheBudgetBoundsOneTenantsFootprint) {
  ServiceOptions options;
  options.cache_shards = 1;  // exact per-shard budget math
  // A budget too small for even one entry: the budgeted tenant's results
  // are served but never cached, while untenanted queries cache fine.
  options.tenant_cache_budget_bytes = 16;
  ExplainService service(options);
  std::string error;
  ASSERT_TRUE(service.registry().RegisterTable("ds", MakeTable(47),
                                               "<table>", &error));

  ExplainRequest request;
  request.dataset = "ds";
  request.config = BaseConfig();
  request.tenant = "spammy";
  ASSERT_TRUE(service.Explain(request).ok);
  EXPECT_FALSE(service.Explain(request).cache_hit);  // budget kept it out

  request.tenant.clear();
  ASSERT_TRUE(service.Explain(request).ok);
  EXPECT_TRUE(service.Explain(request).cache_hit);  // shared LRU unbudgeted
}

TEST(ExplainServiceTest, DropDatasetInvalidatesTenantNamespacesToo) {
  ExplainService service;
  std::string error;
  ASSERT_TRUE(service.registry().RegisterTable("ds", MakeTable(53),
                                               "<table>", &error));
  ExplainRequest request;
  request.dataset = "ds";
  request.config = BaseConfig();
  request.tenant = "acme";
  ASSERT_TRUE(service.Explain(request).ok);
  EXPECT_TRUE(service.Explain(request).cache_hit);

  EXPECT_TRUE(service.DropDataset("ds"));
  ASSERT_TRUE(service.registry().RegisterTable("ds", MakeTable(59),
                                               "<table>", &error));
  const ExplainResponse fresh = service.Explain(request);
  ASSERT_TRUE(fresh.ok);
  EXPECT_FALSE(fresh.cache_hit);  // tenant-namespaced entry went too
}

// ISSUE satellite: streaming-under-load determinism. A session receiving
// appends while concurrent reads hammer the service must produce, at
// every length, results bit-identical to a serial StreamingTSExplain
// replay — whatever thread grants the admission controller hands out
// (config asks for 8 threads).
TEST(ExplainServiceTest, StreamingUnderConcurrentLoadMatchesSerialReplay) {
  const std::shared_ptr<const Table> table = MakeTable(61, 48);
  ExplainService service;
  std::string error;
  ASSERT_TRUE(
      service.registry().RegisterTable("ds", table, "<table>", &error));

  TSExplainConfig config = BaseConfig();
  config.threads = 8;
  const uint64_t session = service.OpenSession("ds", config, &error);
  ASSERT_NE(session, 0u) << error;

  // Background load: concurrent dataset explains + session re-explains.
  std::atomic<bool> stop{false};
  std::atomic<int> background_failures{0};
  constexpr int kReaders = 4;
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      int round = 0;
      while (!stop.load()) {
        if ((r + round) % 2 == 0) {
          ExplainRequest request;
          request.dataset = "ds";
          request.config = BaseConfig();
          request.config.threads = 8;
          request.config.fixed_k = 2 + ((r + round) % 3);
          if (!service.Explain(request).ok) background_failures.fetch_add(1);
        } else {
          const ExplainResponse response = service.ExplainSession(session);
          // Sessions race with appends here; only real errors count.
          if (!response.ok &&
              response.error_code != error_code::kNotFound) {
            background_failures.fetch_add(1);
          }
        }
        ++round;
      }
    });
  }

  // Foreground: append + explain, recording every response.
  auto make_rows = [](int salt) {
    std::vector<StreamRow> rows;
    for (int c = 1; c <= 4; ++c) {
      StreamRow row;
      row.dims = {"a" + std::to_string(c)};
      row.measures = {10.0 * c + salt};
      rows.push_back(row);
    }
    return rows;
  };
  constexpr int kAppends = 6;
  std::vector<std::pair<int, ExplainResponse>> recorded;
  {
    const ExplainResponse first = service.ExplainSession(session);
    ASSERT_TRUE(first.ok) << first.error;
    recorded.emplace_back(48, first);
  }
  for (int a = 0; a < kAppends; ++a) {
    ASSERT_TRUE(service.Append(session, "t_load_" + std::to_string(a),
                               make_rows(a), &error))
        << error;
    const ExplainResponse response = service.ExplainSession(session);
    ASSERT_TRUE(response.ok) << response.error;
    recorded.emplace_back(49 + a, response);
  }
  stop.store(true);
  for (std::thread& reader : readers) reader.join();
  EXPECT_EQ(background_failures.load(), 0);

  // Serial replay: same table, same config, same append/explain
  // interleaving, no concurrency, default threading.
  StreamingTSExplain replay(*table, config);
  {
    const TSExplainResult expected = replay.Explain();
    ExpectIdenticalResults(*recorded[0].second.result, expected);
  }
  for (int a = 0; a < kAppends; ++a) {
    replay.AppendBucket("t_load_" + std::to_string(a), make_rows(a));
    const TSExplainResult expected = replay.Explain();
    ASSERT_EQ(recorded[static_cast<size_t>(a) + 1].first, 50 + a - 1);
    ExpectIdenticalResults(*recorded[static_cast<size_t>(a) + 1].second.result,
                           expected);
  }
}

// ISSUE satellite: the timing breakdown must stay a non-negative
// partition (sum(modules) <= total) even at threads = 8 with concurrent
// service traffic advancing the shared explainer counters.
TEST(ExplainServiceTest, TimingBreakdownStaysAPartitionUnderConcurrency) {
  ExplainService service;
  std::string error;
  ASSERT_TRUE(service.registry().RegisterTable("ds", MakeTable(67),
                                               "<table>", &error));
  constexpr int kThreads = 6;
  std::vector<std::thread> clients;
  std::vector<std::vector<ExplainResponse>> collected(kThreads);
  clients.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    clients.emplace_back([&, t] {
      for (int k = 2; k <= 5; ++k) {
        ExplainRequest request;
        request.dataset = "ds";
        request.config = BaseConfig();
        request.config.threads = 8;
        request.config.fixed_k = (t + k) % 4 + 2;
        collected[static_cast<size_t>(t)].push_back(
            service.Explain(request));
      }
    });
  }
  for (std::thread& client : clients) client.join();
  for (const auto& per_thread : collected) {
    for (const ExplainResponse& response : per_thread) {
      ASSERT_TRUE(response.ok) << response.error;
      const TimingBreakdown& timing = response.result->timing;
      EXPECT_GE(timing.precompute_ms, 0.0);
      EXPECT_GE(timing.cascading_ms, 0.0);
      EXPECT_GE(timing.segmentation_ms, 0.0);
      const double slack = 1e-6 * std::max(1.0, timing.total_ms);
      EXPECT_LE(timing.TotalMs(), timing.total_ms + slack);
    }
  }
}

TEST(ProtocolTest, ParseQueryConfigRoundTrip) {
  JsonValue request;
  std::string error;
  ASSERT_TRUE(ParseJson(
      R"({"op":"explain","dataset":"ds","measure":"value",
          "explain_by":["category"],"k":4,"order":2,"m":5,
          "agg":"avg","smooth":3,"fast":true,"exclude":["category=cat0"],
          "diff_metric":"rel","variance_metric":"dist1"})",
      &request, &error))
      << error;
  TSExplainConfig config;
  ASSERT_TRUE(ParseQueryConfig(request, &config, &error)) << error;
  EXPECT_EQ(config.measure, "value");
  EXPECT_EQ(config.explain_by_names,
            std::vector<std::string>{"category"});
  EXPECT_EQ(config.fixed_k, 4);
  EXPECT_EQ(config.max_order, 2);
  EXPECT_EQ(config.m, 5);
  EXPECT_EQ(config.aggregate, AggregateFunction::kAvg);
  EXPECT_EQ(config.smooth_window, 3);
  EXPECT_TRUE(config.use_filter);
  EXPECT_TRUE(config.use_guess_verify);
  EXPECT_TRUE(config.use_sketch);
  EXPECT_EQ(config.exclude, std::vector<std::string>{"category=cat0"});
  EXPECT_EQ(config.diff_metric, DiffMetricKind::kRelativeChange);
  EXPECT_EQ(config.variance_metric, VarianceMetric::kDist1);

  JsonValue bad;
  ASSERT_TRUE(ParseJson(R"({"agg":"median"})", &bad, &error));
  EXPECT_FALSE(ParseQueryConfig(bad, &config, &error));
  ASSERT_TRUE(ParseJson(R"({"explain_by":[1,2]})", &bad, &error));
  EXPECT_FALSE(ParseQueryConfig(bad, &config, &error));

  // Hostile numeric fields must not UB-cast; out-of-range ints keep the
  // config defaults (and thus pass or fail validation downstream, never
  // crash the server).
  JsonValue huge;
  TSExplainConfig defaults;
  ASSERT_TRUE(ParseJson(R"({"k":1e300,"m":-1e300,"order":1e999})", &huge,
                        &error));
  TSExplainConfig parsed;
  ASSERT_TRUE(ParseQueryConfig(huge, &parsed, &error));
  EXPECT_EQ(parsed.fixed_k, defaults.fixed_k);
  EXPECT_EQ(parsed.m, defaults.m);
  EXPECT_EQ(parsed.max_order, defaults.max_order);
}

TEST(ProtocolTest, HandlerEndToEnd) {
  // The stats op reads the process-global metrics registry; zero it so the
  // counter assertions below see only this test's traffic.
  MetricRegistry::Global().ResetForTest();
  ExplainService service;
  ProtocolHandler handler(service);
  std::string error;

  auto handle = [&](const std::string& line) {
    JsonValue request;
    std::string parse_error;
    EXPECT_TRUE(ParseJson(line, &request, &parse_error)) << parse_error;
    return handler.Handle(request);
  };

  // register (inline CSV) -> list -> explain -> cache hit -> stats.
  std::string csv = "date,region,sales\\n";
  for (int t = 0; t < 10; ++t) {
    csv += std::to_string(t) + ",east," + std::to_string(10 + t) + "\\n";
    csv += std::to_string(t) + ",west," + std::to_string(20 - t) + "\\n";
  }
  const std::string reg = handle(
      R"({"op":"register","id":1,"name":"sales","csv":")" + csv +
      R"(","time_column":"date","measures":["sales"]})");
  EXPECT_NE(reg.find("\"ok\":true"), std::string::npos) << reg;
  EXPECT_NE(reg.find("\"time_buckets\":10"), std::string::npos) << reg;

  const std::string list = handle(R"({"op":"list_datasets","id":2})");
  EXPECT_NE(list.find("\"name\":\"sales\""), std::string::npos) << list;

  const std::string explain_line =
      R"({"op":"explain","id":3,"dataset":"sales","measure":"sales",
          "explain_by":["region"],"k":2})";
  const std::string cold = handle(explain_line);
  EXPECT_NE(cold.find("\"ok\":true"), std::string::npos) << cold;
  EXPECT_NE(cold.find("\"cache_hit\":false"), std::string::npos) << cold;
  EXPECT_NE(cold.find("\"result\":{"), std::string::npos) << cold;
  const std::string hot = handle(explain_line);
  EXPECT_NE(hot.find("\"cache_hit\":true"), std::string::npos) << hot;

  const std::string stats = handle(R"({"op":"stats","id":4})");
  EXPECT_NE(stats.find("\"misses\":1"), std::string::npos) << stats;
  EXPECT_NE(stats.find("\"hits\":1"), std::string::npos) << stats;

  // Errors carry stable codes and echo the id.
  const std::string unknown = handle(R"({"op":"nope","id":"x"})");
  EXPECT_NE(unknown.find("\"code\":\"unknown_op\""), std::string::npos);
  EXPECT_NE(unknown.find("\"id\":\"x\""), std::string::npos);
  const std::string missing =
      handle(R"({"op":"explain","id":5,"dataset":"ghost"})");
  EXPECT_NE(missing.find("\"code\":\"not_found\""), std::string::npos);
  EXPECT_EQ(handler.MakeParseError("bad").find(
                "{\"id\":null,\"ok\":false"),
            0u);

  // Session lifecycle through the protocol.
  const std::string open = handle(
      R"({"op":"open_session","id":6,"dataset":"sales",
          "measure":"sales","explain_by":["region"],"k":2})");
  EXPECT_NE(open.find("\"session\":1"), std::string::npos) << open;
  const std::string append = handle(
      R"({"op":"append","id":7,"session":1,"label":"zz",
          "rows":[{"dims":["east"],"measures":[30]},
                  {"dims":["west"],"measures":[11]}]})");
  EXPECT_NE(append.find("\"n\":11"), std::string::npos) << append;
  const std::string session_explain =
      handle(R"({"op":"explain_session","id":8,"session":1})");
  EXPECT_NE(session_explain.find("\"ok\":true"), std::string::npos)
      << session_explain;
  const std::string close =
      handle(R"({"op":"close_session","id":9,"session":1})");
  EXPECT_NE(close.find("\"ok\":true"), std::string::npos);
  const std::string gone =
      handle(R"({"op":"explain_session","id":10,"session":1})");
  EXPECT_NE(gone.find("\"code\":\"not_found\""), std::string::npos);
}

TEST(ProtocolTest, OverloadAndTenantWireShapes) {
  // Stats counters come from the process-global metrics registry.
  MetricRegistry::Global().ResetForTest();
  ServiceOptions options;
  options.admission.max_concurrent = 1;
  options.admission.queue_depth = 0;
  ExplainService service(options);
  ProtocolHandler handler(service);
  std::string error;
  ASSERT_TRUE(service.registry().RegisterTable("ds", MakeTable(71),
                                               "<table>", &error));

  auto handle = [&](const std::string& line) {
    JsonValue request;
    std::string parse_error;
    EXPECT_TRUE(ParseJson(line, &request, &parse_error)) << parse_error;
    return handler.Handle(request);
  };

  // Tenant field flows through explain and namespaces the cache.
  const std::string tenant_line =
      R"({"op":"explain","id":1,"dataset":"ds","measure":"value",
          "explain_by":["category"],"k":3,"tenant":"acme"})";
  EXPECT_NE(handle(tenant_line).find("\"ok\":true"), std::string::npos);
  EXPECT_NE(handle(tenant_line).find("\"cache_hit\":true"),
            std::string::npos);

  // A shed explain carries code + retry_after_ms inside the error object.
  auto blocker = std::make_unique<AdmissionController::Ticket>(
      service.admission().Admit("blocker", "", 1));
  ASSERT_TRUE(blocker->admitted());
  const std::string shed = handle(
      R"({"op":"explain","id":2,"dataset":"ds","measure":"value",
          "explain_by":["category"],"k":4})");
  EXPECT_NE(shed.find("\"code\":\"overloaded\""), std::string::npos) << shed;
  EXPECT_NE(shed.find("\"retry_after_ms\":"), std::string::npos) << shed;
  blocker.reset();

  // Transport-level shed helper: same shape, id echoed.
  JsonValue request;
  std::string parse_error;
  ASSERT_TRUE(ParseJson(R"({"op":"explain","id":7,"dataset":"ds"})",
                        &request, &parse_error));
  const std::string transport_shed = handler.MakeOverloaded(request);
  EXPECT_EQ(transport_shed.find("{\"id\":7,\"ok\":false"), 0u)
      << transport_shed;
  EXPECT_NE(transport_shed.find("\"code\":\"overloaded\""),
            std::string::npos);
  EXPECT_NE(transport_shed.find("\"retry_after_ms\":"), std::string::npos);

  // Expensive-op classification for the transport's backlog bounding.
  EXPECT_TRUE(ProtocolHandler::IsExpensiveOp("explain"));
  EXPECT_TRUE(ProtocolHandler::IsExpensiveOp("explain_session"));
  EXPECT_FALSE(ProtocolHandler::IsExpensiveOp("recommend"));
  EXPECT_FALSE(ProtocolHandler::IsExpensiveOp("stats"));

  // Stats expose the admission + tenant counters.
  const std::string stats = handle(R"({"op":"stats","id":3})");
  EXPECT_NE(stats.find("\"admission\":{"), std::string::npos) << stats;
  EXPECT_NE(stats.find("\"shed_overload\":1"), std::string::npos) << stats;
  EXPECT_NE(stats.find("\"tenants\":1"), std::string::npos) << stats;
  EXPECT_NE(stats.find("\"budget_evictions\":"), std::string::npos) << stats;
}

}  // namespace
}  // namespace tsexplain
