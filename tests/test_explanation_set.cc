// Tests for explanation-list similarity utilities and the optimal-PLA
// ablation baseline.

#include <gtest/gtest.h>

#include "src/baselines/bottom_up.h"
#include "src/baselines/optimal_pla.h"
#include "src/common/rng.h"
#include "src/diff/explanation_set.h"

namespace tsexplain {
namespace {

TEST(ExplanationSet, SameRanked) {
  EXPECT_TRUE(SameRankedExplanations({1, 2, 3}, {1, 2, 3}));
  EXPECT_FALSE(SameRankedExplanations({1, 2, 3}, {1, 3, 2}));
  EXPECT_FALSE(SameRankedExplanations({1, 2}, {1, 2, 3}));
  EXPECT_TRUE(SameRankedExplanations({}, {}));
}

TEST(ExplanationSet, Jaccard) {
  EXPECT_DOUBLE_EQ(ExplanationJaccard({1, 2, 3}, {1, 2, 3}), 1.0);
  EXPECT_DOUBLE_EQ(ExplanationJaccard({1, 2, 3}, {3, 2, 1}), 1.0);
  EXPECT_DOUBLE_EQ(ExplanationJaccard({1, 2}, {2, 3}), 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(ExplanationJaccard({1}, {2}), 0.0);
  EXPECT_DOUBLE_EQ(ExplanationJaccard({}, {}), 1.0);
}

TEST(ExplanationSet, RankWeightedOverlapProperties) {
  // Identical lists -> 1; disjoint -> 0; reordering costs something.
  EXPECT_DOUBLE_EQ(RankWeightedOverlap({1, 2, 3}, {1, 2, 3}), 1.0);
  EXPECT_DOUBLE_EQ(RankWeightedOverlap({1, 2}, {3, 4}), 0.0);
  const double reordered = RankWeightedOverlap({1, 2, 3}, {3, 2, 1});
  EXPECT_GT(reordered, 0.5);
  EXPECT_LT(reordered, 1.0);
  // Symmetry.
  EXPECT_DOUBLE_EQ(RankWeightedOverlap({1, 2}, {2, 3}),
                   RankWeightedOverlap({2, 3}, {1, 2}));
  // Range on random lists.
  Rng rng(7);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<ExplId> a, b;
    for (int i = 0; i < 3; ++i) {
      a.push_back(static_cast<ExplId>(rng.UniformInt(0, 9)));
      b.push_back(static_cast<ExplId>(rng.UniformInt(0, 9)));
    }
    const double v = RankWeightedOverlap(a, b);
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 1.0 + 1e-12);
  }
}

TEST(ExplanationSet, SchemeDiversity) {
  EXPECT_DOUBLE_EQ(SchemeExplanationDiversity({{1, 2}, {1, 2}, {3}}), 0.5);
  EXPECT_DOUBLE_EQ(SchemeExplanationDiversity({{1}, {2}, {3}}), 1.0);
  EXPECT_DOUBLE_EQ(SchemeExplanationDiversity({{1}, {1}, {1}}), 0.0);
  EXPECT_DOUBLE_EQ(SchemeExplanationDiversity({{1, 2}}), 1.0);
  EXPECT_DOUBLE_EQ(SchemeExplanationDiversity({}), 1.0);
}

// --- optimal PLA ---------------------------------------------------------

std::vector<double> PiecewiseLinear(uint64_t seed) {
  Rng rng(seed);
  std::vector<double> v(60);
  double level = 0.0;
  for (int t = 1; t < 60; ++t) {
    const double slope = t <= 20 ? 2.0 : (t <= 40 ? -1.5 : 3.0);
    level += slope;
    v[static_cast<size_t>(t)] = level + rng.Gaussian(0.0, 0.2);
  }
  return v;
}

TEST(OptimalPla, FindsExactBreakpointsOnCleanData) {
  std::vector<double> v(60);
  double level = 0.0;
  for (int t = 1; t < 60; ++t) {
    level += t <= 20 ? 2.0 : (t <= 40 ? -1.5 : 3.0);
    v[static_cast<size_t>(t)] = level;
  }
  EXPECT_EQ(OptimalPlaSegment(v, 3), (std::vector<int>{0, 20, 40, 59}));
}

TEST(OptimalPla, NeverWorseThanBottomUp) {
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    const std::vector<double> v = PiecewiseLinear(seed);
    for (int k : {2, 3, 5}) {
      const double optimal = PlaTotalSse(v, OptimalPlaSegment(v, k));
      const double greedy = PlaTotalSse(v, BottomUpSegment(v, k));
      EXPECT_LE(optimal, greedy + 1e-9) << "seed " << seed << " k " << k;
    }
  }
}

TEST(OptimalPla, MoreSegmentsNeverIncreaseError) {
  const std::vector<double> v = PiecewiseLinear(4);
  double prev = PlaTotalSse(v, OptimalPlaSegment(v, 1));
  for (int k = 2; k <= 8; ++k) {
    const double current = PlaTotalSse(v, OptimalPlaSegment(v, k));
    EXPECT_LE(current, prev + 1e-9);
    prev = current;
  }
}

TEST(OptimalPla, ClampsOversizedK) {
  const std::vector<double> v{1.0, 2.0, 7.0, 3.0};
  EXPECT_EQ(OptimalPlaSegment(v, 99).size(), 4u);  // n-1 = 3 segments
}

}  // namespace
}  // namespace tsexplain
