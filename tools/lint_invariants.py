#!/usr/bin/env python3
"""Repo invariant linter (run by ctest as `lint_invariants` and by CI).

Checks cross-cutting rules that the compiler cannot express:

R1a  raw-sync-primitive: no `std::mutex` / `std::shared_mutex` /
     `std::condition_variable` members or locals in src/ or tools/
     outside src/common/mutex.h. All locking goes through the annotated
     wrappers (tsexplain::Mutex / MutexLock / CondVar) so clang's
     -Wthread-safety can see it.

R1b  unguarded-mutex: every `Mutex` member declared in src/ or tools/
     must have at least one TSE_GUARDED_BY / TSE_PT_GUARDED_BY /
     TSE_REQUIRES / TSE_ACQUIRE user in its header/source pair — a mutex
     no annotation references protects nothing the analysis can check.
     Escape hatch for handshake-only mutexes (the guarded state is an
     atomic): a `lint:allow(unguarded-mutex)` comment on the declaration
     line or one of the two lines above it.

R2   storage-abort: no TSE_CHECK / TSE_CHECK_* / TSE_DCHECK tokens in
     src/storage/*.{h,cc} outside comments and string literals. Storage
     decodes untrusted bytes (snapshots, append logs, session logs); a
     corrupt file must surface as a StorageErrorCode, never abort the
     process.

R3   duplicate-bench-slug: EmitResult("literal"...) slugs must be unique
     across bench/*.cc — two benches writing the same slug silently
     overwrite each other in BENCH_*.json. Dynamically built slugs
     (StrFormat etc.) are skipped; uniqueness for those is the bench's
     own responsibility.

Exit status: 0 when clean, 1 with one `RULE: file:line: message` line per
violation otherwise.
"""

import argparse
import os
import re
import sys

MUTEX_HEADER = os.path.join("src", "common", "mutex.h")
ALLOW_UNGUARDED = "lint:allow(unguarded-mutex)"

RAW_PRIMITIVE = re.compile(
    r"\bstd::(mutex|shared_mutex|recursive_mutex|timed_mutex|"
    r"condition_variable(_any)?)\b")
# A Mutex member declaration: optionally `mutable`, the type, a name,
# optionally an initializer/attribute tail. Matches `Mutex mu_;` and
# `mutable Mutex mu;` but not `MutexLock ...` or `class ... Mutex {`.
MUTEX_MEMBER = re.compile(
    r"^\s*(?:mutable\s+)?(?:tsexplain::)?Mutex\s+(\w+)\s*;")
ANNOTATION_USER = re.compile(
    r"TSE_(?:PT_)?GUARDED_BY|TSE_REQUIRES|TSE_ACQUIRE|TSE_RELEASE|"
    r"TSE_EXCLUDES|TSE_ASSERT_CAPABILITY")
CHECK_TOKEN = re.compile(r"\bTSE_D?CHECK(?:_[A-Z]+)?\b")
EMIT_LITERAL = re.compile(r'\bEmitResult\s*\(\s*"((?:[^"\\]|\\.)*)"')


def strip_comments_and_strings(text):
    """Replaces comment bodies and string/char literal bodies with spaces,
    preserving line numbers (newlines survive)."""
    out = []
    i, n = 0, len(text)
    state = "code"  # code | line_comment | block_comment | string | char
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line_comment"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block_comment"
                out.append("  ")
                i += 2
                continue
            if c == '"':
                state = "string"
                out.append('"')
                i += 1
                continue
            if c == "'":
                state = "char"
                out.append("'")
                i += 1
                continue
            out.append(c)
        elif state == "line_comment":
            if c == "\n":
                state = "code"
                out.append("\n")
            else:
                out.append(" ")
        elif state == "block_comment":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
                continue
            out.append("\n" if c == "\n" else " ")
        elif state in ("string", "char"):
            quote = '"' if state == "string" else "'"
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            if c == quote:
                state = "code"
                out.append(quote)
            elif c == "\n":  # unterminated (macro line continuation etc.)
                state = "code"
                out.append("\n")
            else:
                out.append(" ")
        i += 1
    return "".join(out)


def iter_files(root, rel_dirs, exts):
    for rel_dir in rel_dirs:
        base = os.path.join(root, rel_dir)
        for dirpath, _, filenames in os.walk(base):
            for name in sorted(filenames):
                if os.path.splitext(name)[1] in exts:
                    yield os.path.join(dirpath, name)


def relpath(root, path):
    return os.path.relpath(path, root).replace(os.sep, "/")


def check_raw_primitives(root, violations):
    """R1a: raw std sync primitives outside the wrapper header."""
    for path in iter_files(root, ["src", "tools"], {".h", ".cc"}):
        rel = relpath(root, path)
        if rel == MUTEX_HEADER.replace(os.sep, "/"):
            continue
        with open(path, encoding="utf-8") as f:
            code = strip_comments_and_strings(f.read())
        for lineno, line in enumerate(code.splitlines(), 1):
            if "#include" in line:
                continue
            m = RAW_PRIMITIVE.search(line)
            if m:
                violations.append(
                    ("raw-sync-primitive", rel, lineno,
                     "use tsexplain::%s from src/common/mutex.h instead of "
                     "std::%s (the std type carries no thread-safety "
                     "annotations)" % (
                         "CondVar" if "condition" in m.group(1) else "Mutex",
                         m.group(1))))


def check_unguarded_mutexes(root, violations):
    """R1b: every Mutex member needs an annotation user in its file pair."""
    for path in iter_files(root, ["src", "tools"], {".h", ".cc"}):
        rel = relpath(root, path)
        if rel == MUTEX_HEADER.replace(os.sep, "/"):
            continue
        with open(path, encoding="utf-8") as f:
            raw = f.read()
        code = strip_comments_and_strings(raw)
        raw_lines = raw.splitlines()
        members = []
        for lineno, line in enumerate(code.splitlines(), 1):
            m = MUTEX_MEMBER.match(line)
            if not m:
                continue
            window = raw_lines[max(0, lineno - 3):lineno]
            if any(ALLOW_UNGUARDED in w for w in window):
                continue
            members.append((lineno, m.group(1)))
        if not members:
            continue
        # Annotations may live in either half of the header/source pair.
        pair_text = code
        stem, ext = os.path.splitext(path)
        other = stem + (".cc" if ext == ".h" else ".h")
        if os.path.exists(other):
            with open(other, encoding="utf-8") as f:
                pair_text += strip_comments_and_strings(f.read())
        if ANNOTATION_USER.search(pair_text):
            continue
        for lineno, name in members:
            violations.append(
                ("unguarded-mutex", rel, lineno,
                 "Mutex member '%s' has no TSE_GUARDED_BY / TSE_REQUIRES / "
                 "TSE_ACQUIRE user in %s or its pair; annotate what it "
                 "guards or mark the declaration %s" % (
                     name, rel, ALLOW_UNGUARDED)))


def check_storage_aborts(root, violations):
    """R2: untrusted-input decode paths must not abort."""
    for path in iter_files(root, [os.path.join("src", "storage")],
                           {".h", ".cc"}):
        rel = relpath(root, path)
        with open(path, encoding="utf-8") as f:
            code = strip_comments_and_strings(f.read())
        for lineno, line in enumerate(code.splitlines(), 1):
            m = CHECK_TOKEN.search(line)
            if m:
                violations.append(
                    ("storage-abort", rel, lineno,
                     "%s in a storage decode path: corrupt input must "
                     "return a StorageErrorCode, not abort" % m.group(0)))


def check_bench_slugs(root, violations):
    """R3: EmitResult string-literal slugs unique across bench/*.cc."""
    seen = {}
    for path in iter_files(root, ["bench"], {".cc"}):
        rel = relpath(root, path)
        try:
            with open(path, encoding="utf-8") as f:
                raw = f.read()
        except FileNotFoundError:
            continue
        code = strip_comments_and_strings(raw)
        # Literals were blanked by the stripper; re-scan the raw text but
        # only at positions the stripper kept as code-or-string starts.
        for lineno, line in enumerate(raw.splitlines(), 1):
            stripped = code.splitlines()[lineno - 1] if lineno <= len(
                code.splitlines()) else ""
            if "EmitResult" not in stripped:
                continue
            for m in EMIT_LITERAL.finditer(line):
                slug = m.group(1)
                # A literal that is immediately concatenated or formatted
                # is a dynamic prefix, not the full slug: skip it.
                tail = line[m.end():]
                if tail.lstrip().startswith("+") or slug.count("%") > 0:
                    continue
                if slug in seen:
                    prev_rel, prev_line = seen[slug]
                    violations.append(
                        ("duplicate-bench-slug", rel, lineno,
                         "EmitResult slug '%s' already used at %s:%d; slugs "
                         "must be unique or BENCH json rows overwrite each "
                         "other" % (slug, prev_rel, prev_line)))
                else:
                    seen[slug] = (rel, lineno)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--root", default=".",
                        help="repository root to lint (default: cwd)")
    args = parser.parse_args()
    root = os.path.abspath(args.root)

    violations = []
    check_raw_primitives(root, violations)
    check_unguarded_mutexes(root, violations)
    check_storage_aborts(root, violations)
    check_bench_slugs(root, violations)

    for rule, rel, lineno, message in violations:
        print("%s: %s:%d: %s" % (rule, rel, lineno, message))
    if violations:
        print("lint_invariants: %d violation(s)" % len(violations),
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
