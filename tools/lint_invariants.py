#!/usr/bin/env python3
"""Repo invariant linter (run by ctest as `lint_invariants` and by CI).

Checks cross-cutting rules that the compiler cannot express:

R1a  raw-sync-primitive: no `std::mutex` / `std::shared_mutex` /
     `std::condition_variable` / `std::lock_guard` / `std::unique_lock`
     / `std::scoped_lock` members or locals in src/ or tools/ outside
     src/common/mutex.h. All locking goes through the annotated
     wrappers (tsexplain::Mutex / MutexLock / CondVar) so clang's
     -Wthread-safety can see it.

R1b  unguarded-mutex: every `Mutex` member declared in src/ or tools/
     must be NAMED by at least one TSE_GUARDED_BY / TSE_PT_GUARDED_BY /
     TSE_REQUIRES / TSE_ACQUIRE / ... annotation argument in its
     header/source pair — a mutex no annotation references protects
     nothing the analysis can check. The check is scoped per class and
     per mutex name, not per file: `LineWriter::mu_` is not excused by
     an annotated `ConnectionSet::mu_` in the same file. Escape hatch
     for handshake-only mutexes (the guarded state is an atomic): a
     `lint:allow(unguarded-mutex)` comment on the declaration line or
     one of the two lines above it.

R2   storage-abort: no TSE_CHECK / TSE_CHECK_* / TSE_DCHECK tokens in
     src/storage/*.{h,cc} outside comments and string literals. Storage
     decodes untrusted bytes (snapshots, append logs, session logs); a
     corrupt file must surface as a StorageErrorCode, never abort the
     process.

R3   duplicate-bench-slug: EmitResult("literal"...) slugs must be unique
     across bench/*.cc — two benches writing the same slug silently
     overwrite each other in BENCH_*.json. Dynamically built slugs
     (StrFormat etc.) are skipped; uniqueness for those is the bench's
     own responsibility.

R4   duplicate-metric-name: GetCounter / GetGauge / GetHistogram
     string-literal metric names must appear at exactly one source
     location across src/ and tools/ — the metrics registry contract
     (src/common/metrics.h) is that grep finds THE single writer for
     any metric, and a second registration site of the same name (even
     the same kind) splits ownership; of a different kind it aborts at
     runtime. Dynamically built names are skipped, as in R3. Snapshot
     readers (FindCounter etc.) are unrestricted.

R5   unbounded-decode-alloc: in the decode surfaces (src/storage and
     src/common/json.{h,cc}), no `.resize(` / `.reserve(` / `new T[`
     whose size argument is a plain decoded variable. The argument must
     be derived from real input bytes (`.size()` / `sizeof` /
     `remaining()`), be a compile-time constant, or every identifier in
     it must be bounds-compared (or assigned from `.size()`) within the
     preceding 40 code lines. A decoded count that reaches an allocator
     unchecked turns a 20-byte file into a multi-gigabyte allocation.
     Escape hatch: `lint:allow(unbounded-decode-alloc)` on the line or
     one of the two lines above.

R6   unchecked-bytereader: in src/storage, a statement that calls a
     ByteReader Read* / AlignTo / Skip and discards the returned status
     (expression statement at the start of a line). Reader failure
     latches, but per-call results must feed the decode's ok-chain so
     failures stop consuming garbage. Escape hatch:
     `lint:allow(unchecked-bytereader)`.

R7   unregistered-history-metric: every string literal passed to
     MetricsHistory::TrackHistogramPercentiles across src/ and tools/
     must also appear as a GetHistogram registration literal somewhere
     in src/ or tools/ — tracking a name no histogram registers
     silently records nothing (the sampler only builds p50/p99 rings
     for names the registry's discovery pass actually yields), and a
     typo'd name would never be noticed. Dynamically built names are
     skipped, as in R3/R4.

Exit status: 0 when clean, 1 with one `RULE: file:line: message` line per
violation otherwise.

Known stripper limitations: an apostrophe preceded by an identifier
character is treated as a C++14 digit separator (1'000'000), which means
prefixed char literals (u8'x', L'x') are mis-lexed as code — the repo
does not use them. Raw string literals R"(...)", including the
delimited R"delim(...)delim" form, are recognized and blanked.
"""

import argparse
import os
import re
import sys

MUTEX_HEADER = os.path.join("src", "common", "mutex.h")
ALLOW_UNGUARDED = "lint:allow(unguarded-mutex)"

RAW_PRIMITIVE = re.compile(
    r"\bstd::(mutex|shared_mutex|recursive_mutex|timed_mutex|"
    r"condition_variable(_any)?|lock_guard|unique_lock|scoped_lock)\b")
LOCK_TYPES = ("lock_guard", "unique_lock", "scoped_lock")
# A Mutex member declaration: optionally `mutable`, the type, a name,
# optionally an initializer/attribute tail. Matches `Mutex mu_;` and
# `mutable Mutex mu;` but not `MutexLock ...` or `class ... Mutex {`.
MUTEX_MEMBER = re.compile(
    r"^\s*(?:mutable\s+)?(?:tsexplain::)?Mutex\s+(\w+)\s*;")
# An annotation use with its argument list captured, so R1b can check
# that a given mutex NAME is referenced (not just that some annotation
# exists somewhere in the file). `[^()]*` is enough: capability
# arguments in this repo are member names, `*ptr_mu`, or `shard.mu` —
# never call expressions.
ANNOTATION_ARGS = re.compile(
    r"TSE_(?:PT_GUARDED_BY|GUARDED_BY|REQUIRES|ACQUIRE|RELEASE|"
    r"TRY_ACQUIRE|EXCLUDES|ASSERT_CAPABILITY|RETURN_CAPABILITY|"
    r"ACQUIRED_BEFORE|ACQUIRED_AFTER)\s*\(([^()]*)\)")
CHECK_TOKEN = re.compile(r"\bTSE_D?CHECK(?:_[A-Z]+)?\b")
EMIT_LITERAL = re.compile(r'\bEmitResult\s*\(\s*"((?:[^"\\]|\\.)*)"')
# Matched against STRIPPED code (so comment mentions cannot fire), up to
# and including the opening quote; the literal body is then re-read from
# the raw text at the same offset (the stripper preserves offsets). The
# first argument may sit on the line after the call.
METRIC_CALL = re.compile(r'\bGet(?:Counter|Gauge|Histogram)\s*\(\s*"')
HISTOGRAM_CALL = re.compile(r'\bGetHistogram\s*\(\s*"')
TRACK_CALL = re.compile(r'\bTrackHistogramPercentiles\s*\(\s*"')
STRING_LITERAL = re.compile(r'"((?:[^"\\]|\\.)*)"')


RAW_STRING_PREFIX = re.compile(r"(?:^|[^A-Za-z0-9_])(?:u8|u|U|L)?R$")
# Raw string delimiter: up to 16 chars, no parens/backslash/whitespace.
RAW_STRING_DELIM = re.compile(r'[^()\\\s]{0,16}\(')


def strip_comments_and_strings(text):
    """Replaces comment bodies and string/char literal bodies with spaces,
    preserving line numbers (newlines survive). Handles C++14 digit
    separators (1'000'000) and raw strings R"delim(...)delim"; see the
    module docstring for the known limitations."""
    out = []
    i, n = 0, len(text)
    state = "code"  # code | line_comment | block_comment | string | char
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line_comment"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block_comment"
                out.append("  ")
                i += 2
                continue
            if c == '"':
                # Raw string? Look back for an R prefix (uR/u8R/UR/LR),
                # then skip to the matching )delim" with no escape
                # processing — that is the whole point of raw strings.
                if RAW_STRING_PREFIX.search(text[max(0, i - 4):i]):
                    m = RAW_STRING_DELIM.match(text, i + 1)
                    if m:
                        close = ")" + text[i + 1:m.end() - 1] + '"'
                        end = text.find(close, m.end())
                        if end != -1:
                            out.append('"')
                            for ch in text[i + 1:end + len(close)]:
                                out.append("\n" if ch == "\n" else " ")
                            i = end + len(close)
                            continue
                state = "string"
                out.append('"')
                i += 1
                continue
            if c == "'":
                # An apostrophe straight after an identifier character is
                # a C++14 digit separator (1'000'000), not a char
                # literal.
                if i > 0 and (text[i - 1].isalnum() or text[i - 1] == "_"):
                    out.append("'")
                    i += 1
                    continue
                state = "char"
                out.append("'")
                i += 1
                continue
            out.append(c)
        elif state == "line_comment":
            if c == "\n":
                state = "code"
                out.append("\n")
            else:
                out.append(" ")
        elif state == "block_comment":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
                continue
            out.append("\n" if c == "\n" else " ")
        elif state in ("string", "char"):
            quote = '"' if state == "string" else "'"
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            if c == quote:
                state = "code"
                out.append(quote)
            elif c == "\n":  # unterminated (macro line continuation etc.)
                state = "code"
                out.append("\n")
            else:
                out.append(" ")
        i += 1
    return "".join(out)


def iter_files(root, rel_dirs, exts):
    for rel_dir in rel_dirs:
        base = os.path.join(root, rel_dir)
        for dirpath, _, filenames in os.walk(base):
            for name in sorted(filenames):
                if os.path.splitext(name)[1] in exts:
                    yield os.path.join(dirpath, name)


def relpath(root, path):
    return os.path.relpath(path, root).replace(os.sep, "/")


def check_raw_primitives(root, violations):
    """R1a: raw std sync primitives outside the wrapper header."""
    for path in iter_files(root, ["src", "tools"], {".h", ".cc"}):
        rel = relpath(root, path)
        if rel == MUTEX_HEADER.replace(os.sep, "/"):
            continue
        with open(path, encoding="utf-8") as f:
            code = strip_comments_and_strings(f.read())
        for lineno, line in enumerate(code.splitlines(), 1):
            if "#include" in line:
                continue
            m = RAW_PRIMITIVE.search(line)
            if m:
                if "condition" in m.group(1):
                    wrapper = "CondVar"
                elif m.group(1) in LOCK_TYPES:
                    wrapper = "MutexLock"
                else:
                    wrapper = "Mutex"
                violations.append(
                    ("raw-sync-primitive", rel, lineno,
                     "use tsexplain::%s from src/common/mutex.h instead of "
                     "std::%s (the std type carries no thread-safety "
                     "annotations)" % (wrapper, m.group(1))))


CLASS_KEYWORD = re.compile(r"\b(?:class|struct)\s+(\w+)")


def class_spans(code):
    """Returns [(name, body_start, body_end)] character-offset spans for
    each class/struct body in comment/string-stripped code. A forward
    declaration (`class Foo;`) has no body and is skipped; `enum class`
    matches harmlessly (an enum body declares no Mutex members)."""
    spans = []
    for m in CLASS_KEYWORD.finditer(code):
        j = m.end()
        while j < len(code) and code[j] not in "{;":
            j += 1
        if j >= len(code) or code[j] == ";":
            continue
        depth, k = 0, j
        while k < len(code):
            if code[k] == "{":
                depth += 1
            elif code[k] == "}":
                depth -= 1
                if depth == 0:
                    break
            k += 1
        spans.append((m.group(1), j, k))
    return spans


def innermost_span(spans, offset):
    best = None
    for span in spans:
        _, a, b = span
        if a <= offset <= b and (best is None or b - a < best[2] - best[1]):
            best = span
    return best


def check_unguarded_mutexes(root, violations):
    """R1b: every Mutex member must be NAMED by an annotation argument
    within its own class, or on a `ClassName::`-qualified definition in
    the pair file. Scoped per class AND per name: neither an annotated
    sibling class in the same file nor a same-named mutex in another
    class excuses an unannotated member."""
    for path in iter_files(root, ["src", "tools"], {".h", ".cc"}):
        rel = relpath(root, path)
        if rel == MUTEX_HEADER.replace(os.sep, "/"):
            continue
        with open(path, encoding="utf-8") as f:
            raw = f.read()
        code = strip_comments_and_strings(raw)
        raw_lines = raw.splitlines()
        # Character offset of the start of each 1-based line.
        line_offsets = [0]
        for line in code.splitlines(True):
            line_offsets.append(line_offsets[-1] + len(line))
        spans = class_spans(code)
        members = []
        for lineno, line in enumerate(code.splitlines(), 1):
            m = MUTEX_MEMBER.match(line)
            if not m:
                continue
            window = raw_lines[max(0, lineno - 3):lineno]
            if any(ALLOW_UNGUARDED in w for w in window):
                continue
            members.append((lineno, m.group(1)))
        if not members:
            continue
        # Names referenced by annotation arguments, bucketed by the
        # innermost class body the annotation sits in (None = file
        # scope). `mu_`, `*engines_mu`, `shard.mu` all count for every
        # identifier component.
        refs_by_span = {}
        for m in ANNOTATION_ARGS.finditer(code):
            span = innermost_span(spans, m.start())
            refs_by_span.setdefault(span, set()).update(
                re.findall(r"\w+", m.group(1)))
        # Pair file: an annotation on a `ClassName::`-qualified
        # out-of-line definition counts for that class; unqualified ones
        # count at file scope.
        refs_by_class_name = {}
        pair_file_refs = set()
        stem, ext = os.path.splitext(path)
        other = stem + (".cc" if ext == ".h" else ".h")
        if os.path.exists(other):
            with open(other, encoding="utf-8") as f:
                pair_code = strip_comments_and_strings(f.read())
            for m in ANNOTATION_ARGS.finditer(pair_code):
                names = set(re.findall(r"\w+", m.group(1)))
                line_start = pair_code.rfind("\n", 0, m.start()) + 1
                qualifiers = re.findall(
                    r"(\w+)::", pair_code[line_start:m.start()])
                if qualifiers:
                    for cls in qualifiers:
                        refs_by_class_name.setdefault(cls, set()).update(
                            names)
                else:
                    pair_file_refs.update(names)
        for lineno, name in members:
            span = innermost_span(spans, line_offsets[lineno - 1])
            refs = set(refs_by_span.get(None, set())) | pair_file_refs
            if span is not None:
                refs |= refs_by_span.get(span, set())
                refs |= refs_by_class_name.get(span[0], set())
            else:
                # Namespace-scope / local mutex: no class to scope by;
                # fall back to any annotation in the pair naming it.
                for span_refs in refs_by_span.values():
                    refs |= span_refs
                for cls_refs in refs_by_class_name.values():
                    refs |= cls_refs
            if name in refs:
                continue
            violations.append(
                ("unguarded-mutex", rel, lineno,
                 "Mutex member '%s'%s is not named by any TSE_GUARDED_BY / "
                 "TSE_REQUIRES / TSE_ACQUIRE annotation in its class in %s "
                 "or its pair; annotate what it guards or mark the "
                 "declaration %s" % (
                     name, " of class '%s'" % span[0] if span else "",
                     rel, ALLOW_UNGUARDED)))


def check_storage_aborts(root, violations):
    """R2: untrusted-input decode paths must not abort."""
    for path in iter_files(root, [os.path.join("src", "storage")],
                           {".h", ".cc"}):
        rel = relpath(root, path)
        with open(path, encoding="utf-8") as f:
            code = strip_comments_and_strings(f.read())
        for lineno, line in enumerate(code.splitlines(), 1):
            m = CHECK_TOKEN.search(line)
            if m:
                violations.append(
                    ("storage-abort", rel, lineno,
                     "%s in a storage decode path: corrupt input must "
                     "return a StorageErrorCode, not abort" % m.group(0)))


def check_bench_slugs(root, violations):
    """R3: EmitResult string-literal slugs unique across bench/*.cc."""
    seen = {}
    for path in iter_files(root, ["bench"], {".cc"}):
        rel = relpath(root, path)
        try:
            with open(path, encoding="utf-8") as f:
                raw = f.read()
        except FileNotFoundError:
            continue
        code = strip_comments_and_strings(raw)
        # Literals were blanked by the stripper; re-scan the raw text but
        # only at positions the stripper kept as code-or-string starts.
        for lineno, line in enumerate(raw.splitlines(), 1):
            stripped = code.splitlines()[lineno - 1] if lineno <= len(
                code.splitlines()) else ""
            if "EmitResult" not in stripped:
                continue
            for m in EMIT_LITERAL.finditer(line):
                slug = m.group(1)
                # A literal that is immediately concatenated or formatted
                # is a dynamic prefix, not the full slug: skip it.
                tail = line[m.end():]
                if tail.lstrip().startswith("+") or slug.count("%") > 0:
                    continue
                if slug in seen:
                    prev_rel, prev_line = seen[slug]
                    violations.append(
                        ("duplicate-bench-slug", rel, lineno,
                         "EmitResult slug '%s' already used at %s:%d; slugs "
                         "must be unique or BENCH json rows overwrite each "
                         "other" % (slug, prev_rel, prev_line)))
                else:
                    seen[slug] = (rel, lineno)


def check_metric_names(root, violations):
    """R4: Get{Counter,Gauge,Histogram} literal names unique across
    src/ and tools/."""
    seen = {}
    for path in iter_files(root, ["src", "tools"], {".h", ".cc"}):
        rel = relpath(root, path)
        with open(path, encoding="utf-8") as f:
            raw = f.read()
        code = strip_comments_and_strings(raw)
        for m in METRIC_CALL.finditer(code):
            # Re-read the (blanked) literal body from the raw text at the
            # opening quote's offset.
            lm = STRING_LITERAL.match(raw, m.end() - 1)
            if not lm:
                continue
            name = lm.group(1)
            # A concatenated or formatted literal is a dynamic prefix,
            # not the full metric name: skip it (R3's rule).
            if raw[lm.end():lm.end() + 8].lstrip().startswith("+") or \
                    name.count("%") > 0:
                continue
            lineno = code.count("\n", 0, m.start()) + 1
            if name in seen:
                prev_rel, prev_line = seen[name]
                violations.append(
                    ("duplicate-metric-name", rel, lineno,
                     "metric '%s' already registered at %s:%d; each "
                     "metric name must have exactly one registration "
                     "site (cache the reference in a *Metrics struct "
                     "and share it)" % (name, prev_rel, prev_line)))
            else:
                seen[name] = (rel, lineno)


def _literal_names(raw, code, call_re):
    """Yields (name, lineno) for each `call_re` whose first argument is a
    complete string literal (concatenated / %-formatted names are dynamic
    prefixes and are skipped, as in R3/R4)."""
    for m in call_re.finditer(code):
        lm = STRING_LITERAL.match(raw, m.end() - 1)
        if not lm:
            continue
        name = lm.group(1)
        if raw[lm.end():lm.end() + 8].lstrip().startswith("+") or \
                name.count("%") > 0:
            continue
        yield name, code.count("\n", 0, m.start()) + 1


def check_history_metrics(root, violations):
    """R7: TrackHistogramPercentiles names must have a GetHistogram
    registration site somewhere in src/ or tools/."""
    registered = set()
    tracked = []  # (name, rel, lineno)
    for path in iter_files(root, ["src", "tools"], {".h", ".cc"}):
        rel = relpath(root, path)
        with open(path, encoding="utf-8") as f:
            raw = f.read()
        code = strip_comments_and_strings(raw)
        for name, _ in _literal_names(raw, code, HISTOGRAM_CALL):
            registered.add(name)
        for name, lineno in _literal_names(raw, code, TRACK_CALL):
            tracked.append((name, rel, lineno))
    for name, rel, lineno in tracked:
        if name in registered:
            continue
        violations.append(
            ("unregistered-history-metric", rel, lineno,
             "TrackHistogramPercentiles('%s') has no GetHistogram "
             "registration site in src/ or tools/: the sampler only "
             "builds p50/p99 rings for histograms the registry "
             "actually yields, so this tracking records nothing" %
             name))


ALLOW_UNBOUNDED_ALLOC = "lint:allow(unbounded-decode-alloc)"
ALLOW_UNCHECKED_READER = "lint:allow(unchecked-bytereader)"

# Decode-surface allocation sites: member resize/reserve calls and array
# news, matched against stripped code.
ALLOC_CALL = re.compile(r"(?:\.|->)(?:resize|reserve)\s*\(")
ARRAY_NEW = re.compile(r"\bnew\s+[\w:<>, ]+?\s*\[")
# Identifiers that are types/casts/qualifiers, not runtime values.
ALLOC_NONVALUE_IDENTS = frozenset({
    "static_cast", "reinterpret_cast", "const_cast", "size_t", "ptrdiff_t",
    "uint8_t", "uint16_t", "uint32_t", "uint64_t", "int8_t", "int16_t",
    "int32_t", "int64_t", "char", "short", "int", "long", "unsigned",
    "signed", "float", "double", "bool", "const", "std", "size", "min",
    "max", "sizeof", "true", "false", "nullptr",
})
# A bounds comparison adjacent to an identifier (lookbehind window). The
# negative lookaheads keep shifts and stream operators from counting.
COMPARISON_OPS = r"(?:>=|<=|==|!=|>(?!>)|<(?!<))"

# ByteReader declarations (locals, parameters, members) — the receivers
# R6 tracks. `[&*]?` covers reference/pointer parameters.
BYTEREADER_DECL = re.compile(r"\bByteReader\s*[&*]?\s*(\w+)\b")
# A statement-initial reader call whose status result is discarded: the
# line starts with `<name>.Read…(` / `.AlignTo(` / `.Skip(`. Assigned or
# tested results (`ok = ok && r.ReadU32(…)`, `if (!r.Skip(n))`) start
# mid-line and do not match.
READER_DISCARD = re.compile(r"^\s*(\w+)\.(Read\w+|AlignTo|Skip)\s*\(")


def balanced_args(code, open_paren, close="()"):
    """Returns code[open_paren+1:matching_close] or None if unbalanced."""
    depth, k = 0, open_paren
    while k < len(code):
        if code[k] == close[0]:
            depth += 1
        elif code[k] == close[1]:
            depth -= 1
            if depth == 0:
                return code[open_paren + 1:k]
        k += 1
    return None


def alloc_arg_is_bounded(arg, code_lines, lineno):
    """True when an allocation-size argument is already input-derived,
    constant, or every identifier in it was bounds-checked (or assigned
    from `.size()`) in the preceding 40 code lines."""
    if ".size(" in arg or "sizeof" in arg or ".remaining(" in arg:
        return True
    # `meta->nbuckets` is bounded by a check on `nbuckets`: drop member
    # access object prefixes so only the field name needs a bound.
    collapsed = re.sub(r"\b\w+\s*(?:->|\.)\s*", "", arg)
    idents = set(re.findall(r"[A-Za-z_]\w*", collapsed)) - ALLOC_NONVALUE_IDENTS
    if not idents:
        return True  # compile-time constant
    window = "\n".join(code_lines[max(0, lineno - 41):lineno])
    for ident, esc in ((i, re.escape(i)) for i in sorted(idents)):
        checked = re.search(
            r"(?:\b%s\b\s*%s|%s\s*=?\s*\b%s\b)" % (
                esc, COMPARISON_OPS, COMPARISON_OPS, esc), window)
        # Assigned from input-derived quantities (`n = buf.size() / 8`).
        # `=[^=]` keeps `==` comparisons from matching as assignments.
        derived = re.search(
            r"\b%s\b\s*=[^=;\n][^;\n]*(?:\.size\(|\.remaining\(|sizeof)"
            % esc, window)
        if not checked and not derived:
            return False
    return True


def check_unbounded_decode_allocs(root, violations):
    """R5: decoded counts must be bounds-checked before they size an
    allocation."""
    scoped = [os.path.join("src", "storage")]
    files = list(iter_files(root, scoped, {".h", ".cc"}))
    for name in ("json.h", "json.cc"):
        path = os.path.join(root, "src", "common", name)
        if os.path.exists(path):
            files.append(path)
    for path in files:
        rel = relpath(root, path)
        with open(path, encoding="utf-8") as f:
            raw = f.read()
        code = strip_comments_and_strings(raw)
        raw_lines = raw.splitlines()
        code_lines = code.splitlines()
        for kind, pattern in (("call", ALLOC_CALL), ("new", ARRAY_NEW)):
            for m in pattern.finditer(code):
                if kind == "call":
                    arg = balanced_args(code, m.end() - 1)
                else:
                    arg = balanced_args(code, m.end() - 1, "[]")
                if arg is None:
                    continue
                lineno = code.count("\n", 0, m.start()) + 1
                window = raw_lines[max(0, lineno - 3):lineno]
                if any(ALLOW_UNBOUNDED_ALLOC in w for w in window):
                    continue
                if alloc_arg_is_bounded(arg, code_lines, lineno):
                    continue
                violations.append(
                    ("unbounded-decode-alloc", rel, lineno,
                     "allocation sized by '%s' with no preceding bound "
                     "check: validate a decoded count against the real "
                     "input size (e.g. reader.remaining()) before "
                     "allocating, or mark the line %s" % (
                         " ".join(arg.split()), ALLOW_UNBOUNDED_ALLOC)))


def check_unchecked_bytereader(root, violations):
    """R6: ByteReader call statuses must be consumed."""
    for path in iter_files(root, [os.path.join("src", "storage")],
                           {".h", ".cc"}):
        rel = relpath(root, path)
        with open(path, encoding="utf-8") as f:
            raw = f.read()
        code = strip_comments_and_strings(raw)
        readers = set(BYTEREADER_DECL.findall(code))
        if not readers:
            continue
        raw_lines = raw.splitlines()
        for lineno, line in enumerate(code.splitlines(), 1):
            m = READER_DISCARD.match(line)
            if not m or m.group(1) not in readers:
                continue
            window = raw_lines[max(0, lineno - 3):lineno]
            if any(ALLOW_UNCHECKED_READER in w for w in window):
                continue
            violations.append(
                ("unchecked-bytereader", rel, lineno,
                 "discarded status of %s.%s(): feed every ByteReader "
                 "result into the decode's ok-chain (failure must stop "
                 "the parse), or mark the line %s" % (
                     m.group(1), m.group(2), ALLOW_UNCHECKED_READER)))


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--root", default=".",
                        help="repository root to lint (default: cwd)")
    args = parser.parse_args()
    root = os.path.abspath(args.root)

    violations = []
    check_raw_primitives(root, violations)
    check_unguarded_mutexes(root, violations)
    check_storage_aborts(root, violations)
    check_bench_slugs(root, violations)
    check_metric_names(root, violations)
    check_history_metrics(root, violations)
    check_unbounded_decode_allocs(root, violations)
    check_unchecked_bytereader(root, violations)

    for rule, rel, lineno, message in violations:
        print("%s: %s:%d: %s" % (rule, rel, lineno, message))
    if violations:
        print("lint_invariants: %d violation(s)" % len(violations),
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
