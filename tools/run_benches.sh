#!/usr/bin/env bash
# Bench harness: run the paper-figure bench binaries and record per-bench
# wall-clock timings as JSON, so the repo's perf trajectory is machine
# readable across PRs.
#
# Usage:
#   tools/run_benches.sh [-b BUILD_DIR] [-o OUT.json] [--all|--quick] [BENCH...]
#
#   -b BUILD_DIR   where the bench binaries live (default: build)
#   -o OUT.json    output path (default: BENCH_<UTC timestamp>.json in CWD)
#   --all          run every bench_* binary found in BUILD_DIR
#   --quick        CI profile: small-scale fig16 + fig17 + bench_service
#                  + bench_storage (fig17 capped via TSE_SCALE_BUDGET_S,
#                  default 2 s per run; bench_service's overload scenario
#                  runs at 2x admission capacity via TSE_OVERLOAD_X, so CI
#                  exercises admission control + load shedding on every PR
#                  in seconds; bench_storage exits non-zero unless both
#                  snapshot load paths are bit-identical AND the owned
#                  load is >= 5x / the zero-copy mmap open >= 20x faster
#                  than CSV parse, so the storage format cannot silently
#                  rot; numbers are smoke-level, not trajectory-level).
#                  Explicit BENCH names run in addition to the profile set.
#   BENCH...       explicit bench names (e.g. bench_fig13_sp500)
#
# Default set (no --all, no names): bench_micro_core + bench_fig16_end_to_end
# + bench_service + bench_storage — the core microbenchmarks (including
# BM_ScoreAllSimd vs BM_ScoreAllScalarKernel and the >= 1.5x SIMD speedup
# gate with bit-identity asserted), the end-to-end latency figure, the
# service-layer cold/hot/concurrent throughput, and the CSV-vs-snapshot
# load comparison (owned ReadTableSnapshot + zero-copy OpenTableSnapshot).
#
# Every BENCH_*.json is stamped with the git SHA (plus "-dirty" when the
# tree has uncommitted changes), hostname, and nproc, so committed perf
# numbers stay attributable across machines and PRs.
#
# Each bench's stdout/stderr goes to <OUT>.d/<bench>.log; the JSON records
# wall-clock seconds, exit status, and log path per bench, plus every
# "BENCH_RESULT <name> <ms>" line the binaries emit (see
# bench/bench_util.h:EmitResult) as a per-figure `results` array, and the
# last "BENCH_METRICS {json}" line (bench_util.h:EmitMetricsSnapshot) as a
# per-bench `metrics` object — the end-of-run observability registry
# snapshot. Benches in the implicit set that are not built (e.g.
# bench_micro_core without google-benchmark) are recorded as
# {"skipped": true} entries instead of vanishing from the perf record.
set -u

BUILD_DIR=build
OUT=""
ALL=0
QUICK=0
BENCHES=()

while [ $# -gt 0 ]; do
  case "$1" in
    -b) BUILD_DIR=${2:?-b needs a directory}; shift 2 ;;
    -o) OUT=${2:?-o needs a path}; shift 2 ;;
    --all) ALL=1; shift ;;
    --quick) QUICK=1; shift ;;
    -h|--help) awk 'NR > 1 { if (!/^#/) exit; sub(/^# ?/, ""); print }' "$0"; exit 0 ;;
    -*) echo "unknown flag: $1" >&2; exit 2 ;;
    *) BENCHES+=("$1"); shift ;;
  esac
done

if [ "$ALL" -eq 1 ] && [ "$QUICK" -eq 1 ]; then
  echo "error: --all and --quick are mutually exclusive" >&2
  exit 2
fi

if [ ! -d "$BUILD_DIR" ]; then
  echo "error: build dir '$BUILD_DIR' not found (run the tier-1 cmake build first)" >&2
  exit 1
fi

STAMP=$(date -u +%Y%m%dT%H%M%SZ)
[ -n "$OUT" ] || OUT="BENCH_${STAMP}.json"
LOG_DIR="${OUT%.json}.d"
mkdir -p "$LOG_DIR"

# Benches named explicitly on the command line must exist: a typo'd or
# no-longer-building bench has to fail loudly, or the perf trajectory
# silently loses data. Only the implicit default/--all sets may skip.
EXPLICIT=0
[ "$ALL" -eq 0 ] && [ ${#BENCHES[@]} -gt 0 ] && EXPLICIT=1
if [ "$ALL" -eq 1 ]; then
  BENCHES=()
  for bin in "$BUILD_DIR"/bench_*; do
    [ -x "$bin" ] && BENCHES+=("$(basename "$bin")")
  done
elif [ "$QUICK" -eq 1 ]; then
  # CI profile: exercise the perf binaries end-to-end (so they cannot
  # silently rot) at a scale that finishes in seconds. fig17 honors
  # TSE_SCALE_BUDGET_S and terminates each variant once a run exceeds it;
  # bench_service's overload scenario storms at TSE_OVERLOAD_X times the
  # admission capacity (2x here: enough to prove shedding + queue bounds
  # without minutes of contention).
  export TSE_SCALE_BUDGET_S="${TSE_SCALE_BUDGET_S:-2}"
  export TSE_OVERLOAD_X="${TSE_OVERLOAD_X:-2}"
  BENCHES+=(bench_fig16_end_to_end bench_fig17_scalability bench_service
            bench_storage)
elif [ ${#BENCHES[@]} -eq 0 ]; then
  BENCHES=(bench_micro_core bench_fig16_end_to_end bench_service
           bench_storage)
fi

if [ ${#BENCHES[@]} -eq 0 ]; then
  echo "error: no bench binaries found in $BUILD_DIR" >&2
  exit 1
fi

host=$(uname -srm)
hostname=$(hostname 2>/dev/null || echo unknown)
nproc_count=$(nproc 2>/dev/null || echo 0)
# Attribute the numbers to the exact tree they came from: the commit the
# BUILD DIR's source tree sits on (which may be a worktree at another
# SHA), with a -dirty marker for uncommitted changes.
git_root=$(git -C "$BUILD_DIR" rev-parse --show-toplevel 2>/dev/null || true)
if [ -n "$git_root" ]; then
  git_sha=$(git -C "$git_root" rev-parse HEAD 2>/dev/null || echo unknown)
  # status --porcelain sees staged, unstaged, AND untracked changes — all
  # of which can be in the benchmarked build (the library globs src/).
  [ -z "$(git -C "$git_root" status --porcelain 2>/dev/null)" ] \
    || git_sha="${git_sha}-dirty"
else
  git_sha=unknown
fi
entries=""
overall=0
ran=0
for bench in "${BENCHES[@]}"; do
  bin="$BUILD_DIR/$bench"
  if [ ! -x "$bin" ]; then
    # Record the skip in the JSON (not just on stderr): a bench missing
    # because its dependency is absent (bench_micro_core without
    # google-benchmark — CMake prints the matching configure notice) must
    # stay visible in the committed perf record.
    if [ "$EXPLICIT" -eq 1 ]; then
      echo "error: requested bench '$bench' is not built in $BUILD_DIR" >&2
      overall=1
    else
      echo "skip: $bench (not built)" >&2
    fi
    [ -n "$entries" ] && entries="$entries,"
    entries="$entries
    {\"bench\": \"$bench\", \"skipped\": true, \"reason\": \"not built\"}"
    continue
  fi
  log="$LOG_DIR/$bench.log"
  echo "running $bench ..." >&2
  start_ns=$(date +%s%N)
  "$bin" >"$log" 2>&1
  status=$?
  end_ns=$(date +%s%N)
  secs=$(awk -v a="$start_ns" -v b="$end_ns" 'BEGIN { printf "%.3f", (b - a) / 1e9 }')
  [ $status -eq 0 ] || overall=1
  ran=$((ran + 1))
  echo "  $bench: ${secs}s (exit $status)" >&2
  results=$(awk '$1 == "BENCH_RESULT" && NF == 3 {
    printf "%s{\"name\": \"%s\", \"ms\": %s}", sep, $2, $3; sep = ", "
  }' "$log")
  # Last BENCH_METRICS line wins: the end-of-run registry snapshot emitted
  # by bench_util.h:EmitMetricsSnapshot (already compact JSON).
  metrics=$(awk '$1 == "BENCH_METRICS" { line = $0; sub(/^BENCH_METRICS /, "", line); m = line } END { if (m != "") print m }' "$log")
  [ -n "$metrics" ] || metrics=null
  [ -n "$entries" ] && entries="$entries,"
  entries="$entries
    {\"bench\": \"$bench\", \"wall_clock_s\": $secs, \"exit_status\": $status, \"log\": \"$log\", \"results\": [$results], \"metrics\": $metrics}"
done

if [ "$ran" -eq 0 ]; then
  echo "error: none of the requested benches are built in $BUILD_DIR" >&2
  exit 1
fi

cat >"$OUT" <<EOF
{
  "schema": "tsexplain-bench-v3",
  "timestamp_utc": "$STAMP",
  "host": "$host",
  "hostname": "$hostname",
  "nproc": $nproc_count,
  "git_sha": "$git_sha",
  "build_dir": "$BUILD_DIR",
  "benches": [$entries
  ]
}
EOF
echo "wrote $OUT" >&2
exit $overall
