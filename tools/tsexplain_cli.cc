// tsexplain: command-line front end. Load a CSV, run the pipeline, print a
// text report or export JSON.
//
//   tsexplain --csv sales.csv --time date --measure units
//             --explain-by region,product [options]
//
// Options:
//   --csv PATH            input file (required): a CSV, or a binary table
//                         snapshot (auto-detected by magic; loads without
//                         re-parsing and needs no --time)
//   --time NAME           time column (required for CSV inputs)
//   --measure NAME        measure column (omit for COUNT(*))
//   --agg sum|count|avg   aggregate function (default sum)
//   --explain-by A,B,C    explain-by dimensions (default: recommend + all)
//   --order N             max conjunction order (default 3)
//   --m N                 top-m explanations per segment (default 3)
//   --k N                 fixed segment count (default: elbow)
//   --smooth N            moving-average window (default 1 = off)
//   --fast                enable filter + guess-and-verify + sketching
//   --threads N           module (c) worker threads (default 1; 0 = auto,
//                         i.e. one per hardware thread)
//   --json                emit JSON instead of the text report
//   --recommend           only print explain-by attribute recommendations
//   --diff FROM,TO        two-snapshot mode: explain the difference between
//                         the FROM and TO time buckets and exit
//   --save-snapshot PATH  convert mode: write the loaded table as a binary
//                         columnar snapshot (docs/STORAGE.md) and exit —
//                         `tsexplain --csv in.csv --time date --save-snapshot
//                         out.tsx` is the csv->snapshot converter

#include <cerrno>
#include <climits>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "src/common/strings.h"
#include "src/common/thread_pool.h"
#include "src/diff/snapshot_diff.h"
#include "src/pipeline/recommend.h"
#include "src/pipeline/report.h"
#include "src/pipeline/tsexplain.h"
#include "src/storage/table_snapshot.h"
#include "src/table/csv_reader.h"

namespace {

using namespace tsexplain;

struct CliOptions {
  std::string csv_path;
  std::string time_column;
  std::string measure;
  std::string aggregate = "sum";
  std::vector<std::string> explain_by;
  int order = 3;
  int m = 3;
  int k = 0;
  int smooth = 1;
  int threads = 1;
  bool fast = false;
  bool json = false;
  bool recommend_only = false;
  std::string diff;  // "FROM,TO" labels, empty = segmentation mode
  std::string save_snapshot;  // convert mode: write snapshot, exit
};

void PrintUsage(std::FILE* out, const char* argv0) {
  std::fprintf(out,
               "usage: %s --csv PATH --time NAME [--measure NAME] "
               "[--agg sum|count|avg] [--explain-by A,B,C] [--order N] "
               "[--m N] [--k N] [--smooth N] [--threads N] [--fast] "
               "[--json] [--recommend] [--diff FROM,TO] "
               "[--save-snapshot PATH] [--help]\n"
               "  --threads N   module (c) worker threads; 0 = auto (one "
               "per hardware thread)\n"
               "  --csv PATH    CSV or binary table snapshot (auto-detected;"
               " snapshots need no --time)\n"
               "  --save-snapshot PATH  write the loaded table as a binary "
               "snapshot and exit\n",
               argv0);
}

int Usage(const char* argv0) {
  PrintUsage(stderr, argv0);
  return 2;
}

// Strict base-10 integer parse; rejects "12abc", "", and out-of-range.
bool ParseInt(const char* text, int* out) {
  if (!text || *text == '\0') return false;
  char* end = nullptr;
  errno = 0;
  const long value = std::strtol(text, &end, 10);
  if (errno != 0 || *end != '\0' || value < INT_MIN || value > INT_MAX) {
    return false;
  }
  *out = static_cast<int>(value);
  return true;
}

bool ParseArgs(int argc, char** argv, CliOptions* options, bool* want_help) {
  *want_help = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    auto next_int = [&](const char* flag, int* out) {
      const char* v = next();
      if (v && ParseInt(v, out)) return true;
      std::fprintf(stderr, "%s expects an integer, got: %s\n", flag,
                   v ? v : "(nothing)");
      return false;
    };
    if (arg == "--csv") {
      const char* v = next();
      if (!v) return false;
      options->csv_path = v;
    } else if (arg == "--time") {
      const char* v = next();
      if (!v) return false;
      options->time_column = v;
    } else if (arg == "--measure") {
      const char* v = next();
      if (!v) return false;
      options->measure = v;
    } else if (arg == "--agg") {
      const char* v = next();
      if (!v) return false;
      options->aggregate = v;
    } else if (arg == "--explain-by") {
      const char* v = next();
      if (!v) return false;
      options->explain_by = Split(v, ',');
    } else if (arg == "--order") {
      if (!next_int("--order", &options->order)) return false;
    } else if (arg == "--m") {
      if (!next_int("--m", &options->m)) return false;
    } else if (arg == "--k") {
      if (!next_int("--k", &options->k)) return false;
    } else if (arg == "--smooth") {
      if (!next_int("--smooth", &options->smooth)) return false;
    } else if (arg == "--threads") {
      if (!next_int("--threads", &options->threads)) return false;
    } else if (arg == "--fast") {
      options->fast = true;
    } else if (arg == "--json") {
      options->json = true;
    } else if (arg == "--recommend") {
      options->recommend_only = true;
    } else if (arg == "--diff") {
      const char* v = next();
      if (!v) return false;
      options->diff = v;
    } else if (arg == "--save-snapshot") {
      const char* v = next();
      if (!v) return false;
      options->save_snapshot = v;
    } else if (arg == "--help" || arg == "-h") {
      *want_help = true;
      return true;
    } else {
      std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
      return false;
    }
  }
  if (options->csv_path.empty()) {
    std::fprintf(stderr, "--csv is required\n");
    return false;
  }
  // Snapshot inputs carry their schema (incl. the time column); CSVs
  // still need --time to know which column is the series axis.
  if (options->time_column.empty() &&
      !storage::IsTableSnapshotFile(options->csv_path)) {
    std::fprintf(stderr, "--time is required for CSV inputs\n");
    return false;
  }
  // Domain checks: out-of-range values must fail here with usage, not
  // abort later on an internal TSE_CHECK inside the library.
  struct Bound {
    const char* flag;
    int value;
    int min;
  };
  // --threads 0 means "auto" (resolved below); only negatives are invalid.
  for (const Bound& b : {Bound{"--order", options->order, 1},
                         Bound{"--m", options->m, 1},
                         Bound{"--k", options->k, 0},
                         Bound{"--smooth", options->smooth, 1},
                         Bound{"--threads", options->threads, 0}}) {
    if (b.value < b.min) {
      std::fprintf(stderr, "%s must be >= %d, got %d\n", b.flag, b.min,
                   b.value);
      return false;
    }
  }
  return true;
}

AggregateFunction ParseAggregate(const std::string& name, bool* ok) {
  *ok = true;
  if (name == "sum") return AggregateFunction::kSum;
  if (name == "count") return AggregateFunction::kCount;
  if (name == "avg") return AggregateFunction::kAvg;
  *ok = false;
  return AggregateFunction::kSum;
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions options;
  bool want_help = false;
  if (!ParseArgs(argc, argv, &options, &want_help)) return Usage(argv[0]);
  if (want_help) {
    PrintUsage(stdout, argv[0]);
    return 0;
  }
  bool agg_ok = false;
  const AggregateFunction aggregate =
      ParseAggregate(options.aggregate, &agg_ok);
  if (!agg_ok) {
    std::fprintf(stderr, "unknown aggregate: %s\n",
                 options.aggregate.c_str());
    return 2;
  }

  std::unique_ptr<Table> table;
  if (storage::IsTableSnapshotFile(options.csv_path)) {
    storage::TableSnapshotResult loaded =
        storage::ReadTableSnapshot(options.csv_path);
    if (!loaded.ok()) {
      std::fprintf(stderr, "error: %s\n",
                   loaded.status.ToString().c_str());
      return 1;
    }
    table = std::move(loaded.table);
  } else {
    CsvOptions csv_options;
    csv_options.time_column = options.time_column;
    if (!options.measure.empty()) {
      csv_options.measure_columns = {options.measure};
    }
    CsvResult loaded = ReadCsvFile(options.csv_path, csv_options);
    if (!loaded.ok()) {
      std::fprintf(stderr, "error: %s\n", loaded.error.c_str());
      PrintUsage(stderr, argv[0]);
      return 1;
    }
    table = std::move(loaded.table);
  }
  // CSV inputs reject an unknown --measure at parse time; snapshot inputs
  // load every column unchecked, so validate here — a typo must be a
  // clean error, not a TSE_CHECK abort inside the pipeline.
  if (!options.measure.empty() &&
      table->schema().MeasureIndex(options.measure) < 0) {
    std::fprintf(stderr, "error: unknown measure: %s\n",
                 options.measure.c_str());
    return 1;
  }
  std::fprintf(stderr, "loaded %zu rows, %zu time buckets\n",
               table->num_rows(), table->num_time_buckets());

  if (!options.save_snapshot.empty()) {
    const storage::StorageStatus status =
        storage::WriteTableSnapshot(*table, options.save_snapshot);
    if (!status.ok()) {
      std::fprintf(stderr, "error: %s\n",
                   status.ToString().c_str());
      return 1;
    }
    std::fprintf(stderr, "wrote snapshot %s\n",
                 options.save_snapshot.c_str());
    return 0;
  }

  if (!options.diff.empty()) {
    const std::vector<std::string> endpoints = Split(options.diff, ',');
    if (endpoints.size() != 2) {
      std::fprintf(stderr, "--diff expects FROM,TO\n");
      return 2;
    }
    SnapshotDiffOptions diff_options;
    diff_options.aggregate = aggregate;
    diff_options.measure = options.measure;
    diff_options.explain_by = options.explain_by;
    diff_options.max_order = options.order;
    diff_options.m = options.m;
    const SnapshotDiffResult diff =
        SnapshotDiff(*table, endpoints[0], endpoints[1],
                     diff_options);
    std::printf("%s: %.6g -> %s: %.6g (delta %.6g)\n", endpoints[0].c_str(),
                diff.control_total, endpoints[1].c_str(), diff.test_total,
                diff.test_total - diff.control_total);
    for (size_t r = 0; r < diff.top.size(); ++r) {
      const auto& item = diff.top[r];
      std::printf("  top-%zu  %-40s gamma=%-10.6g (%s)  %.6g -> %.6g\n",
                  r + 1, item.description.c_str(), item.gamma,
                  item.tau > 0 ? "+" : (item.tau < 0 ? "-" : "="),
                  item.control_value, item.test_value);
    }
    return 0;
  }

  const auto recommendations = RecommendExplainBy(
      *table, aggregate, options.measure, options.m);
  if (options.recommend_only || options.explain_by.empty()) {
    std::fprintf(stderr, "explain-by recommendations (concentration):\n");
    for (const auto& rec : recommendations) {
      std::fprintf(stderr, "    %-24s %.3f  (%zu values)\n",
                   rec.dimension.c_str(), rec.concentration,
                   rec.cardinality);
    }
    if (options.recommend_only) return 0;
  }

  TSExplainConfig config;
  config.aggregate = aggregate;
  config.measure = options.measure;
  config.explain_by_names = options.explain_by;
  if (config.explain_by_names.empty()) {
    // Default: every dimension, best-recommended first.
    for (const auto& rec : recommendations) {
      config.explain_by_names.push_back(rec.dimension);
    }
  }
  config.max_order = options.order;
  config.m = options.m;
  config.fixed_k = options.k;
  config.smooth_window = options.smooth;
  config.threads = ResolveThreadCount(options.threads);
  if (options.fast) {
    config.use_filter = true;
    config.use_guess_verify = true;
    config.use_sketch = true;
  }

  TSExplain engine(*table, config);
  const TSExplainResult result = engine.Run();
  if (options.json) {
    std::printf("%s\n", RenderJsonReport(engine, result).c_str());
  } else {
    std::printf("%s", RenderTextReport(engine, result).c_str());
  }
  return 0;
}
