// tsexplain_soak: mixed-workload soak / chaos driver that dogfoods the
// server's own telemetry (docs/OBSERVABILITY.md, "Self-observation").
//
// The harness forks a real tsexplain_serve child (TCP mode), drives it
// with five concurrent traffic classes, scrapes healthz / metrics /
// stats / metrics_history WHILE the load runs, and exits non-zero
// unless every invariant held:
//
//   I1  bounded admission: queued and peak_queued never exceed the
//       configured queue depth (floods shed, they do not queue).
//   I2  monotonic counters: no counter ever decreases within one server
//       generation (scrape N+1 >= scrape N, for every counter).
//   I3  histogram conservation: per-bucket counts sum to the recorded
//       total count in every scrape (Histogram's relaxed atomics must
//       never lose an observation).
//   I4  byte-identical warm restart (--kill-restart): save_cache, then
//       kill -9 the server mid-run, restart it with --cache-load, and
//       the distinguished query's "result" payload must come back from
//       cache byte-for-byte identical.
//   I5  zero stuck queries at drain: once traffic stops, healthz must
//       report status "ok" with an empty stuck set.
//   I6  dogfood: the metrics_history window exports as a registered
//       dataset and the engine explains it end-to-end (the server
//       analyzes its own telemetry with its own query engine).
//
// Traffic classes (thread counts via --mix):
//   hot      repeated identical explain        -> cache-hit path
//   cold     rotating k / explain_by variants  -> cold compute + engines
//   stream   open_session / append / explain_session / close
//   hostile  malformed JSON, unknown ops, bad types; the connection must
//            survive and keep answering (decode-surface regression)
//   quota    explains under rotating tenant ids -> per-tenant accounting
//
// Usage:
//   tsexplain_soak --serve-bin PATH [--port N] [--duration SECONDS]
//                  [--kill-restart] [--mix hot=2,cold=1,stream=1,hostile=1,quota=2]
//
// The child's stderr goes to <tmpdir>/serve.log; on failure the harness
// prints the log path so CI uploads have something to chew on.

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include "src/common/json.h"
#include "src/common/mutex.h"

namespace {

using namespace tsexplain;

struct SoakOptions {
  std::string serve_bin;
  int port = 7753;
  int duration_s = 30;
  bool kill_restart = false;
  // Threads per traffic class.
  int hot = 2;
  int cold = 1;
  int stream = 1;
  int hostile = 1;
  int quota = 2;
};

constexpr int kQueueDepth = 8;  // passed to the server; bound for I1

// Deterministic PRNG (the soak must replay identically run to run).
struct Lcg {
  uint64_t state;
  explicit Lcg(uint64_t seed) : state(seed) {}
  uint32_t Next() {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    return static_cast<uint32_t>(state >> 33);
  }
  uint32_t Next(uint32_t bound) { return Next() % bound; }
};

// Invariant-violation sink: threads append, main reports.
class Violations {
 public:
  void Add(const std::string& what) {
    MutexLock lock(mu_);
    entries_.push_back(what);
    std::fprintf(stderr, "soak: INVARIANT VIOLATION: %s\n", what.c_str());
  }
  std::vector<std::string> Snapshot() {
    MutexLock lock(mu_);
    return entries_;
  }

 private:
  Mutex mu_;
  std::vector<std::string> entries_ TSE_GUARDED_BY(mu_);
};

Violations g_violations;

// --- NDJSON client ---------------------------------------------------------

// One synchronous request/response connection. With a single request in
// flight per connection the server's out-of-order completion cannot
// reorder OUR responses, so a blocking read-until-newline suffices.
class Client {
 public:
  ~Client() { Close(); }

  bool Connect(int port) {
    Close();
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) return false;
    sockaddr_in addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<uint16_t>(port));
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
        0) {
      Close();
      return false;
    }
    return true;
  }

  void Close() {
    if (fd_ >= 0) ::close(fd_);
    fd_ = -1;
    buffer_.clear();
  }

  bool connected() const { return fd_ >= 0; }

  /// Writes `line` + newline, reads one response line. False on any
  /// transport failure (connection killed, short write).
  bool SendRecv(const std::string& line, std::string* response) {
    if (fd_ < 0) return false;
    std::string framed = line;
    framed.push_back('\n');
    size_t off = 0;
    while (off < framed.size()) {
      const ssize_t n =
          ::write(fd_, framed.data() + off, framed.size() - off);
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) return false;
      off += static_cast<size_t>(n);
    }
    return ReadLine(response);
  }

  bool ReadLine(std::string* response) {
    for (;;) {
      const size_t nl = buffer_.find('\n');
      if (nl != std::string::npos) {
        *response = buffer_.substr(0, nl);
        buffer_.erase(0, nl + 1);
        return true;
      }
      char chunk[4096];
      const ssize_t n = ::read(fd_, chunk, sizeof(chunk));
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) return false;
      buffer_.append(chunk, static_cast<size_t>(n));
    }
  }

 private:
  int fd_ = -1;
  std::string buffer_;
};

// Every response must be a JSON object echoing an id; anything else is a
// protocol violation regardless of traffic class.
bool CheckResponseShape(const std::string& who, const std::string& response,
                        JsonValue* parsed) {
  std::string error;
  if (!ParseJson(response, parsed, &error)) {
    g_violations.Add(who + ": response is not JSON: " + error);
    return false;
  }
  if (!parsed->IsObject() || parsed->Find("id") == nullptr) {
    g_violations.Add(who + ": response lacks an id: " + response);
    return false;
  }
  return true;
}

// --- server child management ----------------------------------------------

struct ServerProcess {
  pid_t pid = -1;

  bool Start(const SoakOptions& options, const std::string& csv_path,
             const std::string& log_path, const std::string& cache_load) {
    std::vector<std::string> args = {
        options.serve_bin,
        "--port", std::to_string(options.port),
        "--preload", "soak=" + csv_path,
        "--time", "day",
        "--measure", "sales",
        "--cache-mb", "16",
        "--queue-depth", std::to_string(kQueueDepth),
        "--tenant-inflight", "2",
        "--metrics-history-interval-ms", "200",
        "--stuck-after-ms", "5000",
        "--slow-query-ms", "250",
    };
    if (!cache_load.empty()) {
      args.push_back("--cache-load");
      args.push_back(cache_load);
    }
    pid = ::fork();
    if (pid < 0) return false;
    if (pid == 0) {
      const int log_fd = ::open(log_path.c_str(),
                                O_WRONLY | O_CREAT | O_APPEND, 0644);
      if (log_fd >= 0) {
        ::dup2(log_fd, STDERR_FILENO);
        ::close(log_fd);
      }
      std::vector<char*> argv;
      argv.reserve(args.size() + 1);
      for (std::string& arg : args) argv.push_back(arg.data());
      argv.push_back(nullptr);
      ::execv(argv[0], argv.data());
      std::perror("execv");
      _exit(127);
    }
    return true;
  }

  /// Polls until the TCP port accepts (the child logs + preloads first).
  bool WaitReady(int port) {
    for (int attempt = 0; attempt < 100; ++attempt) {
      Client probe;
      if (probe.Connect(port)) return true;
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
      int status = 0;
      if (::waitpid(pid, &status, WNOHANG) == pid) {
        pid = -1;
        return false;  // child died during startup
      }
    }
    return false;
  }

  void Kill9() {
    if (pid <= 0) return;
    ::kill(pid, SIGKILL);
    int status = 0;
    ::waitpid(pid, &status, 0);
    pid = -1;
  }

  int WaitExit() {
    if (pid <= 0) return -1;
    int status = 0;
    ::waitpid(pid, &status, 0);
    pid = -1;
    return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  }
};

// --- workload data ---------------------------------------------------------

// 48 days x 4 regions x 3 products with a deliberate regime shift at
// day 24 so explanations have real contributors to find.
std::string MakeSoakCsv() {
  static const char* kRegions[] = {"north", "south", "east", "west"};
  static const char* kProducts[] = {"widget", "gadget", "gizmo"};
  Lcg rng(20260807);
  std::ostringstream out;
  out << "day,region,product,sales\n";
  for (int day = 0; day < 48; ++day) {
    for (const char* region : kRegions) {
      for (const char* product : kProducts) {
        int value = 100 + static_cast<int>(rng.Next(40));
        if (day >= 24 && std::strcmp(region, "west") == 0) value += 220;
        char buf[16];
        std::snprintf(buf, sizeof(buf), "%02d", day);
        out << "2026-01-" << buf << ',' << region << ',' << product << ','
            << value << '\n';
      }
    }
  }
  return out.str();
}

// --- traffic classes -------------------------------------------------------

struct TrafficCounters {
  std::atomic<uint64_t> ok{0};
  std::atomic<uint64_t> structured_errors{0};  // expected for hostile/quota
  std::atomic<uint64_t> shed{0};
};

void RunHotClient(int port, std::atomic<bool>& stop, TrafficCounters& tc,
                  int worker) {
  Client client;
  if (!client.Connect(port)) {
    g_violations.Add("hot: cannot connect");
    return;
  }
  const std::string request =
      R"({"op":"explain","id":"hot)" + std::to_string(worker) +
      R"(","dataset":"soak","measure":"sales","explain_by":["region"],"k":3})";
  while (!stop.load(std::memory_order_relaxed)) {
    std::string response;
    if (!client.SendRecv(request, &response)) {
      if (!stop.load()) g_violations.Add("hot: connection dropped");
      return;
    }
    JsonValue parsed;
    if (!CheckResponseShape("hot", response, &parsed)) return;
    if (parsed.GetBool("ok", false)) {
      tc.ok.fetch_add(1);
    } else if (response.find("overloaded") != std::string::npos) {
      tc.shed.fetch_add(1);
    } else {
      g_violations.Add("hot: unexpected error: " + response);
      return;
    }
  }
}

void RunColdClient(int port, std::atomic<bool>& stop, TrafficCounters& tc,
                   int worker) {
  Client client;
  if (!client.Connect(port)) {
    g_violations.Add("cold: cannot connect");
    return;
  }
  static const char* kDims[] = {"region", "product"};
  Lcg rng(1000 + static_cast<uint64_t>(worker));
  uint64_t sequence = 0;
  while (!stop.load(std::memory_order_relaxed)) {
    // Rotate k and explain_by so most requests miss the result cache
    // (distinct query keys), exercising cold compute + engine builds.
    const int k = 1 + static_cast<int>(rng.Next(6));
    const char* dim = kDims[rng.Next(2)];
    const std::string request =
        R"({"op":"explain","id":"cold)" + std::to_string(worker) + "-" +
        std::to_string(sequence++) +
        R"(","dataset":"soak","measure":"sales","explain_by":[")" + dim +
        R"("],"k":)" + std::to_string(k) + "}";
    std::string response;
    if (!client.SendRecv(request, &response)) {
      if (!stop.load()) g_violations.Add("cold: connection dropped");
      return;
    }
    JsonValue parsed;
    if (!CheckResponseShape("cold", response, &parsed)) return;
    if (parsed.GetBool("ok", false)) {
      tc.ok.fetch_add(1);
    } else {
      // Sheds are the expected overload outcome; anything else is a bug.
      if (response.find("overloaded") != std::string::npos) {
        tc.shed.fetch_add(1);
      } else {
        g_violations.Add("cold: unexpected error: " + response);
        return;
      }
    }
  }
}

void RunStreamClient(int port, std::atomic<bool>& stop, TrafficCounters& tc,
                     int worker) {
  Client client;
  if (!client.Connect(port)) {
    g_violations.Add("stream: cannot connect");
    return;
  }
  std::string response;
  JsonValue parsed;
  const std::string open =
      R"({"op":"open_session","id":"so)" + std::to_string(worker) +
      R"(","dataset":"soak","measure":"sales","explain_by":["region"],"k":2})";
  if (!client.SendRecv(open, &response) ||
      !CheckResponseShape("stream", response, &parsed) ||
      !parsed.GetBool("ok", false)) {
    g_violations.Add("stream: open_session failed: " + response);
    return;
  }
  const int session = parsed.GetInt("session", 0);
  Lcg rng(9000 + static_cast<uint64_t>(worker));
  int day = 48;
  while (!stop.load(std::memory_order_relaxed)) {
    char label[24];
    std::snprintf(label, sizeof(label), "2026-02-%02d", day % 28);
    ++day;
    std::ostringstream append;
    append << R"({"op":"append","id":"sa)" << worker << R"(","session":)"
           << session << R"(,"label":")" << label << R"(","rows":[)";
    static const char* kRegions[] = {"north", "south", "east", "west"};
    for (int r = 0; r < 4; ++r) {
      if (r > 0) append << ',';
      append << R"({"dims":[")" << kRegions[r] << R"("],"measures":[)"
             << (100 + rng.Next(60)) << "]}";
    }
    append << "]}";
    if (!client.SendRecv(append.str(), &response)) {
      if (!stop.load()) g_violations.Add("stream: connection dropped");
      return;
    }
    if (!CheckResponseShape("stream", response, &parsed)) return;
    const std::string explain =
        R"({"op":"explain_session","id":"se)" + std::to_string(worker) +
        R"(","session":)" + std::to_string(session) + "}";
    if (!client.SendRecv(explain, &response)) {
      if (!stop.load()) g_violations.Add("stream: connection dropped");
      return;
    }
    if (!CheckResponseShape("stream", response, &parsed)) return;
    if (parsed.GetBool("ok", false)) {
      tc.ok.fetch_add(1);
    } else if (response.find("overloaded") != std::string::npos) {
      tc.shed.fetch_add(1);
    } else {
      g_violations.Add("stream: unexpected error: " + response);
      return;
    }
  }
  const std::string close =
      R"({"op":"close_session","id":"sc)" + std::to_string(worker) +
      R"(","session":)" + std::to_string(session) + "}";
  client.SendRecv(close, &response);
}

void RunHostileClient(int port, std::atomic<bool>& stop,
                      TrafficCounters& tc, int worker) {
  Client client;
  if (!client.Connect(port)) {
    g_violations.Add("hostile: cannot connect");
    return;
  }
  static const char* kGarbage[] = {
      "{\"op\":\"explain\"",                       // truncated JSON
      "]]]]",                                      // not an object
      "{\"op\":\"no_such_op\",\"id\":1}",          // unknown op
      "{\"op\":\"explain\",\"id\":2,\"dataset\":42}",  // wrong type
      "{\"op\":\"explain\",\"id\":3}",             // missing dataset
      "{\"op\":\"append\",\"id\":4,\"session\":\"x\"}",  // bad session
      "{\"id\":5}",                                // missing op
  };
  Lcg rng(7000 + static_cast<uint64_t>(worker));
  while (!stop.load(std::memory_order_relaxed)) {
    const std::string& line = kGarbage[rng.Next(7)];
    std::string response;
    // Every garbage line must produce exactly one structured error, and
    // the connection must survive to answer a well-formed probe next.
    if (!client.SendRecv(line, &response)) {
      if (!stop.load()) {
        g_violations.Add("hostile: connection died on garbage input");
      }
      return;
    }
    tc.structured_errors.fetch_add(1);
    const std::string probe = R"({"op":"list_datasets","id":"hp"})";
    JsonValue parsed;
    if (!client.SendRecv(probe, &response) ||
        !CheckResponseShape("hostile", response, &parsed) ||
        !parsed.GetBool("ok", false)) {
      if (!stop.load()) {
        g_violations.Add(
            "hostile: connection unusable after garbage input");
      }
      return;
    }
    tc.ok.fetch_add(1);
  }
}

void RunQuotaClient(int port, std::atomic<bool>& stop, TrafficCounters& tc,
                    int worker) {
  Client client;
  if (!client.Connect(port)) {
    g_violations.Add("quota: cannot connect");
    return;
  }
  static const char* kTenants[] = {"acme", "globex", "initech"};
  Lcg rng(5000 + static_cast<uint64_t>(worker));
  uint64_t sequence = 0;
  while (!stop.load(std::memory_order_relaxed)) {
    const std::string request =
        R"({"op":"explain","id":"q)" + std::to_string(worker) + "-" +
        std::to_string(sequence++) +
        R"(","dataset":"soak","measure":"sales","explain_by":["product"],"k":)" +
        std::to_string(1 + rng.Next(4)) + R"(,"tenant":")" +
        kTenants[rng.Next(3)] + R"("})";
    std::string response;
    if (!client.SendRecv(request, &response)) {
      if (!stop.load()) g_violations.Add("quota: connection dropped");
      return;
    }
    JsonValue parsed;
    if (!CheckResponseShape("quota", response, &parsed)) return;
    if (parsed.GetBool("ok", false)) {
      tc.ok.fetch_add(1);
    } else if (response.find("overloaded") != std::string::npos ||
               response.find("quota_exceeded") != std::string::npos) {
      tc.shed.fetch_add(1);  // per-tenant cap sheds are the point
    } else {
      g_violations.Add("quota: unexpected error: " + response);
      return;
    }
  }
}

// --- the telemetry scraper (invariants I1..I3) -----------------------------

void RunScraper(int port, std::atomic<bool>& stop) {
  Client client;
  if (!client.Connect(port)) {
    g_violations.Add("scraper: cannot connect");
    return;
  }
  std::map<std::string, double> last_counters;
  while (!stop.load(std::memory_order_relaxed)) {
    std::string response;
    JsonValue parsed;

    // healthz: must always answer, even under full load (it is handled
    // inline on the reader thread, off every engine mutex).
    if (!client.SendRecv(R"({"op":"healthz","id":"hz"})", &response)) {
      if (!stop.load()) g_violations.Add("scraper: healthz dropped");
      return;
    }
    if (!CheckResponseShape("scraper", response, &parsed)) return;
    if (!parsed.GetBool("ok", false)) {
      g_violations.Add("scraper: healthz returned ok:false: " + response);
    }

    // metrics: monotone counters (I2) + histogram conservation (I3).
    if (!client.SendRecv(R"({"op":"metrics","id":"m"})", &response)) {
      if (!stop.load()) g_violations.Add("scraper: metrics dropped");
      return;
    }
    if (!CheckResponseShape("scraper", response, &parsed)) return;
    const JsonValue* metrics = parsed.Find("metrics");
    if (metrics == nullptr || !metrics->IsObject()) {
      g_violations.Add("scraper: metrics op lacks 'metrics' object");
      return;
    }
    const JsonValue* counters = metrics->Find("counters");
    if (counters != nullptr && counters->IsObject()) {
      for (const auto& [name, value] : counters->members()) {
        const double now = value.AsDouble();
        const auto it = last_counters.find(name);
        if (it != last_counters.end() && now < it->second) {
          g_violations.Add("counter " + name + " went backwards: " +
                           std::to_string(it->second) + " -> " +
                           std::to_string(now));
        }
        last_counters[name] = now;
      }
    }
    const JsonValue* histograms = metrics->Find("histograms");
    if (histograms != nullptr && histograms->IsObject()) {
      for (const auto& [name, hist] : histograms->members()) {
        const JsonValue* buckets = hist.Find("buckets");
        if (buckets == nullptr || !buckets->IsArray()) continue;
        double bucket_sum = 0.0;
        for (const JsonValue& bucket : buckets->array()) {
          bucket_sum += bucket.GetDouble("count", 0.0);
        }
        const double count = hist.GetDouble("count", 0.0);
        if (bucket_sum != count) {
          g_violations.Add("histogram " + name + " buckets sum to " +
                           std::to_string(bucket_sum) + " but count is " +
                           std::to_string(count));
        }
      }
    }

    // stats: bounded admission queue (I1).
    if (!client.SendRecv(R"({"op":"stats","id":"s"})", &response)) {
      if (!stop.load()) g_violations.Add("scraper: stats dropped");
      return;
    }
    if (!CheckResponseShape("scraper", response, &parsed)) return;
    const JsonValue* admission = parsed.Find("admission");
    if (admission != nullptr && admission->IsObject()) {
      const int queued = admission->GetInt("queued", 0);
      const int peak_queued = admission->GetInt("peak_queued", 0);
      if (queued > kQueueDepth || peak_queued > kQueueDepth) {
        g_violations.Add(
            "admission queue exceeded its bound: queued=" +
            std::to_string(queued) +
            " peak_queued=" + std::to_string(peak_queued) +
            " depth=" + std::to_string(kQueueDepth));
      }
    }

    // metrics_history: the windowed series must parse and stay within
    // its declared capacity.
    if (!client.SendRecv(R"({"op":"metrics_history","id":"mh","last_n":32})",
                         &response)) {
      if (!stop.load()) g_violations.Add("scraper: metrics_history dropped");
      return;
    }
    if (!CheckResponseShape("scraper", response, &parsed)) return;
    const JsonValue* history = parsed.Find("history");
    if (history == nullptr || !history->IsObject()) {
      g_violations.Add("scraper: metrics_history lacks 'history' object");
    } else {
      const JsonValue* ticks = history->Find("ticks");
      const double capacity = history->GetDouble("capacity", 0.0);
      if (ticks == nullptr || !ticks->IsArray() ||
          static_cast<double>(ticks->array().size()) > capacity) {
        g_violations.Add("scraper: history window exceeds its capacity");
      }
    }

    std::this_thread::sleep_for(std::chrono::milliseconds(250));
  }
}

// --- phases ---------------------------------------------------------------

void RunTrafficPhase(const SoakOptions& options, int seconds,
                     TrafficCounters& tc) {
  std::atomic<bool> stop{false};
  std::vector<std::thread> threads;
  for (int i = 0; i < options.hot; ++i) {
    threads.emplace_back(RunHotClient, options.port, std::ref(stop),
                         std::ref(tc), i);
  }
  for (int i = 0; i < options.cold; ++i) {
    threads.emplace_back(RunColdClient, options.port, std::ref(stop),
                         std::ref(tc), i);
  }
  for (int i = 0; i < options.stream; ++i) {
    threads.emplace_back(RunStreamClient, options.port, std::ref(stop),
                         std::ref(tc), i);
  }
  for (int i = 0; i < options.hostile; ++i) {
    threads.emplace_back(RunHostileClient, options.port, std::ref(stop),
                         std::ref(tc), i);
  }
  for (int i = 0; i < options.quota; ++i) {
    threads.emplace_back(RunQuotaClient, options.port, std::ref(stop),
                         std::ref(tc), i);
  }
  std::thread scraper(RunScraper, options.port, std::ref(stop));
  std::this_thread::sleep_for(std::chrono::seconds(seconds));
  stop.store(true);
  for (std::thread& t : threads) t.join();
  scraper.join();
}

// The distinguished query for I4: must be in the result cache when
// save_cache runs, and must come back byte-identical after the kill -9 +
// --cache-load restart. Returns the substring from "result": onward
// (request_id / latency_ms / trace differ run to run; the result payload
// must not).
bool DistinguishedQuery(int port, std::string* payload, bool* cache_hit) {
  Client client;
  if (!client.Connect(port)) return false;
  const std::string request =
      R"({"op":"explain","id":"dq","dataset":"soak","measure":"sales","explain_by":["region","product"],"k":4})";
  std::string response;
  if (!client.SendRecv(request, &response)) return false;
  JsonValue parsed;
  if (!CheckResponseShape("warm-restart", response, &parsed) ||
      !parsed.GetBool("ok", false)) {
    return false;
  }
  *cache_hit = parsed.GetBool("cache_hit", false);
  const size_t at = response.find("\"result\":");
  if (at == std::string::npos) return false;
  *payload = response.substr(at);
  return true;
}

// I5: after every traffic thread has joined, nothing may still be
// in flight or stuck (the healthz request itself is the one allowed
// in-flight entry).
void CheckDrained(int port) {
  Client client;
  if (!client.Connect(port)) {
    g_violations.Add("drain: cannot connect");
    return;
  }
  std::string response;
  JsonValue parsed;
  if (!client.SendRecv(R"({"op":"healthz","id":"drain"})", &response) ||
      !CheckResponseShape("drain", response, &parsed)) {
    g_violations.Add("drain: healthz failed");
    return;
  }
  if (parsed.GetString("status") != "ok" || parsed.GetInt("stuck", -1) != 0) {
    g_violations.Add("queries still stuck at drain: " + response);
  }
}

// I6: the dogfood loop — export the server's own metrics history as a
// dataset and explain it with the server's own engine.
void CheckDogfood(int port, const std::string& export_name) {
  Client client;
  if (!client.Connect(port)) {
    g_violations.Add("dogfood: cannot connect");
    return;
  }
  std::string response;
  JsonValue parsed;
  // Force a few deterministic ticks so the export has >= 2 time buckets
  // even when the background sampler barely ran.
  for (int i = 0; i < 3; ++i) {
    if (!client.SendRecv(
            R"({"op":"metrics_history","id":"tick","sample":true,"last_n":1})",
            &response) ||
        !CheckResponseShape("dogfood", response, &parsed) ||
        !parsed.GetBool("ok", false)) {
      g_violations.Add("dogfood: explicit sample tick failed: " + response);
      return;
    }
  }
  const std::string export_request =
      R"({"op":"metrics_history","id":"ex","export_as":")" + export_name +
      R"(","prefix":"query."})";
  if (!client.SendRecv(export_request, &response) ||
      !CheckResponseShape("dogfood", response, &parsed) ||
      !parsed.GetBool("ok", false)) {
    g_violations.Add("dogfood: export_as failed: " + response);
    return;
  }
  const std::string explain_request =
      R"({"op":"explain","id":"dog","dataset":")" + export_name +
      R"(","measure":"value","explain_by":["metric_name"],"k":3})";
  if (!client.SendRecv(explain_request, &response) ||
      !CheckResponseShape("dogfood", response, &parsed) ||
      !parsed.GetBool("ok", false)) {
    g_violations.Add("dogfood: explain over telemetry failed: " + response);
    return;
  }
  if (response.find("metric_name") == std::string::npos) {
    g_violations.Add(
        "dogfood: telemetry explanation names no metric: " + response);
  }
}

bool ParseMix(const std::string& mix, SoakOptions* options) {
  std::stringstream stream(mix);
  std::string part;
  while (std::getline(stream, part, ',')) {
    const size_t eq = part.find('=');
    if (eq == std::string::npos) return false;
    const std::string key = part.substr(0, eq);
    const int value = std::atoi(part.c_str() + eq + 1);
    if (value < 0) return false;
    if (key == "hot") {
      options->hot = value;
    } else if (key == "cold") {
      options->cold = value;
    } else if (key == "stream") {
      options->stream = value;
    } else if (key == "hostile") {
      options->hostile = value;
    } else if (key == "quota") {
      options->quota = value;
    } else {
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  SoakOptions options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--serve-bin") {
      const char* v = next();
      if (!v) return 2;
      options.serve_bin = v;
    } else if (arg == "--port") {
      const char* v = next();
      if (!v) return 2;
      options.port = std::atoi(v);
    } else if (arg == "--duration") {
      const char* v = next();
      if (!v || std::atoi(v) <= 0) return 2;
      options.duration_s = std::atoi(v);
    } else if (arg == "--kill-restart") {
      options.kill_restart = true;
    } else if (arg == "--mix") {
      const char* v = next();
      if (!v || !ParseMix(v, &options)) {
        std::fprintf(stderr,
                     "--mix expects hot=N,cold=N,stream=N,hostile=N,"
                     "quota=N\n");
        return 2;
      }
    } else {
      std::fprintf(stderr,
                   "usage: %s --serve-bin PATH [--port N] [--duration S] "
                   "[--kill-restart] [--mix hot=2,cold=1,...]\n",
                   argv[0]);
      return 2;
    }
  }
  if (options.serve_bin.empty()) {
    std::fprintf(stderr, "--serve-bin is required\n");
    return 2;
  }

  // Scratch directory for the dataset, the cache snapshot, and the
  // child's stderr log.
  char tmpl[] = "/tmp/tsexplain_soak_XXXXXX";
  const char* tmpdir = ::mkdtemp(tmpl);
  if (tmpdir == nullptr) {
    std::perror("mkdtemp");
    return 1;
  }
  const std::string csv_path = std::string(tmpdir) + "/soak.csv";
  const std::string snapshot_path = std::string(tmpdir) + "/cache.snap";
  const std::string log_path = std::string(tmpdir) + "/serve.log";
  {
    std::ofstream csv(csv_path);
    csv << MakeSoakCsv();
  }

  ServerProcess server;
  if (!server.Start(options, csv_path, log_path, /*cache_load=*/"") ||
      !server.WaitReady(options.port)) {
    std::fprintf(stderr, "soak: server failed to start (log: %s)\n",
                 log_path.c_str());
    return 1;
  }
  std::fprintf(stderr, "soak: server up on port %d (log: %s)\n",
               options.port, log_path.c_str());

  TrafficCounters tc;
  const int phase1 =
      options.kill_restart ? std::max(1, options.duration_s / 2)
                           : options.duration_s;
  RunTrafficPhase(options, phase1, tc);

  if (options.kill_restart) {
    // I4: seed the distinguished query (cold, then warm), snapshot the
    // cache, murder the server, restart warm, and demand byte identity.
    std::string cold_payload;
    std::string warm_payload;
    bool hit = false;
    if (!DistinguishedQuery(options.port, &cold_payload, &hit) ||
        !DistinguishedQuery(options.port, &warm_payload, &hit) || !hit) {
      g_violations.Add("warm-restart: distinguished query did not cache");
    }
    Client saver;
    std::string response;
    JsonValue parsed;
    if (!saver.Connect(options.port) ||
        !saver.SendRecv(R"({"op":"save_cache","id":"sv","path":")" +
                            snapshot_path + R"("})",
                        &response) ||
        !CheckResponseShape("warm-restart", response, &parsed) ||
        !parsed.GetBool("ok", false)) {
      g_violations.Add("warm-restart: save_cache failed: " + response);
    }
    saver.Close();
    std::fprintf(stderr, "soak: kill -9 and warm restart\n");
    server.Kill9();
    if (!server.Start(options, csv_path, log_path, snapshot_path) ||
        !server.WaitReady(options.port)) {
      std::fprintf(stderr, "soak: server failed to restart (log: %s)\n",
                   log_path.c_str());
      return 1;
    }
    std::string restart_payload;
    bool restart_hit = false;
    if (!DistinguishedQuery(options.port, &restart_payload, &restart_hit)) {
      g_violations.Add("warm-restart: distinguished query failed after "
                       "restart");
    } else {
      if (!restart_hit) {
        g_violations.Add(
            "warm-restart: query recomputed instead of hitting the "
            "restored cache");
      }
      if (restart_payload != warm_payload) {
        g_violations.Add(
            "warm-restart: result payload differs across restart");
      }
    }
    RunTrafficPhase(options,
                    std::max(1, options.duration_s - phase1), tc);
  }

  CheckDrained(options.port);
  CheckDogfood(options.port, "telemetry");

  // Clean shutdown so --cache-save-style teardown paths run too.
  {
    Client closer;
    std::string response;
    if (closer.Connect(options.port)) {
      closer.SendRecv(R"({"op":"shutdown","id":"bye"})", &response);
    }
  }
  server.WaitExit();

  const std::vector<std::string> violations = g_violations.Snapshot();
  std::fprintf(stderr,
               "soak: %llu ok, %llu shed, %llu structured errors, "
               "%zu violations\n",
               static_cast<unsigned long long>(tc.ok.load()),
               static_cast<unsigned long long>(tc.shed.load()),
               static_cast<unsigned long long>(
                   tc.structured_errors.load()),
               violations.size());
  if (tc.ok.load() == 0) {
    std::fprintf(stderr, "soak: no successful requests at all\n");
    return 1;
  }
  if (!violations.empty()) {
    std::fprintf(stderr, "soak: FAILED (%zu invariant violations)\n",
                 violations.size());
    return 1;
  }
  std::fprintf(stderr, "soak: PASSED\n");
  return 0;
}
