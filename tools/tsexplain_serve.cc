// tsexplain_serve: concurrent NDJSON explanation server.
//
// Speaks the protocol of docs/SERVICE.md: one JSON request per line in,
// one JSON response per line out, responses tagged with the request's
// "id" (they may complete out of order). Two transports:
//
//   * pipe mode (default): requests on stdin, responses on stdout. Fully
//     scriptable — this is what tests/server_smoke_test.sh drives in CI.
//   * TCP mode (--port N): accepts connections on 127.0.0.1:N, one
//     NDJSON stream per connection, one handler thread per connection.
//
// Concurrency model: read ops (explain, explain_session, recommend,
// list_datasets) fan out to the shared thread pool, so slow cold queries
// never block cache hits behind them; identical concurrent queries
// collapse to one computation (single-flight) inside the service. Barrier
// ops (register, sessions, drop_dataset, stats, shutdown) first wait for
// every dispatched read, then run inline on the reader thread — mutations
// and stats therefore observe a settled state in submission order.
//
// Overload safety: explain/explain_session requests pass the service's
// AdmissionController (bounded concurrency + bounded queue + per-tenant
// caps); beyond that, the transport itself sheds expensive requests with
// a structured `overloaded` response BEFORE they reach the thread pool,
// so the dispatch backlog is bounded too — a flood degrades into fast
// shed responses, never into unbounded queue growth. Requests may carry
// a "tenant" field for per-tenant cache budgets and in-flight caps
// (docs/SERVICE.md, "Operating under load").
//
// Options:
//   --port N          TCP mode on 127.0.0.1:N (default: pipe mode)
//   --cache-mb N      result cache capacity in MiB (default 64)
//   --max-inflight N  queries allowed to run concurrently
//                     (default 0 = one per pool worker)
//   --queue-depth N   admitted-but-waiting bound before shedding
//                     (default 16)
//   --tenant-cache-budget N  per-tenant result-cache budget in MiB
//                     (default 0 = tenants share the global LRU)
//   --tenant-inflight N      per-tenant in-flight cap (default 0 = off)
//   --preload NAME=PATH  register a CSV or binary table snapshot at
//                     startup (repeatable; snapshots are auto-detected by
//                     magic and need no --time; CSVs use --time/--measure)
//   --time NAME       time column for CSV --preload datasets
//   --measure NAME    measure column for CSV --preload datasets (optional)
//   --cache-load PATH warm-start: restore a result-cache snapshot saved
//                     by --cache-save / the save_cache op. Entries are
//                     uid-fenced against the preloaded datasets
//                     (docs/SERVICE.md, "Warm starts"); a missing or
//                     corrupt file warns and starts cold, never aborts.
//   --cache-save PATH write the result cache to PATH on clean shutdown
//                     (the shutdown op); pairs with --cache-load.
//   --session-log-dir DIR  append-log every streaming session to
//                     DIR/session_<id>.log for crash recovery (the
//                     recover_session op replays them)
//   --slow-query-ms N slow-query log threshold in milliseconds: explain /
//                     explain_session requests at or above it get a
//                     structured NDJSON record (docs/OBSERVABILITY.md).
//                     Default 0 = off.
//   --slow-query-log PATH  slow-query records go here (append); the
//                     special value "stderr" (the default) logs to stderr
//   --access-log PATH one compact JSON line per handled request
//                     ("stderr" allowed); default off
//   --metrics-history-interval-ms N  background metrics sampler tick
//                     (default 1000; 0 disables the sampler thread — the
//                     metrics_history op then only sees explicit
//                     "sample":true ticks)
//   --metrics-history-capacity N  per-series ring capacity in ticks
//                     (default 600 = 10 minutes at the default interval)
//   --stuck-after-ms N  age at which an in-flight query counts as stuck
//                     in healthz / the query.stuck gauge (default 10000)
//   --serial          handle every op inline (deterministic ordering;
//                     debugging aid)

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <future>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <signal.h>
#include <sys/socket.h>
#include <unistd.h>

#include "src/common/json.h"
#include "src/common/metrics.h"
#include "src/common/metrics_history.h"
#include "src/common/mutex.h"
#include "src/common/thread_pool.h"
#include "src/service/explain_service.h"
#include "src/service/protocol.h"
#include "src/service/watchdog.h"
#include "src/storage/table_snapshot.h"

namespace {

using namespace tsexplain;

struct ServeOptions {
  int port = -1;  // -1 = pipe mode
  size_t cache_mb = 64;
  int max_inflight = 0;         // 0 = auto (pool size)
  int queue_depth = 16;
  size_t tenant_cache_budget_mb = 0;  // 0 = off
  int tenant_inflight = 0;            // 0 = off
  std::vector<std::string> preloads;  // NAME=PATH
  std::string time_column;
  std::string measure;
  std::string cache_load;
  std::string cache_save;
  std::string session_log_dir;
  double slow_query_ms = 0.0;          // <= 0 = slow-query log off
  std::string slow_query_log = "stderr";
  std::string access_log;              // empty = access log off
  int history_interval_ms = 1000;      // 0 = sampler thread off
  int history_capacity = 600;          // ticks retained per series
  double stuck_after_ms = 10000.0;     // watchdog deadline
  bool serial = false;
};

void PrintUsage(std::FILE* out, const char* argv0) {
  std::fprintf(out,
               "usage: %s [--port N] [--cache-mb N] [--max-inflight N] "
               "[--queue-depth N] [--tenant-cache-budget N] "
               "[--tenant-inflight N] [--preload NAME=PATH] [--time NAME] "
               "[--measure NAME] [--cache-load PATH] [--cache-save PATH] "
               "[--session-log-dir DIR] [--slow-query-ms N] "
               "[--slow-query-log PATH] [--access-log PATH] "
               "[--metrics-history-interval-ms N] "
               "[--metrics-history-capacity N] [--stuck-after-ms N] "
               "[--serial] [--help]\n",
               argv0);
}

bool ParseArgs(int argc, char** argv, ServeOptions* options,
               bool* want_help) {
  *want_help = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--port") {
      const char* v = next();
      if (!v) return false;
      options->port = std::atoi(v);
      if (options->port <= 0 || options->port > 65535) {
        std::fprintf(stderr, "--port expects 1..65535\n");
        return false;
      }
    } else if (arg == "--cache-mb") {
      const char* v = next();
      if (!v || std::atoi(v) <= 0) {
        std::fprintf(stderr, "--cache-mb expects a positive integer\n");
        return false;
      }
      options->cache_mb = static_cast<size_t>(std::atoi(v));
    } else if (arg == "--max-inflight") {
      const char* v = next();
      if (!v || std::atoi(v) < 0) {
        std::fprintf(stderr, "--max-inflight expects an integer >= 0\n");
        return false;
      }
      options->max_inflight = std::atoi(v);
    } else if (arg == "--queue-depth") {
      const char* v = next();
      if (!v || std::atoi(v) < 0) {
        std::fprintf(stderr, "--queue-depth expects an integer >= 0\n");
        return false;
      }
      options->queue_depth = std::atoi(v);
    } else if (arg == "--tenant-cache-budget") {
      const char* v = next();
      if (!v || std::atoi(v) < 0) {
        std::fprintf(stderr,
                     "--tenant-cache-budget expects MiB >= 0\n");
        return false;
      }
      options->tenant_cache_budget_mb = static_cast<size_t>(std::atoi(v));
    } else if (arg == "--tenant-inflight") {
      const char* v = next();
      if (!v || std::atoi(v) < 0) {
        std::fprintf(stderr, "--tenant-inflight expects an integer >= 0\n");
        return false;
      }
      options->tenant_inflight = std::atoi(v);
    } else if (arg == "--preload") {
      const char* v = next();
      if (!v || std::strchr(v, '=') == nullptr) {
        std::fprintf(stderr, "--preload expects NAME=PATH\n");
        return false;
      }
      options->preloads.push_back(v);
    } else if (arg == "--time") {
      const char* v = next();
      if (!v) return false;
      options->time_column = v;
    } else if (arg == "--measure") {
      const char* v = next();
      if (!v) return false;
      options->measure = v;
    } else if (arg == "--cache-load") {
      const char* v = next();
      if (!v) return false;
      options->cache_load = v;
    } else if (arg == "--cache-save") {
      const char* v = next();
      if (!v) return false;
      options->cache_save = v;
    } else if (arg == "--session-log-dir") {
      const char* v = next();
      if (!v) return false;
      options->session_log_dir = v;
    } else if (arg == "--slow-query-ms") {
      const char* v = next();
      if (!v || std::atof(v) < 0.0) {
        std::fprintf(stderr, "--slow-query-ms expects milliseconds >= 0\n");
        return false;
      }
      options->slow_query_ms = std::atof(v);
    } else if (arg == "--slow-query-log") {
      const char* v = next();
      if (!v) return false;
      options->slow_query_log = v;
    } else if (arg == "--access-log") {
      const char* v = next();
      if (!v) return false;
      options->access_log = v;
    } else if (arg == "--metrics-history-interval-ms") {
      const char* v = next();
      if (!v || std::atoi(v) < 0) {
        std::fprintf(stderr,
                     "--metrics-history-interval-ms expects an integer "
                     ">= 0\n");
        return false;
      }
      options->history_interval_ms = std::atoi(v);
    } else if (arg == "--metrics-history-capacity") {
      const char* v = next();
      if (!v || std::atoi(v) <= 0) {
        std::fprintf(stderr,
                     "--metrics-history-capacity expects a positive "
                     "integer\n");
        return false;
      }
      options->history_capacity = std::atoi(v);
    } else if (arg == "--stuck-after-ms") {
      const char* v = next();
      if (!v || std::atof(v) <= 0.0) {
        std::fprintf(stderr,
                     "--stuck-after-ms expects milliseconds > 0\n");
        return false;
      }
      options->stuck_after_ms = std::atof(v);
    } else if (arg == "--serial") {
      options->serial = true;
    } else if (arg == "--help" || arg == "-h") {
      *want_help = true;
      return true;
    } else {
      std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
      return false;
    }
  }
  return true;
}

/// Serializes response lines onto one output stream.
class LineWriter {
 public:
  explicit LineWriter(std::FILE* out) : out_(out) {}
  explicit LineWriter(int fd) : fd_(fd) {}

  void Write(const std::string& line) {
    MutexLock lock(mu_);
    if (out_) {
      std::fputs(line.c_str(), out_);
      std::fputc('\n', out_);
      std::fflush(out_);
      return;
    }
    std::string framed = line;
    framed.push_back('\n');
    size_t off = 0;
    while (off < framed.size()) {
      const ssize_t n =
          ::write(fd_, framed.data() + off, framed.size() - off);
      if (n <= 0) return;  // client went away; drop the rest
      off += static_cast<size_t>(n);
    }
  }

 private:
  Mutex mu_;
  // The stream itself is what mu_ serializes: writes interleave at line
  // granularity. The handles are set once at construction, but every
  // use goes through Write under mu_, so they are guarded like the
  // stream state they name.
  std::FILE* out_ TSE_GUARDED_BY(mu_) = nullptr;
  int fd_ TSE_GUARDED_BY(mu_) = -1;
};

/// Parse-and-dispatch for one NDJSON stream; shared by both transports,
/// so the barrier/fan-out semantics cannot drift between them.
class RequestDispatcher {
 public:
  RequestDispatcher(ProtocolHandler& handler, AdmissionController& admission,
                    ThreadPool& pool, bool serial, LineWriter& writer)
      : handler_(handler),
        admission_(admission),
        pool_(pool),
        serial_(serial),
        writer_(writer) {}

  ~RequestDispatcher() { Drain(); }

  /// Handles one request line (with or without a trailing CR). Returns
  /// true when the line was a shutdown op.
  bool HandleLine(std::string line) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) return false;
    JsonValue request;
    std::string parse_error;
    if (!ParseJson(line, &request, &parse_error)) {
      writer_.Write(handler_.MakeParseError(parse_error));
      return false;
    }
    const std::string op = ProtocolHandler::OpOf(request);
    if (op == "healthz") {
      // Liveness must answer even when every pool worker is wedged in a
      // compute and the dispatch backlog is full: handled right here on
      // the reader thread — no Drain(), no pool submit, no backlog slot.
      // The handler side keeps the op off every engine/cache mutex, so
      // this cannot block behind the very stall it is reporting.
      writer_.Write(handler_.Handle(request));
      return false;
    }
    if (serial_ || ProtocolHandler::IsBarrierOp(op)) {
      // Barrier: earlier dispatched reads finish first, so mutations and
      // stats observe a settled state, in submission order.
      Drain();
      writer_.Write(handler_.Handle(request));
      return op == "shutdown";
    }
    // Expensive reads reserve a backlog slot BEFORE touching the pool:
    // at most max_inflight + queue_depth of them exist anywhere
    // (running, queued in admission, or parked in the pool's task
    // queue); the rest are shed right here, on the reader thread, with a
    // structured overloaded response. Queue growth is bounded even when
    // clients flood faster than the pool drains.
    const bool expensive = ProtocolHandler::IsExpensiveOp(op);
    if (expensive && !admission_.TryAcquireBacklogSlot()) {
      writer_.Write(handler_.MakeOverloaded(request));
      return false;
    }
    // Reads fan out; the response carries the echoed id. Completed
    // futures are pruned as we go so a read-only stream stays O(live).
    PruneCompleted();
    auto shared_request = std::make_shared<JsonValue>(std::move(request));
    pending_.push_back(
        pool_.Submit([this, shared_request, expensive] {
          writer_.Write(handler_.Handle(*shared_request));
          if (expensive) admission_.ReleaseBacklogSlot();
        }));
    return false;
  }

  /// Waits for every dispatched request to finish.
  void Drain() {
    for (std::future<void>& f : pending_) f.wait();
    pending_.clear();
  }

 private:
  void PruneCompleted() {
    pending_.erase(
        std::remove_if(pending_.begin(), pending_.end(),
                       [](std::future<void>& f) {
                         return f.wait_for(std::chrono::seconds(0)) ==
                                std::future_status::ready;
                       }),
        pending_.end());
  }

  ProtocolHandler& handler_;
  AdmissionController& admission_;
  ThreadPool& pool_;
  bool serial_;
  LineWriter& writer_;
  std::vector<std::future<void>> pending_;
};

/// Splits a byte stream into NDJSON lines for a RequestDispatcher,
/// tolerating lines split across arbitrarily small read() chunks and
/// bounding line length: once a line exceeds kMaxLineBytes the framer
/// responds with ONE structured error, discards bytes until the next
/// newline, and keeps the connection alive — a multi-MB garbage line can
/// neither desync the stream nor balloon memory.
class LineFramer {
 public:
  static constexpr size_t kMaxLineBytes = 4u << 20;  // 4 MiB

  LineFramer(RequestDispatcher& dispatcher, LineWriter& writer)
      : dispatcher_(dispatcher), writer_(writer) {}

  /// Feeds one chunk; returns true when a shutdown op was handled.
  bool Consume(const char* data, size_t size,
               const ProtocolHandler& handler) {
    if (discarding_) {
      // Tail of an oversized line: drop bytes WITHOUT buffering them (a
      // client that never sends a newline must not grow memory) until
      // the line finally ends. The error already went out.
      const void* nl = std::memchr(data, '\n', size);
      if (nl == nullptr) return false;
      const size_t skip =
          static_cast<size_t>(static_cast<const char*>(nl) - data) + 1;
      data += skip;
      size -= skip;
      discarding_ = false;
    }
    buffer_.append(data, size);
    size_t start = 0;
    bool done = false;
    for (size_t nl = buffer_.find('\n', start);
         nl != std::string::npos && !done;
         start = nl + 1, nl = buffer_.find('\n', start)) {
      done = dispatcher_.HandleLine(buffer_.substr(start, nl - start));
    }
    buffer_.erase(0, start);
    if (!done && buffer_.size() > kMaxLineBytes) {
      writer_.Write(handler.MakeParseError(
          "request line exceeds 4 MiB; dropped"));
      buffer_.clear();
      buffer_.shrink_to_fit();
      discarding_ = true;
    }
    return done;
  }

 private:
  RequestDispatcher& dispatcher_;
  LineWriter& writer_;
  std::string buffer_;
  bool discarding_ = false;
};

int RunPipeMode(ProtocolHandler& handler, AdmissionController& admission,
                ThreadPool& pool, bool serial) {
  LineWriter writer(stdout);
  RequestDispatcher dispatcher(handler, admission, pool, serial, writer);
  std::string line;
  while (std::getline(std::cin, line)) {
    if (dispatcher.HandleLine(std::move(line))) break;
    line.clear();
  }
  return 0;
}

/// Live TCP connections, so a shutdown op can unblock every reader (a
/// connection idle in read() would otherwise keep the join below waiting
/// forever).
class ConnectionSet {
 public:
  void Add(int fd) {
    MutexLock lock(mu_);
    fds_.push_back(fd);
  }
  void Remove(int fd) {
    MutexLock lock(mu_);
    fds_.erase(std::remove(fds_.begin(), fds_.end(), fd), fds_.end());
  }
  void ShutdownAll() {
    MutexLock lock(mu_);
    for (int fd : fds_) ::shutdown(fd, SHUT_RD);
  }

 private:
  Mutex mu_;
  std::vector<int> fds_ TSE_GUARDED_BY(mu_);
};

int RunTcpMode(ProtocolHandler& handler, AdmissionController& admission,
               ThreadPool& pool, bool serial, int port) {
  ::signal(SIGPIPE, SIG_IGN);
  const int listener = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listener < 0) {
    std::perror("socket");
    return 1;
  }
  const int one = 1;
  ::setsockopt(listener, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);  // localhost only
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::bind(listener, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
          0 ||
      ::listen(listener, 64) < 0) {
    std::perror("bind/listen");
    ::close(listener);
    return 1;
  }
  std::fprintf(stderr, "tsexplain_serve: listening on 127.0.0.1:%d\n",
               port);

  std::atomic<bool> stop{false};
  ConnectionSet live;
  // Each entry carries a finished flag so the accept loop can reap done
  // connection threads as it goes — a long-lived server with churning
  // clients must not accumulate one unjoined thread per past connection.
  struct Connection {
    std::thread thread;
    std::shared_ptr<std::atomic<bool>> finished;
  };
  std::vector<Connection> connections;
  auto reap_finished = [&connections] {
    for (auto it = connections.begin(); it != connections.end();) {
      if (it->finished->load()) {
        it->thread.join();
        it = connections.erase(it);
      } else {
        ++it;
      }
    }
  };
  while (!stop.load()) {
    const int fd = ::accept(listener, nullptr, nullptr);
    if (fd < 0) break;
    if (stop.load()) {
      ::close(fd);
      break;
    }
    reap_finished();
    live.Add(fd);
    auto finished = std::make_shared<std::atomic<bool>>(false);
    Connection connection;
    connection.finished = finished;
    connection.thread = std::thread([fd, listener, &handler, &admission,
                                     &pool, serial, &stop, &live, finished] {
      LineWriter writer(fd);
      RequestDispatcher dispatcher(handler, admission, pool, serial, writer);
      LineFramer framer(dispatcher, writer);
      char chunk[4096];
      bool done = false;
      while (!done) {
        const ssize_t n = ::read(fd, chunk, sizeof(chunk));
        if (n < 0 && errno == EINTR) continue;  // signal: not EOF
        if (n <= 0) break;
        if (framer.Consume(chunk, static_cast<size_t>(n), handler)) {
          stop.store(true);
          done = true;
          // Unblock accept AND every other connection's read().
          ::shutdown(listener, SHUT_RDWR);
          live.ShutdownAll();
        }
      }
      dispatcher.Drain();
      live.Remove(fd);
      ::close(fd);
      finished->store(true);
    });
    connections.push_back(std::move(connection));
  }
  ::close(listener);
  for (Connection& connection : connections) connection.thread.join();
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  ServeOptions options;
  bool want_help = false;
  if (!ParseArgs(argc, argv, &options, &want_help)) {
    PrintUsage(stderr, argv[0]);
    return 2;
  }
  if (want_help) {
    PrintUsage(stdout, argv[0]);
    return 0;
  }

  ServiceOptions service_options;
  service_options.cache_capacity_bytes = options.cache_mb << 20;
  service_options.admission.max_concurrent = options.max_inflight;
  service_options.admission.queue_depth = options.queue_depth;
  service_options.admission.per_tenant_inflight = options.tenant_inflight;
  service_options.tenant_cache_budget_bytes =
      options.tenant_cache_budget_mb << 20;
  service_options.session_log_dir = options.session_log_dir;
  ExplainService service(service_options);

  for (const std::string& preload : options.preloads) {
    const size_t eq = preload.find('=');
    const std::string name = preload.substr(0, eq);
    const std::string path = preload.substr(eq + 1);
    std::string error;
    bool ok = false;
    if (storage::IsTableSnapshotFile(path)) {
      // Binary snapshot: schema (incl. the time column) is baked in.
      ok = service.registry().RegisterSnapshotFile(name, path, &error);
    } else {
      if (options.time_column.empty()) {
        std::fprintf(stderr, "--preload requires --time for CSV inputs\n");
        return 2;
      }
      CsvOptions csv;
      csv.time_column = options.time_column;
      if (!options.measure.empty()) {
        csv.measure_columns = {options.measure};
      }
      ok = service.registry().RegisterCsvFile(name, path, csv, &error);
    }
    if (!ok) {
      std::fprintf(stderr, "preload %s failed: %s\n", name.c_str(),
                   error.c_str());
      return 1;
    }
    std::fprintf(stderr, "preloaded %s from %s\n", name.c_str(),
                 path.c_str());
  }

  if (!options.cache_load.empty()) {
    // Warm start is best-effort by design: a stale, corrupt, or missing
    // snapshot must degrade to a cold cache, never block serving.
    std::string error;
    size_t restored = 0;
    size_t fenced = 0;
    if (service.LoadCache(options.cache_load, &error, &restored, &fenced)) {
      std::fprintf(stderr,
                   "cache warm start: %zu entries restored, %zu fenced "
                   "(%s)\n",
                   restored, fenced, options.cache_load.c_str());
    } else {
      std::fprintf(stderr, "cache warm start skipped: %s\n", error.c_str());
    }
  }

  ProtocolHandler handler(service);
  ProtocolHandler::LogOptions log_options;
  std::unique_ptr<LineLog> slow_log;
  std::unique_ptr<LineLog> access_log;
  if (options.slow_query_ms > 0.0) {
    std::string error;
    slow_log = LineLog::Open(options.slow_query_log, &error);
    if (!slow_log) {
      std::fprintf(stderr, "cannot open slow-query log: %s\n",
                   error.c_str());
      return 2;
    }
    log_options.slow_query_log = slow_log.get();
    log_options.slow_query_ms = options.slow_query_ms;
  }
  if (!options.access_log.empty()) {
    std::string error;
    access_log = LineLog::Open(options.access_log, &error);
    if (!access_log) {
      std::fprintf(stderr, "cannot open access log: %s\n", error.c_str());
      return 2;
    }
    log_options.access_log = access_log.get();
  }
  handler.set_log_options(log_options);
  ThreadPool& pool = ThreadPool::Shared();

  // Self-observation (docs/OBSERVABILITY.md, "Self-observation"): the
  // watchdog stamps every request; the history sampler snapshots the
  // registry on a cadence. Both exist even when the sampler thread is
  // disabled, so healthz/state and explicit "sample":true ticks work in
  // every configuration.
  const double start_wall_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::system_clock::now().time_since_epoch())
          .count();
  QueryWatchdog::Options watchdog_options;
  watchdog_options.stuck_after_ms = options.stuck_after_ms;
  QueryWatchdog watchdog(watchdog_options);
  MetricsHistory::Options history_options;
  history_options.interval_ms =
      options.history_interval_ms > 0 ? options.history_interval_ms : 1000;
  history_options.capacity = static_cast<size_t>(options.history_capacity);
  MetricsHistory history(MetricRegistry::Global(), history_options);
  history.TrackHistogramPercentiles("query.hot_ms");
  history.TrackHistogramPercentiles("query.cold_ms");
  // Sole registration site for the process-identity gauges (lint R4):
  // build_info is the constant 1 (Prometheus idiom — the interesting
  // bits live in the `state` op's build block); uptime is refreshed by
  // the sampler prologue below, alongside the watchdog gauges.
  Gauge& uptime_gauge =
      MetricRegistry::Global().GetGauge("server.uptime_seconds");
  MetricRegistry::Global().GetGauge("server.build_info").Set(1);
  history.SetSamplePrologue([&uptime_gauge, &watchdog, start_wall_ms] {
    const double now_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::system_clock::now().time_since_epoch())
            .count();
    uptime_gauge.Set(
        static_cast<int64_t>((now_ms - start_wall_ms) / 1000.0));
    watchdog.Scan();
  });
  if (options.history_interval_ms > 0) history.Start();

  ProtocolHandler::Introspection introspection;
  introspection.history = &history;
  introspection.watchdog = &watchdog;
  introspection.start_wall_ms = start_wall_ms;
  introspection.pool_size = static_cast<int>(pool.size());
  handler.set_introspection(introspection);

  const int exit_code =
      options.port > 0
          ? RunTcpMode(handler, service.admission(), pool, options.serial,
                       options.port)
          : RunPipeMode(handler, service.admission(), pool, options.serial);
  history.Stop();

  if (!options.cache_save.empty()) {
    std::string error;
    size_t saved = 0;
    if (service.SaveCache(options.cache_save, &error, &saved)) {
      std::fprintf(stderr, "cache saved: %zu entries (%s)\n", saved,
                   options.cache_save.c_str());
    } else {
      std::fprintf(stderr, "cache save failed: %s\n", error.c_str());
    }
  }
  return exit_code;
}
