#!/usr/bin/env bash
# Coverage-guided fuzzing driver for the fuzz/ harnesses (docs/FUZZING.md).
# Runs each libFuzzer target against its committed seed corpus for a time
# budget and fails if ANY target crashes, OOMs, leaks, or times out.
#
# Requires a TSEXPLAIN_FUZZ=ON build (clang):
#   cmake -B build-fuzz -S . -DCMAKE_CXX_COMPILER=clang++ \
#         -DTSEXPLAIN_FUZZ=ON -DTSEXPLAIN_BUILD_BENCHES=OFF \
#         -DTSEXPLAIN_BUILD_EXAMPLES=OFF
#   cmake --build build-fuzz -j
#   tools/run_fuzzers.sh -b build-fuzz -t 60
#
# Usage:
#   tools/run_fuzzers.sh [-b BUILD_DIR] [-t SECONDS] [-m] [TARGET...]
#
#   -b BUILD_DIR   where the fuzz_* binaries live (default: build-fuzz)
#   -t SECONDS     -max_total_time per target (default: 60; the
#                  fuzz-smoke CI budget)
#   -m             after fuzzing, minimize: merge each target's live
#                  corpus back into fuzz/corpus/<surface>/ (use before
#                  committing new coverage)
#   TARGET...      explicit harness names (fuzz_json, ...); default: all
#
# Artifacts (crash-*, oom-*, timeout-*) land in FINDINGS_DIR
# (default: <BUILD_DIR>/fuzz-findings/<surface>/). Every artifact is a
# bug: reproduce with the replay binary from any GCC build
#   ./build/fuzz_<surface>_replay <artifact>
# then commit the input to fuzz/corpus/<surface>/ in the PR that fixes
# it. Findings are never deleted or suppressed (docs/FUZZING.md policy).
set -u

SCRIPT_DIR="$(cd "$(dirname "${BASH_SOURCE[0]}")" && pwd)"
REPO_ROOT="$(cd "${SCRIPT_DIR}/.." && pwd)"

BUILD_DIR="build-fuzz"
BUDGET_S=60
MERGE=0
while getopts "b:t:m" opt; do
  case "${opt}" in
    b) BUILD_DIR="${OPTARG}" ;;
    t) BUDGET_S="${OPTARG}" ;;
    m) MERGE=1 ;;
    *) echo "usage: $0 [-b BUILD_DIR] [-t SECONDS] [-m] [TARGET...]" >&2
       exit 2 ;;
  esac
done
shift $((OPTIND - 1))

FINDINGS_DIR="${FINDINGS_DIR:-${BUILD_DIR}/fuzz-findings}"

if [ "$#" -gt 0 ]; then
  TARGETS=("$@")
else
  TARGETS=()
  for src in "${REPO_ROOT}"/fuzz/fuzz_*.cc; do
    TARGETS+=("$(basename "${src}" .cc)")
  done
fi

failures=0
for target in "${TARGETS[@]}"; do
  surface="${target#fuzz_}"
  binary="${BUILD_DIR}/${target}"
  corpus="${REPO_ROOT}/fuzz/corpus/${surface}"
  findings="${FINDINGS_DIR}/${surface}"
  if [ ! -x "${binary}" ]; then
    echo "FAIL ${target}: ${binary} not built (need TSEXPLAIN_FUZZ=ON + clang)" >&2
    failures=$((failures + 1))
    continue
  fi
  if [ ! -d "${corpus}" ]; then
    echo "FAIL ${target}: no committed corpus at ${corpus}" >&2
    failures=$((failures + 1))
    continue
  fi
  mkdir -p "${findings}"
  live="${findings}/live-corpus"
  mkdir -p "${live}"
  echo "=== ${target}: ${BUDGET_S}s budget, seeds from ${corpus}"
  # -timeout: per-input hang cap. -rss_limit_mb: an input driving the
  # process past 2 GiB is an allocation-amplification finding, not noise.
  "${binary}" "${live}" "${corpus}" \
      -max_total_time="${BUDGET_S}" -timeout=10 -rss_limit_mb=2048 \
      -print_final_stats=1 -artifact_prefix="${findings}/" \
      2> "${findings}/fuzz.log"
  status=$?
  if [ "${status}" -ne 0 ]; then
    echo "FAIL ${target}: fuzzer exited ${status}; findings in ${findings}" >&2
    tail -n 25 "${findings}/fuzz.log" >&2
    failures=$((failures + 1))
    continue
  fi
  # Belt and braces: some OOM/timeout paths write an artifact but exit 0.
  found="$(find "${findings}" -maxdepth 1 -type f \
           \( -name 'crash-*' -o -name 'oom-*' -o -name 'timeout-*' \
              -o -name 'leak-*' \) | head -5)"
  if [ -n "${found}" ]; then
    echo "FAIL ${target}: artifacts written:" >&2
    echo "${found}" >&2
    failures=$((failures + 1))
    continue
  fi
  echo "ok: ${target}"
  if [ "${MERGE}" -eq 1 ]; then
    "${binary}" -merge=1 "${corpus}" "${live}" \
        2> "${findings}/merge.log" || {
      echo "FAIL ${target}: corpus merge failed" >&2
      failures=$((failures + 1))
    }
  fi
done

if [ "${failures}" -ne 0 ]; then
  echo "run_fuzzers: ${failures} target(s) failed" >&2
  exit 1
fi
echo "run_fuzzers: all targets clean"
