#include "src/table/group_by.h"

#include "src/common/check.h"

namespace tsexplain {
namespace {

bool RowMatches(const Table& table, size_t row,
                const std::vector<DimPredicate>& conjunction) {
  for (const DimPredicate& p : conjunction) {
    if (table.dim(row, p.attr) != p.value) return false;
  }
  return true;
}

double MeasureOrCount(const Table& table, size_t row, int measure_idx) {
  // COUNT aggregates ignore the measure; callers pass measure_idx = -1.
  return measure_idx < 0 ? 1.0 : table.measure(row, measure_idx);
}

}  // namespace

TimeSeries GroupByTime(const Table& table, AggregateFunction f,
                       int measure_idx,
                       const std::vector<DimPredicate>& conjunction) {
  const std::vector<AggState> partials =
      GroupByTimePartials(table, measure_idx, conjunction);
  TimeSeries out;
  out.labels = table.time_labels();
  out.values.resize(partials.size());
  for (size_t t = 0; t < partials.size(); ++t) {
    out.values[t] = partials[t].Finalize(f);
  }
  return out;
}

std::vector<AggState> GroupByTimePartials(
    const Table& table, int measure_idx,
    const std::vector<DimPredicate>& conjunction) {
  if (measure_idx >= 0) {
    TSE_CHECK_LT(static_cast<size_t>(measure_idx),
                 table.schema().num_measures());
  }
  std::vector<AggState> partials(table.num_time_buckets());
  for (size_t row = 0; row < table.num_rows(); ++row) {
    if (!conjunction.empty() && !RowMatches(table, row, conjunction)) continue;
    partials[static_cast<size_t>(table.time(row))].Add(
        MeasureOrCount(table, row, measure_idx));
  }
  return partials;
}

std::vector<TimeSeries> GroupByTimeAndDimension(const Table& table,
                                                AggregateFunction f,
                                                int measure_idx, AttrId dim) {
  TSE_CHECK_GE(dim, 0);
  TSE_CHECK_LT(static_cast<size_t>(dim), table.schema().num_dimensions());
  const size_t cardinality = table.dictionary(dim).size();
  const size_t n = table.num_time_buckets();
  std::vector<std::vector<AggState>> partials(
      cardinality, std::vector<AggState>(n));
  for (size_t row = 0; row < table.num_rows(); ++row) {
    const ValueId v = table.dim(row, dim);
    partials[static_cast<size_t>(v)][static_cast<size_t>(table.time(row))].Add(
        MeasureOrCount(table, row, measure_idx));
  }
  std::vector<TimeSeries> out(cardinality);
  for (size_t v = 0; v < cardinality; ++v) {
    out[v].labels = table.time_labels();
    out[v].values.resize(n);
    for (size_t t = 0; t < n; ++t) {
      out[v].values[t] = partials[v][t].Finalize(f);
    }
  }
  return out;
}

}  // namespace tsexplain
