#include "src/table/csv_reader.h"

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>

#include "src/common/strings.h"

namespace tsexplain {
namespace {

CsvResult Fail(const std::string& message) {
  CsvResult result;
  result.error = message;
  return result;
}

// Strips a trailing '\r' (CRLF input).
void StripCr(std::string* line) {
  if (!line->empty() && line->back() == '\r') line->pop_back();
}

}  // namespace

std::vector<std::string> SplitCsvLine(const std::string& line,
                                      char delimiter) {
  std::vector<std::string> fields;
  std::string field;
  bool quoted = false;
  for (size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (quoted) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          field.push_back('"');  // escaped quote
          ++i;
        } else {
          quoted = false;
        }
      } else {
        field.push_back(c);
      }
    } else if (c == '"') {
      quoted = true;
    } else if (c == delimiter) {
      fields.push_back(std::move(field));
      field.clear();
    } else {
      field.push_back(c);
    }
  }
  fields.push_back(std::move(field));
  return fields;
}

CsvResult ReadCsvFromString(const std::string& text,
                            const CsvOptions& options) {
  if (options.time_column.empty()) {
    return Fail("CsvOptions::time_column must be set");
  }
  std::istringstream stream(text);
  std::string line;
  if (!std::getline(stream, line)) return Fail("empty input");
  StripCr(&line);

  const std::vector<std::string> header =
      SplitCsvLine(line, options.delimiter);
  int time_idx = -1;
  std::vector<std::string> dimension_names;
  std::vector<size_t> dimension_cols;
  std::vector<size_t> measure_cols;
  std::vector<std::string> measure_names;
  for (size_t col = 0; col < header.size(); ++col) {
    const std::string& name = header[col];
    if (name == options.time_column) {
      if (time_idx >= 0) return Fail("duplicate time column: " + name);
      time_idx = static_cast<int>(col);
      continue;
    }
    const bool is_measure =
        std::find(options.measure_columns.begin(),
                  options.measure_columns.end(),
                  name) != options.measure_columns.end();
    if (is_measure) {
      measure_cols.push_back(col);
      measure_names.push_back(name);
    } else {
      dimension_cols.push_back(col);
      dimension_names.push_back(name);
    }
  }
  if (time_idx < 0) {
    return Fail("time column not found: " + options.time_column);
  }
  for (const std::string& want : options.measure_columns) {
    if (std::find(measure_names.begin(), measure_names.end(), want) ==
        measure_names.end()) {
      return Fail("measure column not found: " + want);
    }
  }

  // First pass: collect rows as strings (we need the full set of time
  // labels before we can encode buckets in sorted order).
  struct RawRow {
    std::string time;
    std::vector<std::string> dims;
    std::vector<double> measures;
  };
  std::vector<RawRow> raw_rows;
  std::map<std::string, TimeId> time_ids;  // ordered -> sorted labels
  size_t line_number = 1;
  while (std::getline(stream, line)) {
    ++line_number;
    StripCr(&line);
    if (line.empty()) continue;
    const std::vector<std::string> fields =
        SplitCsvLine(line, options.delimiter);
    if (fields.size() != header.size()) {
      return Fail(StrFormat("line %zu: expected %zu fields, got %zu",
                            line_number, header.size(), fields.size()));
    }
    RawRow row;
    row.time = fields[static_cast<size_t>(time_idx)];
    for (size_t col : dimension_cols) row.dims.push_back(fields[col]);
    for (size_t col : measure_cols) {
      const std::string& text_value = fields[col];
      char* end = nullptr;
      const double value = std::strtod(text_value.c_str(), &end);
      if (end == text_value.c_str() || *end != '\0') {
        return Fail(StrFormat("line %zu: '%s' is not a number",
                              line_number, text_value.c_str()));
      }
      row.measures.push_back(value);
    }
    time_ids.emplace(row.time, 0);
    raw_rows.push_back(std::move(row));
  }
  if (raw_rows.empty()) return Fail("no data rows");

  CsvResult result;
  result.table = std::make_unique<Table>(
      Schema(options.time_column, dimension_names, measure_names));
  if (options.sort_time) {
    // std::map iterates keys sorted: register buckets in that order.
    for (auto& [label, id] : time_ids) {
      id = result.table->AddTimeBucket(label);
    }
  } else {
    // First-appearance order.
    for (auto& [label, id] : time_ids) id = kInvalidValueId;
    for (const RawRow& row : raw_rows) {
      TimeId& id = time_ids[row.time];
      if (id == kInvalidValueId) {
        id = result.table->AddTimeBucket(row.time);
      }
    }
  }
  for (const RawRow& row : raw_rows) {
    result.table->AppendRow(time_ids[row.time], row.dims, row.measures);
  }
  result.rows = raw_rows.size();
  return result;
}

CsvResult ReadCsvFile(const std::string& path, const CsvOptions& options) {
  std::ifstream file(path, std::ios::binary);
  if (!file) return Fail("cannot open file: " + path);
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return ReadCsvFromString(buffer.str(), options);
}

}  // namespace tsexplain
