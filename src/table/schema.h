// Relation schema: named dimension (categorical), measure (double), and one
// time column. Mirrors the paper's setting (section 3.1.2): a relation R
// with dimension attributes {D_i}, measure attributes {M_j}, and a
// time-related ordinal dimension T.

#ifndef TSEXPLAIN_TABLE_SCHEMA_H_
#define TSEXPLAIN_TABLE_SCHEMA_H_

#include <cstdint>
#include <string>
#include <vector>

namespace tsexplain {

/// Index of a dimension attribute within a schema.
using AttrId = int32_t;

inline constexpr AttrId kInvalidAttrId = -1;

enum class ColumnKind {
  kDimension,  // categorical, dictionary-encoded
  kMeasure,    // double
  kTime,       // ordinal time bucket
};

struct ColumnSpec {
  std::string name;
  ColumnKind kind;
};

/// Immutable-after-construction schema for a Table.
class Schema {
 public:
  Schema(std::string time_name, std::vector<std::string> dimension_names,
         std::vector<std::string> measure_names);

  const std::string& time_name() const { return time_name_; }
  const std::vector<std::string>& dimension_names() const {
    return dimension_names_;
  }
  const std::vector<std::string>& measure_names() const {
    return measure_names_;
  }

  size_t num_dimensions() const { return dimension_names_.size(); }
  size_t num_measures() const { return measure_names_.size(); }

  /// Dimension index by name, or kInvalidAttrId.
  AttrId DimensionIndex(const std::string& name) const;

  /// Measure index by name, or -1.
  int MeasureIndex(const std::string& name) const;

 private:
  std::string time_name_;
  std::vector<std::string> dimension_names_;
  std::vector<std::string> measure_names_;
};

}  // namespace tsexplain

#endif  // TSEXPLAIN_TABLE_SCHEMA_H_
