// CSV loader: turns a delimited file (or in-memory text) into a Table so
// downstream users can point TSExplain at their own data.
//
// Conventions:
//  * First line is the header.
//  * One column is the time dimension (named via options). Rows may appear
//    in any order; time buckets are created in order of first appearance
//    unless `sort_time` is set, in which case bucket labels are sorted
//    lexicographically before encoding (use zero-padded / ISO-8601 labels
//    for calendar data).
//  * Columns listed in `measure_columns` parse as doubles; every other
//    column becomes a dictionary-encoded dimension.
//  * Supports quoted fields ("a,b" and embedded "" escapes), CRLF line
//    endings, and a configurable delimiter.
//
// Parse problems are reported via CsvResult::error (no exceptions).

#ifndef TSEXPLAIN_TABLE_CSV_READER_H_
#define TSEXPLAIN_TABLE_CSV_READER_H_

#include <memory>
#include <string>
#include <vector>

#include "src/table/table.h"

namespace tsexplain {

struct CsvOptions {
  std::string time_column;
  std::vector<std::string> measure_columns;
  char delimiter = ',';
  /// Sort time-bucket labels lexicographically before encoding.
  bool sort_time = true;
};

struct CsvResult {
  std::unique_ptr<Table> table;  // null on failure
  std::string error;             // empty on success
  size_t rows = 0;

  bool ok() const { return table != nullptr; }
};

/// Parses CSV text already in memory.
CsvResult ReadCsvFromString(const std::string& text,
                            const CsvOptions& options);

/// Reads and parses a CSV file.
CsvResult ReadCsvFile(const std::string& path, const CsvOptions& options);

/// Splits one CSV record honoring quotes; exposed for tests.
std::vector<std::string> SplitCsvLine(const std::string& line,
                                      char delimiter);

}  // namespace tsexplain

#endif  // TSEXPLAIN_TABLE_CSV_READER_H_
