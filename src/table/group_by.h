// Hand-rolled group-by aggregation over a Table.
//
// Implements the queries the paper issues against the relation:
//   SELECT T, f(M) FROM R GROUP BY T                          (Def. 3.6)
//   SELECT T, f(M) FROM R WHERE <conjunction> GROUP BY T      (sigma_E R)
//   SELECT T, f(M) FROM R GROUP BY T, D                       (drill-down)
// Aggregates are decomposable (SUM / COUNT / AVG) and are carried as
// (sum, count) partials so complements (R - sigma_E R) can be derived
// without rescanning (paper section 5.2, module (a)).

#ifndef TSEXPLAIN_TABLE_GROUP_BY_H_
#define TSEXPLAIN_TABLE_GROUP_BY_H_

#include <vector>

#include "src/table/table.h"
#include "src/ts/time_series.h"

namespace tsexplain {

/// Aggregate functions supported by the engine. All are decomposable in the
/// sense of section 5.2: f(R) can be recovered from (sum, count) partials,
/// and f(R - S) from the partials of R and S.
enum class AggregateFunction {
  kSum,
  kCount,
  kAvg,
};

/// Decomposable partial aggregate.
struct AggState {
  double sum = 0.0;
  double count = 0.0;

  void Add(double value) {
    sum += value;
    count += 1.0;
  }
  void Merge(const AggState& other) {
    sum += other.sum;
    count += other.count;
  }
  /// Partial for the complement R - S given this = R and `inner` = S.
  AggState Minus(const AggState& inner) const {
    return AggState{sum - inner.sum, count - inner.count};
  }
  /// Finalizes to the aggregate value. An empty AVG group finalizes to 0.
  /// Inline: the cube's batched scoring calls this for every candidate of
  /// every segment, so it must not cost a cross-TU call.
  double Finalize(AggregateFunction f) const {
    switch (f) {
      case AggregateFunction::kSum:
        return sum;
      case AggregateFunction::kCount:
        return count;
      case AggregateFunction::kAvg:
        return count > 0.0 ? sum / count : 0.0;
    }
    return 0.0;  // unreachable for valid enum values
  }
};

/// Simple conjunction filter over dimension columns.
struct DimPredicate {
  AttrId attr;
  ValueId value;
};

/// Evaluates SELECT T, f(M) FROM table [WHERE conj] GROUP BY T and returns a
/// dense series over all time buckets (missing groups finalize as empty).
TimeSeries GroupByTime(const Table& table, AggregateFunction f,
                       int measure_idx,
                       const std::vector<DimPredicate>& conjunction = {});

/// Same as GroupByTime but returns the raw partial aggregates (used by the
/// explanation cube and by tests that check decomposability).
std::vector<AggState> GroupByTimePartials(
    const Table& table, int measure_idx,
    const std::vector<DimPredicate>& conjunction = {});

/// Drill-down: SELECT T, f(M) FROM table GROUP BY T, D for one dimension D.
/// Returns one dense series per dictionary value of D, indexed by ValueId.
std::vector<TimeSeries> GroupByTimeAndDimension(const Table& table,
                                                AggregateFunction f,
                                                int measure_idx, AttrId dim);

}  // namespace tsexplain

#endif  // TSEXPLAIN_TABLE_GROUP_BY_H_
