// Order-of-insertion string dictionary used to encode dimension columns.
//
// Every dimension value is mapped to a dense int32 code; the table layer,
// the explanation registry, and the cube all operate on codes and only
// translate back to strings when rendering output.

#ifndef TSEXPLAIN_TABLE_DICTIONARY_H_
#define TSEXPLAIN_TABLE_DICTIONARY_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace tsexplain {

/// Dense id for a dictionary-encoded dimension value.
using ValueId = int32_t;

/// Sentinel for "value not present".
inline constexpr ValueId kInvalidValueId = -1;

/// Bidirectional string <-> dense-id mapping. Ids are assigned in first-seen
/// order starting at 0.
class Dictionary {
 public:
  /// Returns the id for `value`, inserting it if unseen.
  ValueId GetOrInsert(const std::string& value);

  /// Returns the id for `value` or kInvalidValueId if absent.
  ValueId Lookup(const std::string& value) const;

  /// Translates an id back to its string. Requires a valid id.
  const std::string& ToString(ValueId id) const;

  /// Number of distinct values.
  size_t size() const { return id_to_str_.size(); }

  /// All values in id order (id i is values()[i]); the serialization
  /// accessor used by src/storage/table_snapshot.*.
  const std::vector<std::string>& values() const { return id_to_str_; }

  /// Bulk-load hook for the snapshot reader: replaces the dictionary with
  /// `values` (ids assigned in vector order). Fails (false + error)
  /// instead of aborting when `values` contains duplicates — a corrupted
  /// snapshot must be rejected structurally, never half-applied (the
  /// dictionary is left empty on failure).
  bool Load(std::vector<std::string> values, std::string* error);

 private:
  std::vector<std::string> id_to_str_;
  std::unordered_map<std::string, ValueId> str_to_id_;
};

}  // namespace tsexplain

#endif  // TSEXPLAIN_TABLE_DICTIONARY_H_
