// In-memory dictionary-encoded columnar relation.
//
// A Table stores the relation R of the paper: dimension columns are
// dictionary-encoded int32, measure columns are double, and the time column
// is a dense bucket index 0..num_time_buckets-1 with string labels kept in
// time order. Rows are appended through AppendRow and the table is then
// consumed read-only by the group-by engine and the explanation cube.

#ifndef TSEXPLAIN_TABLE_TABLE_H_
#define TSEXPLAIN_TABLE_TABLE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/table/column_ref.h"
#include "src/table/dictionary.h"
#include "src/table/schema.h"

namespace tsexplain {

/// Dense index of a time bucket (0-based, in time order).
using TimeId = int32_t;

/// Columnar relation. Not thread-safe for writes; safe for concurrent reads
/// after loading finishes.
class Table {
 public:
  explicit Table(Schema schema);

  const Schema& schema() const { return schema_; }
  size_t num_rows() const { return time_col_.size(); }
  size_t num_time_buckets() const { return time_labels_.size(); }

  /// Registers a time bucket label. Buckets must be registered in time
  /// order; returns the bucket's TimeId. Re-registering the most recent
  /// label returns the existing id (convenient for row-streams sorted by
  /// time).
  TimeId AddTimeBucket(const std::string& label);

  /// Appends one row. `dims` are raw string values aligned with
  /// schema().dimension_names(); `measures` aligned with measure_names().
  void AppendRow(TimeId time, const std::vector<std::string>& dims,
                 const std::vector<double>& measures);

  /// Appends one row with pre-encoded dimension values (fast path for the
  /// data generators). Values must have been produced by EncodeDimension.
  void AppendRowEncoded(TimeId time, const std::vector<ValueId>& dims,
                        const std::vector<double>& measures);

  /// Dictionary-encodes a value of dimension `attr` (inserting if new).
  ValueId EncodeDimension(AttrId attr, const std::string& value);

  /// Read accessors -------------------------------------------------------
  TimeId time(size_t row) const { return time_col_[row]; }
  ValueId dim(size_t row, AttrId attr) const {
    return dim_cols_[static_cast<size_t>(attr)][row];
  }
  double measure(size_t row, int measure_idx) const {
    return measure_cols_[static_cast<size_t>(measure_idx)][row];
  }
  const ColumnRef<TimeId>& time_column() const { return time_col_; }
  const ColumnRef<ValueId>& dim_column(AttrId attr) const {
    return dim_cols_[static_cast<size_t>(attr)];
  }
  const ColumnRef<double>& measure_column(int measure_idx) const {
    return measure_cols_[static_cast<size_t>(measure_idx)];
  }

  const Dictionary& dictionary(AttrId attr) const {
    return dicts_[static_cast<size_t>(attr)];
  }
  const std::vector<std::string>& time_labels() const { return time_labels_; }

  /// Renders `(attr, value)` as "attr=value".
  std::string PredicateString(AttrId attr, ValueId value) const;

  /// Bulk-load hooks for the snapshot reader (src/storage/table_snapshot.*).
  /// Both validate instead of aborting, so a corrupted snapshot is rejected
  /// with a structured error. Only meaningful on a freshly constructed
  /// (empty) table.

  /// Replaces dimension `attr`'s dictionary; fails on duplicates.
  bool LoadDictionary(AttrId attr, std::vector<std::string> values,
                      std::string* error);

  /// Installs the table's full columnar contents. Validates that every
  /// column has one entry per row, time ids index `time_labels` (which may
  /// not contain consecutive duplicates — AddTimeBucket never produces
  /// them), and dimension codes index their (already loaded) dictionaries.
  /// On failure the table is unchanged.
  bool LoadColumns(std::vector<std::string> time_labels,
                   std::vector<TimeId> time_col,
                   std::vector<std::vector<ValueId>> dim_cols,
                   std::vector<std::vector<double>> measure_cols,
                   std::string* error);

  /// Borrowed column spans for the zero-copy snapshot path: every pointer
  /// aliases bytes owned by someone else (an mmap'd file), with `num_rows`
  /// elements each. Pointer alignment is the CALLER's contract (the mmap
  /// reader checks before borrowing and falls back to the owned path).
  struct BorrowedColumns {
    const TimeId* time = nullptr;
    std::vector<const ValueId*> dim_cols;     // one per dimension
    std::vector<const double*> measure_cols;  // one per measure
    size_t num_rows = 0;
  };

  /// Zero-copy variant of LoadColumns: installs the spans as borrowed
  /// ColumnRefs (no per-row heap copies) and retains `keepalive` for the
  /// table's lifetime so the mapped bytes outlive every reader — copies of
  /// the table share the keepalive; streaming appends copy-on-write the
  /// touched columns (ColumnRef::push_back) and never write the mapping.
  /// Runs the same validation as LoadColumns; on failure the table is
  /// unchanged and nothing is retained.
  bool LoadColumnsBorrowed(std::vector<std::string> time_labels,
                           const BorrowedColumns& columns,
                           std::shared_ptr<const void> keepalive,
                           std::string* error);

 private:
  bool ValidateColumnContents(const std::vector<std::string>& time_labels,
                              const TimeId* time_col, size_t rows,
                              const std::vector<const ValueId*>& dim_cols,
                              std::string* error) const;

  Schema schema_;
  std::vector<Dictionary> dicts_;           // one per dimension
  std::vector<ColumnRef<ValueId>> dim_cols_;
  std::vector<ColumnRef<double>> measure_cols_;
  ColumnRef<TimeId> time_col_;
  std::vector<std::string> time_labels_;
  // Pins the storage behind borrowed columns (the mmap'd snapshot).
  // Shared across Table copies; null for fully-owned tables.
  std::shared_ptr<const void> keepalive_;
};

}  // namespace tsexplain

#endif  // TSEXPLAIN_TABLE_TABLE_H_
