// In-memory dictionary-encoded columnar relation.
//
// A Table stores the relation R of the paper: dimension columns are
// dictionary-encoded int32, measure columns are double, and the time column
// is a dense bucket index 0..num_time_buckets-1 with string labels kept in
// time order. Rows are appended through AppendRow and the table is then
// consumed read-only by the group-by engine and the explanation cube.

#ifndef TSEXPLAIN_TABLE_TABLE_H_
#define TSEXPLAIN_TABLE_TABLE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/table/dictionary.h"
#include "src/table/schema.h"

namespace tsexplain {

/// Dense index of a time bucket (0-based, in time order).
using TimeId = int32_t;

/// Columnar relation. Not thread-safe for writes; safe for concurrent reads
/// after loading finishes.
class Table {
 public:
  explicit Table(Schema schema);

  const Schema& schema() const { return schema_; }
  size_t num_rows() const { return time_col_.size(); }
  size_t num_time_buckets() const { return time_labels_.size(); }

  /// Registers a time bucket label. Buckets must be registered in time
  /// order; returns the bucket's TimeId. Re-registering the most recent
  /// label returns the existing id (convenient for row-streams sorted by
  /// time).
  TimeId AddTimeBucket(const std::string& label);

  /// Appends one row. `dims` are raw string values aligned with
  /// schema().dimension_names(); `measures` aligned with measure_names().
  void AppendRow(TimeId time, const std::vector<std::string>& dims,
                 const std::vector<double>& measures);

  /// Appends one row with pre-encoded dimension values (fast path for the
  /// data generators). Values must have been produced by EncodeDimension.
  void AppendRowEncoded(TimeId time, const std::vector<ValueId>& dims,
                        const std::vector<double>& measures);

  /// Dictionary-encodes a value of dimension `attr` (inserting if new).
  ValueId EncodeDimension(AttrId attr, const std::string& value);

  /// Read accessors -------------------------------------------------------
  TimeId time(size_t row) const { return time_col_[row]; }
  ValueId dim(size_t row, AttrId attr) const {
    return dim_cols_[static_cast<size_t>(attr)][row];
  }
  double measure(size_t row, int measure_idx) const {
    return measure_cols_[static_cast<size_t>(measure_idx)][row];
  }
  const std::vector<TimeId>& time_column() const { return time_col_; }
  const std::vector<ValueId>& dim_column(AttrId attr) const {
    return dim_cols_[static_cast<size_t>(attr)];
  }
  const std::vector<double>& measure_column(int measure_idx) const {
    return measure_cols_[static_cast<size_t>(measure_idx)];
  }

  const Dictionary& dictionary(AttrId attr) const {
    return dicts_[static_cast<size_t>(attr)];
  }
  const std::vector<std::string>& time_labels() const { return time_labels_; }

  /// Renders `(attr, value)` as "attr=value".
  std::string PredicateString(AttrId attr, ValueId value) const;

  /// Bulk-load hooks for the snapshot reader (src/storage/table_snapshot.*).
  /// Both validate instead of aborting, so a corrupted snapshot is rejected
  /// with a structured error. Only meaningful on a freshly constructed
  /// (empty) table.

  /// Replaces dimension `attr`'s dictionary; fails on duplicates.
  bool LoadDictionary(AttrId attr, std::vector<std::string> values,
                      std::string* error);

  /// Installs the table's full columnar contents. Validates that every
  /// column has one entry per row, time ids index `time_labels` (which may
  /// not contain consecutive duplicates — AddTimeBucket never produces
  /// them), and dimension codes index their (already loaded) dictionaries.
  /// On failure the table is unchanged.
  bool LoadColumns(std::vector<std::string> time_labels,
                   std::vector<TimeId> time_col,
                   std::vector<std::vector<ValueId>> dim_cols,
                   std::vector<std::vector<double>> measure_cols,
                   std::string* error);

 private:
  Schema schema_;
  std::vector<Dictionary> dicts_;           // one per dimension
  std::vector<std::vector<ValueId>> dim_cols_;
  std::vector<std::vector<double>> measure_cols_;
  std::vector<TimeId> time_col_;
  std::vector<std::string> time_labels_;
};

}  // namespace tsexplain

#endif  // TSEXPLAIN_TABLE_TABLE_H_
