#include "src/table/resample.h"

#include <algorithm>
#include <vector>

#include "src/common/check.h"

namespace tsexplain {

std::unique_ptr<Table> ResampleTable(
    const Table& table, int factor,
    const std::function<std::string(const std::string&, const std::string&)>&
        label_fn) {
  TSE_CHECK_GE(factor, 1);
  const size_t n = table.num_time_buckets();
  TSE_CHECK_GE(n, 1u);

  auto out = std::make_unique<Table>(table.schema());
  // Register coarse buckets.
  std::vector<TimeId> bucket_of(n);
  for (size_t start = 0; start < n; start += static_cast<size_t>(factor)) {
    const size_t end =
        std::min(n - 1, start + static_cast<size_t>(factor) - 1);
    const std::string& first = table.time_labels()[start];
    const std::string& last = table.time_labels()[end];
    std::string label;
    if (label_fn) {
      label = label_fn(first, last);
    } else {
      label = start == end ? first : first + ".." + last;
    }
    const TimeId id = out->AddTimeBucket(label);
    for (size_t t = start; t <= end; ++t) {
      bucket_of[t] = id;
    }
  }

  // Re-tag rows (dimension values copied verbatim, measures untouched).
  const size_t num_dims = table.schema().num_dimensions();
  const size_t num_measures = table.schema().num_measures();
  std::vector<std::string> dims(num_dims);
  std::vector<double> measures(num_measures);
  for (size_t row = 0; row < table.num_rows(); ++row) {
    for (size_t d = 0; d < num_dims; ++d) {
      dims[d] = table.dictionary(static_cast<AttrId>(d))
                    .ToString(table.dim(row, static_cast<AttrId>(d)));
    }
    for (size_t m = 0; m < num_measures; ++m) {
      measures[m] = table.measure(row, static_cast<int>(m));
    }
    out->AppendRow(bucket_of[static_cast<size_t>(table.time(row))], dims,
                   measures);
  }
  return out;
}

}  // namespace tsexplain
