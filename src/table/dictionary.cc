#include "src/table/dictionary.h"

#include "src/common/check.h"

namespace tsexplain {

ValueId Dictionary::GetOrInsert(const std::string& value) {
  auto it = str_to_id_.find(value);
  if (it != str_to_id_.end()) return it->second;
  const ValueId id = static_cast<ValueId>(id_to_str_.size());
  id_to_str_.push_back(value);
  str_to_id_.emplace(value, id);
  return id;
}

ValueId Dictionary::Lookup(const std::string& value) const {
  auto it = str_to_id_.find(value);
  return it == str_to_id_.end() ? kInvalidValueId : it->second;
}

bool Dictionary::Load(std::vector<std::string> values, std::string* error) {
  id_to_str_.clear();
  str_to_id_.clear();
  str_to_id_.reserve(values.size());
  for (size_t i = 0; i < values.size(); ++i) {
    if (!str_to_id_.emplace(values[i], static_cast<ValueId>(i)).second) {
      *error = "duplicate dictionary value: \"" + values[i] + "\"";
      id_to_str_.clear();
      str_to_id_.clear();
      return false;
    }
  }
  id_to_str_ = std::move(values);
  return true;
}

const std::string& Dictionary::ToString(ValueId id) const {
  TSE_CHECK_GE(id, 0);
  TSE_CHECK_LT(static_cast<size_t>(id), id_to_str_.size());
  return id_to_str_[static_cast<size_t>(id)];
}

}  // namespace tsexplain
