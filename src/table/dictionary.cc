#include "src/table/dictionary.h"

#include "src/common/check.h"

namespace tsexplain {

ValueId Dictionary::GetOrInsert(const std::string& value) {
  auto it = str_to_id_.find(value);
  if (it != str_to_id_.end()) return it->second;
  const ValueId id = static_cast<ValueId>(id_to_str_.size());
  id_to_str_.push_back(value);
  str_to_id_.emplace(value, id);
  return id;
}

ValueId Dictionary::Lookup(const std::string& value) const {
  auto it = str_to_id_.find(value);
  return it == str_to_id_.end() ? kInvalidValueId : it->second;
}

const std::string& Dictionary::ToString(ValueId id) const {
  TSE_CHECK_GE(id, 0);
  TSE_CHECK_LT(static_cast<size_t>(id), id_to_str_.size());
  return id_to_str_[static_cast<size_t>(id)];
}

}  // namespace tsexplain
