// ColumnRef<T>: one accessor surface over a column that is either OWNED
// (a std::vector<T> on the heap — the CSV/builder path) or BORROWED (a
// read-only span pointing into an mmap'd snapshot — the zero-copy path,
// src/storage/table_snapshot.h).
//
// The read side is branch-free: data_/size_ are always valid (they point
// at owned_.data() when owned), so operator[] on the cube-build hot loop
// costs exactly what the old std::vector access did. Mutation goes through
// push_back, which first materializes a borrowed span into owned storage
// (copy-on-write) — a streaming append to an mmap-backed table silently
// upgrades the column to heap ownership and never writes the mapping.
//
// Lifetime contract for borrowed columns: the bytes behind a Borrow()
// span must outlive every ColumnRef aliasing them — Table enforces this
// by pairing borrowed columns with a shared_ptr keepalive to the mapping
// (see Table::LoadColumnsBorrowed); copying a Table copies the keepalive,
// so copies alias the same mapping safely.

#ifndef TSEXPLAIN_TABLE_COLUMN_REF_H_
#define TSEXPLAIN_TABLE_COLUMN_REF_H_

#include <cstddef>
#include <utility>
#include <vector>

namespace tsexplain {

template <typename T>
class ColumnRef {
 public:
  using value_type = T;

  ColumnRef() = default;
  /// Takes ownership of `values` (the heap-backed path).
  explicit ColumnRef(std::vector<T> values)
      : owned_(std::move(values)),
        data_(owned_.data()),
        size_(owned_.size()) {}

  /// Aliases `[data, data + size)` without copying. The caller owns the
  /// bytes and must keep them alive (Table pairs this with a keepalive).
  static ColumnRef Borrow(const T* data, size_t size) {
    ColumnRef ref;
    ref.data_ = data;
    ref.size_ = size;
    ref.borrowed_ = true;
    return ref;
  }

  ColumnRef(const ColumnRef& other) { CopyFrom(other); }
  ColumnRef& operator=(const ColumnRef& other) {
    if (this != &other) CopyFrom(other);
    return *this;
  }
  ColumnRef(ColumnRef&& other) noexcept { MoveFrom(other); }
  ColumnRef& operator=(ColumnRef&& other) noexcept {
    if (this != &other) MoveFrom(other);
    return *this;
  }

  const T& operator[](size_t i) const { return data_[i]; }
  const T* data() const { return data_; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  const T* begin() const { return data_; }
  const T* end() const { return data_ + size_; }
  bool borrowed() const { return borrowed_; }

  void push_back(const T& value) {
    EnsureOwned();
    owned_.push_back(value);
    data_ = owned_.data();
    size_ = owned_.size();
  }

  friend bool operator==(const ColumnRef& a, const ColumnRef& b) {
    if (a.size_ != b.size_) return false;
    for (size_t i = 0; i < a.size_; ++i) {
      if (!(a.data_[i] == b.data_[i])) return false;
    }
    return true;
  }
  friend bool operator!=(const ColumnRef& a, const ColumnRef& b) {
    return !(a == b);
  }

 private:
  void EnsureOwned() {
    if (!borrowed_) return;
    owned_.assign(data_, data_ + size_);
    borrowed_ = false;
  }
  void CopyFrom(const ColumnRef& other) {
    borrowed_ = other.borrowed_;
    if (borrowed_) {
      owned_.clear();
      data_ = other.data_;
      size_ = other.size_;
    } else {
      owned_ = other.owned_;
      data_ = owned_.data();
      size_ = owned_.size();
    }
  }
  void MoveFrom(ColumnRef& other) {
    borrowed_ = other.borrowed_;
    if (borrowed_) {
      owned_.clear();
      data_ = other.data_;
      size_ = other.size_;
    } else {
      owned_ = std::move(other.owned_);
      data_ = owned_.data();
      size_ = owned_.size();
    }
    other.owned_.clear();
    other.data_ = other.owned_.data();
    other.size_ = 0;
    other.borrowed_ = false;
  }

  std::vector<T> owned_;
  // Always valid: points at owned_.data() when owned, at the borrowed
  // bytes otherwise — reads never branch on the ownership mode.
  const T* data_ = nullptr;
  size_t size_ = 0;
  bool borrowed_ = false;
};

}  // namespace tsexplain

#endif  // TSEXPLAIN_TABLE_COLUMN_REF_H_
