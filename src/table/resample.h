// Time-grain resampling: merge consecutive time buckets (e.g. daily ->
// weekly) before explaining. Coarser grains both denoise fuzzy series and
// shrink n, which the complexity analysis (section 5.2) shows is the other
// big cost driver besides epsilon. The measure rows are re-tagged, not
// re-aggregated, so every aggregate function keeps its exact semantics on
// the coarser buckets (SUM sums all rows of the week, AVG averages them,
// COUNT counts them).

#ifndef TSEXPLAIN_TABLE_RESAMPLE_H_
#define TSEXPLAIN_TABLE_RESAMPLE_H_

#include <functional>
#include <memory>
#include <string>

#include "src/table/table.h"

namespace tsexplain {

/// Merges every `factor` consecutive buckets into one. The new bucket's
/// label is `label_fn(first_old_label, last_old_label)`; by default
/// "first..last" (or just "first" when the group has one bucket).
/// Requires factor >= 1; a trailing partial group becomes a final bucket.
std::unique_ptr<Table> ResampleTable(
    const Table& table, int factor,
    const std::function<std::string(const std::string&, const std::string&)>&
        label_fn = nullptr);

}  // namespace tsexplain

#endif  // TSEXPLAIN_TABLE_RESAMPLE_H_
