#include "src/table/table.h"

#include "src/common/check.h"

namespace tsexplain {

Table::Table(Schema schema) : schema_(std::move(schema)) {
  dicts_.resize(schema_.num_dimensions());
  dim_cols_.resize(schema_.num_dimensions());
  measure_cols_.resize(schema_.num_measures());
}

TimeId Table::AddTimeBucket(const std::string& label) {
  if (!time_labels_.empty() && time_labels_.back() == label) {
    return static_cast<TimeId>(time_labels_.size() - 1);
  }
  time_labels_.push_back(label);
  return static_cast<TimeId>(time_labels_.size() - 1);
}

void Table::AppendRow(TimeId time, const std::vector<std::string>& dims,
                      const std::vector<double>& measures) {
  TSE_CHECK_EQ(dims.size(), schema_.num_dimensions());
  std::vector<ValueId> encoded(dims.size());
  for (size_t a = 0; a < dims.size(); ++a) {
    encoded[a] = dicts_[a].GetOrInsert(dims[a]);
  }
  AppendRowEncoded(time, encoded, measures);
}

void Table::AppendRowEncoded(TimeId time, const std::vector<ValueId>& dims,
                             const std::vector<double>& measures) {
  TSE_CHECK_GE(time, 0);
  TSE_CHECK_LT(static_cast<size_t>(time), time_labels_.size())
      << "register time buckets with AddTimeBucket before appending rows";
  TSE_CHECK_EQ(dims.size(), schema_.num_dimensions());
  TSE_CHECK_EQ(measures.size(), schema_.num_measures());
  for (size_t a = 0; a < dims.size(); ++a) {
    TSE_CHECK_GE(dims[a], 0);
    TSE_CHECK_LT(static_cast<size_t>(dims[a]), dicts_[a].size());
    dim_cols_[a].push_back(dims[a]);
  }
  for (size_t m = 0; m < measures.size(); ++m) {
    measure_cols_[m].push_back(measures[m]);
  }
  time_col_.push_back(time);
}

ValueId Table::EncodeDimension(AttrId attr, const std::string& value) {
  TSE_CHECK_GE(attr, 0);
  TSE_CHECK_LT(static_cast<size_t>(attr), dicts_.size());
  return dicts_[static_cast<size_t>(attr)].GetOrInsert(value);
}

std::string Table::PredicateString(AttrId attr, ValueId value) const {
  return schema_.dimension_names()[static_cast<size_t>(attr)] + "=" +
         dictionary(attr).ToString(value);
}

}  // namespace tsexplain
