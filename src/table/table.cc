#include "src/table/table.h"

#include "src/common/check.h"
#include "src/common/strings.h"

namespace tsexplain {

Table::Table(Schema schema) : schema_(std::move(schema)) {
  dicts_.resize(schema_.num_dimensions());
  dim_cols_.resize(schema_.num_dimensions());
  measure_cols_.resize(schema_.num_measures());
}

TimeId Table::AddTimeBucket(const std::string& label) {
  if (!time_labels_.empty() && time_labels_.back() == label) {
    return static_cast<TimeId>(time_labels_.size() - 1);
  }
  time_labels_.push_back(label);
  return static_cast<TimeId>(time_labels_.size() - 1);
}

void Table::AppendRow(TimeId time, const std::vector<std::string>& dims,
                      const std::vector<double>& measures) {
  TSE_CHECK_EQ(dims.size(), schema_.num_dimensions());
  std::vector<ValueId> encoded(dims.size());
  for (size_t a = 0; a < dims.size(); ++a) {
    encoded[a] = dicts_[a].GetOrInsert(dims[a]);
  }
  AppendRowEncoded(time, encoded, measures);
}

void Table::AppendRowEncoded(TimeId time, const std::vector<ValueId>& dims,
                             const std::vector<double>& measures) {
  TSE_CHECK_GE(time, 0);
  TSE_CHECK_LT(static_cast<size_t>(time), time_labels_.size())
      << "register time buckets with AddTimeBucket before appending rows";
  TSE_CHECK_EQ(dims.size(), schema_.num_dimensions());
  TSE_CHECK_EQ(measures.size(), schema_.num_measures());
  for (size_t a = 0; a < dims.size(); ++a) {
    TSE_CHECK_GE(dims[a], 0);
    TSE_CHECK_LT(static_cast<size_t>(dims[a]), dicts_[a].size());
    dim_cols_[a].push_back(dims[a]);
  }
  for (size_t m = 0; m < measures.size(); ++m) {
    measure_cols_[m].push_back(measures[m]);
  }
  time_col_.push_back(time);
}

ValueId Table::EncodeDimension(AttrId attr, const std::string& value) {
  TSE_CHECK_GE(attr, 0);
  TSE_CHECK_LT(static_cast<size_t>(attr), dicts_.size());
  return dicts_[static_cast<size_t>(attr)].GetOrInsert(value);
}

bool Table::LoadDictionary(AttrId attr, std::vector<std::string> values,
                           std::string* error) {
  if (attr < 0 || static_cast<size_t>(attr) >= dicts_.size()) {
    *error = StrFormat("dictionary index %d out of range (%zu dimensions)",
                       attr, dicts_.size());
    return false;
  }
  return dicts_[static_cast<size_t>(attr)].Load(std::move(values), error);
}

bool Table::ValidateColumnContents(
    const std::vector<std::string>& time_labels, const TimeId* time_col,
    size_t rows, const std::vector<const ValueId*>& dim_cols,
    std::string* error) const {
  for (size_t t = 1; t < time_labels.size(); ++t) {
    if (time_labels[t] == time_labels[t - 1]) {
      *error = "consecutive duplicate time labels: \"" + time_labels[t] + "\"";
      return false;
    }
  }
  for (size_t row = 0; row < rows; ++row) {
    const TimeId t = time_col[row];
    if (t < 0 || static_cast<size_t>(t) >= time_labels.size()) {
      *error = StrFormat("time id %d out of range (%zu buckets)", t,
                         time_labels.size());
      return false;
    }
  }
  for (size_t a = 0; a < dim_cols.size(); ++a) {
    const size_t dict_size = dicts_[a].size();
    for (size_t row = 0; row < rows; ++row) {
      const ValueId v = dim_cols[a][row];
      if (v < 0 || static_cast<size_t>(v) >= dict_size) {
        *error = StrFormat(
            "dimension column %zu: code %d out of range (%zu values)", a, v,
            dict_size);
        return false;
      }
    }
  }
  return true;
}

bool Table::LoadColumns(std::vector<std::string> time_labels,
                        std::vector<TimeId> time_col,
                        std::vector<std::vector<ValueId>> dim_cols,
                        std::vector<std::vector<double>> measure_cols,
                        std::string* error) {
  const size_t rows = time_col.size();
  if (dim_cols.size() != schema_.num_dimensions() ||
      measure_cols.size() != schema_.num_measures()) {
    *error = StrFormat(
        "column count mismatch: %zu dim + %zu measure columns for a schema "
        "with %zu + %zu",
        dim_cols.size(), measure_cols.size(), schema_.num_dimensions(),
        schema_.num_measures());
    return false;
  }
  for (size_t a = 0; a < dim_cols.size(); ++a) {
    if (dim_cols[a].size() != rows) {
      *error = StrFormat("dimension column %zu has %zu entries for %zu rows",
                         a, dim_cols[a].size(), rows);
      return false;
    }
  }
  for (size_t m = 0; m < measure_cols.size(); ++m) {
    if (measure_cols[m].size() != rows) {
      *error = StrFormat("measure column %zu has %zu entries for %zu rows", m,
                         measure_cols[m].size(), rows);
      return false;
    }
  }
  std::vector<const ValueId*> dim_views;
  dim_views.reserve(dim_cols.size());
  for (const auto& col : dim_cols) dim_views.push_back(col.data());
  if (!ValidateColumnContents(time_labels, time_col.data(), rows, dim_views,
                              error)) {
    return false;
  }
  time_labels_ = std::move(time_labels);
  time_col_ = ColumnRef<TimeId>(std::move(time_col));
  dim_cols_.clear();
  for (auto& col : dim_cols) {
    dim_cols_.emplace_back(std::move(col));
  }
  measure_cols_.clear();
  for (auto& col : measure_cols) {
    measure_cols_.emplace_back(std::move(col));
  }
  keepalive_.reset();
  return true;
}

bool Table::LoadColumnsBorrowed(std::vector<std::string> time_labels,
                                const BorrowedColumns& columns,
                                std::shared_ptr<const void> keepalive,
                                std::string* error) {
  if (columns.dim_cols.size() != schema_.num_dimensions() ||
      columns.measure_cols.size() != schema_.num_measures()) {
    *error = StrFormat(
        "column count mismatch: %zu dim + %zu measure columns for a schema "
        "with %zu + %zu",
        columns.dim_cols.size(), columns.measure_cols.size(),
        schema_.num_dimensions(), schema_.num_measures());
    return false;
  }
  const size_t rows = columns.num_rows;
  if (rows > 0 && columns.time == nullptr) {
    *error = "borrowed time column is null";
    return false;
  }
  for (const ValueId* col : columns.dim_cols) {
    if (rows > 0 && col == nullptr) {
      *error = "borrowed dimension column is null";
      return false;
    }
  }
  for (const double* col : columns.measure_cols) {
    if (rows > 0 && col == nullptr) {
      *error = "borrowed measure column is null";
      return false;
    }
  }
  if (!ValidateColumnContents(time_labels, columns.time, rows,
                              columns.dim_cols, error)) {
    return false;
  }
  time_labels_ = std::move(time_labels);
  time_col_ = ColumnRef<TimeId>::Borrow(columns.time, rows);
  dim_cols_.clear();
  for (const ValueId* col : columns.dim_cols) {
    dim_cols_.push_back(ColumnRef<ValueId>::Borrow(col, rows));
  }
  measure_cols_.clear();
  for (const double* col : columns.measure_cols) {
    measure_cols_.push_back(ColumnRef<double>::Borrow(col, rows));
  }
  keepalive_ = std::move(keepalive);
  return true;
}

std::string Table::PredicateString(AttrId attr, ValueId value) const {
  return schema_.dimension_names()[static_cast<size_t>(attr)] + "=" +
         dictionary(attr).ToString(value);
}

}  // namespace tsexplain
