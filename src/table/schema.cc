#include "src/table/schema.h"

#include <unordered_set>

#include "src/common/check.h"

namespace tsexplain {

Schema::Schema(std::string time_name, std::vector<std::string> dimension_names,
               std::vector<std::string> measure_names)
    : time_name_(std::move(time_name)),
      dimension_names_(std::move(dimension_names)),
      measure_names_(std::move(measure_names)) {
  std::unordered_set<std::string> seen;
  seen.insert(time_name_);
  for (const auto& name : dimension_names_) {
    TSE_CHECK(seen.insert(name).second) << "duplicate column: " << name;
  }
  for (const auto& name : measure_names_) {
    TSE_CHECK(seen.insert(name).second) << "duplicate column: " << name;
  }
}

AttrId Schema::DimensionIndex(const std::string& name) const {
  for (size_t i = 0; i < dimension_names_.size(); ++i) {
    if (dimension_names_[i] == name) return static_cast<AttrId>(i);
  }
  return kInvalidAttrId;
}

int Schema::MeasureIndex(const std::string& name) const {
  for (size_t i = 0; i < measure_names_.size(); ++i) {
    if (measure_names_[i] == name) return static_cast<int>(i);
  }
  return -1;
}

}  // namespace tsexplain
