#include "src/baselines/matrix_profile.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "src/common/check.h"

namespace tsexplain {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

struct Stats {
  std::vector<double> mean;
  std::vector<double> sigma;  // population std of each window
};

Stats WindowStats(const std::vector<double>& values, int w) {
  const size_t n = values.size();
  const size_t l = n - static_cast<size_t>(w) + 1;
  std::vector<double> prefix(n + 1, 0.0), prefix_sq(n + 1, 0.0);
  for (size_t i = 0; i < n; ++i) {
    prefix[i + 1] = prefix[i] + values[i];
    prefix_sq[i + 1] = prefix_sq[i] + values[i] * values[i];
  }
  Stats stats;
  stats.mean.resize(l);
  stats.sigma.resize(l);
  for (size_t i = 0; i < l; ++i) {
    const double sum = prefix[i + w] - prefix[i];
    const double sum_sq = prefix_sq[i + w] - prefix_sq[i];
    const double mean = sum / w;
    const double var = std::max(0.0, sum_sq / w - mean * mean);
    stats.mean[i] = mean;
    stats.sigma[i] = std::sqrt(var);
  }
  return stats;
}

// Distance from the dot product under z-normalization, with the
// constant-subsequence conventions.
double DistFromDot(double dot, double mean_i, double mean_j, double sigma_i,
                   double sigma_j, int w) {
  constexpr double kSigmaEps = 1e-12;
  const bool const_i = sigma_i < kSigmaEps;
  const bool const_j = sigma_j < kSigmaEps;
  if (const_i && const_j) return 0.0;
  if (const_i || const_j) return std::sqrt(static_cast<double>(w));
  double corr = (dot - w * mean_i * mean_j) / (w * sigma_i * sigma_j);
  corr = std::clamp(corr, -1.0, 1.0);
  return std::sqrt(std::max(0.0, 2.0 * w * (1.0 - corr)));
}

int EffectiveExclusion(int w, int exclusion_zone) {
  if (exclusion_zone >= 0) return exclusion_zone;
  return (w + 3) / 4;  // ceil(w / 4)
}

}  // namespace

MatrixProfile ComputeMatrixProfile(const std::vector<double>& values, int w,
                                   int exclusion_zone) {
  TSE_CHECK_GE(w, 2);
  TSE_CHECK_LE(static_cast<size_t>(w), values.size());
  const size_t n = values.size();
  const size_t l = n - static_cast<size_t>(w) + 1;
  const int zone = EffectiveExclusion(w, exclusion_zone);
  const Stats stats = WindowStats(values, w);

  MatrixProfile mp;
  mp.profile.assign(l, kInf);
  mp.index.assign(l, -1);

  auto update = [&mp](size_t i, size_t j, double d) {
    if (d < mp.profile[i]) {
      mp.profile[i] = d;
      mp.index[i] = static_cast<int32_t>(j);
    }
  };

  // Diagonal traversal: along diagonal k = j - i > 0 the dot product
  // updates in O(1) per step. Each unordered pair is touched once and both
  // directions are updated.
  for (size_t k = 1; k < l; ++k) {
    if (static_cast<int>(k) <= zone) continue;  // inside exclusion zone
    double dot = 0.0;
    for (int t = 0; t < w; ++t) {
      dot += values[t] * values[k + static_cast<size_t>(t)];
    }
    update(0, k, DistFromDot(dot, stats.mean[0], stats.mean[k],
                             stats.sigma[0], stats.sigma[k], w));
    update(k, 0, DistFromDot(dot, stats.mean[0], stats.mean[k],
                             stats.sigma[0], stats.sigma[k], w));
    for (size_t i = 1; i + k < l; ++i) {
      const size_t j = i + k;
      dot += values[i + w - 1] * values[j + w - 1] -
             values[i - 1] * values[j - 1];
      const double d = DistFromDot(dot, stats.mean[i], stats.mean[j],
                                   stats.sigma[i], stats.sigma[j], w);
      update(i, j, d);
      update(j, i, d);
    }
  }

  // Unreached entries (tiny series / huge zone) keep index -1; profile inf.
  return mp;
}

double ZNormalizedDistance(const std::vector<double>& values, size_t i,
                           size_t j, int w) {
  TSE_CHECK_LE(i + static_cast<size_t>(w), values.size());
  TSE_CHECK_LE(j + static_cast<size_t>(w), values.size());
  const Stats stats = WindowStats(values, w);
  double dot = 0.0;
  for (int t = 0; t < w; ++t) {
    dot += values[i + static_cast<size_t>(t)] *
           values[j + static_cast<size_t>(t)];
  }
  return DistFromDot(dot, stats.mean[i], stats.mean[j], stats.sigma[i],
                     stats.sigma[j], w);
}

MatrixProfile ComputeMatrixProfileBruteForce(const std::vector<double>& values,
                                             int w, int exclusion_zone) {
  TSE_CHECK_GE(w, 2);
  TSE_CHECK_LE(static_cast<size_t>(w), values.size());
  const size_t l = values.size() - static_cast<size_t>(w) + 1;
  const int zone = EffectiveExclusion(w, exclusion_zone);

  MatrixProfile mp;
  mp.profile.assign(l, kInf);
  mp.index.assign(l, -1);
  for (size_t i = 0; i < l; ++i) {
    for (size_t j = 0; j < l; ++j) {
      if (std::abs(static_cast<long long>(i) - static_cast<long long>(j)) <=
          zone) {
        continue;
      }
      const double d = ZNormalizedDistance(values, i, j, w);
      if (d < mp.profile[i]) {
        mp.profile[i] = d;
        mp.index[i] = static_cast<int32_t>(j);
      }
    }
  }
  return mp;
}

}  // namespace tsexplain
