#include "src/baselines/sliding_window.h"

#include <algorithm>
#include <limits>

#include "src/common/check.h"
#include "src/ts/linear_fit.h"

namespace tsexplain {

std::vector<int> SlidingWindowPass(const std::vector<double>& values,
                                   double max_error) {
  const int n = static_cast<int>(values.size());
  TSE_CHECK_GE(n, 2);
  const SseOracle oracle(values);

  std::vector<int> bounds{0};
  int anchor = 0;
  int end = 1;
  while (end < n - 1) {
    // Grow until the fit breaks.
    if (oracle.Sse(static_cast<size_t>(anchor),
                   static_cast<size_t>(end + 1)) <= max_error) {
      ++end;
    } else {
      bounds.push_back(end);
      anchor = end;
      end = anchor + 1;
    }
  }
  bounds.push_back(n - 1);
  return bounds;
}

std::vector<int> SlidingWindowSegment(const std::vector<double>& values,
                                      int k) {
  TSE_CHECK_GE(k, 1);
  const int n = static_cast<int>(values.size());
  TSE_CHECK_GE(n, 2);
  const int target = std::min(k, n - 1);
  const SseOracle oracle(values);

  // Bisection on the error threshold: more error -> fewer segments.
  double lo = 0.0;
  double hi = std::max(oracle.Sse(0, static_cast<size_t>(n - 1)), 1e-9);
  std::vector<int> best = SlidingWindowPass(values, hi);
  for (int iter = 0; iter < 60; ++iter) {
    const double mid = (lo + hi) / 2.0;
    std::vector<int> scheme = SlidingWindowPass(values, mid);
    const int segments = static_cast<int>(scheme.size()) - 1;
    if (segments == target) return scheme;
    // Keep the closest scheme seen so far for the fix-up path.
    if (std::abs(segments - target) <
        std::abs(static_cast<int>(best.size()) - 1 - target)) {
      best = scheme;
    }
    if (segments > target) {
      lo = mid;  // too many segments: allow more error
    } else {
      hi = mid;
    }
  }

  // Fix-up: merge the cheapest boundary or split the worst segment until
  // the count matches.
  while (static_cast<int>(best.size()) - 1 > target) {
    double best_cost = std::numeric_limits<double>::infinity();
    size_t best_idx = 1;
    for (size_t i = 1; i + 1 < best.size(); ++i) {
      const double cost =
          oracle.Sse(static_cast<size_t>(best[i - 1]),
                     static_cast<size_t>(best[i + 1])) -
          oracle.Sse(static_cast<size_t>(best[i - 1]),
                     static_cast<size_t>(best[i])) -
          oracle.Sse(static_cast<size_t>(best[i]),
                     static_cast<size_t>(best[i + 1]));
      if (cost < best_cost) {
        best_cost = cost;
        best_idx = i;
      }
    }
    best.erase(best.begin() + static_cast<std::ptrdiff_t>(best_idx));
  }
  while (static_cast<int>(best.size()) - 1 < target) {
    // Split the segment with the largest error at its best split point.
    double best_gain = -1.0;
    int best_split = -1;
    for (size_t i = 0; i + 1 < best.size(); ++i) {
      const int a = best[i];
      const int b = best[i + 1];
      if (b - a < 2) continue;
      const double whole =
          oracle.Sse(static_cast<size_t>(a), static_cast<size_t>(b));
      for (int s = a + 1; s < b; ++s) {
        const double gain =
            whole -
            oracle.Sse(static_cast<size_t>(a), static_cast<size_t>(s)) -
            oracle.Sse(static_cast<size_t>(s), static_cast<size_t>(b));
        if (gain > best_gain) {
          best_gain = gain;
          best_split = s;
        }
      }
    }
    if (best_split < 0) break;  // cannot split further
    best.push_back(best_split);
    std::sort(best.begin(), best.end());
  }
  return best;
}

}  // namespace tsexplain
