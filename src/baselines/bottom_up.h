// Bottom-Up piecewise-linear segmentation (Keogh et al. [21]).
//
// The survey's best-performing offline PLA algorithm: start from the finest
// segmentation (every pair of adjacent points), repeatedly merge the
// adjacent segment pair whose merge increases the approximation error the
// least, and stop when K segments remain. Error is the least-squares linear
// fit SSE (O(1) per query through SseOracle).
//
// Primary explanation-agnostic baseline of the paper's section 7.2.

#ifndef TSEXPLAIN_BASELINES_BOTTOM_UP_H_
#define TSEXPLAIN_BASELINES_BOTTOM_UP_H_

#include <vector>

namespace tsexplain {

/// Segments `values` into exactly `k` pieces (or fewer when the series is
/// too short). Returns cut positions (point indices) including 0 and n-1.
std::vector<int> BottomUpSegment(const std::vector<double>& values, int k);

}  // namespace tsexplain

#endif  // TSEXPLAIN_BASELINES_BOTTOM_UP_H_
