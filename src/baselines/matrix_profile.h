// Matrix profile via STOMP (Zhu et al.): for every length-w subsequence of
// a series, the z-normalized Euclidean distance to its nearest neighbor
// (excluding trivial matches) and that neighbor's index.
//
// This is the substrate for the FLUSS semantic-segmentation baseline
// (Gharghabi et al. [9]). The O(n^2) incremental-dot-product formulation is
// exact and more than fast enough at the series lengths TSExplain targets.

#ifndef TSEXPLAIN_BASELINES_MATRIX_PROFILE_H_
#define TSEXPLAIN_BASELINES_MATRIX_PROFILE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace tsexplain {

struct MatrixProfile {
  /// profile[i]: z-normalized Euclidean distance from subsequence i to its
  /// nearest non-trivial neighbor.
  std::vector<double> profile;
  /// index[i]: position of that nearest neighbor (-1 if none exists, e.g.
  /// when the exclusion zone covers everything).
  std::vector<int32_t> index;

  size_t size() const { return profile.size(); }
};

/// Computes the self-join matrix profile of `values` with subsequence
/// length `w`. `exclusion_zone` < 0 uses the customary ceil(w / 4).
/// Requires 2 <= w <= values.size().
/// Constant subsequences (zero variance) are handled like the reference
/// implementations: two constants are distance 0, constant-vs-non-constant
/// is sqrt(w).
MatrixProfile ComputeMatrixProfile(const std::vector<double>& values, int w,
                                   int exclusion_zone = -1);

/// Brute-force O(n^2 w) reference used by the tests.
MatrixProfile ComputeMatrixProfileBruteForce(const std::vector<double>& values,
                                             int w, int exclusion_zone = -1);

/// z-normalized Euclidean distance between two subsequences (test helper).
double ZNormalizedDistance(const std::vector<double>& values, size_t i,
                           size_t j, int w);

}  // namespace tsexplain

#endif  // TSEXPLAIN_BASELINES_MATRIX_PROFILE_H_
