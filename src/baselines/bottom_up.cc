#include "src/baselines/bottom_up.h"

#include <algorithm>
#include <limits>

#include "src/common/check.h"
#include "src/ts/linear_fit.h"

namespace tsexplain {

std::vector<int> BottomUpSegment(const std::vector<double>& values, int k) {
  TSE_CHECK_GE(k, 1);
  const int n = static_cast<int>(values.size());
  TSE_CHECK_GE(n, 2);

  // Boundaries of the current segmentation (always includes 0 and n-1);
  // start from the finest scheme: every point is a boundary.
  std::vector<int> bounds(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) bounds[static_cast<size_t>(i)] = i;

  const SseOracle oracle(values);
  const int target = std::min(k, n - 1);

  while (static_cast<int>(bounds.size()) - 1 > target) {
    // Find the interior boundary whose removal (merging its two neighbor
    // segments) adds the least error.
    double best_cost = std::numeric_limits<double>::infinity();
    size_t best_idx = 1;
    for (size_t i = 1; i + 1 < bounds.size(); ++i) {
      const size_t a = static_cast<size_t>(bounds[i - 1]);
      const size_t b = static_cast<size_t>(bounds[i]);
      const size_t c = static_cast<size_t>(bounds[i + 1]);
      const double cost =
          oracle.Sse(a, c) - oracle.Sse(a, b) - oracle.Sse(b, c);
      if (cost < best_cost) {
        best_cost = cost;
        best_idx = i;
      }
    }
    bounds.erase(bounds.begin() + static_cast<std::ptrdiff_t>(best_idx));
  }
  return bounds;
}

}  // namespace tsexplain
