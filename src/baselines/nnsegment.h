// NNSegment: the nearest-neighbor segmentation used inside LimeSegment
// (Sivill & Flach, AISTATS 2022), reimplemented as an explanation-agnostic
// baseline.
//
// Like FLUSS it reasons about nearest-neighbor arcs over sliding windows,
// but it scores each candidate changepoint by the raw fraction of
// cross-boundary nearest neighbors (no idealized-parabola correction) and
// uses a plain window-sized exclusion zone. See DESIGN.md for the
// substitution note (the authors' reference code is not available offline;
// this variant keeps the defining NN-consistency behaviour and the swept
// window-size parameter).

#ifndef TSEXPLAIN_BASELINES_NNSEGMENT_H_
#define TSEXPLAIN_BASELINES_NNSEGMENT_H_

#include <vector>

#include "src/baselines/matrix_profile.h"

namespace tsexplain {

/// Cross-boundary score per candidate position: score[i] = (number of
/// windows whose NN lies on the opposite side of i) / (number of windows),
/// edges pinned to 1. Lower = stronger changepoint evidence.
std::vector<double> NnCrossScore(const std::vector<double>& values, int w);

/// Full NNSegment segmentation: cut positions (point indices) including 0
/// and n-1, with up to (k - 1) interior boundaries.
std::vector<int> NnSegment(const std::vector<double>& values, int k, int w);

}  // namespace tsexplain

#endif  // TSEXPLAIN_BASELINES_NNSEGMENT_H_
