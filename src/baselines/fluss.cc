#include "src/baselines/fluss.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "src/common/check.h"

namespace tsexplain {

std::vector<double> ArcCurve(const MatrixProfile& mp) {
  const size_t l = mp.size();
  std::vector<double> mark(l + 1, 0.0);
  for (size_t j = 0; j < l; ++j) {
    const int32_t nn = mp.index[j];
    if (nn < 0) continue;
    const size_t lo = std::min<size_t>(j, static_cast<size_t>(nn));
    const size_t hi = std::max<size_t>(j, static_cast<size_t>(nn));
    // The arc covers positions strictly between its endpoints.
    if (hi > lo + 1) {
      mark[lo + 1] += 1.0;
      mark[hi] -= 1.0;
    }
  }
  std::vector<double> ac(l, 0.0);
  double running = 0.0;
  for (size_t i = 0; i < l; ++i) {
    running += mark[i];
    ac[i] = running;
  }
  return ac;
}

std::vector<double> CorrectedArcCurve(const MatrixProfile& mp, int w) {
  const std::vector<double> ac = ArcCurve(mp);
  const size_t l = ac.size();
  std::vector<double> cac(l, 1.0);
  if (l < 3) return cac;
  const double dl = static_cast<double>(l);
  const size_t edge = std::min<size_t>(static_cast<size_t>(5) *
                                           static_cast<size_t>(w),
                                       l);
  for (size_t i = 0; i < l; ++i) {
    // Idealized arc curve for random arcs: parabola 2 i (l - i) / l.
    const double ideal =
        2.0 * static_cast<double>(i) * (dl - static_cast<double>(i)) / dl;
    if (ideal <= 0.0) {
      cac[i] = 1.0;
    } else {
      cac[i] = std::min(ac[i] / ideal, 1.0);
    }
  }
  // Edges are unreliable (few arcs can exist): pin to 1.
  for (size_t i = 0; i < edge && i < l; ++i) cac[i] = 1.0;
  for (size_t i = l >= edge ? l - edge : 0; i < l; ++i) cac[i] = 1.0;
  return cac;
}

std::vector<int> ExtractRegimes(const std::vector<double>& cac, int count,
                                int zone) {
  TSE_CHECK_GE(count, 0);
  TSE_CHECK_GE(zone, 0);
  std::vector<double> curve = cac;  // mutated: accepted zones get pinned
  std::vector<int> boundaries;
  for (int r = 0; r < count; ++r) {
    size_t best = 0;
    double best_value = std::numeric_limits<double>::infinity();
    for (size_t i = 0; i < curve.size(); ++i) {
      if (curve[i] < best_value) {
        best_value = curve[i];
        best = i;
      }
    }
    if (best_value >= 1.0) break;  // nothing left below the ceiling
    boundaries.push_back(static_cast<int>(best));
    const size_t lo = best >= static_cast<size_t>(zone)
                          ? best - static_cast<size_t>(zone)
                          : 0;
    const size_t hi =
        std::min(curve.size(), best + static_cast<size_t>(zone) + 1);
    for (size_t i = lo; i < hi; ++i) curve[i] = 1.0;
  }
  std::sort(boundaries.begin(), boundaries.end());
  return boundaries;
}

std::vector<int> FlussSegment(const std::vector<double>& values, int k,
                              int w) {
  TSE_CHECK_GE(k, 1);
  const int n = static_cast<int>(values.size());
  TSE_CHECK_GE(n, 3);
  std::vector<int> cuts{0, n - 1};
  if (k == 1 || static_cast<size_t>(w) + 1 >= values.size()) return cuts;

  const MatrixProfile mp = ComputeMatrixProfile(values, w);
  const std::vector<double> cac = CorrectedArcCurve(mp, w);
  const std::vector<int> boundaries = ExtractRegimes(cac, k - 1, 5 * w);
  for (int b : boundaries) {
    if (b > 0 && b < n - 1) cuts.push_back(b);
  }
  std::sort(cuts.begin(), cuts.end());
  cuts.erase(std::unique(cuts.begin(), cuts.end()), cuts.end());
  return cuts;
}

}  // namespace tsexplain
