// Top-Down piecewise-linear segmentation (Douglas-Peucker / Ramer style,
// per Keogh's survey [21]): recursively split the segment whose best split
// reduces the total linear-fit error the most, until K segments exist.
//
// Extra explanation-agnostic baseline used by the ablation benches.

#ifndef TSEXPLAIN_BASELINES_TOP_DOWN_H_
#define TSEXPLAIN_BASELINES_TOP_DOWN_H_

#include <vector>

namespace tsexplain {

/// Segments `values` into exactly `k` pieces (or fewer when the series is
/// too short). Returns cut positions (point indices) including 0 and n-1.
std::vector<int> TopDownSegment(const std::vector<double>& values, int k);

}  // namespace tsexplain

#endif  // TSEXPLAIN_BASELINES_TOP_DOWN_H_
