#include "src/baselines/nnsegment.h"

#include <algorithm>
#include <limits>

#include "src/common/check.h"
#include "src/baselines/fluss.h"

namespace tsexplain {

std::vector<double> NnCrossScore(const std::vector<double>& values, int w) {
  TSE_CHECK_GE(w, 2);
  TSE_CHECK_GT(values.size(), static_cast<size_t>(w));
  const MatrixProfile mp = ComputeMatrixProfile(values, w);
  const size_t l = mp.size();

  // Count arcs crossing each boundary (same sweep as FLUSS's arc curve).
  std::vector<double> mark(l + 1, 0.0);
  size_t arcs = 0;
  for (size_t j = 0; j < l; ++j) {
    const int32_t nn = mp.index[j];
    if (nn < 0) continue;
    ++arcs;
    const size_t lo = std::min<size_t>(j, static_cast<size_t>(nn));
    const size_t hi = std::max<size_t>(j, static_cast<size_t>(nn));
    if (hi > lo + 1) {
      mark[lo + 1] += 1.0;
      mark[hi] -= 1.0;
    }
  }

  std::vector<double> score(l, 1.0);
  if (arcs == 0) return score;
  double running = 0.0;
  for (size_t i = 0; i < l; ++i) {
    running += mark[i];
    score[i] = std::min(1.0, running / static_cast<double>(arcs));
  }
  // Edge windows cannot be boundaries of a meaningful segment.
  const size_t edge = std::min<size_t>(static_cast<size_t>(w), l);
  for (size_t i = 0; i < edge; ++i) score[i] = 1.0;
  for (size_t i = l >= edge ? l - edge : 0; i < l; ++i) score[i] = 1.0;
  return score;
}

std::vector<int> NnSegment(const std::vector<double>& values, int k, int w) {
  TSE_CHECK_GE(k, 1);
  const int n = static_cast<int>(values.size());
  TSE_CHECK_GE(n, 3);
  std::vector<int> cuts{0, n - 1};
  if (k == 1 || static_cast<size_t>(w) + 1 >= values.size()) return cuts;

  const std::vector<double> score = NnCrossScore(values, w);
  // Reuse FLUSS's minima extraction with the plain window exclusion zone.
  const std::vector<int> boundaries = ExtractRegimes(score, k - 1, w);
  for (int b : boundaries) {
    if (b > 0 && b < n - 1) cuts.push_back(b);
  }
  std::sort(cuts.begin(), cuts.end());
  cuts.erase(std::unique(cuts.begin(), cuts.end()), cuts.end());
  return cuts;
}

}  // namespace tsexplain
