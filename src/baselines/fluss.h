// FLUSS: Fast Low-cost Unipotent Semantic Segmentation (Gharghabi et al.,
// ICDM 2017), reimplemented on top of our matrix profile.
//
// Pipeline: matrix profile index -> arc curve (for each position, the
// number of nearest-neighbor arcs passing over it) -> corrected arc curve
// CAC = min(AC / idealized-parabola, 1), with the first and last 5w
// positions pinned to 1 -> regimes extracted as the K-1 lowest CAC minima
// with a 5w exclusion zone around each accepted minimum.
//
// Explanation-agnostic baseline of the paper's section 7.2.

#ifndef TSEXPLAIN_BASELINES_FLUSS_H_
#define TSEXPLAIN_BASELINES_FLUSS_H_

#include <vector>

#include "src/baselines/matrix_profile.h"

namespace tsexplain {

/// Arc curve: ac[i] = number of NN arcs (j <-> index[j]) strictly crossing
/// position i. Length equals mp.size().
std::vector<double> ArcCurve(const MatrixProfile& mp);

/// Corrected arc curve in [0, 1] (1 = no evidence of a boundary). `w` is
/// the subsequence length used for the matrix profile.
std::vector<double> CorrectedArcCurve(const MatrixProfile& mp, int w);

/// Full FLUSS segmentation: returns cut positions (point indices) including
/// 0 and n-1, with (k - 1) interior boundaries extracted from the CAC.
/// Fewer boundaries may be returned when the exclusion zones exhaust the
/// series first.
std::vector<int> FlussSegment(const std::vector<double>& values, int k,
                              int w);

/// Extracts up to `count` regime boundaries from a CAC with exclusion zone
/// `zone` (FLUSS uses 5w). Exposed for tests.
std::vector<int> ExtractRegimes(const std::vector<double>& cac, int count,
                                int zone);

}  // namespace tsexplain

#endif  // TSEXPLAIN_BASELINES_FLUSS_H_
