// Sliding-Window piecewise-linear segmentation (Keogh's survey [21]):
// anchor the left end of a segment and grow it rightward until the linear
// fit error exceeds a threshold, then start a new segment. To produce
// exactly K segments (the interface all baselines share here), the error
// threshold is found by bisection, with a merge/split fix-up for plateaus.
//
// Extra explanation-agnostic baseline used by the ablation benches.

#ifndef TSEXPLAIN_BASELINES_SLIDING_WINDOW_H_
#define TSEXPLAIN_BASELINES_SLIDING_WINDOW_H_

#include <vector>

namespace tsexplain {

/// One left-to-right sliding-window pass with the given per-segment error
/// threshold. Returns cut positions including 0 and n-1.
std::vector<int> SlidingWindowPass(const std::vector<double>& values,
                                   double max_error);

/// Exactly-K wrapper: bisects the threshold, then merges/splits to land on
/// K segments (or fewer when the series is too short).
std::vector<int> SlidingWindowSegment(const std::vector<double>& values,
                                      int k);

}  // namespace tsexplain

#endif  // TSEXPLAIN_BASELINES_SLIDING_WINDOW_H_
