// Exact L2-optimal piecewise-linear segmentation via dynamic programming.
//
// Bottom-Up / Top-Down / Sliding-Window are greedy heuristics; this solves
// min over K-segmentations of sum of per-segment least-squares SSE exactly
// (O(n^2 K) with the SseOracle's O(1) segment costs). It is used by the
// ablation benches to show that TSExplain's advantage on mix-change data
// is NOT a heuristic artifact: even the optimal shape-based segmentation
// cannot see cuts that leave the aggregate's shape unchanged.

#ifndef TSEXPLAIN_BASELINES_OPTIMAL_PLA_H_
#define TSEXPLAIN_BASELINES_OPTIMAL_PLA_H_

#include <vector>

namespace tsexplain {

/// Exact minimum-SSE segmentation into `k` pieces. Returns cut positions
/// including 0 and n-1 (k clamped to n-1).
std::vector<int> OptimalPlaSegment(const std::vector<double>& values, int k);

/// Total least-squares SSE of a segmentation scheme (helper for tests and
/// ablations).
double PlaTotalSse(const std::vector<double>& values,
                   const std::vector<int>& cuts);

}  // namespace tsexplain

#endif  // TSEXPLAIN_BASELINES_OPTIMAL_PLA_H_
