#include "src/baselines/optimal_pla.h"

#include <algorithm>
#include <limits>

#include "src/common/check.h"
#include "src/ts/linear_fit.h"

namespace tsexplain {

std::vector<int> OptimalPlaSegment(const std::vector<double>& values,
                                   int k) {
  TSE_CHECK_GE(k, 1);
  const int n = static_cast<int>(values.size());
  TSE_CHECK_GE(n, 2);
  const int target = std::min(k, n - 1);
  const SseOracle oracle(values);
  constexpr double kInf = std::numeric_limits<double>::infinity();

  // d[j][q]: min total SSE covering points [0, j] with q segments.
  std::vector<std::vector<double>> d(
      static_cast<size_t>(n),
      std::vector<double>(static_cast<size_t>(target) + 1, kInf));
  std::vector<std::vector<int>> parent(
      static_cast<size_t>(n),
      std::vector<int>(static_cast<size_t>(target) + 1, -1));
  for (int j = 1; j < n; ++j) {
    d[static_cast<size_t>(j)][1] = oracle.Sse(0, static_cast<size_t>(j));
    parent[static_cast<size_t>(j)][1] = 0;
  }
  for (int q = 2; q <= target; ++q) {
    for (int j = q; j < n; ++j) {
      double best = kInf;
      int best_parent = -1;
      for (int jp = q - 1; jp < j; ++jp) {
        const double prev = d[static_cast<size_t>(jp)][static_cast<size_t>(q) - 1];
        if (prev == kInf) continue;
        const double candidate =
            prev + oracle.Sse(static_cast<size_t>(jp),
                              static_cast<size_t>(j));
        if (candidate < best) {
          best = candidate;
          best_parent = jp;
        }
      }
      d[static_cast<size_t>(j)][static_cast<size_t>(q)] = best;
      parent[static_cast<size_t>(j)][static_cast<size_t>(q)] = best_parent;
    }
  }

  std::vector<int> cuts;
  int j = n - 1;
  for (int q = target; q >= 1; --q) {
    cuts.push_back(j);
    j = parent[static_cast<size_t>(j)][static_cast<size_t>(q)];
    TSE_CHECK_GE(j, 0);
  }
  cuts.push_back(0);
  std::reverse(cuts.begin(), cuts.end());
  return cuts;
}

double PlaTotalSse(const std::vector<double>& values,
                   const std::vector<int>& cuts) {
  TSE_CHECK_GE(cuts.size(), 2u);
  const SseOracle oracle(values);
  double total = 0.0;
  for (size_t i = 0; i + 1 < cuts.size(); ++i) {
    total += oracle.Sse(static_cast<size_t>(cuts[i]),
                        static_cast<size_t>(cuts[i + 1]));
  }
  return total;
}

}  // namespace tsexplain
