#include "src/baselines/top_down.h"

#include <algorithm>
#include <limits>
#include <queue>

#include "src/common/check.h"
#include "src/ts/linear_fit.h"

namespace tsexplain {
namespace {

struct SplitCandidate {
  double gain;  // error reduction achieved by the split
  int begin;
  int end;
  int split;

  bool operator<(const SplitCandidate& other) const {
    return gain < other.gain;  // max-heap by gain
  }
};

// Best interior split of [begin, end]; split < 0 when no split possible.
SplitCandidate BestSplit(const SseOracle& oracle, int begin, int end) {
  SplitCandidate c{0.0, begin, end, -1};
  const double whole = oracle.Sse(static_cast<size_t>(begin),
                                  static_cast<size_t>(end));
  double best = std::numeric_limits<double>::infinity();
  for (int s = begin + 1; s < end; ++s) {
    const double split_err =
        oracle.Sse(static_cast<size_t>(begin), static_cast<size_t>(s)) +
        oracle.Sse(static_cast<size_t>(s), static_cast<size_t>(end));
    if (split_err < best) {
      best = split_err;
      c.split = s;
    }
  }
  if (c.split >= 0) c.gain = whole - best;
  return c;
}

}  // namespace

std::vector<int> TopDownSegment(const std::vector<double>& values, int k) {
  TSE_CHECK_GE(k, 1);
  const int n = static_cast<int>(values.size());
  TSE_CHECK_GE(n, 2);
  const int target = std::min(k, n - 1);

  const SseOracle oracle(values);
  std::priority_queue<SplitCandidate> heap;
  heap.push(BestSplit(oracle, 0, n - 1));

  std::vector<int> bounds{0, n - 1};
  int segments = 1;
  while (segments < target && !heap.empty()) {
    const SplitCandidate top = heap.top();
    heap.pop();
    if (top.split < 0) continue;  // unsplittable piece
    bounds.push_back(top.split);
    ++segments;
    heap.push(BestSplit(oracle, top.begin, top.split));
    heap.push(BestSplit(oracle, top.split, top.end));
  }
  std::sort(bounds.begin(), bounds.end());
  return bounds;
}

}  // namespace tsexplain
