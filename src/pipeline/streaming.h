// Real-time / streaming extension (paper section 8).
//
// "TSExplain first gives users the segmentation results of existing time
// series and meanwhile caches all unit segments' top explanations. When new
// data arrives, it incrementally computes the top explanations for the new
// time series, runs the segmentation algorithm based on the existing time
// series' cutting points and newly arrived data points, and updates the
// segmentation results."
//
// StreamingTSExplain implements exactly that: the first Explain() is a full
// run; every AppendBucket() extends the cube with new partials (the
// explainer's caches for old segments remain valid because gamma depends
// only on the endpoint partials, which never change); subsequent Explain()
// calls restrict the cut candidates to { previous cuts } + { points
// appended since the last run }, making each refresh cheap instead of
// O(n^3) wide. If an appended row introduces a never-seen cell, the
// registry/cube are rebuilt (rare; documented in DESIGN.md).

#ifndef TSEXPLAIN_PIPELINE_STREAMING_H_
#define TSEXPLAIN_PIPELINE_STREAMING_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/pipeline/tsexplain.h"

namespace tsexplain {

/// One incoming record: explain-by dimension values (aligned with the
/// table's dimension columns) + measures (aligned with measure columns).
struct StreamRow {
  std::vector<std::string> dims;
  std::vector<double> measures;
};

/// Incremental TSExplain over an internally owned, growing Table.
///
/// Thread safety: NONE here by design — every method mutates the owned
/// table / cube / caches, and the owner must serialize all calls
/// externally. In the service, that owner is ExplainService::Session,
/// whose `engine` field is TSE_GUARDED_BY(Session::mu); standalone users
/// (CLI, benches, tests) drive one instance from one thread. The
/// append-observer callback runs synchronously inside AppendBucket and
/// therefore inherits the caller's serialization.
class StreamingTSExplain {
 public:
  /// Copies `initial` into the internal table and builds the cube.
  /// Sketch (O2) applies to the first full run only; incremental runs
  /// already restrict the candidates.
  StreamingTSExplain(const Table& initial, TSExplainConfig config);

  /// Appends one new time bucket with its rows.
  void AppendBucket(const std::string& label,
                    const std::vector<StreamRow>& rows);

  /// Full run on the first call; incremental runs afterwards.
  /// `threads_override` > 0 replaces the config's thread count for this
  /// run (the service's adaptive grants use it); results are
  /// bit-identical at any thread count.
  TSExplainResult Explain(int threads_override = 0);

  /// Number of time buckets currently covered.
  int n() const { return static_cast<int>(table_->num_time_buckets()); }

  /// The live cube (overall/slice series for report serialization; see
  /// report_json.h's cube-level RenderJsonReport overload).
  const ExplanationCube& cube() const { return *cube_; }

  /// The internally owned, growing table (schema lookups for appends).
  const Table& table() const { return *table_; }

  /// Whether the last AppendBucket forced a full rebuild (new cells).
  bool last_append_rebuilt() const { return last_append_rebuilt_; }

  /// Append observer: invoked at the END of every AppendBucket (after the
  /// table and cube absorbed the bucket) with the bucket's label and rows.
  /// This is the persistence layer's append-log hook — the service
  /// subscribes a storage::SessionLogWriter here (src/storage/
  /// session_log.h), keeping the pipeline free of storage dependencies.
  /// Replay during recovery constructs the engine BEFORE subscribing, so
  /// replayed appends are not re-logged. nullptr clears the hook.
  using AppendObserver = std::function<void(
      const std::string& label, const std::vector<StreamRow>& rows)>;
  void set_append_observer(AppendObserver observer) {
    append_observer_ = std::move(observer);
  }

 private:
  void BuildEngine();
  std::vector<bool> ComputeActiveMask() const;
  TSExplainResult RunWithCandidates(const std::vector<int>& positions,
                                    int threads);

  std::unique_ptr<Table> table_;
  TSExplainConfig config_;
  std::vector<AttrId> explain_by_;
  int measure_idx_ = -1;
  ExplanationRegistry registry_;
  std::unique_ptr<ExplanationCube> cube_;
  /// Combined canonical + support-filter mask (empty = all selectable).
  std::vector<bool> active_mask_;
  std::unique_ptr<SegmentExplainer> explainer_;

  std::vector<int> last_cuts_;
  int last_n_ = 0;
  bool first_run_done_ = false;
  bool last_append_rebuilt_ = false;
  AppendObserver append_observer_;
};

}  // namespace tsexplain

#endif  // TSEXPLAIN_PIPELINE_STREAMING_H_
