#include "src/pipeline/report.h"

#include <sstream>

#include "src/common/strings.h"

namespace tsexplain {

std::string RenderTextReport(const TSExplain& engine,
                             const TSExplainResult& result) {
  std::ostringstream out;
  out << "TSExplain result: K = " << result.chosen_k
      << StrFormat(" segments, total variance %.4f",
                   result.segmentation.total_variance)
      << StrFormat(", %zu candidate explanations (%zu active)\n",
                   result.epsilon, result.filtered_epsilon);
  for (const SegmentExplanation& seg : result.segments) {
    out << StrFormat("\n[%s .. %s]  var=%.3f%s\n", seg.begin_label.c_str(),
                     seg.end_label.c_str(), seg.variance,
                     seg.high_variance_hint
                         ? "  ** inspect: mixed explanations **"
                         : "");
    if (seg.top.empty()) {
      out << "    (no contributing explanation)\n";
    }
    for (size_t r = 0; r < seg.top.size(); ++r) {
      out << StrFormat("    top-%zu  %-40s gamma=%.4g\n", r + 1,
                       seg.top[r].ToString().c_str(), seg.top[r].gamma);
    }
  }
  out << StrFormat(
      "\ntiming: precompute %.1f ms, cascading %.1f ms, segmentation "
      "%.1f ms\n",
      result.timing.precompute_ms, result.timing.cascading_ms,
      result.timing.segmentation_ms);
  (void)engine;
  return out.str();
}

std::string RenderVegaLiteSpec(const TSExplain& engine,
                               const TSExplainResult& result) {
  JsonWriter json(/*pretty=*/true);
  const TimeSeries overall = engine.cube().OverallSeries();

  json.BeginObject();
  json.Key("$schema");
  json.String("https://vega.github.io/schema/vega-lite/v5.json");
  json.Key("description");
  json.String("TSExplain evolving explanations");
  json.Key("width");
  json.Int(800);
  json.Key("height");
  json.Int(300);

  // Inline data: one row per (t, series) sample.
  json.Key("data");
  json.BeginObject();
  json.Key("values");
  json.BeginArray();
  auto emit_point = [&json, &overall](size_t t, const std::string& series,
                                      double value) {
    json.BeginObject();
    json.Key("t");
    json.Int(static_cast<long long>(t));
    json.Key("label");
    json.String(overall.LabelAt(t));
    json.Key("series");
    json.String(series);
    json.Key("value");
    json.Number(value);
    json.EndObject();
  };
  for (size_t t = 0; t < overall.size(); ++t) {
    emit_point(t, "overall", overall.values[t]);
  }
  for (const SegmentExplanation& seg : result.segments) {
    for (const ExplanationItem& item : seg.top) {
      const TimeSeries slice = engine.cube().SliceSeries(item.id);
      for (int t = seg.begin; t <= seg.end; ++t) {
        emit_point(static_cast<size_t>(t),
                   item.description + " (" + seg.begin_label + ")",
                   slice.values[static_cast<size_t>(t)]);
      }
    }
  }
  json.EndArray();
  json.EndObject();

  // Layer 1: lines; layer 2: cut rules.
  json.Key("layer");
  json.BeginArray();
  json.BeginObject();
  json.Key("mark");
  json.String("line");
  json.Key("encoding");
  json.BeginObject();
  json.Key("x");
  json.BeginObject();
  json.Key("field");
  json.String("t");
  json.Key("type");
  json.String("quantitative");
  json.EndObject();
  json.Key("y");
  json.BeginObject();
  json.Key("field");
  json.String("value");
  json.Key("type");
  json.String("quantitative");
  json.EndObject();
  json.Key("color");
  json.BeginObject();
  json.Key("field");
  json.String("series");
  json.Key("type");
  json.String("nominal");
  json.EndObject();
  json.EndObject();
  json.EndObject();

  json.BeginObject();
  json.Key("mark");
  json.BeginObject();
  json.Key("type");
  json.String("rule");
  json.Key("strokeDash");
  json.BeginArray();
  json.Int(4);
  json.Int(4);
  json.EndArray();
  json.EndObject();
  json.Key("data");
  json.BeginObject();
  json.Key("values");
  json.BeginArray();
  for (int cut : result.segmentation.cuts) {
    json.BeginObject();
    json.Key("t");
    json.Int(cut);
    json.EndObject();
  }
  json.EndArray();
  json.EndObject();
  json.Key("encoding");
  json.BeginObject();
  json.Key("x");
  json.BeginObject();
  json.Key("field");
  json.String("t");
  json.Key("type");
  json.String("quantitative");
  json.EndObject();
  json.EndObject();
  json.EndObject();
  json.EndArray();

  json.EndObject();
  return json.str();
}

}  // namespace tsexplain
