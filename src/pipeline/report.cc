#include "src/pipeline/report.h"

#include <cmath>
#include <sstream>

#include "src/common/strings.h"

namespace tsexplain {
namespace {

// Minimal JSON emitter: tracks depth for pretty printing. The schema is
// small and fixed, so a full JSON library is unnecessary.
class JsonWriter {
 public:
  explicit JsonWriter(bool pretty) : pretty_(pretty) {}

  void BeginObject() { Open('{'); }
  void EndObject() { Close('}'); }
  void BeginArray() { Open('['); }
  void EndArray() { Close(']'); }

  void Key(const std::string& name) {
    Separator();
    out_ << '"' << JsonEscape(name) << "\":";
    if (pretty_) out_ << ' ';
    pending_value_ = true;
  }

  void String(const std::string& value) {
    Separator();
    out_ << '"' << JsonEscape(value) << '"';
  }
  void Number(double value) {
    Separator();
    if (std::isfinite(value)) {
      out_ << StrFormat("%.6g", value);
    } else {
      out_ << "null";  // JSON has no infinity
    }
  }
  void Int(long long value) {
    Separator();
    out_ << value;
  }
  void Bool(bool value) {
    Separator();
    out_ << (value ? "true" : "false");
  }

  std::string str() const { return out_.str(); }

 private:
  void Open(char c) {
    Separator();
    out_ << c;
    needs_comma_.push_back(false);
  }
  void Close(char c) {
    needs_comma_.pop_back();
    Newline();
    out_ << c;
    if (!needs_comma_.empty()) needs_comma_.back() = true;
  }
  void Separator() {
    if (pending_value_) {
      pending_value_ = false;  // value follows a key: no comma/newline
      return;
    }
    if (!needs_comma_.empty()) {
      if (needs_comma_.back()) out_ << ',';
      needs_comma_.back() = true;
      Newline();
    }
  }
  void Newline() {
    if (!pretty_) return;
    out_ << '\n';
    for (size_t i = 0; i < needs_comma_.size(); ++i) out_ << "  ";
  }

  std::ostringstream out_;
  std::vector<bool> needs_comma_;
  bool pretty_;
  bool pending_value_ = false;
};

void EmitSeries(JsonWriter& json, const std::vector<double>& values) {
  json.BeginArray();
  for (double v : values) json.Number(v);
  json.EndArray();
}

}  // namespace

std::string JsonEscape(const std::string& raw) {
  std::string out;
  out.reserve(raw.size());
  for (char c : raw) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += StrFormat("\\u%04x", c);
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

std::string RenderTextReport(const TSExplain& engine,
                             const TSExplainResult& result) {
  std::ostringstream out;
  out << "TSExplain result: K = " << result.chosen_k
      << StrFormat(" segments, total variance %.4f",
                   result.segmentation.total_variance)
      << StrFormat(", %zu candidate explanations (%zu active)\n",
                   result.epsilon, result.filtered_epsilon);
  for (const SegmentExplanation& seg : result.segments) {
    out << StrFormat("\n[%s .. %s]  var=%.3f%s\n", seg.begin_label.c_str(),
                     seg.end_label.c_str(), seg.variance,
                     seg.high_variance_hint
                         ? "  ** inspect: mixed explanations **"
                         : "");
    if (seg.top.empty()) {
      out << "    (no contributing explanation)\n";
    }
    for (size_t r = 0; r < seg.top.size(); ++r) {
      out << StrFormat("    top-%zu  %-40s gamma=%.4g\n", r + 1,
                       seg.top[r].ToString().c_str(), seg.top[r].gamma);
    }
  }
  out << StrFormat(
      "\ntiming: precompute %.1f ms, cascading %.1f ms, segmentation "
      "%.1f ms\n",
      result.timing.precompute_ms, result.timing.cascading_ms,
      result.timing.segmentation_ms);
  (void)engine;
  return out.str();
}

std::string RenderJsonReport(const TSExplain& engine,
                             const TSExplainResult& result,
                             const ReportOptions& options) {
  JsonWriter json(options.pretty);
  json.BeginObject();
  json.Key("k");
  json.Int(result.chosen_k);
  json.Key("total_variance");
  json.Number(result.segmentation.total_variance);
  json.Key("epsilon");
  json.Int(static_cast<long long>(result.epsilon));
  json.Key("filtered_epsilon");
  json.Int(static_cast<long long>(result.filtered_epsilon));

  json.Key("cuts");
  json.BeginArray();
  for (int cut : result.segmentation.cuts) json.Int(cut);
  json.EndArray();

  const TimeSeries overall = engine.cube().OverallSeries();
  json.Key("time_labels");
  json.BeginArray();
  for (size_t t = 0; t < overall.size(); ++t) {
    json.String(overall.LabelAt(t));
  }
  json.EndArray();
  json.Key("overall");
  EmitSeries(json, overall.values);

  json.Key("segments");
  json.BeginArray();
  for (const SegmentExplanation& seg : result.segments) {
    json.BeginObject();
    json.Key("begin");
    json.Int(seg.begin);
    json.Key("end");
    json.Int(seg.end);
    json.Key("begin_label");
    json.String(seg.begin_label);
    json.Key("end_label");
    json.String(seg.end_label);
    json.Key("variance");
    json.Number(seg.variance);
    json.Key("high_variance_hint");
    json.Bool(seg.high_variance_hint);
    json.Key("explanations");
    json.BeginArray();
    for (const ExplanationItem& item : seg.top) {
      json.BeginObject();
      json.Key("description");
      json.String(item.description);
      json.Key("gamma");
      json.Number(item.gamma);
      json.Key("effect");
      json.String(item.tau > 0 ? "+" : (item.tau < 0 ? "-" : "="));
      if (options.include_trendlines) {
        const TimeSeries slice = engine.cube().SliceSeries(item.id);
        json.Key("trendline");
        json.BeginArray();
        for (int t = seg.begin; t <= seg.end; ++t) {
          json.Number(slice.values[static_cast<size_t>(t)]);
        }
        json.EndArray();
      }
      json.EndObject();
    }
    json.EndArray();
    json.EndObject();
  }
  json.EndArray();

  if (options.include_k_curve) {
    json.Key("k_variance_curve");
    json.BeginArray();
    for (double v : result.k_variance_curve) json.Number(v);
    json.EndArray();
  }

  json.Key("timing_ms");
  json.BeginObject();
  json.Key("precompute");
  json.Number(result.timing.precompute_ms);
  json.Key("cascading");
  json.Number(result.timing.cascading_ms);
  json.Key("segmentation");
  json.Number(result.timing.segmentation_ms);
  json.EndObject();

  json.EndObject();
  return json.str();
}

std::string RenderVegaLiteSpec(const TSExplain& engine,
                               const TSExplainResult& result) {
  JsonWriter json(/*pretty=*/true);
  const TimeSeries overall = engine.cube().OverallSeries();

  json.BeginObject();
  json.Key("$schema");
  json.String("https://vega.github.io/schema/vega-lite/v5.json");
  json.Key("description");
  json.String("TSExplain evolving explanations");
  json.Key("width");
  json.Int(800);
  json.Key("height");
  json.Int(300);

  // Inline data: one row per (t, series) sample.
  json.Key("data");
  json.BeginObject();
  json.Key("values");
  json.BeginArray();
  auto emit_point = [&json, &overall](size_t t, const std::string& series,
                                      double value) {
    json.BeginObject();
    json.Key("t");
    json.Int(static_cast<long long>(t));
    json.Key("label");
    json.String(overall.LabelAt(t));
    json.Key("series");
    json.String(series);
    json.Key("value");
    json.Number(value);
    json.EndObject();
  };
  for (size_t t = 0; t < overall.size(); ++t) {
    emit_point(t, "overall", overall.values[t]);
  }
  for (const SegmentExplanation& seg : result.segments) {
    for (const ExplanationItem& item : seg.top) {
      const TimeSeries slice = engine.cube().SliceSeries(item.id);
      for (int t = seg.begin; t <= seg.end; ++t) {
        emit_point(static_cast<size_t>(t),
                   item.description + " (" + seg.begin_label + ")",
                   slice.values[static_cast<size_t>(t)]);
      }
    }
  }
  json.EndArray();
  json.EndObject();

  // Layer 1: lines; layer 2: cut rules.
  json.Key("layer");
  json.BeginArray();
  json.BeginObject();
  json.Key("mark");
  json.String("line");
  json.Key("encoding");
  json.BeginObject();
  json.Key("x");
  json.BeginObject();
  json.Key("field");
  json.String("t");
  json.Key("type");
  json.String("quantitative");
  json.EndObject();
  json.Key("y");
  json.BeginObject();
  json.Key("field");
  json.String("value");
  json.Key("type");
  json.String("quantitative");
  json.EndObject();
  json.Key("color");
  json.BeginObject();
  json.Key("field");
  json.String("series");
  json.Key("type");
  json.String("nominal");
  json.EndObject();
  json.EndObject();
  json.EndObject();

  json.BeginObject();
  json.Key("mark");
  json.BeginObject();
  json.Key("type");
  json.String("rule");
  json.Key("strokeDash");
  json.BeginArray();
  json.Int(4);
  json.Int(4);
  json.EndArray();
  json.EndObject();
  json.Key("data");
  json.BeginObject();
  json.Key("values");
  json.BeginArray();
  for (int cut : result.segmentation.cuts) {
    json.BeginObject();
    json.Key("t");
    json.Int(cut);
    json.EndObject();
  }
  json.EndArray();
  json.EndObject();
  json.Key("encoding");
  json.BeginObject();
  json.Key("x");
  json.BeginObject();
  json.Key("field");
  json.String("t");
  json.Key("type");
  json.String("quantitative");
  json.EndObject();
  json.EndObject();
  json.EndObject();
  json.EndArray();

  json.EndObject();
  return json.str();
}

}  // namespace tsexplain
