#include "src/pipeline/recommend.h"

#include <algorithm>
#include <cmath>

#include "src/common/check.h"

namespace tsexplain {

std::vector<ExplainByRecommendation> RecommendExplainBy(
    const Table& table, AggregateFunction aggregate,
    const std::string& measure, int m,
    const std::vector<std::string>& candidates) {
  TSE_CHECK_GE(m, 1);
  const int measure_idx =
      measure.empty() ? -1 : table.schema().MeasureIndex(measure);
  if (!measure.empty()) {
    TSE_CHECK_GE(measure_idx, 0) << "unknown measure: " << measure;
  }

  std::vector<std::string> dims = candidates;
  if (dims.empty()) dims = table.schema().dimension_names();

  std::vector<ExplainByRecommendation> out;
  for (const std::string& name : dims) {
    const AttrId attr = table.schema().DimensionIndex(name);
    TSE_CHECK_NE(attr, kInvalidAttrId) << "unknown dimension: " << name;

    const std::vector<TimeSeries> slices =
        GroupByTimeAndDimension(table, aggregate, measure_idx, attr);
    ExplainByRecommendation rec;
    rec.dimension = name;
    rec.cardinality = slices.size();
    if (slices.empty() || slices[0].size() < 2) {
      out.push_back(rec);
      continue;
    }

    const size_t n = slices[0].size();
    std::vector<double> gammas(slices.size());
    double total_score = 0.0;
    int counted = 0;
    for (size_t x = 0; x + 1 < n; ++x) {
      // For SUM-like decomposable aggregates, gamma of value v on the unit
      // object [x, x+1] is |slice_v[x+1] - slice_v[x]| (absolute-change).
      double total = 0.0;
      for (size_t v = 0; v < slices.size(); ++v) {
        gammas[v] = std::abs(slices[v].values[x + 1] - slices[v].values[x]);
        total += gammas[v];
      }
      if (total <= 1e-12) continue;  // nothing changed at this step
      // Sum of the m largest gammas.
      const size_t take = std::min(static_cast<size_t>(m), gammas.size());
      std::partial_sort(gammas.begin(),
                        gammas.begin() + static_cast<std::ptrdiff_t>(take),
                        gammas.end(), std::greater<double>());
      double top = 0.0;
      for (size_t r = 0; r < take; ++r) top += gammas[r];
      total_score += top / total;
      ++counted;
    }
    rec.concentration = counted == 0 ? 0.0 : total_score / counted;
    out.push_back(rec);
  }

  std::sort(out.begin(), out.end(),
            [](const ExplainByRecommendation& a,
               const ExplainByRecommendation& b) {
              if (a.concentration != b.concentration) {
                return a.concentration > b.concentration;
              }
              return a.dimension < b.dimension;
            });
  return out;
}

}  // namespace tsexplain
