// TSExplain pipeline facade: the system's primary public API.
//
// Wires together every module of Figure 7: (a) cube precomputation,
// (b) Cascading Analysts (optionally guess-and-verify, O1),
// (c) K-Segmentation with the NDCG variance (optionally sketched, O2),
// plus the support filter and the elbow-based optimal-K selection.
//
// Typical use:
//
//   TSExplainConfig config;
//   config.aggregate = AggregateFunction::kSum;
//   config.measure = "total_confirmed_cases";
//   config.explain_by_names = {"state"};
//   TSExplain engine(table, config);
//   TSExplainResult result = engine.Run();
//   for (const SegmentExplanation& seg : result.segments) { ... }

#ifndef TSEXPLAIN_PIPELINE_TSEXPLAIN_H_
#define TSEXPLAIN_PIPELINE_TSEXPLAIN_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/cube/canonical_mask.h"
#include "src/cube/explanation_cube.h"
#include "src/cube/support_filter.h"
#include "src/diff/guess_verify.h"
#include "src/seg/elbow.h"
#include "src/seg/kseg_dp.h"
#include "src/seg/segment_explainer.h"
#include "src/seg/sketch.h"
#include "src/seg/variance.h"
#include "src/table/table.h"

namespace tsexplain {

/// Full pipeline configuration. Defaults mirror the paper's defaults:
/// m = 3, beta-bar = 3, absolute-change, tse variance, auto-K (elbow,
/// K <= 20), all optimizations off (VanillaTSExplain).
struct TSExplainConfig {
  // --- Query -------------------------------------------------------------
  AggregateFunction aggregate = AggregateFunction::kSum;
  /// Measure column name; empty means COUNT(*).
  std::string measure;
  /// Explain-by attribute names (must be dimensions of the table).
  std::vector<std::string> explain_by_names;
  /// Maximum explanation order beta-bar.
  int max_order = 3;
  /// Top-m explanations per segment.
  int m = 3;
  DiffMetricKind diff_metric = DiffMetricKind::kAbsoluteChange;
  VarianceMetric variance_metric = VarianceMetric::kTse;
  /// Moving-average smoothing window (1 = off).
  int smooth_window = 1;

  // --- Segmentation ------------------------------------------------------
  /// Fixed segment count; 0 selects K automatically via the elbow method.
  int fixed_k = 0;
  /// Upper bound for the auto-K search (paper: 20).
  int max_k = kMaxSegments;

  // --- Optimizations -----------------------------------------------------
  bool use_filter = false;         // support filter ("w filter")
  double filter_ratio = kDefaultFilterRatio;
  bool use_guess_verify = false;   // O1
  int initial_guess = kDefaultInitialGuess;
  bool use_sketch = false;         // O2
  SketchParams sketch_params;      // zeros = paper's empirical defaults
  /// Deduplicate equal-slice conjunctions (hierarchical attributes); on by
  /// default, matching the paper's epsilon accounting (see canonical_mask.h).
  bool dedupe_redundant = true;
  /// Worker threads for the parallel phases: cube build, the TopFor
  /// pre-warm fan-out (modules (a)+(b)), and the module (c) distance fill
  /// (1 = the paper's single-threaded setting; 0 = auto, i.e. hardware
  /// concurrency; results are identical at any thread count — asserted
  /// bit-exactly by tests/test_pipeline_determinism.cc and
  /// tests/test_parallel_core.cc).
  int threads = 1;
  /// Explanations touching any of these predicates never surface. Entries
  /// are "attr=value" strings (e.g. "state=unknown") or bare values (which
  /// exclude the value under every attribute). Analysts use this to mute
  /// trivial or garbage slices without re-loading data.
  std::vector<std::string> exclude;
};

/// One explanation within a segment, rendered for output.
struct ExplanationItem {
  ExplId id = kInvalidExplId;
  std::string description;  // e.g. "state=NY" or "BV=1750 & P=6"
  double gamma = 0.0;
  int tau = 0;  // +1 / -1 / 0 change effect

  /// "state=NY (+)" rendering used by the report printers.
  std::string ToString() const;
};

/// A segment of the final scheme with its top-m explanations.
struct SegmentExplanation {
  int begin = 0;
  int end = 0;
  std::string begin_label;
  std::string end_label;
  std::vector<ExplanationItem> top;
  /// Within-segment variance var(P) of this segment under the configured
  /// metric (paper Eq. 7; range [0, 1]).
  double variance = 0.0;
  /// True when this segment's variance is well above the scheme's average:
  /// its static top-explanation summarizes it poorly and the user should
  /// inspect it at a finer granularity (paper section 9's "hints for
  /// segments with higher variance").
  bool high_variance_hint = false;
};

/// The segmentation-only knobs of a query: everything module (c) reads
/// beyond the engine state (registry, cube, explainer caches). One hot
/// TSExplain instance answers Run(spec) for any spec — the explanation
/// service exploits this to share engines across queries that differ only
/// in K, variance metric, sketching, or thread count.
struct SegmentationSpec {
  /// Fixed segment count; 0 selects K automatically via the elbow method.
  int fixed_k = 0;
  /// Upper bound for the auto-K search (paper: 20).
  int max_k = kMaxSegments;
  VarianceMetric variance_metric = VarianceMetric::kTse;
  bool use_sketch = false;  // O2
  SketchParams sketch_params;
  /// Worker threads for the TopFor pre-warm fan-out and the module (c)
  /// distance fill (results are identical at any thread count; 0 = auto).
  int threads = 1;

  /// The spec a TSExplainConfig describes.
  static SegmentationSpec FromConfig(const TSExplainConfig& config);
};

/// Latency breakdown matching the paper's Figure 15 categories. The
/// buckets are a NON-NEGATIVE PARTITION of this run's wall clock by
/// construction (see Partition): at threads = 1 with no concurrent user
/// of the engine it is the exact per-module attribution; with threads > 1
/// (per-thread elapsed sums exceed wall clock) or a concurrent
/// Prewarm/Run on the same engine (the shared explainer counters advance
/// under both runs), the (a)/(b) shares are scaled down to fit — the old
/// behavior of clamping only module (c) could silently report
/// sum(modules) > total with double-attributed time.
struct TimingBreakdown {
  double precompute_ms = 0.0;    // module (a): cube build + gamma fills
  double cascading_ms = 0.0;     // module (b): CA / guess-and-verify
  double segmentation_ms = 0.0;  // module (c): distances, variance, DP
  double total_ms = 0.0;         // this run's wall clock (incl. build)
  double TotalMs() const {
    return precompute_ms + cascading_ms + segmentation_ms;
  }

  /// Builds the breakdown from per-run explainer deltas: every bucket
  /// >= 0 and TotalMs() == total_ms == build_ms + wall_ms (up to fp
  /// rounding), whatever the deltas claim. Negative deltas (impossible
  /// outside clock skew) clamp to zero; overshooting deltas scale down
  /// proportionally; module (c) is the exact remainder.
  static TimingBreakdown Partition(double build_ms, double precompute_delta_ms,
                                   double cascading_delta_ms, double wall_ms);
};

/// Full pipeline output.
struct TSExplainResult {
  /// Chosen segmentation (cuts include both endpoints).
  Segmentation segmentation;
  int chosen_k = 0;
  /// D(n, K) for K = 1..max_k (K-variance curve; infeasible = +inf).
  std::vector<double> k_variance_curve;
  /// Evolving explanations: one entry per segment, in time order.
  std::vector<SegmentExplanation> segments;
  TimingBreakdown timing;
  /// Candidate explanation counts before/after the support filter.
  size_t epsilon = 0;
  size_t filtered_epsilon = 0;
  /// Sketch positions when O2 ran (empty otherwise).
  std::vector<int> sketch_positions;
};

/// The TSExplain engine. Owns the registry, cube, and caches; one instance
/// answers repeated Run() calls (e.g. with different fixed_k) without
/// re-scanning the relation.
class TSExplain {
 public:
  /// Builds the registry and cube from `table` (module (a) precomputation).
  TSExplain(const Table& table, TSExplainConfig config);

  /// Runs segmentation + per-segment explanation per the configuration.
  TSExplainResult Run();

  /// Same, but with the segmentation knobs overridden: the engine state
  /// (cube, caches, masks) is untouched, so one instance serves arbitrary
  /// spec variations of its query without re-scanning the relation.
  TSExplainResult Run(const SegmentationSpec& spec);

  /// Recomputes the total variance of an arbitrary scheme under this
  /// engine's metric at unit-object granularity (used for Table 7 quality
  /// comparisons; cuts must include both endpoints).
  double EvaluateScheme(const std::vector<int>& cuts);

  /// Component access for tests, benches, and power users ----------------
  const Table& table() const { return table_; }
  const ExplanationRegistry& registry() const { return registry_; }
  const ExplanationCube& cube() const { return *cube_; }
  SegmentExplainer& explainer() { return *explainer_; }
  const TSExplainConfig& config() const { return config_; }

  /// Renders the top explanations of an arbitrary segment (two-relations
  /// diff on its endpoints, paper section 3.1).
  std::vector<ExplanationItem> ExplainSegment(int begin, int end);

 private:
  const Table& table_;
  TSExplainConfig config_;
  std::vector<AttrId> explain_by_;
  int measure_idx_ = -1;
  ExplanationRegistry registry_;
  std::unique_ptr<ExplanationCube> cube_;
  /// Combined selectable mask: canonical (dedupe) AND support filter.
  /// Empty when neither option is enabled.
  std::vector<bool> active_mask_;
  size_t canonical_count_ = 0;
  size_t active_count_ = 0;
  std::unique_ptr<SegmentExplainer> explainer_;
  double build_ms_ = 0.0;  // registry + cube + mask construction time
};

}  // namespace tsexplain

#endif  // TSEXPLAIN_PIPELINE_TSEXPLAIN_H_
