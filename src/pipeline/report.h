// Result rendering: human-readable text reports and Vega-Lite chart specs
// for a TSExplainResult (the library-level equivalent of the paper's demo
// UI [6], which charts segments + per-segment explanation trendlines).
//
// The machine-readable JSON export lives in report_json.h (shared with the
// NDJSON server); this header re-exports it so existing includers keep
// working.

#ifndef TSEXPLAIN_PIPELINE_REPORT_H_
#define TSEXPLAIN_PIPELINE_REPORT_H_

#include <string>

#include "src/pipeline/report_json.h"
#include "src/pipeline/tsexplain.h"

namespace tsexplain {

/// Plain-text report: segmentation summary, per-segment top explanations
/// with change effects, high-variance hints, and timing.
std::string RenderTextReport(const TSExplain& engine,
                             const TSExplainResult& result);

/// Vega-Lite chart specification replicating the paper's Figure-2 style
/// visualization: the overall series in grey, vertical rules at the cut
/// positions, and one colored line per top explanation clipped to its
/// segment. Paste into any Vega-Lite viewer (the demo-UI equivalent).
std::string RenderVegaLiteSpec(const TSExplain& engine,
                               const TSExplainResult& result);

}  // namespace tsexplain

#endif  // TSEXPLAIN_PIPELINE_REPORT_H_
