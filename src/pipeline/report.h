// Result rendering: human-readable text reports and machine-readable JSON
// exports of a TSExplainResult (the library-level equivalent of the
// paper's demo UI [6], which charts segments + per-segment explanation
// trendlines).

#ifndef TSEXPLAIN_PIPELINE_REPORT_H_
#define TSEXPLAIN_PIPELINE_REPORT_H_

#include <string>

#include "src/pipeline/tsexplain.h"

namespace tsexplain {

struct ReportOptions {
  /// Include each explanation's slice trendline (per final segment) in the
  /// JSON export, as the demo UI charts them.
  bool include_trendlines = true;
  /// Include the K-variance curve (for elbow plots).
  bool include_k_curve = true;
  /// Pretty-print the JSON with two-space indentation.
  bool pretty = true;
};

/// Plain-text report: segmentation summary, per-segment top explanations
/// with change effects, high-variance hints, and timing.
std::string RenderTextReport(const TSExplain& engine,
                             const TSExplainResult& result);

/// JSON document with the full result: segments (labels, cuts, variance,
/// hint), explanations (description, gamma, tau, optional trendline),
/// the overall series, the K-variance curve, and the timing breakdown.
/// Stable field names; see tests for the schema.
std::string RenderJsonReport(const TSExplain& engine,
                             const TSExplainResult& result,
                             const ReportOptions& options = {});

/// Escapes a string for embedding in JSON (quotes, control characters).
std::string JsonEscape(const std::string& raw);

/// Vega-Lite chart specification replicating the paper's Figure-2 style
/// visualization: the overall series in grey, vertical rules at the cut
/// positions, and one colored line per top explanation clipped to its
/// segment. Paste into any Vega-Lite viewer (the demo-UI equivalent).
std::string RenderVegaLiteSpec(const TSExplain& engine,
                               const TSExplainResult& result);

}  // namespace tsexplain

#endif  // TSEXPLAIN_PIPELINE_REPORT_H_
