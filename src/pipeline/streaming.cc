#include "src/pipeline/streaming.h"

#include <algorithm>
#include <numeric>
#include <unordered_map>

#include "src/common/check.h"
#include "src/common/metrics.h"
#include "src/common/thread_pool.h"
#include "src/common/timer.h"

namespace tsexplain {

namespace {

// Per-append latency (docs/OBSERVABILITY.md). Covers both the
// incremental path and the fall-back full rebuild, so the histogram's
// tail is where rebuild storms show up.
Histogram& AppendBucketMs() {
  static Histogram& histogram =
      MetricRegistry::Global().GetHistogram("streaming.append_bucket_ms");
  return histogram;
}

}  // namespace

StreamingTSExplain::StreamingTSExplain(const Table& initial,
                                       TSExplainConfig config)
    : table_(std::make_unique<Table>(initial)), config_(std::move(config)) {
  for (const std::string& name : config_.explain_by_names) {
    const AttrId attr = table_->schema().DimensionIndex(name);
    TSE_CHECK_NE(attr, kInvalidAttrId)
        << "unknown explain-by dimension: " << name;
    explain_by_.push_back(attr);
  }
  measure_idx_ = config_.measure.empty()
                     ? -1
                     : table_->schema().MeasureIndex(config_.measure);
  if (!config_.measure.empty()) {
    TSE_CHECK_GE(measure_idx_, 0) << "unknown measure: " << config_.measure;
  }
  BuildEngine();
}

void StreamingTSExplain::BuildEngine() {
  registry_ =
      ExplanationRegistry::Build(*table_, explain_by_, config_.max_order);
  cube_ = std::make_unique<ExplanationCube>(
      *table_, registry_, config_.aggregate, measure_idx_,
      ResolveThreadCount(config_.threads));
  if (config_.smooth_window > 1) cube_->SmoothInPlace(config_.smooth_window);
  active_mask_ = ComputeActiveMask();
  SegmentExplainer::Options options;
  options.m = config_.m;
  options.metric = config_.diff_metric;
  options.use_guess_verify = config_.use_guess_verify;
  options.initial_guess = config_.initial_guess;
  options.active = active_mask_.empty() ? nullptr : &active_mask_;
  explainer_ =
      std::make_unique<SegmentExplainer>(*cube_, registry_, options);
}

std::vector<bool> StreamingTSExplain::ComputeActiveMask() const {
  std::vector<bool> mask;
  if (config_.dedupe_redundant) {
    mask = ComputeCanonicalMask(*cube_, registry_);
  }
  if (config_.use_filter) {
    std::vector<bool> filter =
        ComputeSupportFilter(*cube_, config_.filter_ratio);
    mask = mask.empty() ? std::move(filter) : AndMasks(mask, filter);
  }
  return mask;
}

void StreamingTSExplain::AppendBucket(const std::string& label,
                                      const std::vector<StreamRow>& rows) {
  Timer append_timer;
  const TimeId t = table_->AddTimeBucket(label);
  for (const StreamRow& row : rows) {
    table_->AppendRow(t, row.dims, row.measures);
  }

  // Smoothing mixes past raw partials into new buckets; the cube only keeps
  // smoothed values, so rebuild in that configuration (documented).
  bool rebuild = config_.smooth_window > 1;

  // Incremental path: accumulate the bucket's per-cell partials; bail to a
  // rebuild if a never-seen cell shows up.
  std::vector<AggState> slice_partials;
  AggState overall{};
  if (!rebuild) {
    slice_partials.assign(registry_.num_explanations(), AggState{});
    const int max_order = config_.max_order;
    const size_t num_attrs = explain_by_.size();
    std::vector<Predicate> preds;
    for (const StreamRow& row : rows) {
      const double value =
          measure_idx_ < 0 ? 1.0
                           : row.measures[static_cast<size_t>(measure_idx_)];
      overall.Add(value);
      const uint32_t limit = 1u << num_attrs;
      for (uint32_t mask = 1; mask < limit && !rebuild; ++mask) {
        if (__builtin_popcount(mask) > max_order) continue;
        preds.clear();
        for (size_t idx = 0; idx < num_attrs; ++idx) {
          if (mask & (1u << idx)) {
            const AttrId attr = explain_by_[idx];
            const ValueId v = table_->dictionary(attr).Lookup(
                row.dims[static_cast<size_t>(attr)]);
            TSE_CHECK_NE(v, kInvalidValueId);
            preds.push_back(Predicate{attr, v});
          }
        }
        const ExplId id =
            registry_.Lookup(Explanation::FromPredicates(preds));
        if (id == kInvalidExplId) {
          rebuild = true;  // new cell: registry no longer covers the data
          break;
        }
        slice_partials[static_cast<size_t>(id)].Add(value);
      }
      if (rebuild) break;
    }
  }

  last_append_rebuilt_ = rebuild;
  if (rebuild) {
    BuildEngine();
    AppendBucketMs().Observe(append_timer.ElapsedMs());
    if (append_observer_) append_observer_(label, rows);
    return;
  }

  cube_->AppendBucket(overall, slice_partials, label);
  if (config_.use_filter || config_.dedupe_redundant) {
    // Refresh the mask in place (the explainer holds a pointer to it). If
    // any cell's status flipped (new support gained, equal slices
    // diverged), cached explanations may be stale, so drop the cache.
    std::vector<bool> fresh = ComputeActiveMask();
    if (fresh != active_mask_) {
      active_mask_.swap(fresh);
      explainer_->ClearCache();
    }
  }
  AppendBucketMs().Observe(append_timer.ElapsedMs());
  if (append_observer_) append_observer_(label, rows);
}

TSExplainResult StreamingTSExplain::Explain(int threads_override) {
  const int num_points = n();
  TSE_CHECK_GE(num_points, 3);

  std::vector<int> positions;
  if (!first_run_done_) {
    if (config_.use_sketch) {
      VarianceCalculator calc(*explainer_, config_.variance_metric);
      positions = SelectSketch(calc, config_.sketch_params).positions;
    } else {
      positions.resize(static_cast<size_t>(num_points));
      std::iota(positions.begin(), positions.end(), 0);
    }
  } else {
    // Incremental: previous cuts + every point appended since last run.
    positions = last_cuts_;
    for (int p = std::max(1, last_n_ - 1); p < num_points; ++p) {
      positions.push_back(p);
    }
    positions.push_back(0);
    positions.push_back(num_points - 1);
    std::sort(positions.begin(), positions.end());
    positions.erase(std::unique(positions.begin(), positions.end()),
                    positions.end());
  }

  TSExplainResult result = RunWithCandidates(
      positions, threads_override > 0 ? threads_override
                                      : ResolveThreadCount(config_.threads));
  last_cuts_ = result.segmentation.cuts;
  last_n_ = num_points;
  first_run_done_ = true;
  return result;
}

TSExplainResult StreamingTSExplain::RunWithCandidates(
    const std::vector<int>& positions, int threads) {
  Timer total_timer;
  const ExplainerTiming before = explainer_->timing();

  TSExplainResult result;
  result.epsilon = registry_.num_explanations();
  result.filtered_epsilon = active_mask_.empty()
                                ? registry_.num_explanations()
                                : CountActive(active_mask_);

  VarianceCalculator calc(*explainer_, config_.variance_metric);
  const VarianceTable table =
      VarianceTable::Compute(calc, positions, /*max_span=*/-1, threads);
  const int dp_max_k = config_.fixed_k > 0 ? config_.fixed_k : config_.max_k;
  KSegmentationDp dp(table, dp_max_k);
  result.k_variance_curve = dp.Curve();
  if (config_.fixed_k > 0) {
    int k = std::min(config_.fixed_k, dp.max_k());
    while (k > 1 && !dp.Feasible(k)) --k;
    result.chosen_k = k;
  } else {
    result.chosen_k = SelectElbowK(result.k_variance_curve);
  }
  result.segmentation = dp.Reconstruct(result.chosen_k);

  const TimeSeries overall = cube_->OverallSeries();
  for (size_t i = 0; i + 1 < result.segmentation.cuts.size(); ++i) {
    SegmentExplanation seg;
    seg.begin = result.segmentation.cuts[i];
    seg.end = result.segmentation.cuts[i + 1];
    seg.begin_label = overall.LabelAt(static_cast<size_t>(seg.begin));
    seg.end_label = overall.LabelAt(static_cast<size_t>(seg.end));
    const TopExplanations& top = explainer_->TopFor(seg.begin, seg.end);
    for (size_t r = 0; r < top.ids.size(); ++r) {
      ExplanationItem item;
      item.id = top.ids[r];
      item.description =
          registry_.explanation(item.id).ToString(*table_);
      item.gamma = top.gammas[r];
      item.tau = explainer_->Score(item.id, seg.begin, seg.end).tau;
      seg.top.push_back(std::move(item));
    }
    result.segments.push_back(std::move(seg));
  }

  const ExplainerTiming after = explainer_->timing();
  result.timing = TimingBreakdown::Partition(
      /*build_ms=*/0.0, after.precompute_ms - before.precompute_ms,
      after.cascading_ms - before.cascading_ms, total_timer.ElapsedMs());
  return result;
}

}  // namespace tsexplain
