#include "src/pipeline/report_json.h"

#include <cmath>

#include "src/common/strings.h"

namespace tsexplain {
namespace {

void EmitSeries(JsonWriter& json, const std::vector<double>& values) {
  json.BeginArray();
  for (double v : values) json.Number(v);
  json.EndArray();
}

}  // namespace

void JsonWriter::Number(double value) {
  Separator();
  if (std::isfinite(value)) {
    out_ << StrFormat("%.6g", value);
  } else {
    out_ << "null";  // JSON has no infinity
  }
}

std::string JsonEscape(const std::string& raw) {
  std::string out;
  out.reserve(raw.size());
  for (char c : raw) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += StrFormat("\\u%04x", c);
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

std::string RenderJsonReport(const ExplanationCube& cube,
                             const TSExplainResult& result,
                             const ReportOptions& options) {
  JsonWriter json(options.pretty);
  json.BeginObject();
  json.Key("k");
  json.Int(result.chosen_k);
  json.Key("total_variance");
  json.Number(result.segmentation.total_variance);
  json.Key("epsilon");
  json.Int(static_cast<long long>(result.epsilon));
  json.Key("filtered_epsilon");
  json.Int(static_cast<long long>(result.filtered_epsilon));

  json.Key("cuts");
  json.BeginArray();
  for (int cut : result.segmentation.cuts) json.Int(cut);
  json.EndArray();

  const TimeSeries overall = cube.OverallSeries();
  json.Key("time_labels");
  json.BeginArray();
  for (size_t t = 0; t < overall.size(); ++t) {
    json.String(overall.LabelAt(t));
  }
  json.EndArray();
  json.Key("overall");
  EmitSeries(json, overall.values);

  json.Key("segments");
  json.BeginArray();
  for (const SegmentExplanation& seg : result.segments) {
    json.BeginObject();
    json.Key("begin");
    json.Int(seg.begin);
    json.Key("end");
    json.Int(seg.end);
    json.Key("begin_label");
    json.String(seg.begin_label);
    json.Key("end_label");
    json.String(seg.end_label);
    json.Key("variance");
    json.Number(seg.variance);
    json.Key("high_variance_hint");
    json.Bool(seg.high_variance_hint);
    json.Key("explanations");
    json.BeginArray();
    for (const ExplanationItem& item : seg.top) {
      json.BeginObject();
      json.Key("description");
      json.String(item.description);
      json.Key("gamma");
      json.Number(item.gamma);
      json.Key("effect");
      json.String(item.tau > 0 ? "+" : (item.tau < 0 ? "-" : "="));
      if (options.include_trendlines) {
        const TimeSeries slice = cube.SliceSeries(item.id);
        json.Key("trendline");
        json.BeginArray();
        for (int t = seg.begin; t <= seg.end; ++t) {
          json.Number(slice.values[static_cast<size_t>(t)]);
        }
        json.EndArray();
      }
      json.EndObject();
    }
    json.EndArray();
    json.EndObject();
  }
  json.EndArray();

  if (options.include_k_curve) {
    json.Key("k_variance_curve");
    json.BeginArray();
    for (double v : result.k_variance_curve) json.Number(v);
    json.EndArray();
  }

  json.Key("timing_ms");
  json.BeginObject();
  json.Key("precompute");
  json.Number(result.timing.precompute_ms);
  json.Key("cascading");
  json.Number(result.timing.cascading_ms);
  json.Key("segmentation");
  json.Number(result.timing.segmentation_ms);
  json.Key("total");
  json.Number(result.timing.total_ms);
  json.EndObject();

  json.EndObject();
  return json.str();
}

std::string RenderJsonReport(const TSExplain& engine,
                             const TSExplainResult& result,
                             const ReportOptions& options) {
  return RenderJsonReport(engine.cube(), result, options);
}

}  // namespace tsexplain
