// Explain-by attribute recommendation (paper section 9 lists "recommending
// explain-by attributes" as future work; this is our implementation of it).
//
// Intuition from the paper's liquor finding: an attribute is a GOOD
// explain-by candidate when a few of its values concentrate most of the
// change (BV, Pack), and a poor one when the change smears uniformly over
// many values (Vendor, Category Name). We score each dimension by its
// average top-m gamma concentration over the series' unit segments:
//
//   score(D) = mean over objects [x, x+1] of
//                (sum of the m largest gamma(D=v) ) / (sum of all gamma(D=v))
//
// Scores live in (0, 1]; higher = more concentrated = more interesting.
// Degenerate objects with no change are skipped.

#ifndef TSEXPLAIN_PIPELINE_RECOMMEND_H_
#define TSEXPLAIN_PIPELINE_RECOMMEND_H_

#include <string>
#include <vector>

#include "src/table/group_by.h"
#include "src/table/table.h"

namespace tsexplain {

struct ExplainByRecommendation {
  std::string dimension;
  double concentration = 0.0;  // (0, 1]; higher = better candidate
  size_t cardinality = 0;      // distinct values (context for the user)
};

/// Scores every dimension of `table` (or `candidates` when non-empty) as an
/// explain-by attribute for the aggregated series SELECT T, f(measure).
/// Results are sorted by descending concentration. `m` matches the top-m
/// the user will ask for (default 3, the paper's setting).
std::vector<ExplainByRecommendation> RecommendExplainBy(
    const Table& table, AggregateFunction aggregate,
    const std::string& measure, int m = 3,
    const std::vector<std::string>& candidates = {});

}  // namespace tsexplain

#endif  // TSEXPLAIN_PIPELINE_RECOMMEND_H_
