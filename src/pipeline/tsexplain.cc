#include "src/pipeline/tsexplain.h"

#include <algorithm>
#include <numeric>

#include "src/common/check.h"
#include "src/common/thread_pool.h"
#include "src/common/timer.h"

namespace tsexplain {
namespace {

std::vector<AttrId> ResolveExplainBy(const Table& table,
                                     const std::vector<std::string>& names) {
  TSE_CHECK(!names.empty()) << "explain_by_names must not be empty";
  std::vector<AttrId> attrs;
  attrs.reserve(names.size());
  for (const std::string& name : names) {
    const AttrId attr = table.schema().DimensionIndex(name);
    TSE_CHECK_NE(attr, kInvalidAttrId)
        << "unknown explain-by dimension: " << name;
    attrs.push_back(attr);
  }
  return attrs;
}

int ResolveMeasure(const Table& table, const std::string& name) {
  if (name.empty()) return -1;  // COUNT(*)
  const int idx = table.schema().MeasureIndex(name);
  TSE_CHECK_GE(idx, 0) << "unknown measure: " << name;
  return idx;
}

}  // namespace

TimingBreakdown TimingBreakdown::Partition(double build_ms,
                                           double precompute_delta_ms,
                                           double cascading_delta_ms,
                                           double wall_ms) {
  if (build_ms < 0.0) build_ms = 0.0;
  if (wall_ms < 0.0) wall_ms = 0.0;
  double a = std::max(0.0, precompute_delta_ms);
  double b = std::max(0.0, cascading_delta_ms);
  if (a + b > wall_ms) {
    // Concurrent Prewarm/Run on a shared engine and multi-thread fills
    // both inflate the shared counters past this run's wall clock; scale
    // the shares down so the breakdown stays a partition of wall time.
    const double scale = (a + b) > 0.0 ? wall_ms / (a + b) : 0.0;
    a *= scale;
    b *= scale;
  }
  TimingBreakdown timing;
  timing.precompute_ms = build_ms + a;
  timing.cascading_ms = b;
  timing.segmentation_ms = std::max(0.0, wall_ms - a - b);
  timing.total_ms = build_ms + wall_ms;
  return timing;
}

SegmentationSpec SegmentationSpec::FromConfig(const TSExplainConfig& config) {
  SegmentationSpec spec;
  spec.fixed_k = config.fixed_k;
  spec.max_k = config.max_k;
  spec.variance_metric = config.variance_metric;
  spec.use_sketch = config.use_sketch;
  spec.sketch_params = config.sketch_params;
  spec.threads = config.threads;
  return spec;
}

std::string ExplanationItem::ToString() const {
  const char* effect = tau > 0 ? "+" : (tau < 0 ? "-" : "=");
  return description + " (" + effect + ")";
}

TSExplain::TSExplain(const Table& table, TSExplainConfig config)
    : table_(table), config_(std::move(config)) {
  TSE_CHECK_GE(table.num_time_buckets(), 3u)
      << "need at least three time buckets to segment";
  Timer build_timer;
  explain_by_ = ResolveExplainBy(table, config_.explain_by_names);
  measure_idx_ = ResolveMeasure(table, config_.measure);
  registry_ =
      ExplanationRegistry::Build(table, explain_by_, config_.max_order);
  cube_ = std::make_unique<ExplanationCube>(
      table, registry_, config_.aggregate, measure_idx_,
      ResolveThreadCount(config_.threads));
  if (config_.smooth_window > 1) {
    cube_->SmoothInPlace(config_.smooth_window);
  }

  // Selectable mask: dedupe of equal-slice conjunctions, then the support
  // filter on top.
  canonical_count_ = registry_.num_explanations();
  active_count_ = registry_.num_explanations();
  if (config_.dedupe_redundant) {
    active_mask_ = ComputeCanonicalMask(*cube_, registry_);
    canonical_count_ = CountActive(active_mask_);
    active_count_ = canonical_count_;
  }
  if (config_.use_filter) {
    std::vector<bool> filter =
        ComputeSupportFilter(*cube_, config_.filter_ratio);
    active_mask_ = active_mask_.empty() ? std::move(filter)
                                        : AndMasks(active_mask_, filter);
    active_count_ = CountActive(active_mask_);
  }
  if (!config_.exclude.empty()) {
    std::vector<bool> allowed(registry_.num_explanations(), true);
    for (size_t e = 0; e < registry_.num_explanations(); ++e) {
      for (const Predicate& p :
           registry_.explanation(static_cast<ExplId>(e)).predicates()) {
        const std::string rendered = table_.PredicateString(p.attr, p.value);
        const std::string& value =
            table_.dictionary(p.attr).ToString(p.value);
        for (const std::string& banned : config_.exclude) {
          if (banned == rendered || banned == value) {
            allowed[e] = false;
          }
        }
      }
    }
    active_mask_ = active_mask_.empty() ? std::move(allowed)
                                        : AndMasks(active_mask_, allowed);
    active_count_ = CountActive(active_mask_);
  }

  SegmentExplainer::Options options;
  options.m = config_.m;
  options.metric = config_.diff_metric;
  options.use_guess_verify = config_.use_guess_verify;
  options.initial_guess = config_.initial_guess;
  options.active = active_mask_.empty() ? nullptr : &active_mask_;
  explainer_ =
      std::make_unique<SegmentExplainer>(*cube_, registry_, options);
  build_ms_ = build_timer.ElapsedMs();
}

TSExplainResult TSExplain::Run() {
  return Run(SegmentationSpec::FromConfig(config_));
}

TSExplainResult TSExplain::Run(const SegmentationSpec& spec) {
  Timer total_timer;
  const ExplainerTiming timing_before = explainer_->timing();

  TSExplainResult result;
  result.epsilon = canonical_count_;
  result.filtered_epsilon = active_count_;

  const int n = explainer_->n();
  VarianceCalculator calc(*explainer_, spec.variance_metric);

  // Candidate cut positions: all points, or the sketch (O2).
  std::vector<int> positions;
  if (spec.use_sketch) {
    SketchResult sketch = SelectSketch(calc, spec.sketch_params);
    result.sketch_positions = sketch.positions;
    positions = std::move(sketch.positions);
  } else {
    positions.resize(static_cast<size_t>(n));
    std::iota(positions.begin(), positions.end(), 0);
  }

  // Module (c): weighted variance table + DP over the candidates.
  const VarianceTable table =
      VarianceTable::Compute(calc, positions, /*max_span=*/-1,
                             ResolveThreadCount(spec.threads));
  const int dp_max_k = spec.fixed_k > 0 ? spec.fixed_k : spec.max_k;
  KSegmentationDp dp(table, dp_max_k);
  result.k_variance_curve = dp.Curve();

  if (spec.fixed_k > 0) {
    int k = std::min(spec.fixed_k, dp.max_k());
    while (k > 1 && !dp.Feasible(k)) --k;
    result.chosen_k = k;
  } else {
    result.chosen_k = SelectElbowK(result.k_variance_curve);
  }
  result.segmentation = dp.Reconstruct(result.chosen_k);

  // Explain each final segment via two-relations diff on its endpoints.
  const TimeSeries overall = cube_->OverallSeries();
  result.segments.reserve(
      static_cast<size_t>(result.segmentation.num_segments()));
  double variance_sum = 0.0;
  for (size_t i = 0; i + 1 < result.segmentation.cuts.size(); ++i) {
    SegmentExplanation seg;
    seg.begin = result.segmentation.cuts[i];
    seg.end = result.segmentation.cuts[i + 1];
    seg.begin_label = overall.LabelAt(static_cast<size_t>(seg.begin));
    seg.end_label = overall.LabelAt(static_cast<size_t>(seg.end));
    seg.top = ExplainSegment(seg.begin, seg.end);
    seg.variance = calc.SegmentVariance(seg.begin, seg.end);
    variance_sum += seg.variance;
    result.segments.push_back(std::move(seg));
  }
  // High-variance hints (section 9): flag segments whose internal variance
  // is non-trivial AND above the scheme's average (with a single segment
  // the non-trivial threshold alone decides -- there is no peer to compare
  // against).
  const double mean_variance =
      result.segments.empty()
          ? 0.0
          : variance_sum / static_cast<double>(result.segments.size());
  for (SegmentExplanation& seg : result.segments) {
    const bool above_peers = result.segments.size() <= 1 ||
                             seg.variance > 1.5 * mean_variance;
    seg.high_variance_hint = seg.variance > 0.1 && above_peers;
  }

  // Timing: explainer-internal buckets are modules (a)+(b); the remainder
  // of this call is module (c). Partition makes the buckets a
  // non-negative decomposition of this run's wall clock even when the
  // shared explainer counters were advanced by other threads too
  // (concurrent Prewarm / threads > 1 per-thread sums).
  const ExplainerTiming timing_after = explainer_->timing();
  result.timing = TimingBreakdown::Partition(
      build_ms_, timing_after.precompute_ms - timing_before.precompute_ms,
      timing_after.cascading_ms - timing_before.cascading_ms,
      total_timer.ElapsedMs());
  return result;
}

double TSExplain::EvaluateScheme(const std::vector<int>& cuts) {
  VarianceCalculator calc(*explainer_, config_.variance_metric);
  return TotalObjective(calc, cuts);
}

std::vector<ExplanationItem> TSExplain::ExplainSegment(int begin, int end) {
  const TopExplanations& top = explainer_->TopFor(begin, end);
  std::vector<ExplanationItem> items;
  items.reserve(top.ids.size());
  for (size_t r = 0; r < top.ids.size(); ++r) {
    ExplanationItem item;
    item.id = top.ids[r];
    item.description = registry_.explanation(item.id).ToString(table_);
    item.gamma = top.gammas[r];
    item.tau = explainer_->Score(item.id, begin, end).tau;
    items.push_back(std::move(item));
  }
  return items;
}

}  // namespace tsexplain
