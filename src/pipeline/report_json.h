// The machine-readable wire format: JSON serialization of TSExplainResult
// plus the JsonWriter emitter it is built on. This is the single source of
// truth for result JSON — the CLI (`--json`), the NDJSON server
// (tools/tsexplain_serve.cc), and the service result cache all render
// through RenderJsonReport, so their outputs are byte-identical for the
// same result and options. Schema documented in docs/SERVICE.md; field
// names are stable (see tests/test_report.cc).

#ifndef TSEXPLAIN_PIPELINE_REPORT_JSON_H_
#define TSEXPLAIN_PIPELINE_REPORT_JSON_H_

#include <sstream>
#include <string>
#include <vector>

#include "src/pipeline/tsexplain.h"

namespace tsexplain {

/// Escapes a string for embedding in JSON (quotes, control characters).
std::string JsonEscape(const std::string& raw);

/// Minimal streaming JSON emitter: tracks depth for pretty printing. The
/// schemas in this codebase are small and fixed, so a full JSON library is
/// unnecessary. Shared by the report renderers, the Vega-Lite exporter,
/// and the NDJSON protocol layer.
class JsonWriter {
 public:
  explicit JsonWriter(bool pretty) : pretty_(pretty) {}

  void BeginObject() { Open('{'); }
  void EndObject() { Close('}'); }
  void BeginArray() { Open('['); }
  void EndArray() { Close(']'); }

  void Key(const std::string& name) {
    Separator();
    out_ << '"' << JsonEscape(name) << "\":";
    if (pretty_) out_ << ' ';
    pending_value_ = true;
  }

  void String(const std::string& value) {
    Separator();
    out_ << '"' << JsonEscape(value) << '"';
  }
  void Number(double value);
  void Int(long long value) {
    Separator();
    out_ << value;
  }
  void Bool(bool value) {
    Separator();
    out_ << (value ? "true" : "false");
  }
  void Null() {
    Separator();
    out_ << "null";
  }
  /// Splices pre-rendered JSON in value position verbatim. The caller
  /// guarantees `json` is a complete, valid JSON value (e.g. the output of
  /// RenderJsonReport); used by the server to embed cached reports without
  /// re-serializing.
  void Raw(const std::string& json) {
    Separator();
    out_ << json;
  }

  std::string str() const { return out_.str(); }

 private:
  void Open(char c) {
    Separator();
    out_ << c;
    needs_comma_.push_back(false);
  }
  void Close(char c) {
    needs_comma_.pop_back();
    Newline();
    out_ << c;
    if (!needs_comma_.empty()) needs_comma_.back() = true;
  }
  void Separator() {
    if (pending_value_) {
      pending_value_ = false;  // value follows a key: no comma/newline
      return;
    }
    if (!needs_comma_.empty()) {
      if (needs_comma_.back()) out_ << ',';
      needs_comma_.back() = true;
      Newline();
    }
  }
  void Newline() {
    if (!pretty_) return;
    out_ << '\n';
    for (size_t i = 0; i < needs_comma_.size(); ++i) out_ << "  ";
  }

  std::ostringstream out_;
  std::vector<bool> needs_comma_;
  bool pretty_;
  bool pending_value_ = false;
};

struct ReportOptions {
  /// Include each explanation's slice trendline (per final segment) in the
  /// JSON export, as the demo UI charts them.
  bool include_trendlines = true;
  /// Include the K-variance curve (for elbow plots).
  bool include_k_curve = true;
  /// Pretty-print the JSON with two-space indentation.
  bool pretty = true;
};

/// JSON document with the full result: segments (labels, cuts, variance,
/// hint), explanations (description, gamma, tau, optional trendline),
/// the overall series, the K-variance curve, and the timing breakdown.
/// Stable field names; see tests for the schema.
std::string RenderJsonReport(const TSExplain& engine,
                             const TSExplainResult& result,
                             const ReportOptions& options = {});

/// Cube-level overload: everything the report needs beyond the result is
/// the cube's overall/slice series, so streaming engines (which have a
/// cube but no TSExplain) serialize through the same code path.
std::string RenderJsonReport(const ExplanationCube& cube,
                             const TSExplainResult& result,
                             const ReportOptions& options = {});

}  // namespace tsexplain

#endif  // TSEXPLAIN_PIPELINE_REPORT_JSON_H_
