#include "src/storage/cache_snapshot.h"

#include <utility>

namespace tsexplain {
namespace storage {

StorageStatus WriteCacheSnapshot(const CacheSnapshot& snapshot,
                                 const std::string& path) {
  ByteWriter w;
  w.WriteU32(kCacheSnapshotVersion);
  w.WriteU32(static_cast<uint32_t>(snapshot.datasets.size()));
  for (const CacheSnapshot::DatasetStamp& stamp : snapshot.datasets) {
    w.WriteString(stamp.name);
    w.WriteU64(stamp.uid);
    w.WriteU64(stamp.fingerprint);
  }
  w.WriteU64(snapshot.entries.size());
  for (const CacheSnapshot::Entry& entry : snapshot.entries) {
    w.WriteString(entry.key);
    w.WriteString(entry.json);
  }
  return WriteFramedFile(path, kCacheSnapshotMagic, w.TakeBuffer());
}

StorageStatus ReadCacheSnapshot(const std::string& path,
                                CacheSnapshot* snapshot) {
  std::string payload;
  StorageStatus status = ReadFramedFile(path, kCacheSnapshotMagic, &payload);
  if (!status.ok()) return status;
  ByteReader r(payload);
  uint32_t version = 0;
  if (!r.ReadU32(&version)) {
    return StorageStatus::Error(StorageErrorCode::kTruncated,
                                path + ": missing version");
  }
  if (version != kCacheSnapshotVersion) {
    return StorageStatus::Error(StorageErrorCode::kBadVersion,
                                path + ": unknown cache snapshot version");
  }
  CacheSnapshot out;
  uint32_t ndatasets = 0;
  if (!r.ReadU32(&ndatasets) ||
      ndatasets > r.remaining() / (2 * sizeof(uint64_t))) {
    return StorageStatus::Error(StorageErrorCode::kTruncated,
                                path + ": truncated dataset stamps");
  }
  out.datasets.resize(ndatasets);
  for (CacheSnapshot::DatasetStamp& stamp : out.datasets) {
    if (!r.ReadString(&stamp.name) || !r.ReadU64(&stamp.uid) ||
        !r.ReadU64(&stamp.fingerprint)) {
      return StorageStatus::Error(StorageErrorCode::kTruncated,
                                  path + ": truncated dataset stamps");
    }
  }
  uint64_t nentries = 0;
  if (!r.ReadU64(&nentries) ||
      nentries > r.remaining() / (2 * sizeof(uint32_t))) {
    return StorageStatus::Error(StorageErrorCode::kTruncated,
                                path + ": truncated entry count");
  }
  out.entries.resize(static_cast<size_t>(nentries));
  for (CacheSnapshot::Entry& entry : out.entries) {
    if (!r.ReadString(&entry.key) || !r.ReadString(&entry.json)) {
      return StorageStatus::Error(StorageErrorCode::kTruncated,
                                  path + ": truncated entry");
    }
  }
  if (!r.AtEnd()) {
    return StorageStatus::Error(StorageErrorCode::kFormatError,
                                path + ": trailing bytes after last entry");
  }
  *snapshot = std::move(out);
  return StorageStatus::Ok();
}

}  // namespace storage
}  // namespace tsexplain
