#include "src/storage/session_log.h"

#include <utility>

#include "src/common/strings.h"
#include "src/storage/table_snapshot.h"

namespace tsexplain {
namespace storage {
namespace {

// Record tags (first payload byte).
constexpr uint8_t kHeaderRecord = 1;
constexpr uint8_t kAppendRecord = 2;

void EncodeStringList(ByteWriter& w, const std::vector<std::string>& items) {
  w.WriteU32(static_cast<uint32_t>(items.size()));
  for (const std::string& item : items) w.WriteString(item);
}

bool DecodeStringList(ByteReader& r, std::vector<std::string>* items) {
  uint32_t count = 0;
  if (!r.ReadU32(&count) || count > r.remaining() / sizeof(uint32_t)) {
    return false;
  }
  items->resize(count);
  for (std::string& item : *items) {
    if (!r.ReadString(&item)) return false;
  }
  return true;
}

// The full TSExplainConfig, field by field. Every field is serialized —
// a recovered session must run EXACTLY the query the crashed one ran, so
// "mostly equal" configs are not an option.
void EncodeConfig(ByteWriter& w, const TSExplainConfig& config) {
  w.WriteU8(static_cast<uint8_t>(config.aggregate));
  w.WriteString(config.measure);
  EncodeStringList(w, config.explain_by_names);
  w.WriteI32(config.max_order);
  w.WriteI32(config.m);
  w.WriteU8(static_cast<uint8_t>(config.diff_metric));
  w.WriteU8(static_cast<uint8_t>(config.variance_metric));
  w.WriteI32(config.smooth_window);
  w.WriteI32(config.fixed_k);
  w.WriteI32(config.max_k);
  w.WriteU8(config.use_filter ? 1 : 0);
  w.WriteF64(config.filter_ratio);
  w.WriteU8(config.use_guess_verify ? 1 : 0);
  w.WriteI32(config.initial_guess);
  w.WriteU8(config.use_sketch ? 1 : 0);
  w.WriteI32(config.sketch_params.max_segment_len);
  w.WriteI32(config.sketch_params.target_size);
  w.WriteU8(config.dedupe_redundant ? 1 : 0);
  w.WriteI32(config.threads);
  EncodeStringList(w, config.exclude);
}

bool DecodeConfig(ByteReader& r, TSExplainConfig* config) {
  uint8_t aggregate = 0;
  uint8_t diff_metric = 0;
  uint8_t variance_metric = 0;
  uint8_t use_filter = 0;
  uint8_t use_guess_verify = 0;
  uint8_t use_sketch = 0;
  uint8_t dedupe = 0;
  if (!r.ReadU8(&aggregate) || !r.ReadString(&config->measure) ||
      !DecodeStringList(r, &config->explain_by_names) ||
      !r.ReadI32(&config->max_order) || !r.ReadI32(&config->m) ||
      !r.ReadU8(&diff_metric) || !r.ReadU8(&variance_metric) ||
      !r.ReadI32(&config->smooth_window) || !r.ReadI32(&config->fixed_k) ||
      !r.ReadI32(&config->max_k) || !r.ReadU8(&use_filter) ||
      !r.ReadF64(&config->filter_ratio) || !r.ReadU8(&use_guess_verify) ||
      !r.ReadI32(&config->initial_guess) || !r.ReadU8(&use_sketch) ||
      !r.ReadI32(&config->sketch_params.max_segment_len) ||
      !r.ReadI32(&config->sketch_params.target_size) || !r.ReadU8(&dedupe) ||
      !r.ReadI32(&config->threads) || !DecodeStringList(r, &config->exclude)) {
    return false;
  }
  if (aggregate > static_cast<uint8_t>(AggregateFunction::kAvg) ||
      diff_metric > static_cast<uint8_t>(DiffMetricKind::kRiskRatio) ||
      variance_metric > static_cast<uint8_t>(VarianceMetric::kSallpair)) {
    return false;
  }
  config->aggregate = static_cast<AggregateFunction>(aggregate);
  config->diff_metric = static_cast<DiffMetricKind>(diff_metric);
  config->variance_metric = static_cast<VarianceMetric>(variance_metric);
  config->use_filter = use_filter != 0;
  config->use_guess_verify = use_guess_verify != 0;
  config->use_sketch = use_sketch != 0;
  config->dedupe_redundant = dedupe != 0;
  return true;
}

std::string EncodeAppend(const std::string& label,
                         const std::vector<StreamRow>& rows) {
  ByteWriter w;
  w.WriteU8(kAppendRecord);
  w.WriteString(label);
  w.WriteU32(static_cast<uint32_t>(rows.size()));
  for (const StreamRow& row : rows) {
    EncodeStringList(w, row.dims);
    w.WriteU32(static_cast<uint32_t>(row.measures.size()));
    for (double m : row.measures) w.WriteF64(m);
  }
  return w.TakeBuffer();
}

bool DecodeAppend(const std::string& record, SessionLogAppend* append) {
  ByteReader r(record);
  uint8_t tag = 0;
  uint32_t nrows = 0;
  // Each row costs at least its two count words (8 bytes); a count beyond
  // that is hostile. Rows are then decoded one by one (push_back, no
  // up-front resize) so the allocation tracks the bytes actually present
  // in the record, never the declared count.
  if (!r.ReadU8(&tag) || tag != kAppendRecord ||
      !r.ReadString(&append->label) || !r.ReadU32(&nrows) ||
      nrows > r.remaining() / (2 * sizeof(uint32_t))) {
    return false;
  }
  append->rows.clear();
  for (uint32_t i = 0; i < nrows; ++i) {
    StreamRow row;
    uint32_t nmeasures = 0;
    if (!DecodeStringList(r, &row.dims) || !r.ReadU32(&nmeasures) ||
        nmeasures > r.remaining() / sizeof(double)) {
      return false;
    }
    row.measures.resize(nmeasures);
    for (double& m : row.measures) {
      if (!r.ReadF64(&m)) return false;
    }
    append->rows.push_back(std::move(row));
  }
  return r.AtEnd();
}

}  // namespace

StorageStatus SessionLogWriter::Open(const std::string& path,
                                     const std::string& dataset,
                                     uint64_t base_fingerprint,
                                     const TSExplainConfig& config) {
  // A fresh session overwrites any stale log at this path (the previous
  // incarnation's state is not this session's).
  std::remove(path.c_str());
  StorageStatus status = log_.Open(path);
  if (!status.ok()) return status;
  ByteWriter w;
  w.WriteU8(kHeaderRecord);
  w.WriteU32(kSessionLogVersion);
  w.WriteString(dataset);
  w.WriteU64(base_fingerprint);
  EncodeConfig(w, config);
  return log_.Append(w.TakeBuffer());
}

StorageStatus SessionLogWriter::LogAppend(const std::string& label,
                                          const std::vector<StreamRow>& rows) {
  return log_.Append(EncodeAppend(label, rows));
}

StorageStatus ReadSessionLog(const std::string& path,
                             SessionLogContents* contents) {
  AppendLogReadResult log = ReadAppendLog(path);
  if (!log.ok()) return log.status;
  if (log.records.empty()) {
    return StorageStatus::Error(StorageErrorCode::kTruncated,
                                path + ": missing session header");
  }
  SessionLogContents out;
  out.torn = log.torn;
  {
    ByteReader r(log.records[0]);
    uint8_t tag = 0;
    uint32_t version = 0;
    if (!r.ReadU8(&tag) || tag != kHeaderRecord || !r.ReadU32(&version)) {
      return StorageStatus::Error(StorageErrorCode::kFormatError,
                                  path + ": malformed session header");
    }
    if (version != kSessionLogVersion) {
      return StorageStatus::Error(StorageErrorCode::kBadVersion,
                                  path + ": unknown session log version");
    }
    if (!r.ReadString(&out.dataset) || !r.ReadU64(&out.base_fingerprint) ||
        !DecodeConfig(r, &out.config) || !r.AtEnd()) {
      return StorageStatus::Error(StorageErrorCode::kFormatError,
                                  path + ": malformed session header");
    }
  }
  out.appends.resize(log.records.size() - 1);
  for (size_t i = 1; i < log.records.size(); ++i) {
    if (!DecodeAppend(log.records[i], &out.appends[i - 1])) {
      return StorageStatus::Error(
          StorageErrorCode::kFormatError,
          StrFormat("%s: malformed append record %zu", path.c_str(), i));
    }
  }
  *contents = std::move(out);
  return StorageStatus::Ok();
}

SessionRecoveryResult RecoverStreamingSession(
    const Table& base, const std::string& log_path,
    const TSExplainConfig* config_override) {
  SessionRecoveryResult result;
  result.status = ReadSessionLog(log_path, &result.contents);
  if (!result.status.ok()) return result;
  const uint64_t fingerprint = TableFingerprint(base);
  if (fingerprint != result.contents.base_fingerprint) {
    result.status = StorageStatus::Error(
        StorageErrorCode::kFormatError,
        StrFormat("%s: base table fingerprint %016llx does not match the "
                  "log's %016llx — the dataset changed since the session "
                  "was opened",
                  log_path.c_str(),
                  static_cast<unsigned long long>(fingerprint),
                  static_cast<unsigned long long>(
                      result.contents.base_fingerprint)));
    return result;
  }
  // Validate every replayed row's shape BEFORE touching the engine: a
  // CRC-valid but malformed (or crafted) record must be a structured
  // error, never a TSE_CHECK abort inside Table::AppendRow — the same
  // check the live Append path applies at the service boundary.
  const Schema& schema = base.schema();
  for (size_t a = 0; a < result.contents.appends.size(); ++a) {
    for (const StreamRow& row : result.contents.appends[a].rows) {
      if (row.dims.size() != schema.num_dimensions() ||
          row.measures.size() != schema.num_measures()) {
        result.status = StorageStatus::Error(
            StorageErrorCode::kFormatError,
            StrFormat("%s: append record %zu row shape mismatch (expected "
                      "%zu dims + %zu measures, got %zu + %zu)",
                      log_path.c_str(), a + 1, schema.num_dimensions(),
                      schema.num_measures(), row.dims.size(),
                      row.measures.size()));
        return result;
      }
    }
  }
  auto engine = std::make_unique<StreamingTSExplain>(
      base, config_override ? *config_override : result.contents.config);
  for (const SessionLogAppend& append : result.contents.appends) {
    engine->AppendBucket(append.label, append.rows);
  }
  result.engine = std::move(engine);
  return result;
}

}  // namespace storage
}  // namespace tsexplain
