#include "src/storage/table_snapshot.h"

#include <utility>

#include "src/common/metrics.h"
#include "src/common/strings.h"
#include "src/common/timer.h"

namespace tsexplain {
namespace storage {
namespace {

TableSnapshotResult Fail(StorageErrorCode code, std::string message) {
  TableSnapshotResult result;
  result.status = StorageStatus::Error(code, std::move(message));
  return result;
}

// Snapshot I/O latency (docs/OBSERVABILITY.md). Registered once; the
// observes themselves are lock-free.
struct SnapshotMetrics {
  Histogram& load_ms =
      MetricRegistry::Global().GetHistogram("storage.snapshot_load_ms");
  Histogram& write_ms =
      MetricRegistry::Global().GetHistogram("storage.snapshot_write_ms");
  static SnapshotMetrics& Get() {
    static SnapshotMetrics metrics;
    return metrics;
  }
};

}  // namespace

std::string EncodeTableSnapshotPayload(const Table& table) {
  const Schema& schema = table.schema();
  ByteWriter w;
  w.WriteU32(kTableSnapshotVersion);
  w.WriteString(schema.time_name());
  w.WriteU32(static_cast<uint32_t>(schema.num_dimensions()));
  for (const std::string& name : schema.dimension_names()) w.WriteString(name);
  w.WriteU32(static_cast<uint32_t>(schema.num_measures()));
  for (const std::string& name : schema.measure_names()) w.WriteString(name);
  w.WriteU64(table.num_rows());
  w.WriteU64(table.num_time_buckets());
  for (const std::string& label : table.time_labels()) w.WriteString(label);
  for (size_t a = 0; a < schema.num_dimensions(); ++a) {
    const Dictionary& dict = table.dictionary(static_cast<AttrId>(a));
    w.WriteU64(dict.size());
    for (const std::string& value : dict.values()) w.WriteString(value);
  }
  w.AlignTo(8);
  w.WriteI32Array(table.time_column());
  for (size_t a = 0; a < schema.num_dimensions(); ++a) {
    w.AlignTo(8);
    w.WriteI32Array(table.dim_column(static_cast<AttrId>(a)));
  }
  for (size_t m = 0; m < schema.num_measures(); ++m) {
    w.AlignTo(8);
    w.WriteF64Array(table.measure_column(static_cast<int>(m)));
  }
  return w.TakeBuffer();
}

StorageStatus WriteTableSnapshot(const Table& table, const std::string& path) {
  Timer timer;
  StorageStatus status = WriteFramedFile(path, kTableSnapshotMagic,
                                         EncodeTableSnapshotPayload(table));
  SnapshotMetrics::Get().write_ms.Observe(timer.ElapsedMs());
  return status;
}

namespace {

TableSnapshotResult ReadTableSnapshotImpl(const std::string& path) {
  std::string payload;
  {
    StorageStatus status = ReadFramedFile(path, kTableSnapshotMagic, &payload);
    if (!status.ok()) {
      TableSnapshotResult result;
      result.status = std::move(status);
      return result;
    }
  }
  ByteReader r(payload);
  uint32_t version = 0;
  if (!r.ReadU32(&version)) {
    return Fail(StorageErrorCode::kTruncated, path + ": missing version");
  }
  if (version != kTableSnapshotVersion) {
    return Fail(StorageErrorCode::kBadVersion,
                StrFormat("%s: snapshot version %u (this build reads %u)",
                          path.c_str(), version, kTableSnapshotVersion));
  }

  std::string time_name;
  uint32_t ndims = 0;
  uint32_t nmeasures = 0;
  std::vector<std::string> dim_names;
  std::vector<std::string> measure_names;
  if (!r.ReadString(&time_name) || !r.ReadU32(&ndims)) {
    return Fail(StorageErrorCode::kTruncated, path + ": truncated schema");
  }
  // Name counts are bounded by the remaining payload (each name costs at
  // least its 4-byte length), so hostile counts fail fast instead of
  // driving huge allocations.
  if (ndims > r.remaining() / sizeof(uint32_t)) {
    return Fail(StorageErrorCode::kFormatError,
                path + ": dimension count exceeds payload");
  }
  dim_names.resize(ndims);
  for (std::string& name : dim_names) {
    if (!r.ReadString(&name)) {
      return Fail(StorageErrorCode::kTruncated, path + ": truncated schema");
    }
  }
  if (!r.ReadU32(&nmeasures) ||
      nmeasures > r.remaining() / sizeof(uint32_t)) {
    return Fail(StorageErrorCode::kTruncated, path + ": truncated schema");
  }
  measure_names.resize(nmeasures);
  for (std::string& name : measure_names) {
    if (!r.ReadString(&name)) {
      return Fail(StorageErrorCode::kTruncated, path + ": truncated schema");
    }
  }

  uint64_t nrows = 0;
  uint64_t nbuckets = 0;
  if (!r.ReadU64(&nrows) || !r.ReadU64(&nbuckets)) {
    return Fail(StorageErrorCode::kTruncated, path + ": truncated row counts");
  }
  if (nbuckets > r.remaining() / sizeof(uint32_t)) {
    return Fail(StorageErrorCode::kFormatError,
                path + ": bucket count exceeds payload");
  }
  std::vector<std::string> time_labels(static_cast<size_t>(nbuckets));
  for (std::string& label : time_labels) {
    if (!r.ReadString(&label)) {
      return Fail(StorageErrorCode::kTruncated,
                  path + ": truncated time labels");
    }
  }

  auto table = std::make_unique<Table>(
      Schema(std::move(time_name), std::move(dim_names),
             std::move(measure_names)));
  std::string error;
  for (uint32_t a = 0; a < ndims; ++a) {
    uint64_t count = 0;
    if (!r.ReadU64(&count) || count > r.remaining() / sizeof(uint32_t)) {
      return Fail(StorageErrorCode::kTruncated,
                  StrFormat("%s: truncated dictionary %u", path.c_str(), a));
    }
    std::vector<std::string> values(static_cast<size_t>(count));
    for (std::string& value : values) {
      if (!r.ReadString(&value)) {
        return Fail(StorageErrorCode::kTruncated,
                    StrFormat("%s: truncated dictionary %u", path.c_str(), a));
      }
    }
    if (!table->LoadDictionary(static_cast<AttrId>(a), std::move(values),
                               &error)) {
      return Fail(StorageErrorCode::kFormatError, path + ": " + error);
    }
  }

  std::vector<TimeId> time_col;
  if (!r.AlignTo(8) || !r.ReadI32Array(&time_col, nrows)) {
    return Fail(StorageErrorCode::kTruncated, path + ": truncated time column");
  }
  std::vector<std::vector<ValueId>> dim_cols(ndims);
  for (uint32_t a = 0; a < ndims; ++a) {
    if (!r.AlignTo(8) || !r.ReadI32Array(&dim_cols[a], nrows)) {
      return Fail(StorageErrorCode::kTruncated,
                  StrFormat("%s: truncated dimension column %u", path.c_str(),
                            a));
    }
  }
  std::vector<std::vector<double>> measure_cols(nmeasures);
  for (uint32_t m = 0; m < nmeasures; ++m) {
    if (!r.AlignTo(8) || !r.ReadF64Array(&measure_cols[m], nrows)) {
      return Fail(StorageErrorCode::kTruncated,
                  StrFormat("%s: truncated measure column %u", path.c_str(),
                            m));
    }
  }
  if (!r.AtEnd()) {
    return Fail(StorageErrorCode::kFormatError,
                StrFormat("%s: %zu trailing bytes after the last column",
                          path.c_str(), r.remaining()));
  }
  if (!table->LoadColumns(std::move(time_labels), std::move(time_col),
                          std::move(dim_cols), std::move(measure_cols),
                          &error)) {
    return Fail(StorageErrorCode::kFormatError, path + ": " + error);
  }
  TableSnapshotResult result;
  result.table = std::move(table);
  result.status = StorageStatus::Ok();
  return result;
}

}  // namespace

TableSnapshotResult ReadTableSnapshot(const std::string& path) {
  Timer timer;
  TableSnapshotResult result = ReadTableSnapshotImpl(path);
  SnapshotMetrics::Get().load_ms.Observe(timer.ElapsedMs());
  return result;
}

uint64_t TableFingerprint(const Table& table) {
  const std::string payload = EncodeTableSnapshotPayload(table);
  return Fnv1a64(payload.data(), payload.size());
}

bool IsTableSnapshotFile(const std::string& path) {
  return FileHasMagic(path, kTableSnapshotMagic);
}

}  // namespace storage
}  // namespace tsexplain
