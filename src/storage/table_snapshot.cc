#include "src/storage/table_snapshot.h"

#include <cstring>
#include <utility>
#include <vector>

#include "src/common/metrics.h"
#include "src/common/strings.h"
#include "src/common/timer.h"
#include "src/storage/mmap_file.h"

namespace tsexplain {
namespace storage {
namespace {

// Payload offsets of the v2 prologue: version u32, then the fingerprint
// u64, computed over every payload byte AFTER itself.
constexpr size_t kFingerprintOffset = sizeof(uint32_t);
constexpr size_t kFingerprintedFrom = kFingerprintOffset + sizeof(uint64_t);

constexpr size_t kColumnAlign = 8;
// Column blocks are aligned at their ABSOLUTE file offset: the payload
// starts kFramePrologueBytes into the file, so payload positions are padded
// until (position + phase) % 8 == 0. v1 used phase 0 (payload-relative).
constexpr size_t kV2AlignPhase = kFramePrologueBytes % kColumnAlign;

TableSnapshotResult Fail(StorageErrorCode code, std::string message) {
  TableSnapshotResult result;
  result.status = StorageStatus::Error(code, std::move(message));
  return result;
}

// Snapshot I/O latency plus the zero-copy/fingerprint accounting
// (docs/OBSERVABILITY.md). Registered once; lock-free after that.
// fingerprint_computes counts full-table serializations — the regression
// test for the "hash once per registration" contract watches it.
struct SnapshotMetrics {
  Histogram& load_ms =
      MetricRegistry::Global().GetHistogram("storage.snapshot_load_ms");
  Histogram& write_ms =
      MetricRegistry::Global().GetHistogram("storage.snapshot_write_ms");
  Counter& mmap_opens =
      MetricRegistry::Global().GetCounter("storage.snapshot_mmap_opens");
  Counter& mmap_fallbacks =
      MetricRegistry::Global().GetCounter("storage.snapshot_mmap_fallbacks");
  Counter& fingerprint_computes =
      MetricRegistry::Global().GetCounter("storage.fingerprint_computes");
  static SnapshotMetrics& Get() {
    static SnapshotMetrics metrics;
    return metrics;
  }
};

}  // namespace

std::string EncodeTableSnapshotPayload(const Table& table) {
  const Schema& schema = table.schema();
  ByteWriter w;
  w.WriteU32(kTableSnapshotVersion);
  w.WriteU64(0);  // fingerprint, patched below once the payload is complete
  w.WriteString(schema.time_name());
  w.WriteU32(static_cast<uint32_t>(schema.num_dimensions()));
  for (const std::string& name : schema.dimension_names()) w.WriteString(name);
  w.WriteU32(static_cast<uint32_t>(schema.num_measures()));
  for (const std::string& name : schema.measure_names()) w.WriteString(name);
  w.WriteU64(table.num_rows());
  w.WriteU64(table.num_time_buckets());
  for (const std::string& label : table.time_labels()) w.WriteString(label);
  for (size_t a = 0; a < schema.num_dimensions(); ++a) {
    const Dictionary& dict = table.dictionary(static_cast<AttrId>(a));
    w.WriteU64(dict.size());
    for (const std::string& value : dict.values()) w.WriteString(value);
  }
  w.AlignTo(kColumnAlign, kV2AlignPhase);
  w.WriteI32Array(table.time_column().data(), table.time_column().size());
  for (size_t a = 0; a < schema.num_dimensions(); ++a) {
    const auto& col = table.dim_column(static_cast<AttrId>(a));
    w.AlignTo(kColumnAlign, kV2AlignPhase);
    w.WriteI32Array(col.data(), col.size());
  }
  for (size_t m = 0; m < schema.num_measures(); ++m) {
    const auto& col = table.measure_column(static_cast<int>(m));
    w.AlignTo(kColumnAlign, kV2AlignPhase);
    w.WriteF64Array(col.data(), col.size());
  }
  std::string payload = w.TakeBuffer();
  const uint64_t fingerprint = Fnv1a64(payload.data() + kFingerprintedFrom,
                                       payload.size() - kFingerprintedFrom);
  std::memcpy(&payload[kFingerprintOffset], &fingerprint,
              sizeof(fingerprint));
  return payload;
}

StorageStatus WriteTableSnapshot(const Table& table, const std::string& path) {
  Timer timer;
  StorageStatus status = WriteFramedFile(path, kTableSnapshotMagic,
                                         EncodeTableSnapshotPayload(table));
  SnapshotMetrics::Get().write_ms.Observe(timer.ElapsedMs());
  return status;
}

namespace {

// Everything before the column blocks, parsed with the hostile-count
// guards shared by the owned and zero-copy readers. After a successful
// parse the reader sits right before the first (pre-alignment) column
// block.
struct SnapshotMeta {
  uint32_t version = 0;
  uint64_t fingerprint = 0;  // 0 for v1 (field absent)
  size_t align_phase = 0;
  std::string time_name;
  std::vector<std::string> dim_names;
  std::vector<std::string> measure_names;
  uint64_t nrows = 0;
  uint64_t nbuckets = 0;
  std::vector<std::string> time_labels;
  std::vector<std::vector<std::string>> dict_values;  // one per dimension
};

StorageStatus ParseSnapshotMeta(ByteReader& r, const std::string& path,
                                SnapshotMeta* meta) {
  auto error = [&](StorageErrorCode code, std::string message) {
    return StorageStatus::Error(code, std::move(message));
  };
  if (!r.ReadU32(&meta->version)) {
    return error(StorageErrorCode::kTruncated, path + ": missing version");
  }
  if (meta->version < 1 || meta->version > kTableSnapshotVersion) {
    return error(StorageErrorCode::kBadVersion,
                 StrFormat("%s: snapshot version %u (this build reads 1..%u)",
                           path.c_str(), meta->version,
                           kTableSnapshotVersion));
  }
  if (meta->version >= 2) {
    if (!r.ReadU64(&meta->fingerprint)) {
      return error(StorageErrorCode::kTruncated,
                   path + ": missing fingerprint");
    }
    meta->align_phase = kV2AlignPhase;
  }

  uint32_t ndims = 0;
  uint32_t nmeasures = 0;
  if (!r.ReadString(&meta->time_name) || !r.ReadU32(&ndims)) {
    return error(StorageErrorCode::kTruncated, path + ": truncated schema");
  }
  // Name counts are bounded by the remaining payload (each name costs at
  // least its 4-byte length), so hostile counts fail fast instead of
  // driving huge allocations.
  if (ndims > r.remaining() / sizeof(uint32_t)) {
    return error(StorageErrorCode::kFormatError,
                 path + ": dimension count exceeds payload");
  }
  meta->dim_names.resize(ndims);
  for (std::string& name : meta->dim_names) {
    if (!r.ReadString(&name)) {
      return error(StorageErrorCode::kTruncated, path + ": truncated schema");
    }
  }
  if (!r.ReadU32(&nmeasures) ||
      nmeasures > r.remaining() / sizeof(uint32_t)) {
    return error(StorageErrorCode::kTruncated, path + ": truncated schema");
  }
  meta->measure_names.resize(nmeasures);
  for (std::string& name : meta->measure_names) {
    if (!r.ReadString(&name)) {
      return error(StorageErrorCode::kTruncated, path + ": truncated schema");
    }
  }

  if (!r.ReadU64(&meta->nrows) || !r.ReadU64(&meta->nbuckets)) {
    return error(StorageErrorCode::kTruncated,
                 path + ": truncated row counts");
  }
  if (meta->nbuckets > r.remaining() / sizeof(uint32_t)) {
    return error(StorageErrorCode::kFormatError,
                 path + ": bucket count exceeds payload");
  }
  meta->time_labels.resize(static_cast<size_t>(meta->nbuckets));
  for (std::string& label : meta->time_labels) {
    if (!r.ReadString(&label)) {
      return error(StorageErrorCode::kTruncated,
                   path + ": truncated time labels");
    }
  }

  meta->dict_values.resize(ndims);
  for (uint32_t a = 0; a < ndims; ++a) {
    uint64_t count = 0;
    if (!r.ReadU64(&count) || count > r.remaining() / sizeof(uint32_t)) {
      return error(StorageErrorCode::kTruncated,
                   StrFormat("%s: truncated dictionary %u", path.c_str(), a));
    }
    meta->dict_values[a].resize(static_cast<size_t>(count));
    for (std::string& value : meta->dict_values[a]) {
      if (!r.ReadString(&value)) {
        return error(StorageErrorCode::kTruncated,
                     StrFormat("%s: truncated dictionary %u", path.c_str(),
                               a));
      }
    }
  }
  return StorageStatus::Ok();
}

// Builds a Table with meta's schema + dictionaries (consumes them);
// columns are still the caller's job.
std::unique_ptr<Table> MakeTableFromMeta(SnapshotMeta& meta,
                                         const std::string& path,
                                         StorageStatus* status) {
  auto table = std::make_unique<Table>(
      Schema(std::move(meta.time_name), std::move(meta.dim_names),
             std::move(meta.measure_names)));
  std::string error;
  for (size_t a = 0; a < meta.dict_values.size(); ++a) {
    if (!table->LoadDictionary(static_cast<AttrId>(a),
                               std::move(meta.dict_values[a]), &error)) {
      *status =
          StorageStatus::Error(StorageErrorCode::kFormatError,
                               path + ": " + error);
      return nullptr;
    }
  }
  *status = StorageStatus::Ok();
  return table;
}

TableSnapshotResult ReadTableSnapshotImpl(const std::string& path) {
  std::string payload;
  {
    StorageStatus status = ReadFramedFile(path, kTableSnapshotMagic, &payload);
    if (!status.ok()) {
      TableSnapshotResult result;
      result.status = std::move(status);
      return result;
    }
  }
  ByteReader r(payload);
  SnapshotMeta meta;
  {
    StorageStatus status = ParseSnapshotMeta(r, path, &meta);
    if (!status.ok()) {
      TableSnapshotResult result;
      result.status = std::move(status);
      return result;
    }
  }

  const size_t ndims = meta.dict_values.size();
  const size_t nmeasures = meta.measure_names.size();
  const uint64_t nrows = meta.nrows;
  std::vector<std::string> time_labels = std::move(meta.time_labels);

  StorageStatus status;
  std::unique_ptr<Table> table = MakeTableFromMeta(meta, path, &status);
  if (!table) {
    TableSnapshotResult result;
    result.status = std::move(status);
    return result;
  }

  std::vector<TimeId> time_col;
  if (!r.AlignTo(kColumnAlign, meta.align_phase) ||
      !r.ReadI32Array(&time_col, nrows)) {
    return Fail(StorageErrorCode::kTruncated, path + ": truncated time column");
  }
  std::vector<std::vector<ValueId>> dim_cols(ndims);
  for (size_t a = 0; a < ndims; ++a) {
    if (!r.AlignTo(kColumnAlign, meta.align_phase) ||
        !r.ReadI32Array(&dim_cols[a], nrows)) {
      return Fail(StorageErrorCode::kTruncated,
                  StrFormat("%s: truncated dimension column %zu", path.c_str(),
                            a));
    }
  }
  std::vector<std::vector<double>> measure_cols(nmeasures);
  for (size_t m = 0; m < nmeasures; ++m) {
    if (!r.AlignTo(kColumnAlign, meta.align_phase) ||
        !r.ReadF64Array(&measure_cols[m], nrows)) {
      return Fail(StorageErrorCode::kTruncated,
                  StrFormat("%s: truncated measure column %zu", path.c_str(),
                            m));
    }
  }
  if (!r.AtEnd()) {
    return Fail(StorageErrorCode::kFormatError,
                StrFormat("%s: %zu trailing bytes after the last column",
                          path.c_str(), r.remaining()));
  }
  std::string error;
  if (!table->LoadColumns(std::move(time_labels), std::move(time_col),
                          std::move(dim_cols), std::move(measure_cols),
                          &error)) {
    return Fail(StorageErrorCode::kFormatError, path + ": " + error);
  }
  TableSnapshotResult result;
  result.fingerprint = meta.version >= 2 ? meta.fingerprint
                                         : TableFingerprint(*table);
  result.table = std::move(table);
  result.status = StorageStatus::Ok();
  return result;
}

// The zero-copy open. Returns true when it produced a definitive result
// (success OR a structured rejection the owned path would repeat); false
// means "fall back to the owned path" (no mmap support, a v1 file, or a
// column span the platform cannot alias at its natural alignment).
bool OpenTableSnapshotMappedImpl(const std::string& path,
                                 TableSnapshotResult* out) {
  MmapFile file;
  StorageStatus status;
  if (!file.Open(path, &status)) return false;  // no mmap here: fall back

  const char* payload = nullptr;
  size_t payload_size = 0;
  status = ValidateFramedBuffer(file.data(), file.size(), kTableSnapshotMagic,
                                path, &payload, &payload_size);
  if (!status.ok()) {
    // Corruption verdicts are identical either way; don't re-read the file
    // just to fail again.
    out->status = std::move(status);
    return true;
  }

  ByteReader r(payload, payload_size);
  SnapshotMeta meta;
  status = ParseSnapshotMeta(r, path, &meta);
  if (!status.ok()) {
    if (meta.version == 1) return false;  // v1 layout: owned path reads it
    out->status = std::move(status);
    return true;
  }
  if (meta.version < 2) return false;  // no fingerprint/absolute alignment

  const size_t ndims = meta.dict_values.size();
  const size_t nmeasures = meta.measure_names.size();
  const size_t nrows = static_cast<size_t>(meta.nrows);

  // Locate the column blocks inside the mapping. Sizes are guarded the
  // same way ReadI32Array/ReadF64Array guard heap reads; Skip never walks
  // past the payload.
  auto truncated = [&](const char* what, size_t index) {
    out->status = StorageStatus::Error(
        StorageErrorCode::kTruncated,
        StrFormat("%s: truncated %s column %zu", path.c_str(), what, index));
    return true;
  };
  Table::BorrowedColumns columns;
  columns.num_rows = nrows;
  if (!r.AlignTo(kColumnAlign, meta.align_phase) ||
      nrows > r.remaining() / sizeof(int32_t)) {
    return truncated("time", 0);
  }
  columns.time = reinterpret_cast<const TimeId*>(payload + r.position());
  if (!r.Skip(nrows * sizeof(int32_t))) return truncated("time", 0);
  columns.dim_cols.resize(ndims);
  for (size_t a = 0; a < ndims; ++a) {
    if (!r.AlignTo(kColumnAlign, meta.align_phase) ||
        nrows > r.remaining() / sizeof(int32_t)) {
      return truncated("dimension", a);
    }
    columns.dim_cols[a] =
        reinterpret_cast<const ValueId*>(payload + r.position());
    if (!r.Skip(nrows * sizeof(int32_t))) return truncated("dimension", a);
  }
  columns.measure_cols.resize(nmeasures);
  for (size_t m = 0; m < nmeasures; ++m) {
    if (!r.AlignTo(kColumnAlign, meta.align_phase) ||
        nrows > r.remaining() / sizeof(double)) {
      return truncated("measure", m);
    }
    columns.measure_cols[m] =
        reinterpret_cast<const double*>(payload + r.position());
    if (!r.Skip(nrows * sizeof(double))) return truncated("measure", m);
  }
  if (!r.AtEnd()) {
    out->status = StorageStatus::Error(
        StorageErrorCode::kFormatError,
        StrFormat("%s: %zu trailing bytes after the last column",
                  path.c_str(), r.remaining()));
    return true;
  }

  // Belt and braces: the writer's phase-aligned padding plus a
  // page-aligned mapping base makes every span naturally aligned, but a
  // platform mapping at an odd base must fall back rather than take
  // misaligned typed loads (UBSan-clean by construction).
  auto aligned = [](const void* p, size_t alignment) {
    return reinterpret_cast<uintptr_t>(p) % alignment == 0;
  };
  if (nrows > 0) {
    if (!aligned(columns.time, alignof(TimeId))) return false;
    for (const ValueId* col : columns.dim_cols) {
      if (!aligned(col, alignof(ValueId))) return false;
    }
    for (const double* col : columns.measure_cols) {
      if (!aligned(col, alignof(double))) return false;
    }
  }

  const uint64_t fingerprint = meta.fingerprint;
  StorageStatus meta_status;
  std::unique_ptr<Table> table = MakeTableFromMeta(meta, path, &meta_status);
  if (!table) {
    out->status = std::move(meta_status);
    return true;
  }
  std::string error;
  auto keepalive = std::make_shared<MmapFile>(std::move(file));
  if (!table->LoadColumnsBorrowed(std::move(meta.time_labels), columns,
                                  std::move(keepalive), &error)) {
    out->status = StorageStatus::Error(StorageErrorCode::kFormatError,
                                       path + ": " + error);
    return true;
  }
  out->table = std::move(table);
  out->status = StorageStatus::Ok();
  out->fingerprint = fingerprint;
  out->mapped = true;
  return true;
}

}  // namespace

TableSnapshotResult ReadTableSnapshot(const std::string& path) {
  Timer timer;
  TableSnapshotResult result = ReadTableSnapshotImpl(path);
  SnapshotMetrics::Get().load_ms.Observe(timer.ElapsedMs());
  return result;
}

TableSnapshotResult OpenTableSnapshot(const std::string& path) {
  Timer timer;
  TableSnapshotResult result;
  if (OpenTableSnapshotMappedImpl(path, &result)) {
    if (result.ok()) SnapshotMetrics::Get().mmap_opens.Inc();
    SnapshotMetrics::Get().load_ms.Observe(timer.ElapsedMs());
    return result;
  }
  SnapshotMetrics::Get().mmap_fallbacks.Inc();
  return ReadTableSnapshot(path);
}

uint64_t TableFingerprint(const Table& table) {
  SnapshotMetrics::Get().fingerprint_computes.Inc();
  const std::string payload = EncodeTableSnapshotPayload(table);
  uint64_t fingerprint = 0;
  std::memcpy(&fingerprint, payload.data() + kFingerprintOffset,
              sizeof(fingerprint));
  return fingerprint;
}

bool IsTableSnapshotFile(const std::string& path) {
  return FileHasMagic(path, kTableSnapshotMagic);
}

}  // namespace storage
}  // namespace tsexplain
