#include "src/storage/append_log.h"

#include <cerrno>
#include <cstring>

#include <unistd.h>

#include "src/common/strings.h"

namespace tsexplain {
namespace storage {
namespace {

constexpr size_t kMagicBytes = 8;
constexpr size_t kFrameHeaderBytes = 2 * sizeof(uint32_t);

}  // namespace

AppendLogWriter::~AppendLogWriter() { Close(); }

StorageStatus AppendLogWriter::Open(const std::string& path,
                                    bool sync_each_record) {
  Close();
  // "a+b" creates when absent and always appends; the read half lets us
  // check whether the magic is already there.
  std::FILE* f = std::fopen(path.c_str(), "a+b");
  if (!f) {
    return StorageStatus::Error(
        StorageErrorCode::kIoError,
        // strerror feeds the message text only; a race with another
        // thread's strerror could at worst garble that string.
        // NOLINTNEXTLINE(concurrency-mt-unsafe)
        StrFormat("cannot open %s: %s", path.c_str(), std::strerror(errno)));
  }
  std::fseek(f, 0, SEEK_END);
  if (std::ftell(f) == 0) {
    if (std::fwrite(kAppendLogMagic, 1, kMagicBytes, f) != kMagicBytes ||
        std::fflush(f) != 0) {
      std::fclose(f);
      return StorageStatus::Error(StorageErrorCode::kIoError,
                                  "cannot write log magic: " + path);
    }
  }
  file_ = f;
  path_ = path;
  sync_each_record_ = sync_each_record;
  return StorageStatus::Ok();
}

StorageStatus AppendLogWriter::Append(const std::string& payload) {
  if (!file_) {
    return StorageStatus::Error(StorageErrorCode::kIoError,
                                "append log is not open");
  }
  if (payload.size() > kMaxAppendLogRecordBytes) {
    return StorageStatus::Error(
        StorageErrorCode::kFormatError,
        StrFormat("record of %zu bytes exceeds the %u-byte cap",
                  payload.size(), kMaxAppendLogRecordBytes));
  }
  // One buffered frame, one flush: a crash between the two leaves a torn
  // tail the reader truncates, never a half-interpreted record.
  std::string frame;
  frame.reserve(kFrameHeaderBytes + payload.size());
  const uint32_t len = static_cast<uint32_t>(payload.size());
  const uint32_t crc = Crc32(payload.data(), payload.size());
  frame.append(reinterpret_cast<const char*>(&len), sizeof(len));
  frame.append(reinterpret_cast<const char*>(&crc), sizeof(crc));
  frame.append(payload);
  if (std::fwrite(frame.data(), 1, frame.size(), file_) != frame.size() ||
      std::fflush(file_) != 0) {
    return StorageStatus::Error(StorageErrorCode::kIoError,
                                "append failed: " + path_);
  }
  if (sync_each_record_ && ::fsync(::fileno(file_)) != 0) {
    return StorageStatus::Error(StorageErrorCode::kIoError,
                                "fsync failed: " + path_);
  }
  return StorageStatus::Ok();
}

void AppendLogWriter::Close() {
  if (file_) {
    std::fflush(file_);
    std::fclose(file_);
    file_ = nullptr;
  }
}

AppendLogReadResult ReadAppendLog(const std::string& path) {
  AppendLogReadResult result;
  std::string contents;
  result.status = ReadFileToString(path, &contents);
  if (!result.status.ok()) return result;
  if (contents.size() < kMagicBytes ||
      std::memcmp(contents.data(), kAppendLogMagic, kMagicBytes) != 0) {
    result.status = StorageStatus::Error(
        StorageErrorCode::kBadMagic, path + ": not an append log");
    return result;
  }
  size_t pos = kMagicBytes;
  result.valid_bytes = pos;
  while (pos < contents.size()) {
    if (contents.size() - pos < kFrameHeaderBytes) {
      result.torn = true;  // partial frame header
      break;
    }
    uint32_t len = 0;
    uint32_t crc = 0;
    std::memcpy(&len, contents.data() + pos, sizeof(len));
    std::memcpy(&crc, contents.data() + pos + sizeof(len), sizeof(crc));
    if (len > kMaxAppendLogRecordBytes ||
        len > contents.size() - pos - kFrameHeaderBytes) {
      result.torn = true;  // impossible or partially written payload
      break;
    }
    const char* payload = contents.data() + pos + kFrameHeaderBytes;
    if (Crc32(payload, len) != crc) {
      result.torn = true;  // payload bytes damaged
      break;
    }
    result.records.emplace_back(payload, len);
    pos += kFrameHeaderBytes + len;
    result.valid_bytes = pos;
  }
  return result;
}

StorageStatus TruncateTornTail(const std::string& path,
                               uint64_t valid_bytes) {
  if (::truncate(path.c_str(), static_cast<off_t>(valid_bytes)) != 0) {
    return StorageStatus::Error(
        StorageErrorCode::kIoError,
        StrFormat("cannot truncate %s to %llu bytes: %s", path.c_str(),
                  static_cast<unsigned long long>(valid_bytes),
                  // NOLINTNEXTLINE(concurrency-mt-unsafe): message-only use
                  std::strerror(errno)));
  }
  return StorageStatus::Ok();
}

}  // namespace storage
}  // namespace tsexplain
