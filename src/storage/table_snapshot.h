// TableSnapshot: versioned, checksummed binary columnar serialization of
// src/table/ Tables (docs/STORAGE.md documents the layout and the
// versioning / crash-safety policy).
//
// Layout (little-endian, framed per src/storage/format.h):
//
//   magic "TSXTBL01" | payload_len u64 | payload_crc32 u32 | payload
//   payload:
//     version u32 (= 1)
//     schema: time_name str | ndims u32 | dim names | nmeas u32 | names
//     nrows u64 | nbuckets u64
//     time labels: nbuckets strs
//     dictionaries: per dimension  count u64 | values in id order
//     column blocks, each 8-aligned within the payload (mmap-friendly):
//       time column  nrows x i32
//       per dimension  nrows x i32 codes
//       per measure  nrows x f64 raw IEEE bits
//
// Round trips are BIT-IDENTICAL (measures are raw double bits, dictionary
// ids and time-bucket order are preserved), so explanation output from a
// snapshot-loaded table equals the CSV-loaded output byte for byte —
// asserted by tests/test_storage.cc. Loading is one file read + CRC pass +
// column memcpys, which beats re-parsing CSV by an order of magnitude
// (bench_storage).

#ifndef TSEXPLAIN_STORAGE_TABLE_SNAPSHOT_H_
#define TSEXPLAIN_STORAGE_TABLE_SNAPSHOT_H_

#include <memory>
#include <string>

#include "src/storage/format.h"
#include "src/table/table.h"

namespace tsexplain {
namespace storage {

inline constexpr char kTableSnapshotMagic[] = "TSXTBL01";
inline constexpr uint32_t kTableSnapshotVersion = 1;

/// Serializes `table` and writes it atomically to `path`.
StorageStatus WriteTableSnapshot(const Table& table, const std::string& path);

/// Serializes `table` into a payload string (the file body minus framing);
/// exposed so TableFingerprint and the writer share one encoding.
std::string EncodeTableSnapshotPayload(const Table& table);

struct TableSnapshotResult {
  std::unique_ptr<Table> table;  // null on failure
  StorageStatus status;

  bool ok() const { return table != nullptr; }
};

/// Reads and validates a snapshot. Corrupted or truncated files (bad
/// magic, bad checksum, short reads, invalid codes) fail with a structured
/// status — never an abort or an out-of-bounds read.
TableSnapshotResult ReadTableSnapshot(const std::string& path);

/// Deterministic content fingerprint of a table: FNV-1a over the v1
/// snapshot payload. Equal tables (schema, labels, dictionaries, columns,
/// raw measure bits) have equal fingerprints across processes — the
/// dataset-identity stamp the cache warm-start fencing compares.
uint64_t TableFingerprint(const Table& table);

/// True when `path` starts with the snapshot magic (snapshot-vs-CSV
/// auto-detection for --preload and the CLI).
bool IsTableSnapshotFile(const std::string& path);

}  // namespace storage
}  // namespace tsexplain

#endif  // TSEXPLAIN_STORAGE_TABLE_SNAPSHOT_H_
