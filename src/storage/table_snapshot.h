// TableSnapshot: versioned, checksummed binary columnar serialization of
// src/table/ Tables (docs/STORAGE.md documents the layout and the
// versioning / crash-safety policy).
//
// Layout (little-endian, framed per src/storage/format.h):
//
//   magic "TSXTBL01" | payload_len u64 | payload_crc32 u32 | payload
//   payload (v2):
//     version u32 (= 2)
//     fingerprint u64 (FNV-1a of every payload byte after this field)
//     schema: time_name str | ndims u32 | dim names | nmeas u32 | names
//     nrows u64 | nbuckets u64
//     time labels: nbuckets strs
//     dictionaries: per dimension  count u64 | values in id order
//     column blocks, each 8-aligned at its ABSOLUTE file offset (frame
//     header included), so an mmap of the file yields naturally aligned
//     typed views:
//       time column  nrows x i32
//       per dimension  nrows x i32 codes
//       per measure  nrows x f64 raw IEEE bits
//
// v1 files (no fingerprint field; blocks aligned payload-relative only)
// remain readable through the owned path; the zero-copy open falls back
// for them.
//
// Round trips are BIT-IDENTICAL (measures are raw double bits, dictionary
// ids and time-bucket order are preserved), so explanation output from a
// snapshot-loaded table equals the CSV-loaded output byte for byte —
// asserted by tests/test_storage.cc. Owned loading is one file read + CRC
// pass + column memcpys; the zero-copy open (OpenTableSnapshot) skips even
// the memcpys by borrowing column spans straight out of the mapping
// (bench_storage gates both against CSV parse).

#ifndef TSEXPLAIN_STORAGE_TABLE_SNAPSHOT_H_
#define TSEXPLAIN_STORAGE_TABLE_SNAPSHOT_H_

#include <memory>
#include <string>

#include "src/storage/format.h"
#include "src/table/table.h"

namespace tsexplain {
namespace storage {

inline constexpr char kTableSnapshotMagic[] = "TSXTBL01";
inline constexpr uint32_t kTableSnapshotVersion = 2;

/// Serializes `table` and writes it atomically to `path`.
StorageStatus WriteTableSnapshot(const Table& table, const std::string& path);

/// Serializes `table` into a payload string (the file body minus framing);
/// exposed so TableFingerprint and the writer share one encoding. The
/// embedded fingerprint field is filled in (computed over the payload
/// bytes that follow it).
std::string EncodeTableSnapshotPayload(const Table& table);

struct TableSnapshotResult {
  std::unique_ptr<Table> table;  // null on failure
  StorageStatus status;
  /// Content fingerprint of the loaded table: read from the v2 header
  /// (O(1) — the CRC already vouches for the payload bytes), recomputed
  /// for v1 files. Matches TableFingerprint(*table).
  uint64_t fingerprint = 0;
  /// True when the table's columns borrow spans of an mmap'd region (the
  /// mapping is pinned by the table's keepalive); false for heap-owned
  /// loads and every fallback.
  bool mapped = false;

  bool ok() const { return table != nullptr; }
};

/// Reads and validates a snapshot into heap-owned columns. Corrupted or
/// truncated files (bad magic, bad checksum, short reads, invalid codes)
/// fail with a structured status — never an abort or an out-of-bounds
/// read.
TableSnapshotResult ReadTableSnapshot(const std::string& path);

/// Zero-copy open: mmaps `path`, validates the frame + CRC over the
/// mapping, then registers the column blocks as borrowed spans pointing
/// into it — no per-row heap copies; the mapping lives exactly as long as
/// the returned Table (and its copies). Falls back to ReadTableSnapshot
/// for v1 files, platforms without mmap, and misaligned column spans;
/// corrupted files get the same structured rejections as the owned path.
TableSnapshotResult OpenTableSnapshot(const std::string& path);

/// Deterministic content fingerprint of a table: the FNV-1a value embedded
/// in its snapshot encoding. Equal tables (schema, labels, dictionaries,
/// columns, raw measure bits) have equal fingerprints across processes —
/// the dataset-identity stamp the cache warm-start fencing compares. Costs
/// a full serialization; hot paths reuse the value cached at registration
/// (DatasetRegistry) or stored in the snapshot header instead of calling
/// this (the "storage.fingerprint_computes" counter counts every call).
uint64_t TableFingerprint(const Table& table);

/// True when `path` starts with the snapshot magic (snapshot-vs-CSV
/// auto-detection for --preload and the CLI).
bool IsTableSnapshotFile(const std::string& path);

}  // namespace storage
}  // namespace tsexplain

#endif  // TSEXPLAIN_STORAGE_TABLE_SNAPSHOT_H_
