#include "src/storage/format.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>

#include "src/common/strings.h"

namespace tsexplain {
namespace storage {
namespace {

constexpr size_t kMagicBytes = 8;
// magic + u64 payload_len + u32 crc32.
constexpr size_t kFrameBytes = kMagicBytes + sizeof(uint64_t) + sizeof(uint32_t);

const uint32_t* Crc32Table() {
  static const uint32_t* table = [] {
    static uint32_t t[256];
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int bit = 0; bit < 8; ++bit) {
        c = (c & 1u) ? 0xedb88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  return table;
}

}  // namespace

const char* StorageErrorCodeName(StorageErrorCode code) {
  switch (code) {
    case StorageErrorCode::kOk:
      return "ok";
    case StorageErrorCode::kIoError:
      return "io_error";
    case StorageErrorCode::kBadMagic:
      return "bad_magic";
    case StorageErrorCode::kBadVersion:
      return "bad_version";
    case StorageErrorCode::kTruncated:
      return "truncated";
    case StorageErrorCode::kChecksumMismatch:
      return "checksum_mismatch";
    case StorageErrorCode::kFormatError:
      return "format_error";
  }
  return "?";
}

std::string StorageStatus::ToString() const {
  return std::string(StorageErrorCodeName(code)) + ": " + message;
}

uint32_t Crc32(const void* data, size_t size, uint32_t seed) {
  const uint32_t* table = Crc32Table();
  const unsigned char* p = static_cast<const unsigned char*>(data);
  uint32_t c = seed ^ 0xffffffffu;
  for (size_t i = 0; i < size; ++i) {
    c = table[(c ^ p[i]) & 0xffu] ^ (c >> 8);
  }
  return c ^ 0xffffffffu;
}

uint64_t Fnv1a64(const void* data, size_t size, uint64_t seed) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  uint64_t h = seed;
  for (size_t i = 0; i < size; ++i) {
    h ^= p[i];
    h *= 1099511628211ull;
  }
  return h;
}

bool ByteReader::ReadString(std::string* s) {
  uint32_t len = 0;
  if (!ReadU32(&len)) return false;
  if (len > size_ - pos_) {
    failed_ = true;
    return false;
  }
  s->assign(data_ + pos_, len);
  pos_ += len;
  return true;
}

bool ByteReader::ReadI32Array(std::vector<int32_t>* v, uint64_t count) {
  if (failed_ || count > (size_ - pos_) / sizeof(int32_t)) {
    failed_ = true;
    return false;
  }
  v->resize(static_cast<size_t>(count));
  return ReadRaw(v->data(), static_cast<size_t>(count) * sizeof(int32_t));
}

bool ByteReader::ReadF64Array(std::vector<double>* v, uint64_t count) {
  if (failed_ || count > (size_ - pos_) / sizeof(double)) {
    failed_ = true;
    return false;
  }
  v->resize(static_cast<size_t>(count));
  return ReadRaw(v->data(), static_cast<size_t>(count) * sizeof(double));
}

bool ByteReader::AlignTo(size_t alignment) {
  while (pos_ % alignment != 0) {
    char pad = 0;
    if (!ReadRaw(&pad, 1)) return false;
  }
  return true;
}

StorageStatus ReadFileToString(const std::string& path, std::string* out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (!f) {
    return StorageStatus::Error(
        StorageErrorCode::kIoError,
        // strerror feeds the message text only; a race with another
        // thread's strerror could at worst garble that string.
        // NOLINTNEXTLINE(concurrency-mt-unsafe)
        StrFormat("cannot open %s: %s", path.c_str(), std::strerror(errno)));
  }
  out->clear();
  char chunk[1u << 16];
  size_t n = 0;
  while ((n = std::fread(chunk, 1, sizeof(chunk), f)) > 0) {
    out->append(chunk, n);
  }
  const bool read_error = std::ferror(f) != 0;
  std::fclose(f);
  if (read_error) {
    return StorageStatus::Error(StorageErrorCode::kIoError,
                                "read failed: " + path);
  }
  return StorageStatus::Ok();
}

StorageStatus AtomicWriteFile(const std::string& path,
                              const std::string& contents) {
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (!f) {
    return StorageStatus::Error(
        StorageErrorCode::kIoError,
        // NOLINTNEXTLINE(concurrency-mt-unsafe): message-only use
        StrFormat("cannot create %s: %s", tmp.c_str(), std::strerror(errno)));
  }
  const size_t written = std::fwrite(contents.data(), 1, contents.size(), f);
  // fflush moves bytes to the page cache; fsync makes them durable. Both
  // are required for the "old complete file OR new complete file" claim
  // to survive power loss — renaming over data still in the page cache
  // can leave a zero-length file under the REAL name after a crash.
  const bool flush_ok = std::fflush(f) == 0 && ::fsync(::fileno(f)) == 0;
  std::fclose(f);
  if (written != contents.size() || !flush_ok) {
    std::remove(tmp.c_str());
    return StorageStatus::Error(StorageErrorCode::kIoError,
                                "write failed: " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return StorageStatus::Error(
        StorageErrorCode::kIoError,
        StrFormat("cannot rename %s -> %s: %s", tmp.c_str(), path.c_str(),
                  // NOLINTNEXTLINE(concurrency-mt-unsafe): message-only use
                  std::strerror(errno)));
  }
  // Durable-rename: the directory entry itself needs a sync or the
  // rename can vanish on power loss (leaving the old version — safe, so
  // a failure here is not an error, just weaker durability).
  const size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : path.substr(0, slash == 0 ? 1 : slash);
  const int dir_fd = ::open(dir.c_str(), O_RDONLY);
  if (dir_fd >= 0) {
    ::fsync(dir_fd);
    ::close(dir_fd);
  }
  return StorageStatus::Ok();
}

StorageStatus WriteFramedFile(const std::string& path, const char* magic,
                              const std::string& payload) {
  std::string framed;
  framed.reserve(kFrameBytes + payload.size());
  framed.append(magic, kMagicBytes);
  const uint64_t len = payload.size();
  framed.append(reinterpret_cast<const char*>(&len), sizeof(len));
  const uint32_t crc = Crc32(payload.data(), payload.size());
  framed.append(reinterpret_cast<const char*>(&crc), sizeof(crc));
  framed.append(payload);
  return AtomicWriteFile(path, framed);
}

StorageStatus ReadFramedFile(const std::string& path, const char* magic,
                             std::string* payload) {
  std::string contents;
  StorageStatus status = ReadFileToString(path, &contents);
  if (!status.ok()) return status;
  if (contents.size() < kMagicBytes) {
    return StorageStatus::Error(
        StorageErrorCode::kBadMagic,
        StrFormat("%s: too short to hold a magic number", path.c_str()));
  }
  if (std::memcmp(contents.data(), magic, kMagicBytes) != 0) {
    return StorageStatus::Error(
        StorageErrorCode::kBadMagic,
        StrFormat("%s: wrong magic (expected %.8s)", path.c_str(), magic));
  }
  if (contents.size() < kFrameBytes) {
    return StorageStatus::Error(
        StorageErrorCode::kTruncated,
        StrFormat("%s: truncated frame header", path.c_str()));
  }
  uint64_t declared = 0;
  uint32_t crc = 0;
  std::memcpy(&declared, contents.data() + kMagicBytes, sizeof(declared));
  std::memcpy(&crc, contents.data() + kMagicBytes + sizeof(declared),
              sizeof(crc));
  const size_t actual = contents.size() - kFrameBytes;
  if (declared != actual) {
    return StorageStatus::Error(
        StorageErrorCode::kTruncated,
        StrFormat("%s: payload is %zu bytes but the header declares %llu",
                  path.c_str(), actual,
                  static_cast<unsigned long long>(declared)));
  }
  const char* data = contents.data() + kFrameBytes;
  if (Crc32(data, actual) != crc) {
    return StorageStatus::Error(
        StorageErrorCode::kChecksumMismatch,
        StrFormat("%s: payload checksum mismatch", path.c_str()));
  }
  payload->assign(data, actual);
  return StorageStatus::Ok();
}

bool FileHasMagic(const std::string& path, const char* magic) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (!f) return false;
  char head[kMagicBytes];
  const size_t n = std::fread(head, 1, sizeof(head), f);
  std::fclose(f);
  return n == kMagicBytes && std::memcmp(head, magic, kMagicBytes) == 0;
}

}  // namespace storage
}  // namespace tsexplain
