#include "src/storage/format.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

#include "src/common/strings.h"

namespace tsexplain {
namespace storage {
namespace {

constexpr size_t kMagicBytes = 8;
// magic + u64 payload_len + u32 crc32.
constexpr size_t kFrameBytes = kMagicBytes + sizeof(uint64_t) + sizeof(uint32_t);

// Slicing-by-8 CRC32 tables: table[0] is the classic bytewise table for
// polynomial 0xedb88320; table[k][b] extends a byte's remainder through k
// further zero bytes, letting the hot loop fold 8 input bytes per
// iteration. Same polynomial, same checksums as the bytewise loop — only
// the evaluation order changes. This is the whole-payload scan every
// snapshot open pays (zero-copy included), so it has to run at memory
// speed, not table-lookup-per-byte speed.
using Crc32TableSet = uint32_t[8][256];

const Crc32TableSet& Crc32Tables() {
  static const Crc32TableSet& tables = [] () -> const Crc32TableSet& {
    static Crc32TableSet t;
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int bit = 0; bit < 8; ++bit) {
        c = (c & 1u) ? 0xedb88320u ^ (c >> 1) : c >> 1;
      }
      t[0][i] = c;
    }
    for (int k = 1; k < 8; ++k) {
      for (uint32_t i = 0; i < 256; ++i) {
        t[k][i] = t[0][t[k - 1][i] & 0xffu] ^ (t[k - 1][i] >> 8);
      }
    }
    return t;
  }();
  return tables;
}

}  // namespace

const char* StorageErrorCodeName(StorageErrorCode code) {
  switch (code) {
    case StorageErrorCode::kOk:
      return "ok";
    case StorageErrorCode::kIoError:
      return "io_error";
    case StorageErrorCode::kBadMagic:
      return "bad_magic";
    case StorageErrorCode::kBadVersion:
      return "bad_version";
    case StorageErrorCode::kTruncated:
      return "truncated";
    case StorageErrorCode::kChecksumMismatch:
      return "checksum_mismatch";
    case StorageErrorCode::kFormatError:
      return "format_error";
  }
  return "?";
}

std::string StorageStatus::ToString() const {
  return std::string(StorageErrorCodeName(code)) + ": " + message;
}

uint32_t Crc32(const void* data, size_t size, uint32_t seed) {
  const Crc32TableSet& t = Crc32Tables();
  const unsigned char* p = static_cast<const unsigned char*>(data);
  uint32_t c = seed ^ 0xffffffffu;
#if defined(__BYTE_ORDER__) && __BYTE_ORDER__ == __ORDER_LITTLE_ENDIAN__
  // The 8-bytes-per-step fold reads two u32 words in memory order, which
  // matches the CRC bit order only on little-endian hosts; big-endian
  // takes the bytewise tail loop for everything.
  while (size >= 8) {
    uint32_t lo = 0;
    uint32_t hi = 0;
    std::memcpy(&lo, p, sizeof(lo));
    std::memcpy(&hi, p + 4, sizeof(hi));
    lo ^= c;
    c = t[7][lo & 0xffu] ^ t[6][(lo >> 8) & 0xffu] ^
        t[5][(lo >> 16) & 0xffu] ^ t[4][lo >> 24] ^ t[3][hi & 0xffu] ^
        t[2][(hi >> 8) & 0xffu] ^ t[1][(hi >> 16) & 0xffu] ^ t[0][hi >> 24];
    p += 8;
    size -= 8;
  }
#endif
  for (size_t i = 0; i < size; ++i) {
    c = t[0][(c ^ p[i]) & 0xffu] ^ (c >> 8);
  }
  return c ^ 0xffffffffu;
}

uint64_t Fnv1a64(const void* data, size_t size, uint64_t seed) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  uint64_t h = seed;
  for (size_t i = 0; i < size; ++i) {
    h ^= p[i];
    h *= 1099511628211ull;
  }
  return h;
}

bool ByteReader::ReadString(std::string* s) {
  uint32_t len = 0;
  if (!ReadU32(&len)) return false;
  if (len > size_ - pos_) {
    failed_ = true;
    return false;
  }
  s->assign(data_ + pos_, len);
  pos_ += len;
  return true;
}

bool ByteReader::ReadI32Array(std::vector<int32_t>* v, uint64_t count) {
  if (failed_ || count > (size_ - pos_) / sizeof(int32_t)) {
    failed_ = true;
    return false;
  }
  v->resize(static_cast<size_t>(count));
  return ReadRaw(v->data(), static_cast<size_t>(count) * sizeof(int32_t));
}

bool ByteReader::ReadF64Array(std::vector<double>* v, uint64_t count) {
  if (failed_ || count > (size_ - pos_) / sizeof(double)) {
    failed_ = true;
    return false;
  }
  v->resize(static_cast<size_t>(count));
  return ReadRaw(v->data(), static_cast<size_t>(count) * sizeof(double));
}

bool ByteReader::AlignTo(size_t alignment, size_t phase) {
  while ((pos_ + phase) % alignment != 0) {
    char pad = 0;
    if (!ReadRaw(&pad, 1)) return false;
  }
  return true;
}

bool ByteReader::Skip(size_t size) {
  if (failed_ || size > size_ - pos_) {
    failed_ = true;
    return false;
  }
  pos_ += size;
  return true;
}

StorageStatus ReadFileToString(const std::string& path, std::string* out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (!f) {
    return StorageStatus::Error(
        StorageErrorCode::kIoError,
        // strerror feeds the message text only; a race with another
        // thread's strerror could at worst garble that string.
        // NOLINTNEXTLINE(concurrency-mt-unsafe)
        StrFormat("cannot open %s: %s", path.c_str(), std::strerror(errno)));
  }
  out->clear();
  char chunk[1u << 16];
  size_t n = 0;
  while ((n = std::fread(chunk, 1, sizeof(chunk), f)) > 0) {
    out->append(chunk, n);
  }
  const bool read_error = std::ferror(f) != 0;
  std::fclose(f);
  if (read_error) {
    return StorageStatus::Error(StorageErrorCode::kIoError,
                                "read failed: " + path);
  }
  return StorageStatus::Ok();
}

StorageStatus AtomicWriteFile(const std::string& path,
                              const std::string& contents) {
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (!f) {
    return StorageStatus::Error(
        StorageErrorCode::kIoError,
        // NOLINTNEXTLINE(concurrency-mt-unsafe): message-only use
        StrFormat("cannot create %s: %s", tmp.c_str(), std::strerror(errno)));
  }
  const size_t written = std::fwrite(contents.data(), 1, contents.size(), f);
  // fflush moves bytes to the page cache; fsync makes them durable. Both
  // are required for the "old complete file OR new complete file" claim
  // to survive power loss — renaming over data still in the page cache
  // can leave a zero-length file under the REAL name after a crash.
  const bool flush_ok = std::fflush(f) == 0 && ::fsync(::fileno(f)) == 0;
  std::fclose(f);
  if (written != contents.size() || !flush_ok) {
    std::remove(tmp.c_str());
    return StorageStatus::Error(StorageErrorCode::kIoError,
                                "write failed: " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return StorageStatus::Error(
        StorageErrorCode::kIoError,
        StrFormat("cannot rename %s -> %s: %s", tmp.c_str(), path.c_str(),
                  // NOLINTNEXTLINE(concurrency-mt-unsafe): message-only use
                  std::strerror(errno)));
  }
  // Durable-rename: the directory entry itself needs a sync or the
  // rename can vanish on power loss (leaving the old version — safe, so
  // a failure here is not an error, just weaker durability).
  const size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : path.substr(0, slash == 0 ? 1 : slash);
  const int dir_fd = ::open(dir.c_str(), O_RDONLY);
  if (dir_fd >= 0) {
    ::fsync(dir_fd);
    ::close(dir_fd);
  }
  return StorageStatus::Ok();
}

StorageStatus WriteFramedFile(const std::string& path, const char* magic,
                              const std::string& payload) {
  std::string framed;
  framed.reserve(kFrameBytes + payload.size());
  framed.append(magic, kMagicBytes);
  const uint64_t len = payload.size();
  framed.append(reinterpret_cast<const char*>(&len), sizeof(len));
  const uint32_t crc = Crc32(payload.data(), payload.size());
  framed.append(reinterpret_cast<const char*>(&crc), sizeof(crc));
  framed.append(payload);
  return AtomicWriteFile(path, framed);
}

StorageStatus ValidateFramedBuffer(const char* data, size_t size,
                                   const char* magic, const std::string& path,
                                   const char** payload,
                                   size_t* payload_size) {
  if (size < kMagicBytes) {
    return StorageStatus::Error(
        StorageErrorCode::kBadMagic,
        StrFormat("%s: too short to hold a magic number", path.c_str()));
  }
  if (std::memcmp(data, magic, kMagicBytes) != 0) {
    return StorageStatus::Error(
        StorageErrorCode::kBadMagic,
        StrFormat("%s: wrong magic (expected %.8s)", path.c_str(), magic));
  }
  if (size < kFrameBytes) {
    return StorageStatus::Error(
        StorageErrorCode::kTruncated,
        StrFormat("%s: truncated frame header", path.c_str()));
  }
  uint64_t declared = 0;
  uint32_t crc = 0;
  std::memcpy(&declared, data + kMagicBytes, sizeof(declared));
  std::memcpy(&crc, data + kMagicBytes + sizeof(declared), sizeof(crc));
  const size_t actual = size - kFrameBytes;
  if (declared != actual) {
    return StorageStatus::Error(
        StorageErrorCode::kTruncated,
        StrFormat("%s: payload is %zu bytes but the header declares %llu",
                  path.c_str(), actual,
                  static_cast<unsigned long long>(declared)));
  }
  const char* body = data + kFrameBytes;
  if (Crc32(body, actual) != crc) {
    return StorageStatus::Error(
        StorageErrorCode::kChecksumMismatch,
        StrFormat("%s: payload checksum mismatch", path.c_str()));
  }
  *payload = body;
  *payload_size = actual;
  return StorageStatus::Ok();
}

StorageStatus ReadFramedFile(const std::string& path, const char* magic,
                             std::string* payload) {
  std::string contents;
  StorageStatus status = ReadFileToString(path, &contents);
  if (!status.ok()) return status;
  const char* body = nullptr;
  size_t body_size = 0;
  status = ValidateFramedBuffer(contents.data(), contents.size(), magic, path,
                                &body, &body_size);
  if (!status.ok()) return status;
  payload->assign(body, body_size);
  return StorageStatus::Ok();
}

bool FileHasMagic(const std::string& path, const char* magic) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (!f) return false;
  char head[kMagicBytes];
  const size_t n = std::fread(head, 1, sizeof(head), f);
  std::fclose(f);
  return n == kMagicBytes && std::memcmp(head, magic, kMagicBytes) == 0;
}

}  // namespace storage
}  // namespace tsexplain
