// CacheSnapshot: the on-disk form of a ResultCache warm start.
//
// File layout (framed per src/storage/format.h):
//
//   magic "TSXCCH01" | payload_len u64 | payload_crc32 u32 | payload
//   payload:
//     version u32 (= 1)
//     ndatasets u32; per dataset: name str | uid u64 | fingerprint u64
//     nentries u64;  per entry:   key str  | json str
//
// This module is pure serialization: entries are (cache key, rendered
// wire JSON) pairs in least-recently-used-first order (so re-inserting in
// file order reproduces the LRU ordering), and `datasets` stamps each
// registered dataset with its registration uid and content fingerprint
// (TableFingerprint). The FENCING — matching saved uids against the
// stamps, comparing fingerprints against the currently registered tables,
// and rewriting uids into the new process's registrations — lives in
// ExplainService::{SaveCache,LoadCache}, which owns the key structure.

#ifndef TSEXPLAIN_STORAGE_CACHE_SNAPSHOT_H_
#define TSEXPLAIN_STORAGE_CACHE_SNAPSHOT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/storage/format.h"

namespace tsexplain {
namespace storage {

inline constexpr char kCacheSnapshotMagic[] = "TSXCCH01";
inline constexpr uint32_t kCacheSnapshotVersion = 1;

struct CacheSnapshot {
  struct DatasetStamp {
    std::string name;
    uint64_t uid = 0;          // registration uid at save time
    uint64_t fingerprint = 0;  // TableFingerprint of the table served
  };
  struct Entry {
    std::string key;   // full cache key (tenant prefix + query key + ...)
    std::string json;  // pre-rendered wire JSON payload
  };

  std::vector<DatasetStamp> datasets;
  std::vector<Entry> entries;  // least recently used first
};

/// Writes `snapshot` atomically to `path`.
StorageStatus WriteCacheSnapshot(const CacheSnapshot& snapshot,
                                 const std::string& path);

/// Reads and validates a cache snapshot; corrupted/truncated files fail
/// with a structured status, never an abort or OOB read.
StorageStatus ReadCacheSnapshot(const std::string& path,
                                CacheSnapshot* snapshot);

}  // namespace storage
}  // namespace tsexplain

#endif  // TSEXPLAIN_STORAGE_CACHE_SNAPSHOT_H_
