#include "src/storage/mmap_file.h"

#include <cerrno>
#include <cstring>
#include <utility>

#include "src/common/strings.h"

#if defined(__unix__) || defined(__APPLE__)
#define TSE_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace tsexplain {
namespace storage {

MmapFile::~MmapFile() { Reset(); }

MmapFile::MmapFile(MmapFile&& other) noexcept
    : data_(other.data_), size_(other.size_) {
  other.data_ = nullptr;
  other.size_ = 0;
}

MmapFile& MmapFile::operator=(MmapFile&& other) noexcept {
  if (this != &other) {
    Reset();
    data_ = other.data_;
    size_ = other.size_;
    other.data_ = nullptr;
    other.size_ = 0;
  }
  return *this;
}

void MmapFile::Reset() {
#ifdef TSE_HAVE_MMAP
  if (data_ != nullptr) munmap(data_, size_);
#endif
  data_ = nullptr;
  size_ = 0;
}

#ifdef TSE_HAVE_MMAP

bool MmapFile::Open(const std::string& path, StorageStatus* status) {
  Reset();
  // Failure text carries strerror for the log line only; tests assert the
  // code. NOLINTNEXTLINE here matches the ReadFileToString convention.
  const int fd = open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    *status = StorageStatus::Error(
        StorageErrorCode::kIoError,
        // NOLINTNEXTLINE(concurrency-mt-unsafe)
        StrFormat("cannot open %s: %s", path.c_str(), std::strerror(errno)));
    return false;
  }
  struct stat st;
  if (fstat(fd, &st) != 0 || st.st_size < 0) {
    close(fd);
    *status = StorageStatus::Error(StorageErrorCode::kIoError,
                                   "cannot stat " + path);
    return false;
  }
  if (st.st_size == 0) {
    // Nothing to map; an empty file is representable as (nullptr, 0) and
    // the frame validator will reject it as truncated downstream.
    close(fd);
    *status = StorageStatus::Ok();
    return true;
  }
  void* map = mmap(nullptr, static_cast<size_t>(st.st_size), PROT_READ,
                   MAP_PRIVATE, fd, 0);
  // The mapping survives the descriptor: close immediately so a live
  // MmapFile never pins an fd (the fd-leak test cycles 1000 datasets).
  close(fd);
  if (map == MAP_FAILED) {
    *status = StorageStatus::Error(StorageErrorCode::kIoError,
                                   "mmap failed: " + path);
    return false;
  }
  data_ = map;
  size_ = static_cast<size_t>(st.st_size);
  *status = StorageStatus::Ok();
  return true;
}

#else  // !TSE_HAVE_MMAP

bool MmapFile::Open(const std::string& path, StorageStatus* status) {
  Reset();
  *status = StorageStatus::Error(
      StorageErrorCode::kIoError,
      "mmap unsupported on this platform: " + path);
  return false;
}

#endif  // TSE_HAVE_MMAP

}  // namespace storage
}  // namespace tsexplain
