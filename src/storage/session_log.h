// SessionLog: crash recovery for streaming sessions, built on AppendLog.
//
// A session log is an append log whose first record is a header (the
// dataset name, the base table's content fingerprint, and the full
// TSExplainConfig the session runs) and whose remaining records are the
// appended buckets (label + rows), in order. Recovery rebuilds the
// session from the CURRENTLY registered base table — the fingerprint in
// the header fences a changed dataset exactly like the cache warm start
// does — and replays every intact append through
// StreamingTSExplain::AppendBucket. A torn tail (crash mid-append) is
// reported and replay stops before it; the bucket being appended at the
// crash is lost, everything before it is recovered.
//
// The hook on the other side lives in src/pipeline/streaming.h: a
// StreamingTSExplain append observer that a SessionLogWriter (or any
// other sink) subscribes to, keeping the pipeline layer free of storage
// dependencies.

#ifndef TSEXPLAIN_STORAGE_SESSION_LOG_H_
#define TSEXPLAIN_STORAGE_SESSION_LOG_H_

#include <memory>
#include <string>
#include <vector>

#include "src/pipeline/streaming.h"
#include "src/storage/append_log.h"

namespace tsexplain {
namespace storage {

inline constexpr uint32_t kSessionLogVersion = 1;

/// One replayable append.
struct SessionLogAppend {
  std::string label;
  std::vector<StreamRow> rows;
};

/// Everything a session log holds.
struct SessionLogContents {
  std::string dataset;
  uint64_t base_fingerprint = 0;  // TableFingerprint of the base table
  TSExplainConfig config;
  std::vector<SessionLogAppend> appends;
  bool torn = false;  // a torn tail was found (and not replayed)
};

/// Writes the header + appends as they happen.
class SessionLogWriter {
 public:
  /// Creates/overwrites `path` and writes the header record.
  StorageStatus Open(const std::string& path, const std::string& dataset,
                     uint64_t base_fingerprint, const TSExplainConfig& config);

  StorageStatus LogAppend(const std::string& label,
                          const std::vector<StreamRow>& rows);

  void Close() { log_.Close(); }
  bool is_open() const { return log_.is_open(); }

 private:
  // Not thread-safe: the writer mutates one FILE* stream, so the owner
  // serializes all calls. In the service the owning
  // ExplainService::Session holds the writer TSE_GUARDED_BY(Session::mu)
  // and every LogAppend happens under that mutex (inside the engine's
  // append observer).
  AppendLogWriter log_;
};

/// Reads and validates a session log. A torn tail sets `contents->torn`
/// (recoverable); a missing/garbled header or a malformed record is a
/// structured error.
StorageStatus ReadSessionLog(const std::string& path,
                             SessionLogContents* contents);

struct SessionRecoveryResult {
  std::unique_ptr<StreamingTSExplain> engine;  // null on failure
  SessionLogContents contents;                 // header + replayed appends
  StorageStatus status;

  bool ok() const { return engine != nullptr; }
};

/// Rebuilds a streaming session from `log_path` against `base` (the table
/// currently registered under the log's dataset name). Fails when the
/// base table's fingerprint does not match the header — a changed dataset
/// must never silently absorb another table's appends — or when a
/// replayed row's shape does not match the schema (the log is untrusted
/// input; engine TSE_CHECKs must never see it). `config_override`, when
/// non-null, replaces the logged config for the engine build: the service
/// passes its validated/normalized copy so a crafted header cannot smuggle
/// an invariant-violating config (e.g. duplicate explain-by attributes)
/// past validation-of-a-copy.
SessionRecoveryResult RecoverStreamingSession(
    const Table& base, const std::string& log_path,
    const TSExplainConfig* config_override = nullptr);

}  // namespace storage
}  // namespace tsexplain

#endif  // TSEXPLAIN_STORAGE_SESSION_LOG_H_
