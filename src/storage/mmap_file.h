// MmapFile: RAII read-only memory mapping of a whole file.
//
// The zero-copy snapshot path (table_snapshot.h:OpenTableSnapshotMapped)
// maps a snapshot file and points borrowed Table columns straight into the
// mapping — a multi-GB dataset then costs page cache, not heap. The
// mapping is PROT_READ + MAP_PRIVATE and the file descriptor is closed as
// soon as the map exists, so a live MmapFile holds exactly one kernel
// resource (the mapping), released in the destructor. Tables keep the
// mapping alive via a shared_ptr keepalive (docs/STORAGE.md, "mmap
// lifetime"); dropping the last reference unmaps.
//
// On platforms without <sys/mman.h> (or any open/stat/map failure), Open
// returns false with a structured status and callers fall back to the
// owned (heap-parsing) read path — never an abort.

#ifndef TSEXPLAIN_STORAGE_MMAP_FILE_H_
#define TSEXPLAIN_STORAGE_MMAP_FILE_H_

#include <cstddef>
#include <string>

#include "src/storage/format.h"

namespace tsexplain {
namespace storage {

class MmapFile {
 public:
  MmapFile() = default;
  ~MmapFile();

  MmapFile(const MmapFile&) = delete;
  MmapFile& operator=(const MmapFile&) = delete;
  MmapFile(MmapFile&& other) noexcept;
  MmapFile& operator=(MmapFile&& other) noexcept;

  /// Maps `path` read-only. On failure returns false and fills `status`
  /// with kIoError (the object stays empty). A zero-length file succeeds
  /// with data() == nullptr and size() == 0 (nothing to map).
  bool Open(const std::string& path, StorageStatus* status);

  const char* data() const { return static_cast<const char*>(data_); }
  size_t size() const { return size_; }
  bool mapped() const { return data_ != nullptr; }

 private:
  void Reset();

  void* data_ = nullptr;
  size_t size_ = 0;
};

}  // namespace storage
}  // namespace tsexplain

#endif  // TSEXPLAIN_STORAGE_MMAP_FILE_H_
