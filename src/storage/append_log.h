// AppendLog: a length-prefixed, CRC'd record log for streaming state.
//
// File layout:  magic "TSXLOG01" | records...
// Record frame: payload_len u32 | payload_crc32 u32 | payload bytes
//
// Recovery model (the standard write-ahead-log contract): records are
// valid strictly in order; the first frame that is incomplete or fails
// its CRC ends the log. A torn tail — the partial frame a crash mid-write
// leaves behind — is therefore recovered by replaying every record before
// it and truncating the file at `valid_bytes` (TruncateTornTail). A file
// that does not start with the magic is rejected outright (kBadMagic):
// that is corruption of identity, not a torn write.

#ifndef TSEXPLAIN_STORAGE_APPEND_LOG_H_
#define TSEXPLAIN_STORAGE_APPEND_LOG_H_

#include <cstdio>
#include <string>
#include <vector>

#include "src/storage/format.h"

namespace tsexplain {
namespace storage {

inline constexpr char kAppendLogMagic[] = "TSXLOG01";

/// Frames too large to be real (the protocol caps request lines at 4 MiB;
/// a length beyond this is corruption, not data) end the log like a torn
/// tail instead of driving a giant allocation.
inline constexpr uint32_t kMaxAppendLogRecordBytes = 64u << 20;

/// Appends framed records to a log file. Opening creates the file (with
/// its magic) when absent, and appends to an existing one. Not
/// thread-safe; callers serialize (the service's per-session mutex does).
class AppendLogWriter {
 public:
  AppendLogWriter() = default;
  ~AppendLogWriter();
  AppendLogWriter(const AppendLogWriter&) = delete;
  AppendLogWriter& operator=(const AppendLogWriter&) = delete;

  /// Opens `path` for appending. `sync_each_record` trades throughput for
  /// durability: fsync after every Append instead of fflush only.
  StorageStatus Open(const std::string& path, bool sync_each_record = false);

  /// Writes one framed record and flushes it to the OS.
  StorageStatus Append(const std::string& payload);

  void Close();
  bool is_open() const { return file_ != nullptr; }
  const std::string& path() const { return path_; }

 private:
  std::FILE* file_ = nullptr;
  std::string path_;
  bool sync_each_record_ = false;
};

struct AppendLogReadResult {
  std::vector<std::string> records;  // every record before the first bad one
  /// kOk when the whole file parsed (even if torn — a torn tail is
  /// recoverable); an error code when the file is unusable (bad magic,
  /// unreadable).
  StorageStatus status;
  /// True when a torn/corrupt tail was found; `records` holds everything
  /// before it and `valid_bytes` is where the good prefix ends.
  bool torn = false;
  uint64_t valid_bytes = 0;

  bool ok() const { return status.ok(); }
};

/// Reads every intact record of `path` (see the recovery model above).
AppendLogReadResult ReadAppendLog(const std::string& path);

/// Truncates `path` to `valid_bytes` — the safe post-crash cleanup after
/// ReadAppendLog reported a torn tail.
StorageStatus TruncateTornTail(const std::string& path, uint64_t valid_bytes);

}  // namespace storage
}  // namespace tsexplain

#endif  // TSEXPLAIN_STORAGE_APPEND_LOG_H_
