// On-disk framing shared by every persistence format in src/storage/.
//
// Every file is  magic(8) | payload_len(u64) | payload_crc32(u32) | payload,
// little-endian throughout. The frame is validated BEFORE any payload byte
// is interpreted: wrong magic, short files, length mismatches, and checksum
// failures all come back as structured StorageStatus codes — corrupted or
// hostile files are rejected without aborting and without reading out of
// bounds (the ByteReader bounds-checks every access; asserted ASan/UBSan
// clean by tests/test_storage.cc).
//
// Writes go through AtomicWriteFile (temp file + rename), so a crash while
// writing a snapshot can never leave a half-written file under the real
// name — readers see either the old complete file or the new complete one.

#ifndef TSEXPLAIN_STORAGE_FORMAT_H_
#define TSEXPLAIN_STORAGE_FORMAT_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#if defined(__BYTE_ORDER__) && __BYTE_ORDER__ != __ORDER_LITTLE_ENDIAN__
#error "src/storage/ assumes a little-endian target"
#endif

namespace tsexplain {
namespace storage {

/// Structured failure taxonomy for every storage read/write path. Tests
/// assert codes, not message text.
enum class StorageErrorCode {
  kOk = 0,
  kIoError,            // open/read/write/rename failed (see message)
  kBadMagic,           // not a file of the expected format
  kBadVersion,         // a future/unknown format version
  kTruncated,          // file shorter than its framing promises
  kChecksumMismatch,   // payload bytes do not match the stored CRC
  kFormatError,        // payload decoded but violates format invariants
};

struct StorageStatus {
  StorageErrorCode code = StorageErrorCode::kOk;
  std::string message;

  bool ok() const { return code == StorageErrorCode::kOk; }
  static StorageStatus Ok() { return {}; }
  static StorageStatus Error(StorageErrorCode code, std::string message) {
    return {code, std::move(message)};
  }
  /// The wire/log rendering documented in docs/STORAGE.md: "code: message"
  /// (e.g. "checksum_mismatch: payload checksum mismatch"). Every surface
  /// that reports a storage failure uses this one formatter.
  std::string ToString() const;
};

/// Stable name for a code ("checksum_mismatch", ...), for logs and wire
/// error messages.
const char* StorageErrorCodeName(StorageErrorCode code);

/// Bytes of framing before the payload: magic(8) + payload_len(u64) +
/// payload_crc32(u32). A payload byte at payload offset p sits at absolute
/// file offset kFramePrologueBytes + p — the number formats align against
/// when they want blocks aligned in the FILE (mmap views), not merely in
/// the payload.
inline constexpr size_t kFramePrologueBytes = 8 + 8 + 4;

/// CRC-32 (IEEE 802.3 polynomial, the zlib convention).
uint32_t Crc32(const void* data, size_t size, uint32_t seed = 0);

/// FNV-1a 64-bit over raw bytes; the content-fingerprint primitive
/// (deterministic across processes and platforms, unlike std::hash).
uint64_t Fnv1a64(const void* data, size_t size,
                 uint64_t seed = 1469598103934665603ull);

/// Little-endian append-only payload builder. Strings are u32 length +
/// bytes; arrays are raw element bytes (the target is little-endian, see
/// the static check above).
class ByteWriter {
 public:
  void WriteU8(uint8_t v) { buffer_.push_back(static_cast<char>(v)); }
  void WriteU32(uint32_t v) { WriteRaw(&v, sizeof(v)); }
  void WriteU64(uint64_t v) { WriteRaw(&v, sizeof(v)); }
  void WriteI32(int32_t v) { WriteRaw(&v, sizeof(v)); }
  void WriteF64(double v) { WriteRaw(&v, sizeof(v)); }
  void WriteString(const std::string& s) {
    WriteU32(static_cast<uint32_t>(s.size()));
    WriteRaw(s.data(), s.size());
  }
  void WriteI32Array(const std::vector<int32_t>& v) {
    WriteRaw(v.data(), v.size() * sizeof(int32_t));
  }
  void WriteF64Array(const std::vector<double>& v) {
    WriteRaw(v.data(), v.size() * sizeof(double));
  }
  void WriteI32Array(const int32_t* data, size_t count) {
    WriteRaw(data, count * sizeof(int32_t));
  }
  void WriteF64Array(const double* data, size_t count) {
    WriteRaw(data, count * sizeof(double));
  }
  /// Zero-pads until `position() + phase` is a multiple of `alignment`.
  /// With phase = kFramePrologueBytes, the next write lands 8-aligned in the
  /// FILE (frame header included), so an mmap reader can point typed views
  /// straight at the block; phase = 0 aligns within the payload only.
  void AlignTo(size_t alignment, size_t phase = 0) {
    while ((buffer_.size() + phase) % alignment != 0) buffer_.push_back('\0');
  }

  size_t position() const { return buffer_.size(); }

  const std::string& buffer() const { return buffer_; }
  std::string TakeBuffer() { return std::move(buffer_); }

 private:
  void WriteRaw(const void* data, size_t size) {
    // size == 0 comes with data == nullptr (an empty vector's data());
    // string::append on a null pointer is UB even for zero bytes.
    if (size == 0) return;
    buffer_.append(static_cast<const char*>(data), size);
  }
  std::string buffer_;
};

/// Bounds-checked little-endian payload reader. Every accessor returns
/// false (and latches failed()) instead of reading past the end; callers
/// may chain reads and check failed() once per block.
class ByteReader {
 public:
  ByteReader(const char* data, size_t size) : data_(data), size_(size) {}
  explicit ByteReader(const std::string& payload)
      : ByteReader(payload.data(), payload.size()) {}

  bool ReadU8(uint8_t* v) { return ReadRaw(v, sizeof(*v)); }
  bool ReadU32(uint32_t* v) { return ReadRaw(v, sizeof(*v)); }
  bool ReadU64(uint64_t* v) { return ReadRaw(v, sizeof(*v)); }
  bool ReadI32(int32_t* v) { return ReadRaw(v, sizeof(*v)); }
  bool ReadF64(double* v) { return ReadRaw(v, sizeof(*v)); }
  bool ReadString(std::string* s);
  bool ReadI32Array(std::vector<int32_t>* v, uint64_t count);
  bool ReadF64Array(std::vector<double>* v, uint64_t count);
  /// Consumes pad bytes until `position() + phase` is a multiple of
  /// `alignment` (the reader-side mirror of ByteWriter::AlignTo).
  bool AlignTo(size_t alignment, size_t phase = 0);
  /// Advances past `size` bytes without copying; false (latching) when
  /// fewer remain. The zero-copy reader uses this to walk column blocks.
  bool Skip(size_t size);

  bool failed() const { return failed_; }
  size_t position() const { return pos_; }
  size_t remaining() const { return size_ - pos_; }
  bool AtEnd() const { return pos_ == size_; }

 private:
  bool ReadRaw(void* out, size_t size) {
    if (failed_ || size > size_ - pos_) {
      failed_ = true;
      return false;
    }
    // A zero-length read may carry out == nullptr (an empty vector's
    // data()); memcpy on a null pointer is UB even for zero bytes.
    if (size > 0) {
      std::memcpy(out, data_ + pos_, size);
      pos_ += size;
    }
    return true;
  }

  const char* data_;
  size_t size_;
  size_t pos_ = 0;
  bool failed_ = false;
};

/// Reads the whole file into `out`. kIoError on open/read failure.
StorageStatus ReadFileToString(const std::string& path, std::string* out);

/// Writes `contents` to `path` via `path + ".tmp"` + rename: the file at
/// `path` is always either the previous complete version or the new one.
StorageStatus AtomicWriteFile(const std::string& path,
                              const std::string& contents);

/// Frames `payload` (magic + length + CRC) and writes it atomically.
/// `magic` must be exactly 8 bytes.
StorageStatus WriteFramedFile(const std::string& path, const char* magic,
                              const std::string& payload);

/// Reads and validates a framed file: magic, declared length against the
/// actual size, CRC. On success `payload` holds the verified payload
/// bytes. Never interprets payload content.
StorageStatus ReadFramedFile(const std::string& path, const char* magic,
                             std::string* payload);

/// Frame validation over an in-memory buffer (the mmap'd zero-copy path):
/// same checks and codes as ReadFramedFile, but on success `*payload`
/// points INTO `data` (no copy). `path` feeds error messages only.
StorageStatus ValidateFramedBuffer(const char* data, size_t size,
                                   const char* magic, const std::string& path,
                                   const char** payload, size_t* payload_size);

/// True when the file exists and begins with the 8-byte `magic` (cheap
/// sniff used to auto-detect snapshot vs CSV inputs).
bool FileHasMagic(const std::string& path, const char* magic);

}  // namespace storage
}  // namespace tsexplain

#endif  // TSEXPLAIN_STORAGE_FORMAT_H_
