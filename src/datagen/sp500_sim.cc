#include "src/datagen/sp500_sim.h"

#include <cmath>
#include <string>
#include <vector>

#include "src/common/check.h"
#include "src/common/rng.h"
#include "src/common/strings.h"

namespace tsexplain {
namespace {

// Trading-day anchors (index within the 151-day range):
//   0   = 1/2      24  = 2/6      35  = 2/20 (crash starts)
//   57  = 3/24     (bottom)       163c -> 8/25 = index ~117
//   150 = 10/1
constexpr int kCrashStart = 35;
constexpr int kBottom = 57;
constexpr int kRecoveryEnd = 117;  // ~8/25

struct SectorScript {
  const char* name;
  int num_subcategories;
  int num_stocks;
  // Piecewise daily log-return drift (per trading day) for the four
  // phases: [0, crash), [crash, bottom), [bottom, recovery), [recovery,
  // end).
  double drift[4];
};

// Drifts are tuned so the shapes match Table 4's story: tech leads the
// rise, tech/financial/communication lead the crash, tech + consumer
// cyclical + communication lead the recovery, financial stays flat, and
// everything dips after 8/25 with tech dipping most.
const SectorScript kSectors[] = {
    {"technology", 12, 75, {+0.0045, -0.030, +0.0068, -0.0065}},
    {"financial", 10, 65, {+0.0008, -0.034, +0.0006, -0.0028}},
    {"communication", 8, 26, {+0.0012, -0.028, +0.0042, -0.0042}},
    {"consumer cyclical", 10, 60, {+0.0010, -0.024, +0.0050, -0.0018}},
    {"healthcare", 10, 62, {+0.0008, -0.018, +0.0028, -0.0010}},
    {"industrials", 10, 70, {+0.0004, -0.026, +0.0022, -0.0012}},
    {"consumer defensive", 8, 35, {+0.0006, -0.014, +0.0016, -0.0006}},
    {"energy", 7, 23, {-0.0022, -0.040, +0.0012, -0.0030}},
    {"utilities", 6, 28, {+0.0004, -0.020, +0.0012, -0.0008}},
    {"real estate", 7, 30, {+0.0006, -0.026, +0.0014, -0.0012}},
    {"basic materials", 8, 29, {+0.0004, -0.022, +0.0024, -0.0010}},
};

int PhaseOf(int day) {
  if (day < kCrashStart) return 0;
  if (day < kBottom) return 1;
  if (day < kRecoveryEnd) return 2;
  return 3;
}

// Within technology, the first subcategory is "internet retail" and gets an
// extra early-phase boost (Table 4 lists subcategory=internet retail as a
// top-3 riser before 2/6).
constexpr double kInternetRetailBoost = 0.0035;

std::string TradingDayLabel(int day, Rng& rng) {
  (void)rng;
  // Map trading-day index to an approximate calendar date: 151 trading
  // days over 2020-01-02..10-01 is ~273 calendar days; scale by 273/151.
  const int calendar_offset = static_cast<int>(day * 273.0 / 150.0 + 0.5);
  return DayOffsetToDate(calendar_offset, 1, 2, /*leap_year=*/true);
}

}  // namespace

std::unique_ptr<Table> MakeSp500Table(uint64_t seed) {
  Rng rng(seed);
  auto table = std::make_unique<Table>(Schema(
      "date", {"category", "subcategory", "stock"}, {"weighted_price"}));

  for (int day = 0; day < kSp500Days; ++day) {
    table->AddTimeBucket(TradingDayLabel(day, rng));
  }

  int total_stocks = 0;
  int stock_counter = 0;
  for (const SectorScript& sector : kSectors) {
    total_stocks += sector.num_stocks;
  }
  TSE_CHECK_EQ(total_stocks, kSp500Stocks);

  for (const SectorScript& sector : kSectors) {
    const bool is_tech = std::string(sector.name) == "technology";
    for (int s = 0; s < sector.num_stocks; ++s) {
      const int sub_index = s % sector.num_subcategories;
      std::string subcategory;
      if (is_tech && sub_index == 0) {
        subcategory = "internet retail";
      } else {
        subcategory =
            std::string(sector.name) + " sub" + std::to_string(sub_index);
      }
      const std::string stock_name = "STK" + std::to_string(stock_counter++);

      // Per-stock parameters: index weight (price * share / divisor scale)
      // and idiosyncratic volatility. Weights are long-tailed (log-uniform)
      // like real index weights, so roughly half the constituents fall
      // below the 0.1% support-filter line (paper Table 6: 610 -> 329).
      double weight = 0.5 * std::exp(rng.Uniform(0.0, 4.5));
      if (is_tech && s < 6) weight = rng.Uniform(120.0, 250.0);  // mega-caps
      const double vol = rng.Uniform(0.004, 0.012);

      double log_level = 0.0;
      for (int day = 0; day < kSp500Days; ++day) {
        const int phase = PhaseOf(day);
        double drift = sector.drift[phase];
        if (is_tech && sub_index == 0 && phase == 0) {
          drift += kInternetRetailBoost;
        }
        log_level += drift + vol * rng.NextGaussian();
        const double value = weight * std::exp(log_level);
        table->AppendRow(static_cast<TimeId>(day),
                         {sector.name, subcategory, stock_name}, {value});
      }
    }
  }
  return table;
}

}  // namespace tsexplain
