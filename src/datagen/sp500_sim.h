// S&P 500 dataset simulator (substitution for the constituent price/share
// data the paper uses; see DESIGN.md).
//
// 503 stocks in 11 categories and ~96 subcategories (matching the paper's
// epsilon = 610 = 11 + 96 + 503 after hierarchy dedup), 151 trading days
// from 2020-01-02 to 2020-10-01. Prices follow geometric random walks
// driven by sector factors scripted to the 2020 story the case study
// reports (Figure 13 / Table 4): a January rise led by technology and
// internet retail, the 02-20..03-23 crash led by technology / financial /
// communication, a technology-led recovery through late August in which
// financials do NOT bounce back, and a September pullback.
// The index is SUM(price * share) / divisor, reproduced here as the SUM
// aggregate over a precomputed weight measure.

#ifndef TSEXPLAIN_DATAGEN_SP500_SIM_H_
#define TSEXPLAIN_DATAGEN_SP500_SIM_H_

#include <cstdint>
#include <memory>

#include "src/table/table.h"

namespace tsexplain {

/// Trading days from 2020-01-02 to 2020-10-01 (matches the paper's n=151).
inline constexpr int kSp500Days = 151;

/// Number of constituents tracked through the whole period (paper: 503).
inline constexpr int kSp500Stocks = 503;

/// Builds Sp500(date | category, subcategory, stock | weighted_price); one
/// row per (stock, day) with weighted_price = price * share / divisor.
std::unique_ptr<Table> MakeSp500Table(uint64_t seed = 500);

}  // namespace tsexplain

#endif  // TSEXPLAIN_DATAGEN_SP500_SIM_H_
