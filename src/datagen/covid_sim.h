// COVID-19 dataset simulator (substitution for the JHU repository [20] the
// paper uses; see DESIGN.md).
//
// 58 states/territories, 345 daily buckets from 2020-01-22 to 2020-12-31.
// Each state's daily confirmed cases are a mixture of Gaussian waves whose
// timing/amplitude follow the 2020 narrative the paper's case study reports
// (Figures 2, 11, 12 and Table 3): WA/NY/CA early, NY+NJ+MA spring surge,
// IL/CA transition in May, CA/TX/FL summer, IL/TX/WI fall, CA/NY winter.
// The remaining states carry smaller background waves. Total confirmed
// cases are the running sums.

#ifndef TSEXPLAIN_DATAGEN_COVID_SIM_H_
#define TSEXPLAIN_DATAGEN_COVID_SIM_H_

#include <cstdint>
#include <memory>

#include "src/table/table.h"

namespace tsexplain {

/// Number of days in the simulated range (2020-01-22 .. 2020-12-31).
inline constexpr int kCovidDays = 345;

/// Number of states/territories (paper: "full 58 states in the US").
inline constexpr int kCovidStates = 58;

/// Builds the relation Covid(date | state | daily_confirmed_cases,
/// total_confirmed_cases); one row per (state, day). Deterministic in seed.
std::unique_ptr<Table> MakeCovidTable(uint64_t seed = 2020);

}  // namespace tsexplain

#endif  // TSEXPLAIN_DATAGEN_COVID_SIM_H_
