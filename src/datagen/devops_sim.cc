#include "src/datagen/devops_sim.h"

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "src/common/check.h"
#include "src/common/rng.h"
#include "src/common/strings.h"

namespace tsexplain {
namespace {

const char* kServices[] = {"checkout", "payments", "search", "catalog",
                           "auth",     "cart",     "ship",   "notify"};
const char* kRegions[] = {"us-east", "us-west", "eu", "apac"};

// Incident phases (minute boundaries).
constexpr int kCanaryStart = 90;
constexpr int kRollback = 180;
constexpr int kRecovered = 300;

double BaseRate(const std::string& service) {
  // Bigger services emit more background errors.
  if (service == "checkout" || service == "search") return 6.0;
  if (service == "payments" || service == "auth") return 4.0;
  return 2.0;
}

}  // namespace

std::unique_ptr<Table> MakeDevopsTable(uint64_t seed) {
  Rng rng(seed);
  auto table = std::make_unique<Table>(
      Schema("minute", {"service", "region", "version"}, {"errors"}));
  for (int minute = 0; minute < kDevopsMinutes; ++minute) {
    table->AddTimeBucket(StrFormat("%02d:%02d", minute / 60, minute % 60));
  }

  for (const char* service_name : kServices) {
    const std::string service = service_name;
    for (const char* region_name : kRegions) {
      const std::string region = region_name;
      for (int minute = 0; minute < kDevopsMinutes; ++minute) {
        // Rolling deployment: v1 everywhere, v2 canary in us-east from the
        // canary start, v2 fleet-wide after a (clean) rollout at recovery.
        std::vector<std::string> versions{"v1"};
        if (minute >= kCanaryStart && region == "us-east") {
          versions.push_back("v2");
        }
        for (const std::string& version : versions) {
          double rate = BaseRate(service) / versions.size();
          // The bad canary: checkout v2 in us-east melts down fast.
          if (service == "checkout" && version == "v2" &&
              minute >= kCanaryStart && minute < kRollback) {
            const double ramp =
                std::min(1.0, (minute - kCanaryStart) / 10.0);
            rate += 220.0 * ramp;
          }
          // Cascading payments incident in every region after rollback.
          if (service == "payments" && minute >= kRollback &&
              minute < kRecovered) {
            const double ramp = std::min(1.0, (minute - kRollback) / 15.0);
            const double decay =
                minute > kRecovered - 30
                    ? (kRecovered - minute) / 30.0
                    : 1.0;
            rate += 130.0 * ramp * decay;
          }
          const double errors =
              std::max(0.0, std::floor(rate * (1.0 + 0.15 * rng.NextGaussian())));
          table->AppendRow(static_cast<TimeId>(minute),
                           {service, region, version}, {errors});
        }
      }
    }
  }
  return table;
}

}  // namespace tsexplain
