#include "src/datagen/liquor_sim.h"

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "src/common/check.h"
#include "src/common/rng.h"
#include "src/common/strings.h"

namespace tsexplain {
namespace {

// Business-day phase anchors (indices into the 128-day range):
// 1/2=0, 1/20~12, 3/6~45, 3/31~62, 4/21~77, 5/8~89, 6/10~112, 6/30=127.
constexpr int kP0 = 12, kP1 = 45, kP2 = 62, kP3 = 77, kP4 = 89, kP5 = 112;

struct Product {
  int bv;              // bottle volume (ml)
  int pack;            // bottles per pack
  std::string category;
  std::string vendor;
  double base;         // baseline bottles/day
};

int PhaseOf(int day) {
  if (day < kP0) return 0;
  if (day < kP1) return 1;
  if (day < kP2) return 2;
  if (day < kP3) return 3;
  if (day < kP4) return 4;
  if (day < kP5) return 5;
  return 6;
}

// Per-day log growth of a product in a phase, from the Table 5 narrative.
double PhaseRate(const Product& p, int phase) {
  double rate = 0.0;
  switch (phase) {
    case 0:  // 1/2 - 1/20: post-holiday decline, packs 6/12 hit hardest
      rate = -0.006;
      if (p.pack == 12 || p.pack == 6) rate -= 0.022;
      if (p.bv == 375 && p.pack == 24) rate -= 0.030;
      break;
    case 1:  // 1/20 - 3/6: large packs grow
      rate = +0.002;
      if (p.pack == 12) rate += 0.016;
      if (p.pack == 6) rate += 0.010;
      if (p.pack == 48) rate += 0.020;
      break;
    case 2:  // 3/6 - 3/31: bar/restaurant closure
      rate = +0.004;
      if (p.bv == 1000) rate = -0.085;  // independent-store channel dies
      if (p.bv == 1750 && p.pack == 6) rate = +0.034;
      if (p.bv == 750 && p.pack == 12) rate = +0.030;
      break;
    case 3:  // 3/31 - 4/21: stock-up continues
      rate = +0.002;
      if (p.pack == 12) rate += 0.020;
      if (p.bv == 1750 && p.pack == 6) rate = -0.024;
      if (p.pack == 24) rate += 0.016;
      break;
    case 4:  // 4/21 - 5/8: reopening proclamation
      rate = +0.001;
      if (p.bv == 1750 && p.pack == 12) rate = -0.030;
      if (p.pack == 6) rate += 0.014;
      if (p.bv == 1000 && p.pack == 12) rate = +0.055;
      break;
    case 5:  // 5/8 - 6/10: independent stores recover
      rate = 0.0;
      if (p.bv == 1000) rate = +0.045;
      if (p.bv == 1750 && p.pack == 6) rate = -0.020;
      if (p.bv == 750 && p.pack == 12) rate = -0.016;
      break;
    case 6:  // 6/10 - 6/30: summer
      rate = +0.002;
      if (p.pack == 12) rate += 0.018;
      if (p.bv == 1750 && p.pack == 6) rate = +0.022;
      if (p.pack == 24) rate += 0.014;
      break;
    default:
      break;
  }
  return rate;
}

// First 128 weekdays starting 2020-01-02 (a Thursday).
std::vector<std::string> BusinessDayLabels() {
  std::vector<std::string> labels;
  int offset = 0;
  int dow = 3;  // 0 = Monday; Jan 2, 2020 was a Thursday
  while (labels.size() < static_cast<size_t>(kLiquorDays)) {
    if (dow < 5) {
      labels.push_back(DayOffsetToDate(offset, 1, 2, /*leap_year=*/true));
    }
    ++offset;
    dow = (dow + 1) % 7;
  }
  return labels;
}

}  // namespace

std::unique_ptr<Table> MakeLiquorTable(uint64_t seed) {
  Rng rng(seed);
  auto table = std::make_unique<Table>(Schema(
      "date", {"BV", "P", "CN", "VN"}, {"bottles_sold"}));
  for (const std::string& label : BusinessDayLabels()) {
    table->AddTimeBucket(label);
  }

  // Catalog. Pack options depend loosely on bottle volume (minis come in
  // big packs, handles in small packs), mirroring real assortments.
  const int kBvValues[] = {50, 100, 200, 375, 500, 750, 1000, 1750, 3000};
  const int kPacksSmallBottle[] = {12, 24, 48};
  const int kPacksMidBottle[] = {6, 12, 24};
  const int kPacksLargeBottle[] = {1, 2, 4, 6, 12};
  constexpr int kNumCategories = 55;
  constexpr int kNumVendors = 42;

  std::vector<Product> products;
  for (int c = 0; c < kNumCategories; ++c) {
    const std::string category = "CAT" + std::to_string(c);
    const int vendors_for_cat = static_cast<int>(rng.UniformInt(3, 8));
    for (int v = 0; v < vendors_for_cat; ++v) {
      const std::string vendor =
          "VND" + std::to_string(rng.UniformInt(0, kNumVendors - 1));
      const int variants = static_cast<int>(rng.UniformInt(10, 20));
      for (int k = 0; k < variants; ++k) {
        Product p;
        p.bv = kBvValues[rng.UniformInt(0, 8)];
        if (p.bv <= 200) {
          p.pack = kPacksSmallBottle[rng.UniformInt(0, 2)];
        } else if (p.bv <= 750) {
          p.pack = kPacksMidBottle[rng.UniformInt(0, 2)];
        } else {
          p.pack = kPacksLargeBottle[rng.UniformInt(0, 4)];
        }
        p.category = category;
        p.vendor = vendor;
        // Long-tailed demand (log-uniform over [0.15, 15] bottles/day):
        // real catalogs are mostly slow movers, which is what lets the
        // paper's support filter cut 8197 candidates down to ~1800.
        p.base = 0.15 * std::exp(rng.Uniform(0.0, 4.6));
        products.push_back(p);
      }
    }
  }

  // Make the narrative-critical slices well supported: dedicated product
  // lines for BV=1000 (independent stores), BV=1750&P=6, BV=750&P=12.
  for (int extra = 0; extra < 48; ++extra) {
    Product p;
    p.category = "CAT" + std::to_string(rng.UniformInt(0, kNumCategories - 1));
    p.vendor = "VND" + std::to_string(rng.UniformInt(0, kNumVendors - 1));
    switch (extra % 3) {
      case 0:
        p.bv = 1000;
        p.pack = (extra % 6 < 3) ? 12 : 6;
        break;
      case 1:
        p.bv = 1750;
        p.pack = 6;
        break;
      default:
        p.bv = 750;
        p.pack = 12;
        break;
    }
    p.base = rng.Uniform(120.0, 300.0);
    products.push_back(p);
  }

  // Demand evolution: per-product log level accumulating phase rates, with
  // ~8% daily jitter and a Friday bump.
  for (const Product& p : products) {
    double log_mult = 0.0;
    int dow = 3;  // Thursday
    for (int day = 0; day < kLiquorDays; ++day) {
      log_mult += PhaseRate(p, PhaseOf(day));
      double value = p.base * std::exp(log_mult);
      value *= 1.0 + 0.08 * rng.NextGaussian();
      if (dow == 4) value *= 1.25;  // Friday
      value = std::max(0.0, std::floor(value));
      table->AppendRow(
          static_cast<TimeId>(day),
          {std::to_string(p.bv), std::to_string(p.pack), p.category,
           p.vendor},
          {value});
      dow = (dow + 1) % 5;  // business days only
    }
  }
  return table;
}

}  // namespace tsexplain
