#include "src/datagen/covid_sim.h"

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "src/common/check.h"
#include "src/common/rng.h"
#include "src/common/strings.h"

namespace tsexplain {
namespace {

// One epidemic wave: Gaussian bump of daily cases.
struct Wave {
  double peak_day;
  double width;     // standard deviation in days
  double amplitude; // cases/day at the peak
};

struct StateScript {
  const char* name;
  std::vector<Wave> waves;
};

double WaveValue(const Wave& w, double day) {
  const double z = (day - w.peak_day) / w.width;
  return w.amplitude * std::exp(-0.5 * z * z);
}

// Day offsets from 2020-01-22: 3-14 -> 52, 5-4 -> 103, 5-29 -> 128,
// 9-25 -> 247, 11-27 -> 310, 12-31 -> 344.
const StateScript kScriptedStates[] = {
    // Early outbreak + huge winter wave.
    {"CA", {{100, 25, 1800}, {190, 28, 8200}, {330, 22, 34000}}},
    // First US cases, modest later waves.
    {"WA", {{42, 16, 950}, {200, 30, 700}, {320, 25, 2600}}},
    // Spring epicenter + winter resurgence.
    {"NY", {{73, 14, 9900}, {250, 40, 900}, {332, 24, 10800}}},
    {"NJ", {{75, 14, 3600}, {334, 26, 4900}}},
    {"MA", {{82, 15, 2400}, {330, 26, 4200}}},
    // May transition leader + fall epicenter.
    {"IL", {{118, 16, 2900}, {300, 20, 11500}, {338, 30, 6000}}},
    // Summer belt + winter.
    {"TX", {{185, 22, 7400}, {300, 26, 6300}, {338, 24, 12600}}},
    {"FL", {{180, 18, 9200}, {335, 28, 9500}}},
    {"AZ", {{182, 16, 2900}, {336, 22, 5100}}},
    {"GA", {{188, 22, 3100}, {335, 26, 4600}}},
    // Fall midwest.
    {"WI", {{295, 18, 5400}, {330, 24, 3000}}},
    {"MN", {{305, 16, 4700}}},
    {"MI", {{85, 16, 1500}, {305, 18, 6100}}},
    {"OH", {{300, 24, 4900}, {338, 22, 5400}}},
    {"PA", {{84, 15, 1700}, {320, 24, 7200}}},
    {"IN", {{305, 22, 4100}}},
};

const char* kOtherStates[] = {
    "AL", "AK", "AR", "CO", "CT", "DE", "DC", "HI", "ID", "IA", "KS", "KY",
    "LA", "ME", "MD", "MS", "MO", "MT", "NE", "NV", "NH", "NM", "NC", "ND",
    "OK", "OR", "RI", "SC", "SD", "TN", "UT", "VT", "VA", "WV", "WY", "PR",
    "GU", "VI", "MP", "AS", "DL2", "DL3",
};

}  // namespace

std::unique_ptr<Table> MakeCovidTable(uint64_t seed) {
  Rng rng(seed);
  auto table = std::make_unique<Table>(Schema(
      "date", {"state"},
      {"daily_confirmed_cases", "total_confirmed_cases"}));

  for (int day = 0; day < kCovidDays; ++day) {
    table->AddTimeBucket(DayOffsetToDate(day, 1, 22, /*leap_year=*/true));
  }

  // Assemble the state list: 16 scripted + 42 background = 58.
  struct StateSeries {
    std::string name;
    std::vector<Wave> waves;
  };
  std::vector<StateSeries> states;
  for (const StateScript& script : kScriptedStates) {
    states.push_back({script.name, script.waves});
  }
  int background_index = 0;
  for (const char* name : kOtherStates) {
    // Background states: one or two small waves at random times, biased
    // late in the year like the real epidemic. The last few entries are
    // micro-territories whose counts stay below the support-filter ratio
    // everywhere (the paper's Table 6 keeps 54-55 of 58 candidates).
    std::vector<Wave> waves;
    const bool micro = background_index >= 38;  // last 4 territories
    const int num_waves = rng.NextBool(0.6) ? 2 : 1;
    for (int w = 0; w < num_waves; ++w) {
      Wave wave;
      wave.peak_day = rng.Uniform(120.0, 340.0);
      wave.width = rng.Uniform(14.0, 32.0);
      wave.amplitude =
          micro ? rng.Uniform(2.0, 10.0) : rng.Uniform(150.0, 1400.0);
      waves.push_back(wave);
    }
    states.push_back({name, waves});
    ++background_index;
  }
  TSE_CHECK_EQ(states.size(), static_cast<size_t>(kCovidStates));

  for (const StateSeries& state : states) {
    double total = 0.0;
    for (int day = 0; day < kCovidDays; ++day) {
      double daily = 0.0;
      for (const Wave& wave : state.waves) {
        daily += WaveValue(wave, static_cast<double>(day));
      }
      // Reporting noise: ~5% multiplicative jitter, floored at zero.
      daily *= 1.0 + 0.05 * rng.NextGaussian();
      daily = std::max(0.0, std::floor(daily));
      total += daily;
      table->AppendRow(static_cast<TimeId>(day), {state.name},
                       {daily, total});
    }
  }
  return table;
}

}  // namespace tsexplain
