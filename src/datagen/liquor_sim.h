// Iowa liquor-sales dataset simulator (substitution for the transaction
// dump the paper uses; see DESIGN.md).
//
// 128 business days from 2020-01-02 to 2020-06-30 and a product catalog
// over four explain-by attributes -- Bottle Volume BV (ml), Pack P,
// Category Name CN, Vendor Name VN -- sized so that conjunction enumeration
// up to order 3 lands in the paper's epsilon ballpark (8197 raw, ~1800
// after the support filter). Demand follows the pandemic narrative of
// Table 5: post-holiday dip to 1/20, large-pack (P=12/24/48) growth to
// early March, the BV=1000 collapse when bars/restaurants close in March
// (with BV=1750&P=6 and BV=750&P=12 rising), continued large-pack growth,
// the late-April reopening recovery of BV=1000 (first via P=12), and the
// early-summer plateau.

#ifndef TSEXPLAIN_DATAGEN_LIQUOR_SIM_H_
#define TSEXPLAIN_DATAGEN_LIQUOR_SIM_H_

#include <cstdint>
#include <memory>

#include "src/table/table.h"

namespace tsexplain {

/// Business days from 2020-01-02 to 2020-06-30 (paper: n = 128).
inline constexpr int kLiquorDays = 128;

/// Builds Liquor(date | BV, P, CN, VN | bottles_sold); one row per
/// (product, day) with the day's bottles sold for that product.
std::unique_ptr<Table> MakeLiquorTable(uint64_t seed = 1773);

}  // namespace tsexplain

#endif  // TSEXPLAIN_DATAGEN_LIQUOR_SIM_H_
