#include "src/datagen/synthetic.h"

#include <algorithm>
#include <string>

#include "src/common/check.h"
#include "src/common/rng.h"
#include "src/ts/time_series.h"

namespace tsexplain {
namespace {

// Samples `count` interior positions in [min_gap, n-1-min_gap] pairwise at
// least min_gap apart (rejection over Floyd sampling; the feasible region
// is wide for the paper's parameters).
std::vector<int> SampleCuts(Rng& rng, int n, int count, int min_gap) {
  TSE_CHECK_GE(count, 0);
  if (count == 0) return {};
  const int lo = min_gap;
  const int hi = n - 1 - min_gap;
  TSE_CHECK_LE(lo, hi);
  for (int attempt = 0; attempt < 1000; ++attempt) {
    std::vector<int> cuts = rng.SampleDistinctSorted(lo, hi, count);
    bool ok = true;
    for (size_t i = 1; i < cuts.size(); ++i) {
      if (cuts[i] - cuts[i - 1] < min_gap) {
        ok = false;
        break;
      }
    }
    if (ok) return cuts;
  }
  // Fallback: evenly spaced (still valid ground truth).
  std::vector<int> cuts(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    cuts[static_cast<size_t>(i)] = (n - 1) * (i + 1) / (count + 1);
  }
  return cuts;
}

}  // namespace

std::vector<double> PaperSnrLevels() {
  return {20.0, 25.0, 30.0, 35.0, 40.0, 45.0, 50.0};
}

std::unique_ptr<Table> TableFromCategorySeries(
    const std::vector<std::vector<double>>& series,
    const std::vector<std::string>& category_names,
    const std::vector<std::string>& time_labels) {
  TSE_CHECK_EQ(series.size(), category_names.size());
  TSE_CHECK(!series.empty());
  const size_t n = series[0].size();
  TSE_CHECK_EQ(time_labels.size(), n);

  auto table = std::make_unique<Table>(
      Schema("T", {"category"}, {"value"}));
  for (const std::string& label : time_labels) {
    table->AddTimeBucket(label);
  }
  for (size_t t = 0; t < n; ++t) {
    for (size_t c = 0; c < series.size(); ++c) {
      TSE_CHECK_EQ(series[c].size(), n);
      table->AppendRow(static_cast<TimeId>(t), {category_names[c]},
                       {series[c][t]});
    }
  }
  return table;
}

SyntheticDataset GenerateSynthetic(const SyntheticConfig& config) {
  TSE_CHECK_GE(config.length, 20);
  TSE_CHECK_GE(config.num_categories, 2);
  Rng rng(config.seed);
  const int n = config.length;
  const int num_cats = config.num_categories;

  // Draw the union of interior cuts first (pairwise >= min_gap apart); the
  // union is the ground truth and respects the paper's segment-length
  // distribution by construction.
  const int interior = config.num_interior_cuts > 0
                           ? config.num_interior_cuts
                           : static_cast<int>(rng.UniformInt(1, 9));
  const std::vector<int> union_cuts =
      SampleCuts(rng, n, interior, config.min_gap);

  SyntheticDataset ds;
  ds.category_cuts.resize(static_cast<size_t>(num_cats));

  // Sequential construction: walk the cuts in time order, maintaining each
  // category's current trend (direction, magnitude). At every cut at least
  // one category flips direction (every cut is necessary); an
  // invisible_cut_fraction of cuts flips a SECOND, opposite-trending
  // category with a canceling magnitude so the aggregate slope does not
  // change -- explanations evolve while the shape stays the same.
  std::vector<int> direction(static_cast<size_t>(num_cats));
  std::vector<double> magnitude(static_cast<size_t>(num_cats));
  for (int c = 0; c < num_cats; ++c) {
    direction[static_cast<size_t>(c)] = rng.NextBool() ? 1 : -1;
    magnitude[static_cast<size_t>(c)] = rng.Uniform(3.0, 10.0);
  }

  // slopes[c][t]: per-step slope of category c applied on step t-1 -> t.
  std::vector<std::vector<double>> slopes(
      static_cast<size_t>(num_cats), std::vector<double>(static_cast<size_t>(n), 0.0));
  size_t next_cut = 0;
  for (int t = 1; t < n; ++t) {
    if (next_cut < union_cuts.size() && union_cuts[next_cut] == t - 1) {
      ++next_cut;
      // Flip the owner category.
      const size_t owner =
          static_cast<size_t>(rng.UniformInt(0, num_cats - 1));
      const int old_dir = direction[owner];
      const double old_mag = magnitude[owner];
      direction[owner] = -old_dir;
      magnitude[owner] = rng.Uniform(3.0, 10.0);
      ds.category_cuts[owner].push_back(t - 1);

      // Optionally flip a second category so the aggregate kink cancels:
      // requires a partner currently trending OPPOSITE to the owner's old
      // direction; its new magnitude is chosen so the two slope changes
      // sum to zero.
      if (rng.NextDouble() < config.invisible_cut_fraction) {
        std::vector<size_t> partners;
        for (int c = 0; c < num_cats; ++c) {
          const size_t cc = static_cast<size_t>(c);
          if (cc != owner && direction[cc] == -old_dir) {
            partners.push_back(cc);
          }
        }
        if (!partners.empty()) {
          const size_t partner = partners[static_cast<size_t>(
              rng.UniformInt(0, static_cast<int64_t>(partners.size()) - 1))];
          // Owner's aggregate slope change: -old_dir*(old_mag + new_mag).
          // Partner flips from -old_dir*m_p to old_dir*m_p' with
          // m_p' = old_mag + new_mag - m_p (must stay positive).
          const double needed =
              old_mag + magnitude[owner] - magnitude[partner];
          if (needed >= 2.0 && needed <= 14.0) {
            direction[partner] = old_dir;
            magnitude[partner] = needed;
            ds.category_cuts[partner].push_back(t - 1);
          }
        }
      }
    }
    for (int c = 0; c < num_cats; ++c) {
      const size_t cc = static_cast<size_t>(c);
      slopes[cc][static_cast<size_t>(t)] = direction[cc] * magnitude[cc];
    }
  }

  // Integrate slopes into levels and add SNR-calibrated noise.
  ds.clean.resize(static_cast<size_t>(num_cats));
  ds.noisy.resize(static_cast<size_t>(num_cats));
  for (int c = 0; c < num_cats; ++c) {
    const size_t cc = static_cast<size_t>(c);
    std::vector<double>& clean = ds.clean[cc];
    clean.assign(static_cast<size_t>(n), 0.0);
    // Moderate DC level: the SNR is defined on raw signal power, so a
    // large offset would drown the trends in noise at low SNR.
    double level = rng.Uniform(50.0, 250.0);
    clean[0] = level;
    for (int t = 1; t < n; ++t) {
      level += slopes[cc][static_cast<size_t>(t)];
      clean[static_cast<size_t>(t)] = level;
    }
    const double sigma =
        NoiseSigmaForSnr(SignalPower(clean), config.snr_db);
    std::vector<double>& noisy = ds.noisy[cc];
    noisy.resize(static_cast<size_t>(n));
    for (int t = 0; t < n; ++t) {
      noisy[static_cast<size_t>(t)] =
          clean[static_cast<size_t>(t)] + rng.Gaussian(0.0, sigma);
    }
  }

  ds.ground_truth_cuts.push_back(0);
  for (int cut : union_cuts) ds.ground_truth_cuts.push_back(cut);
  ds.ground_truth_cuts.push_back(n - 1);

  std::vector<std::string> category_names;
  for (int c = 0; c < num_cats; ++c) {
    category_names.push_back("a" + std::to_string(c + 1));
  }
  std::vector<std::string> time_labels;
  for (int t = 0; t < n; ++t) time_labels.push_back(std::to_string(t));
  ds.table = TableFromCategorySeries(ds.noisy, category_names, time_labels);
  for (auto& cuts : ds.category_cuts) std::sort(cuts.begin(), cuts.end());
  return ds;
}

}  // namespace tsexplain
