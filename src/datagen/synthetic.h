// Synthetic dataset generator (paper section 4.2.1).
//
// Each dataset is one relation R(T, value, category) whose aggregated
// series is the sum over categories. Per category: random interior cutting
// points, a linear up- or down-trend per piece with ADJACENT PIECES FORCED
// TO OPPOSITE DIRECTIONS (this is what makes every cut necessary), and
// Gaussian noise calibrated to a target SNR in dB. The ground-truth
// segmentation of the aggregate is the union of the per-category cuts.
//
// The paper aggregates with count(sales); we materialize one row per
// (time, category) carrying the series value and aggregate with SUM, which
// feeds the pipeline the identical per-slice series at a fraction of the
// row count (row-level COUNT semantics are covered by the group-by tests).

#ifndef TSEXPLAIN_DATAGEN_SYNTHETIC_H_
#define TSEXPLAIN_DATAGEN_SYNTHETIC_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/table/table.h"

namespace tsexplain {

struct SyntheticConfig {
  int length = 100;             // n (paper: 100)
  int num_categories = 3;      // paper: a1, a2, a3
  double snr_db = 35.0;        // paper sweeps 20..50 in steps of 5
  /// Number of interior ground-truth cuts (K - 1); <= 0 draws uniformly
  /// from [1, 9] (paper: K varies 2..10).
  int num_interior_cuts = 0;
  /// Minimum distance between cuts and to the endpoints (paper's segment
  /// lengths range 6..84).
  int min_gap = 6;
  /// Fraction of cuts where TWO categories flip with canceling slopes, so
  /// the aggregate shows no kink: the mix of contributors changes while
  /// "the overall trend looks the same visually" (paper section 3.1.2).
  /// These cuts are invisible to shape-based segmentation by construction.
  double invisible_cut_fraction = 0.35;
  uint64_t seed = 1;
};

struct SyntheticDataset {
  std::unique_ptr<Table> table;  // schema: T | category | value
  /// Ground-truth cut positions including 0 and length-1.
  std::vector<int> ground_truth_cuts;
  /// Clean (pre-noise) per-category series.
  std::vector<std::vector<double>> clean;
  /// Noisy per-category series (what the table contains).
  std::vector<std::vector<double>> noisy;
  /// Interior cuts per category (metadata for Figure 4 statistics).
  std::vector<std::vector<int>> category_cuts;

  int ground_truth_k() const {
    return static_cast<int>(ground_truth_cuts.size()) - 1;
  }
};

/// Generates one dataset. Deterministic in config.seed.
SyntheticDataset GenerateSynthetic(const SyntheticConfig& config);

/// The paper's SNR grid {20, 25, ..., 50}.
std::vector<double> PaperSnrLevels();

/// Builds a Table from per-category series (one row per (t, category),
/// measure = series value). Shared with the simulators and tests.
std::unique_ptr<Table> TableFromCategorySeries(
    const std::vector<std::vector<double>>& series,
    const std::vector<std::string>& category_names,
    const std::vector<std::string>& time_labels);

}  // namespace tsexplain

#endif  // TSEXPLAIN_DATAGEN_SYNTHETIC_H_
