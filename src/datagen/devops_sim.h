// DevOps / observability dataset simulator: the fourth domain the paper's
// introduction motivates ("sectors ranging from finance, retail, IoT to
// DevOps"). Not part of the paper's evaluation -- used by the extra
// example and tests to exercise TSExplain on an SRE-shaped workload.
//
// Relation: per-minute error counts of a microservice fleet broken down by
// service (8), region (4), and version (rolling deployments). The scripted
// incident timeline:
//   minutes   0- 89: steady state (background error noise)
//   minutes  90-179: bad canary -- service=checkout & version=v2 errors
//                    spike in region=us-east only
//   minutes 180-299: rollback; a cascading dependency incident follows:
//                    service=payments errors rise in ALL regions
//   minutes 300-359: recovery
// TSExplain should segment at the phase boundaries and surface
// (service=checkout & version=v2 & region=us-east), then
// (service=payments), as the evolving contributors.

#ifndef TSEXPLAIN_DATAGEN_DEVOPS_SIM_H_
#define TSEXPLAIN_DATAGEN_DEVOPS_SIM_H_

#include <cstdint>
#include <memory>

#include "src/table/table.h"

namespace tsexplain {

/// Minutes covered by the simulation.
inline constexpr int kDevopsMinutes = 360;

/// Builds Errors(minute | service, region, version | errors).
std::unique_ptr<Table> MakeDevopsTable(uint64_t seed = 503);

}  // namespace tsexplain

#endif  // TSEXPLAIN_DATAGEN_DEVOPS_SIM_H_
