// CDC weekly-deaths dataset simulator (substitution for [4]; see
// DESIGN.md). Used by the time-varying-attribute discussion (paper
// section 8, Figure 18).
//
// Weekly deaths for weeks 14..52 of 2021 broken down by the time-varying
// attribute `vaccinated` (NO/YES) and the static attribute `age-group`
// (0-17 / 18-49 / 50+). The scripted story matches the paper: before week
// ~31 the rise is dominated by unvaccinated people of all ages; from week
// ~32 the dominant contributor shifts to age-group=50+ regardless of
// vaccination status.

#ifndef TSEXPLAIN_DATAGEN_DEATHS_SIM_H_
#define TSEXPLAIN_DATAGEN_DEATHS_SIM_H_

#include <cstdint>
#include <memory>

#include "src/table/table.h"

namespace tsexplain {

/// Weeks 14..52 of 2021 inclusive.
inline constexpr int kDeathsWeeks = 39;

/// Builds Deaths(week | vaccinated, age-group | deaths).
std::unique_ptr<Table> MakeDeathsTable(uint64_t seed = 2021);

}  // namespace tsexplain

#endif  // TSEXPLAIN_DATAGEN_DEATHS_SIM_H_
