#include "src/datagen/deaths_sim.h"

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "src/common/check.h"
#include "src/common/rng.h"

namespace tsexplain {
namespace {

// Gaussian bump helper.
double Bump(double week, double peak, double width, double amplitude) {
  const double z = (week - peak) / width;
  return amplitude * std::exp(-0.5 * z * z);
}

}  // namespace

std::unique_ptr<Table> MakeDeathsTable(uint64_t seed) {
  Rng rng(seed);
  auto table = std::make_unique<Table>(
      Schema("week", {"vaccinated", "age-group"}, {"deaths"}));
  for (int w = 0; w < kDeathsWeeks; ++w) {
    table->AddTimeBucket(std::to_string(14 + w));
  }

  const std::vector<std::string> ages = {"0-17", "18-49", "50+"};
  for (int w = 0; w < kDeathsWeeks; ++w) {
    const double week = 14.0 + w;
    for (const std::string& age : ages) {
      for (const std::string& vax : {std::string("NO"), std::string("YES")}) {
        double deaths = 0.0;
        const bool old_group = age == "50+";
        if (vax == "NO") {
          // Unvaccinated: large early plateau + delta wave (week ~18 and
          // ~35); all age groups exposed, elders more.
          const double scale = old_group ? 1.6 : (age == "18-49" ? 1.0 : 0.1);
          deaths += scale * (Bump(week, 18, 5, 5200) + Bump(week, 35, 5, 7800));
        } else {
          // Vaccinated: small early; from late summer elders' protection
          // wanes, so 50+ vaccinated deaths climb steeply into the winter.
          if (old_group) {
            deaths += Bump(week, 50, 9, 6800) + 250.0;
          } else {
            deaths += Bump(week, 36, 8, 350) + 60.0;
          }
        }
        // Late-season elder surge regardless of vaccination (week 40+).
        if (old_group) deaths += Bump(week, 49, 7, 5200);
        deaths *= 1.0 + 0.05 * rng.NextGaussian();
        deaths = std::max(0.0, std::floor(deaths));
        table->AppendRow(static_cast<TimeId>(w), {vax, age}, {deaths});
      }
    }
  }
  return table;
}

}  // namespace tsexplain
