// Utilities over ranked explanation lists: similarity between two
// segments' top lists and diversity diagnostics over a whole scheme
// (section 7.4's critique of the baselines: "the neighboring segments have
// the same explanations").

#ifndef TSEXPLAIN_DIFF_EXPLANATION_SET_H_
#define TSEXPLAIN_DIFF_EXPLANATION_SET_H_

#include <vector>

#include "src/diff/cascading_analysts.h"

namespace tsexplain {

/// True when both ranked lists contain the same ids in the same order.
bool SameRankedExplanations(const std::vector<ExplId>& a,
                            const std::vector<ExplId>& b);

/// Jaccard similarity of the two lists' id sets (order-insensitive);
/// both empty -> 1.
double ExplanationJaccard(const std::vector<ExplId>& a,
                          const std::vector<ExplId>& b);

/// Rank-biased overlap-style similarity: weights agreement at rank r by
/// 1/log2(r+2) on both sides, normalized to [0, 1]; identical lists -> 1,
/// disjoint -> 0. Stricter than Jaccard about the ordering.
double RankWeightedOverlap(const std::vector<ExplId>& a,
                           const std::vector<ExplId>& b);

/// Diversity of a segmentation's explanation sequence: 1 - (number of
/// adjacent identical-ranked-list pairs) / (number of adjacent pairs).
/// A single segment scores 1.
double SchemeExplanationDiversity(
    const std::vector<std::vector<ExplId>>& per_segment_ids);

}  // namespace tsexplain

#endif  // TSEXPLAIN_DIFF_EXPLANATION_SET_H_
