// Candidate-explanation enumeration and the drill-down lattice.
//
// Enumerates every conjunction of order <= max_order over the explain-by
// attributes that actually occurs in the relation (empty slices can never
// carry a diff score) and assigns each a dense ExplId. Also materializes the
// drill-down structure the Cascading Analysts algorithm walks: for each cell
// and each unconstrained attribute, the list of child cells obtained by
// adding one predicate on that attribute (paper Figure 8).

#ifndef TSEXPLAIN_DIFF_EXPLANATION_REGISTRY_H_
#define TSEXPLAIN_DIFF_EXPLANATION_REGISTRY_H_

#include <unordered_map>
#include <vector>

#include "src/diff/explanation.h"
#include "src/table/table.h"

namespace tsexplain {

/// Children of a cell along one drill-down attribute.
struct ChildGroup {
  AttrId attr;
  std::vector<ExplId> children;
};

/// Immutable-after-build candidate set + drill-down lattice.
class ExplanationRegistry {
 public:
  /// Creates an empty registry (no candidates); assign from Build().
  ExplanationRegistry() = default;

  /// Enumerates all order-<=max_order conjunctions over `explain_by` that
  /// occur in `table`. max_order is the paper's beta-bar (default 3 there).
  static ExplanationRegistry Build(const Table& table,
                                   const std::vector<AttrId>& explain_by,
                                   int max_order);

  /// Total number of candidate explanations (the paper's epsilon).
  size_t num_explanations() const { return cells_.size(); }

  const Explanation& explanation(ExplId id) const;

  /// Id for a conjunction, or kInvalidExplId if it never occurs in data.
  ExplId Lookup(const Explanation& e) const;

  /// Drill-down children of the root (order-1 cells), grouped by attribute.
  const std::vector<ChildGroup>& root_children() const {
    return root_children_;
  }

  /// Drill-down children of a cell, grouped by attribute not yet
  /// constrained by the cell. Cells at max_order have no children.
  const std::vector<ChildGroup>& children(ExplId id) const;

  const std::vector<AttrId>& explain_by() const { return explain_by_; }
  int max_order() const { return max_order_; }

 private:
  std::vector<AttrId> explain_by_;
  int max_order_ = 0;
  std::vector<Explanation> cells_;
  std::unordered_map<Explanation, ExplId, ExplanationHasher> index_;
  std::vector<ChildGroup> root_children_;
  std::vector<std::vector<ChildGroup>> children_;  // aligned with cells_
};

}  // namespace tsexplain

#endif  // TSEXPLAIN_DIFF_EXPLANATION_REGISTRY_H_
