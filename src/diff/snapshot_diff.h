// Two-relations diff as a stand-alone public API (paper section 3.1).
//
// TSExplain's building block, exposed directly: given a relation, a
// control timestamp and a test timestamp, return the top-m non-overlapping
// explanations of the difference -- what PowerBI's "key influencers" or
// the diff operator of Abuzaid et al. answer for a pair of snapshots.
// Downstream users who only need "why did yesterday differ from today"
// can call this without touching segmentation.

#ifndef TSEXPLAIN_DIFF_SNAPSHOT_DIFF_H_
#define TSEXPLAIN_DIFF_SNAPSHOT_DIFF_H_

#include <string>
#include <vector>

#include "src/diff/diff_metrics.h"
#include "src/table/group_by.h"
#include "src/table/table.h"

namespace tsexplain {

struct SnapshotDiffOptions {
  AggregateFunction aggregate = AggregateFunction::kSum;
  /// Measure column name; empty = COUNT(*).
  std::string measure;
  /// Explain-by attribute names; empty = all dimensions.
  std::vector<std::string> explain_by;
  int max_order = 3;
  int m = 3;
  DiffMetricKind metric = DiffMetricKind::kAbsoluteChange;
  /// Support filter ratio; <= 0 disables filtering.
  double filter_ratio = 0.0;
  /// Collapse equal-slice conjunctions (hierarchies).
  bool dedupe_redundant = true;
};

struct SnapshotDiffItem {
  std::string description;
  double gamma = 0.0;
  int tau = 0;
  /// Slice aggregate at the control / test timestamps (context for UIs).
  double control_value = 0.0;
  double test_value = 0.0;
};

struct SnapshotDiffResult {
  /// Ranked top-m non-overlapping explanations of the difference.
  std::vector<SnapshotDiffItem> top;
  /// f(M, R) at the two endpoints.
  double control_total = 0.0;
  double test_total = 0.0;
};

/// Explains the difference between the relation at time buckets
/// `control_time` and `test_time` (labels as registered in the table).
/// Aborts on unknown labels/columns (consistent with the library's
/// invariant-checking style).
SnapshotDiffResult SnapshotDiff(const Table& table,
                                const std::string& control_time,
                                const std::string& test_time,
                                const SnapshotDiffOptions& options = {});

/// Index-based variant (0-based time buckets).
SnapshotDiffResult SnapshotDiffAt(const Table& table, int control_time,
                                  int test_time,
                                  const SnapshotDiffOptions& options = {});

}  // namespace tsexplain

#endif  // TSEXPLAIN_DIFF_SNAPSHOT_DIFF_H_
