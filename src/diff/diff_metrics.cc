#include "src/diff/diff_metrics.h"

#include <algorithm>
#include <cmath>

#include "src/common/check.h"

namespace tsexplain {
namespace {

constexpr double kEps = kDiffEps;

int Sign(double x) {
  if (x > kEps) return 1;
  if (x < -kEps) return -1;
  return 0;
}

}  // namespace

DiffScore ComputeDiff(DiffMetricKind kind, double f_test, double f_control,
                      double f_test_wo, double f_control_wo) {
  const double delta = f_test - f_control;
  const double delta_wo = f_test_wo - f_control_wo;
  const double contribution = delta - delta_wo;

  DiffScore score;
  score.tau = Sign(contribution);
  switch (kind) {
    case DiffMetricKind::kAbsoluteChange:
      score.gamma = std::abs(contribution);
      break;
    case DiffMetricKind::kRelativeChange:
      score.gamma =
          std::abs(delta) < kEps ? 0.0 : std::abs(contribution / delta);
      break;
    case DiffMetricKind::kRiskRatio: {
      // Relative rate of change of the slice vs. of the whole.
      const double slice_base = f_control - f_control_wo;
      const double overall_rate =
          std::abs(f_control) < kEps ? 0.0 : delta / f_control;
      const double slice_rate =
          std::abs(slice_base) < kEps ? 0.0 : contribution / slice_base;
      if (std::abs(overall_rate) < kEps) {
        score.gamma = 0.0;
      } else {
        score.gamma = std::min(std::abs(slice_rate / overall_rate),
                               kRiskRatioCap);
      }
      break;
    }
  }
  return score;
}

const char* DiffMetricName(DiffMetricKind kind) {
  switch (kind) {
    case DiffMetricKind::kAbsoluteChange:
      return "absolute-change";
    case DiffMetricKind::kRelativeChange:
      return "relative-change";
    case DiffMetricKind::kRiskRatio:
      return "risk-ratio";
  }
  TSE_CHECK(false) << "unknown metric";
  return "";
}

}  // namespace tsexplain
