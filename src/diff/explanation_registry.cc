#include "src/diff/explanation_registry.h"

#include <algorithm>

#include "src/common/check.h"

namespace tsexplain {
namespace {

// Enumerates all non-empty subsets of `explain_by` with size <= max_order,
// as index lists into explain_by.
std::vector<std::vector<size_t>> AttrSubsets(size_t num_attrs,
                                             int max_order) {
  std::vector<std::vector<size_t>> subsets;
  std::vector<size_t> current;
  // Depth-first enumeration in lexicographic order.
  auto recurse = [&](auto&& self, size_t start) -> void {
    if (!current.empty()) subsets.push_back(current);
    if (static_cast<int>(current.size()) == max_order) return;
    for (size_t i = start; i < num_attrs; ++i) {
      current.push_back(i);
      self(self, i + 1);
      current.pop_back();
    }
  };
  recurse(recurse, 0);
  return subsets;
}

}  // namespace

ExplanationRegistry ExplanationRegistry::Build(
    const Table& table, const std::vector<AttrId>& explain_by,
    int max_order) {
  TSE_CHECK(!explain_by.empty());
  TSE_CHECK_GE(max_order, 1);
  for (AttrId a : explain_by) {
    TSE_CHECK_GE(a, 0);
    TSE_CHECK_LT(static_cast<size_t>(a), table.schema().num_dimensions());
  }

  ExplanationRegistry reg;
  reg.explain_by_ = explain_by;
  reg.max_order_ = max_order;

  const auto subsets = AttrSubsets(explain_by.size(), max_order);

  // Pass 1: find every occurring cell.
  std::vector<Predicate> preds;
  for (size_t row = 0; row < table.num_rows(); ++row) {
    for (const auto& subset : subsets) {
      preds.clear();
      for (size_t idx : subset) {
        const AttrId attr = explain_by[idx];
        preds.push_back(Predicate{attr, table.dim(row, attr)});
      }
      Explanation cell = Explanation::FromPredicates(preds);
      auto [it, inserted] = reg.index_.try_emplace(
          std::move(cell), static_cast<ExplId>(reg.cells_.size()));
      if (inserted) reg.cells_.push_back(it->first);
    }
  }

  // Pass 2: build drill-down links. Every cell of order k >= 1 is a child
  // of each cell obtained by dropping one of its predicates.
  reg.children_.resize(reg.cells_.size());
  std::vector<std::unordered_map<AttrId, std::vector<ExplId>>> tmp(
      reg.cells_.size());
  std::unordered_map<AttrId, std::vector<ExplId>> root_tmp;
  for (ExplId id = 0; id < static_cast<ExplId>(reg.cells_.size()); ++id) {
    const Explanation& cell = reg.cells_[static_cast<size_t>(id)];
    for (const Predicate& p : cell.predicates()) {
      if (cell.order() == 1) {
        root_tmp[p.attr].push_back(id);
      } else {
        const Explanation parent = cell.WithoutAttr(p.attr);
        const ExplId parent_id = reg.Lookup(parent);
        TSE_CHECK_NE(parent_id, kInvalidExplId)
            << "parent cell missing; enumeration must be downward closed";
        tmp[static_cast<size_t>(parent_id)][p.attr].push_back(id);
      }
    }
  }

  auto materialize =
      [](std::unordered_map<AttrId, std::vector<ExplId>>& groups) {
        std::vector<ChildGroup> out;
        out.reserve(groups.size());
        for (auto& [attr, children] : groups) {
          std::sort(children.begin(), children.end());
          out.push_back(ChildGroup{attr, std::move(children)});
        }
        std::sort(out.begin(), out.end(),
                  [](const ChildGroup& a, const ChildGroup& b) {
                    return a.attr < b.attr;
                  });
        return out;
      };

  reg.root_children_ = materialize(root_tmp);
  for (size_t i = 0; i < reg.cells_.size(); ++i) {
    reg.children_[i] = materialize(tmp[i]);
  }
  return reg;
}

const Explanation& ExplanationRegistry::explanation(ExplId id) const {
  TSE_CHECK_GE(id, 0);
  TSE_CHECK_LT(static_cast<size_t>(id), cells_.size());
  return cells_[static_cast<size_t>(id)];
}

ExplId ExplanationRegistry::Lookup(const Explanation& e) const {
  auto it = index_.find(e);
  return it == index_.end() ? kInvalidExplId : it->second;
}

const std::vector<ChildGroup>& ExplanationRegistry::children(
    ExplId id) const {
  TSE_CHECK_GE(id, 0);
  TSE_CHECK_LT(static_cast<size_t>(id), children_.size());
  return children_[static_cast<size_t>(id)];
}

}  // namespace tsexplain
