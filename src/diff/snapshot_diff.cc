#include "src/diff/snapshot_diff.h"

#include <algorithm>

#include "src/common/check.h"
#include "src/cube/canonical_mask.h"
#include "src/cube/explanation_cube.h"
#include "src/cube/support_filter.h"
#include "src/diff/guess_verify.h"

namespace tsexplain {
namespace {

int FindTimeBucket(const Table& table, const std::string& label) {
  const auto& labels = table.time_labels();
  for (size_t t = 0; t < labels.size(); ++t) {
    if (labels[t] == label) return static_cast<int>(t);
  }
  TSE_CHECK(false) << "unknown time bucket: " << label;
  return -1;
}

}  // namespace

SnapshotDiffResult SnapshotDiff(const Table& table,
                                const std::string& control_time,
                                const std::string& test_time,
                                const SnapshotDiffOptions& options) {
  return SnapshotDiffAt(table, FindTimeBucket(table, control_time),
                        FindTimeBucket(table, test_time), options);
}

SnapshotDiffResult SnapshotDiffAt(const Table& table, int control_time,
                                  int test_time,
                                  const SnapshotDiffOptions& options) {
  TSE_CHECK_GE(control_time, 0);
  TSE_CHECK_GE(test_time, 0);
  TSE_CHECK_LT(static_cast<size_t>(control_time), table.num_time_buckets());
  TSE_CHECK_LT(static_cast<size_t>(test_time), table.num_time_buckets());
  TSE_CHECK_GE(options.m, 1);

  std::vector<AttrId> attrs;
  if (options.explain_by.empty()) {
    for (size_t d = 0; d < table.schema().num_dimensions(); ++d) {
      attrs.push_back(static_cast<AttrId>(d));
    }
  } else {
    for (const std::string& name : options.explain_by) {
      const AttrId attr = table.schema().DimensionIndex(name);
      TSE_CHECK_NE(attr, kInvalidAttrId)
          << "unknown explain-by dimension: " << name;
      attrs.push_back(attr);
    }
  }
  const int measure_idx =
      options.measure.empty() ? -1
                              : table.schema().MeasureIndex(options.measure);
  if (!options.measure.empty()) {
    TSE_CHECK_GE(measure_idx, 0) << "unknown measure: " << options.measure;
  }

  const ExplanationRegistry registry =
      ExplanationRegistry::Build(table, attrs, options.max_order);
  const ExplanationCube cube(table, registry, options.aggregate,
                             measure_idx);

  std::vector<bool> mask;
  if (options.dedupe_redundant) {
    mask = ComputeCanonicalMask(cube, registry);
  }
  if (options.filter_ratio > 0.0) {
    std::vector<bool> filter =
        ComputeSupportFilter(cube, options.filter_ratio);
    mask = mask.empty() ? std::move(filter) : AndMasks(mask, filter);
  }

  // Module (a) for the single segment (batched SoA sweep), then CA.
  std::vector<double> gamma(registry.num_explanations(), 0.0);
  cube.ScoreAll(options.metric, static_cast<size_t>(control_time),
                static_cast<size_t>(test_time),
                mask.empty() ? nullptr : &mask, &gamma);
  CascadingAnalysts solver(registry);
  const TopExplanations top =
      solver.TopM(gamma, options.m, mask.empty() ? nullptr : &mask);

  SnapshotDiffResult result;
  result.control_total = cube.Overall(static_cast<size_t>(control_time));
  result.test_total = cube.Overall(static_cast<size_t>(test_time));
  for (size_t r = 0; r < top.ids.size(); ++r) {
    SnapshotDiffItem item;
    const ExplId id = top.ids[r];
    item.description = registry.explanation(id).ToString(table);
    item.gamma = top.gammas[r];
    item.tau = cube.Score(options.metric, id,
                          static_cast<size_t>(control_time),
                          static_cast<size_t>(test_time))
                   .tau;
    item.control_value =
        cube.SliceValue(id, static_cast<size_t>(control_time));
    item.test_value = cube.SliceValue(id, static_cast<size_t>(test_time));
    result.top.push_back(std::move(item));
  }
  return result;
}

}  // namespace tsexplain
