#include "src/diff/explanation_set.h"

#include <algorithm>
#include <cmath>
#include <set>

namespace tsexplain {

bool SameRankedExplanations(const std::vector<ExplId>& a,
                            const std::vector<ExplId>& b) {
  return a == b;
}

double ExplanationJaccard(const std::vector<ExplId>& a,
                          const std::vector<ExplId>& b) {
  if (a.empty() && b.empty()) return 1.0;
  const std::set<ExplId> sa(a.begin(), a.end());
  const std::set<ExplId> sb(b.begin(), b.end());
  size_t shared = 0;
  for (ExplId id : sa) {
    if (sb.count(id) > 0) ++shared;
  }
  const size_t unioned = sa.size() + sb.size() - shared;
  return unioned == 0 ? 1.0
                      : static_cast<double>(shared) /
                            static_cast<double>(unioned);
}

double RankWeightedOverlap(const std::vector<ExplId>& a,
                           const std::vector<ExplId>& b) {
  if (a.empty() && b.empty()) return 1.0;
  auto weight = [](size_t rank) {
    return 1.0 / std::log2(static_cast<double>(rank) + 2.0);
  };
  // Weighted agreement: for each id in a, credit its a-rank weight if b
  // contains it, scaled by how closely the ranks agree.
  double total = 0.0;
  double agree = 0.0;
  for (size_t r = 0; r < a.size(); ++r) {
    total += weight(r);
    const auto it = std::find(b.begin(), b.end(), a[r]);
    if (it != b.end()) {
      const size_t rb = static_cast<size_t>(it - b.begin());
      agree += std::min(weight(r), weight(rb));
    }
  }
  for (size_t r = 0; r < b.size(); ++r) total += weight(r);
  for (size_t r = 0; r < b.size(); ++r) {
    const auto it = std::find(a.begin(), a.end(), b[r]);
    if (it != a.end()) {
      const size_t ra = static_cast<size_t>(it - a.begin());
      agree += std::min(weight(r), weight(ra));
    }
  }
  return total == 0.0 ? 1.0 : agree / total;
}

double SchemeExplanationDiversity(
    const std::vector<std::vector<ExplId>>& per_segment_ids) {
  if (per_segment_ids.size() <= 1) return 1.0;
  size_t identical = 0;
  for (size_t i = 0; i + 1 < per_segment_ids.size(); ++i) {
    if (SameRankedExplanations(per_segment_ids[i],
                               per_segment_ids[i + 1])) {
      ++identical;
    }
  }
  const size_t pairs = per_segment_ids.size() - 1;
  return 1.0 - static_cast<double>(identical) / static_cast<double>(pairs);
}

}  // namespace tsexplain
