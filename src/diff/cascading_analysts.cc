#include "src/diff/cascading_analysts.h"

#include <algorithm>

#include "src/common/check.h"

namespace tsexplain {
namespace {

constexpr double kScoreEps = 1e-12;

}  // namespace

CascadingAnalysts::CascadingAnalysts(const ExplanationRegistry& registry)
    : registry_(registry) {}

TopExplanations CascadingAnalysts::TopM(const std::vector<double>& gamma,
                                        int m,
                                        const std::vector<bool>* selectable) {
  TSE_CHECK_GE(m, 1);
  TSE_CHECK_EQ(gamma.size(), registry_.num_explanations());
  if (selectable != nullptr) {
    TSE_CHECK_EQ(selectable->size(), registry_.num_explanations());
  }

  gamma_ = &gamma;
  selectable_ = selectable;
  m_ = m;
  nodes_visited_ = 0;

  // (Re)size the epoch-stamped memo table.
  if (m > m_cap_ || memo_.size() <
                        registry_.num_explanations() *
                            static_cast<size_t>(m + 1)) {
    m_cap_ = std::max(m, m_cap_);
    memo_.assign(registry_.num_explanations() *
                     static_cast<size_t>(m_cap_ + 1),
                 0.0);
    memo_epoch_.assign(memo_.size(), 0);
    epoch_ = 0;
  }
  ++epoch_;
  if (epoch_ == 0) {  // wrapped: stamps are stale, reset
    std::fill(memo_epoch_.begin(), memo_epoch_.end(), 0u);
    epoch_ = 1;
  }

  TopExplanations result;
  result.best.resize(static_cast<size_t>(m) + 1, 0.0);
  // The root cannot select itself; Best[q] is the optimal drill-down value.
  // One knapsack pass per child group yields all quota levels at once, so we
  // simply evaluate per q (m is tiny; clarity over micro-optimization).
  for (int q = 1; q <= m; ++q) {
    result.best[static_cast<size_t>(q)] =
        BestDrillDown(registry_.root_children(), q);
  }

  ReconstructDrillDown(registry_.root_children(), m, &result.ids);
  SortByGammaDesc(gamma, &result.ids);
  result.gammas.reserve(result.ids.size());
  for (ExplId id : result.ids) {
    result.gammas.push_back(gamma[static_cast<size_t>(id)]);
  }
  return result;
}

double CascadingAnalysts::Solve(ExplId cell, int q) {
  if (q == 0) return 0.0;
  const size_t slot =
      static_cast<size_t>(cell) * static_cast<size_t>(m_cap_ + 1) +
      static_cast<size_t>(q);
  if (memo_epoch_[slot] == epoch_) return memo_[slot];
  ++nodes_visited_;

  const bool can_select =
      selectable_ == nullptr || (*selectable_)[static_cast<size_t>(cell)];
  double best = 0.0;
  if (can_select) {
    const double g = (*gamma_)[static_cast<size_t>(cell)];
    if (g > kScoreEps) best = g;
  }
  const std::vector<ChildGroup>& groups = registry_.children(cell);
  if (!groups.empty()) {
    best = std::max(best, BestDrillDown(groups, q));
  }

  memo_epoch_[slot] = epoch_;
  memo_[slot] = best;
  return best;
}

double CascadingAnalysts::BestDrillDown(const std::vector<ChildGroup>& groups,
                                        int q) {
  double best = 0.0;
  std::vector<double> dp(static_cast<size_t>(q) + 1);
  for (const ChildGroup& group : groups) {
    // Knapsack over this dimension's children: dp[x] = best total score
    // spending exactly <= x quota on the children seen so far.
    std::fill(dp.begin(), dp.end(), 0.0);
    for (ExplId child : group.children) {
      // Children are independent subtrees; descending x keeps each child
      // used at most once (bounded knapsack over quota).
      for (int x = q; x >= 1; --x) {
        double best_here = dp[static_cast<size_t>(x)];
        for (int y = 1; y <= x; ++y) {
          const double candidate =
              dp[static_cast<size_t>(x - y)] + Solve(child, y);
          best_here = std::max(best_here, candidate);
        }
        dp[static_cast<size_t>(x)] = best_here;
      }
    }
    best = std::max(best, dp[static_cast<size_t>(q)]);
  }
  return best;
}

void CascadingAnalysts::Reconstruct(ExplId cell, int q,
                                    std::vector<ExplId>* out) {
  if (q == 0) return;
  const double value = Solve(cell, q);
  if (value <= kScoreEps) return;  // nothing selected in this subtree

  const bool can_select =
      selectable_ == nullptr || (*selectable_)[static_cast<size_t>(cell)];
  if (can_select) {
    const double g = (*gamma_)[static_cast<size_t>(cell)];
    if (g > kScoreEps && g >= value - kScoreEps) {
      out->push_back(cell);
      return;
    }
  }
  ReconstructDrillDown(registry_.children(cell), q, out);
}

void CascadingAnalysts::ReconstructDrillDown(
    const std::vector<ChildGroup>& groups, int q, std::vector<ExplId>* out) {
  if (q == 0 || groups.empty()) return;
  const double target = BestDrillDown(groups, q);
  if (target <= kScoreEps) return;

  // Find a group achieving the target, then re-run its knapsack while
  // recording the quota granted to each child.
  for (const ChildGroup& group : groups) {
    const size_t num_children = group.children.size();
    std::vector<std::vector<double>> dp(
        num_children + 1, std::vector<double>(static_cast<size_t>(q) + 1));
    for (size_t i = 0; i < num_children; ++i) {
      const ExplId child = group.children[i];
      for (int x = 0; x <= q; ++x) {
        double best_here = dp[i][static_cast<size_t>(x)];
        for (int y = 1; y <= x; ++y) {
          best_here = std::max(
              best_here, dp[i][static_cast<size_t>(x - y)] + Solve(child, y));
        }
        dp[i + 1][static_cast<size_t>(x)] = best_here;
      }
    }
    if (dp[num_children][static_cast<size_t>(q)] < target - kScoreEps) {
      continue;  // this dimension does not achieve the optimum
    }
    // Walk back through the knapsack to recover per-child quotas.
    int x = q;
    for (size_t i = num_children; i > 0; --i) {
      const ExplId child = group.children[i - 1];
      int chosen_y = 0;
      for (int y = 0; y <= x; ++y) {
        const double candidate =
            dp[i - 1][static_cast<size_t>(x - y)] + Solve(child, y);
        if (candidate >= dp[i][static_cast<size_t>(x)] - kScoreEps) {
          chosen_y = y;
          break;  // smallest quota achieving the value -> fewest selections
        }
      }
      if (chosen_y > 0) Reconstruct(child, chosen_y, out);
      x -= chosen_y;
    }
    return;
  }
  TSE_CHECK(false) << "reconstruction failed to match the optimal value";
}

TopExplanations CascadingAnalysts::TopMRestricted(
    const std::vector<double>& gamma, int m,
    const std::vector<ExplId>& candidates) {
  TSE_CHECK_GE(m, 1);
  TSE_CHECK_EQ(gamma.size(), registry_.num_explanations());
  gamma_ = &gamma;
  m_ = m;
  nodes_visited_ = 0;

  // Build the sub-lattice: candidates plus every ancestor cell (all
  // non-empty sub-conjunctions; at most 2^order - 1 per candidate).
  LocalLattice lattice;
  lattice.index.reserve(candidates.size() * 4);
  auto add_cell = [&lattice](ExplId id, bool is_candidate) -> int {
    auto [it, inserted] =
        lattice.index.try_emplace(id, static_cast<int>(lattice.cells.size()));
    if (inserted) {
      lattice.cells.push_back(id);
      lattice.selectable.push_back(is_candidate);
    } else if (is_candidate) {
      lattice.selectable[static_cast<size_t>(it->second)] = true;
    }
    return it->second;
  };
  for (ExplId candidate : candidates) {
    add_cell(candidate, /*is_candidate=*/true);
    const Explanation& cell = registry_.explanation(candidate);
    const auto& preds = cell.predicates();
    const uint32_t limit = 1u << preds.size();
    for (uint32_t mask = 1; mask + 1 < limit; ++mask) {  // proper subsets
      std::vector<Predicate> subset;
      for (size_t i = 0; i < preds.size(); ++i) {
        if (mask & (1u << i)) subset.push_back(preds[i]);
      }
      const ExplId ancestor =
          registry_.Lookup(Explanation::FromPredicates(std::move(subset)));
      TSE_CHECK_NE(ancestor, kInvalidExplId);
      add_cell(ancestor, /*is_candidate=*/false);
    }
  }

  // Rebuild drill-down links within the sub-lattice (same construction as
  // the registry, restricted to relevant cells).
  lattice.children.resize(lattice.cells.size());
  std::vector<std::unordered_map<AttrId, std::vector<ExplId>>> tmp(
      lattice.cells.size());
  std::unordered_map<AttrId, std::vector<ExplId>> root_tmp;
  for (size_t local = 0; local < lattice.cells.size(); ++local) {
    const ExplId id = lattice.cells[local];
    const Explanation& cell = registry_.explanation(id);
    for (const Predicate& p : cell.predicates()) {
      if (cell.order() == 1) {
        root_tmp[p.attr].push_back(id);
      } else {
        const ExplId parent_id =
            registry_.Lookup(cell.WithoutAttr(p.attr));
        auto it = lattice.index.find(parent_id);
        TSE_CHECK(it != lattice.index.end());
        tmp[static_cast<size_t>(it->second)][p.attr].push_back(id);
      }
    }
  }
  auto materialize =
      [](std::unordered_map<AttrId, std::vector<ExplId>>& groups) {
        std::vector<ChildGroup> out;
        out.reserve(groups.size());
        for (auto& [attr, children] : groups) {
          std::sort(children.begin(), children.end());
          out.push_back(ChildGroup{attr, std::move(children)});
        }
        std::sort(out.begin(), out.end(),
                  [](const ChildGroup& a, const ChildGroup& b) {
                    return a.attr < b.attr;
                  });
        return out;
      };
  lattice.root_children = materialize(root_tmp);
  for (size_t local = 0; local < lattice.cells.size(); ++local) {
    lattice.children[local] = materialize(tmp[local]);
  }

  // DP over the sub-lattice. memo[local * (m+1) + q]; -1 = unset.
  std::vector<double> memo(
      lattice.cells.size() * static_cast<size_t>(m + 1), -1.0);
  TopExplanations result;
  result.best.resize(static_cast<size_t>(m) + 1, 0.0);
  for (int q = 1; q <= m; ++q) {
    result.best[static_cast<size_t>(q)] =
        BestDrillDownLocal(lattice, lattice.root_children, q, &memo);
  }
  ReconstructDrillDownLocal(lattice, lattice.root_children, m, &memo,
                            &result.ids);
  SortByGammaDesc(gamma, &result.ids);
  result.gammas.reserve(result.ids.size());
  for (ExplId id : result.ids) {
    result.gammas.push_back(gamma[static_cast<size_t>(id)]);
  }
  return result;
}

double CascadingAnalysts::SolveLocal(const LocalLattice& lattice, int local,
                                     int q, std::vector<double>* memo) {
  if (q == 0) return 0.0;
  const size_t slot = static_cast<size_t>(local) *
                          static_cast<size_t>(m_ + 1) +
                      static_cast<size_t>(q);
  if ((*memo)[slot] >= 0.0) return (*memo)[slot];
  ++nodes_visited_;

  double best = 0.0;
  if (lattice.selectable[static_cast<size_t>(local)]) {
    const double g =
        (*gamma_)[static_cast<size_t>(lattice.cells[static_cast<size_t>(
            local)])];
    if (g > kScoreEps) best = g;
  }
  const std::vector<ChildGroup>& groups =
      lattice.children[static_cast<size_t>(local)];
  if (!groups.empty()) {
    best = std::max(best, BestDrillDownLocal(lattice, groups, q, memo));
  }
  (*memo)[slot] = best;
  return best;
}

double CascadingAnalysts::BestDrillDownLocal(
    const LocalLattice& lattice, const std::vector<ChildGroup>& groups,
    int q, std::vector<double>* memo) {
  double best = 0.0;
  std::vector<double> dp(static_cast<size_t>(q) + 1);
  for (const ChildGroup& group : groups) {
    std::fill(dp.begin(), dp.end(), 0.0);
    for (ExplId child : group.children) {
      const int child_local = lattice.index.at(child);
      for (int x = q; x >= 1; --x) {
        double best_here = dp[static_cast<size_t>(x)];
        for (int y = 1; y <= x; ++y) {
          best_here = std::max(best_here,
                               dp[static_cast<size_t>(x - y)] +
                                   SolveLocal(lattice, child_local, y, memo));
        }
        dp[static_cast<size_t>(x)] = best_here;
      }
    }
    best = std::max(best, dp[static_cast<size_t>(q)]);
  }
  return best;
}

void CascadingAnalysts::ReconstructLocal(const LocalLattice& lattice,
                                         int local, int q,
                                         std::vector<double>* memo,
                                         std::vector<ExplId>* out) {
  if (q == 0) return;
  const double value = SolveLocal(lattice, local, q, memo);
  if (value <= kScoreEps) return;
  if (lattice.selectable[static_cast<size_t>(local)]) {
    const double g =
        (*gamma_)[static_cast<size_t>(lattice.cells[static_cast<size_t>(
            local)])];
    if (g > kScoreEps && g >= value - kScoreEps) {
      out->push_back(lattice.cells[static_cast<size_t>(local)]);
      return;
    }
  }
  ReconstructDrillDownLocal(lattice,
                            lattice.children[static_cast<size_t>(local)], q,
                            memo, out);
}

void CascadingAnalysts::ReconstructDrillDownLocal(
    const LocalLattice& lattice, const std::vector<ChildGroup>& groups,
    int q, std::vector<double>* memo, std::vector<ExplId>* out) {
  if (q == 0 || groups.empty()) return;
  const double target = BestDrillDownLocal(lattice, groups, q, memo);
  if (target <= kScoreEps) return;

  for (const ChildGroup& group : groups) {
    const size_t num_children = group.children.size();
    std::vector<std::vector<double>> dp(
        num_children + 1, std::vector<double>(static_cast<size_t>(q) + 1));
    for (size_t i = 0; i < num_children; ++i) {
      const int child_local = lattice.index.at(group.children[i]);
      for (int x = 0; x <= q; ++x) {
        double best_here = dp[i][static_cast<size_t>(x)];
        for (int y = 1; y <= x; ++y) {
          best_here = std::max(best_here,
                               dp[i][static_cast<size_t>(x - y)] +
                                   SolveLocal(lattice, child_local, y, memo));
        }
        dp[i + 1][static_cast<size_t>(x)] = best_here;
      }
    }
    if (dp[num_children][static_cast<size_t>(q)] < target - kScoreEps) {
      continue;
    }
    int x = q;
    for (size_t i = num_children; i > 0; --i) {
      const int child_local = lattice.index.at(group.children[i - 1]);
      int chosen_y = 0;
      for (int y = 0; y <= x; ++y) {
        const double candidate =
            dp[i - 1][static_cast<size_t>(x - y)] +
            SolveLocal(lattice, child_local, y, memo);
        if (candidate >= dp[i][static_cast<size_t>(x)] - kScoreEps) {
          chosen_y = y;
          break;
        }
      }
      if (chosen_y > 0) {
        ReconstructLocal(lattice, child_local, chosen_y, memo, out);
      }
      x -= chosen_y;
    }
    return;
  }
  TSE_CHECK(false) << "local reconstruction failed to match the optimum";
}

void SortByGammaDesc(const std::vector<double>& gamma,
                     std::vector<ExplId>* ids) {
  std::sort(ids->begin(), ids->end(), [&gamma](ExplId a, ExplId b) {
    const double ga = gamma[static_cast<size_t>(a)];
    const double gb = gamma[static_cast<size_t>(b)];
    if (ga != gb) return ga > gb;
    return a < b;  // deterministic tie-break
  });
}

}  // namespace tsexplain
