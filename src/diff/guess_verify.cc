#include "src/diff/guess_verify.h"

#include <algorithm>
#include <numeric>

#include "src/common/check.h"

namespace tsexplain {
namespace {

constexpr double kScoreEps = 1e-9;

}  // namespace

TopExplanations GuessVerifyTopM(CascadingAnalysts& solver,
                                const std::vector<double>& gamma, int m,
                                const std::vector<bool>* selectable,
                                int initial_guess, GuessVerifyStats* stats) {
  TSE_CHECK_GE(m, 1);
  TSE_CHECK_GE(initial_guess, 1);
  const size_t epsilon = gamma.size();

  // chi: candidate ids the caller allows with positive score. Kept
  // UNSORTED; each guess round only needs the top (guess + m) elements, so
  // nth_element + a prefix sort beats a full epsilon*log(epsilon) sort.
  std::vector<ExplId> chi;
  chi.reserve(epsilon);
  for (size_t e = 0; e < epsilon; ++e) {
    if (selectable != nullptr && !(*selectable)[e]) continue;
    if (gamma[e] > 0.0) chi.push_back(static_cast<ExplId>(e));
  }

  GuessVerifyStats local_stats;
  int guess = std::min<int>(initial_guess, static_cast<int>(chi.size()));
  if (guess == 0) {
    // No scoring candidates at all: empty result with zero Best.
    if (stats != nullptr) {
      stats->iterations = 1;
      stats->final_guess_size = 0;
      stats->exact_fallback = true;
    }
    TopExplanations empty;
    empty.best.assign(static_cast<size_t>(m) + 1, 0.0);
    return empty;
  }

  auto by_gamma_desc = [&gamma](ExplId a, ExplId b) {
    const double ga = gamma[static_cast<size_t>(a)];
    const double gb = gamma[static_cast<size_t>(b)];
    if (ga != gb) return ga > gb;
    return a < b;
  };
  int sorted_prefix = 0;
  std::vector<ExplId> candidates;
  for (;;) {
    ++local_stats.iterations;
    // Ensure the first (guess + m) entries of chi are the largest, sorted.
    const int need =
        std::min<int>(guess + m, static_cast<int>(chi.size()));
    if (need > sorted_prefix) {
      std::nth_element(chi.begin(), chi.begin() + need - 1, chi.end(),
                       by_gamma_desc);
      std::sort(chi.begin(), chi.begin() + need, by_gamma_desc);
      sorted_prefix = need;
    }

    candidates.assign(chi.begin(), chi.begin() + std::min<int>(
                                                     guess,
                                                     static_cast<int>(
                                                         chi.size())));
    TopExplanations result = solver.TopMRestricted(gamma, m, candidates);

    const bool covered_all = guess >= static_cast<int>(chi.size());
    bool verified = true;
    if (!covered_all) {
      // Eq. 12: for every split m' in-prefix / (m - m') out-of-prefix, the
      // out-of-prefix part is upper-bounded by the next (m - m') raw gammas.
      for (int m_prime = 0; m_prime < m && verified; ++m_prime) {
        double upper = result.best[static_cast<size_t>(m_prime)];
        for (int j = 1; j <= m - m_prime; ++j) {
          const size_t idx = static_cast<size_t>(guess + j - 1);
          if (idx < chi.size()) {
            upper += gamma[static_cast<size_t>(chi[idx])];
          }
        }
        if (result.best[static_cast<size_t>(m)] < upper - kScoreEps) {
          verified = false;
        }
      }
    }

    if (verified || covered_all) {
      local_stats.final_guess_size = guess;
      local_stats.exact_fallback = covered_all;
      if (stats != nullptr) *stats = local_stats;
      return result;
    }
    guess = std::min<int>(guess * 2, static_cast<int>(chi.size()));
  }
}

}  // namespace tsexplain
