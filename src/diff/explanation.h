// Explanation = conjunction of equality predicates over explain-by
// attributes (paper Definition 3.1). Explanations are value types: a sorted,
// duplicate-free list of (attribute, value) pairs with at most one predicate
// per attribute.

#ifndef TSEXPLAIN_DIFF_EXPLANATION_H_
#define TSEXPLAIN_DIFF_EXPLANATION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/table/table.h"

namespace tsexplain {

/// Dense id of a candidate explanation within an ExplanationRegistry.
using ExplId = int32_t;

inline constexpr ExplId kInvalidExplId = -1;

/// Single equality predicate `attr = value` (dictionary-encoded).
struct Predicate {
  AttrId attr;
  ValueId value;

  bool operator==(const Predicate& other) const {
    return attr == other.attr && value == other.value;
  }
  bool operator<(const Predicate& other) const {
    return attr != other.attr ? attr < other.attr : value < other.value;
  }
};

/// Conjunction of predicates, canonically sorted by attribute. The empty
/// conjunction is the root cell (the whole relation).
class Explanation {
 public:
  Explanation() = default;

  /// Builds from arbitrary-order predicates; sorts and validates that no
  /// attribute appears twice.
  static Explanation FromPredicates(std::vector<Predicate> preds);

  /// Number of predicates (the paper's order beta).
  int order() const { return static_cast<int>(preds_.size()); }
  bool IsRoot() const { return preds_.empty(); }
  const std::vector<Predicate>& predicates() const { return preds_; }

  /// Whether some predicate constrains `attr`; outputs its value.
  bool TryGetValue(AttrId attr, ValueId* value) const;

  /// New explanation extended with one more predicate on an unused attr.
  Explanation Extend(Predicate p) const;

  /// New explanation with the predicate on `attr` removed (must exist).
  Explanation WithoutAttr(AttrId attr) const;

  /// Two explanations are non-overlapping iff they disagree on some shared
  /// attribute (then no record can satisfy both, for any relation R).
  bool OverlapsWith(const Explanation& other) const;

  bool operator==(const Explanation& other) const {
    return preds_ == other.preds_;
  }

  /// Stable hash of the canonical predicate list.
  uint64_t Hash() const;

  /// Renders as "attr1=v1 & attr2=v2" using the table's dictionaries;
  /// the root renders as "<all data>".
  std::string ToString(const Table& table) const;

 private:
  std::vector<Predicate> preds_;
};

struct ExplanationHasher {
  size_t operator()(const Explanation& e) const {
    return static_cast<size_t>(e.Hash());
  }
};

}  // namespace tsexplain

#endif  // TSEXPLAIN_DIFF_EXPLANATION_H_
