// Guess-and-verify optimization (O1, paper section 5.3.1).
//
// Instead of handing all epsilon candidate explanations to the Cascading
// Analysts algorithm, sort them by gamma descending, run CA restricted to
// the top m-bar candidates, and verify optimality with the sufficient
// condition of Eq. 12:
//
//   Best[m] >= Best[m'] + sum_{j=1..m-m'} gamma(E_{r_{m-bar+j}})
//                                         for all 0 <= m' < m
//
// i.e. any solution using m' explanations from the prefix plus (m - m')
// from outside is upper-bounded by the right-hand side. On failure the
// prefix doubles (m-bar <- 2 m-bar) and the process repeats; when m-bar
// reaches epsilon the run is exact by construction.

#ifndef TSEXPLAIN_DIFF_GUESS_VERIFY_H_
#define TSEXPLAIN_DIFF_GUESS_VERIFY_H_

#include <vector>

#include "src/diff/cascading_analysts.h"

namespace tsexplain {

/// Default initial prefix size (paper: "when m = 3, we initialize
/// m-bar = 30").
inline constexpr int kDefaultInitialGuess = 30;

/// Statistics from one guess-and-verify run (benchmark instrumentation).
struct GuessVerifyStats {
  int iterations = 0;        // number of guess rounds
  int final_guess_size = 0;  // m-bar that passed verification
  bool exact_fallback = false;  // true if m-bar grew to epsilon
};

/// Computes the same TopExplanations as CascadingAnalysts::TopM but via
/// guess-and-verify. `selectable` narrows the candidate pool (support
/// filter); nullptr means all candidates. Results are guaranteed identical
/// to the unoptimized run (the verification condition is sufficient for
/// optimality).
TopExplanations GuessVerifyTopM(CascadingAnalysts& solver,
                                const std::vector<double>& gamma, int m,
                                const std::vector<bool>* selectable = nullptr,
                                int initial_guess = kDefaultInitialGuess,
                                GuessVerifyStats* stats = nullptr);

}  // namespace tsexplain

#endif  // TSEXPLAIN_DIFF_GUESS_VERIFY_H_
