#include "src/diff/explanation.h"

#include <algorithm>

#include "src/common/check.h"
#include "src/common/strings.h"

namespace tsexplain {

Explanation Explanation::FromPredicates(std::vector<Predicate> preds) {
  std::sort(preds.begin(), preds.end());
  for (size_t i = 1; i < preds.size(); ++i) {
    TSE_CHECK_NE(preds[i - 1].attr, preds[i].attr)
        << "conjunction constrains one attribute twice";
  }
  Explanation e;
  e.preds_ = std::move(preds);
  return e;
}

bool Explanation::TryGetValue(AttrId attr, ValueId* value) const {
  for (const Predicate& p : preds_) {
    if (p.attr == attr) {
      *value = p.value;
      return true;
    }
    if (p.attr > attr) break;  // sorted
  }
  return false;
}

Explanation Explanation::Extend(Predicate p) const {
  ValueId unused;
  TSE_CHECK(!TryGetValue(p.attr, &unused))
      << "attribute already constrained";
  std::vector<Predicate> preds = preds_;
  preds.push_back(p);
  return FromPredicates(std::move(preds));
}

Explanation Explanation::WithoutAttr(AttrId attr) const {
  std::vector<Predicate> preds;
  preds.reserve(preds_.size());
  bool found = false;
  for (const Predicate& p : preds_) {
    if (p.attr == attr) {
      found = true;
    } else {
      preds.push_back(p);
    }
  }
  TSE_CHECK(found) << "attribute not present in conjunction";
  Explanation e;
  e.preds_ = std::move(preds);  // removal preserves sort order
  return e;
}

bool Explanation::OverlapsWith(const Explanation& other) const {
  // Merge-scan the two sorted predicate lists looking for a shared
  // attribute with different values.
  size_t i = 0, j = 0;
  while (i < preds_.size() && j < other.preds_.size()) {
    if (preds_[i].attr == other.preds_[j].attr) {
      if (preds_[i].value != other.preds_[j].value) return false;
      ++i;
      ++j;
    } else if (preds_[i].attr < other.preds_[j].attr) {
      ++i;
    } else {
      ++j;
    }
  }
  return true;
}

uint64_t Explanation::Hash() const {
  // FNV-1a over the (attr, value) stream.
  uint64_t h = 1469598103934665603ULL;
  auto mix = [&h](uint64_t x) {
    for (int byte = 0; byte < 8; ++byte) {
      h ^= (x >> (byte * 8)) & 0xffULL;
      h *= 1099511628211ULL;
    }
  };
  for (const Predicate& p : preds_) {
    mix(static_cast<uint64_t>(static_cast<uint32_t>(p.attr)));
    mix(static_cast<uint64_t>(static_cast<uint32_t>(p.value)));
  }
  return h;
}

std::string Explanation::ToString(const Table& table) const {
  if (preds_.empty()) return "<all data>";
  std::vector<std::string> parts;
  parts.reserve(preds_.size());
  for (const Predicate& p : preds_) {
    parts.push_back(table.PredicateString(p.attr, p.value));
  }
  return Join(parts, " & ");
}

}  // namespace tsexplain
