// Difference-metric library: gamma(E) and the change effect tau(E).
//
// The paper's default metric is absolute-change (Definition 3.2); the change
// effect tau is Definition 3.3. Extending the metric library is listed as
// future work (section 9), so relative-change and risk-ratio are provided as
// documented extensions:
//
//  * kAbsoluteChange:  gamma = |Delta - Delta_wo|, where Delta = f(R_t) -
//    f(R_c) and Delta_wo is the same difference with E's records removed.
//  * kRelativeChange:  absolute-change normalized by |Delta|: the fraction
//    of the overall change attributable to E (0 when Delta is ~0).
//  * kRiskRatio:       ratio of the slice's relative change rate to the
//    overall relative change rate, capped at kRiskRatioCap; degenerate
//    denominators score 0.
//
// tau is metric-independent: sign(Delta - Delta_wo), i.e. whether including
// E's records pushes the overall difference up (+1), down (-1), or not at
// all (0).

#ifndef TSEXPLAIN_DIFF_DIFF_METRICS_H_
#define TSEXPLAIN_DIFF_DIFF_METRICS_H_

namespace tsexplain {

enum class DiffMetricKind {
  kAbsoluteChange,
  kRelativeChange,
  kRiskRatio,
};

/// Upper cap applied to risk-ratio scores so a near-zero overall change
/// cannot produce unbounded scores.
inline constexpr double kRiskRatioCap = 100.0;

/// Degenerate-denominator threshold shared by every diff formula (and by
/// the vectorized ScoreAll kernels, which must replicate these formulas
/// bit-exactly — src/cube/score_kernels.cc).
inline constexpr double kDiffEps = 1e-12;

/// gamma(E) plus the change effect tau(E) in {-1, 0, +1}.
struct DiffScore {
  double gamma = 0.0;
  int tau = 0;
};

/// Computes the score from the four finalized aggregates:
///   f_test       = f(M, R_t)
///   f_control    = f(M, R_c)
///   f_test_wo    = f(M, R_t - sigma_E R_t)
///   f_control_wo = f(M, R_c - sigma_E R_c)
DiffScore ComputeDiff(DiffMetricKind kind, double f_test, double f_control,
                      double f_test_wo, double f_control_wo);

/// Human-readable metric name ("absolute-change", ...).
const char* DiffMetricName(DiffMetricKind kind);

}  // namespace tsexplain

#endif  // TSEXPLAIN_DIFF_DIFF_METRICS_H_
