// Cascading Analysts algorithm (Ruhl, Sundararajan, Yan, SIGMOD 2018),
// reimplemented from the description in the TSExplain paper (section 5.2,
// Figure 8): top-m NON-OVERLAPPING explanations maximizing the total diff
// score.
//
// The algorithm simulates an analyst's recursive drill-down. Each lattice
// cell (conjunction) with quota q decides between
//   (1) selecting itself as one explanation (consuming 1 quota and closing
//       its subtree, since descendants overlap it), or
//   (2) drilling down one unconstrained dimension and distributing the q
//       quota among the resulting child cells (siblings never overlap).
// Both choices are optimized exactly:
//   f(cell, q) = max( gamma(cell) [if q >= 1, cell != root],
//                     max_d distribute(children(cell, d), q) )
// where distribute is a small knapsack over children. Cells are memoized,
// so the cost is O(epsilon * |A| * m^2) per segment, matching the paper.
//
// The solver also exposes Best[q] = f(root, q) for every q <= m, which the
// guess-and-verify optimization needs for its termination test (Eq. 12).

#ifndef TSEXPLAIN_DIFF_CASCADING_ANALYSTS_H_
#define TSEXPLAIN_DIFF_CASCADING_ANALYSTS_H_

#include <unordered_map>
#include <vector>

#include "src/diff/explanation_registry.h"

namespace tsexplain {

/// Result of a top-m query: explanations sorted by descending score.
struct TopExplanations {
  /// Selected explanation ids, ranked by descending gamma (the paper's
  /// E*_m = [E^1, ..., E^m]); may hold fewer than m entries when the data
  /// cannot support m non-overlapping explanations with positive score.
  std::vector<ExplId> ids;
  /// gamma of each selected explanation (aligned with `ids`).
  std::vector<double> gammas;
  /// Best[q]: optimal total score using at most q explanations, for
  /// q = 0..m. Best.back() equals the sum of `gammas`.
  std::vector<double> best;
  /// Ideal DCG of this list on its own segment (Eq. 4), cached by the
  /// SegmentExplainer so distance computations do not recompute it.
  double idcg = 0.0;

  double TotalScore() const { return best.empty() ? 0.0 : best.back(); }
};

/// Reusable solver: owns scratch buffers sized to the registry so repeated
/// per-segment invocations do not allocate. Not thread-safe; create one per
/// thread.
class CascadingAnalysts {
 public:
  explicit CascadingAnalysts(const ExplanationRegistry& registry);

  /// Computes top-m non-overlapping explanations for the given per-cell
  /// scores. `gamma[e]` must be the diff score of cell e for the segment
  /// under analysis (module (a) output). Cells may be excluded from
  /// *selection* (but still drilled through) by passing `selectable`;
  /// nullptr means all cells are selectable.
  TopExplanations TopM(const std::vector<double>& gamma, int m,
                       const std::vector<bool>* selectable = nullptr);

  /// Same optimization restricted to a small candidate set: only
  /// `candidates` are selectable and the drill-down forest is rebuilt from
  /// the candidates plus their ancestor cells, so the cost is
  /// O(|candidates| * 2^beta-bar * m^2) independent of epsilon. This is
  /// what makes guess-and-verify (O1) pay off (section 5.3.1).
  TopExplanations TopMRestricted(const std::vector<double>& gamma, int m,
                                 const std::vector<ExplId>& candidates);

  /// Number of f(cell, q) evaluations performed by the last TopM call
  /// (complexity instrumentation for the benches).
  size_t last_nodes_visited() const { return nodes_visited_; }

 private:
  // Sub-lattice for TopMRestricted: candidate cells + ancestors with
  // locally rebuilt drill-down links (global cell ids inside).
  struct LocalLattice {
    std::vector<ExplId> cells;
    std::vector<std::vector<ChildGroup>> children;  // by local index
    std::vector<ChildGroup> root_children;
    std::vector<bool> selectable;                   // by local index
    std::unordered_map<ExplId, int> index;
  };

  // Memoized f(cell, q) for the current epoch; root is cell id = -1 and is
  // handled separately.
  double Solve(ExplId cell, int q);
  // Optimal distribution of quota q among `groups` children of `cell`.
  double BestDrillDown(const std::vector<ChildGroup>& groups, int q);
  // Walks the optimal solution, appending selected cells to out.
  void Reconstruct(ExplId cell, int q, std::vector<ExplId>* out);
  void ReconstructDrillDown(const std::vector<ChildGroup>& groups, int q,
                            std::vector<ExplId>* out);

  // Local-lattice counterparts used by TopMRestricted.
  double SolveLocal(const LocalLattice& lattice, int local, int q,
                    std::vector<double>* memo);
  double BestDrillDownLocal(const LocalLattice& lattice,
                            const std::vector<ChildGroup>& groups, int q,
                            std::vector<double>* memo);
  void ReconstructLocal(const LocalLattice& lattice, int local, int q,
                        std::vector<double>* memo, std::vector<ExplId>* out);
  void ReconstructDrillDownLocal(const LocalLattice& lattice,
                                 const std::vector<ChildGroup>& groups,
                                 int q, std::vector<double>* memo,
                                 std::vector<ExplId>* out);

  const ExplanationRegistry& registry_;
  const std::vector<double>* gamma_ = nullptr;
  const std::vector<bool>* selectable_ = nullptr;
  int m_ = 0;

  // Epoch-stamped memo table: memo_[cell * (m_cap_+1) + q].
  std::vector<double> memo_;
  std::vector<uint32_t> memo_epoch_;
  uint32_t epoch_ = 0;
  int m_cap_ = 0;
  size_t nodes_visited_ = 0;
};

/// Convenience: ranks `candidate` ids by descending gamma with deterministic
/// id tie-breaking (used to order E*_m and by guess-and-verify).
void SortByGammaDesc(const std::vector<double>& gamma,
                     std::vector<ExplId>* ids);

}  // namespace tsexplain

#endif  // TSEXPLAIN_DIFF_CASCADING_ANALYSTS_H_
