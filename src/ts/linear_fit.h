// Least-squares line fitting and piecewise-linear approximation errors.
//
// These are the substrate for the explanation-agnostic segmentation
// baselines (Keogh et al. [21]): Bottom-Up, Top-Down, and Sliding-Window all
// score a candidate segment by how well a straight line approximates it.

#ifndef TSEXPLAIN_TS_LINEAR_FIT_H_
#define TSEXPLAIN_TS_LINEAR_FIT_H_

#include <cstddef>
#include <vector>

namespace tsexplain {

/// y = slope * x + intercept fitted over x = begin..end (inclusive).
struct LineFit {
  double slope = 0.0;
  double intercept = 0.0;
  /// Sum of squared residuals of the fit.
  double sse = 0.0;
};

/// Least-squares fit over values[begin..end] (inclusive, x = index).
/// Requires begin <= end < values.size(). A single point fits exactly.
LineFit FitLine(const std::vector<double>& values, size_t begin, size_t end);

/// Sum of squared residuals of the least-squares line over [begin, end].
double SegmentSse(const std::vector<double>& values, size_t begin, size_t end);

/// Sum of squared residuals of linear *interpolation* (line through the two
/// endpoints) over [begin, end]. Keogh's survey uses either; interpolation
/// is cheaper and is what the Bottom-Up pseudo-code assumes.
double InterpolationSse(const std::vector<double>& values, size_t begin,
                        size_t end);

/// Incremental SSE oracle: precomputes prefix sums so the least-squares SSE
/// of any segment is O(1). Used by the O(n^2) Top-Down recursion and by
/// property tests that sweep all segments.
class SseOracle {
 public:
  explicit SseOracle(const std::vector<double>& values);

  /// Least-squares SSE over [begin, end] inclusive.
  double Sse(size_t begin, size_t end) const;

  size_t size() const { return n_; }

 private:
  size_t n_;
  // Prefix sums of x, x^2, y, y^2, x*y (x = global index).
  std::vector<double> sx_, sxx_, sy_, syy_, sxy_;
};

}  // namespace tsexplain

#endif  // TSEXPLAIN_TS_LINEAR_FIT_H_
