#include "src/ts/decompose.h"

#include <cstddef>

#include "src/common/check.h"

namespace tsexplain {
namespace {

// Centered moving average of width `period`; for even periods uses the
// standard 2xMA (average of two adjacent windows). Positions where the
// window does not fit are filled by copying the nearest computed value.
std::vector<double> CenteredMa(const std::vector<double>& values,
                               int period) {
  const size_t n = values.size();
  std::vector<double> out(n, 0.0);
  const int half = period / 2;
  size_t first = 0, last = 0;
  bool any = false;
  for (size_t i = 0; i < n; ++i) {
    double sum = 0.0;
    bool fits;
    if (period % 2 == 1) {
      fits = static_cast<int>(i) >= half && i + half < n;
      if (fits) {
        for (int d = -half; d <= half; ++d) sum += values[i + d];
        out[i] = sum / period;
      }
    } else {
      // 2xMA: average of windows [i-half, i+half-1] and [i-half+1, i+half].
      fits = static_cast<int>(i) >= half && i + half < n;
      if (fits) {
        for (int d = -half; d < half; ++d) sum += values[i + d];
        double sum2 = 0.0;
        for (int d = -half + 1; d <= half; ++d) sum2 += values[i + d];
        out[i] = (sum / period + sum2 / period) / 2.0;
      }
    }
    if (fits) {
      if (!any) first = i;
      last = i;
      any = true;
    }
  }
  TSE_CHECK(any);
  for (size_t i = 0; i < first; ++i) out[i] = out[first];
  for (size_t i = last + 1; i < n; ++i) out[i] = out[last];
  return out;
}

}  // namespace

Decomposition DecomposeAdditive(const std::vector<double>& values,
                                int period) {
  TSE_CHECK_GE(period, 2);
  TSE_CHECK_GE(values.size(), static_cast<size_t>(2 * period));
  const size_t n = values.size();

  Decomposition d;
  d.trend = CenteredMa(values, period);

  // Seasonal indices: phase means of the detrended series.
  std::vector<double> phase_sum(period, 0.0);
  std::vector<int> phase_count(period, 0);
  for (size_t i = 0; i < n; ++i) {
    const int phase = static_cast<int>(i % period);
    phase_sum[phase] += values[i] - d.trend[i];
    ++phase_count[phase];
  }
  std::vector<double> phase_mean(period);
  double grand = 0.0;
  for (int p = 0; p < period; ++p) {
    phase_mean[p] = phase_sum[p] / phase_count[p];
    grand += phase_mean[p];
  }
  grand /= period;
  for (int p = 0; p < period; ++p) phase_mean[p] -= grand;  // center

  d.seasonal.resize(n);
  d.remainder.resize(n);
  for (size_t i = 0; i < n; ++i) {
    d.seasonal[i] = phase_mean[i % period];
    d.remainder[i] = values[i] - d.trend[i] - d.seasonal[i];
  }
  return d;
}

}  // namespace tsexplain
