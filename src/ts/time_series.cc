#include "src/ts/time_series.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "src/common/check.h"

namespace tsexplain {

std::string TimeSeries::LabelAt(size_t i) const {
  TSE_CHECK_LT(i, values.size());
  if (i < labels.size()) return labels[i];
  return std::to_string(i);
}

TimeSeries MovingAverage(const TimeSeries& ts, int w) {
  TSE_CHECK_GE(w, 1);
  TimeSeries out;
  out.labels = ts.labels;
  out.values.resize(ts.size());
  double window_sum = 0.0;
  for (size_t i = 0; i < ts.size(); ++i) {
    window_sum += ts.values[i];
    if (i >= static_cast<size_t>(w)) window_sum -= ts.values[i - w];
    const size_t count = std::min(i + 1, static_cast<size_t>(w));
    out.values[i] = window_sum / static_cast<double>(count);
  }
  return out;
}

double Mean(const std::vector<double>& values) {
  TSE_CHECK(!values.empty());
  double sum = 0.0;
  for (double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

double Variance(const std::vector<double>& values) {
  TSE_CHECK(!values.empty());
  const double mean = Mean(values);
  double sum_sq = 0.0;
  for (double v : values) sum_sq += (v - mean) * (v - mean);
  return sum_sq / static_cast<double>(values.size());
}

double StdDev(const std::vector<double>& values) {
  return std::sqrt(Variance(values));
}

std::vector<double> ZNormalize(const std::vector<double>& values) {
  const double mean = Mean(values);
  const double sd = StdDev(values);
  std::vector<double> out(values.size());
  if (sd < 1e-12) return out;  // constant -> zeros
  for (size_t i = 0; i < values.size(); ++i) out[i] = (values[i] - mean) / sd;
  return out;
}

double MeasureSnrDb(const std::vector<double>& signal,
                    const std::vector<double>& noisy) {
  TSE_CHECK_EQ(signal.size(), noisy.size());
  TSE_CHECK(!signal.empty());
  double signal_power = 0.0;
  double noise_power = 0.0;
  for (size_t i = 0; i < signal.size(); ++i) {
    signal_power += signal[i] * signal[i];
    const double noise = noisy[i] - signal[i];
    noise_power += noise * noise;
  }
  if (noise_power <= 0.0) return std::numeric_limits<double>::infinity();
  return 10.0 * std::log10(signal_power / noise_power);
}

double NoiseSigmaForSnr(double signal_power, double snr_db) {
  TSE_CHECK_GE(signal_power, 0.0);
  return std::sqrt(signal_power / std::pow(10.0, snr_db / 10.0));
}

double SignalPower(const std::vector<double>& values) {
  TSE_CHECK(!values.empty());
  double sum_sq = 0.0;
  for (double v : values) sum_sq += v * v;
  return sum_sq / static_cast<double>(values.size());
}

std::vector<double> SumSeries(
    const std::vector<std::vector<double>>& series_list) {
  TSE_CHECK(!series_list.empty());
  std::vector<double> out(series_list[0].size(), 0.0);
  for (const auto& series : series_list) {
    TSE_CHECK_EQ(series.size(), out.size());
    for (size_t i = 0; i < series.size(); ++i) out[i] += series[i];
  }
  return out;
}

}  // namespace tsexplain
