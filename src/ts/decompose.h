// Classical additive seasonal decomposition (paper section 8, "Seasonal
// Datasets"): y = trend + seasonal + remainder. Users of TSExplain can
// decompose a seasonal KPI first and explain trend and seasonality
// separately.

#ifndef TSEXPLAIN_TS_DECOMPOSE_H_
#define TSEXPLAIN_TS_DECOMPOSE_H_

#include <vector>

namespace tsexplain {

/// Result of an additive decomposition. All three components have the input
/// length; trend endpoints (where the centered window does not fit) are
/// filled by edge extension.
struct Decomposition {
  std::vector<double> trend;
  std::vector<double> seasonal;
  std::vector<double> remainder;
};

/// Classical additive decomposition with period `period` (>= 2):
///  1. trend = centered moving average of width `period` (2xMA for even
///     periods, the textbook construction),
///  2. seasonal[i] = mean of detrended values at phase i % period, centered
///     to sum to zero over one period,
///  3. remainder = y - trend - seasonal.
/// Requires values.size() >= 2 * period.
Decomposition DecomposeAdditive(const std::vector<double>& values,
                                int period);

}  // namespace tsexplain

#endif  // TSEXPLAIN_TS_DECOMPOSE_H_
