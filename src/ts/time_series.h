// Core time-series value type and basic transforms.
//
// An aggregated time series (paper Definition 3.6) is a sequence of points
// ordered by a time dimension; we store the values densely (one double per
// time bucket) and keep the human-readable time labels alongside.

#ifndef TSEXPLAIN_TS_TIME_SERIES_H_
#define TSEXPLAIN_TS_TIME_SERIES_H_

#include <cstddef>
#include <string>
#include <vector>

namespace tsexplain {

/// Dense aggregated time series: values[i] is the aggregate at time bucket i.
struct TimeSeries {
  std::vector<double> values;
  /// Optional human-readable labels, same length as `values` when present.
  std::vector<std::string> labels;

  TimeSeries() = default;
  explicit TimeSeries(std::vector<double> v) : values(std::move(v)) {}

  size_t size() const { return values.size(); }
  bool empty() const { return values.empty(); }
  double operator[](size_t i) const { return values[i]; }
  double& operator[](size_t i) { return values[i]; }

  /// Label for bucket i, or its index as a string when labels are absent.
  std::string LabelAt(size_t i) const;
};

/// Centered-right moving average with window `w` (paper section 7.4 smooths
/// "very fuzzy datasets" before explaining). Uses a trailing window of size
/// w clipped at the series start so the output has the same length and the
/// first points are averages of the available prefix.
TimeSeries MovingAverage(const TimeSeries& ts, int w);

/// Mean of the values. Requires a non-empty series.
double Mean(const std::vector<double>& values);

/// Population variance of the values. Requires a non-empty series.
double Variance(const std::vector<double>& values);

/// Population standard deviation.
double StdDev(const std::vector<double>& values);

/// Z-normalizes `values` (mean 0, stddev 1). A constant sequence maps to
/// all zeros.
std::vector<double> ZNormalize(const std::vector<double>& values);

/// Measures the signal-to-noise ratio in dB between a clean signal and its
/// noisy version: 10*log10(power(signal)/power(noise)), with
/// noise = noisy - signal. Returns +inf when the noise power is zero.
double MeasureSnrDb(const std::vector<double>& signal,
                    const std::vector<double>& noisy);

/// Returns the noise standard deviation that yields `snr_db` for a signal
/// with the given power (mean of squared values): sigma = sqrt(P/10^(SNR/10)).
double NoiseSigmaForSnr(double signal_power, double snr_db);

/// Mean of squared values (signal power).
double SignalPower(const std::vector<double>& values);

/// Element-wise sum of several series; all must share the same length.
std::vector<double> SumSeries(
    const std::vector<std::vector<double>>& series_list);

}  // namespace tsexplain

#endif  // TSEXPLAIN_TS_TIME_SERIES_H_
