#include "src/ts/linear_fit.h"

#include <cmath>

#include "src/common/check.h"

namespace tsexplain {

LineFit FitLine(const std::vector<double>& values, size_t begin, size_t end) {
  TSE_CHECK_LE(begin, end);
  TSE_CHECK_LT(end, values.size());
  const size_t n = end - begin + 1;
  LineFit fit;
  if (n == 1) {
    fit.intercept = values[begin];
    return fit;
  }
  double sx = 0.0, sy = 0.0, sxx = 0.0, sxy = 0.0;
  for (size_t i = begin; i <= end; ++i) {
    const double x = static_cast<double>(i);
    const double y = values[i];
    sx += x;
    sy += y;
    sxx += x * x;
    sxy += x * y;
  }
  const double dn = static_cast<double>(n);
  const double denom = dn * sxx - sx * sx;
  if (std::abs(denom) < 1e-12) {
    fit.intercept = sy / dn;
  } else {
    fit.slope = (dn * sxy - sx * sy) / denom;
    fit.intercept = (sy - fit.slope * sx) / dn;
  }
  for (size_t i = begin; i <= end; ++i) {
    const double r = values[i] - (fit.slope * static_cast<double>(i) +
                                  fit.intercept);
    fit.sse += r * r;
  }
  return fit;
}

double SegmentSse(const std::vector<double>& values, size_t begin,
                  size_t end) {
  return FitLine(values, begin, end).sse;
}

double InterpolationSse(const std::vector<double>& values, size_t begin,
                        size_t end) {
  TSE_CHECK_LE(begin, end);
  TSE_CHECK_LT(end, values.size());
  if (end - begin < 2) return 0.0;  // a line through <=2 points is exact
  const double x0 = static_cast<double>(begin);
  const double x1 = static_cast<double>(end);
  const double y0 = values[begin];
  const double y1 = values[end];
  const double slope = (y1 - y0) / (x1 - x0);
  double sse = 0.0;
  for (size_t i = begin + 1; i < end; ++i) {
    const double predicted = y0 + slope * (static_cast<double>(i) - x0);
    const double r = values[i] - predicted;
    sse += r * r;
  }
  return sse;
}

SseOracle::SseOracle(const std::vector<double>& values)
    : n_(values.size()),
      sx_(n_ + 1, 0.0),
      sxx_(n_ + 1, 0.0),
      sy_(n_ + 1, 0.0),
      syy_(n_ + 1, 0.0),
      sxy_(n_ + 1, 0.0) {
  for (size_t i = 0; i < n_; ++i) {
    const double x = static_cast<double>(i);
    const double y = values[i];
    sx_[i + 1] = sx_[i] + x;
    sxx_[i + 1] = sxx_[i] + x * x;
    sy_[i + 1] = sy_[i] + y;
    syy_[i + 1] = syy_[i] + y * y;
    sxy_[i + 1] = sxy_[i] + x * y;
  }
}

double SseOracle::Sse(size_t begin, size_t end) const {
  TSE_CHECK_LE(begin, end);
  TSE_CHECK_LT(end, n_);
  const double n = static_cast<double>(end - begin + 1);
  if (n <= 2.0) return 0.0;
  const double sx = sx_[end + 1] - sx_[begin];
  const double sxx = sxx_[end + 1] - sxx_[begin];
  const double sy = sy_[end + 1] - sy_[begin];
  const double syy = syy_[end + 1] - syy_[begin];
  const double sxy = sxy_[end + 1] - sxy_[begin];
  const double denom = n * sxx - sx * sx;
  double sse;
  if (std::abs(denom) < 1e-12) {
    sse = syy - sy * sy / n;
  } else {
    const double slope = (n * sxy - sx * sy) / denom;
    const double intercept = (sy - slope * sx) / n;
    sse = syy + slope * slope * sxx + n * intercept * intercept -
          2.0 * slope * sxy - 2.0 * intercept * sy +
          2.0 * slope * intercept * sx;
  }
  return sse < 0.0 ? 0.0 : sse;  // clamp tiny negative round-off
}

}  // namespace tsexplain
