#include "src/common/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>

#include "src/common/check.h"

namespace tsexplain {
namespace {

uint64_t DoubleToBits(double value) {
  uint64_t bits = 0;
  std::memcpy(&bits, &value, sizeof(bits));
  return bits;
}

double BitsToDouble(uint64_t bits) {
  double value = 0.0;
  std::memcpy(&value, &bits, sizeof(value));
  return value;
}

// Shortest-ish decimal rendering good for both JSON values and
// Prometheus `le` labels. %.12g round-trips every bound we use and
// avoids trailing-zero noise.
std::string FormatDouble(double value) {
  if (!std::isfinite(value)) return "0";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.12g", value);
  return buf;
}

std::string JsonEscapeName(const std::string& name) {
  std::string out;
  out.reserve(name.size());
  for (char c : name) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), counts_(bounds_.size() + 1) {
  TSE_CHECK(!bounds_.empty()) << "histogram needs at least one bucket bound";
  TSE_CHECK(std::is_sorted(bounds_.begin(), bounds_.end()))
      << "histogram bounds must be ascending";
}

void Histogram::Observe(double value) {
  // First bound >= value is the landing bucket (`le` semantics: a value
  // exactly on a bound counts in that bound's bucket); past the last
  // bound it lands in the overflow slot.
  const size_t index = static_cast<size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), value) -
      bounds_.begin());
  counts_[index].fetch_add(1, std::memory_order_relaxed);

  uint64_t observed = sum_bits_.load(std::memory_order_relaxed);
  uint64_t desired;
  do {
    desired = DoubleToBits(BitsToDouble(observed) + value);
  } while (!sum_bits_.compare_exchange_weak(observed, desired,
                                            std::memory_order_relaxed));
}

void Histogram::Reset() {
  for (auto& slot : counts_) slot.store(0, std::memory_order_relaxed);
  sum_bits_.store(0, std::memory_order_relaxed);
}

uint64_t Histogram::TotalCount() const {
  uint64_t total = 0;
  for (const auto& slot : counts_) {
    total += slot.load(std::memory_order_relaxed);
  }
  return total;
}

double Histogram::Sum() const {
  return BitsToDouble(sum_bits_.load(std::memory_order_relaxed));
}

double Histogram::ApproxPercentile(double p) const {
  const uint64_t total = TotalCount();
  if (total == 0) return 0.0;
  double rank = p * static_cast<double>(total);
  if (rank < 0.0) rank = 0.0;
  if (rank > static_cast<double>(total)) rank = static_cast<double>(total);

  uint64_t cumulative = 0;
  for (size_t i = 0; i < counts_.size(); ++i) {
    const uint64_t n = counts_[i].load(std::memory_order_relaxed);
    if (n == 0) continue;
    const uint64_t before = cumulative;
    cumulative += n;
    if (static_cast<double>(cumulative) >= rank) {
      const double lower = i == 0 ? 0.0 : bounds_[i - 1];
      if (i + 1 == counts_.size()) return lower;  // overflow bucket
      const double upper = bounds_[i];
      double fraction =
          (rank - static_cast<double>(before)) / static_cast<double>(n);
      if (fraction < 0.0) fraction = 0.0;
      if (fraction > 1.0) fraction = 1.0;
      return lower + fraction * (upper - lower);
    }
  }
  return bounds_.back();
}

double HistogramSnapshot::Percentile(double p) const {
  if (count == 0) return 0.0;
  double rank = p * static_cast<double>(count);
  if (rank < 0.0) rank = 0.0;
  if (rank > static_cast<double>(count)) rank = static_cast<double>(count);

  uint64_t cumulative = 0;
  for (size_t i = 0; i < counts.size(); ++i) {
    if (counts[i] == 0) continue;
    const uint64_t before = cumulative;
    cumulative += counts[i];
    if (static_cast<double>(cumulative) >= rank) {
      const double lower = i == 0 ? 0.0 : bounds[i - 1];
      if (i + 1 == counts.size()) return lower;  // overflow bucket
      const double upper = bounds[i];
      double fraction =
          (rank - static_cast<double>(before)) / static_cast<double>(counts[i]);
      if (fraction < 0.0) fraction = 0.0;
      if (fraction > 1.0) fraction = 1.0;
      return lower + fraction * (upper - lower);
    }
  }
  return bounds.back();
}

const uint64_t* MetricsSnapshot::FindCounter(const std::string& name) const {
  for (const auto& entry : counters) {
    if (entry.first == name) return &entry.second;
  }
  return nullptr;
}

const int64_t* MetricsSnapshot::FindGauge(const std::string& name) const {
  for (const auto& entry : gauges) {
    if (entry.first == name) return &entry.second;
  }
  return nullptr;
}

const HistogramSnapshot* MetricsSnapshot::FindHistogram(
    const std::string& name) const {
  for (const auto& histogram : histograms) {
    if (histogram.name == name) return &histogram;
  }
  return nullptr;
}

MetricRegistry& MetricRegistry::Global() {
  // Deliberately leaked: ThreadPool::Shared() workers may record metrics
  // while draining during static teardown, and a destroyed registry
  // would turn those writes into use-after-free.
  static MetricRegistry* registry = new MetricRegistry();
  return *registry;
}

Counter& MetricRegistry::GetCounter(const std::string& name) {
  MutexLock lock(mu_);
  TSE_CHECK(gauges_.count(name) == 0 && histograms_.count(name) == 0)
      << "metric '" << name << "' already registered as a different kind";
  auto& slot = counters_[name];
  if (slot == nullptr) slot.reset(new Counter());
  return *slot;
}

Gauge& MetricRegistry::GetGauge(const std::string& name) {
  MutexLock lock(mu_);
  TSE_CHECK(counters_.count(name) == 0 && histograms_.count(name) == 0)
      << "metric '" << name << "' already registered as a different kind";
  auto& slot = gauges_[name];
  if (slot == nullptr) slot.reset(new Gauge());
  return *slot;
}

Histogram& MetricRegistry::GetHistogram(const std::string& name,
                                        std::vector<double> bounds) {
  MutexLock lock(mu_);
  TSE_CHECK(counters_.count(name) == 0 && gauges_.count(name) == 0)
      << "metric '" << name << "' already registered as a different kind";
  auto& slot = histograms_[name];
  if (slot == nullptr) {
    if (bounds.empty()) bounds = DefaultLatencyBoundsMs();
    slot.reset(new Histogram(std::move(bounds)));
  }
  return *slot;
}

std::vector<double> MetricRegistry::DefaultLatencyBoundsMs() {
  return {0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,  0.25,
          0.5,   1.0,    2.5,   5.0,  10.0,  25.0, 50.0, 100.0,
          250.0, 500.0,  1000.0, 2500.0, 5000.0, 10000.0, 30000.0};
}

MetricsSnapshot MetricRegistry::Snapshot() const {
  MetricsSnapshot snapshot;
  MutexLock lock(mu_);
  snapshot.counters.reserve(counters_.size());
  for (const auto& entry : counters_) {
    snapshot.counters.emplace_back(entry.first, entry.second->Value());
  }
  snapshot.gauges.reserve(gauges_.size());
  for (const auto& entry : gauges_) {
    snapshot.gauges.emplace_back(entry.first, entry.second->Value());
  }
  snapshot.histograms.reserve(histograms_.size());
  for (const auto& entry : histograms_) {
    HistogramSnapshot hist;
    hist.name = entry.first;
    hist.bounds = entry.second->bounds_;
    hist.counts.reserve(entry.second->counts_.size());
    for (const auto& slot : entry.second->counts_) {
      const uint64_t n = slot.load(std::memory_order_relaxed);
      hist.counts.push_back(n);
      hist.count += n;
    }
    hist.sum =
        BitsToDouble(entry.second->sum_bits_.load(std::memory_order_relaxed));
    snapshot.histograms.push_back(std::move(hist));
  }
  return snapshot;
}

size_t MetricRegistry::NumMetrics() const {
  MutexLock lock(mu_);
  return counters_.size() + gauges_.size() + histograms_.size();
}

void MetricRegistry::ResetForTest() {
  MutexLock lock(mu_);
  for (auto& entry : counters_) entry.second->Reset();
  for (auto& entry : gauges_) entry.second->Reset();
  for (auto& entry : histograms_) entry.second->Reset();
}

std::string RenderMetricsJson(const MetricsSnapshot& snapshot) {
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& entry : snapshot.counters) {
    if (!first) out += ',';
    first = false;
    out += '"';
    out += JsonEscapeName(entry.first);
    out += "\":";
    out += std::to_string(entry.second);
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& entry : snapshot.gauges) {
    if (!first) out += ',';
    first = false;
    out += '"';
    out += JsonEscapeName(entry.first);
    out += "\":";
    out += std::to_string(entry.second);
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& hist : snapshot.histograms) {
    if (!first) out += ',';
    first = false;
    out += '"';
    out += JsonEscapeName(hist.name);
    out += "\":{\"count\":";
    out += std::to_string(hist.count);
    out += ",\"sum\":";
    out += FormatDouble(hist.sum);
    out += ",\"p50\":";
    out += FormatDouble(hist.Percentile(0.50));
    out += ",\"p90\":";
    out += FormatDouble(hist.Percentile(0.90));
    out += ",\"p99\":";
    out += FormatDouble(hist.Percentile(0.99));
    out += ",\"buckets\":[";
    for (size_t i = 0; i < hist.counts.size(); ++i) {
      if (i > 0) out += ',';
      out += "{\"le\":";
      if (i < hist.bounds.size()) {
        out += FormatDouble(hist.bounds[i]);
      } else {
        out += "\"+Inf\"";
      }
      out += ",\"count\":";
      out += std::to_string(hist.counts[i]);
      out += '}';
    }
    out += "]}";
  }
  out += "}}";
  return out;
}

std::string PrometheusMetricName(const std::string& name) {
  std::string out = "tsexplain_";
  out.reserve(out.size() + name.size());
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += ok ? c : '_';
  }
  return out;
}

std::string PrometheusEscapeLabel(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

std::string RenderPrometheusText(const MetricsSnapshot& snapshot) {
  std::string out;
  for (const auto& entry : snapshot.counters) {
    const std::string name = PrometheusMetricName(entry.first);
    out += "# TYPE " + name + " counter\n";
    out += name + " " + std::to_string(entry.second) + "\n";
  }
  for (const auto& entry : snapshot.gauges) {
    const std::string name = PrometheusMetricName(entry.first);
    out += "# TYPE " + name + " gauge\n";
    out += name + " " + std::to_string(entry.second) + "\n";
  }
  for (const auto& hist : snapshot.histograms) {
    const std::string name = PrometheusMetricName(hist.name);
    out += "# TYPE " + name + " histogram\n";
    uint64_t cumulative = 0;
    for (size_t i = 0; i < hist.counts.size(); ++i) {
      cumulative += hist.counts[i];
      const std::string le = i < hist.bounds.size()
                                 ? FormatDouble(hist.bounds[i])
                                 : std::string("+Inf");
      out += name + "_bucket{le=\"" + PrometheusEscapeLabel(le) + "\"} " +
             std::to_string(cumulative) + "\n";
    }
    out += name + "_sum " + FormatDouble(hist.sum) + "\n";
    out += name + "_count " + std::to_string(hist.count) + "\n";
  }
  return out;
}

}  // namespace tsexplain
