// Reusable fixed-size worker pool shared by the pipeline's data-parallel
// fills and the explanation service's query executor.
//
// Two usage patterns:
//
//  * Submit(fn): enqueue an independent task; the returned future resolves
//    when it finishes. Used by the service executor for per-query futures.
//
//  * ParallelFor(n, parallelism, fn): run fn(0..n-1) with at most
//    `parallelism` concurrent executors. The CALLER participates in the
//    work loop, so the call completes even when every pool worker is busy
//    or the helper tasks are still queued — a caller that is itself a pool
//    task can therefore issue nested ParallelFor without deadlock. Helper
//    tasks that get scheduled after the loop drained simply return. Index
//    assignment is dynamic (atomic counter) but each index is processed
//    exactly once, so any per-index-deterministic fn yields bit-identical
//    results at every parallelism level.
//
// Tasks must not throw (the library is exception-free on hot paths).

#ifndef TSEXPLAIN_COMMON_THREAD_POOL_H_
#define TSEXPLAIN_COMMON_THREAD_POOL_H_

#include <deque>
#include <functional>
#include <future>
#include <thread>
#include <vector>

#include "src/common/mutex.h"

namespace tsexplain {

/// Resolves a user-facing thread-count knob: n >= 1 passes through, 0 (or
/// negative) means "auto" = std::thread::hardware_concurrency(), with a
/// floor of 1 when the hardware cannot be probed.
int ResolveThreadCount(int requested);

/// Divides `pool_size` workers fairly across `active` concurrent
/// consumers: each gets max(1, pool_size / active), and never more than
/// it asked for (`requested` is a ceiling, not a demand). The service
/// layer uses this so a query's requested thread count stops being an
/// independent grab under concurrent load — results stay bit-identical
/// at any granted count (thread counts never affect results).
int AdaptiveThreadGrant(int requested, int active, int pool_size);

class ThreadPool {
 public:
  /// Spawns `num_threads` workers (>= 1; use ResolveThreadCount for the
  /// 0 = auto convention).
  explicit ThreadPool(int num_threads);

  /// Destruction is safe while ParallelFor loops are still draining:
  /// workers finish every already-queued helper task before joining, the
  /// caller thread keeps draining indices itself, and completion waiters
  /// are woken by the last index as usual (tests/test_thread_pool.cc
  /// covers destruction mid-loop). What is NOT allowed is Submit (or a
  /// new ParallelFor) racing destruction — that is a TSE_CHECK.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int size() const { return static_cast<int>(workers_.size()); }

  /// Enqueues one task; the future resolves after it runs.
  std::future<void> Submit(std::function<void()> fn);

  /// Runs fn(i) for every i in [0, n) using the caller plus up to
  /// `parallelism - 1` pool helpers. Returns once every index completed.
  /// `parallelism <= 1` (or tiny n) runs inline on the caller.
  void ParallelFor(size_t n, int parallelism,
                   const std::function<void(size_t)>& fn);

  /// Process-wide pool sized to the hardware, lazily constructed. The
  /// pipeline's distance fill and the service share it so worker threads
  /// are a bounded resource no matter how many engines/queries are live.
  ///
  /// Teardown order: the pool is a function-local static, so it is
  /// destroyed during static destruction, in reverse order of first use
  /// relative to other function-local statics and AFTER main() returns.
  /// Anything that might enqueue work from a destructor (services,
  /// engines, tests) must therefore either live on the stack / heap with
  /// a lifetime inside main(), or call Shared() at least once BEFORE the
  /// other static is constructed (construction order = reverse
  /// destruction order). Every binary in this repo uses the former.
  static ThreadPool& Shared();

 private:
  void WorkerLoop();

  Mutex mu_;
  CondVar cv_;
  std::deque<std::function<void()>> queue_ TSE_GUARDED_BY(mu_);
  bool shutdown_ TSE_GUARDED_BY(mu_) = false;
  std::vector<std::thread> workers_;
};

}  // namespace tsexplain

#endif  // TSEXPLAIN_COMMON_THREAD_POOL_H_
