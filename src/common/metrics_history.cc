#include "src/common/metrics_history.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <utility>

#include "src/common/check.h"
#include "src/table/table.h"

namespace tsexplain {
namespace {

// Wall-clock sample timestamps (same convention as the log records in
// protocol.cc); every interval decision runs on the steady clock.
double WallMs() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

// Matches metrics.cc's renderer: %.12g round-trips every value we store
// and avoids trailing-zero noise.
std::string FormatDouble(double value) {
  if (!std::isfinite(value)) return "0";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.12g", value);
  return buf;
}

std::string JsonEscapeName(const std::string& name) {
  std::string out;
  out.reserve(name.size());
  for (char c : name) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

// RFC 4180 quoting, applied only when the field needs it (metric names
// are dot-separated identifiers by convention, but the format must not
// break if one ever carries a comma or quote).
std::string CsvField(const std::string& value) {
  if (value.find_first_of(",\"\n\r") == std::string::npos) return value;
  std::string out = "\"";
  for (char c : value) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace

MetricsHistory::MetricsHistory(MetricRegistry& registry, Options options)
    : registry_(registry), options_(options) {
  TSE_CHECK(options_.capacity > 0) << "history capacity must be positive";
  TSE_CHECK(options_.interval_ms > 0) << "history interval must be positive";
  MutexLock lock(mu_);
  tick_ts_.assign(options_.capacity, 0.0);
}

MetricsHistory::~MetricsHistory() { Stop(); }

void MetricsHistory::TrackHistogramPercentiles(const std::string& name) {
  MutexLock lock(mu_);
  tracked_percentiles_.insert(name);
}

void MetricsHistory::SetSamplePrologue(std::function<void()> prologue) {
  TSE_CHECK(!sampler_.joinable())
      << "set the sample prologue before Start()";
  prologue_ = std::move(prologue);
}

void MetricsHistory::Start() {
  if (sampler_.joinable()) return;
  {
    MutexLock lock(mu_);
    stop_requested_ = false;
  }
  sampler_ = std::thread([this] { SamplerMain(); });
}

void MetricsHistory::Stop() {
  if (!sampler_.joinable()) return;
  {
    MutexLock lock(mu_);
    stop_requested_ = true;
  }
  cv_.NotifyAll();
  sampler_.join();
  sampler_ = std::thread();
}

void MetricsHistory::SampleNow() {
  if (prologue_) prologue_();
  MutexLock lock(mu_);
  SampleLocked();
}

void MetricsHistory::SamplerMain() {
  while (true) {
    // The prologue runs lock-free so it may touch the registry (or the
    // service) without ordering against the history mutex.
    if (prologue_) prologue_();
    {
      MutexLock lock(mu_);
      if (stop_requested_) return;
      SampleLocked();
      // Interval sleep with an explicit deadline: spurious CondVar
      // wakeups re-check the remaining time, a Stop() notification
      // re-checks the flag (mutex.h's while-loop idiom).
      const auto deadline =
          std::chrono::steady_clock::now() +
          std::chrono::milliseconds(options_.interval_ms);
      while (!stop_requested_) {
        const auto now = std::chrono::steady_clock::now();
        if (now >= deadline) break;
        const int64_t remaining_ms =
            std::chrono::duration_cast<std::chrono::milliseconds>(deadline -
                                                                  now)
                .count() +
            1;
        cv_.WaitFor(mu_, remaining_ms);
      }
      if (stop_requested_) return;
    }
  }
}

size_t MetricsHistory::AddRingLocked(const std::string& name,
                                     const char* kind) {
  const auto it = ring_index_.find(name);
  if (it != ring_index_.end()) return it->second;
  Ring ring;
  ring.name = name;
  ring.kind = kind;
  // Pre-registration ticks read as 0.0 — truthful for counters (the
  // metric did not exist, so nothing had been counted) and harmless for
  // monitoring gauges.
  ring.values.assign(options_.capacity, 0.0);
  rings_.push_back(std::move(ring));
  const size_t index = rings_.size() - 1;
  ring_index_[name] = index;
  return index;
}

void MetricsHistory::RediscoverLocked() {
  // The allocating pass: walk the registry's names and wire rings +
  // stable metric references for every newcomer. GetCounter/GetGauge/
  // GetHistogram on an existing name return the already-registered
  // object (process-lifetime reference), so the sources never dangle.
  const MetricsSnapshot snapshot = registry_.Snapshot();
  for (const auto& entry : snapshot.counters) {
    if (ring_index_.count(entry.first) != 0) continue;
    CounterSource source;
    source.metric = &registry_.GetCounter(entry.first);
    source.ring = AddRingLocked(entry.first, "counter");
    counter_sources_.push_back(source);
  }
  for (const auto& entry : snapshot.gauges) {
    if (ring_index_.count(entry.first) != 0) continue;
    GaugeSource source;
    source.metric = &registry_.GetGauge(entry.first);
    source.ring = AddRingLocked(entry.first, "gauge");
    gauge_sources_.push_back(source);
  }
  for (const auto& histogram : snapshot.histograms) {
    if (ring_index_.count(histogram.name + ".count") != 0) continue;
    HistogramSource source;
    source.metric = &registry_.GetHistogram(histogram.name);
    source.count_ring = AddRingLocked(histogram.name + ".count", "hist_count");
    source.sum_ring = AddRingLocked(histogram.name + ".sum", "hist_sum");
    source.p50_ring = kNoRing;
    source.p99_ring = kNoRing;
    if (tracked_percentiles_.count(histogram.name) != 0) {
      source.p50_ring = AddRingLocked(histogram.name + ".p50", "hist_p50");
      source.p99_ring = AddRingLocked(histogram.name + ".p99", "hist_p99");
    }
    histogram_sources_.push_back(source);
  }
  known_metric_count_ = snapshot.counters.size() + snapshot.gauges.size() +
                        snapshot.histograms.size();
}

void MetricsHistory::SampleLocked() {
  // Registration is rare; comparing the registry's cardinality each tick
  // keeps late-registered metrics (first cold query, first shed) from
  // being invisible forever, at the price of one mutex-protected size
  // read. The hot remainder of this function is loads and stores only.
  if (registry_.NumMetrics() != known_metric_count_) RediscoverLocked();
  const size_t pos = static_cast<size_t>(ticks_ % options_.capacity);
  tick_ts_[pos] = WallMs();
  for (const CounterSource& source : counter_sources_) {
    rings_[source.ring].values[pos] =
        static_cast<double>(source.metric->Value());
  }
  for (const GaugeSource& source : gauge_sources_) {
    rings_[source.ring].values[pos] =
        static_cast<double>(source.metric->Value());
  }
  for (const HistogramSource& source : histogram_sources_) {
    rings_[source.count_ring].values[pos] =
        static_cast<double>(source.metric->TotalCount());
    rings_[source.sum_ring].values[pos] = source.metric->Sum();
    if (source.p50_ring != kNoRing) {
      rings_[source.p50_ring].values[pos] =
          source.metric->ApproxPercentile(0.50);
      rings_[source.p99_ring].values[pos] =
          source.metric->ApproxPercentile(0.99);
    }
  }
  ++ticks_;
}

HistoryWindow MetricsHistory::Window(size_t last_n,
                                     const std::string& prefix) const {
  HistoryWindow window;
  MutexLock lock(mu_);
  window.interval_ms = options_.interval_ms;
  window.capacity = options_.capacity;
  window.total_ticks = ticks_;
  size_t retained = static_cast<size_t>(
      std::min<uint64_t>(ticks_, options_.capacity));
  if (last_n > 0 && last_n < retained) retained = last_n;
  const uint64_t first_tick = ticks_ - retained;
  window.ticks.reserve(retained);
  window.ts_ms.reserve(retained);
  for (size_t k = 0; k < retained; ++k) {
    const uint64_t tick = first_tick + k;
    window.ticks.push_back(tick);
    window.ts_ms.push_back(
        tick_ts_[static_cast<size_t>(tick % options_.capacity)]);
  }
  // Emit sorted by series name (rings_ is in discovery order).
  std::vector<size_t> order;
  order.reserve(rings_.size());
  for (size_t i = 0; i < rings_.size(); ++i) {
    if (!prefix.empty() &&
        rings_[i].name.compare(0, prefix.size(), prefix) != 0) {
      continue;
    }
    order.push_back(i);
  }
  std::sort(order.begin(), order.end(), [this](size_t a, size_t b) {
    mu_.AssertHeld();
    return rings_[a].name < rings_[b].name;
  });
  window.series.reserve(order.size());
  for (size_t i : order) {
    HistoryWindow::Series series;
    series.name = rings_[i].name;
    series.kind = rings_[i].kind;
    series.values.reserve(retained);
    for (size_t k = 0; k < retained; ++k) {
      const uint64_t tick = first_tick + k;
      series.values.push_back(
          rings_[i].values[static_cast<size_t>(tick % options_.capacity)]);
    }
    window.series.push_back(std::move(series));
  }
  return window;
}

std::shared_ptr<const Table> MetricsHistory::ExportAsTable(
    size_t last_n, const std::string& prefix) const {
  const HistoryWindow window = Window(last_n, prefix);
  if (window.ticks.size() < 2 || window.series.empty()) return nullptr;
  auto table = std::make_shared<Table>(
      Schema("tick", {"metric_name"}, {"value"}));
  for (size_t k = 0; k < window.ticks.size(); ++k) {
    const TimeId time = table->AddTimeBucket(std::to_string(window.ticks[k]));
    for (const HistoryWindow::Series& series : window.series) {
      table->AppendRow(time, {series.name}, {series.values[k]});
    }
  }
  return table;
}

std::string RenderHistoryJson(const HistoryWindow& window) {
  std::string out = "{\"interval_ms\":";
  out += std::to_string(window.interval_ms);
  out += ",\"capacity\":";
  out += std::to_string(window.capacity);
  out += ",\"total_ticks\":";
  out += std::to_string(window.total_ticks);
  out += ",\"ticks\":[";
  for (size_t k = 0; k < window.ticks.size(); ++k) {
    if (k > 0) out += ',';
    out += std::to_string(window.ticks[k]);
  }
  out += "],\"ts_ms\":[";
  for (size_t k = 0; k < window.ts_ms.size(); ++k) {
    if (k > 0) out += ',';
    out += FormatDouble(window.ts_ms[k]);
  }
  out += "],\"series\":{";
  bool first = true;
  for (const HistoryWindow::Series& series : window.series) {
    if (!first) out += ',';
    first = false;
    out += '"';
    out += JsonEscapeName(series.name);
    out += "\":{\"kind\":\"";
    out += series.kind;
    out += "\",\"values\":[";
    for (size_t k = 0; k < series.values.size(); ++k) {
      if (k > 0) out += ',';
      out += FormatDouble(series.values[k]);
    }
    out += "]}";
  }
  out += "}}";
  return out;
}

std::string RenderHistoryCsv(const HistoryWindow& window) {
  std::string out = "tick,ts_ms,metric,kind,value\n";
  for (size_t k = 0; k < window.ticks.size(); ++k) {
    for (const HistoryWindow::Series& series : window.series) {
      out += std::to_string(window.ticks[k]);
      out += ',';
      out += FormatDouble(window.ts_ms[k]);
      out += ',';
      out += CsvField(series.name);
      out += ',';
      out += series.kind;
      out += ',';
      out += FormatDouble(series.values[k]);
      out += '\n';
    }
  }
  return out;
}

}  // namespace tsexplain
