#include "src/common/check.h"

#include <cstdio>
#include <cstdlib>

namespace tsexplain {
namespace internal {

CheckFailStream::CheckFailStream(const char* file, int line,
                                 const char* condition) {
  stream_ << file << ":" << line << ": check failed: " << condition << " ";
}

CheckFailStream::~CheckFailStream() {
  std::fprintf(stderr, "%s\n", stream_.str().c_str());
  std::fflush(stderr);
  std::abort();  // never returns; the process dies with the diagnostic
}

}  // namespace internal
}  // namespace tsexplain
