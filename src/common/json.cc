#include "src/common/json.h"

#include <cctype>
#include <cstdlib>

#include "src/common/strings.h"

namespace tsexplain {
namespace {

class Parser {
 public:
  Parser(const std::string& text, std::string* error)
      : text_(text), error_(error) {}

  bool Parse(JsonValue* out) {
    SkipWhitespace();
    if (!ParseValue(out, 0)) return false;
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Fail("trailing characters after JSON document");
    }
    return true;
  }

 private:
  bool Fail(const std::string& message) {
    if (error_->empty()) {
      *error_ = StrFormat("json parse error at offset %zu: %s", pos_,
                          message.c_str());
    }
    return false;
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Literal(const char* word) {
    const size_t len = std::char_traits<char>::length(word);
    if (text_.compare(pos_, len, word) != 0) {
      return Fail(StrFormat("expected '%s'", word));
    }
    pos_ += len;
    return true;
  }

  bool ParseValue(JsonValue* out, int depth) {
    if (depth > kMaxJsonDepth) {
      return Fail(StrFormat("nesting exceeds the %d-level limit "
                            "(kMaxJsonDepth)", kMaxJsonDepth));
    }
    if (pos_ >= text_.size()) return Fail("unexpected end of input");
    switch (text_[pos_]) {
      case 'n':
        if (!Literal("null")) return false;
        *out = JsonValue::MakeNull();
        return true;
      case 't':
        if (!Literal("true")) return false;
        *out = JsonValue::MakeBool(true);
        return true;
      case 'f':
        if (!Literal("false")) return false;
        *out = JsonValue::MakeBool(false);
        return true;
      case '"': {
        std::string s;
        if (!ParseString(&s)) return false;
        *out = JsonValue::MakeString(std::move(s));
        return true;
      }
      case '[':
        return ParseArray(out, depth);
      case '{':
        return ParseObject(out, depth);
      default:
        return ParseNumber(out);
    }
  }

  bool ParseArray(JsonValue* out, int depth) {
    ++pos_;  // '['
    std::vector<JsonValue> items;
    SkipWhitespace();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      *out = JsonValue::MakeArray(std::move(items));
      return true;
    }
    for (;;) {
      JsonValue item;
      SkipWhitespace();
      if (!ParseValue(&item, depth + 1)) return false;
      items.push_back(std::move(item));
      SkipWhitespace();
      if (pos_ >= text_.size()) return Fail("unterminated array");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == ']') {
        ++pos_;
        *out = JsonValue::MakeArray(std::move(items));
        return true;
      }
      return Fail("expected ',' or ']' in array");
    }
  }

  bool ParseObject(JsonValue* out, int depth) {
    ++pos_;  // '{'
    std::vector<std::pair<std::string, JsonValue>> members;
    SkipWhitespace();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      *out = JsonValue::MakeObject(std::move(members));
      return true;
    }
    for (;;) {
      SkipWhitespace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Fail("expected string key in object");
      }
      std::string key;
      if (!ParseString(&key)) return false;
      SkipWhitespace();
      if (pos_ >= text_.size() || text_[pos_] != ':') {
        return Fail("expected ':' after object key");
      }
      ++pos_;
      SkipWhitespace();
      JsonValue value;
      if (!ParseValue(&value, depth + 1)) return false;
      members.emplace_back(std::move(key), std::move(value));
      SkipWhitespace();
      if (pos_ >= text_.size()) return Fail("unterminated object");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == '}') {
        ++pos_;
        *out = JsonValue::MakeObject(std::move(members));
        return true;
      }
      return Fail("expected ',' or '}' in object");
    }
  }

  bool ParseHex4(unsigned* out) {
    if (pos_ + 4 > text_.size()) return Fail("truncated \\u escape");
    unsigned value = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_ + static_cast<size_t>(i)];
      value <<= 4;
      if (c >= '0' && c <= '9') {
        value |= static_cast<unsigned>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        value |= static_cast<unsigned>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        value |= static_cast<unsigned>(c - 'A' + 10);
      } else {
        return Fail("invalid \\u escape digit");
      }
    }
    pos_ += 4;
    *out = value;
    return true;
  }

  static void AppendUtf8(unsigned cp, std::string* out) {
    if (cp < 0x80) {
      out->push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out->push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      out->push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out->push_back(static_cast<char>(0xF0 | (cp >> 18)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  bool ParseString(std::string* out) {
    ++pos_;  // opening quote
    out->clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        return Fail("unescaped control character in string");
      }
      if (c != '\\') {
        out->push_back(c);
        ++pos_;
        continue;
      }
      ++pos_;
      if (pos_ >= text_.size()) return Fail("truncated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"':
          out->push_back('"');
          break;
        case '\\':
          out->push_back('\\');
          break;
        case '/':
          out->push_back('/');
          break;
        case 'b':
          out->push_back('\b');
          break;
        case 'f':
          out->push_back('\f');
          break;
        case 'n':
          out->push_back('\n');
          break;
        case 'r':
          out->push_back('\r');
          break;
        case 't':
          out->push_back('\t');
          break;
        case 'u': {
          unsigned cp = 0;
          if (!ParseHex4(&cp)) return false;
          if (cp >= 0xD800 && cp <= 0xDBFF) {
            // High surrogate: a \uDC00-\uDFFF low surrogate must follow.
            if (pos_ + 1 >= text_.size() || text_[pos_] != '\\' ||
                text_[pos_ + 1] != 'u') {
              return Fail("lone high surrogate");
            }
            pos_ += 2;
            unsigned low = 0;
            if (!ParseHex4(&low)) return false;
            if (low < 0xDC00 || low > 0xDFFF) {
              return Fail("invalid low surrogate");
            }
            cp = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            return Fail("lone low surrogate");
          }
          AppendUtf8(cp, out);
          break;
        }
        default:
          return Fail("invalid escape character");
      }
    }
    return Fail("unterminated string");
  }

  bool ParseNumber(JsonValue* out) {
    const size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    if (pos_ >= text_.size() || !std::isdigit(
            static_cast<unsigned char>(text_[pos_]))) {
      pos_ = start;
      return Fail("invalid value");
    }
    if (text_[pos_] == '0') {
      ++pos_;  // leading zero: no further integer digits allowed
    } else {
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (pos_ >= text_.size() ||
          !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        return Fail("digit expected after decimal point");
      }
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (pos_ >= text_.size() ||
          !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        return Fail("digit expected in exponent");
      }
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    const std::string token = text_.substr(start, pos_ - start);
    *out = JsonValue::MakeNumber(std::strtod(token.c_str(), nullptr));
    return true;
  }

  const std::string& text_;
  std::string* error_;
  size_t pos_ = 0;
};

}  // namespace

int JsonValue::AsInt(int fallback) const {
  if (!IsNumber()) return fallback;
  // Compare in double space with bounds exactly representable as
  // doubles: -2^31 and 2^31 (the latter excluded, being INT_MAX + 1).
  if (!(number_ >= -2147483648.0 && number_ < 2147483648.0)) {
    return fallback;
  }
  return static_cast<int>(number_);
}

const JsonValue* JsonValue::Find(const std::string& key) const {
  if (!IsObject()) return nullptr;
  for (const auto& member : members_) {
    if (member.first == key) return &member.second;
  }
  return nullptr;
}

bool JsonValue::GetBool(const std::string& key, bool fallback) const {
  const JsonValue* v = Find(key);
  return v ? v->AsBool(fallback) : fallback;
}

int JsonValue::GetInt(const std::string& key, int fallback) const {
  const JsonValue* v = Find(key);
  return v ? v->AsInt(fallback) : fallback;
}

double JsonValue::GetDouble(const std::string& key, double fallback) const {
  const JsonValue* v = Find(key);
  return v && v->IsNumber() ? v->AsDouble() : fallback;
}

std::string JsonValue::GetString(const std::string& key,
                                 const std::string& fallback) const {
  const JsonValue* v = Find(key);
  return v && v->IsString() ? v->AsString() : fallback;
}

std::vector<std::string> JsonValue::GetStringArray(const std::string& key,
                                                   bool* ok) const {
  std::vector<std::string> out;
  const JsonValue* v = Find(key);
  if (!v || !v->IsArray()) {
    if (ok) *ok = false;
    return out;
  }
  for (const JsonValue& item : v->array()) {
    if (!item.IsString()) {
      if (ok) *ok = false;
      out.clear();
      return out;
    }
    out.push_back(item.AsString());
  }
  if (ok) *ok = true;
  return out;
}

JsonValue JsonValue::MakeBool(bool v) {
  JsonValue value;
  value.type_ = Type::kBool;
  value.bool_ = v;
  return value;
}

JsonValue JsonValue::MakeNumber(double v) {
  JsonValue value;
  value.type_ = Type::kNumber;
  value.number_ = v;
  return value;
}

JsonValue JsonValue::MakeString(std::string v) {
  JsonValue value;
  value.type_ = Type::kString;
  value.string_ = std::move(v);
  return value;
}

JsonValue JsonValue::MakeArray(std::vector<JsonValue> items) {
  JsonValue value;
  value.type_ = Type::kArray;
  value.array_ = std::move(items);
  return value;
}

JsonValue JsonValue::MakeObject(
    std::vector<std::pair<std::string, JsonValue>> members) {
  JsonValue value;
  value.type_ = Type::kObject;
  value.members_ = std::move(members);
  return value;
}

bool ParseJson(const std::string& text, JsonValue* out, std::string* error) {
  std::string scratch;
  std::string* err = error ? error : &scratch;
  err->clear();
  Parser parser(text, err);
  return parser.Parse(out);
}

}  // namespace tsexplain
