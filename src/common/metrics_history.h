// Metrics time-series history: a background sampler that snapshots the
// MetricRegistry at a fixed interval into per-metric ring buffers, so
// the server can answer "what did this counter look like over the last
// N minutes" without an external scraper — and, the dogfood, export the
// recorded history as a TSExplain dataset so the engine can explain its
// own telemetry ("which counters explain this latency spike").
//
// Design constraints, mirroring metrics.h:
//
//  * Bounded memory. Every series is a fixed-capacity ring; the newest
//    `capacity` ticks are retained, older samples are overwritten in
//    place. Memory is capacity * (#series + 1) doubles, period.
//  * No allocation on the sampling hot path after warmup. The sampler
//    caches stable metric references (GetCounter et al. return
//    process-lifetime references) next to their ring slots; a tick is
//    relaxed atomic loads + ring stores. Allocation happens only when
//    the registry's metric count changes (a rediscovery pass builds
//    rings for the newcomers, backfilled with 0.0 for pre-registration
//    ticks).
//  * Lock discipline. All history state is guarded by a tsexplain::Mutex
//    with TSA annotations; the sampler thread sleeps on a CondVar with
//    an explicit deadline loop so Stop() never waits out an interval.
//
// Series naming: counters and gauges keep their registry name; every
// histogram H contributes "H.count" and "H.sum", plus "H.p50" / "H.p99"
// for histograms opted in via TrackHistogramPercentiles (lint rule R7
// checks each tracked name against the one-registration-site idiom).
//
// The `metrics_history` NDJSON op (docs/OBSERVABILITY.md) exposes
// Window() through RenderHistoryJson / RenderHistoryCsv, and
// ExportAsTable() through dataset registration.

#ifndef TSEXPLAIN_COMMON_METRICS_HISTORY_H_
#define TSEXPLAIN_COMMON_METRICS_HISTORY_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "src/common/metrics.h"
#include "src/common/mutex.h"

namespace tsexplain {

class Table;

/// A read-only view of the retained history, oldest tick first. All
/// series are tick-aligned: `series[i].values[k]` was sampled at
/// `ticks[k]` / `ts_ms[k]`. Ticks are a monotone counter starting at 0
/// for the history's first sample, so clients can detect both gaps
/// (restart) and ring wraparound (`total_ticks` > ticks.size()).
struct HistoryWindow {
  int64_t interval_ms = 0;
  size_t capacity = 0;
  uint64_t total_ticks = 0;       // samples taken since construction
  std::vector<uint64_t> ticks;    // absolute tick ids, oldest first
  std::vector<double> ts_ms;      // wall-clock ms (unix epoch) per tick

  struct Series {
    std::string name;
    std::string kind;  // counter | gauge | hist_count | hist_sum |
                       // hist_p50 | hist_p99
    std::vector<double> values;  // tick-aligned with `ticks`
  };
  std::vector<Series> series;  // sorted by name
};

class MetricsHistory {
 public:
  struct Options {
    /// Sampling period for the background thread (Start/Stop). Manual
    /// SampleNow() ticks ignore it.
    int64_t interval_ms = 1000;
    /// Ring capacity: samples retained per series.
    size_t capacity = 600;
  };

  /// The history samples `registry` (usually MetricRegistry::Global();
  /// tests pass their own). The registry must outlive the history.
  MetricsHistory(MetricRegistry& registry, Options options);
  ~MetricsHistory();  // stops the sampler

  MetricsHistory(const MetricsHistory&) = delete;
  MetricsHistory& operator=(const MetricsHistory&) = delete;

  /// Opts histogram `name` into per-tick p50/p99 series. The name must
  /// be registered through the one-registration-site idiom (lint R7
  /// cross-checks every literal passed here against a GetHistogram
  /// registration literal). Call before the histogram is first sampled;
  /// a name tracked after its discovery pass keeps count/sum only.
  void TrackHistogramPercentiles(const std::string& name)
      TSE_EXCLUDES(mu_);

  /// Runs before every sampler tick, OUTSIDE the history mutex — the
  /// hook for refreshing computed gauges (uptime, stuck-query count) so
  /// they are fresh in the same tick that records them. Set before
  /// Start(); immutable while the sampler runs.
  void SetSamplePrologue(std::function<void()> prologue);

  /// Starts the background sampler (no-op when already running). The
  /// first sample is taken immediately, then every interval_ms.
  void Start();
  /// Stops and joins the sampler (no-op when not running). Retained
  /// samples survive; Start() may be called again.
  void Stop();
  bool running() const { return sampler_.joinable(); }

  /// Takes one sample synchronously (tests; servers without a sampler
  /// thread). Runs the prologue first, like a sampler tick.
  void SampleNow() TSE_EXCLUDES(mu_);

  /// Retained history, oldest first. `last_n` > 0 keeps only the newest
  /// n ticks; a non-empty `prefix` keeps only series whose name starts
  /// with it.
  HistoryWindow Window(size_t last_n = 0,
                       const std::string& prefix = std::string()) const
      TSE_EXCLUDES(mu_);

  /// Materializes Window(last_n, prefix) as a TSExplain relation with
  /// schema (time="tick", dimensions=["metric_name"], measures=["value"])
  /// — one row per (tick, series). Registering it as a dataset lets a
  /// client run `explain` with measure="value", explain_by=
  /// ["metric_name"] over the server's own telemetry. Null when the
  /// window holds fewer than two ticks (one bucket cannot be segmented).
  std::shared_ptr<const Table> ExportAsTable(
      size_t last_n = 0, const std::string& prefix = std::string()) const
      TSE_EXCLUDES(mu_);

 private:
  static constexpr size_t kNoRing = static_cast<size_t>(-1);

  struct Ring {
    std::string name;
    const char* kind;            // static strings, see HistoryWindow
    std::vector<double> values;  // capacity slots, indexed tick%capacity
  };
  struct CounterSource {
    const Counter* metric;
    size_t ring;
  };
  struct GaugeSource {
    const Gauge* metric;
    size_t ring;
  };
  struct HistogramSource {
    const Histogram* metric;
    size_t count_ring;
    size_t sum_ring;
    size_t p50_ring;  // kNoRing unless TrackHistogramPercentiles'd
    size_t p99_ring;
  };

  void SamplerMain();
  void SampleLocked() TSE_REQUIRES(mu_);
  void RediscoverLocked() TSE_REQUIRES(mu_);
  size_t AddRingLocked(const std::string& name, const char* kind)
      TSE_REQUIRES(mu_);

  MetricRegistry& registry_;
  const Options options_;

  // Written by SetSamplePrologue before Start() (thread creation
  // publishes it to the sampler); invoked outside mu_ so the prologue
  // may freely touch the registry.
  std::function<void()> prologue_;

  mutable Mutex mu_;
  CondVar cv_;  // Stop() wake-up for the sampler's interval sleep
  bool stop_requested_ TSE_GUARDED_BY(mu_) = false;
  uint64_t ticks_ TSE_GUARDED_BY(mu_) = 0;
  std::vector<double> tick_ts_ TSE_GUARDED_BY(mu_);  // capacity slots
  std::vector<Ring> rings_ TSE_GUARDED_BY(mu_);
  std::map<std::string, size_t> ring_index_ TSE_GUARDED_BY(mu_);
  std::set<std::string> tracked_percentiles_ TSE_GUARDED_BY(mu_);
  size_t known_metric_count_ TSE_GUARDED_BY(mu_) = 0;
  std::vector<CounterSource> counter_sources_ TSE_GUARDED_BY(mu_);
  std::vector<GaugeSource> gauge_sources_ TSE_GUARDED_BY(mu_);
  std::vector<HistogramSource> histogram_sources_ TSE_GUARDED_BY(mu_);

  // Owned by the Start()/Stop() caller thread (they are not safe to
  // race each other; every other method is fully thread-safe).
  std::thread sampler_;
};

/// Compact JSON object:
///   {"interval_ms":..,"capacity":..,"total_ticks":..,
///    "ticks":[..],"ts_ms":[..],
///    "series":{name:{"kind":..,"values":[..]},...}}
std::string RenderHistoryJson(const HistoryWindow& window);

/// Long-format CSV, one row per (tick, series):
///   tick,ts_ms,metric,kind,value
std::string RenderHistoryCsv(const HistoryWindow& window);

}  // namespace tsexplain

#endif  // TSEXPLAIN_COMMON_METRICS_HISTORY_H_
