// Small string helpers shared by the table layer, data generators, and the
// benchmark report printers.

#ifndef TSEXPLAIN_COMMON_STRINGS_H_
#define TSEXPLAIN_COMMON_STRINGS_H_

#include <string>
#include <vector>

namespace tsexplain {

/// Joins `parts` with `sep` between consecutive elements.
std::string Join(const std::vector<std::string>& parts,
                 const std::string& sep);

/// Splits `s` on the single character `sep`; keeps empty fields.
std::vector<std::string> Split(const std::string& s, char sep);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Left-pads (or truncates) `s` to exactly `width` characters.
std::string PadLeft(const std::string& s, size_t width);

/// Right-pads (or truncates) `s` to exactly `width` characters.
std::string PadRight(const std::string& s, size_t width);

/// Formats a day offset from an anchor date (month/day only, e.g. "3-14").
/// `anchor_month`/`anchor_day` use a non-leap-year calendar unless
/// `leap_year` is set (2020 is a leap year).
std::string DayOffsetToDate(int day_offset, int anchor_month, int anchor_day,
                            bool leap_year);

}  // namespace tsexplain

#endif  // TSEXPLAIN_COMMON_STRINGS_H_
