#include "src/common/strings.h"

#include <cstdarg>
#include <cstdio>

#include "src/common/check.h"

namespace tsexplain {

std::string Join(const std::vector<std::string>& parts,
                 const std::string& sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::vector<std::string> Split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::string current;
  for (char c : s) {
    if (c == sep) {
      out.push_back(current);
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  out.push_back(current);
  return out;
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  TSE_CHECK_GE(needed, 0);
  std::string out(static_cast<size_t>(needed), '\0');
  std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  va_end(args_copy);
  return out;
}

std::string PadLeft(const std::string& s, size_t width) {
  if (s.size() >= width) return s.substr(0, width);
  return std::string(width - s.size(), ' ') + s;
}

std::string PadRight(const std::string& s, size_t width) {
  if (s.size() >= width) return s.substr(0, width);
  return s + std::string(width - s.size(), ' ');
}

std::string DayOffsetToDate(int day_offset, int anchor_month, int anchor_day,
                            bool leap_year) {
  static const int kDaysPerMonth[12] = {31, 28, 31, 30, 31, 30,
                                        31, 31, 30, 31, 30, 31};
  int month = anchor_month;
  int day = anchor_day + day_offset;
  TSE_CHECK_GE(day_offset, 0);
  for (;;) {
    int days_in_month = kDaysPerMonth[month - 1];
    if (leap_year && month == 2) days_in_month = 29;
    if (day <= days_in_month) break;
    day -= days_in_month;
    month = month % 12 + 1;
  }
  return StrFormat("%d-%d", month, day);
}

}  // namespace tsexplain
