// Minimal JSON value + recursive-descent parser for the NDJSON service
// protocol (docs/SERVICE.md). Parsing is strict RFC 8259 except that
// numbers are always held as double (the protocol only carries small
// integers and measures). Errors are reported via return value + message
// (no exceptions), matching the csv_reader convention.
//
// Serialization lives elsewhere: responses are written with the JsonWriter
// in src/pipeline/report_json.h, keeping one emitter for CLI and server.

#ifndef TSEXPLAIN_COMMON_JSON_H_
#define TSEXPLAIN_COMMON_JSON_H_

#include <string>
#include <utility>
#include <vector>

namespace tsexplain {

/// A parsed JSON document node. Object member order is preserved.
class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Type type() const { return type_; }
  bool IsNull() const { return type_ == Type::kNull; }
  bool IsBool() const { return type_ == Type::kBool; }
  bool IsNumber() const { return type_ == Type::kNumber; }
  bool IsString() const { return type_ == Type::kString; }
  bool IsArray() const { return type_ == Type::kArray; }
  bool IsObject() const { return type_ == Type::kObject; }

  bool AsBool(bool fallback = false) const {
    return IsBool() ? bool_ : fallback;
  }
  double AsDouble(double fallback = 0.0) const {
    return IsNumber() ? number_ : fallback;
  }
  /// The number as an int; `fallback` when the node is not a number or
  /// the value is outside int range (a double-to-int cast of an
  /// out-of-range value is UB, and request numbers are untrusted).
  int AsInt(int fallback = 0) const;
  const std::string& AsString(const std::string& fallback = {}) const {
    return IsString() ? string_ : fallback;
  }
  const std::vector<JsonValue>& array() const { return array_; }
  const std::vector<std::pair<std::string, JsonValue>>& members() const {
    return members_;
  }

  /// Object member lookup; null when absent or not an object.
  const JsonValue* Find(const std::string& key) const;

  /// Typed member conveniences: the fallback also applies on type
  /// mismatch, so handlers read optional fields in one call.
  bool GetBool(const std::string& key, bool fallback = false) const;
  int GetInt(const std::string& key, int fallback = 0) const;
  double GetDouble(const std::string& key, double fallback = 0.0) const;
  std::string GetString(const std::string& key,
                        const std::string& fallback = {}) const;
  /// Member as a vector of strings; `*ok` (optional) reports whether the
  /// member was present AND an array of strings only.
  std::vector<std::string> GetStringArray(const std::string& key,
                                          bool* ok = nullptr) const;

  /// Construction (used by the parser and by tests).
  static JsonValue MakeNull() { return JsonValue(); }
  static JsonValue MakeBool(bool v);
  static JsonValue MakeNumber(double v);
  static JsonValue MakeString(std::string v);
  static JsonValue MakeArray(std::vector<JsonValue> items);
  static JsonValue MakeObject(
      std::vector<std::pair<std::string, JsonValue>> members);

 private:
  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::vector<std::pair<std::string, JsonValue>> members_;
};

/// Hostile-input guard: documents nesting deeper than this many levels
/// are rejected with a structured error naming the limit. The parser is
/// recursive descent, so this also caps its stack use; the protocol
/// itself never nests past ~4.
inline constexpr int kMaxJsonDepth = 64;

/// Parses one JSON document (the whole string must be consumed apart from
/// trailing whitespace). Returns false and fills `error` on malformed
/// input, including nesting past kMaxJsonDepth.
bool ParseJson(const std::string& text, JsonValue* out, std::string* error);

}  // namespace tsexplain

#endif  // TSEXPLAIN_COMMON_JSON_H_
