// Seeded, reproducible pseudo-random number generation.
//
// All data generators and sampling procedures in this repository draw from
// Rng so that every experiment is bit-reproducible given a seed. The core
// generator is xoshiro256**, seeded via SplitMix64 (the recommended pairing
// from the xoshiro authors). We intentionally avoid std::mt19937 +
// std::*_distribution because their outputs are not portable across
// standard-library implementations.

#ifndef TSEXPLAIN_COMMON_RNG_H_
#define TSEXPLAIN_COMMON_RNG_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace tsexplain {

/// Reproducible PRNG (xoshiro256**) with convenience samplers.
class Rng {
 public:
  /// Constructs a generator whose entire stream is a function of `seed`.
  explicit Rng(uint64_t seed);

  /// Next raw 64-bit output.
  uint64_t NextUint64();

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Standard normal via Box-Muller (deterministic, no cached spare).
  double NextGaussian();

  /// Normal with the given mean and standard deviation.
  double Gaussian(double mean, double stddev);

  /// Bernoulli draw with probability `p` of true.
  bool NextBool(double p = 0.5);

  /// Poisson-distributed count (Knuth's method for small lambda, normal
  /// approximation above 64 to keep the cost bounded).
  int64_t Poisson(double lambda);

  /// Samples `k` distinct integers from [lo, hi] (inclusive), returned
  /// sorted ascending. Requires k <= hi - lo + 1.
  std::vector<int> SampleDistinctSorted(int lo, int hi, int k);

  /// In-place Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (size_t i = v->size(); i > 1; --i) {
      size_t j = static_cast<size_t>(UniformInt(0, static_cast<int64_t>(i) - 1));
      std::swap((*v)[i - 1], (*v)[j]);
    }
  }

 private:
  uint64_t s_[4];
};

}  // namespace tsexplain

#endif  // TSEXPLAIN_COMMON_RNG_H_
