// Wall-clock timing utilities used by the pipeline's latency breakdown
// (paper Figure 15) and the benchmark harness.

#ifndef TSEXPLAIN_COMMON_TIMER_H_
#define TSEXPLAIN_COMMON_TIMER_H_

#include <chrono>

namespace tsexplain {

/// Monotonic stopwatch. Starts running on construction.
class Timer {
 public:
  Timer() { Restart(); }

  /// Resets the start point to now.
  void Restart() { start_ = Clock::now(); }

  /// Elapsed time since construction/Restart, in milliseconds.
  double ElapsedMs() const {
    return std::chrono::duration<double, std::milli>(Clock::now() - start_)
        .count();
  }

  /// Elapsed time in seconds.
  double ElapsedSeconds() const { return ElapsedMs() / 1000.0; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Adds the scope's elapsed milliseconds to `*sink` on destruction.
class ScopedTimer {
 public:
  explicit ScopedTimer(double* sink) : sink_(sink) {}
  ~ScopedTimer() { *sink_ += timer_.ElapsedMs(); }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  double* sink_;
  Timer timer_;
};

}  // namespace tsexplain

#endif  // TSEXPLAIN_COMMON_TIMER_H_
