// Annotated mutex / condition-variable wrappers for clang's thread
// safety analysis (src/common/thread_annotations.h).
//
// libstdc++'s std::mutex and std::lock_guard carry no thread-safety
// attributes, so -Wthread-safety cannot see through them: a tree locking
// raw std::mutex gets zero verification. These wrappers are the same
// primitives with the attributes attached — zero-cost (everything
// inlines to the std:: call) and drop-in:
//
//   Mutex mu_;
//   int value_ TSE_GUARDED_BY(mu_);
//   ...
//   MutexLock lock(mu_);          // was: std::lock_guard<std::mutex>
//   ++value_;                     // OK; without the lock: build break
//
// Condition waits replace the predicate-lambda idiom with an explicit
// loop, which keeps the guarded reads visible to the analysis (a lambda
// body is a separate function the analysis cannot attribute the held
// lock to):
//
//   MutexLock lock(mu_);
//   while (!ready_) cv_.Wait(mu_);  // was: cv_.wait(lock, [&]{...})
//
// tools/lint_invariants.py enforces that src/ and tools/ hold locks only
// through this header, and that every Mutex member has at least one
// TSE_GUARDED_BY / TSE_REQUIRES user.

#ifndef TSEXPLAIN_COMMON_MUTEX_H_
#define TSEXPLAIN_COMMON_MUTEX_H_

// Pre-C++20, -Wpedantic rejects passing ZERO arguments to a variadic
// macro, and the no-argument annotation forms below (TSE_ACQUIRE(),
// TSE_RELEASE()) are exactly that — the canonical clang idiom for "this
// object's own capability". System-header status silences that one
// pedantic diagnostic here; call sites in the rest of the tree always
// name their capability and keep full diagnostics.
#pragma GCC system_header

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>

#include "src/common/thread_annotations.h"

namespace tsexplain {

class CondVar;

/// std::mutex with capability annotations. Non-recursive, non-shared —
/// the repo's locking is exclusive everywhere.
class TSE_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() TSE_ACQUIRE() { mu_.lock(); }
  void Unlock() TSE_RELEASE() { mu_.unlock(); }
  bool TryLock() TSE_TRY_ACQUIRE(true) { return mu_.try_lock(); }

  /// Tells the analysis this mutex is held — for code reached through a
  /// boundary it cannot follow (std::function callbacks that contractually
  /// run under the owner's lock). Compiles to nothing.
  void AssertHeld() const TSE_ASSERT_CAPABILITY(this) {}

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// RAII lock (drop-in for std::lock_guard<std::mutex>).
class TSE_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) TSE_ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() TSE_RELEASE() { mu_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable bound to Mutex. Wait REQUIRES the mutex, making
/// the "predicate reads guarded state" rule machine-checked at every
/// wait loop.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `mu`, sleeps, and re-acquires it before
  /// returning. Spurious wakeups happen: always wait in a
  /// `while (!predicate)` loop.
  void Wait(Mutex& mu) TSE_REQUIRES(mu) {
    // Adopt the already-held native mutex for the wait protocol, then
    // release the adoption so the MutexLock in the caller's scope stays
    // the sole owner.
    std::unique_lock<std::mutex> native(mu.mu_, std::adopt_lock);
    cv_.wait(native);
    native.release();
  }

  /// Timed Wait: sleeps at most `timeout_ms` milliseconds (re-acquiring
  /// `mu` before returning either way). Returns false on timeout, true on
  /// a notification — but spurious wakeups report true too, so callers
  /// must loop on the predicate AND an explicit deadline, never on the
  /// return value alone (metrics_history.cc's sampler is the model).
  bool WaitFor(Mutex& mu, int64_t timeout_ms) TSE_REQUIRES(mu) {
    std::unique_lock<std::mutex> native(mu.mu_, std::adopt_lock);
    const std::cv_status status =
        cv_.wait_for(native, std::chrono::milliseconds(timeout_ms));
    native.release();
    return status == std::cv_status::no_timeout;
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace tsexplain

#endif  // TSEXPLAIN_COMMON_MUTEX_H_
