#include "src/common/thread_pool.h"

#include <atomic>
#include <cstdlib>
#include <memory>

#ifdef __linux__
#include <pthread.h>
#include <sched.h>
#endif

#include "src/common/check.h"
#include "src/common/metrics.h"
#include "src/common/timer.h"

namespace tsexplain {

namespace {

// TSE_THREADS_AFFINITY=1 pins each pool worker to one online CPU,
// round-robin in worker order (docs/PERF.md "Thread affinity"). Opt-in:
// pinning helps steady-state bench runs (less cross-core cache migration)
// but hurts on shared machines, so the default stays unpinned. On
// non-Linux platforms the flag is a documented no-op — there is no
// portable pinning API, and correctness never depends on placement.
bool AffinityRequested() {
  static const bool requested = [] {
    const char* value = std::getenv("TSE_THREADS_AFFINITY");
    return value != nullptr && value[0] == '1';
  }();
  return requested;
}

void MaybePinWorker(std::thread& worker, int index) {
#ifdef __linux__
  if (!AffinityRequested()) return;
  cpu_set_t online;
  CPU_ZERO(&online);
  if (sched_getaffinity(0, sizeof(online), &online) != 0) return;
  const int num_online = CPU_COUNT(&online);
  if (num_online <= 0) return;
  // index-th online CPU, wrapping — CPU ids need not be contiguous.
  int target = index % num_online;
  cpu_set_t pin;
  CPU_ZERO(&pin);
  for (int cpu = 0; cpu < CPU_SETSIZE; ++cpu) {
    if (!CPU_ISSET(cpu, &online)) continue;
    if (target-- == 0) {
      CPU_SET(cpu, &pin);
      // Best-effort: a failed pin (cgroup changes between the two calls,
      // exotic schedulers) leaves the worker unpinned, never aborts.
      pthread_setaffinity_np(worker.native_handle(), sizeof(pin), &pin);
      return;
    }
  }
#else
  (void)worker;
  (void)index;
  (void)AffinityRequested();  // accepted but a no-op off Linux
#endif
}

// Pool pressure metrics (docs/OBSERVABILITY.md): queue depth tracks
// tasks submitted but not yet started; task_ms is the run time of each
// dequeued task (ParallelFor helpers included).
struct PoolMetrics {
  Gauge& queue_depth =
      MetricRegistry::Global().GetGauge("pool.queue_depth");
  Histogram& task_ms =
      MetricRegistry::Global().GetHistogram("pool.task_ms");
  static PoolMetrics& Get() {
    static PoolMetrics metrics;
    return metrics;
  }
};

}  // namespace

int ResolveThreadCount(int requested) {
  if (requested >= 1) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

int AdaptiveThreadGrant(int requested, int active, int pool_size) {
  if (active < 1) active = 1;
  if (pool_size < 1) pool_size = 1;
  const int fair_share = pool_size / active > 1 ? pool_size / active : 1;
  const int ceiling = requested >= 1 ? requested : 1;
  return fair_share < ceiling ? fair_share : ceiling;
}

ThreadPool::ThreadPool(int num_threads) {
  TSE_CHECK_GE(num_threads, 1);
  workers_.reserve(static_cast<size_t>(num_threads));
  for (int t = 0; t < num_threads; ++t) {
    workers_.emplace_back([this] { WorkerLoop(); });
    MaybePinWorker(workers_.back(), t);
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mu_);
    shutdown_ = true;
  }
  cv_.NotifyAll();
  // Workers drain every already-queued task before exiting, so a
  // ParallelFor whose helpers are still queued completes normally: its
  // caller participates in the drain and its completion cv is signaled
  // by whichever thread finishes the last index.
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(mu_);
      while (!shutdown_ && queue_.empty()) cv_.Wait(mu_);
      if (queue_.empty()) return;  // shutdown with a drained queue
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    PoolMetrics::Get().queue_depth.Add(-1);
    Timer task_timer;
    task();
    PoolMetrics::Get().task_ms.Observe(task_timer.ElapsedMs());
  }
}

std::future<void> ThreadPool::Submit(std::function<void()> fn) {
  auto task = std::make_shared<std::packaged_task<void()>>(std::move(fn));
  std::future<void> future = task->get_future();
  {
    MutexLock lock(mu_);
    TSE_CHECK(!shutdown_) << "Submit after ThreadPool shutdown";
    queue_.emplace_back([task] { (*task)(); });
  }
  PoolMetrics::Get().queue_depth.Add(1);
  cv_.NotifyOne();
  return future;
}

void ThreadPool::ParallelFor(size_t n, int parallelism,
                             const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  if (parallelism <= 1 || n == 1) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  // Shared loop state outlives the call only until the last helper
  // observes the drained counter; helpers hold the shared_ptr so a helper
  // scheduled after this function returned still touches valid memory.
  struct LoopState {
    std::atomic<size_t> next{0};
    std::atomic<size_t> done{0};
    size_t total = 0;
    // Completion handshake only: the waited-on state (`done`) is atomic,
    // the mutex exists so the notify cannot slip between the caller's
    // predicate check and its sleep. lint:allow(unguarded-mutex)
    Mutex mu;
    CondVar cv;
  };
  auto state = std::make_shared<LoopState>();
  state->total = n;

  auto drain = [state, &fn]() {
    for (;;) {
      const size_t i = state->next.fetch_add(1);
      if (i >= state->total) return;
      fn(i);
      if (state->done.fetch_add(1) + 1 == state->total) {
        MutexLock lock(state->mu);
        state->cv.NotifyAll();
      }
    }
  };

  // Helpers run the same drain loop (the lambda copies `state` by
  // shared_ptr and holds `fn` by reference — safe: the caller blocks
  // below until every index completed, and a helper only dereferences fn
  // while indices remain. Late helpers see the counter drained and exit.)
  const int helpers =
      static_cast<int>(std::min<size_t>(static_cast<size_t>(parallelism - 1),
                                        n - 1));
  for (int h = 0; h < helpers; ++h) Submit(drain);

  drain();
  MutexLock lock(state->mu);
  while (state->done.load() != state->total) state->cv.Wait(state->mu);
}

ThreadPool& ThreadPool::Shared() {
  static ThreadPool pool(ResolveThreadCount(0));
  return pool;
}

}  // namespace tsexplain
