// Lightweight invariant-checking macros.
//
// The library is exception-free on hot paths; programming errors (broken
// invariants, out-of-range arguments) abort with a diagnostic instead of
// propagating exceptions, following the style of LevelDB/RocksDB assertions.
//
//   TSE_CHECK(cond) << "message";        always on
//   TSE_DCHECK(cond) << "message";       debug builds only
//   TSE_CHECK_GE(a, b), TSE_CHECK_LT(a, b), ...  comparison helpers

#ifndef TSEXPLAIN_COMMON_CHECK_H_
#define TSEXPLAIN_COMMON_CHECK_H_

#include <sstream>
#include <string>

namespace tsexplain {
namespace internal {

// Accumulates a failure message via operator<< and aborts on destruction.
class CheckFailStream {
 public:
  CheckFailStream(const char* file, int line, const char* condition);
  ~CheckFailStream();

  template <typename T>
  CheckFailStream& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  std::ostringstream stream_;
};

// Turns a CheckFailStream expression into void so it can sit in the false
// branch of the ternary inside TSE_CHECK (the glog "voidify" idiom).
struct Voidify {
  void operator&(CheckFailStream&) {}
  void operator&(CheckFailStream&&) {}
};

}  // namespace internal
}  // namespace tsexplain

// `<<` binds tighter than `&`, so trailing messages attach to the stream.
#define TSE_CHECK(condition)                                  \
  (condition) ? (void)0                                       \
              : ::tsexplain::internal::Voidify() &            \
                    ::tsexplain::internal::CheckFailStream(   \
                        __FILE__, __LINE__, #condition)

#define TSE_CHECK_EQ(a, b) TSE_CHECK((a) == (b))
#define TSE_CHECK_NE(a, b) TSE_CHECK((a) != (b))
#define TSE_CHECK_GE(a, b) TSE_CHECK((a) >= (b))
#define TSE_CHECK_GT(a, b) TSE_CHECK((a) > (b))
#define TSE_CHECK_LE(a, b) TSE_CHECK((a) <= (b))
#define TSE_CHECK_LT(a, b) TSE_CHECK((a) < (b))

#ifdef NDEBUG
#define TSE_DCHECK(condition) \
  while (false) TSE_CHECK(condition)
#else
#define TSE_DCHECK(condition) TSE_CHECK(condition)
#endif

#endif  // TSEXPLAIN_COMMON_CHECK_H_
